(** The uniform result type of the experiment API: a set of named scalar
    metrics plus optional per-flow (or per-sample) arrays. Typed scenario
    results ([Scen_a.result] etc.) flatten into this shape so the sweep
    engine, the emitters and the CLI can treat every scenario alike. *)

type t = {
  metrics : (string * float) list;  (** scalar results, in display order *)
  arrays : (string * float array) list;
      (** optional vector results (per-flow goodputs, ranked shares, …) *)
}

val of_metrics : ?arrays:(string * float array) list -> (string * float) list -> t

val add_metrics : t -> (string * float) list -> t
(** Append metrics (e.g. the observability counters) after the
    scenario's own, preserving display order. *)

val metric : t -> string -> float
(** Raises [Invalid_argument] (listing the available metrics) when
    absent. *)

val metric_opt : t -> string -> float option

val metric_names : t -> string list

val to_json : t -> Repro_stats.Json.t
(** [{"metrics": {...}, "arrays": {...}}]; the [arrays] field is omitted
    when empty. *)
