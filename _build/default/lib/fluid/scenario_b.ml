type params = { n : int; cx : float; ct : float; rtt : float }
type regime = X_more_congested | T_more_congested

type lia_point = {
  regime : regime;
  px : float;
  pt : float;
  x1 : float;
  x2 : float;
  y1 : float;
  y2 : float;
  blue_total : float;
  red_total : float;
  aggregate : float;
}

let check { n; cx; ct; rtt } =
  if n <= 0 then invalid_arg "Scenario_b: n must be > 0";
  if cx <= 0. || ct <= 0. then invalid_arg "Scenario_b: capacities must be > 0";
  if rtt <= 0. then invalid_arg "Scenario_b: rtt must be > 0"

(* Regime pX >= pT, with s = pX/pT >= 1:
   blue total B = red total = (1/rtt)·sqrt(2/pT) and
   ct/cx = (2s+1)(s+2)/(2s+3), increasing in s, equal to 9/5 at s = 1. *)
let solve_x_congested ~rho =
  let f s = ((2. *. s) +. 1.) *. (s +. 2.) /. ((2. *. s) +. 3.) -. rho in
  Roots.bisect ~f 1. 1e9

(* Regime pT >= pX, with z = sqrt(pT/pX) >= 1:
   ct/cx = (1/(z²+1) + 1/z) / (z²/(z²+1) + z/(2z²+1)), decreasing in z,
   equal to 9/5 at z = 1. *)
let rho_t_congested z =
  let z2 = z *. z in
  let num = (1. /. (z2 +. 1.)) +. (1. /. z) in
  let den = (z2 /. (z2 +. 1.)) +. (z /. ((2. *. z2) +. 1.)) in
  num /. den

let solve_t_congested ~rho =
  let f z = rho -. rho_t_congested z in
  Roots.bisect ~f 1. 1e9

let lia_red_multipath ({ n; cx; ct; rtt } as params) =
  check params;
  let nf = float_of_int n in
  let rho = ct /. cx in
  if rho >= 9. /. 5. then begin
    let s = solve_x_congested ~rho in
    (* cx/n = B·(1/(1+s) + 1/(2+s)) determines the blue total B. *)
    let b = cx /. nf /. ((1. /. (1. +. s)) +. (1. /. (2. +. s))) in
    let pt = 2. /. ((rtt *. b) ** 2.) in
    let px = s *. pt in
    let x1 = b /. (1. +. s) in
    let x2 = b -. x1 in
    let y1 = b /. (2. +. s) in
    let y2 = b -. y1 in
    {
      regime = X_more_congested;
      px;
      pt;
      x1;
      x2;
      y1;
      y2;
      blue_total = b;
      red_total = b;
      aggregate = nf *. (b +. b);
    }
  end
  else begin
    let z = solve_t_congested ~rho in
    let z2 = z *. z in
    (* cx/n = B·(z²/(z²+1) + z/(2z²+1)) with B the blue total. *)
    let b = cx /. nf /. ((z2 /. (z2 +. 1.)) +. (z /. ((2. *. z2) +. 1.))) in
    let px = 2. /. ((rtt *. b) ** 2.) in
    let pt = z2 *. px in
    let x1 = b *. z2 /. (z2 +. 1.) in
    let x2 = b -. x1 in
    let red = b /. z in
    let y1 = b *. z /. ((2. *. z2) +. 1.) in
    let y2 = red -. y1 in
    {
      regime = T_more_congested;
      px;
      pt;
      x1;
      x2;
      y1;
      y2;
      blue_total = b;
      red_total = red;
      aggregate = nf *. (b +. red);
    }
  end

type allocation = { blue_total : float; red_total : float; aggregate : float }

let lia_red_singlepath ({ n; cx; ct; rtt } as params) =
  check params;
  let nf = float_of_int n in
  let c_params =
    { Scenario_c.n1 = n; n2 = n; c1 = cx /. nf; c2 = ct /. nf; rtt }
  in
  let pt = Scenario_c.lia c_params in
  let blue = pt.Scenario_c.x1 +. pt.Scenario_c.x2 in
  let red = pt.Scenario_c.y in
  { blue_total = blue; red_total = red; aggregate = nf *. (blue +. red) }

let optimum_red_singlepath ({ n; cx; ct; rtt } as params) =
  check params;
  let nf = float_of_int n in
  let probe = Units.probe_rate ~rtt in
  let fair = (cx +. ct) /. (2. *. nf) in
  let blue = Stdlib.max ((cx /. nf) +. probe) fair in
  let red = Stdlib.min ((ct /. nf) -. probe) fair in
  { blue_total = blue; red_total = red; aggregate = nf *. (blue +. red) }

let optimum_red_multipath ({ n; cx; ct; rtt } as params) =
  check params;
  let nf = float_of_int n in
  let probe = Units.probe_rate ~rtt in
  let fair = ((cx +. ct) /. (2. *. nf)) -. (probe /. 2.) in
  let blue = Stdlib.max (cx /. nf) fair in
  let red = Stdlib.min ((ct /. nf) -. probe) fair in
  { blue_total = blue; red_total = red; aggregate = nf *. (blue +. red) }

let x_congested_quadratic ~rho =
  [| 2. -. (3. *. rho); 5. -. (2. *. rho); 2. |]

let normalized { n; ct; _ } alloc =
  let per_user_ct = ct /. float_of_int n in
  (alloc.blue_total /. per_user_ct, alloc.red_total /. per_user_ct)
