(** The dynamic short-flow experiment of paper §VI-B2 (Fig. 14,
    Table III): a 4:1 oversubscribed FatTree where one third of the hosts
    run a continuous flow (TCP or MPTCP with 8 subflows) and the remaining
    hosts send 70 kB TCP flows every 200 ms on average. *)

type config = {
  k : int;
  rate_mbps : float;
  delay_ms : float;
  oversubscription : float;
  algo : string;  (** long-flow transport; "reno" means plain TCP *)
  subflows : int;
  mean_interval : float;  (** short-flow inter-arrival mean, seconds *)
  duration : float;
  warmup : float;
  seed : int;
}

val default : config
(** k = 8, 4:1 oversubscribed, 100 Mb/s hosts (the paper's rate — traffic
    here is bounded by the oversubscribed core, so this is affordable),
    OLIA long flows with 8 subflows, 200 ms short-flow arrivals. *)

type result = {
  completion_times_ms : float array;
      (** completion time of every short flow that finished *)
  mean_completion_ms : float;
  stdev_completion_ms : float;
  core_utilization_pct : float;
      (** mean utilization of aggregation↔core links after warm-up *)
  long_flow_mbps : float;  (** mean long-flow goodput *)
  unfinished_shorts : int;
}

val run : config -> result
