(** Output queue of a link: serialization at the link rate plus a buffer
    with a queueing discipline — DropTail or the paper's RED profile.

    The RED profile of §III ("Testbed Setup"): the dropping probability is
    0 below [min_th], grows linearly to [max_p] at [max_th], then linearly
    to 1 at [2·max_th] (gentle mode); queue averaging uses an exponential
    weight. Thresholds are in packets. *)

type red_params = {
  min_th : float;
  max_th : float;
  max_p : float;
  weight : float;  (** EWMA weight of the average-queue estimator *)
}

val paper_red : link_mbps:float -> red_params
(** The paper's parameters, proportionally adapted to the link capacity:
    [min_th = 25], [max_th = 50] and [max_p = 0.1] for a 10 Mb/s link. *)

type discipline = Droptail | Red of red_params

type t

val create :
  sim:Sim.t ->
  rng:Rng.t ->
  rate_bps:float ->
  buffer_pkts:int ->
  discipline:discipline ->
  ?name:string ->
  unit ->
  t
(** A queue serving packets at [rate_bps]. Packets beyond [buffer_pkts]
    are always dropped (hard limit); RED drops probabilistically before
    that. *)

val hop : t -> Packet.hop
(** The enqueue entry point, to place on routes. *)

val backlog : t -> int
(** Packets currently queued or in service. *)

val capacity : t -> int
(** The [buffer_pkts] bound the queue was created with. *)

val arrivals : t -> int
(** Data-packet arrivals (ACKs are not counted in the loss statistics). *)

val drops : t -> int
(** Data packets dropped. *)

val drops_overflow : t -> int
(** Data packets dropped because the buffer was full; with
    [drops_red] this partitions [drops]. *)

val drops_red : t -> int
(** Data packets dropped by RED early marking (always 0 for DropTail). *)

val loss_probability : t -> float
(** [drops / arrivals] since creation (or since [reset_stats]). *)

val bytes_forwarded : t -> int
(** Payload bytes fully serialized, for utilization measurements. *)

val utilization : t -> since:float -> now:float -> float
(** Fraction of the link capacity used by forwarded bytes over the window
    [\[since, now\]]. Requires [reset_stats] to have been called at
    [since] for an exact figure. *)

val reset_stats : t -> unit
(** Zero the arrival/drop/byte counters (used after warm-up). *)

val name : t -> string
