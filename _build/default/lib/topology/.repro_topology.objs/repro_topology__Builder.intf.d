lib/topology/builder.mli: Repro_netsim
