(** Driving the rules over sources.

    The engine is pure with respect to its inputs: {!lint_sources}
    takes (path, content) pairs — the test suite feeds it inline
    fixtures — and {!lint_paths} merely walks the filesystem to build
    that list. Findings come back suppression-filtered, deduplicated
    and sorted.

    Linting is two passes: pass 1 parses every file and runs the
    per-file catalogue (R1-R4, R6-R8) plus R5 across files; pass 2
    digests the parsed structures into {!Summary} nodes, builds the
    {!Callgraph}, and runs the interprocedural checks ({!Dataflow}:
    R9 alloc-free, R10 domain-safety, R11 determinism taint). *)

type source = { path : string; content : string }

val lint_sources : ?extra_alloc_free_roots:string list -> source list -> Finding.t list
(** Parse every source ([.ml] as implementation, [.mli] as interface),
    run both passes, then drop findings waived by valid {!Suppress}
    directives — a whole-program finding is waived by a directive at
    its own site {e or} at its chain's root. Unparseable files yield a
    single [Parse] finding; malformed directives yield [Suppress]
    findings. Neither of those two can be waived.
    [extra_alloc_free_roots] adds module-qualified names (e.g.
    ["Sim.dispatch"]) to the [[@olia.alloc_free]] root set. *)

val graph_of_sources : source list -> Callgraph.t
(** Pass 1 + graph construction only, for [--graph-dump]. Unparseable
    files are silently absent from the graph. *)

val collect_files : string list -> string list
(** All [.ml]/[.mli] files below the given roots (a root may also be a
    plain file), sorted, skipping [_build], [lint-fixtures] and
    dot-directories. *)

val read_sources : string list -> source list
(** [collect_files] plus file contents, in the same order. *)

val lint_paths :
  ?extra_alloc_free_roots:string list -> string list -> int * Finding.t list
(** [read_sources] then [lint_sources]; returns the number of files
    scanned alongside the findings. *)
