(** Cross-module call graph over the pass-1 summaries.

    Nodes are the toplevel bindings of every parsed file, ordered by
    (path, source order); the array index is the node id, so walks in
    id order are deterministic. Resolution is name-based — same-file
    mentions respect shadowing by line, [M.Sub.f] qualifiers are
    dropped from the left until a summary matches, and a caller in the
    same directory wins when two files compile to the same module name.
    Unresolved names (stdlib, locals) produce no edge; indirect calls
    through closure fields are opaque by design (see docs/LINT.md). *)

type edge = {
  target : int;
  eloc : Location.t;  (** call site (an unguarded one when any exists) *)
  hot : bool;  (** reached by at least one unguarded call *)
  min_args : int;
      (** fewest non-optional args over unguarded real applications of
          the target; [-1] when the target is only mentioned bare *)
}

type t

val build : (string * Summary.node list) list -> t
(** [build files] over [(path, summaries)] pairs, one per parsed file. *)

val node : t -> int -> Summary.node
val size : t -> int

val edges : t -> int -> edge list
(** Outgoing edges, deduped per target (an unguarded call dominates a
    guarded one to the same target), sorted by target id. *)

val line_of : Location.t -> int

val dump : t -> string
(** Human-readable listing for [--graph-dump]: every node with its
    roots/mutable tags and resolved out-edges. *)
