open Mptcp_repro.Netsim

(* Timer handles are discarded in tests: scheduling here is fire-and-forget. *)
module Sim = struct
  include Sim

  let schedule_at ?src sim t f = ignore (Sim.schedule_at ?src sim t f : Sim.Timer.t)
  let schedule_after ?src sim d f = ignore (Sim.schedule_after ?src sim d f : Sim.Timer.t)
end

let check_close eps = Alcotest.(check (float eps))

(* --- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:5 and b = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.float a = Rng.float b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_split_independent () =
  let a = Rng.create ~seed:9 in
  let b = Rng.split a in
  let x = Rng.float a and y = Rng.float b in
  Alcotest.(check bool) "distinct" true (x <> y)

let test_rng_float_range () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_int_range () =
  let r = Rng.create ~seed:4 in
  let seen = Array.make 7 false in
  for _ = 1 to 500 do
    let i = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 7);
    seen.(i) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_int_invalid () =
  let r = Rng.create ~seed:4 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int r 0))

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:11 in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:0.2 in
    Alcotest.(check bool) "positive" true (x >= 0.);
    acc := !acc +. x
  done;
  check_close 0.01 "mean" 0.2 (!acc /. float_of_int n)

let test_rng_permutation () =
  let r = Rng.create ~seed:13 in
  let p = Rng.permutation r 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 50 Fun.id) sorted

let test_rng_derangement () =
  let r = Rng.create ~seed:17 in
  for _ = 1 to 20 do
    let p = Rng.derangement_permutation r 10 in
    Array.iteri
      (fun i v -> Alcotest.(check bool) "no fixed point" true (i <> v))
      p
  done

let test_rng_derangement_n2 () =
  let r = Rng.create ~seed:19 in
  let p = Rng.derangement_permutation r 2 in
  Alcotest.(check (array int)) "swap" [| 1; 0 |] p

let prop_shuffle_preserves_elements =
  QCheck.Test.make ~name:"rng: shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Rng.shuffle (Rng.create ~seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* --- Sim --------------------------------------------------------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule_at sim 3. (fun () -> log := 3 :: !log);
  Sim.schedule_at sim 1. (fun () -> log := 1 :: !log);
  Sim.schedule_at sim 2. (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.schedule_at sim 1. (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "insertion order at equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_sim_clock_advances () =
  let sim = Sim.create () in
  let seen = ref 0. in
  Sim.schedule_at sim 2.5 (fun () -> seen := Sim.now sim);
  Sim.run sim;
  check_close 1e-12 "clock at event" 2.5 !seen

let test_sim_run_until_horizon () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule_at sim 10. (fun () -> fired := true);
  Sim.run_until sim 5.;
  Alcotest.(check bool) "not yet" false !fired;
  check_close 1e-12 "clock at horizon" 5. (Sim.now sim);
  Sim.run_until sim 15.;
  Alcotest.(check bool) "fired" true !fired

let test_sim_schedule_during_run () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule_at sim 1. (fun () ->
      log := "a" :: !log;
      Sim.schedule_after sim 1. (fun () -> log := "b" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log)

let test_sim_rejects_past () =
  let sim = Sim.create () in
  Sim.schedule_at sim 5. (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Sim.schedule_at: time in the past") (fun () ->
          Sim.schedule_at sim 1. (fun () -> ())));
  Sim.run sim

let test_sim_pending_and_processed () =
  let sim = Sim.create () in
  for i = 1 to 5 do
    Sim.schedule_at sim (float_of_int i) (fun () -> ())
  done;
  Alcotest.(check int) "pending" 5 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "drained" 0 (Sim.pending sim);
  Alcotest.(check int) "processed" 5 (Sim.events_processed sim)

let prop_sim_heap_orders_events =
  QCheck.Test.make ~name:"sim: events always fire in time order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range 0. 100.))
    (fun times ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter
        (fun t -> Sim.schedule_at sim t (fun () -> fired := t :: !fired))
        times;
      Sim.run sim;
      let fired = List.rev !fired in
      fired = List.stable_sort compare times)

(* --- Packet ------------------------------------------------------------ *)

let test_packet_forward_advances () =
  let visits = ref [] in
  let hop name p =
    visits := name :: !visits;
    if name <> "c" then Packet.forward p
  in
  let route = [| hop "a"; hop "b"; hop "c" |] in
  let p = Packet.data ~flow:1 ~subflow:0 ~seq:7 ~sent_at:0. ~route in
  Packet.forward p;
  Alcotest.(check (list string)) "visits all hops" [ "a"; "b"; "c" ]
    (List.rev !visits)

let test_packet_sizes () =
  let p = Packet.data ~flow:0 ~subflow:0 ~seq:0 ~sent_at:0. ~route:[||] in
  Alcotest.(check int) "data" 1500 p.Packet.size_bytes;
  let a =
    Packet.ack ~flow:0 ~subflow:0 ~ackno:0 ~echo:0. ~sack:None ~route:[||]
      ~sent_at:0.
  in
  Alcotest.(check int) "ack" 40 a.Packet.size_bytes

(* --- Pipe --------------------------------------------------------------- *)

let test_pipe_delays () =
  let sim = Sim.create () in
  let pipe = Pipe.create ~sim ~delay:0.25 in
  let arrival = ref nan in
  let sink p =
    ignore p;
    arrival := Sim.now sim
  in
  let route = [| Pipe.hop pipe; sink |] in
  let p = Packet.data ~flow:0 ~subflow:0 ~seq:0 ~sent_at:0. ~route in
  Sim.schedule_at sim 1. (fun () -> Packet.forward p);
  Sim.run sim;
  check_close 1e-12 "arrival time" 1.25 !arrival

let test_pipe_rejects_negative () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Pipe.create: negative delay")
    (fun () -> ignore (Pipe.create ~sim ~delay:(-1.)))

let test_pipe_preserves_order_and_concurrency () =
  let sim = Sim.create () in
  let pipe = Pipe.create ~sim ~delay:0.1 in
  let arrivals = ref [] in
  let sink (p : Packet.t) = arrivals := (p.Packet.seq, Sim.now sim) :: !arrivals in
  let route = [| Pipe.hop pipe; sink |] in
  (* two packets 10 ms apart both experience exactly 100 ms *)
  Sim.schedule_at sim 0. (fun () ->
      Packet.forward (Packet.data ~flow:0 ~subflow:0 ~seq:1 ~sent_at:0. ~route));
  Sim.schedule_at sim 0.01 (fun () ->
      Packet.forward (Packet.data ~flow:0 ~subflow:0 ~seq:2 ~sent_at:0. ~route));
  Sim.run sim;
  match List.rev !arrivals with
  | [ (1, t1); (2, t2) ] ->
    check_close 1e-12 "first" 0.1 t1;
    check_close 1e-12 "second" 0.11 t2
  | _ -> Alcotest.fail "expected two arrivals"

(* --- Queue --------------------------------------------------------------- *)

let data_to ~route seq = Packet.data ~flow:0 ~subflow:0 ~seq ~sent_at:0. ~route

let test_queue_serialization_rate () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  (* 1500 B at 12 Mb/s = 1 ms per packet *)
  let q = Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:10
      ~discipline:Queue.Droptail () in
  let times = ref [] in
  let sink (_ : Packet.t) = times := Sim.now sim :: !times in
  let route = [| Queue.hop q; sink |] in
  Sim.schedule_at sim 0. (fun () ->
      Packet.forward (data_to ~route 0);
      Packet.forward (data_to ~route 1);
      Packet.forward (data_to ~route 2));
  Sim.run sim;
  match List.rev !times with
  | [ a; b; c ] ->
    check_close 1e-9 "first" 0.001 a;
    check_close 1e-9 "second" 0.002 b;
    check_close 1e-9 "third" 0.003 c
  | _ -> Alcotest.fail "expected three deliveries"

let test_queue_droptail_overflow () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let q = Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:5
      ~discipline:Queue.Droptail () in
  let delivered = ref 0 in
  let sink (_ : Packet.t) = incr delivered in
  let route = [| Queue.hop q; sink |] in
  Sim.schedule_at sim 0. (fun () ->
      for i = 0 to 19 do
        Packet.forward (data_to ~route i)
      done);
  Sim.run sim;
  Alcotest.(check int) "five pass" 5 !delivered;
  Alcotest.(check int) "rest dropped" 15 (Queue.drops q);
  Alcotest.(check int) "all arrivals counted" 20 (Queue.arrivals q);
  check_close 1e-9 "loss probability" 0.75 (Queue.loss_probability q)

let test_queue_red_drops_under_sustained_load () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:2 in
  let q = Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:300
      ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:12.)) () in
  let sink (_ : Packet.t) = () in
  let route = [| Queue.hop q; sink |] in
  (* 2x overload for 4 seconds *)
  let rec offer i =
    if i < 8000 then begin
      Packet.forward (data_to ~route i);
      Sim.schedule_after sim 0.0005 (fun () -> offer (i + 1))
    end
  in
  Sim.schedule_at sim 0. (fun () -> offer 0);
  Sim.run sim;
  Alcotest.(check bool) "red drops" true (Queue.drops q > 0);
  (* RED keeps the backlog mostly below the hard limit *)
  Alcotest.(check bool) "buffer never the binding constraint" true
    (Queue.backlog q < 300)

let test_queue_red_no_drops_light_load () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let q = Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:300
      ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:12.)) () in
  let sink (_ : Packet.t) = () in
  let route = [| Queue.hop q; sink |] in
  (* offered load at half capacity: average queue stays < min_th *)
  let rec offer i =
    if i < 2000 then begin
      Packet.forward (data_to ~route i);
      Sim.schedule_after sim 0.002 (fun () -> offer (i + 1))
    end
  in
  Sim.schedule_at sim 0. (fun () -> offer 0);
  Sim.run sim;
  Alcotest.(check int) "no drops" 0 (Queue.drops q)

let test_queue_red_profile () =
  (* paper: p = 0 below min_th, 0.1 at max_th, then linear to 1 at 2max_th *)
  let params = Queue.paper_red ~link_mbps:10. in
  check_close 1e-9 "min_th" 25. params.Queue.min_th;
  check_close 1e-9 "max_th" 50. params.Queue.max_th;
  check_close 1e-9 "max_p" 0.1 params.Queue.max_p;
  let scaled = Queue.paper_red ~link_mbps:20. in
  check_close 1e-9 "scales with capacity" 50. scaled.Queue.min_th

let test_queue_ack_not_counted_in_loss_stats () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:4 in
  let q = Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:10
      ~discipline:Queue.Droptail () in
  let sink (_ : Packet.t) = () in
  let route = [| Queue.hop q; sink |] in
  Sim.schedule_at sim 0. (fun () ->
      Packet.forward
        (Packet.ack ~flow:0 ~subflow:0 ~ackno:0 ~echo:0. ~sack:None ~route
           ~sent_at:0.));
  Sim.run sim;
  Alcotest.(check int) "acks invisible to loss stats" 0 (Queue.arrivals q)

let test_queue_utilization_and_reset () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let q = Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:10
      ~discipline:Queue.Droptail () in
  let sink (_ : Packet.t) = () in
  let route = [| Queue.hop q; sink |] in
  Sim.schedule_at sim 0. (fun () ->
      for i = 0 to 4 do
        Packet.forward (data_to ~route i)
      done);
  Sim.run sim;
  (* 5 packets in 5 ms of busy time; over a 10 ms window: 50% *)
  check_close 1e-9 "utilization" 0.5 (Queue.utilization q ~since:0. ~now:0.01);
  Queue.reset_stats q;
  Alcotest.(check int) "reset" 0 (Queue.arrivals q);
  check_close 1e-9 "bytes reset" 0.
    (Queue.utilization q ~since:0. ~now:0.01)

let test_queue_invalid_args () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "rate" (Invalid_argument "Queue.create: rate must be > 0")
    (fun () ->
      ignore
        (Queue.create ~sim ~rng ~rate_bps:0. ~buffer_pkts:10
           ~discipline:Queue.Droptail ()));
  Alcotest.check_raises "buffer"
    (Invalid_argument "Queue.create: buffer must be > 0") (fun () ->
      ignore
        (Queue.create ~sim ~rng ~rate_bps:1e6 ~buffer_pkts:0
           ~discipline:Queue.Droptail ()))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng: split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng: int range covers" `Quick test_rng_int_range;
    Alcotest.test_case "rng: int invalid bound" `Quick test_rng_int_invalid;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: permutation" `Quick test_rng_permutation;
    Alcotest.test_case "rng: derangement" `Quick test_rng_derangement;
    Alcotest.test_case "rng: derangement n=2" `Quick test_rng_derangement_n2;
    q prop_shuffle_preserves_elements;
    Alcotest.test_case "sim: time ordering" `Quick test_sim_ordering;
    Alcotest.test_case "sim: FIFO tie-break" `Quick test_sim_fifo_ties;
    Alcotest.test_case "sim: clock advances" `Quick test_sim_clock_advances;
    Alcotest.test_case "sim: run_until horizon" `Quick test_sim_run_until_horizon;
    Alcotest.test_case "sim: schedule during run" `Quick
      test_sim_schedule_during_run;
    Alcotest.test_case "sim: rejects past events" `Quick test_sim_rejects_past;
    Alcotest.test_case "sim: pending/processed counters" `Quick
      test_sim_pending_and_processed;
    q prop_sim_heap_orders_events;
    Alcotest.test_case "packet: forward walks route" `Quick
      test_packet_forward_advances;
    Alcotest.test_case "packet: sizes" `Quick test_packet_sizes;
    Alcotest.test_case "pipe: constant delay" `Quick test_pipe_delays;
    Alcotest.test_case "pipe: rejects negative delay" `Quick
      test_pipe_rejects_negative;
    Alcotest.test_case "pipe: order and concurrency" `Quick
      test_pipe_preserves_order_and_concurrency;
    Alcotest.test_case "queue: serialization rate" `Quick
      test_queue_serialization_rate;
    Alcotest.test_case "queue: droptail overflow" `Quick
      test_queue_droptail_overflow;
    Alcotest.test_case "queue: RED drops under load" `Quick
      test_queue_red_drops_under_sustained_load;
    Alcotest.test_case "queue: RED quiet under light load" `Quick
      test_queue_red_no_drops_light_load;
    Alcotest.test_case "queue: paper RED profile" `Quick test_queue_red_profile;
    Alcotest.test_case "queue: acks not in loss stats" `Quick
      test_queue_ack_not_counted_in_loss_stats;
    Alcotest.test_case "queue: utilization and reset" `Quick
      test_queue_utilization_and_reset;
    Alcotest.test_case "queue: invalid args" `Quick test_queue_invalid_args;
  ]

(* --- Invariant -------------------------------------------------------- *)

(* arm/disarm around each body so the rest of the suite keeps its
   default-off behaviour *)
let with_invariants f =
  Invariant.set_enabled true;
  Fun.protect ~finally:(fun () -> Invariant.set_enabled false) f

let test_invariant_gate () =
  Invariant.set_enabled false;
  Alcotest.(check bool) "disarmed" false (Invariant.enabled ());
  with_invariants (fun () ->
      Alcotest.(check bool) "armed" true (Invariant.enabled ());
      Invariant.require true "never raised";
      Alcotest.check_raises "require false"
        (Invariant.Violation "broken") (fun () ->
          Invariant.require false "broken"))

let test_invariant_route_overrun () =
  with_invariants (fun () ->
      let p = Packet.data ~flow:0 ~subflow:0 ~seq:0 ~sent_at:0. ~route:[||] in
      match Packet.forward p with
      | () -> Alcotest.fail "empty route accepted"
      | exception Invariant.Violation _ -> ())

let test_invariant_queue_clean_run () =
  (* the droptail overflow scenario again, with conservation checks
     armed on every enqueue and service completion: a miscount raises *)
  with_invariants (fun () ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed:1 in
      let q = Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:5
          ~discipline:Queue.Droptail () in
      let delivered = ref 0 in
      let sink (_ : Packet.t) = incr delivered in
      let route = [| Queue.hop q; sink |] in
      Sim.schedule_at sim 0. (fun () ->
          for i = 0 to 19 do
            Packet.forward (data_to ~route i)
          done);
      Sim.run sim;
      Alcotest.(check int) "five pass" 5 !delivered;
      Alcotest.(check int) "capacity exposed" 5 (Queue.capacity q))

let test_invariant_survives_stats_reset () =
  (* reset_stats must not zero the conservation counters mid-run *)
  with_invariants (fun () ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed:7 in
      let q = Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:8
          ~discipline:Queue.Droptail () in
      let route = [| Queue.hop q; (fun (_ : Packet.t) -> ()) |] in
      Sim.schedule_at sim 0. (fun () ->
          for i = 0 to 5 do
            Packet.forward (data_to ~route i)
          done);
      Sim.schedule_at sim 0.001 (fun () -> Queue.reset_stats q);
      Sim.schedule_at sim 0.002 (fun () ->
          for i = 6 to 11 do
            Packet.forward (data_to ~route i)
          done);
      Sim.run sim;
      Alcotest.(check int) "post-reset arrivals only" 6 (Queue.arrivals q))

let suite =
  suite
  @ [
      Alcotest.test_case "invariant: gate and require" `Quick
        test_invariant_gate;
      Alcotest.test_case "invariant: route overrun caught" `Quick
        test_invariant_route_overrun;
      Alcotest.test_case "invariant: conservation on clean run" `Quick
        test_invariant_queue_clean_run;
      Alcotest.test_case "invariant: counters survive reset_stats" `Quick
        test_invariant_survives_stats_reset;
    ]
