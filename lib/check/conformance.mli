(** The sim-vs-fluid conformance registry.

    Each {!case} runs one measurement — a packet simulation of a paper
    scenario, a fluid-model cross-validation, or a fault-injection
    recovery scenario — and checks the resulting metrics against
    {!Band.t} tolerance bands derived from the paper's analytical
    predictions. All runs use fixed seeds and deterministic counters, so
    {!run_all} produces byte-identical reports across invocations. *)

type case = {
  name : string;  (** slug, e.g. ["a/lia"] or ["fault/link-flap"] *)
  doc : string;  (** what is being cross-validated, with paper reference *)
  bands : Band.t list;
  run : unit -> (string * float) list;  (** metric name/value pairs *)
}

val cases : unit -> case list
(** The full registry: scenarios A/B/C under LIA, OLIA and uncoupled
    Reno vs their fluid predictions; closed-form vs general-solver
    cross-checks; and the {!Faults} recovery scenarios. Building the
    registry solves the uncoupled equilibria, so it takes a moment. *)

type case_report = {
  case : string;
  doc : string;
  results : Band.result list;
  pass : bool;
}

type report = {
  cases : case_report list;
  pass : bool;
  bands_total : int;
  bands_failed : int;
}

val run_case : case -> case_report

val run_all : ?only:string -> unit -> report
(** Run every case whose name contains [only] (all by default). *)

val case_report_to_json : case_report -> Repro_stats.Json.t

val report_to_json : report -> Repro_stats.Json.t
(** Machine-readable conformance report: overall verdict, per-case band
    results with expected/lo/hi/actual and the paper reference. *)
