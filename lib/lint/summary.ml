open Parsetree

(* Pass 1 of the whole-program analyzer: digest every toplevel value
   binding of a parsed implementation into one [node] — its allocation
   sites, the names it calls or mentions, its nondeterminism sources
   and output sinks, and whether it defines toplevel mutable state.
   Nested functions fold into their enclosing toplevel binding; the
   call graph (pass 2) never looks below that granularity.

   Like the per-file rules this is syntactic, and the approximations
   are deliberate and documented in docs/LINT.md:

   - indirect calls (record-field closures like [cc.increase], array
     dispatch like [p.route.(p.hop)]) are opaque — the runtime
     Gc.minor_words canary in test_timer.ml backs the static story;
   - a closure is an allocation only when it captures: a [fun] whose
     body mentions no binding of the enclosing function scope is a
     constant closure and statically allocated;
   - branches guarded by the repo's zero-cost-off idiom
     ([Invariant.enabled ()], [Trace.enabled ()], [Profile.enabled ()],
     directly or through a local [let traced = Trace.enabled ()]), and
     arguments of [invalid_arg]/[failwith]/[raise]/[assert], are
     off the steady path and marked [guarded];
   - boxed int64/int32/nativeint arithmetic is not tracked. *)

type alloc = { aloc : Location.t; what : string; aguarded : bool }

type call = {
  callee : Longident.t;
  cloc : Location.t;
  args : int;  (* supplied non-optional arguments; -1 = bare mention *)
  cguarded : bool;
}

type source_kind = Wall_clock | Ambient_random | Table_order | Float_compare

let source_kind_name = function
  | Wall_clock -> "wall-clock time"
  | Ambient_random -> "ambient randomness"
  | Table_order -> "Hashtbl iteration order"
  | Float_compare -> "polymorphic compare on floats"

type nsource = { skind : source_kind; sname : string; sloc : Location.t }

type node = {
  path : string;
  modname : string;
  qual : string;  (* name within the file, e.g. "Timer.cancel" *)
  nloc : Location.t;
  alloc_free_root : bool;  (* carries [@olia.alloc_free] *)
  inline : bool;  (* carries [@inline] *)
  arity : int;  (* leading fun parameters; 0 = plain value *)
  required : int;  (* [arity] minus optional parameters *)
  allocs : alloc list;
  calls : call list;
  sources : nsource list;
  sinks : (string * Location.t) list;
  sorts : bool;  (* calls a sort: sanitizes Table_order taint *)
  float_return : bool;  (* tail positions are syntactically float *)
  creates_mutable : string option;  (* toplevel mutable state it defines *)
}

let display n = n.modname ^ "." ^ n.qual

(* --- name helpers ----------------------------------------------------- *)

let last2 name =
  match List.rev (String.split_on_char '.' name) with
  | f :: m :: _ -> m ^ "." ^ f
  | _ -> name

(* [Trace.sink_armed] guards the variant-sink fallback inside the
   scalar emission functions: the branch allocates the event record,
   but only runs in sink mode (single-domain, explicitly armed), so it
   is pruned from the R9 proof exactly like armed invariants. The bare
   [sink_armed] entry matches the unqualified calls inside Trace
   itself ([last2] keeps a lone identifier as-is). *)
let guard_fns =
  [
    "Invariant.enabled";
    "Trace.enabled";
    "Trace.sink_armed";
    "sink_armed";
    "Profile.enabled";
  ]
let error_fns = [ "invalid_arg"; "failwith"; "raise"; "raise_notrace" ]

let allocating_fns =
  [
    "ref";
    "Array.make";
    "Array.init";
    "Array.append";
    "Array.copy";
    "Array.sub";
    "Array.map";
    "Array.mapi";
    "Array.of_list";
    "Array.to_list";
    "Float.Array.make";
    "Float.Array.init";
    "List.map";
    "List.mapi";
    "List.init";
    "List.filter";
    "List.filter_map";
    "List.rev";
    "List.append";
    "List.concat";
    "List.concat_map";
    "List.sort";
    "@";
    "^";
    "String.concat";
    "String.make";
    "String.sub";
    "String.init";
    "Printf.sprintf";
    "Printf.printf";
    "Format.sprintf";
    "Format.asprintf";
    "Bytes.create";
    "Bytes.make";
    "Buffer.create";
    "Buffer.contents";
    "Hashtbl.create";
    "Hashtbl.add";
    "Hashtbl.replace";
    "Hashtbl.copy";
    "Queue.create";
    "Stack.create";
    "string_of_int";
    "string_of_float";
    "float_of_string";
  ]

let wall_clock_fns = [ "Unix.gettimeofday"; "Sys.time" ]

let sink_fns =
  [
    "Trace.emit";
    (* the ring writer: the scalar armed-emission entry points persist
       whatever reaches them into the binary trace, so nondeterminism
       flowing in here is just as unreproducible as a Trace.emit *)
    "Trace.pkt_enqueue";
    "Trace.pkt_drop";
    "Trace.pkt_forward";
    "Trace.tcp_state";
    "Trace.cwnd_update";
    "Trace.rto_fired";
    "Trace.rtt_sample";
    "Trace.subflow_add";
    "Trace.subflow_remove";
    "Json.to_string";
    "Json.write";
    "Csv.write_rows";
    "Snapshot.write";
    "Meter.finish";
  ]

let order_fns = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let sort_fns =
  [
    "List.sort";
    "List.stable_sort";
    "List.sort_uniq";
    "Array.sort";
    "Array.stable_sort";
  ]

(* Same creator catalogue as R2: what counts as shared mutable state
   when bound at module level. [Domain.DLS.new_key] is deliberately
   absent — DLS state is per-domain by construction, which is exactly
   the instantiation R10 asks for. *)
let mutable_creators =
  [
    "ref";
    "Hashtbl.create";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Atomic.make";
    "Array.make";
    "Bytes.create";
    "Bytes.make";
    "Dynarray.create";
  ]

let has_attr names attrs =
  List.exists (fun a -> List.mem a.attr_name.Location.txt names) attrs

(* --- small scans ------------------------------------------------------ *)

let mutable_fields structure =
  let fields = Hashtbl.create 8 in
  let type_declaration self td =
    (match td.ptype_kind with
     | Ptype_record labels ->
       List.iter
         (fun ld ->
           match ld.pld_mutable with
           | Asttypes.Mutable -> Hashtbl.replace fields ld.pld_name.txt ()
           | Asttypes.Immutable -> ())
         labels
     | _ -> ());
    Ast_iterator.default_iterator.type_declaration self td
  in
  let it = { Ast_iterator.default_iterator with type_declaration } in
  it.structure it structure;
  fields

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pat_vars p
  | Ppat_tuple ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> pat_vars p
  | Ppat_record (fs, _) -> List.concat_map (fun (_, p) -> pat_vars p) fs
  | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p
  | Ppat_exception p ->
    pat_vars p
  | _ -> []

(* All unqualified ident mentions and all pattern-bound names below an
   expression: a lambda captures when it mentions a name bound in the
   enclosing function scope that it does not rebind itself. *)
let idents_and_patvars e =
  let ids = Hashtbl.create 16 and pvs = Hashtbl.create 16 in
  let expr self x =
    (match x.pexp_desc with
     | Pexp_ident { txt = Longident.Lident n; _ } -> Hashtbl.replace ids n ()
     | _ -> ());
    Ast_iterator.default_iterator.expr self x
  in
  let pat self p =
    (match p.ppat_desc with
     | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
       Hashtbl.replace pvs txt ()
     | _ -> ());
    Ast_iterator.default_iterator.pat self p
  in
  let it = { Ast_iterator.default_iterator with expr; pat } in
  it.expr it e;
  (ids, pvs)

(* Syntactically constant expressions are statically allocated (the
   compiler lifts them): constructor payloads and tuples of constants
   never cost a minor word at run time. *)
let rec is_constant e =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
    is_constant arg
  | Pexp_variant (_, None) -> true
  | Pexp_tuple es -> List.for_all is_constant es
  | Pexp_constraint (e, _) -> is_constant e
  | _ -> false

let rec returns_float e =
  if Rules.is_floatish e then true
  else
    match e.pexp_desc with
    | Pexp_ifthenelse (_, a, Some b) -> returns_float a || returns_float b
    | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.exists (fun c -> returns_float c.pc_rhs) cases
    | Pexp_let (_, _, b) | Pexp_sequence (_, b) | Pexp_open (_, b) ->
      returns_float b
    | Pexp_constraint (e, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) ->
      Rules.lid_name txt = "float" || returns_float e
    | Pexp_constraint (e, _) -> returns_float e
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args ) ->
      let name = Rules.canonical (Rules.lid_name txt) in
      (name = "min" || name = "max")
      && List.exists (fun (_, a) -> Rules.is_floatish a) args
    | _ -> false

(* R2-style scan of a toplevel value's right-hand side: mutable state
   created outside any function body is shared across domains. *)
let creates_mutable_state fields rhs =
  let found = ref None in
  let rec go e =
    if !found <> None then ()
    else
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> ()
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        let name = Rules.canonical (Rules.lid_name txt) in
        if List.mem name mutable_creators then found := Some name
        else List.iter (fun (_, a) -> go a) args
      | Pexp_record (fs, base) ->
        let mut =
          List.exists
            (fun ({ Location.txt; _ }, _) ->
              match txt with
              | Longident.Lident s | Longident.Ldot (_, s) ->
                Hashtbl.mem fields s
              | _ -> false)
            fs
        in
        if mut then found := Some "record with mutable fields"
        else begin
          List.iter (fun (_, v) -> go v) fs;
          Option.iter go base
        end
      | Pexp_let (_, vbs, b) ->
        List.iter (fun vb -> go vb.pvb_expr) vbs;
        go b
      | Pexp_sequence (a, b) ->
        go a;
        go b
      | Pexp_ifthenelse (c, a, b) ->
        go c;
        go a;
        Option.iter go b
      | Pexp_tuple es -> List.iter go es
      | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> go a
      | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) | Pexp_lazy a -> go a
      | Pexp_array es -> List.iter go es
      | _ -> ()
  in
  go rhs;
  !found

(* --- the walker ------------------------------------------------------- *)

type acc = {
  mutable a_allocs : alloc list;
  mutable a_calls : call list;
  mutable a_sources : nsource list;
  mutable a_sinks : (string * Location.t) list;
  mutable a_sorts : bool;
}

let is_guard_name name = List.mem (last2 name) guard_fns

(* The condition of a pruned branch: a direct [X.enabled ()] call, or a
   local bound to one ([let traced = Trace.enabled () in ... if traced]). *)
let is_guard_cond guards e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    is_guard_name (Rules.canonical (Rules.lid_name txt))
  | Pexp_ident { txt = Longident.Lident n; _ } -> List.mem n guards
  | _ -> false

let walk_binding ~acc ~env0 body0 =
  let acc : acc = acc in
  let record_alloc loc what guarded =
    acc.a_allocs <- { aloc = loc; what; aguarded = guarded } :: acc.a_allocs
  in
  let note_ident ~guarded ~loc txt =
    let name = Rules.canonical (Rules.lid_name txt) in
    if Rules.lid_root txt = "Random" then
      acc.a_sources <-
        { skind = Ambient_random; sname = name; sloc = loc } :: acc.a_sources
    else if List.mem name wall_clock_fns then
      acc.a_sources <-
        { skind = Wall_clock; sname = name; sloc = loc } :: acc.a_sources;
    ignore guarded
  in
  (* [env] holds the names bound in the enclosing function scope of the
     current toplevel binding (parameters and locals); [guards] the
     locals bound to a guard call; [guarded] whether the current branch
     is off the steady path. *)
  let rec walk env guards guarded e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
      note_ident ~guarded ~loc txt;
      let mention =
        match txt with
        | Longident.Lident n -> not (List.mem n env)
        | _ -> true
      in
      if mention then
        acc.a_calls <-
          { callee = txt; cloc = loc; args = -1; cguarded = guarded }
          :: acc.a_calls
    | Pexp_fun _ | Pexp_function _ -> lambda env guards guarded e
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc }; _ } as _f), args) ->
      let name = Rules.canonical (Rules.lid_name txt) in
      let l2 = last2 name in
      note_ident ~guarded ~loc txt;
      let supplied =
        List.length
          (List.filter
             (fun (lbl, _) ->
               match lbl with Asttypes.Optional _ -> false | _ -> true)
             args)
      in
      let local =
        match txt with Longident.Lident n -> List.mem n env | _ -> false
      in
      if not local then
        acc.a_calls <-
          { callee = txt; cloc = loc; args = supplied; cguarded = guarded }
          :: acc.a_calls;
      if List.mem name allocating_fns then
        record_alloc e.pexp_loc
          (Printf.sprintf "call to %s (allocating)" name)
          guarded;
      if List.mem l2 order_fns then
        acc.a_sources <-
          { skind = Table_order; sname = name; sloc = loc } :: acc.a_sources;
      if List.mem l2 sort_fns then acc.a_sorts <- true;
      if List.mem l2 sink_fns then
        acc.a_sinks <- (name, loc) :: acc.a_sinks;
      (match (name, args) with
       | "compare", [ (_, a); (_, b) ]
         when Rules.is_floatish a || Rules.is_floatish b ->
         acc.a_sources <-
           { skind = Float_compare; sname = "compare"; sloc = loc }
           :: acc.a_sources
       | _ -> ());
      (* arguments of an error constructor never run on the steady path *)
      let arg_guarded = guarded || List.mem name error_fns in
      List.iter (fun (_, a) -> walk env guards arg_guarded a) args
    | Pexp_apply (f, args) ->
      walk env guards guarded f;
      List.iter (fun (_, a) -> walk env guards guarded a) args
    | Pexp_ifthenelse (cond, a, b) ->
      if is_guard_cond guards cond then begin
        walk env guards guarded cond;
        walk env guards true a;
        Option.iter (walk env guards guarded) b
      end
      else begin
        walk env guards guarded cond;
        walk env guards guarded a;
        Option.iter (walk env guards guarded) b
      end
    | Pexp_let (rf, vbs, body) ->
      let bound = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
      let env_rhs =
        match rf with Asttypes.Recursive -> bound @ env | _ -> env
      in
      List.iter (fun vb -> walk env_rhs guards guarded vb.pvb_expr) vbs;
      let guards =
        match vbs with
        | [ { pvb_pat = { ppat_desc = Ppat_var { txt; _ }; _ }; pvb_expr; _ } ]
          when is_guard_cond [] pvb_expr ->
          txt :: guards
        | _ -> guards
      in
      walk (bound @ env) guards guarded body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk env guards guarded scrut;
      List.iter
        (fun c ->
          let env = pat_vars c.pc_lhs @ env in
          Option.iter (walk env guards guarded) c.pc_guard;
          walk env guards guarded c.pc_rhs)
        cases
    | Pexp_sequence (a, b) ->
      walk env guards guarded a;
      walk env guards guarded b
    | Pexp_while (c, b) ->
      walk env guards guarded c;
      walk env guards guarded b
    | Pexp_for (p, lo, hi, _, b) ->
      walk env guards guarded lo;
      walk env guards guarded hi;
      walk (pat_vars p @ env) guards guarded b
    | Pexp_tuple es ->
      if not (is_constant e) then
        record_alloc e.pexp_loc "tuple construction" guarded;
      List.iter (walk env guards guarded) es
    | Pexp_record (fs, base) ->
      record_alloc e.pexp_loc "record construction" guarded;
      List.iter (fun (_, v) -> walk env guards guarded v) fs;
      Option.iter (walk env guards guarded) base
    | Pexp_construct ({ txt; _ }, Some arg) ->
      if not (is_constant e) then
        record_alloc e.pexp_loc
          (Printf.sprintf "constructor %s with payload" (Rules.lid_name txt))
          guarded;
      walk env guards guarded arg
    | Pexp_construct (_, None) -> ()
    | Pexp_variant (_, Some arg) ->
      if not (is_constant e) then
        record_alloc e.pexp_loc "polymorphic variant with payload" guarded;
      walk env guards guarded arg
    | Pexp_variant (_, None) -> ()
    | Pexp_array [] -> ()
    | Pexp_array es ->
      record_alloc e.pexp_loc "array literal" guarded;
      List.iter (walk env guards guarded) es
    | Pexp_lazy inner ->
      record_alloc e.pexp_loc "lazy thunk" guarded;
      walk env guards guarded inner
    | Pexp_assert inner ->
      (* compiles to a conditional raise: allocation only on failure *)
      walk env guards true inner
    | Pexp_field (o, _) -> walk env guards guarded o
    | Pexp_setfield (o, _, v) ->
      walk env guards guarded o;
      walk env guards guarded v
    | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) ->
      walk env guards guarded inner
    | Pexp_open (_, body) | Pexp_newtype (_, body) ->
      walk env guards guarded body
    | Pexp_letmodule (_, _, body) -> walk env guards guarded body
    | Pexp_constant _ | Pexp_unreachable | Pexp_extension _ -> ()
    | _ -> fallback env guards guarded e
  and fallback env guards guarded e =
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> walk env guards guarded child);
      }
    in
    Ast_iterator.default_iterator.expr it e
  and lambda env guards guarded e =
    (* Peel every consecutive parameter: [fun a b -> ...] is one flat
       closure. It allocates only if the body mentions (and does not
       rebind) a name from the enclosing scope. *)
    let rec peel params body =
      match body.pexp_desc with
      | Pexp_fun (_, _, p, b) -> peel (pat_vars p @ params) b
      | Pexp_newtype (_, b) -> peel params b
      | _ -> (params, body)
    in
    match e.pexp_desc with
    | Pexp_function cases ->
      if env <> [] then begin
        let ids, pvs = idents_and_patvars e in
        let captured =
          List.filter
            (fun n -> Hashtbl.mem ids n && not (Hashtbl.mem pvs n))
            env
        in
        if captured <> [] then
          record_alloc e.pexp_loc
            (Printf.sprintf "closure capturing %s"
               (String.concat ", "
                  (List.sort_uniq String.compare captured)))
            guarded
      end;
      List.iter
        (fun c ->
          let env = pat_vars c.pc_lhs @ env in
          Option.iter (walk env guards guarded) c.pc_guard;
          walk env guards guarded c.pc_rhs)
        cases
    | _ ->
      let params, body = peel [] e in
      if env <> [] then begin
        let ids, pvs = idents_and_patvars e in
        let captured =
          List.filter
            (fun n -> Hashtbl.mem ids n && not (Hashtbl.mem pvs n))
            env
        in
        if captured <> [] then
          record_alloc e.pexp_loc
            (Printf.sprintf "closure capturing %s"
               (String.concat ", "
                  (List.sort_uniq String.compare captured)))
            guarded
      end;
      walk (params @ env) guards guarded body
  in
  walk env0 [] false body0

(* --- structure scan --------------------------------------------------- *)

let rec binding_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let of_structure ~path structure =
  let modname = Rules.module_name_of path in
  let fields = mutable_fields structure in
  let nodes = ref [] in
  let rec scan_items prefix items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (binding prefix) vbs
        | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } ->
          scan_module (prefix ^ m ^ ".") pmb_expr
        | Pstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match mb.pmb_name.txt with
              | Some m -> scan_module (prefix ^ m ^ ".") mb.pmb_expr
              | None -> ())
            mbs
        | Pstr_include { pincl_mod; _ } -> scan_module prefix pincl_mod
        | _ -> ())
      items
  and scan_module prefix me =
    match me.pmod_desc with
    | Pmod_structure items -> scan_items prefix items
    | Pmod_constraint (me, _) | Pmod_functor (_, me) ->
      scan_module prefix me
    | _ -> ()
  and binding prefix vb =
    let name = match binding_name vb.pvb_pat with Some n -> n | None -> "_" in
    let attrs = vb.pvb_attributes @ vb.pvb_expr.pexp_attributes in
    let rec peel env arity req e =
      match e.pexp_desc with
      | Pexp_fun (lbl, _, pat, body) ->
        let req =
          match lbl with Asttypes.Optional _ -> req | _ -> req + 1
        in
        peel (pat_vars pat @ env) (arity + 1) req body
      | Pexp_newtype (_, body) -> peel env arity req body
      | _ -> (env, arity, req, e)
    in
    let env0, arity, required, body = peel [] 0 0 vb.pvb_expr in
    let arity, body_for_walk =
      match body.pexp_desc with
      | Pexp_function _ when arity >= 0 -> (arity + 1, body)
      | _ -> (arity, body)
    in
    let required =
      match body.pexp_desc with
      | Pexp_function _ -> required + 1
      | _ -> required
    in
    let acc =
      {
        a_allocs = [];
        a_calls = [];
        a_sources = [];
        a_sinks = [];
        a_sorts = false;
      }
    in
    (match body_for_walk.pexp_desc with
     | Pexp_function cases ->
       List.iter
         (fun c ->
           let env = pat_vars c.pc_lhs @ env0 in
           (match c.pc_guard with
            | Some g -> walk_binding ~acc ~env0:env g
            | None -> ());
           walk_binding ~acc ~env0:env c.pc_rhs)
         cases
     | _ -> walk_binding ~acc ~env0 body_for_walk);
    let creates_mutable =
      if arity = 0 then creates_mutable_state fields vb.pvb_expr else None
    in
    nodes :=
      {
        path;
        modname;
        qual = prefix ^ name;
        nloc = vb.pvb_loc;
        alloc_free_root = has_attr [ "olia.alloc_free" ] attrs;
        inline = has_attr [ "inline"; "ocaml.inline" ] attrs;
        arity;
        required;
        allocs = List.rev acc.a_allocs;
        calls = List.rev acc.a_calls;
        sources = List.rev acc.a_sources;
        sinks = List.rev acc.a_sinks;
        sorts = acc.a_sorts;
        float_return = arity > 0 && returns_float body_for_walk;
        creates_mutable;
      }
      :: !nodes
  in
  scan_items "" structure;
  List.rev !nodes
