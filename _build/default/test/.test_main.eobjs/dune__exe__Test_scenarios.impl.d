test/test_scenarios.ml: Alcotest Array Float List Mptcp_repro Printf
