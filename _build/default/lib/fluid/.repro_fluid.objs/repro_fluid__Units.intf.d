lib/fluid/units.mli:
