(** OLIA, the opportunistic linked-increases algorithm (paper §IV).

    For each ACK on path [r] the window grows by

    {v  w_r/rtt_r²
       ───────────────  +  α_r / w_r        (Eq. 5)
       (Σ_p w_p/rtt_p)²                     v}

    where [α_r] (Eq. 6) redistributes increase from maximal-window paths
    [M] towards presumably-best paths [B\M], ranked by the inter-loss
    transmitted volume [ℓ_r = max(ℓ1_r, ℓ2_r)]:

    - [ℓ2_r] counts packets acknowledged since the last loss on [r];
    - on a loss, [ℓ1_r ← ℓ2_r] and [ℓ2_r ← 0] (§IV-B).

    Losses halve the window as in TCP. The Linux implementation forces
    the slow-start threshold to 1 MSS when several paths are established,
    which [create] reports through [multipath_initial_ssthresh]. *)

val create : unit -> Cc_types.t

type probe = {
  ell : float array;  (** ℓ_r = max(ℓ1, ℓ2), packets *)
  alpha : float array;  (** current α_r of Eq. 6 *)
}

val create_instrumented : unit -> Cc_types.t * (int -> probe)
(** Like [create], but also returns a probe function: [probe n] reports
    ℓ and the α values that Eq. 6 assigns for the last observed views of
    [n] subflows — used for the Fig. 7/8 α traces. *)

val alpha_values :
  ell:float array -> Cc_types.subflow_view array -> float array
(** The bare Eq. 6: [α_r] for given inter-loss volumes and views. Path
    set [B] maximises [ℓ_p/rtt_p²], [M] maximises [w_p]; ties within
    1e-9 relative tolerance are grouped. *)
