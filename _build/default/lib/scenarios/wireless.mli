(** Wireless multipath scenario, after Chen, Lim, Gibbens, Nahum, Khalili
    and Towsley's measurement study (the paper's reference [12], which
    found "MPTCP with OLIA always outperforms MPTCP with LIA in wireless
    networks").

    A dual-homed client bonds a WiFi-like path (higher rate, random
    non-congestion losses, short RTT) with a cellular-like path (lower
    rate, clean, long RTT). *)

type config = {
  wifi_mbps : float;
  wifi_loss : float;  (** random per-packet loss on the WiFi path *)
  wifi_delay_ms : float;  (** one-way propagation *)
  cell_mbps : float;
  cell_delay_ms : float;
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
}

val default : config
(** 20 Mb/s WiFi with 1% random loss and 15 ms delay; 8 Mb/s cellular
    with 40 ms delay; OLIA; 90 s / 20 s warm-up. *)

type result = {
  wifi_mbps : float;  (** goodput carried over the WiFi path *)
  cell_mbps : float;
  total_mbps : float;
  wifi_timeouts : int;
}

val run : config -> result
