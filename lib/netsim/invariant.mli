(** Debug-gated runtime invariants.

    The static pass ([olia_lint], rules R1/R2) keeps nondeterminism and
    shared state out of the libraries; these checks complement it at
    runtime, where only execution can tell whether a queue conserves
    packets or a sender's window collapsed below one MSS.

    Checks are off by default so benchmarks pay a single branch per
    site. Set [OLIA_DEBUG_INVARIANTS=1] (or [true]/[yes]/[on]) before
    starting the process to arm them; a violated invariant raises
    {!Violation} with a description of the broken state. *)

exception Violation of string

val enabled : unit -> bool
(** Are the checks armed? Call sites guard with this before building
    the (possibly costly) diagnostic message. *)

val set_enabled : bool -> unit
(** Test hook: arm or disarm the checks at runtime. Call it only from
    single-domain setup code (the flag is a plain shared cell). *)

val require : bool -> string -> unit
(** [require cond msg] raises [Violation msg] when [cond] is false.
    Unconditional — guard the call with {!enabled}. *)
