(** Fixed-width binned histograms, used to reproduce the paper's
    completion-time PDFs (Fig. 14). *)

type t
(** Mutable histogram with equal-width bins over [\[lo, hi)]. Observations
    outside the range are counted in saturating edge bins. *)

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] makes a histogram of [bins] equal-width bins
    covering [\[lo, hi)]. Raises [Invalid_argument] if [bins <= 0] or
    [hi <= lo]. *)

val add : t -> float -> unit
(** Record one observation. Values below [lo] land in the first bin,
    values at or above [hi] in the last. *)

val count : t -> int
(** Total number of recorded observations. *)

val bins : t -> int
(** Number of bins. *)

val bin_width : t -> float
(** Width of each bin. *)

val bin_center : t -> int -> float
(** Center abscissa of bin [i]. *)

val bin_count : t -> int -> int
(** Raw count in bin [i]. *)

val pdf : t -> (float * float) array
(** [(center, density)] rows: counts normalized so the histogram integrates
    to 1 (density = count / (total * width)). Empty histogram yields all-zero
    densities. *)

val cdf : t -> (float * float) array
(** [(upper-edge, cumulative fraction)] rows. *)

val quantile : t -> float -> float
(** [quantile t q] approximates the [q]-quantile (0..1) by linear
    interpolation within the containing bin. [nan] when empty. *)
