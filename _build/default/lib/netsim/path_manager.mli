(** Path management: periodically discard chronically bad subflows and
    re-probe them later — the refinement the paper's conclusion suggests
    ("discarding bad paths from the set of available paths") to push the
    probing overhead below 1 MSS/RTT. *)

type policy = {
  check_period : float;  (** seconds between quality checks *)
  discard_factor : float;
      (** discard a path whose loss-event rate exceeds this multiple of
          the best path's *)
  min_loss : float;  (** never discard below this absolute loss rate *)
  min_active : int;  (** number of subflows always kept active *)
  reprobe_period : float;  (** re-enable a discarded path after this long *)
}

val default_policy : policy
(** 5 s checks, factor 8, absolute floor 0.02, one path always active,
    30 s re-probe. *)

type t

val attach : sim:Sim.t -> policy:policy -> Tcp.conn -> t
(** Start managing a connection's subflows. *)

val discards : t -> int
(** Times a path was discarded so far. *)

val reprobes : t -> int
(** Times a discarded path was re-enabled for probing. *)
