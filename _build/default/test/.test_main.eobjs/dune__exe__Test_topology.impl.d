test/test_topology.ml: Alcotest Array Duplex Fattree Fun List Mptcp_repro Packet Printf QCheck QCheck_alcotest Queue Rng Sim
