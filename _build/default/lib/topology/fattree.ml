open Repro_netsim

type t = {
  k : int;
  host_links : Duplex.t array;  (* host -> its edge switch; fwd = up *)
  edge_agg : Duplex.t array array array;  (* [pod].[edge].[agg]; fwd = up *)
  agg_core : Duplex.t array array array;  (* [pod].[agg].[core-in-group]; fwd = up *)
}

let half t = t.k / 2
let hosts_per_pod k = k * k / 4

let create ~sim ~rng ~k ~rate_bps ~delay ~buffer_pkts ~discipline
    ?(oversubscription = 1.) () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Fattree.create: k must be even";
  if oversubscription < 1. then
    invalid_arg "Fattree.create: oversubscription < 1";
  let h = k / 2 in
  let n_hosts = k * k * k / 4 in
  let mk rate name =
    Duplex.create ~sim ~rng ~rate_bps:rate ~delay ~buffer_pkts ~discipline
      ~name ()
  in
  let up_rate = rate_bps /. oversubscription in
  let host_links =
    Array.init n_hosts (fun i -> mk rate_bps (Printf.sprintf "host%d" i))
  in
  let edge_agg =
    Array.init k (fun pod ->
        Array.init h (fun e ->
            Array.init h (fun a ->
                mk up_rate (Printf.sprintf "ea-p%d-e%d-a%d" pod e a))))
  in
  let agg_core =
    Array.init k (fun pod ->
        Array.init h (fun a ->
            Array.init h (fun j ->
                mk up_rate (Printf.sprintf "ac-p%d-a%d-c%d" pod a j))))
  in
  { k; host_links; edge_agg; agg_core }

let k t = t.k
let host_count t = t.k * t.k * t.k / 4
let switch_count t = 5 * t.k * t.k / 4

let pod_of t host = host / hosts_per_pod t.k
let edge_of t host = host mod hosts_per_pod t.k / half t

let check_pair t ~src ~dst =
  let n = host_count t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Fattree: host out of range";
  if src = dst then invalid_arg "Fattree: src = dst"

let path_count t ~src ~dst =
  check_pair t ~src ~dst;
  if pod_of t src <> pod_of t dst then half t * half t
  else if edge_of t src <> edge_of t dst then half t
  else 1

(* A path is a list of (link, up?) pairs; the reverse path uses the same
   links in the opposite order and direction. *)
let assemble legs =
  let fwd =
    List.concat_map
      (fun (l, up) ->
        Array.to_list (if up then Duplex.fwd_hops l else Duplex.rev_hops l))
      legs
  in
  let rev =
    List.concat_map
      (fun (l, up) ->
        Array.to_list (if up then Duplex.rev_hops l else Duplex.fwd_hops l))
      (List.rev legs)
  in
  { Tcp.fwd = Array.of_list fwd; rev = Array.of_list rev }

let all_paths t ~src ~dst =
  check_pair t ~src ~dst;
  let h = half t in
  let p_src = pod_of t src and p_dst = pod_of t dst in
  let e_src = edge_of t src and e_dst = edge_of t dst in
  let up_host = (t.host_links.(src), true) in
  let down_host = (t.host_links.(dst), false) in
  if p_src <> p_dst then
    Array.init (h * h) (fun i ->
        let a = i / h and j = i mod h in
        assemble
          [
            up_host;
            (t.edge_agg.(p_src).(e_src).(a), true);
            (t.agg_core.(p_src).(a).(j), true);
            (t.agg_core.(p_dst).(a).(j), false);
            (t.edge_agg.(p_dst).(e_dst).(a), false);
            down_host;
          ])
  else if e_src <> e_dst then
    Array.init h (fun a ->
        assemble
          [
            up_host;
            (t.edge_agg.(p_src).(e_src).(a), true);
            (t.edge_agg.(p_src).(e_dst).(a), false);
            down_host;
          ])
  else [| assemble [ up_host; down_host ] |]

let sample_paths t ~rng ~src ~dst ~n =
  let paths = all_paths t ~src ~dst in
  if n >= Array.length paths then paths
  else begin
    let idx = Rng.permutation rng (Array.length paths) in
    Array.init n (fun i -> paths.(idx.(i)))
  end

let core_queues t =
  let acc = ref [] in
  Array.iter
    (fun pod ->
      Array.iter
        (fun agg ->
          Array.iter
            (fun l ->
              acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc)
            agg)
        pod)
    t.agg_core;
  !acc

let all_queues t =
  let acc = ref (core_queues t) in
  Array.iter
    (fun l -> acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc)
    t.host_links;
  Array.iter
    (fun pod ->
      Array.iter
        (fun edge ->
          Array.iter
            (fun l ->
              acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc)
            edge)
        pod)
    t.edge_agg;
  !acc
