(** BALIA, the balanced linked-adaptation algorithm (Peng, Walid, Hwang,
    Low, 2014) — implemented as an extension: the successor to OLIA that
    the paper's future-work discussion anticipates.

    With [x_r = w_r/rtt_r] and [α_r = max_k x_k / x_r], each ACK on path
    [r] grows the window by
    [x_r/rtt_r / (Σ_k x_k)² · (1+α_r)/2 · (4+α_r)/5]
    and each loss shrinks it by [w_r/2 · min(α_r, 1.5)]. *)

val create : unit -> Cc_types.t
