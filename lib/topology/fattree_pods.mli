(** Pod-sharded k-ary FatTree: the same topology as {!Fattree}, cut at
    the core links for conservative parallel simulation ({!Repro_netsim.Shard}).

    Pods are assigned to shards in contiguous blocks ([shards] must
    divide [k]), every link of a pod lives on its shard's simulator,
    and each aggregation↔core link is owned by its pod's shard. The
    only inter-shard edges are the core traversals: a cross-shard path
    keeps the real aggregation→core queue (so intra-pod contention is
    exact) and replaces that link's propagation pipe with a cross-shard
    channel of the same latency — end-to-end path delay is unchanged,
    and the per-hop latency is exactly the group's conservative
    lookahead. With [shards = 1] no channel exists and the construction
    (including the RNG stream) is link-for-link identical to
    {!Fattree.create}, which is what makes the shards=1 ≡ sequential
    golden bitwise. *)

type t

val create :
  shards:int ->
  rng:Repro_netsim.Rng.t ->
  k:int ->
  rate_bps:float ->
  delay:float ->
  buffer_pkts:int ->
  discipline:Repro_netsim.Queue.discipline ->
  ?oversubscription:float ->
  unit ->
  t
(** Build the tree over [shards] fresh simulators. [k] must be even and
    ≥ 2, and [shards] must satisfy [1 ≤ shards ≤ k] and [k mod shards =
    0] (pods map to shards in blocks of [k / shards]). Other parameters
    as {!Fattree.create}; [delay] doubles as the shard lookahead, so it
    must be positive when [shards > 1]. *)

val k : t -> int
val host_count : t -> int
val shards : t -> int

val group : t -> Repro_netsim.Shard.t
(** The shard group, to run with {!Repro_netsim.Shard.run_windows}. *)

val shard_of_pod : t -> int -> int
val shard_of_host : t -> int -> int

val sim_of_host : t -> int -> Repro_netsim.Sim.t
(** The simulator owning a host's links — the [sim] for senders and the
    [rcv_sim] for receivers rooted at that host. *)

val cross_shard : t -> src:int -> dst:int -> bool
(** Do paths between these hosts cross a shard boundary? *)

val channel :
  t -> src:int -> dst:int -> Repro_netsim.Shard.channel option
(** The channel carrying shard [src] → shard [dst] traffic ([None] when
    [src = dst] or either is out of range), for cut statistics. *)

val path_count : t -> src:int -> dst:int -> int

val all_paths : t -> src:int -> dst:int -> Repro_netsim.Tcp.path array
(** Every shortest path, forward and reverse routes cut at shard
    boundaries as described above. Raises [Invalid_argument] if
    [src = dst] or out of range. *)

val sample_paths :
  t ->
  rng:Repro_netsim.Rng.t ->
  src:int ->
  dst:int ->
  n:int ->
  Repro_netsim.Tcp.path array
(** As {!Fattree.sample_paths}: [n] paths uniformly without
    replacement. *)

val shard_queues : t -> int -> Repro_netsim.Queue.t list
(** Queues owned by one shard (its pods' host, edge and core links),
    for per-shard warm-up statistic resets on that shard's own
    simulator. *)

val core_queues : t -> Repro_netsim.Queue.t list
val all_queues : t -> Repro_netsim.Queue.t list
