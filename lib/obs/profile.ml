(* lint: allow-file R1 -- wall-clock profiling of the event-loop harness; simulation results never read these values *)

(* Event-loop profiler. Same guard discipline as Trace: [enabled] is a
   single ref read, and [Sim.schedule_at] only wraps a callback in
   [dispatch] when profiling was armed at scheduling time, so the
   profiling-off path costs one ref read per schedule and nothing per
   dispatch. Attribution is by the [~src] label the scheduling site
   passes (e.g. "queue.serve", "tcp.rto"); unlabelled sites pool under
   "other". *)

(* lint: allow R2 R10 -- process-global profiler switch, armed once by the CLI or test setup before the (single-domain) profiled run starts; Exp.Sweep refuses to spawn domains while armed *)
let armed = ref false

type cell = { mutable count : int; mutable wall_s : float }

(* lint: allow R2 R10 -- paired with [armed]: the per-source accumulator table behind the profiler, guarded by [lock]; only touched when armed, never during a sweep *)
let table : (string, cell) Hashtbl.t = Hashtbl.create 16

let lock = Mutex.create ()
let enabled () = !armed
let set_enabled b = armed := b
let reset () = Mutex.protect lock (fun () -> Hashtbl.reset table)

let dispatch ~src fn =
  let t0 = Unix.gettimeofday () in
  fn ();
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.protect lock (fun () ->
      let cell =
        match Hashtbl.find_opt table src with
        | Some c -> c
        | None ->
          let c = { count = 0; wall_s = 0. } in
          Hashtbl.add table src c;
          c
      in
      cell.count <- cell.count + 1;
      cell.wall_s <- cell.wall_s +. dt)

type entry = { src : string; count : int; wall_s : float }

(* Hottest first; ties (e.g. all-zero wall on a coarse clock) break
   alphabetically so the rendering is stable. *)
let report () =
  let entries =
    Mutex.protect lock (fun () ->
        Hashtbl.fold
          (fun src (c : cell) acc ->
            { src; count = c.count; wall_s = c.wall_s } :: acc)
          table [])
  in
  List.sort
    (fun a b ->
      match compare b.wall_s a.wall_s with
      | 0 -> String.compare a.src b.src
      | c -> c)
    entries

let to_table entries =
  let total_wall = List.fold_left (fun acc e -> acc +. e.wall_s) 0. entries in
  let table =
    Repro_stats.Table.create ~title:"event-loop profile"
      ~columns:[ "source"; "dispatches"; "wall_ms"; "wall_%" ]
  in
  List.iter
    (fun e ->
      Repro_stats.Table.add_row table
        [
          e.src;
          string_of_int e.count;
          Printf.sprintf "%.3f" (e.wall_s *. 1e3);
          (if total_wall > 0. then
             Printf.sprintf "%.1f" (100. *. e.wall_s /. total_wall)
           else "-");
        ])
    entries;
  table

(* OLIA_PROFILE=1 (or true/yes/on) arms the profiler at startup and
   dumps the per-source table to stderr at exit, so any binary can be
   profiled without CLI plumbing. *)
let () =
  match Sys.getenv_opt "OLIA_PROFILE" with
  | None | Some "" | Some "0" -> ()
  | Some _ ->
    armed := true;
    at_exit (fun () ->
        match report () with
        | [] -> ()
        | entries ->
          prerr_string (Repro_stats.Table.to_string (to_table entries)))
