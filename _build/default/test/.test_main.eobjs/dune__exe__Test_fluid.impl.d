test/test_fluid.ml: Alcotest Gen List Mptcp_repro QCheck QCheck_alcotest Roots Scenario_a Scenario_b Scenario_c Stdlib Tcp_model Units
