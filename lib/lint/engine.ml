type source = { path : string; content : string }

type parsed =
  | Impl of Parsetree.structure
  | Intf
  | Failed of Finding.t

let parse { path; content } =
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf path;
  try
    if Filename.check_suffix path ".mli" then (
      ignore (Parse.interface lexbuf);
      Intf)
    else Impl (Parse.implementation lexbuf)
  with exn ->
    let loc, detail =
      match exn with
      | Syntaxerr.Error e -> (Syntaxerr.location_of_error e, "syntax error")
      | Lexer.Error (_, loc) -> (loc, "lexing error")
      | _ -> (Location.in_file path, Printexc.to_string exn)
    in
    let p = loc.Location.loc_start in
    Failed
      (Finding.v ~rule:Finding.Parse ~file:path ~line:p.Lexing.pos_lnum
         ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
         (Printf.sprintf "file does not parse (%s); no rule was checked"
            detail))

let rec dedup_sorted = function
  | a :: b :: rest when Finding.compare a b = 0 -> dedup_sorted (b :: rest)
  | a :: rest -> a :: dedup_sorted rest
  | [] -> []

let lint_sources sources =
  let structures = ref [] in
  let raw =
    List.concat_map
      (fun src ->
        match parse src with
        | Failed f -> [ f ]
        | Intf -> []
        | Impl structure ->
          structures := (src.path, structure) :: !structures;
          Rules.check_structure ~path:src.path structure)
      sources
  in
  let raw = raw @ Rules.check_registry ~sources:(List.rev !structures) in
  let findings =
    List.concat_map
      (fun src ->
        let sup = Suppress.scan ~file:src.path src.content in
        Suppress.invalid sup
        @ List.filter
            (fun f ->
              f.Finding.file = src.path && not (Suppress.permits sup f))
            raw)
      sources
  in
  dedup_sorted (List.sort Finding.compare findings)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let collect_files roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if entry <> "_build" && entry.[0] <> '.' then
            walk (Filename.concat path entry))
        (Sys.readdir path)
    else if is_source path then acc := path :: !acc
  in
  List.iter
    (fun root -> if Sys.file_exists root then walk root)
    roots;
  List.sort String.compare !acc

let lint_paths roots =
  let files = collect_files roots in
  let sources =
    List.map
      (fun path ->
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let content = really_input_string ic n in
        close_in ic;
        { path; content })
      files
  in
  (List.length files, lint_sources sources)
