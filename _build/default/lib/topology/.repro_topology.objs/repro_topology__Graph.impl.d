lib/topology/graph.ml: Array Hashtbl List Set Stdlib
