type state = { mutable base_rtt : float array }

let ensure st idx =
  if idx >= Array.length st.base_rtt then begin
    let cap = Stdlib.max (2 * (idx + 1)) 4 in
    st.base_rtt <-
      Array.init cap (fun i ->
          if i < Array.length st.base_rtt then st.base_rtt.(i) else infinity)
  end

let create ?(total_alpha = 10.) () =
  if total_alpha <= 0. then
    invalid_arg "Wvegas.create: total_alpha must be > 0";
  let st = { base_rtt = Array.make 4 infinity } in
  let increase ~views ~idx =
    ensure st idx;
    (* refresh the base-RTT estimates from the smoothed RTTs *)
    Array.iteri
      (fun i (v : Cc_types.subflow_view) ->
        ensure st i;
        if v.rtt > 0. && v.rtt < st.base_rtt.(i) then
          st.base_rtt.(i) <- v.rtt)
      views;
    let v = views.(idx) in
    let rtt = Stdlib.max v.Cc_types.rtt 1e-6 in
    let base = Stdlib.min st.base_rtt.(idx) rtt in
    let w = Stdlib.max v.Cc_types.cwnd 1e-9 in
    (* rate share of this subflow determines its backlog allowance *)
    let rate i (vi : Cc_types.subflow_view) =
      ignore i;
      vi.cwnd /. Stdlib.max vi.rtt 1e-6
    in
    let total_rate = ref 0. in
    Array.iteri (fun i vi -> total_rate := !total_rate +. rate i vi) views;
    let share = rate idx v /. Stdlib.max !total_rate 1e-9 in
    let alpha = Stdlib.max 1. (total_alpha *. share) in
    let diff = w *. (1. -. (base /. rtt)) in
    if diff < alpha then 1. /. w else if diff > alpha then -1. /. w else 0.
  in
  {
    Cc_types.name = "wvegas";
    multipath_initial_ssthresh = Some 1.;
    on_ack = (fun ~idx:_ ~acked:_ -> ());
    on_loss = (fun ~idx:_ -> ());
    increase;
    loss_decrease = Cc_types.halve;
  }
