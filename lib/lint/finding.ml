type rule =
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11
  | Parse
  | Suppress

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"
  | Parse -> "parse"
  | Suppress -> "suppress"

let rule_of_name = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | "R10" -> Some R10
  | "R11" -> Some R11
  | _ -> None

let rule_doc = function
  | R1 ->
    "determinism: all randomness and time must flow through Netsim.Rng \
     and Sim.now so sweeps replay byte-identically"
  | R2 ->
    "domain-safety: no module-level mutable state in lib/ (shared across \
     Exp.Sweep domains)"
  | R3 ->
    "float-hygiene: no structural =/<>/compare on float operands in \
     lib/fluid and lib/cc; fixed-point twins (lib/cc/*_fp.ml) must keep \
     floats out of their update paths entirely, except in \
     [@olia.float_boundary] adapters"
  | R4 ->
    "output hygiene: lib/ never prints to stdout; results flow through \
     lib/stats emitters or Netsim.Monitor"
  | R5 ->
    "registry completeness: every scenario module in lib/scenarios is \
     reachable from Scenarios.Registry"
  | R6 ->
    "error hygiene: ignore of a result value silently discards the Error \
     case (match on it or propagate it)"
  | R7 ->
    "seed plumbing: lib/scenarios must thread the RNG seed from the \
     caller's config, never hard-code or default it"
  | R8 ->
    "timer attribution: every Sim.schedule_*/Sim.every call must carry an \
     explicit ~src label so the event-loop profiler can attribute \
     dispatches"
  | R9 ->
    "alloc-free: no allocation site may be reachable from an \
     [@olia.alloc_free] hot-path entry point (whole-program)"
  | R10 ->
    "domain-safety: toplevel mutable state must not be reachable from \
     Exp.Sweep workers or scenario run functions without per-domain \
     instantiation (whole-program)"
  | R11 ->
    "determinism taint: nondeterminism sources (wall clock, ambient \
     randomness, Hashtbl iteration order, polymorphic compare on floats) \
     must not flow into trace/JSON/meter sinks (whole-program)"
  | Parse -> "the file must parse before any rule can run"
  | Suppress -> "suppression directives need valid rule ids and a reason"

let rule_index = function
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | Parse -> 12
  | Suppress -> 13

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
  root : (string * int) option;
}

let v ?root ~rule ~file ~line ~col message =
  { rule; file; line; col; message; root }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Int.compare (rule_index a.rule) (rule_index b.rule) in
        if c <> 0 then c else String.compare a.message b.message

let to_string f =
  Printf.sprintf "%s:%d:%d: %s %s" f.file f.line f.col (rule_name f.rule)
    f.message

let to_json f =
  Repro_stats.Json.Obj
    [
      ("rule", Repro_stats.Json.String (rule_name f.rule));
      ("file", Repro_stats.Json.String f.file);
      ("line", Repro_stats.Json.Int f.line);
      ("col", Repro_stats.Json.Int f.col);
      ("message", Repro_stats.Json.String f.message);
    ]
