lib/scenarios/scen_b.ml: Common List Pipe Queue Repro_cc Repro_netsim Rng Sim Tcp
