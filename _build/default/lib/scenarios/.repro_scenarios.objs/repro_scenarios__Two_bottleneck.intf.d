lib/scenarios/two_bottleneck.mli: Repro_stats
