(* Failure-injection tests: links that die and heal mid-flow, receivers
   that fall silent, and path churn. MPTCP's raison d'être is surviving
   exactly these events. *)

open Mptcp_repro.Netsim
open Mptcp_repro.Cc

(* Timer handles are discarded in tests: scheduling here is fire-and-forget. *)
module Sim = struct
  include Sim

  let schedule_at ?src sim t f = ignore (Sim.schedule_at ?src sim t f : Sim.Timer.t)
  let schedule_after ?src sim d f = ignore (Sim.schedule_after ?src sim d f : Sim.Timer.t)
end

(* a controllable on/off valve placed on a path *)
let make_gate () =
  let up = ref true in
  let hop (p : Packet.t) = if !up then Packet.forward p in
  (up, hop)

let two_path_rig ~seed =
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let mk () =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:10e6 ~buffer_pkts:300
      ~discipline:Queue.Droptail ()
  in
  let q1 = mk () and q2 = mk () in
  let pipe () = Pipe.create ~sim ~delay:0.02 in
  let gate1, ghop1 = make_gate () in
  let gate2, ghop2 = make_gate () in
  let path g q =
    {
      Tcp.fwd = [| g; Queue.hop q; Pipe.hop (pipe ()) |];
      rev = [| Pipe.hop (pipe ()) |];
    }
  in
  (sim, gate1, gate2, [| path ghop1 q1; path ghop2 q2 |])

let test_mptcp_survives_one_path_failure () =
  let sim, gate1, _gate2, paths = two_path_rig ~seed:1 in
  let conn = Tcp.create ~sim ~cc:(Olia.create ()) ~paths ~flow_id:0 () in
  Sim.schedule_at sim 20. (fun () -> gate1 := false);
  let acked_path2_at_cut = ref 0 in
  Sim.schedule_at sim 20.01 (fun () ->
      acked_path2_at_cut := Tcp.subflow_acked conn 1);
  Sim.run_until sim 60.;
  (* the surviving path keeps the connection moving at link speed *)
  let path2_after =
    float_of_int ((Tcp.subflow_acked conn 1 - !acked_path2_at_cut) * 12000)
    /. 40. /. 1e6
  in
  Alcotest.(check bool)
    (Printf.sprintf "survivor carries %.1f Mb/s" path2_after)
    true (path2_after > 6.)

let test_mptcp_reclaims_healed_path () =
  let sim, gate1, _gate2, paths = two_path_rig ~seed:2 in
  let conn = Tcp.create ~sim ~cc:(Olia.create ()) ~paths ~flow_id:0 () in
  Sim.schedule_at sim 20. (fun () -> gate1 := false);
  Sim.schedule_at sim 40. (fun () -> gate1 := true);
  let acked_at_heal = ref 0 in
  Sim.schedule_at sim 40.01 (fun () ->
      acked_at_heal := Tcp.subflow_acked conn 0);
  Sim.run_until sim 160.;
  (* after healing, path 1 carries real traffic again; RTO backoff (up to
     60 s) bounds how fast the retransmit probes rediscover it *)
  Alcotest.(check bool) "healed path reused" true
    (Tcp.subflow_acked conn 0 - !acked_at_heal > 500)

let test_total_blackout_then_recovery () =
  let sim, gate1, gate2, paths = two_path_rig ~seed:3 in
  let done_at = ref nan in
  let conn =
    Tcp.create ~sim ~cc:(Lia.create ()) ~paths ~size_pkts:3000
      ~on_complete:(fun t -> done_at := t) ~flow_id:0 ()
  in
  (* both paths die for 5 seconds, early enough to interrupt the flow *)
  Sim.schedule_at sim 1. (fun () ->
      gate1 := false;
      gate2 := false);
  Sim.schedule_at sim 6. (fun () ->
      gate1 := true;
      gate2 := true);
  Sim.run_until sim 120.;
  Alcotest.(check bool) "completes despite blackout" true (Tcp.completed conn);
  Alcotest.(check bool) "blackout visible in completion time" true
    (!done_at > 6.)

let test_receiver_silence_causes_backoff_not_livelock () =
  (* the reverse (ACK) path dies: the sender must back off, not spin *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:4 in
  let q =
    Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:100
      ~discipline:Queue.Droptail ()
  in
  let ack_up, ack_gate = make_gate () in
  let fwd = Pipe.create ~sim ~delay:0.02 and rv = Pipe.create ~sim ~delay:0.02 in
  let conn =
    Tcp.create ~sim ~cc:(Reno.create ())
      ~paths:
        [|
          {
            Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |];
            rev = [| ack_gate; Pipe.hop rv |];
          };
        |]
      ~flow_id:0 ()
  in
  Sim.schedule_at sim 5. (fun () -> ack_up := false);
  Sim.run_until sim 65.;
  let sent_during_silence = Sim.events_processed sim in
  (* exponential backoff keeps the event count bounded: far fewer than a
     second of line-rate traffic *)
  Alcotest.(check bool) "bounded activity" true (sent_during_silence < 500_000);
  ack_up := true;
  Sim.run_until sim 130.;
  Alcotest.(check bool) "resumes when ACKs return" true
    (Tcp.total_acked conn > 1000)

let test_path_manager_handles_flapping_link () =
  (* a link that flaps every 15 s: the manager discards it during outages
     and re-probes it afterwards without wedging the connection *)
  let sim, gate1, _gate2, paths = two_path_rig ~seed:5 in
  let conn = Tcp.create ~sim ~cc:(Olia.create ()) ~paths ~flow_id:0 () in
  let pm =
    Path_manager.attach ~sim
      ~policy:
        { Path_manager.default_policy with check_period = 3.;
          reprobe_period = 10. }
      conn
  in
  let rec flap up t =
    Sim.schedule_at sim t (fun () -> gate1 := up);
    if t +. 15. < 120. then flap (not up) (t +. 15.)
  in
  flap false 15.;
  Sim.run_until sim 150.;
  Alcotest.(check bool) "connection alive" true (Tcp.total_acked conn > 10_000);
  Alcotest.(check bool) "manager acted" true
    (Path_manager.discards pm + Path_manager.reprobes pm > 0)

let test_short_flow_during_outage_still_completes () =
  let sim, gate1, _gate2, paths = two_path_rig ~seed:6 in
  (* the flow starts exactly during a path-1 outage *)
  gate1 := false;
  Sim.schedule_at sim 30. (fun () -> gate1 := true);
  let conn =
    Tcp.create ~sim ~cc:(Olia.create ()) ~paths ~size_pkts:100 ~flow_id:0 ()
  in
  Sim.run_until sim 60.;
  Alcotest.(check bool) "completed" true (Tcp.completed conn);
  Alcotest.(check int) "exact delivery" 100 (Tcp.total_acked conn)

let suite =
  [
    Alcotest.test_case "failure: one path dies, MPTCP survives" `Slow
      test_mptcp_survives_one_path_failure;
    Alcotest.test_case "failure: healed path reused" `Slow
      test_mptcp_reclaims_healed_path;
    Alcotest.test_case "failure: total blackout recovery" `Slow
      test_total_blackout_then_recovery;
    Alcotest.test_case "failure: ACK silence backs off" `Slow
      test_receiver_silence_causes_backoff_not_livelock;
    Alcotest.test_case "failure: flapping link + path manager" `Slow
      test_path_manager_handles_flapping_link;
    Alcotest.test_case "failure: flow born during outage" `Quick
      test_short_flow_during_outage_still_completes;
  ]
