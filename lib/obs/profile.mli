(** Event-loop profiler: dispatch counts and wall time per event source.

    Same guard discipline as {!Trace}: {!enabled} is one ref read, and
    [Sim.schedule_at] only wraps a callback in {!dispatch} when the
    profiler was armed at scheduling time, so the profiling-off path
    costs one ref read per schedule and nothing per dispatch.

    Sources are the [~src] labels scheduling sites pass (e.g.
    ["queue.serve"], ["tcp.rto"]); unlabelled sites pool under
    ["other"]. Accumulators are per-domain (domain-local storage, no
    lock on the dispatch path), so sharded runs profile cleanly: each
    worker calls {!bind} with its shard id, {!report} rolls every
    domain up, and {!report_by_shard} keeps the per-shard breakdown
    (barrier wait shows up under ["shard.barrier"]). Wall times are
    non-deterministic by nature, so profile output never feeds the
    deterministic report JSON — the CLI renders it separately
    ([olia_sim run --profile]), and [OLIA_PROFILE=1] arms the profiler
    at startup and dumps the table to stderr at exit. *)

val enabled : unit -> bool
(** One ref read; the scheduler checks it at scheduling time. *)

val set_enabled : bool -> unit
(** Arm or disarm the profiler (accumulated totals are kept). *)

val reset : unit -> unit
(** Drop all accumulated totals, every domain's. *)

val bind : shard:int -> unit
(** Tag the calling domain's accumulator with [shard] so
    {!report_by_shard} can name it. Domains that never bind pool under
    shard [-1]. Idempotent; call at worker start. *)

val dispatch : src:string -> (unit -> unit) -> unit
(** Run the callback, attributing one dispatch and its wall time to
    [src] in the calling domain's table. Nested dispatches each
    account their own full span. *)

type entry = { src : string; count : int; wall_s : float }

val report : unit -> entry list
(** Accumulated totals rolled up across all domains, hottest first
    (ties alphabetical). *)

val report_by_shard : unit -> (int * entry list) list
(** Per-shard totals, shards ascending (unbound domains first as
    [-1]); each shard's entries hottest first. *)

val to_table : entry list -> Repro_stats.Table.t
(** Text rendering with per-source dispatches, wall ms and wall %. *)

val to_shard_table : (int * entry list) list -> Repro_stats.Table.t
(** Text rendering of {!report_by_shard}: shard, source, dispatches,
    wall ms. *)
