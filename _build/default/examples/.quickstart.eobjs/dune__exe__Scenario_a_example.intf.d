examples/scenario_a_example.mli:
