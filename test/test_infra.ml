(* Tests for the routing/monitoring infrastructure: Graph, Builder,
   Monitor, Csv, and the wVegas extension algorithm. *)

open Mptcp_repro.Netsim
open Mptcp_repro.Topology

(* Timer handles are discarded in tests: scheduling here is fire-and-forget. *)
module Sim = struct
  include Sim

  let schedule_at ?src sim t f = ignore (Sim.schedule_at ?src sim t f : Sim.Timer.t)
  let schedule_after ?src sim d f = ignore (Sim.schedule_after ?src sim d f : Sim.Timer.t)
end

let check_close eps = Alcotest.(check (float eps))

(* --- Graph ---------------------------------------------------------- *)

(*    0 --- 1 --- 3
       \    |    /
        \   2   /          a diamond plus a spur (4)
         \--+--/
            |
            4                                                        *)
let diamond () =
  let g = Graph.create ~vertices:5 in
  let e01 = Graph.add_edge g ~u:0 ~v:1 "01" in
  let e13 = Graph.add_edge g ~u:1 ~v:3 "13" in
  let e02 = Graph.add_edge g ~u:0 ~v:2 "02" in
  let e23 = Graph.add_edge g ~u:2 ~v:3 "23" in
  let e12 = Graph.add_edge g ~u:1 ~v:2 "12" in
  let e24 = Graph.add_edge g ~u:2 ~v:4 "24" in
  (g, (e01, e13, e02, e23, e12, e24))

let test_graph_basics () =
  let g, (e01, _, _, _, _, _) = diamond () in
  Alcotest.(check int) "vertices" 5 (Graph.vertex_count g);
  Alcotest.(check int) "edges" 6 (Graph.edge_count g);
  Alcotest.(check string) "payload" "01" (Graph.edge_payload g e01);
  Alcotest.(check (pair int int)) "endpoints" (0, 1)
    (Graph.edge_endpoints g e01);
  Alcotest.(check (option int)) "find" (Some e01) (Graph.find_edge g ~u:1 ~v:0);
  Alcotest.(check (option int)) "absent" None (Graph.find_edge g ~u:0 ~v:4)

let test_graph_rejects_bad_edges () =
  let g = Graph.create ~vertices:3 in
  let _ = Graph.add_edge g ~u:0 ~v:1 () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.add_edge g ~u:1 ~v:1 ()));
  Alcotest.check_raises "parallel"
    (Invalid_argument "Graph.add_edge: parallel edge") (fun () ->
      ignore (Graph.add_edge g ~u:1 ~v:0 ()));
  Alcotest.check_raises "range" (Invalid_argument "Graph: vertex out of range")
    (fun () -> ignore (Graph.add_edge g ~u:0 ~v:9 ()))

let test_graph_shortest_path () =
  let g, (e01, e13, _, _, _, _) = diamond () in
  match Graph.shortest_path g ~src:0 ~dst:3 with
  | Some [ h1; h2 ] ->
    (* 0-1-3 and 0-2-3 tie at weight 2; Dijkstra picks one deterministic
       two-hop route *)
    Alcotest.(check bool) "two-hop route" true
      ((h1.Graph.edge = e01 && h2.Graph.edge = e13)
      || (Graph.edge_payload g h1.Graph.edge = "02"
         && Graph.edge_payload g h2.Graph.edge = "23"));
    check_close 1e-12 "weight" 2. (Graph.path_weight g [ h1; h2 ])
  | _ -> Alcotest.fail "expected a 2-hop path"

let test_graph_weighted_routing () =
  let g = Graph.create ~vertices:3 in
  let _heavy = Graph.add_edge g ~u:0 ~v:2 ~weight:10. "direct" in
  let _ = Graph.add_edge g ~u:0 ~v:1 ~weight:1. "a" in
  let _ = Graph.add_edge g ~u:1 ~v:2 ~weight:1. "b" in
  match Graph.shortest_path g ~src:0 ~dst:2 with
  | Some hops ->
    Alcotest.(check int) "avoids the heavy edge" 2 (List.length hops);
    check_close 1e-12 "weight 2" 2. (Graph.path_weight g hops)
  | None -> Alcotest.fail "disconnected?"

let test_graph_disconnected () =
  let g = Graph.create ~vertices:4 in
  let _ = Graph.add_edge g ~u:0 ~v:1 () in
  let _ = Graph.add_edge g ~u:2 ~v:3 () in
  Alcotest.(check bool) "no path" true (Graph.shortest_path g ~src:0 ~dst:3 = None)

let test_graph_self_path () =
  let g, _ = diamond () in
  Alcotest.(check bool) "empty path" true
    (Graph.shortest_path g ~src:2 ~dst:2 = Some [])

let test_graph_k_shortest () =
  let g, _ = diamond () in
  let paths = Graph.k_shortest_paths g ~src:0 ~dst:3 ~k:3 in
  Alcotest.(check int) "three loop-free routes" 3 (List.length paths);
  let weights = List.map (Graph.path_weight g) paths in
  (* 2, 2, 3 (0-1-2-3 or 0-2-1-3) *)
  Alcotest.(check (list (float 1e-9))) "ordered weights" [ 2.; 2.; 3. ] weights;
  (* all distinct *)
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq compare paths) = 3)

let test_graph_k_shortest_more_than_exist () =
  let g = Graph.create ~vertices:2 in
  let _ = Graph.add_edge g ~u:0 ~v:1 () in
  Alcotest.(check int) "only one exists" 1
    (List.length (Graph.k_shortest_paths g ~src:0 ~dst:1 ~k:5))

let test_graph_edge_disjoint () =
  let g, _ = diamond () in
  let paths = Graph.edge_disjoint_paths g ~src:0 ~dst:3 in
  Alcotest.(check int) "two disjoint routes" 2 (List.length paths);
  let used = Hashtbl.create 8 in
  List.iter
    (fun p ->
      List.iter
        (fun h ->
          Alcotest.(check bool) "edge reused" false (Hashtbl.mem used h.Graph.edge);
          Hashtbl.replace used h.Graph.edge ())
        p)
    paths

let prop_graph_path_connects_endpoints =
  QCheck.Test.make ~name:"graph: random graphs route correctly" ~count:80
    QCheck.(pair (int_range 2 12) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let g = Graph.create ~vertices:n in
      (* random spanning tree ensures connectivity, plus extra edges *)
      for v = 1 to n - 1 do
        ignore (Graph.add_edge g ~u:(Rng.int rng v) ~v ())
      done;
      for _ = 1 to n do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v && Graph.find_edge g ~u ~v = None then
          ignore (Graph.add_edge g ~u ~v ())
      done;
      let src = Rng.int rng n and dst = Rng.int rng n in
      match Graph.shortest_path g ~src ~dst with
      | None -> false
      | Some hops ->
        (* walk the hops and confirm they end at dst *)
        let final =
          List.fold_left
            (fun v h ->
              let u', v' = Graph.edge_endpoints g h.Graph.edge in
              ignore v;
              if h.Graph.from_u_to_v then v' else u')
            src hops
        in
        (src = dst && hops = []) || final = dst)

(* --- Builder ----------------------------------------------------------- *)

let scenario_c_via_builder () =
  (* rebuild scenario C's topology declaratively: client -- AP1/AP2 -- net *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let b = Builder.create ~sim ~rng () in
  List.iter (Builder.add_node b) [ "client"; "ap1"; "ap2"; "internet" ];
  Builder.link b "client" "ap1" ~rate_mbps:10. ~delay_ms:20. ();
  Builder.link b "client" "ap2" ~rate_mbps:10. ~delay_ms:20. ();
  Builder.link b "ap1" "internet" ~rate_mbps:100. ~delay_ms:20. ();
  Builder.link b "ap2" "internet" ~rate_mbps:100. ~delay_ms:20. ();
  (sim, b)

let test_builder_path_routes_packets () =
  let sim, b = scenario_c_via_builder () in
  let path = Builder.path b ~src:"client" ~dst:"internet" in
  let delivered = ref false in
  let fwd = Array.append path.Tcp.fwd [| (fun _ -> delivered := true) |] in
  Packet.forward (Packet.data ~flow:0 ~subflow:0 ~seq:0 ~sent_at:0. ~route:fwd);
  Sim.run sim;
  Alcotest.(check bool) "delivered" true !delivered

let test_builder_disjoint_paths () =
  let _, b = scenario_c_via_builder () in
  let paths = Builder.paths b ~src:"client" ~dst:"internet" ~disjoint:true ~k:4 () in
  Alcotest.(check int) "two disjoint routes" 2 (Array.length paths)

let test_builder_k_shortest_paths () =
  let _, b = scenario_c_via_builder () in
  let paths = Builder.paths b ~src:"client" ~dst:"internet" ~k:2 () in
  Alcotest.(check int) "two routes" 2 (Array.length paths)

let test_builder_full_tcp_connection () =
  let sim, b = scenario_c_via_builder () in
  let paths = Builder.paths b ~src:"client" ~dst:"internet" ~disjoint:true ~k:2 () in
  let conn =
    Tcp.create ~sim
      ~cc:(Mptcp_repro.Cc.Olia.create ())
      ~paths ~size_pkts:200 ~flow_id:0 ()
  in
  Sim.run_until sim 60.;
  Alcotest.(check bool) "completes over built topology" true
    (Tcp.completed conn)

let test_builder_queue_accessor () =
  let _, b = scenario_c_via_builder () in
  let q = Builder.queue b "client" "ap1" in
  Alcotest.(check int) "fresh queue" 0 (Queue.arrivals q);
  Alcotest.check_raises "unknown pair" Not_found (fun () ->
      ignore (Builder.queue b "ap1" "ap2"))

let test_builder_rejects_duplicates () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let b = Builder.create ~sim ~rng () in
  Builder.add_node b "x";
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Builder.add_node: duplicate node x") (fun () ->
      Builder.add_node b "x")

(* --- Monitor and Csv ----------------------------------------------------- *)

let test_monitor_samples_series () =
  let sim = Sim.create () in
  let m = Monitor.create ~sim ~period:0.5 () in
  let clock = ref 0. in
  Monitor.watch m "clock" (fun () ->
      clock := !clock +. 1.;
      !clock);
  (* keep the sim alive for 5 seconds *)
  Sim.schedule_at sim 5. (fun () -> ());
  Sim.run sim;
  let ts = Monitor.series m "clock" in
  Alcotest.(check bool) "about 10 samples" true
    (Mptcp_repro.Stats.Timeseries.length ts >= 10);
  Alcotest.(check (list string)) "names" [ "clock" ] (Monitor.names m)

let test_monitor_goodput_probe () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:2 in
  let q =
    Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:300
      ~discipline:Queue.Droptail ()
  in
  let fwd = Pipe.create ~sim ~delay:0.02 and rv = Pipe.create ~sim ~delay:0.02 in
  let conn =
    Tcp.create ~sim
      ~cc:(Mptcp_repro.Cc.Reno.create ())
      ~paths:
        [| { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |]; rev = [| Pipe.hop rv |] } |]
      ~flow_id:0 ()
  in
  let m = Monitor.create ~sim ~period:1. () in
  Monitor.watch_goodput m "goodput" conn;
  Monitor.watch_cwnd m "cwnd" conn 0;
  Monitor.watch_backlog m "backlog" q;
  Monitor.watch_loss m "loss" q;
  Sim.run_until sim 20.;
  let gp = Monitor.series m "goodput" in
  (* steady-state samples should hover near 10 Mb/s *)
  let late = Mptcp_repro.Stats.Timeseries.mean_over gp ~from:10. ~until:19. in
  Alcotest.(check bool)
    (Printf.sprintf "goodput ~10 (got %.1f)" late)
    true
    (late > 7. && late < 11.)

let test_monitor_rejects_duplicate_names () =
  let sim = Sim.create () in
  let m = Monitor.create ~sim ~period:1. () in
  Monitor.watch m "x" (fun () -> 0.);
  Alcotest.check_raises "dup" (Invalid_argument "Monitor.watch: duplicate name x")
    (fun () -> Monitor.watch m "x" (fun () -> 0.))

let test_csv_roundtrip () =
  let path = Filename.temp_file "repro" ".csv" in
  Mptcp_repro.Stats.Csv.write_series ~path ~columns:[ "a"; "b" ]
    [ [ 1.; 2. ]; [ 3.5; -4. ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check (list string)) "contents" [ "a,b"; "1,2"; "3.5,-4" ]
    (List.rev !lines)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "x" (Mptcp_repro.Stats.Csv.escape "x");
  Alcotest.(check string) "comma" "\"a,b\"" (Mptcp_repro.Stats.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\""
    (Mptcp_repro.Stats.Csv.escape "a\"b")

let test_csv_rejects_ragged_rows () =
  let path = Filename.temp_file "repro" ".csv" in
  Alcotest.check_raises "ragged"
    (Invalid_argument "Csv.write_series: row width mismatch") (fun () ->
      Mptcp_repro.Stats.Csv.write_series ~path ~columns:[ "a"; "b" ]
        [ [ 1. ] ]);
  Sys.remove path

let test_monitor_to_csv () =
  let sim = Sim.create () in
  let m = Monitor.create ~sim ~period:1. () in
  Monitor.watch m "v" (fun () -> Sim.now sim);
  Sim.schedule_at sim 3. (fun () -> ());
  Sim.run sim;
  let path = Filename.temp_file "repro" ".csv" in
  Monitor.to_csv m ~path;
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Alcotest.(check bool) "non-empty" true (size > 10)

(* --- wVegas ---------------------------------------------------------------- *)

let view cwnd rtt = { Mptcp_repro.Cc.Types.cwnd; rtt }

let test_wvegas_grows_when_below_target () =
  let cc = Mptcp_repro.Cc.Wvegas.create () in
  (* rtt equals base rtt: zero backlog, below alpha -> grow *)
  let views = [| view 10. 0.1 |] in
  check_close 1e-12 "grow" 0.1 (cc.Mptcp_repro.Cc.Types.increase ~views ~idx:0)

let test_wvegas_shrinks_when_queueing () =
  let cc = Mptcp_repro.Cc.Wvegas.create () in
  (* establish base rtt = 0.1 *)
  ignore (cc.Mptcp_repro.Cc.Types.increase ~views:[| view 10. 0.1 |] ~idx:0);
  (* now the path queues heavily: diff = 40·(1-0.1/0.4) = 30 > alpha *)
  let inc =
    cc.Mptcp_repro.Cc.Types.increase ~views:[| view 40. 0.4 |] ~idx:0
  in
  Alcotest.(check bool) "shrink" true (inc < 0.)

let test_wvegas_rejects_bad_alpha () =
  Alcotest.check_raises "alpha"
    (Invalid_argument "Wvegas.create: total_alpha must be > 0") (fun () ->
      ignore (Mptcp_repro.Cc.Wvegas.create ~total_alpha:0. ()))

let test_wvegas_registry_and_simulation () =
  let cc = Mptcp_repro.Cc.Registry.create "wvegas" in
  Alcotest.(check string) "name" "wvegas" cc.Mptcp_repro.Cc.Types.name;
  (* end-to-end: a wVegas connection moves data without collapsing *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let q =
    Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:300
      ~discipline:Queue.Droptail ()
  in
  let fwd = Pipe.create ~sim ~delay:0.02 and rv = Pipe.create ~sim ~delay:0.02 in
  let conn =
    Tcp.create ~sim ~cc
      ~paths:
        [| { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |]; rev = [| Pipe.hop rv |] } |]
      ~flow_id:0 ()
  in
  Sim.run_until sim 30.;
  let mbps = float_of_int (Tcp.total_acked conn * 12000) /. 30. /. 1e6 in
  Alcotest.(check bool) (Printf.sprintf "%.1f Mb/s moved" mbps) true (mbps > 1.)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "graph: basics" `Quick test_graph_basics;
    Alcotest.test_case "graph: rejects bad edges" `Quick
      test_graph_rejects_bad_edges;
    Alcotest.test_case "graph: shortest path" `Quick test_graph_shortest_path;
    Alcotest.test_case "graph: weighted routing" `Quick
      test_graph_weighted_routing;
    Alcotest.test_case "graph: disconnected" `Quick test_graph_disconnected;
    Alcotest.test_case "graph: src = dst" `Quick test_graph_self_path;
    Alcotest.test_case "graph: k-shortest (Yen)" `Quick test_graph_k_shortest;
    Alcotest.test_case "graph: k-shortest exhausts" `Quick
      test_graph_k_shortest_more_than_exist;
    Alcotest.test_case "graph: edge-disjoint paths" `Quick
      test_graph_edge_disjoint;
    q prop_graph_path_connects_endpoints;
    Alcotest.test_case "builder: path routes packets" `Quick
      test_builder_path_routes_packets;
    Alcotest.test_case "builder: disjoint paths" `Quick
      test_builder_disjoint_paths;
    Alcotest.test_case "builder: k-shortest" `Quick
      test_builder_k_shortest_paths;
    Alcotest.test_case "builder: full TCP connection" `Quick
      test_builder_full_tcp_connection;
    Alcotest.test_case "builder: queue accessor" `Quick
      test_builder_queue_accessor;
    Alcotest.test_case "builder: duplicate nodes" `Quick
      test_builder_rejects_duplicates;
    Alcotest.test_case "monitor: samples series" `Quick
      test_monitor_samples_series;
    Alcotest.test_case "monitor: goodput probe" `Quick
      test_monitor_goodput_probe;
    Alcotest.test_case "monitor: duplicate names" `Quick
      test_monitor_rejects_duplicate_names;
    Alcotest.test_case "csv: roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv: escaping" `Quick test_csv_escaping;
    Alcotest.test_case "csv: ragged rows" `Quick test_csv_rejects_ragged_rows;
    Alcotest.test_case "monitor: csv export" `Quick test_monitor_to_csv;
    Alcotest.test_case "wvegas: grows below target" `Quick
      test_wvegas_grows_when_below_target;
    Alcotest.test_case "wvegas: shrinks when queueing" `Quick
      test_wvegas_shrinks_when_queueing;
    Alcotest.test_case "wvegas: rejects bad alpha" `Quick
      test_wvegas_rejects_bad_alpha;
    Alcotest.test_case "wvegas: registry + simulation" `Slow
      test_wvegas_registry_and_simulation;
  ]

(* --- cross-validation: Builder vs the hand-wired scenario ---------------- *)

let test_builder_reproduces_scenario_c () =
  (* rebuild scenario C (10+10 users, C1=C2=1 Mb/s) from the declarative
     builder and check the headline numbers agree with Scen_c.run *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let b = Builder.create ~sim ~rng () in
  List.iter (Builder.add_node b) [ "clients"; "ap1"; "ap2"; "net" ];
  (* 20 ms per stage gives the testbed's 80 ms round trip *)
  Builder.link b "clients" "ap1" ~rate_mbps:10. ~delay_ms:20. ();
  Builder.link b "clients" "ap2" ~rate_mbps:10. ~delay_ms:20. ();
  Builder.link b "ap1" "net" ~rate_mbps:1000. ~delay_ms:20. ();
  Builder.link b "ap2" "net" ~rate_mbps:1000. ~delay_ms:20. ();
  let paths =
    Builder.paths b ~src:"clients" ~dst:"net" ~disjoint:true ~k:2 ()
  in
  let multipath =
    List.init 10 (fun i ->
        Tcp.create ~sim
          ~cc:(Mptcp_repro.Cc.Olia.create ())
          ~paths ~start:(Rng.uniform rng 2.) ~flow_id:i ())
  in
  ignore multipath;
  let via_ap2 = Builder.paths b ~src:"clients" ~dst:"net" ~k:2 () in
  (* the k-shortest list contains the ap2 route; pick the one whose first
     queue is the ap2 link by probing the queue object *)
  let ap2_queue = Builder.queue b "clients" "ap2" in
  let singles =
    List.init 10 (fun i ->
        (* both disjoint paths exist; use the one through ap2 by matching
           arrivals later — simply use the second disjoint path *)
        ignore via_ap2;
        Tcp.create ~sim
          ~cc:(Mptcp_repro.Cc.Reno.create ())
          ~paths:[| paths.(1) |]
          ~start:(Rng.uniform rng 2.) ~flow_id:(10 + i) ())
  in
  Sim.run_until sim 60.;
  let goodput conns =
    List.fold_left (fun a c -> a + Tcp.total_acked c) 0 conns
  in
  let single_mbps = float_of_int (goodput singles * 12000) /. 60. /. 1e6 in
  (* the hand-wired scenario under the same algorithm and durations *)
  let reference =
    Mptcp_repro.Scenarios.Scen_c.run
      { Mptcp_repro.Scenarios.Scen_c.default with
        algo = "olia"; duration = 60.; warmup = 0.1; seed = 1 }
  in
  ignore ap2_queue;
  let reference_mbps = reference.norm_single *. 10. in
  Alcotest.(check bool)
    (Printf.sprintf "builder %.1f vs hand-wired %.1f Mb/s" single_mbps
       reference_mbps)
    true
    (abs_float (single_mbps -. reference_mbps) < 0.45 *. reference_mbps)

let prop_k_shortest_sorted_and_loop_free =
  QCheck.Test.make ~name:"graph: k-shortest sorted, loop-free" ~count:40
    QCheck.(pair (int_range 3 10) (int_range 0 500))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let g = Graph.create ~vertices:n in
      for v = 1 to n - 1 do
        ignore (Graph.add_edge g ~u:(Rng.int rng v) ~v ())
      done;
      for _ = 1 to n do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v && Graph.find_edge g ~u ~v = None then
          ignore (Graph.add_edge g ~u ~v ())
      done;
      let paths = Graph.k_shortest_paths g ~src:0 ~dst:(n - 1) ~k:4 in
      (* weights non-decreasing *)
      let ws = List.map (Graph.path_weight g) paths in
      let sorted = List.sort compare ws = ws in
      (* loop-free: no edge repeats within a path *)
      let loop_free =
        List.for_all
          (fun p ->
            let es = List.map (fun h -> h.Graph.edge) p in
            List.length (List.sort_uniq compare es) = List.length es)
          paths
      in
      sorted && loop_free && List.length paths >= 1)

let suite =
  suite
  @ [
      Alcotest.test_case "builder reproduces scenario C" `Slow
        test_builder_reproduces_scenario_c;
      QCheck_alcotest.to_alcotest prop_k_shortest_sorted_and_loop_free;
    ]

let test_two_monitors_with_stop_terminate () =
  (* without a stop time two monitors would keep each other alive under
     Sim.run; with stop they terminate *)
  let sim = Sim.create () in
  let m1 = Monitor.create ~sim ~period:0.5 ~stop:10. () in
  let m2 = Monitor.create ~sim ~period:0.7 ~stop:10. () in
  Monitor.watch m1 "a" (fun () -> 1.);
  Monitor.watch m2 "b" (fun () -> 2.);
  Sim.run sim;
  Alcotest.(check bool) "terminated with samples" true
    (Mptcp_repro.Stats.Timeseries.length (Monitor.series m1 "a") > 10
    && Mptcp_repro.Stats.Timeseries.length (Monitor.series m2 "b") > 10)

let suite =
  suite
  @ [
      Alcotest.test_case "monitor: two monitors + stop" `Quick
        test_two_monitors_with_stop_terminate;
    ]
