(** A bidirectional link: one queue + propagation pipe per direction.
    The building block for all testbed topologies. *)

type t

val create :
  sim:Repro_netsim.Sim.t ->
  rng:Repro_netsim.Rng.t ->
  rate_bps:float ->
  delay:float ->
  buffer_pkts:int ->
  discipline:Repro_netsim.Queue.discipline ->
  ?name:string ->
  unit ->
  t
(** Both directions share the rate, delay, buffer and discipline. *)

val fwd_hops : t -> Repro_netsim.Packet.hop array
(** Hops (queue then pipe) traversing the link in the forward
    direction. *)

val rev_hops : t -> Repro_netsim.Packet.hop array
(** Hops for the reverse direction. *)

val fwd_queue : t -> Repro_netsim.Queue.t
(** The forward-direction queue, for loss and utilization statistics. *)

val rev_queue : t -> Repro_netsim.Queue.t

val one_way_delay : t -> float
