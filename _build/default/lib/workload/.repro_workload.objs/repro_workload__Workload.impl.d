lib/workload/workload.ml: Array List Repro_netsim Rng
