let needs_quotes s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let escape s =
  if needs_quotes s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_rows ~path ~header rows =
  let oc = open_out path in
  let emit row =
    output_string oc (String.concat "," (List.map escape row));
    output_char oc '\n'
  in
  (try
     emit header;
     List.iter emit rows
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let write_series ~path ~columns rows =
  let width = List.length columns in
  let render row =
    if List.length row <> width then
      invalid_arg "Csv.write_series: row width mismatch";
    List.map (Printf.sprintf "%.6g") row
  in
  write_rows ~path ~header:columns (List.map render rows)

let of_timeseries ~path ~name ts =
  let rows =
    Array.to_list
      (Array.map (fun (t, v) -> [ t; v ]) (Timeseries.to_array ts))
  in
  write_series ~path ~columns:[ "time"; name ] rows
