(** Structured event tracing for the simulator.

    Instrumentation sites in [lib/netsim] construct an {!event} and
    call {!emit} only when {!enabled} returns true, so the tracing-off
    path costs one ref read and allocates nothing. Armed, events stream
    as JSONL — one compact [Repro_stats.Json] object per line, led by
    an ["ev"] discriminator — via [olia_sim run --trace out.jsonl] or
    the [OLIA_TRACE] environment variable ([1]/[true]/[yes]/[on] for
    stderr, any other non-empty value for an output path).

    The sink is process-global: arm it around a single-domain run only
    (parallel sweeps stay untraced). *)

type tcp_state = Slow_start | Congestion_avoidance | Fast_recovery

type drop_cause =
  | Overflow  (** buffer full on arrival *)
  | Red_early  (** RED early (probabilistic) drop *)
  | Random_loss  (** lossy-link Bernoulli drop *)
  | Link_down  (** fault-injected outage swallowed the packet *)

type event =
  | Pkt_enqueue of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      backlog : int;  (** occupancy after the packet was admitted *)
    }
  | Pkt_drop of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      cause : drop_cause;
    }
  | Pkt_forward of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      bytes : int;
      qdelay : float;
          (** queue residence: seconds between the packet's admission
              ({!Pkt_enqueue}) and this forward, service included *)
    }
  | Tcp_state of {
      time : float;
      flow : int;
      subflow : int;
      from_state : tcp_state;
      to_state : tcp_state;
    }
  | Cwnd_update of {
      time : float;
      flow : int;
      subflow : int;
      cwnd : float;
      ssthresh : float;
    }
  | Rto_fired of {
      time : float;
      flow : int;
      subflow : int;
      rto : float;  (** the RTO that just expired, pre-backoff *)
    }
  | Rtt_sample of {
      time : float;
      flow : int;
      subflow : int;
      rtt : float;  (** the raw sample from the ACK's echoed timestamp *)
      srtt : float;  (** smoothed estimate after folding the sample in *)
    }
  | Subflow_add of { time : float; flow : int; subflow : int }
  | Subflow_remove of { time : float; flow : int; subflow : int }

val to_json : event -> Repro_stats.Json.t
val of_json : Repro_stats.Json.t -> (event, string) result
(** Inverse of {!to_json}. Finite floats round-trip exactly (the Json
    printer guarantees it); a [null] numeric field reads back as nan. *)

val state_name : tcp_state -> string
val cause_name : drop_cause -> string

val enabled : unit -> bool
(** One ref read; instrumentation sites must guard event construction
    with it. *)

val emit : event -> unit
(** Deliver to the current sink, if any (writers are serialized). *)

val set_sink : (event -> unit) option -> unit
(** Install a custom sink (tests) or disarm with [None]. *)

val open_jsonl : path:string -> unit
(** Arm tracing into a fresh JSONL file, closing any previous sink. *)

val close : unit -> unit
(** Flush and close the JSONL sink, disarming tracing. *)

val with_jsonl : path:string -> (unit -> 'a) -> 'a
(** [open_jsonl], run the thunk, [close] — also on exceptions. *)
