open Repro_netsim

type t = {
  sim : Sim.t;
  rng : Rng.t;
  names : (string, int) Hashtbl.t;
  mutable nodes : string list;  (* reversed *)
  mutable links : (int * int * Duplex.t * float) list;  (* u, v, link, weight *)
  mutable graph : Duplex.t Graph.t option;  (* rebuilt lazily *)
}

let create ~sim ~rng () =
  {
    sim;
    rng;
    names = Hashtbl.create 16;
    nodes = [];
    links = [];
    graph = None;
  }

let add_node t name =
  if Hashtbl.mem t.names name then
    invalid_arg ("Builder.add_node: duplicate node " ^ name);
  Hashtbl.add t.names name (Hashtbl.length t.names);
  t.nodes <- name :: t.nodes;
  t.graph <- None

let node_count t = Hashtbl.length t.names

let vertex t name =
  match Hashtbl.find_opt t.names name with
  | Some v -> v
  | None -> invalid_arg ("Builder: unknown node " ^ name)

let link t a b ~rate_mbps ~delay_ms ?buffer_pkts ?(red = true) ?(weight = 1.)
    () =
  let u = vertex t a and v = vertex t b in
  let rate_bps = rate_mbps *. 1e6 in
  let buffer_pkts =
    match buffer_pkts with
    | Some b -> b
    | None -> Stdlib.max 50 (int_of_float (300. *. rate_bps /. 10e6))
  in
  let discipline =
    if red then Queue.Red (Queue.paper_red ~link_mbps:rate_mbps)
    else Queue.Droptail
  in
  let duplex =
    Duplex.create ~sim:t.sim ~rng:(Rng.split t.rng) ~rate_bps
      ~delay:(delay_ms /. 1000.) ~buffer_pkts ~discipline
      ~name:(a ^ "-" ^ b) ()
  in
  t.links <- (u, v, duplex, weight) :: t.links;
  t.graph <- None

let graph t =
  match t.graph with
  | Some g -> g
  | None ->
    let g = Graph.create ~vertices:(Stdlib.max 1 (node_count t)) in
    List.iter
      (fun (u, v, duplex, weight) ->
        ignore (Graph.add_edge g ~u ~v ~weight duplex))
      (List.rev t.links);
    t.graph <- Some g;
    g

let queue t a b =
  let u = vertex t a and v = vertex t b in
  let g = graph t in
  match Graph.find_edge g ~u ~v with
  | None -> raise Not_found
  | Some e ->
    let eu, _ = Graph.edge_endpoints g e in
    let duplex = Graph.edge_payload g e in
    if eu = u then Duplex.fwd_queue duplex else Duplex.rev_queue duplex

(* A graph route becomes a Tcp.path: forward hops in order, reverse hops
   mirrored, each leg using the duplex direction it traverses. *)
let assemble g hops =
  let fwd =
    List.concat_map
      (fun { Graph.edge; from_u_to_v } ->
        let duplex = Graph.edge_payload g edge in
        Array.to_list
          (if from_u_to_v then Duplex.fwd_hops duplex
           else Duplex.rev_hops duplex))
      hops
  in
  let rev =
    List.concat_map
      (fun { Graph.edge; from_u_to_v } ->
        let duplex = Graph.edge_payload g edge in
        Array.to_list
          (if from_u_to_v then Duplex.rev_hops duplex
           else Duplex.fwd_hops duplex))
      (List.rev hops)
  in
  { Tcp.fwd = Array.of_list fwd; rev = Array.of_list rev }

let path t ~src ~dst =
  if src = dst then invalid_arg "Builder.path: src = dst";
  let g = graph t in
  match Graph.shortest_path g ~src:(vertex t src) ~dst:(vertex t dst) with
  | None | Some [] -> raise Not_found
  | Some hops -> assemble g hops

let paths t ~src ~dst ?(disjoint = false) ~k () =
  if src = dst then invalid_arg "Builder.paths: src = dst";
  let g = graph t in
  let u = vertex t src and v = vertex t dst in
  let routes =
    if disjoint then
      let all = Graph.edge_disjoint_paths g ~src:u ~dst:v in
      List.filteri (fun i _ -> i < k) all
    else Graph.k_shortest_paths g ~src:u ~dst:v ~k
  in
  Array.of_list (List.map (assemble g) routes)
