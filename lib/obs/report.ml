(* Flight-recorder analysis: fold a stream of trace events — live via
   [feed] as a sink, or offline via [load_jsonl] — into per-queue
   latency/drop statistics and per-subflow RTT/cwnd/state summaries.

   Everything here is a pure function of the event stream, which for a
   fixed seed is itself deterministic, so [to_json] output is
   byte-identical across runs: wall-clock data (Meter, Profile) never
   enters a report. *)

module Json = Repro_stats.Json
module Histogram = Repro_stats.Histogram
module Timeseries = Repro_stats.Timeseries
module Table = Repro_stats.Table

(* Exact moments alongside the histogram: the histogram gives
   quantiles, these give n/mean/min/max without bucketing error. *)
type moments = {
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let moments_create () = { n = 0; sum = 0.; min_v = infinity; max_v = neg_infinity }

let moments_add m x =
  m.n <- m.n + 1;
  m.sum <- m.sum +. x;
  if x < m.min_v then m.min_v <- x;
  if x > m.max_v then m.max_v <- x

(* Queue residence spans to ~10 s on a congested bottleneck and down to
   one sub-millisecond service time on a fast link; RTTs live between
   0.1 ms and seconds. Log buckets at 20 per decade keep quantile
   bucketing error under ~12% across the whole range. *)
let qdelay_hist () = Histogram.create_log ~lo:1e-6 ~hi:10. ~bins:140
let rtt_hist () = Histogram.create_log ~lo:1e-4 ~hi:10. ~bins:100

type queue_acc = {
  mutable enqueued : int;
  mutable forwarded : int;
  mutable forwarded_bytes : int;
  mutable drops_overflow : int;
  mutable drops_red : int;
  mutable drops_random : int;
  mutable drops_down : int;
  qd_hist : Histogram.t;
  qd : moments;
  (* drop bursts: maximal runs of consecutive drops at this queue,
     uninterrupted by an enqueue or forward *)
  mutable run : int;
  mutable bursts : int;  (* runs of length >= 2 *)
  mutable max_run : int;
}

type sub_acc = {
  rtt_h : Histogram.t;
  rtt : moments;
  cwnd : Timeseries.t;
  cwnd_stats : moments;
  mutable state : Trace.tcp_state;
  mutable state_since : float;
  mutable dwell_ss : float;
  mutable dwell_ca : float;
  mutable dwell_fr : float;
  mutable rto_fired : int;
  mutable removed_at : float option;
}

type t = {
  queues : (string, queue_acc) Hashtbl.t;
  subs : (int * int, sub_acc) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  mutable events : int;
  mutable first_t : float;
  mutable last_t : float;
}

let create () =
  {
    queues = Hashtbl.create 16;
    subs = Hashtbl.create 16;
    counts = Hashtbl.create 16;
    events = 0;
    first_t = nan;
    last_t = nan;
  }

let queue_acc t name =
  match Hashtbl.find_opt t.queues name with
  | Some q -> q
  | None ->
    let q =
      {
        enqueued = 0;
        forwarded = 0;
        forwarded_bytes = 0;
        drops_overflow = 0;
        drops_red = 0;
        drops_random = 0;
        drops_down = 0;
        qd_hist = qdelay_hist ();
        qd = moments_create ();
        run = 0;
        bursts = 0;
        max_run = 0;
      }
    in
    Hashtbl.add t.queues name q;
    q

let sub_acc t ~flow ~subflow ~time =
  match Hashtbl.find_opt t.subs (flow, subflow) with
  | Some s -> s
  | None ->
    let s =
      {
        rtt_h = rtt_hist ();
        rtt = moments_create ();
        cwnd = Timeseries.create ();
        cwnd_stats = moments_create ();
        state = Trace.Slow_start;
        state_since = time;
        dwell_ss = 0.;
        dwell_ca = 0.;
        dwell_fr = 0.;
        rto_fired = 0;
        removed_at = None;
      }
    in
    Hashtbl.add t.subs (flow, subflow) s;
    s

let event_time = function
  | Trace.Pkt_enqueue { time; _ }
  | Trace.Pkt_drop { time; _ }
  | Trace.Pkt_forward { time; _ }
  | Trace.Tcp_state { time; _ }
  | Trace.Cwnd_update { time; _ }
  | Trace.Rto_fired { time; _ }
  | Trace.Rtt_sample { time; _ }
  | Trace.Subflow_add { time; _ }
  | Trace.Subflow_remove { time; _ } -> time

let event_name = function
  | Trace.Pkt_enqueue _ -> "pkt_enqueue"
  | Trace.Pkt_drop _ -> "pkt_drop"
  | Trace.Pkt_forward _ -> "pkt_forward"
  | Trace.Tcp_state _ -> "tcp_state"
  | Trace.Cwnd_update _ -> "cwnd_update"
  | Trace.Rto_fired _ -> "rto_fired"
  | Trace.Rtt_sample _ -> "rtt_sample"
  | Trace.Subflow_add _ -> "subflow_add"
  | Trace.Subflow_remove _ -> "subflow_remove"

let end_run q =
  if q.run >= 2 then q.bursts <- q.bursts + 1;
  if q.run > q.max_run then q.max_run <- q.run;
  q.run <- 0

let dwell_add s ~until =
  let d = until -. s.state_since in
  if d > 0. then
    match s.state with
    | Trace.Slow_start -> s.dwell_ss <- s.dwell_ss +. d
    | Trace.Congestion_avoidance -> s.dwell_ca <- s.dwell_ca +. d
    | Trace.Fast_recovery -> s.dwell_fr <- s.dwell_fr +. d

let feed t ev =
  t.events <- t.events + 1;
  let time = event_time ev in
  if Float.is_nan t.first_t then t.first_t <- time;
  t.last_t <- time;
  let name = event_name ev in
  Hashtbl.replace t.counts name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts name));
  match ev with
  | Trace.Pkt_enqueue { queue; _ } ->
    let q = queue_acc t queue in
    end_run q;
    q.enqueued <- q.enqueued + 1
  | Trace.Pkt_forward { queue; bytes; qdelay; _ } ->
    let q = queue_acc t queue in
    end_run q;
    q.forwarded <- q.forwarded + 1;
    q.forwarded_bytes <- q.forwarded_bytes + bytes;
    Histogram.add q.qd_hist qdelay;
    moments_add q.qd qdelay
  | Trace.Pkt_drop { queue; cause; _ } ->
    let q = queue_acc t queue in
    q.run <- q.run + 1;
    (match cause with
    | Trace.Overflow -> q.drops_overflow <- q.drops_overflow + 1
    | Trace.Red_early -> q.drops_red <- q.drops_red + 1
    | Trace.Random_loss -> q.drops_random <- q.drops_random + 1
    | Trace.Link_down -> q.drops_down <- q.drops_down + 1)
  | Trace.Rtt_sample { flow; subflow; rtt; _ } ->
    let s = sub_acc t ~flow ~subflow ~time in
    Histogram.add s.rtt_h rtt;
    moments_add s.rtt rtt
  | Trace.Cwnd_update { flow; subflow; cwnd; _ } ->
    let s = sub_acc t ~flow ~subflow ~time in
    Timeseries.add s.cwnd ~time cwnd;
    moments_add s.cwnd_stats cwnd
  | Trace.Tcp_state { flow; subflow; to_state; _ } ->
    let s = sub_acc t ~flow ~subflow ~time in
    dwell_add s ~until:time;
    s.state <- to_state;
    s.state_since <- time
  | Trace.Rto_fired { flow; subflow; _ } ->
    let s = sub_acc t ~flow ~subflow ~time in
    s.rto_fired <- s.rto_fired + 1
  | Trace.Subflow_add { flow; subflow; _ } ->
    ignore (sub_acc t ~flow ~subflow ~time)
  | Trace.Subflow_remove { flow; subflow; _ } ->
    let s = sub_acc t ~flow ~subflow ~time in
    s.removed_at <- Some time

let load_jsonl ~path =
  let t = create () in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lineno =
        match In_channel.input_line ic with
        | None -> Ok t
        | Some "" -> loop (lineno + 1)
        | Some line -> (
          match Json.of_string line with
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
          | Ok j -> (
            match Trace.of_json j with
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
            | Ok ev ->
              feed t ev;
              loop (lineno + 1)))
      in
      loop 1)

(* --- rendering ------------------------------------------------------- *)

(* Quantiles worth printing: the median, the tail that a plot would
   show, and the extreme tail that RTO inflation hides in. *)
let quantile_points = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

let latency_json (m : moments) hist =
  let mean = if m.n > 0 then m.sum /. float_of_int m.n else nan in
  Json.Obj
    ([
       ("n", Json.Int m.n);
       ("mean", Json.Float mean);
       ("min", Json.Float (if m.n > 0 then m.min_v else nan));
       ("max", Json.Float (if m.n > 0 then m.max_v else nan));
     ]
    @ List.map
        (fun (name, q) -> (name, Json.Float (Histogram.quantile hist q)))
        quantile_points)

let sorted_queues t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.queues [])

let sorted_subs t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.subs [])

(* Dwell in the current state is still open when the stream ends; close
   it at the subflow's removal time, or the last event time. Computed
   here rather than mutated into the accumulator so [to_json] can be
   called mid-stream and again later. *)
let dwells t s =
  let until = match s.removed_at with Some r -> r | None -> t.last_t in
  let extra = until -. s.state_since in
  let extra = if Float.is_nan extra || extra < 0. then 0. else extra in
  let open_ss, open_ca, open_fr =
    match s.state with
    | Trace.Slow_start -> (extra, 0., 0.)
    | Trace.Congestion_avoidance -> (0., extra, 0.)
    | Trace.Fast_recovery -> (0., 0., extra)
  in
  (s.dwell_ss +. open_ss, s.dwell_ca +. open_ca, s.dwell_fr +. open_fr)

let to_json t =
  let counts =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) t.counts [])
  in
  let queue_json (name, q) =
    let total_drops =
      q.drops_overflow + q.drops_red + q.drops_random + q.drops_down
    in
    ( name,
      Json.Obj
        [
          ("enqueued", Json.Int q.enqueued);
          ("forwarded", Json.Int q.forwarded);
          ("forwarded_bytes", Json.Int q.forwarded_bytes);
          ( "drops",
            Json.Obj
              [
                ("total", Json.Int total_drops);
                ("overflow", Json.Int q.drops_overflow);
                ("red_early", Json.Int q.drops_red);
                ("random_loss", Json.Int q.drops_random);
                ("link_down", Json.Int q.drops_down);
              ] );
          ("qdelay_s", latency_json q.qd q.qd_hist);
          ( "drop_bursts",
            Json.Obj
              [
                (* the trailing run is still open; close it like dwell *)
                ( "bursts",
                  Json.Int (q.bursts + if q.run >= 2 then 1 else 0) );
                ("max_run", Json.Int (max q.max_run q.run));
              ] );
        ] )
  in
  let sub_json ((flow, subflow), s) =
    let ss, ca, fr = dwells t s in
    let cwnd_last =
      match Timeseries.last s.cwnd with Some (_, v) -> v | None -> nan
    in
    ( Printf.sprintf "%d/%d" flow subflow,
      Json.Obj
        [
          ("rtt_s", latency_json s.rtt s.rtt_h);
          ( "cwnd",
            Json.Obj
              [
                ("samples", Json.Int (Timeseries.length s.cwnd));
                ("last", Json.Float cwnd_last);
                ( "min",
                  Json.Float (if s.cwnd_stats.n > 0 then s.cwnd_stats.min_v
                              else nan) );
                ( "max",
                  Json.Float (if s.cwnd_stats.n > 0 then s.cwnd_stats.max_v
                              else nan) );
              ] );
          ( "state_dwell_s",
            Json.Obj
              [
                ("slow_start", Json.Float ss);
                ("congestion_avoidance", Json.Float ca);
                ("fast_recovery", Json.Float fr);
              ] );
          ("rto_fired", Json.Int s.rto_fired);
        ] )
  in
  Json.Obj
    [
      ( "events",
        Json.Obj
          [ ("total", Json.Int t.events); ("by_type", Json.Obj counts) ] );
      ( "time",
        Json.Obj
          [
            ("first", Json.Float t.first_t);
            ("last", Json.Float t.last_t);
            ("span", Json.Float (t.last_t -. t.first_t));
          ] );
      ("queues", Json.Obj (List.map queue_json (sorted_queues t)));
      ("subflows", Json.Obj (List.map sub_json (sorted_subs t)));
    ]

let ms v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" (v *. 1e3)

let to_text t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "events: %d   span: %s s\n\n" t.events
       (if Float.is_nan t.first_t then "-"
        else Printf.sprintf "%.3f" (t.last_t -. t.first_t)));
  let qt =
    Table.create ~title:"queues"
      ~columns:
        [
          "queue"; "enq"; "fwd"; "drops"; "qd_p50_ms"; "qd_p90_ms";
          "qd_p99_ms"; "bursts"; "max_run";
        ]
  in
  List.iter
    (fun (name, q) ->
      let total_drops =
        q.drops_overflow + q.drops_red + q.drops_random + q.drops_down
      in
      Table.add_row qt
        [
          name;
          string_of_int q.enqueued;
          string_of_int q.forwarded;
          string_of_int total_drops;
          ms (Histogram.quantile q.qd_hist 0.5);
          ms (Histogram.quantile q.qd_hist 0.9);
          ms (Histogram.quantile q.qd_hist 0.99);
          string_of_int (q.bursts + if q.run >= 2 then 1 else 0);
          string_of_int (max q.max_run q.run);
        ])
    (sorted_queues t);
  Buffer.add_string buf (Table.to_string qt);
  Buffer.add_char buf '\n';
  let st =
    Table.create ~title:"subflows"
      ~columns:
        [
          "flow/sub"; "rtt_n"; "rtt_p50_ms"; "rtt_p90_ms"; "rtt_p99_ms";
          "cwnd_last"; "ss_s"; "ca_s"; "fr_s"; "rto";
        ]
  in
  List.iter
    (fun ((flow, subflow), s) ->
      let ss, ca, fr = dwells t s in
      let cwnd_last =
        match Timeseries.last s.cwnd with Some (_, v) -> v | None -> nan
      in
      Table.add_row st
        [
          Printf.sprintf "%d/%d" flow subflow;
          string_of_int s.rtt.n;
          ms (Histogram.quantile s.rtt_h 0.5);
          ms (Histogram.quantile s.rtt_h 0.9);
          ms (Histogram.quantile s.rtt_h 0.99);
          (if Float.is_nan cwnd_last then "-"
           else Printf.sprintf "%.2f" cwnd_last);
          Printf.sprintf "%.3f" ss;
          Printf.sprintf "%.3f" ca;
          Printf.sprintf "%.3f" fr;
          string_of_int s.rto_fired;
        ])
    (sorted_subs t);
  Buffer.add_string buf (Table.to_string st);
  Buffer.contents buf
