(* Integer twin of the kernel's OLIA (net/mptcp/mptcp_olia.c, linux-4.1
   MPTCP tree, SNIPPETS.md), mirrored step by step: the scaled rate
   accumulation of mptcp_get_rate, the epsilon numerator/denominator
   sets of mptcp_get_epsilon, the mptcp_snd_cwnd_cnt increment of
   mptcp_olia_cong_avoid, and the loss1/loss2/loss3 byte counters of
   mptcp_olia_set_state. All update-path arithmetic is integer-only on
   Fixedpoint primitives; floats appear only in the
   [@olia.float_boundary] adapters that translate the simulator's float
   subflow views into kernel units and the signed cnt increment back
   into a per-ACK cwnd delta. *)

module Fp = Fixedpoint

(* Kernel state per subflow, struct-of-arrays so the integer cores can
   run without allocating: cwnd in packets, srtt in microseconds, the
   three loss counters, and the epsilon fraction mptcp_get_epsilon
   writes back. The scalar fields are loop accumulators — the cores may
   not allocate, so they carry partial sums here instead of in refs. *)
type state = {
  mutable n : int;
  mutable cwnd : int array;
  mutable rtt_us : int array;
  mutable loss1 : int array;
  mutable loss2 : int array;
  mutable loss3 : int array;
  mutable eps_num : int array;
  mutable eps_den : int array;
  mutable acc : int;
  mutable best_int : int;
  mutable best_rtt : int;
  mutable set_m : int;
  mutable set_b_not_m : int;
}

(* --- integer cores (kernel arithmetic, alloc-free) -------------------- *)

(* The kernel's tmp_int: max(loss3 - loss2, loss2 - loss1), the larger
   of the inter-loss intervals l1(p), l2(p). *)
let[@olia.alloc_free] loss_interval st p =
  let l2 = st.loss3.(p) - st.loss2.(p) and l1 = st.loss2.(p) - st.loss1.(p) in
  if l2 > l1 then l2 else l1

(* mptcp_get_max_cwnd *)
let[@olia.alloc_free] max_cwnd st =
  st.acc <- 0;
  for p = 0 to st.n - 1 do
    if st.cwnd.(p) > st.acc then st.acc <- st.cwnd.(p)
  done;
  st.acc

(* mptcp_get_rate: rate = (1 + sum_p (w_p << scale) * rtt_idx / rtt_p)^2,
   the squared scaled aggregate in units of the updated path's rtt. The
   1 floor keeps it usable as a divisor. *)
let[@olia.alloc_free] get_rate st idx =
  let path_rtt = st.rtt_us.(idx) in
  st.acc <- 1;
  for p = 0 to st.n - 1 do
    let scaled_num = Fp.mul_sat (Fp.scale_sat st.cwnd.(p)) path_rtt in
    st.acc <- Fp.add_sat st.acc (Fp.div_u64 scaled_num st.rtt_us.(p))
  done;
  Fp.mul_sat st.acc st.acc

(* mptcp_get_epsilon: three passes — find the best path by
   tmp_int/tmp_rtt (compared by cross-multiplication, best_int = 0 and
   best_rtt = 1 initially), count the max-cwnd set M and the best paths
   outside it B\M, then write each path's epsilon fraction. *)
let[@olia.alloc_free] get_epsilon st =
  let mc = max_cwnd st in
  st.best_int <- 0;
  st.best_rtt <- 1;
  for p = 0 to st.n - 1 do
    let tmp_rtt = Fp.mul_sat st.rtt_us.(p) st.rtt_us.(p) in
    let tmp_int = loss_interval st p in
    if Fp.mul_sat tmp_int st.best_rtt >= Fp.mul_sat st.best_int tmp_rtt
    then begin
      st.best_rtt <- tmp_rtt;
      st.best_int <- tmp_int
    end
  done;
  st.set_m <- 0;
  st.set_b_not_m <- 0;
  for p = 0 to st.n - 1 do
    if st.cwnd.(p) = mc then st.set_m <- st.set_m + 1
    else begin
      let tmp_rtt = Fp.mul_sat st.rtt_us.(p) st.rtt_us.(p) in
      let tmp_int = loss_interval st p in
      if Fp.mul_sat tmp_int st.best_rtt = Fp.mul_sat st.best_int tmp_rtt then
        st.set_b_not_m <- st.set_b_not_m + 1
    end
  done;
  for p = 0 to st.n - 1 do
    if st.set_b_not_m = 0 then begin
      st.eps_num.(p) <- 0;
      st.eps_den.(p) <- 1
    end
    else begin
      let tmp_rtt = Fp.mul_sat st.rtt_us.(p) st.rtt_us.(p) in
      let tmp_int = loss_interval st p in
      if
        st.cwnd.(p) < mc
        && Fp.mul_sat tmp_int st.best_rtt = Fp.mul_sat st.best_int tmp_rtt
      then begin
        st.eps_num.(p) <- 1;
        st.eps_den.(p) <- st.n * st.set_b_not_m
      end
      else if st.cwnd.(p) = mc then begin
        st.eps_num.(p) <- -1;
        st.eps_den.(p) <- st.n * st.set_m
      end
      else begin
        st.eps_num.(p) <- 0;
        st.eps_den.(p) <- 1
      end
    end
  done

(* The signed per-ACK mptcp_snd_cwnd_cnt increment of
   mptcp_olia_cong_avoid, in cnt units ((1 << scale) - 1 of them make a
   full cwnd step). The scaled numerator shift "is used to reduce the
   rounding effect"; the epsilon_num = -1 branches keep the u64
   subtraction nonnegative exactly as the kernel does. *)
let[@olia.alloc_free] cnt_increment st idx =
  get_epsilon st;
  let rate = get_rate st idx in
  let cwnd_scaled = Fp.scale_sat st.cwnd.(idx) in
  let ed = st.eps_den.(idx) in
  let inc_den =
    let d = Fp.mul_sat (Fp.mul_sat ed st.cwnd.(idx)) rate in
    if d = 0 then 1 else d
  in
  let w2 = Fp.mul_sat ed (Fp.mul_sat cwnd_scaled cwnd_scaled) in
  if st.eps_num.(idx) = -1 then
    if w2 < rate then -(Fp.div_u64 (Fp.scale_sat (rate - w2)) inc_den)
    else Fp.div_u64 (Fp.scale_sat (w2 - rate)) inc_den
  else begin
    let inc_num = if st.eps_num.(idx) = 1 then Fp.add_sat rate w2 else w2 in
    Fp.div_u64 (Fp.scale_sat inc_num) inc_den
  end

(* mptcp_olia_set_state on TCP_CA_Loss/Recovery: roll the loss counters
   unless nothing was acked since the previous loss. *)
let[@olia.alloc_free] note_loss st idx =
  if st.loss3.(idx) <> st.loss2.(idx) then begin
    st.loss1.(idx) <- st.loss2.(idx);
    st.loss2.(idx) <- st.loss3.(idx)
  end

let[@olia.alloc_free] note_acked st idx pkts =
  st.loss3.(idx) <- st.loss3.(idx) + pkts

(* --- float boundary ---------------------------------------------------- *)

let ensure st idx =
  if idx >= Array.length st.cwnd then begin
    let cap = Stdlib.max (2 * (idx + 1)) 4 in
    let grow a =
      Array.init cap (fun i -> if i < Array.length a then a.(i) else 0)
    in
    st.cwnd <- grow st.cwnd;
    st.rtt_us <- grow st.rtt_us;
    st.loss1 <- grow st.loss1;
    st.loss2 <- grow st.loss2;
    st.loss3 <- grow st.loss3;
    st.eps_num <- grow st.eps_num;
    st.eps_den <- grow st.eps_den
  end;
  if idx >= st.n then st.n <- idx + 1

(* Translate the simulator's float views into kernel units: cwnd
   truncated to whole packets (floored at 1 like the kernel's integer
   snd_cwnd), srtt in microseconds (floored at 1 so it can divide). *)
let[@olia.float_boundary] sync st (views : Cc_types.subflow_view array) =
  let n = Array.length views in
  ensure st (n - 1);
  st.n <- n;
  for p = 0 to n - 1 do
    let v = views.(p) in
    let w = int_of_float v.Cc_types.cwnd in
    st.cwnd.(p) <- (if w < 1 then 1 else w);
    st.rtt_us.(p) <- Fp.usec_of_sec v.Cc_types.rtt
  done

let[@olia.float_boundary] create () =
  let st =
    {
      n = 0;
      cwnd = Array.make 4 0;
      rtt_us = Array.make 4 1;
      loss1 = Array.make 4 0;
      loss2 = Array.make 4 0;
      loss3 = Array.make 4 0;
      eps_num = Array.make 4 0;
      eps_den = Array.make 4 1;
      acc = 0;
      best_int = 0;
      best_rtt = 1;
      set_m = 0;
      set_b_not_m = 0;
    }
  in
  let increase ~views ~idx =
    sync st views;
    float_of_int (cnt_increment st idx) /. float_of_int Fp.cnt_wrap
  in
  let on_ack ~idx ~acked =
    ensure st idx;
    note_acked st idx (int_of_float acked)
  in
  let on_loss ~idx =
    ensure st idx;
    note_loss st idx
  in
  (* The kernel leaves ssthresh to tcp_reno_ssthresh: the new window is
     the integer half of the old one, so the decrease returned here
     lands the float cwnd exactly on [w asr 1]. *)
  let loss_decrease ~views ~idx =
    let c = views.(idx).Cc_types.cwnd in
    let w = int_of_float c in
    let w = if w < 1 then 1 else w in
    c -. float_of_int (w asr 1)
  in
  {
    Cc_types.name = "olia-fp";
    multipath_initial_ssthresh = Some 1.;
    on_ack;
    on_loss;
    increase;
    loss_decrease;
  }
