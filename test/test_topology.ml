open Mptcp_repro.Netsim
open Mptcp_repro.Topology

(* Timer handles are discarded in tests: scheduling here is fire-and-forget. *)
module Sim = struct
  include Sim

  let schedule_at ?src sim t f = ignore (Sim.schedule_at ?src sim t f : Sim.Timer.t)
  let schedule_after ?src sim d f = ignore (Sim.schedule_after ?src sim d f : Sim.Timer.t)
end

let check_close eps = Alcotest.(check (float eps))

let make_tree ?(k = 4) ?(oversubscription = 1.) () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let tree =
    Fattree.create ~sim ~rng ~k ~rate_bps:10e6 ~delay:0.001 ~buffer_pkts:100
      ~discipline:Queue.Droptail ~oversubscription ()
  in
  (sim, tree)

(* --- Duplex ----------------------------------------------------------- *)

let test_duplex_directions_independent () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let link =
    Duplex.create ~sim ~rng ~rate_bps:12e6 ~delay:0.01 ~buffer_pkts:10
      ~discipline:Queue.Droptail ()
  in
  let fwd_arr = ref nan and rev_arr = ref nan in
  let fwd_sink (_ : Packet.t) = fwd_arr := Sim.now sim in
  let rev_sink (_ : Packet.t) = rev_arr := Sim.now sim in
  let fwd_route = Array.append (Duplex.fwd_hops link) [| fwd_sink |] in
  let rev_route = Array.append (Duplex.rev_hops link) [| rev_sink |] in
  Sim.schedule_at sim 0. (fun () ->
      Packet.forward
        (Packet.data ~flow:0 ~subflow:0 ~seq:0 ~sent_at:0. ~route:fwd_route);
      Packet.forward
        (Packet.data ~flow:0 ~subflow:0 ~seq:1 ~sent_at:0. ~route:rev_route));
  Sim.run sim;
  (* both directions serve concurrently: same arrival time *)
  check_close 1e-9 "fwd" 0.011 !fwd_arr;
  check_close 1e-9 "rev" 0.011 !rev_arr;
  Alcotest.(check int) "fwd stats" 1 (Queue.arrivals (Duplex.fwd_queue link));
  Alcotest.(check int) "rev stats" 1 (Queue.arrivals (Duplex.rev_queue link));
  check_close 1e-12 "delay accessor" 0.01 (Duplex.one_way_delay link)

(* --- Fattree structure ------------------------------------------------- *)

let test_fattree_counts_k4 () =
  let _, tree = make_tree ~k:4 () in
  Alcotest.(check int) "hosts" 16 (Fattree.host_count tree);
  Alcotest.(check int) "switches" 20 (Fattree.switch_count tree);
  Alcotest.(check int) "k" 4 (Fattree.k tree)

let test_fattree_counts_k8 () =
  let _, tree = make_tree ~k:8 () in
  (* the paper's htsim topology: 128 hosts, 80 switches *)
  Alcotest.(check int) "hosts" 128 (Fattree.host_count tree);
  Alcotest.(check int) "switches" 80 (Fattree.switch_count tree)

let test_fattree_rejects_odd_k () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "odd k" (Invalid_argument "Fattree.create: k must be even")
    (fun () ->
      ignore
        (Fattree.create ~sim ~rng ~k:3 ~rate_bps:1e6 ~delay:0.001
           ~buffer_pkts:10 ~discipline:Queue.Droptail ()))

let test_fattree_path_counts () =
  let _, tree = make_tree ~k:4 () in
  (* same edge switch: hosts 0 and 1 *)
  Alcotest.(check int) "same edge" 1 (Fattree.path_count tree ~src:0 ~dst:1);
  (* same pod, different edge: hosts 0 and 2 *)
  Alcotest.(check int) "same pod" 2 (Fattree.path_count tree ~src:0 ~dst:2);
  (* different pods: hosts 0 and 15 *)
  Alcotest.(check int) "cross pod" 4 (Fattree.path_count tree ~src:0 ~dst:15)

let test_fattree_path_count_k8 () =
  let _, tree = make_tree ~k:8 () in
  Alcotest.(check int) "cross pod (k/2)²" 16
    (Fattree.path_count tree ~src:0 ~dst:127)

let test_fattree_all_paths_match_count () =
  let _, tree = make_tree ~k:4 () in
  List.iter
    (fun (src, dst) ->
      Alcotest.(check int) "lengths agree"
        (Fattree.path_count tree ~src ~dst)
        (Array.length (Fattree.all_paths tree ~src ~dst)))
    [ (0, 1); (0, 2); (0, 15); (5, 9); (12, 3) ]

let test_fattree_rejects_self_path () =
  let _, tree = make_tree () in
  Alcotest.check_raises "self" (Invalid_argument "Fattree: src = dst")
    (fun () -> ignore (Fattree.all_paths tree ~src:3 ~dst:3));
  Alcotest.check_raises "range" (Invalid_argument "Fattree: host out of range")
    (fun () -> ignore (Fattree.all_paths tree ~src:0 ~dst:99))

let test_fattree_sample_paths_distinct () =
  let _, tree = make_tree ~k:4 () in
  let rng = Rng.create ~seed:5 in
  let paths = Fattree.sample_paths tree ~rng ~src:0 ~dst:15 ~n:3 in
  Alcotest.(check int) "asked three" 3 (Array.length paths);
  let all = Fattree.sample_paths tree ~rng ~src:0 ~dst:15 ~n:100 in
  Alcotest.(check int) "capped at available" 4 (Array.length all)

let test_fattree_queue_lists () =
  let _, tree = make_tree ~k:4 () in
  (* k=4: agg-core links = k·(k/2)·(k/2) = 16, two queues each *)
  Alcotest.(check int) "core queues" 32 (List.length (Fattree.core_queues tree));
  (* all links: 16 host + 16 edge-agg + 16 agg-core = 48 links, 96 queues *)
  Alcotest.(check int) "all queues" 96 (List.length (Fattree.all_queues tree))

(* --- Fattree routing actually delivers --------------------------------- *)

let test_fattree_paths_deliver_and_return () =
  let sim, tree = make_tree ~k:4 () in
  List.iter
    (fun (src, dst) ->
      Array.iteri
        (fun i { Mptcp_repro.Netsim.Tcp.fwd; rev } ->
          let got_fwd = ref false and got_rev = ref false in
          let fwd_route = Array.append fwd [| (fun _ -> got_fwd := true) |] in
          let rev_route = Array.append rev [| (fun _ -> got_rev := true) |] in
          Packet.forward
            (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:(Sim.now sim)
               ~route:fwd_route);
          Sim.run sim;
          Packet.forward
            (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:(Sim.now sim)
               ~route:rev_route);
          Sim.run sim;
          Alcotest.(check bool)
            (Printf.sprintf "fwd %d->%d path %d" src dst i)
            true !got_fwd;
          Alcotest.(check bool)
            (Printf.sprintf "rev %d->%d path %d" src dst i)
            true !got_rev)
        (Fattree.all_paths tree ~src ~dst))
    [ (0, 1); (0, 2); (0, 15); (7, 8) ]

let test_fattree_oversubscription_slows_uplinks () =
  let sim, tree = make_tree ~k:4 ~oversubscription:4. () in
  (* send a burst cross-pod and check it takes ~4x longer than the host
     link would: uplink rate = 2.5 Mb/s -> 4.8 ms per packet *)
  let path = (Fattree.all_paths tree ~src:0 ~dst:15).(0) in
  let last_arrival = ref 0. in
  let route =
    Array.append path.Mptcp_repro.Netsim.Tcp.fwd
      [| (fun _ -> last_arrival := Sim.now sim) |]
  in
  Sim.schedule_at sim 0. (fun () ->
      for i = 0 to 9 do
        Packet.forward
          (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:0. ~route)
      done);
  Sim.run sim;
  (* ten packets paced by the slowest (uplink) hop at 4.8 ms apiece *)
  Alcotest.(check bool) "uplink pacing" true (!last_arrival > 0.045)

let prop_fattree_path_endpoints_valid =
  QCheck.Test.make ~name:"fattree: every host pair has >= 1 path" ~count:60
    QCheck.(pair (int_range 0 15) (int_range 0 15))
    (fun (src, dst) ->
      let _, tree = make_tree ~k:4 () in
      src = dst
      || Array.length (Fattree.all_paths tree ~src ~dst) >= 1)

(* --- Workload ----------------------------------------------------------- *)

let test_workload_permutation () =
  let rng = Rng.create ~seed:21 in
  let flows =
    Mptcp_repro.Workload.permutation_long_flows ~rng ~hosts:16 ~max_jitter:1.
  in
  Alcotest.(check int) "one per host" 16 (List.length flows);
  List.iter
    (fun { Mptcp_repro.Workload.src; dst; size_pkts; start } ->
      Alcotest.(check bool) "no self" true (src <> dst);
      Alcotest.(check bool) "long" true (size_pkts = None);
      Alcotest.(check bool) "jittered" true (start >= 0. && start < 1.))
    flows;
  (* destinations form a permutation *)
  let dsts =
    List.sort compare (List.map (fun f -> f.Mptcp_repro.Workload.dst) flows)
  in
  Alcotest.(check (list int)) "permutation" (List.init 16 Fun.id) dsts

let test_workload_poisson () =
  let rng = Rng.create ~seed:22 in
  let flows =
    Mptcp_repro.Workload.poisson_short_flows ~rng ~src:1 ~dst:2
      ~mean_interval:0.2 ~size_pkts:47 ~duration:100.
  in
  let n = List.length flows in
  (* expectation 500; allow wide slack *)
  Alcotest.(check bool) (Printf.sprintf "count %d near 500" n) true
    (n > 400 && n < 600);
  let sorted = ref true and prev = ref 0. in
  List.iter
    (fun { Mptcp_repro.Workload.start; size_pkts; _ } ->
      if start < !prev then sorted := false;
      prev := start;
      Alcotest.(check (option int)) "size" (Some 47) size_pkts)
    flows;
  Alcotest.(check bool) "sorted by arrival" true !sorted;
  Alcotest.(check bool) "within duration" true (!prev < 100.)

let test_workload_short_flow_size () =
  (* 70 kB of 1500-byte segments *)
  Alcotest.(check int) "47 packets" 47 Mptcp_repro.Workload.short_flow_pkts

let test_workload_staggered () =
  let rng = Rng.create ~seed:23 in
  let starts =
    Mptcp_repro.Workload.staggered_starts ~rng ~n:50 ~max_jitter:2.
  in
  Alcotest.(check int) "count" 50 (Array.length starts);
  Array.iter
    (fun s -> Alcotest.(check bool) "in range" true (s >= 0. && s < 2.))
    starts

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "duplex: independent directions" `Quick
      test_duplex_directions_independent;
    Alcotest.test_case "fattree: k=4 counts" `Quick test_fattree_counts_k4;
    Alcotest.test_case "fattree: k=8 = paper topology" `Quick
      test_fattree_counts_k8;
    Alcotest.test_case "fattree: rejects odd k" `Quick test_fattree_rejects_odd_k;
    Alcotest.test_case "fattree: path counts" `Quick test_fattree_path_counts;
    Alcotest.test_case "fattree: 16 cross-pod paths at k=8" `Quick
      test_fattree_path_count_k8;
    Alcotest.test_case "fattree: all_paths matches count" `Quick
      test_fattree_all_paths_match_count;
    Alcotest.test_case "fattree: rejects bad pairs" `Quick
      test_fattree_rejects_self_path;
    Alcotest.test_case "fattree: path sampling" `Quick
      test_fattree_sample_paths_distinct;
    Alcotest.test_case "fattree: queue inventories" `Quick
      test_fattree_queue_lists;
    Alcotest.test_case "fattree: paths deliver both ways" `Quick
      test_fattree_paths_deliver_and_return;
    Alcotest.test_case "fattree: oversubscription" `Quick
      test_fattree_oversubscription_slows_uplinks;
    q prop_fattree_path_endpoints_valid;
    Alcotest.test_case "workload: permutation flows" `Quick
      test_workload_permutation;
    Alcotest.test_case "workload: poisson shorts" `Quick test_workload_poisson;
    Alcotest.test_case "workload: 70kB short size" `Quick
      test_workload_short_flow_size;
    Alcotest.test_case "workload: staggered starts" `Quick test_workload_staggered;
  ]
