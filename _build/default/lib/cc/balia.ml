let rates (views : Cc_types.subflow_view array) =
  Array.map
    (fun (v : Cc_types.subflow_view) -> v.cwnd /. Stdlib.max v.rtt 1e-9)
    views

let alpha views idx =
  let x = rates views in
  let xmax = Array.fold_left Stdlib.max 0. x in
  xmax /. Stdlib.max x.(idx) 1e-9

let create () =
  let increase ~views ~idx =
    let x = rates views in
    let total = Array.fold_left ( +. ) 0. x in
    let a = alpha views idx in
    let v = views.(idx) in
    let rtt = Stdlib.max v.Cc_types.rtt 1e-9 in
    x.(idx) /. rtt /. Stdlib.max (total *. total) 1e-18
    *. ((1. +. a) /. 2.)
    *. ((4. +. a) /. 5.)
  in
  let loss_decrease ~views ~idx =
    let a = alpha views idx in
    views.(idx).Cc_types.cwnd /. 2. *. Stdlib.min a 1.5
  in
  {
    Cc_types.name = "balia";
    multipath_initial_ssthresh = None;
    on_ack = (fun ~idx:_ ~acked:_ -> ());
    on_loss = (fun ~idx:_ -> ());
    increase;
    loss_decrease;
  }
