module Json = Repro_stats.Json
module FA = Repro_fluid.Scenario_a
module FB = Repro_fluid.Scenario_b
module FC = Repro_fluid.Scenario_c
module U = Repro_fluid.Units
module NM = Repro_fluid.Network_model
module Eq = Repro_fluid.Equilibrium
module SA = Repro_scenarios.Scen_a
module SB = Repro_scenarios.Scen_b
module SC = Repro_scenarios.Scen_c
module Meter = Repro_obs.Meter

(* The case registry. Every case runs something — a packet simulation,
   a fluid solver, a fault-injection scenario — and returns a flat
   metric list; its bands declare what the analytical side of the paper
   predicts for those metrics. All runs are seeded and measured with
   deterministic counters only, so two invocations of [run_all] yield
   byte-identical reports. *)

type case = {
  name : string;
  doc : string;
  bands : Band.t list;
  run : unit -> (string * float) list;
}

(* An OLIA measurement is bracketed by two models: the LIA fixed point
   below (OLIA is less aggressive on congested shared paths, §IV) and
   the probing-cost optimum above (Theorem 1 drives OLIA towards it).
   [slack] widens the bracket for stochastic simulation noise. *)
let between ~id ~metric ~source ?(slack = 0.12) a b =
  Band.within ~id ~metric ~source ~expected:b
    ~lo:((1. -. slack) *. Stdlib.min a b)
    ~hi:((1. +. slack) *. Stdlib.max a b)

let bps_of_pps pps = 1e6 *. U.mbps_of_pps pps

(* --- scenario A -------------------------------------------------------- *)

let params_a =
  let d = SA.default in
  {
    FA.n1 = d.SA.n1;
    n2 = d.SA.n2;
    c1 = U.pps_of_mbps d.SA.c1_mbps;
    c2 = U.pps_of_mbps d.SA.c2_mbps;
    rtt = Repro_scenarios.Common.paper_rtt;
  }

let net_a () =
  let p = params_a in
  let type1 =
    {
      NM.routes =
        [|
          { NM.links = [| 0 |]; rtt = p.FA.rtt };
          { NM.links = [| 0; 1 |]; rtt = p.FA.rtt };
        |];
    }
  in
  let type2 = { NM.routes = [| { NM.links = [| 1 |]; rtt = p.FA.rtt } |] } in
  {
    NM.links =
      [|
        NM.link (float_of_int p.FA.n1 *. p.FA.c1);
        NM.link (float_of_int p.FA.n2 *. p.FA.c2);
      |];
    users = Array.append (Array.make p.FA.n1 type1) (Array.make p.FA.n2 type2);
  }

(* Per-class normalized totals of an equilibrium allocation on [net_a]
   (or the identically-shaped scenario-C network): type-1 users come
   first, type-2 users start at index [n1]. *)
let norms_2class ~n1 ~c1 ~c2 x =
  let t1 = Array.fold_left ( +. ) 0. x.(0) in
  let t2 = Array.fold_left ( +. ) 0. x.(n1) in
  (t1 /. c1, t2 /. c2)

let metrics_a (r : SA.result) =
  ("norm_type1", r.SA.norm_type1)
  :: ("norm_type2", r.SA.norm_type2)
  :: ("p1", r.SA.p1)
  :: ("p2", r.SA.p2)
  :: Meter.metrics r.SA.obs

let run_a algo () = metrics_a (SA.run { SA.default with SA.algo })

let a_lia_case () =
  let f = FA.lia params_a in
  {
    name = "a/lia";
    doc = "scenario A, MPTCP-LIA vs the Eq. 10 fixed point (paper SIII-A)";
    run = run_a "lia";
    bands =
      [
        Band.around ~id:"a.lia.norm_type1" ~metric:"norm_type1" ~rtol:0.15
          ~source:"Eq. 10: type-1 users saturate their private path"
          f.FA.norm_type1;
        Band.around ~id:"a.lia.norm_type2" ~metric:"norm_type2" ~rtol:0.15
          ~source:"Eq. 10: y/c2 at the LIA fixed point" f.FA.norm_type2;
        Band.loss ~id:"a.lia.p1" ~metric:"p1"
          ~source:"p1 = 2/(rtt*c1)^2 (SIII-A)" f.FA.p1;
        Band.loss ~id:"a.lia.p2" ~metric:"p2" ~source:"p2 = p1/z^2 (SIII-A)"
          f.FA.p2;
        Band.around ~id:"a.lia.sf_private"
          ~metric:"obs_subflow_goodput_bps_type1_sf0" ~rtol:0.4
          ~source:"x1 of the LIA fixed point (private path)"
          (bps_of_pps f.FA.x1);
        Band.around ~id:"a.lia.sf_shared"
          ~metric:"obs_subflow_goodput_bps_type1_sf1" ~rtol:0.6
          ~source:"x2 of the LIA fixed point (shared AP subflow)"
          (bps_of_pps f.FA.x2);
        Band.around ~id:"a.lia.sf_type2"
          ~metric:"obs_subflow_goodput_bps_type2_sf0" ~rtol:0.4
          ~source:"y of the LIA fixed point" (bps_of_pps f.FA.y);
      ];
  }

let a_olia_case () =
  let f = FA.lia params_a and o = FA.optimum_with_probing params_a in
  {
    name = "a/olia";
    doc =
      "scenario A, OLIA bracketed between the LIA fixed point and the \
       probing-cost optimum (paper SIV, Fig. 9)";
    run = run_a "olia";
    bands =
      [
        between ~id:"a.olia.norm_type1" ~metric:"norm_type1"
          ~source:"LIA point vs Appendix A.2 optimum" f.FA.norm_type1
          o.FA.norm1;
        between ~id:"a.olia.norm_type2" ~metric:"norm_type2"
          ~source:"LIA point vs Appendix A.2 optimum: OLIA must not \
                   penalize type-2 users below LIA" f.FA.norm_type2 o.FA.norm2;
        Band.loss ~id:"a.olia.p1" ~metric:"p1"
          ~source:"same order as the LIA losses" f.FA.p1;
        Band.loss ~id:"a.olia.p2" ~metric:"p2"
          ~source:"same order as the LIA losses" f.FA.p2;
      ];
  }

let a_reno_case () =
  let x = Eq.solve (net_a ()) Eq.Uncoupled in
  let n1, n2_ = norms_2class ~n1:params_a.FA.n1 ~c1:params_a.FA.c1
      ~c2:params_a.FA.c2 x
  in
  {
    name = "a/reno";
    doc =
      "scenario A, uncoupled Reno subflows vs the general equilibrium \
       solver (the epsilon=2 end point of SV)";
    run = run_a "reno";
    bands =
      [
        Band.around ~id:"a.reno.norm_type1" ~metric:"norm_type1" ~rtol:0.2
          ~source:"Equilibrium.solve Uncoupled on the scenario-A network" n1;
        Band.around ~id:"a.reno.norm_type2" ~metric:"norm_type2" ~rtol:0.2
          ~source:"Equilibrium.solve Uncoupled on the scenario-A network"
          n2_;
      ];
  }

(* --- scenario C -------------------------------------------------------- *)

let params_c =
  let d = SC.default in
  {
    FC.n1 = d.SC.n1;
    n2 = d.SC.n2;
    c1 = U.pps_of_mbps d.SC.c1_mbps;
    c2 = U.pps_of_mbps d.SC.c2_mbps;
    rtt = Repro_scenarios.Common.paper_rtt;
  }

let net_c () =
  let p = params_c in
  let multipath =
    {
      NM.routes =
        [|
          { NM.links = [| 0 |]; rtt = p.FC.rtt };
          { NM.links = [| 1 |]; rtt = p.FC.rtt };
        |];
    }
  in
  let single = { NM.routes = [| { NM.links = [| 1 |]; rtt = p.FC.rtt } |] } in
  {
    NM.links =
      [|
        NM.link (float_of_int p.FC.n1 *. p.FC.c1);
        NM.link (float_of_int p.FC.n2 *. p.FC.c2);
      |];
    users =
      Array.append (Array.make p.FC.n1 multipath) (Array.make p.FC.n2 single);
  }

let metrics_c (r : SC.result) =
  ("norm_multipath", r.SC.norm_multipath)
  :: ("norm_single", r.SC.norm_single)
  :: ("p1", r.SC.p1)
  :: ("p2", r.SC.p2)
  :: Meter.metrics r.SC.obs

let run_c algo () = metrics_c (SC.run { SC.default with SC.algo })

let c_lia_case () =
  let f = FC.lia params_c in
  {
    name = "c/lia";
    doc =
      "scenario C, MPTCP-LIA vs the cubic fixed point (paper SIII-C): \
       LIA overloads the shared AP2";
    run = run_c "lia";
    bands =
      [
        Band.around ~id:"c.lia.norm_multipath" ~metric:"norm_multipath"
          ~rtol:0.15 ~source:"cubic fixed point of SIII-C"
          f.FC.norm_multipath;
        Band.around ~id:"c.lia.norm_single" ~metric:"norm_single" ~rtol:0.15
          ~source:"cubic fixed point of SIII-C" f.FC.norm_single;
        Band.loss ~id:"c.lia.p1" ~metric:"p1" ~source:"SIII-C fixed point"
          f.FC.p1;
        Band.loss ~id:"c.lia.p2" ~metric:"p2" ~source:"SIII-C fixed point"
          f.FC.p2;
        Band.around ~id:"c.lia.sf_private"
          ~metric:"obs_subflow_goodput_bps_multipath_sf0" ~rtol:0.4
          ~source:"x1 of the LIA fixed point (private AP1)"
          (bps_of_pps f.FC.x1);
        Band.around ~id:"c.lia.sf_shared"
          ~metric:"obs_subflow_goodput_bps_multipath_sf1" ~rtol:0.6
          ~source:"x2 of the LIA fixed point (shared AP2 subflow)"
          (bps_of_pps f.FC.x2);
        Band.around ~id:"c.lia.sf_single"
          ~metric:"obs_subflow_goodput_bps_single_sf0" ~rtol:0.4
          ~source:"y of the LIA fixed point" (bps_of_pps f.FC.y);
      ];
  }

let c_olia_case () =
  let f = FC.lia params_c and o = FC.optimum_with_probing params_c in
  {
    name = "c/olia";
    doc =
      "scenario C, OLIA bracketed between the LIA fixed point and the \
       probing-cost optimum (paper SIV, Fig. 11)";
    run = run_c "olia";
    bands =
      [
        between ~id:"c.olia.norm_multipath" ~metric:"norm_multipath"
          ~source:"LIA point vs probing-cost optimum" f.FC.norm_multipath
          o.FC.norm_multipath;
        between ~id:"c.olia.norm_single" ~metric:"norm_single"
          ~source:"LIA point vs probing-cost optimum: OLIA must restore \
                   most of the single-path users' share" f.FC.norm_single
          o.FC.norm_single;
        Band.loss ~id:"c.olia.p2" ~metric:"p2"
          ~source:"same order as the LIA loss at AP2" f.FC.p2;
      ];
  }

let c_reno_case () =
  let x = Eq.solve (net_c ()) Eq.Uncoupled in
  let nm, ns = norms_2class ~n1:params_c.FC.n1 ~c1:params_c.FC.c1
      ~c2:params_c.FC.c2 x
  in
  {
    name = "c/reno";
    doc =
      "scenario C, uncoupled Reno subflows vs the general equilibrium \
       solver";
    run = run_c "reno";
    bands =
      [
        Band.around ~id:"c.reno.norm_multipath" ~metric:"norm_multipath"
          ~rtol:0.2 ~source:"Equilibrium.solve Uncoupled on the scenario-C \
                             network" nm;
        Band.around ~id:"c.reno.norm_single" ~metric:"norm_single" ~rtol:0.2
          ~source:"Equilibrium.solve Uncoupled on the scenario-C network" ns;
      ];
  }

(* --- scenario B -------------------------------------------------------- *)

let params_b =
  let d = SB.default in
  {
    FB.n = d.SB.n;
    cx = U.pps_of_mbps d.SB.cx_mbps;
    ct = U.pps_of_mbps d.SB.ct_mbps;
    rtt = Repro_scenarios.Common.paper_rtt;
  }

let metrics_b (r : SB.result) =
  ("blue_rate", r.SB.blue_rate)
  :: ("red_rate", r.SB.red_rate)
  :: ("aggregate", r.SB.aggregate)
  :: ("px", r.SB.px)
  :: ("pt", r.SB.pt)
  :: Meter.metrics r.SB.obs

let run_b ~red_multipath algo () =
  metrics_b (SB.run { SB.default with SB.algo; red_multipath })

let b_lia_singlepath_case () =
  let f = FB.lia_red_singlepath params_b in
  {
    name = "b/lia-singlepath";
    doc =
      "scenario B before the Red upgrade (paper Table I): Blue runs \
       MPTCP-LIA, Red regular TCP through T";
    run = run_b ~red_multipath:false "lia";
    bands =
      [
        Band.around ~id:"b.sp.blue" ~metric:"blue_rate" ~rtol:0.15
          ~source:"Table I fixed point (reduces to scenario C)"
          (U.mbps_of_pps f.FB.blue_total);
        Band.around ~id:"b.sp.red" ~metric:"red_rate" ~rtol:0.15
          ~source:"Table I fixed point (reduces to scenario C)"
          (U.mbps_of_pps f.FB.red_total);
        Band.around ~id:"b.sp.aggregate" ~metric:"aggregate" ~rtol:0.15
          ~source:"Table I aggregate" (U.mbps_of_pps f.FB.aggregate);
      ];
  }

let b_lia_multipath_case () =
  let f = FB.lia_red_multipath params_b in
  {
    name = "b/lia-multipath";
    doc =
      "scenario B after the Red upgrade (paper Table II): everybody \
       multipath under LIA, aggregate drops";
    run = run_b ~red_multipath:true "lia";
    bands =
      [
        Band.around ~id:"b.mp.blue" ~metric:"blue_rate" ~rtol:0.15
          ~source:"Appendix B fixed point (Table II)"
          (U.mbps_of_pps f.FB.blue_total);
        Band.around ~id:"b.mp.red" ~metric:"red_rate" ~rtol:0.15
          ~source:"Appendix B fixed point (Table II)"
          (U.mbps_of_pps f.FB.red_total);
        Band.around ~id:"b.mp.aggregate" ~metric:"aggregate" ~rtol:0.15
          ~source:"Appendix B aggregate (Table II)"
          (U.mbps_of_pps f.FB.aggregate);
        Band.loss ~id:"b.mp.px" ~metric:"px" ~factor:4.
          ~source:"Appendix B loss at ISP X" f.FB.px;
        Band.loss ~id:"b.mp.pt" ~metric:"pt" ~factor:4.
          ~source:"Appendix B loss at ISP T" f.FB.pt;
      ];
  }

let b_olia_multipath_case () =
  let f = FB.lia_red_multipath params_b in
  let o = FB.optimum_red_multipath params_b in
  {
    name = "b/olia-multipath";
    doc =
      "scenario B after the Red upgrade under OLIA: bracketed between \
       the LIA fixed point and the Appendix B optimum";
    run = run_b ~red_multipath:true "olia";
    bands =
      [
        between ~id:"b.olia.blue" ~metric:"blue_rate"
          ~source:"LIA point vs Appendix B Eqs. 13-14 optimum"
          (U.mbps_of_pps f.FB.blue_total)
          (U.mbps_of_pps o.FB.blue_total);
        between ~id:"b.olia.red" ~metric:"red_rate"
          ~source:"LIA point vs Appendix B Eqs. 13-14 optimum"
          (U.mbps_of_pps f.FB.red_total)
          (U.mbps_of_pps o.FB.red_total);
        between ~id:"b.olia.aggregate" ~metric:"aggregate"
          ~source:"OLIA recovers part of the upgrade-lost aggregate"
          (U.mbps_of_pps f.FB.aggregate)
          (U.mbps_of_pps o.FB.aggregate);
      ];
  }

(* --- fluid cross-validation ------------------------------------------- *)

(* The closed-form scenario analyses and the general-network solver are
   independent derivations of the same fixed points; they must agree.
   This differential check guards both against silent drift. *)

let fluid_a_lia_case () =
  let f = FA.lia params_a in
  {
    name = "fluid/a-lia";
    doc =
      "closed-form scenario-A LIA point vs Equilibrium.solve Lia on the \
       equivalent network model";
    run =
      (fun () ->
        let x = Eq.solve (net_a ()) Eq.Lia in
        let n1, n2_ = norms_2class ~n1:params_a.FA.n1 ~c1:params_a.FA.c1
            ~c2:params_a.FA.c2 x
        in
        [ ("norm_type1", n1); ("norm_type2", n2_) ]);
    bands =
      [
        Band.around ~id:"fluid.a.norm_type1" ~metric:"norm_type1" ~rtol:0.15
          ~source:"Eq. 10 closed form" f.FA.norm_type1;
        Band.around ~id:"fluid.a.norm_type2" ~metric:"norm_type2" ~rtol:0.15
          ~source:"Eq. 10 closed form" f.FA.norm_type2;
      ];
  }

let fluid_c_lia_case () =
  let f = FC.lia params_c in
  {
    name = "fluid/c-lia";
    doc =
      "closed-form scenario-C LIA point vs Equilibrium.solve Lia on the \
       equivalent network model";
    run =
      (fun () ->
        let x = Eq.solve (net_c ()) Eq.Lia in
        let nm, ns = norms_2class ~n1:params_c.FC.n1 ~c1:params_c.FC.c1
            ~c2:params_c.FC.c2 x
        in
        [ ("norm_multipath", nm); ("norm_single", ns) ]);
    bands =
      [
        Band.around ~id:"fluid.c.norm_multipath" ~metric:"norm_multipath"
          ~rtol:0.15 ~source:"SIII-C cubic closed form" f.FC.norm_multipath;
        Band.around ~id:"fluid.c.norm_single" ~metric:"norm_single"
          ~rtol:0.15 ~source:"SIII-C cubic closed form" f.FC.norm_single;
      ];
  }

(* --- fault injection --------------------------------------------------- *)

let fault_seed = 1

let fault_cases () =
  [
    {
      name = "fault/link-flap";
      doc =
        "OLIA over two disjoint paths survives a 30 s outage of one of \
         them and recovers the aggregate";
      bands = Faults.link_flap_bands;
      run = (fun () -> Faults.link_flap ~seed:fault_seed);
    };
    {
      name = "fault/burst-loss";
      doc = "Reno rides out a 30% burst-loss episode and recovers";
      bands = Faults.burst_loss_bands;
      run = (fun () -> Faults.burst_loss ~seed:fault_seed);
    };
    {
      name = "fault/reorder";
      doc = "a reordering window must not break reliable delivery";
      bands = Faults.reorder_bands;
      run = (fun () -> Faults.reorder ~seed:fault_seed);
    };
  ]

let cases () =
  [
    a_lia_case ();
    a_olia_case ();
    a_reno_case ();
    b_lia_singlepath_case ();
    b_lia_multipath_case ();
    b_olia_multipath_case ();
    c_lia_case ();
    c_olia_case ();
    c_reno_case ();
    fluid_a_lia_case ();
    fluid_c_lia_case ();
  ]
  @ fault_cases ()

(* --- running and reporting --------------------------------------------- *)

type case_report = {
  case : string;
  doc : string;
  results : Band.result list;
  pass : bool;
}

type report = {
  cases : case_report list;
  pass : bool;
  bands_total : int;
  bands_failed : int;
}

let run_case c =
  let metrics = c.run () in
  let results =
    List.map
      (fun b ->
        let actual =
          match List.assoc_opt b.Band.metric metrics with
          | Some v -> v
          | None -> Float.nan
        in
        Band.check b actual)
      c.bands
  in
  {
    case = c.name;
    doc = c.doc;
    results;
    pass = List.for_all (fun (r : Band.result) -> r.Band.pass) results;
  }

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  if ln = 0 then true
  else
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0

let run_all ?only () =
  let cs = cases () in
  let cs =
    match only with
    | None -> cs
    | Some s -> List.filter (fun c -> contains c.name s) cs
  in
  let reports = List.map run_case cs in
  let bands_total =
    List.fold_left (fun n r -> n + List.length r.results) 0 reports
  in
  let bands_failed =
    List.fold_left
      (fun n r ->
        n
        + List.length
            (List.filter (fun (b : Band.result) -> not b.Band.pass) r.results))
      0 reports
  in
  {
    cases = reports;
    pass = List.for_all (fun (r : case_report) -> r.pass) reports;
    bands_total;
    bands_failed;
  }

let case_report_to_json cr =
  Json.Obj
    [
      ("case", Json.String cr.case);
      ("doc", Json.String cr.doc);
      ("pass", Json.Bool cr.pass);
      ("bands", Json.List (List.map Band.result_to_json cr.results));
    ]

let report_to_json r =
  Json.Obj
    [
      ("pass", Json.Bool r.pass);
      ("cases_total", Json.Int (List.length r.cases));
      ( "cases_failed",
        Json.Int
          (List.length
             (List.filter (fun (c : case_report) -> not c.pass) r.cases)) );
      ("bands_total", Json.Int r.bands_total);
      ("bands_failed", Json.Int r.bands_failed);
      ("cases", Json.List (List.map case_report_to_json r.cases));
    ]
