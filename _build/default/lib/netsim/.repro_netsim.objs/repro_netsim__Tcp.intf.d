lib/netsim/tcp.mli: Packet Repro_cc Sim
