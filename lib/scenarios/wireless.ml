open Repro_netsim

type config = {
  wifi_mbps : float;
  wifi_loss : float;
  wifi_delay_ms : float;
  cell_mbps : float;
  cell_delay_ms : float;
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
}

let default =
  {
    wifi_mbps = 20.;
    wifi_loss = 0.01;
    wifi_delay_ms = 15.;
    cell_mbps = 8.;
    cell_delay_ms = 40.;
    algo = "olia";
    duration = 90.;
    warmup = 20.;
    seed = 1;
  }

type result = {
  wifi_mbps : float;
  cell_mbps : float;
  total_mbps : float;
  wifi_timeouts : int;
}

let run cfg =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let mk_queue mbps name =
    let rate = mbps *. 1e6 in
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:rate
      ~buffer_pkts:(Common.bottleneck_buffer ~rate_bps:rate)
      ~discipline:Queue.Droptail ~name ()
  in
  let wifi_q = mk_queue cfg.wifi_mbps "wifi" in
  let cell_q = mk_queue cfg.cell_mbps "cellular" in
  let lossy = Lossy.create ~sim ~name:"wifi-lossy" ~rng:(Rng.split rng) ~loss_prob:cfg.wifi_loss () in
  let pipe delay_ms = Pipe.create ~sim ~delay:(delay_ms /. 1000.) in
  let wifi_fwd = pipe cfg.wifi_delay_ms and wifi_rev = pipe cfg.wifi_delay_ms in
  let cell_fwd = pipe cfg.cell_delay_ms and cell_rev = pipe cfg.cell_delay_ms in
  let wifi_path =
    {
      Tcp.fwd = [| Queue.hop wifi_q; Lossy.hop lossy; Pipe.hop wifi_fwd |];
      rev = [| Pipe.hop wifi_rev |];
    }
  in
  let cell_path =
    {
      Tcp.fwd = [| Queue.hop cell_q; Pipe.hop cell_fwd |];
      rev = [| Pipe.hop cell_rev |];
    }
  in
  let paths =
    if cfg.algo = "reno" then [| wifi_path |] else [| wifi_path; cell_path |]
  in
  let conn =
    Tcp.create ~sim
      ~cc:(Common.factory_of_name cfg.algo ())
      ~paths ~flow_id:0 ()
  in
  let snap = Array.make 2 0 in
  ignore
    (Sim.schedule_at ~src:"scenario.warmup" sim cfg.warmup (fun () ->
         Array.iteri
           (fun i _ ->
             if i < Tcp.subflow_count conn then
               snap.(i) <- Tcp.subflow_acked conn i)
           snap)
      : Sim.Timer.t);
  Sim.run_until sim cfg.duration;
  let window = cfg.duration -. cfg.warmup in
  let mbps idx =
    if idx < Tcp.subflow_count conn then
      float_of_int ((Tcp.subflow_acked conn idx - snap.(idx)) * 12000)
      /. window /. 1e6
    else 0.
  in
  let wifi = mbps 0 and cell = mbps 1 in
  {
    wifi_mbps = wifi;
    cell_mbps = cell;
    total_mbps = wifi +. cell;
    wifi_timeouts = Tcp.subflow_timeouts conn 0;
  }
