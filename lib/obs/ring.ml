(* Pre-allocated binary trace rings: the storage layer under Trace's
   armed-emission path.

   A ring is two flat pre-allocated lanes — an [int array] at stride 16
   and a [floatarray] at stride 4 — indexed by slot. Claiming a slot
   and filling its words is pure unboxed stores, so writing a record
   allocates nothing on the minor heap; Trace owns the record layout
   (which word means what per tag) and this module only owns the
   circular-buffer mechanics.

   Rings are strictly single-writer: one domain writes, and readers
   (the offline decoder) only run after the writing domains have been
   joined, so no field needs atomic access. *)

type policy = Drop_oldest | Fail_fast

exception Full

type t = {
  shard : int;
  cap : int;
  ints : int array; (* stride 16 *)
  fl : floatarray; (* stride 4 *)
  policy : policy;
  mutable wpos : int; (* next slot to write *)
  mutable count : int; (* retained records, <= cap *)
  mutable dropped : int; (* records overwritten (Drop_oldest) *)
}

let int_stride = 16
let float_stride = 4

let create ~shard ~capacity ~policy =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  {
    shard;
    cap = capacity;
    ints = Array.make (capacity * int_stride) 0;
    fl = Float.Array.make (capacity * float_stride) 0.;
    policy;
    wpos = 0;
    count = 0;
    dropped = 0;
  }

(* The null ring parks unbound domains: capacity 0 and [Fail_fast], so
   an armed emission on a domain that never called [Trace.bind_ring]
   raises [Full] instead of silently corrupting a shared buffer. Built
   directly (create rejects capacity 0) and shared read-only. *)
(* lint: allow R10 -- sentinel shared across domains but never written *)
let null =
  (* lint: allow R2 -- claim on a full Fail_fast ring raises before any store *)
  {
    shard = -1;
    cap = 0;
    ints = [||];
    fl = Float.Array.create 0;
    policy = Fail_fast;
    wpos = 0;
    count = 0;
    dropped = 0;
  }

let shard r = r.shard
let capacity r = r.cap
let length r = r.count
let dropped r = r.dropped

(* Total records ever written; the logical sequence number of the
   oldest retained record is [written r - length r = dropped r]. *)
let written r = r.dropped + r.count

(* Claim the next slot, returning its index. [Drop_oldest] overwrites
   the oldest retained record when full; [Fail_fast] raises [Full]
   (a constant exception: raising allocates nothing). *)
let[@inline] claim r =
  if r.count = r.cap then
    match r.policy with
    | Fail_fast -> raise Full
    | Drop_oldest ->
      let s = r.wpos in
      let w = s + 1 in
      r.wpos <- (if w = r.cap then 0 else w);
      r.dropped <- r.dropped + 1;
      s
  else begin
    let s = r.wpos in
    let w = s + 1 in
    r.wpos <- (if w = r.cap then 0 else w);
    r.count <- r.count + 1;
    s
  end

let[@inline] set_i r s k v = Array.unsafe_set r.ints ((s lsl 4) + k) v
let[@inline] get_i r s k = Array.unsafe_get r.ints ((s lsl 4) + k)
let[@inline] set_f r s k v = Float.Array.unsafe_set r.fl ((s lsl 2) + k) v
let[@inline] get_f r s k = Float.Array.unsafe_get r.fl ((s lsl 2) + k)

(* Slot index of the [i]-th oldest retained record, [0 <= i < count]. *)
let slot_of_index r i =
  if i < 0 || i >= r.count then invalid_arg "Ring.slot_of_index";
  let start = r.wpos - r.count in
  let start = if start < 0 then start + r.cap else start in
  let s = start + i in
  if s >= r.cap then s - r.cap else s

let reset r =
  r.wpos <- 0;
  r.count <- 0;
  r.dropped <- 0
