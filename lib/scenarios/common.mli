(** Shared plumbing for the testbed scenarios: algorithm factories,
    warm-up handling and goodput measurement. *)

type cc_factory = unit -> Repro_cc.Cc_types.t
(** Fresh congestion-controller per connection. *)

val factory_of_name : string -> cc_factory
(** Every {!Repro_cc.Registry} name: ["reno"], ["lia"], ["olia"],
    ["balia"], ["cubic"], ["scalable"], ["wvegas"] and
    ["coupled:<eps>"]. Raises [Invalid_argument] on unknown names. *)

type measured = {
  goodput_pps : float;  (** packets per second over the measurement window *)
  goodput_mbps : float;
  per_subflow_mbps : float array;
      (** the same window split by subflow, indexed like the
          connection's paths *)
}

val measure_conns :
  sim:Repro_netsim.Sim.t ->
  warmup:float ->
  duration:float ->
  Repro_netsim.Tcp.conn list ->
  measured list
(** Run the simulation to [duration], snapshotting each connection's
    delivered packets at [warmup]; goodputs cover
    [\[warmup, duration\]]. *)

val mbps_of_pps : float -> float
(** 1500-byte packets per second → Mbit/s. *)

val observe :
  meter:Repro_obs.Meter.t ->
  sim:Repro_netsim.Sim.t ->
  ?lossy:Repro_netsim.Lossy.t list ->
  ?subflow_goodput_bps:(string * float) list ->
  Repro_netsim.Queue.t list ->
  Repro_obs.Meter.report
(** Finish a run's meter from the simulator's counters and the drop
    split summed over [queues] (plus any [lossy] hops), attaching any
    labelled per-subflow goodputs (see {!subflow_goodput_bps}). Call it
    after the event loop, before building the result record. *)

val subflow_goodput_bps :
  label:string -> subflows:int -> measured list -> (string * float) list
(** [subflow_goodput_bps ~label ~subflows ms] averages
    [per_subflow_mbps] across the class [ms] and returns
    [("<label>_sf<i>", bit/s)] for [i < subflows]. The label set is
    fixed by [subflows] — connections lacking a subflow contribute 0 —
    so metric names stay uniform across parameter points. *)

val paper_rtt : float
(** 0.150 s — the testbed's operating-point RTT (80 ms propagation plus
    ≈70 ms of queueing). *)

val paper_propagation_delay : float
(** 0.080 s round-trip propagation ⇒ 0.040 s each way. *)

val red_for : rate_bps:float -> Repro_netsim.Queue.discipline
(** The paper's RED profile scaled to the link rate. *)

val bottleneck_buffer : rate_bps:float -> int
(** 300 packets for a 10 Mb/s link, proportionally adapted (min 50). *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val split_at : int -> 'a list -> 'a list * 'a list
(** [split_at n l] is [(first n elements, rest)]. *)
