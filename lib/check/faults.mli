(** Fault-recovery conformance scenarios: deterministic runs built
    around {!Repro_netsim.Fault} gates, measured over windows placed
    before, during and after the injected episode. Each scenario
    returns a flat metric list; the matching [_bands] value declares
    what the fluid models predict for those windows. *)

val link_flap : seed:int -> (string * float) list
(** One OLIA connection over two disjoint 8 Mb/s paths; path 0 is down
    over [\[40 s, 70 s)]. Metrics: [pre_mbps], [down_mbps],
    [down_subflow0_mbps], [post_mbps], [reprobed_pkts],
    [fault_dropped]. *)

val link_flap_bands : Band.t list

val burst_loss : seed:int -> (string * float) list
(** One Reno connection through an 8 Mb/s bottleneck with a 30%
    burst-loss episode over [\[40 s, 50 s)]. Metrics: [pre_mbps],
    [burst_mbps], [post_mbps], [fault_dropped]. *)

val burst_loss_bands : Band.t list

val reorder : seed:int -> (string * float) list
(** A finite 2000-packet Reno transfer through a packet-reordering
    window; checks delivery stays exact. Metrics: [completed],
    [delivered], [reordered]. *)

val reorder_bands : Band.t list
