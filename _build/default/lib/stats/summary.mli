(** Running univariate summaries: mean, variance, extrema and confidence
    intervals, computed online with Welford's algorithm. *)

type t
(** Mutable accumulator of observations. *)

val create : unit -> t
(** A fresh accumulator with no observations. *)

val add : t -> float -> unit
(** [add t x] records one observation. *)

val add_seq : t -> float Seq.t -> unit
(** Record every observation of a sequence. *)

val count : t -> int
(** Number of recorded observations. *)

val mean : t -> float
(** Arithmetic mean. Returns [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (n-1 denominator). [nan] if fewer than two
    observations. *)

val stdev : t -> float
(** Sample standard deviation. *)

val min : t -> float
(** Smallest observation; [nan] when empty. *)

val max : t -> float
(** Largest observation; [nan] when empty. *)

val sum : t -> float
(** Sum of all observations. *)

val ci95_halfwidth : t -> float
(** Half-width of the 95% confidence interval on the mean, using the
    Student t quantile for the actual sample size (as in the paper's
    5-repetition measurements). 0 when fewer than two observations. *)

val merge : t -> t -> t
(** [merge a b] is a fresh summary equivalent to observing everything seen
    by [a] and everything seen by [b]. *)

val of_list : float list -> t
(** Summary of a list of observations. *)

val of_array : float array -> t
(** Summary of an array of observations. *)

val pp : Format.formatter -> t -> unit
(** Human-readable ["mean ± ci (n=...)"] rendering. *)

val jain_index : float list -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)]: 1 when all shares are equal,
    [1/n] when one user takes everything. [nan] on an empty list. *)
