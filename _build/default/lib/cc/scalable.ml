let create ?(a = 0.01) ?(b = 0.125) () =
  if a <= 0. then invalid_arg "Scalable.create: a must be > 0";
  if b <= 0. || b >= 1. then invalid_arg "Scalable.create: b must be in (0,1)";
  {
    Cc_types.name = "scalable";
    multipath_initial_ssthresh = None;
    on_ack = (fun ~idx:_ ~acked:_ -> ());
    on_loss = (fun ~idx:_ -> ());
    increase = (fun ~views:_ ~idx:_ -> a);
    loss_decrease =
      (fun ~views ~idx -> b *. views.(idx).Cc_types.cwnd);
  }
