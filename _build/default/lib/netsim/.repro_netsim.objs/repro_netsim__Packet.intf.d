lib/netsim/packet.mli:
