type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create () = { times = Array.make 64 0.; values = Array.make 64 0.; len = 0 }

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0. and values = Array.make (2 * cap) 0. in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let add t ~time v =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg "Timeseries.add: non-monotonic time";
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- v;
  t.len <- t.len + 1

let length t = t.len

let to_array t =
  Array.init t.len (fun i -> (t.times.(i), t.values.(i)))

let last t =
  if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

(* Index of the last sample with time <= x, or -1. *)
let find_le t x =
  let rec bs lo hi =
    (* invariant: times.(lo) <= x < times.(hi), conceptually with
       times.(-1) = -inf and times.(len) = +inf *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if t.times.(mid) <= x then bs mid hi else bs lo mid
  in
  if t.len = 0 || t.times.(0) > x then -1 else bs 0 t.len

let mean_over t ~from ~until =
  if until <= from then nan
  else
    let i0 = find_le t from in
    if i0 < 0 then nan
    else begin
      let acc = ref 0. in
      let tprev = ref from and vprev = ref t.values.(i0) in
      let i = ref (i0 + 1) in
      while !i < t.len && t.times.(!i) < until do
        acc := !acc +. (!vprev *. (t.times.(!i) -. !tprev));
        tprev := t.times.(!i);
        vprev := t.values.(!i);
        incr i
      done;
      acc := !acc +. (!vprev *. (until -. !tprev));
      !acc /. (until -. from)
    end

let resample t ~dt ~from ~until =
  let n = int_of_float (ceil ((until -. from) /. dt)) in
  Array.init (Stdlib.max n 0) (fun k ->
      let x = from +. (float_of_int k *. dt) in
      let i = find_le t x in
      if i < 0 then nan else t.values.(i))

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.times.(i) t.values.(i)
  done;
  !acc
