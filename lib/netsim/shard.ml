module Trace = Repro_obs.Trace
module Profile = Repro_obs.Profile

type msg = {
  arrival : float;
  egress : float;
      (* source-shard clock at the send: the instant the sequential
         run's propagation pipe would have armed the delivery timer.
         Passed to [Sim.schedule_pkt_at_sched] so the destination wheel
         breaks same-instant ties exactly like the sequential run. *)
  src_shard : int;
  src_seq : int;
      (* send index across ALL of the source shard's channels: the
         order in which the egress hops executed on the source domain,
         i.e. the order in which the sequential run would have armed
         these deliveries. The merge tie-break after (arrival, egress). *)
  chan_id : int;
  chan_seq : int;
  kind : Packet.kind;
  pkt_seq : int;
  flow : int;
  subflow : int;
  hop : int;
  route : Packet.hop array;
  ackno : int;
  sack : (int * int) option;
  sent_at : float;
  enqueued_at : float;
  echo : float;
}

type channel = {
  src_shard : int;
  dst_shard : int;
  chan_id : int;
  latency : float;
  src_sim : Sim.t;
  src_counter : int ref;
      (* shared across all channels leaving the same shard; touched
         only by the source domain *)
  (* [seq] is touched only by the source domain (inside its window);
     [inbox] is the cross-domain hand-off and is the only field both
     sides touch, always under [lock]. Messages are pushed in send
     order, so the reversed list is the channel's FIFO. *)
  mutable seq : int;
  lock : Mutex.t;
  mutable inbox : msg list;
}

type t = {
  sims : Sim.t array;
  lookahead : float;
  counters : int ref array;  (* per-shard send counters, one per source *)
  mutable channels : channel list;  (* reverse registration order *)
}

let create ~sims ~lookahead =
  let n = Array.length sims in
  if n = 0 then invalid_arg "Shard.create: no shards";
  if n > 1 && not (Float.is_finite lookahead && lookahead > 0.) then
    invalid_arg "Shard.create: lookahead must be finite and positive";
  { sims; lookahead; counters = Array.init n (fun _ -> ref 0); channels = [] }

let shard_count t = Array.length t.sims
let sim t i = t.sims.(i)
let lookahead t = t.lookahead

let open_channel t ~src ~dst ?latency () =
  let n = Array.length t.sims in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Shard.open_channel: shard out of range";
  if src = dst then invalid_arg "Shard.open_channel: src = dst";
  let latency = match latency with Some l -> l | None -> t.lookahead in
  if not (Float.is_finite latency && latency >= t.lookahead) then
    invalid_arg
      (Printf.sprintf
         "Shard.open_channel: latency %g below the lookahead %g would \
          deliver inside the current window"
         latency t.lookahead);
  let ch =
    {
      src_shard = src;
      dst_shard = dst;
      chan_id = List.length t.channels;
      latency;
      src_sim = t.sims.(src);
      src_counter = t.counters.(src);
      seq = 0;
      lock = Mutex.create ();
      inbox = [];
    }
  in
  t.channels <- ch :: t.channels;
  ch

(* The egress hop runs on the source domain, inside its window: it
   snapshots the packet into an immutable message, recycles the packet
   into the source domain's pool, and parks the message in the inbox.
   The destination reads the packet's payload only through the message,
   never the (pooled, domain-local) packet record itself. *)
let send ch (p : Packet.t) =
  let egress = Sim.now ch.src_sim in
  let src_seq = !(ch.src_counter) in
  ch.src_counter := src_seq + 1;
  let m =
    {
      arrival = egress +. ch.latency;
      egress;
      src_shard = ch.src_shard;
      src_seq;
      chan_id = ch.chan_id;
      chan_seq = ch.seq;
      kind = p.Packet.kind;
      pkt_seq = p.Packet.seq;
      flow = p.Packet.flow;
      subflow = p.Packet.subflow;
      hop = p.Packet.hop;
      route = p.Packet.route;
      ackno = p.Packet.ackno;
      sack = p.Packet.sack;
      sent_at = p.Packet.times.Packet.sent_at;
      enqueued_at = p.Packet.times.Packet.enqueued_at;
      echo = p.Packet.times.Packet.echo;
    }
  in
  ch.seq <- ch.seq + 1;
  Packet.free p;
  Mutex.lock ch.lock;
  ch.inbox <- m :: ch.inbox;
  Mutex.unlock ch.lock

let egress ch : Packet.hop = fun p -> send ch p
let sent_count ch = ch.seq

let compare_msg a b =
  let c = Float.compare a.arrival b.arrival in
  if c <> 0 then c
  else
    let c = Float.compare a.egress b.egress in
    if c <> 0 then c
    else
      let c = Int.compare a.src_shard b.src_shard in
      if c <> 0 then c else Int.compare a.src_seq b.src_seq

let merge batches = List.sort compare_msg (List.concat batches)

let take_inbox ch =
  Mutex.lock ch.lock;
  let l = ch.inbox in
  ch.inbox <- [];
  Mutex.unlock ch.lock;
  List.rev l

(* Re-materialize one message on the destination shard: a fresh packet
   from this domain's pool, positioned mid-route, delivered at its
   arrival time. The max with [now] absorbs the one-ulp rounding slack
   between [s +. latency] (computed on the source) and the window
   boundary [w *. lookahead] (computed locally). *)
let deliver sim (m : msg) =
  let p =
    match m.kind with
    | Packet.Data ->
      Packet.data ~flow:m.flow ~subflow:m.subflow ~seq:m.pkt_seq
        ~sent_at:m.sent_at ~route:m.route
    | Packet.Ack ->
      Packet.ack ~flow:m.flow ~subflow:m.subflow ~ackno:m.ackno ~echo:m.echo
        ~sack:m.sack ~route:m.route ~sent_at:m.sent_at
  in
  p.Packet.hop <- m.hop;
  p.Packet.times.Packet.enqueued_at <- m.enqueued_at;
  let at = Stdlib.max m.arrival (Sim.now sim) in
  ignore
    (Sim.schedule_pkt_at_sched ~src:"shard.ingress" sim ~sched:m.egress at
       Packet.forward p
      : Sim.Timer.t)

(* A sense-reversing barrier on a mutex + condition. Two waits per
   window: one after every shard has drained (so nobody starts filling
   inboxes for window w while another shard is still taking window
   w-1's batch), one after every shard has run its window (so the next
   drain sees all of window w's sends). *)
module Barrier = struct
  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    parties : int;
    mutable count : int;
    mutable phase : int;
  }

  let create parties =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      parties;
      count = 0;
      phase = 0;
    }

  let wait b =
    Mutex.lock b.lock;
    let phase = b.phase in
    b.count <- b.count + 1;
    if b.count = b.parties then begin
      b.count <- 0;
      b.phase <- phase + 1;
      Condition.broadcast b.cond
    end
    else
      while b.phase = phase do
        Condition.wait b.cond b.lock
      done;
    Mutex.unlock b.lock
end

let windows ~lookahead ~horizon =
  if horizon <= 0. then 0
  else Stdlib.max 1 (int_of_float (ceil ((horizon /. lookahead) -. 1e-9)))

let drain ingress sim =
  match ingress with
  | [] -> ()
  | _ ->
    let batches = List.map take_inbox ingress in
    List.iter (deliver sim) (merge batches)

let run_windows ~pool t ~horizon =
  if not (Float.is_finite horizon && horizon >= 0.) then
    invalid_arg "Shard.run_windows: horizon must be finite and non-negative";
  let n = Array.length t.sims in
  (* Tracing and profiling are per-worker: each domain binds its own
     trace ring (when rings are armed) and tags its profile table with
     its shard id, so the window loop runs armed with no shared sink.
     The sink mode (a process-global callback) stays single-domain
     only; sharded runs trace through rings. *)
  if n = 1 then begin
    (* one shard: no channels can exist (open_channel rejects src = dst),
       so the window loop degenerates to chained run_until calls — run
       the single call directly on the calling domain. Chained and
       single run_until are bitwise identical, which is what the
       shards=1 ≡ sequential golden pins down. *)
    if Trace.rings_armed () then Trace.bind_ring ~shard:0;
    Profile.bind ~shard:0;
    Sim.run_until t.sims.(0) horizon
  end
  else begin
    (* per-destination ingress lists, in registration order so the
       pre-merge concatenation order is deterministic (the sort makes it
       immaterial, but determinism should not hang on that) *)
    let ingress = Array.make n [] in
    List.iter
      (fun ch -> ingress.(ch.dst_shard) <- ch :: ingress.(ch.dst_shard))
      t.channels;
    let nw = windows ~lookahead:t.lookahead ~horizon in
    let barrier = Barrier.create n in
    let barrier_wait =
      if Profile.enabled () then fun () ->
        Profile.dispatch ~src:"shard.barrier" (fun () -> Barrier.wait barrier)
      else fun () -> Barrier.wait barrier
    in
    let worker i () =
      if Trace.rings_armed () then Trace.bind_ring ~shard:i;
      Profile.bind ~shard:i;
      let sim = t.sims.(i) in
      let ing = ingress.(i) in
      for w = 1 to nw do
        drain ing sim;
        barrier_wait ();
        Sim.run_until sim
          (Stdlib.min horizon (float_of_int w *. t.lookahead));
        barrier_wait ()
      done
    in
    pool (Array.init n (fun i -> worker i))
  end
