lib/cc/cubic.ml: Array Cc_types Stdlib
