module Summary = Repro_stats.Summary
module Json = Repro_stats.Json

type axis = { key : string; values : Spec.value list }

let range ~like ~key lo hi step =
  let fail msg = invalid_arg (Printf.sprintf "Sweep.axis %s: %s" key msg) in
  match like with
  | Spec.Int _ ->
    let p s =
      match int_of_string_opt s with
      | Some i -> i
      | None -> fail (Printf.sprintf "bad int %S" s)
    in
    let lo = p lo and hi = p hi and step = p step in
    if step <= 0 then fail "step must be positive";
    let rec go v acc =
      if v > hi then List.rev acc else go (v + step) (Spec.Int v :: acc)
    in
    go lo []
  | Spec.Float _ ->
    let p s =
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail (Printf.sprintf "bad float %S" s)
    in
    let lo = p lo and hi = p hi and step = p step in
    if step <= 0. then fail "step must be positive";
    let n = int_of_float (floor (((hi -. lo) /. step) +. 1e-9)) in
    if n < 0 then []
    else List.init (n + 1) (fun i -> Spec.Float (lo +. (float_of_int i *. step)))
  | _ -> fail "ranges apply to int/float parameters only"

let axis spec ~key vspec =
  let p = Spec.param spec key in
  let numeric =
    match p.Spec.default with
    | Spec.Int _ | Spec.Float _ -> true
    | _ -> false
  in
  let values =
    if numeric && String.contains vspec ':' then
      match String.split_on_char ':' vspec with
      | [ lo; hi ] -> range ~like:p.Spec.default ~key lo hi "1"
      | [ lo; hi; step ] -> range ~like:p.Spec.default ~key lo hi step
      | _ ->
        invalid_arg
          (Printf.sprintf "Sweep.axis %s: expected lo:hi[:step], got %S" key
             vspec)
    else
      List.map
        (Spec.parse_value ~like:p.Spec.default)
        (String.split_on_char ',' vspec)
  in
  if values = [] then
    invalid_arg (Printf.sprintf "Sweep.axis %s: empty axis %S" key vspec);
  { key; values }

let axis_of_assign spec s =
  match String.index_opt s '=' with
  | None ->
    invalid_arg (Printf.sprintf "Sweep.axis: expected key=values, got %S" s)
  | Some i ->
    let key = String.sub s 0 i in
    let vspec = String.sub s (i + 1) (String.length s - i - 1) in
    axis spec ~key vspec

let seed_axis n =
  if n < 1 then invalid_arg "Sweep.seed_axis: need at least one seed";
  { key = "seed"; values = List.init n (fun i -> Spec.Int (i + 1)) }

let points spec ?(fixed = []) axes =
  Spec.validate spec fixed;
  List.iter
    (fun ax ->
      ignore (Spec.param spec ax.key);
      Spec.validate spec (List.map (fun v -> (ax.key, v)) ax.values))
    axes;
  let rec cross = function
    | [] -> [ [] ]
    | ax :: rest ->
      let tails = cross rest in
      List.concat_map
        (fun v -> List.map (fun tail -> (ax.key, v) :: tail) tails)
        ax.values
  in
  List.map (fun b -> b @ fixed) (cross axes)

type point = { bindings : Spec.bindings; outcome : Outcome.t }

let run_seq (module Sc : Scenario_intf.S) pts =
  List.map (fun bindings -> { bindings; outcome = Sc.run bindings }) pts

(* The domain-pool plumbing, shared by the sweep engine and the sharded
   simulation runner (Repro_netsim.Shard takes it as its [pool]
   argument). One thunk per worker; the caller's domain runs thunk 0 so
   [n] thunks use [n - 1] spawned domains. Every domain is joined before
   returning — the join gives the caller a happens-before edge over all
   worker writes — and the first exception of any worker is re-raised
   after the pool has drained. *)
let pool thunks =
  let n = Array.length thunks in
  if n = 0 then ()
  else if n = 1 then thunks.(0) ()
  else begin
    let spawned =
      List.init (n - 1) (fun i -> Domain.spawn thunks.(i + 1))
    in
    let first_exn = ref None in
    let record e = if !first_exn = None then first_exn := Some e in
    (try thunks.(0) () with e -> record e);
    List.iter (fun d -> try Domain.join d with e -> record e) spawned;
    match !first_exn with Some e -> raise e | None -> ()
  end

let run ?domains (module Sc : Scenario_intf.S) pts_list =
  let pts = Array.of_list pts_list in
  let n = Array.length pts in
  let requested =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  let workers = Stdlib.max 1 (Stdlib.min requested n) in
  if workers <= 1 then run_seq (module Sc) pts_list
  else begin
    (* The variant trace sink is process-global, so a sink-traced
       multi-domain sweep would interleave events from unrelated runs
       into one stream — refuse rather than produce a mixed trace.
       Ring-mode tracing is per-worker (each domain binds its own
       ring), so it runs; the decoder attributes records to worker
       rings, and a per-point trace is still best taken from a single
       `olia_sim run`. *)
    if Repro_obs.Trace.sink_armed () then
      invalid_arg
        "Sweep.run: a variant trace sink is armed and is process-global; \
         close it (or unset OLIA_TRACE) before a parallel sweep, arm trace \
         rings instead, or trace a single `olia_sim run`";
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker w () =
      if Repro_obs.Trace.rings_armed () then Repro_obs.Trace.bind_ring ~shard:w;
      Repro_obs.Profile.bind ~shard:w;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (Sc.run pts.(i));
          loop ()
        end
      in
      loop ()
    in
    pool (Array.init workers (fun w -> worker w));
    Array.to_list
      (Array.mapi
         (fun i o ->
           match o with
           | Some outcome -> { bindings = pts.(i); outcome }
           | None -> assert false)
         results)
  end

type agg = {
  group : Spec.bindings;
  n : int;
  stats : (string * (float * float)) list;
}

type agg_table = { over : string; rows : agg list }

let aggregate ?(over = "seed") pts =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let group = List.filter (fun (k, _) -> k <> over) p.bindings in
      match Hashtbl.find_opt tbl group with
      | Some l -> l := p.outcome :: !l
      | None ->
        Hashtbl.add tbl group (ref [ p.outcome ]);
        order := group :: !order)
    pts;
  let rows =
    List.rev_map
      (fun group ->
        let outcomes = List.rev !(Hashtbl.find tbl group) in
        let names =
          match outcomes with
          | o :: _ -> Outcome.metric_names o
          | [] -> []
        in
        let stats =
          List.map
            (fun name ->
              let s =
                Summary.of_list
                  (List.map (fun o -> Outcome.metric o name) outcomes)
              in
              let sd = if Summary.count s < 2 then 0. else Summary.stdev s in
              (name, (Summary.mean s, sd)))
            names
        in
        { group; n = List.length outcomes; stats })
      !order
  in
  { over; rows }

let params_json spec ?drop bindings =
  match Spec.to_json spec bindings with
  | Json.Obj fields ->
    Json.Obj
      (match drop with
       | None -> fields
       | Some key -> List.filter (fun (k, _) -> k <> key) fields)
  | j -> j

let to_json ~spec ?aggregated pts =
  let points_json =
    List.map
      (fun p ->
        Json.Obj
          [
            ("params", params_json spec p.bindings);
            ("outcome", Outcome.to_json p.outcome);
          ])
      pts
  in
  let base =
    [
      ("scenario", Json.String spec.Spec.name);
      ("points", Json.List points_json);
    ]
  in
  let agg_fields =
    match aggregated with
    | None -> []
    | Some t ->
      let rows =
        List.map
          (fun a ->
            Json.Obj
              [
                ("params", params_json spec ~drop:t.over a.group);
                ("n", Json.Int a.n);
                ( "metrics",
                  Json.Obj
                    (List.map
                       (fun (name, (mean, sd)) ->
                         ( name,
                           Json.Obj
                             [
                               ("mean", Json.Float mean);
                               ("stddev", Json.Float sd);
                             ] ))
                       a.stats) );
              ])
          t.rows
      in
      [
        ( "aggregate",
          Json.Obj
            [ ("over", Json.String t.over); ("rows", Json.List rows) ] );
      ]
  in
  Json.Obj (base @ agg_fields)

let write_json ~path ~spec ?aggregated pts =
  Json.write ~path (to_json ~spec ?aggregated pts)

let fmt_float = Printf.sprintf "%.6g"

let write_csv ~path ~spec pts =
  let pkeys = List.map (fun p -> p.Spec.key) spec.Spec.params in
  let metrics =
    match pts with
    | [] -> []
    | p :: _ -> Outcome.metric_names p.outcome
  in
  let header = pkeys @ metrics in
  let rows =
    List.map
      (fun p ->
        List.map
          (fun k -> Spec.value_to_string (Spec.get spec p.bindings k))
          pkeys
        @ List.map (fun m -> fmt_float (Outcome.metric p.outcome m)) metrics)
      pts
  in
  Repro_stats.Csv.write_rows ~path ~header rows

let write_agg_csv ~path ~spec (t : agg_table) =
  let pkeys =
    List.filter
      (fun k -> k <> t.over)
      (List.map (fun p -> p.Spec.key) spec.Spec.params)
  in
  let metrics =
    match t.rows with
    | [] -> []
    | a :: _ -> List.map fst a.stats
  in
  let header =
    pkeys @ [ "n" ]
    @ List.concat_map (fun m -> [ m ^ " mean"; m ^ " stddev" ]) metrics
  in
  let rows =
    List.map
      (fun a ->
        List.map (fun k -> Spec.value_to_string (Spec.get spec a.group k)) pkeys
        @ [ string_of_int a.n ]
        @ List.concat_map
            (fun m ->
              let mean, sd = List.assoc m a.stats in
              [ fmt_float mean; fmt_float sd ])
            metrics)
      t.rows
  in
  Repro_stats.Csv.write_rows ~path ~header rows
