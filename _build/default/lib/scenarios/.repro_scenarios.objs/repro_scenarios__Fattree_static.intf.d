lib/scenarios/fattree_static.mli:
