(* Tests for the extension features: CUBIC and Scalable TCP (paper
   Remark 3), the LIA fluid ODE, delayed ACKs, CBR background traffic and
   the path manager (paper §VII future-work items). *)

open Mptcp_repro.Netsim
open Mptcp_repro.Cc

(* Timer handles are discarded in tests: scheduling here is fire-and-forget. *)
module Sim = struct
  include Sim

  let schedule_at ?src sim t f = ignore (Sim.schedule_at ?src sim t f : Sim.Timer.t)
  let schedule_after ?src sim d f = ignore (Sim.schedule_after ?src sim d f : Sim.Timer.t)
end

let check_close eps = Alcotest.(check (float eps))
let view cwnd rtt = { Types.cwnd; rtt }

(* --- Scalable TCP ------------------------------------------------------ *)

let test_scalable_constant_increase () =
  let cc = Scalable.create () in
  let views = [| view 10. 0.1 |] in
  check_close 1e-12 "a" 0.01 (cc.Types.increase ~views ~idx:0);
  let views = [| view 1000. 0.1 |] in
  check_close 1e-12 "a at any window" 0.01 (cc.Types.increase ~views ~idx:0)

let test_scalable_decrease () =
  let cc = Scalable.create () in
  let views = [| view 80. 0.1 |] in
  check_close 1e-12 "b·w" 10. (cc.Types.loss_decrease ~views ~idx:0)

let test_scalable_custom_params () =
  let cc = Scalable.create ~a:0.02 ~b:0.25 () in
  let views = [| view 40. 0.1 |] in
  check_close 1e-12 "a" 0.02 (cc.Types.increase ~views ~idx:0);
  check_close 1e-12 "b·w" 10. (cc.Types.loss_decrease ~views ~idx:0)

let test_scalable_rejects_bad_params () =
  Alcotest.check_raises "a" (Invalid_argument "Scalable.create: a must be > 0")
    (fun () -> ignore (Scalable.create ~a:0. ()));
  Alcotest.check_raises "b"
    (Invalid_argument "Scalable.create: b must be in (0,1)") (fun () ->
      ignore (Scalable.create ~b:1. ()))

let test_scalable_rate_rtt_independent () =
  (* MIMD equilibrium: the per-RTT growth is a fraction of the window, so
     the sawtooth mean window depends only on the loss rate, not the RTT.
     Check the window recovers a loss in a fixed number of ACKs. *)
  let cc = Scalable.create () in
  let recover_acks rtt =
    let w = ref 80. in
    let dec = cc.Types.loss_decrease ~views:[| view !w rtt |] ~idx:0 in
    w := !w -. dec;
    let n = ref 0 in
    while !w < 80. do
      w := !w +. cc.Types.increase ~views:[| view !w rtt |] ~idx:0;
      incr n
    done;
    !n
  in
  Alcotest.(check int) "same ACK count at any rtt" (recover_acks 0.01)
    (recover_acks 1.)

(* --- CUBIC -------------------------------------------------------------- *)

let test_cubic_reno_before_first_loss () =
  let cc = Cubic.create () in
  let views = [| view 10. 0.1 |] in
  check_close 1e-12 "1/w" 0.1 (cc.Types.increase ~views ~idx:0)

let test_cubic_decrease_is_beta () =
  let cc = Cubic.create () in
  let views = [| view 100. 0.1 |] in
  check_close 1e-9 "0.3·w" 30. (cc.Types.loss_decrease ~views ~idx:0)

let test_cubic_concave_recovery_toward_wmax () =
  (* after a loss at W_max = 100 the window climbs back towards 100,
     fast at first, flat near W_max *)
  let cc = Cubic.create () in
  let w = ref 100. in
  let dec = cc.Types.loss_decrease ~views:[| view !w 0.1 |] ~idx:0 in
  cc.Types.on_loss ~idx:0;
  w := !w -. dec;
  let early_gain = ref 0. and late_gain = ref 0. in
  for i = 1 to 4000 do
    let inc = cc.Types.increase ~views:[| view !w 0.1 |] ~idx:0 in
    w := !w +. inc;
    if i <= 200 then early_gain := !early_gain +. inc
    else if !w < 99. then late_gain := inc
  done;
  Alcotest.(check bool) "recovers most of the drop" true (!w > 95.);
  Alcotest.(check bool)
    (Printf.sprintf "early growth %.2f dominates late %.4f" !early_gain
       !late_gain)
    true
    (!early_gain > 10. *. !late_gain)

let test_cubic_rejects_bad_params () =
  Alcotest.check_raises "c" (Invalid_argument "Cubic.create: c must be > 0")
    (fun () -> ignore (Cubic.create ~c:0. ()));
  Alcotest.check_raises "beta"
    (Invalid_argument "Cubic.create: beta must be in (0,1)") (fun () ->
      ignore (Cubic.create ~beta:0. ()))

let test_cubic_and_scalable_in_registry () =
  Alcotest.(check string) "cubic" "cubic" (Registry.create "cubic").Types.name;
  Alcotest.(check string) "scalable" "scalable"
    (Registry.create "scalable").Types.name

let test_cubic_saturates_link () =
  (* a CUBIC flow should fill a clean 10 Mb/s bottleneck at least as well
     as Reno *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let q =
    Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:300
      ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:10.)) ()
  in
  let fwd = Pipe.create ~sim ~delay:0.04 and rv = Pipe.create ~sim ~delay:0.04 in
  let conn =
    Tcp.create ~sim ~cc:(Cubic.create ())
      ~paths:
        [| { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |]; rev = [| Pipe.hop rv |] } |]
      ~flow_id:0 ()
  in
  Sim.run_until sim 60.;
  let mbps = float_of_int (Tcp.total_acked conn * 12000) /. 60. /. 1e6 in
  Alcotest.(check bool) (Printf.sprintf "%.1f Mb/s > 7" mbps) true (mbps > 7.)

(* --- LIA fluid ODE ------------------------------------------------------- *)

module F = Mptcp_repro.Fluid

let two_link_net () =
  {
    F.Network_model.links =
      [| F.Network_model.link 100.; F.Network_model.link 100. |];
    users =
      [|
        {
          F.Network_model.routes =
            [|
              { F.Network_model.links = [| 0 |]; rtt = 0.1 };
              { F.Network_model.links = [| 1 |]; rtt = 0.1 };
            |];
        };
        {
          F.Network_model.routes =
            [| { F.Network_model.links = [| 1 |]; rtt = 0.1 } |];
        };
      |];
  }

let test_lia_ode_reaches_eq2_fixed_point () =
  let net = two_link_net () in
  let x0 = [| [| 10.; 10. |]; [| 10. |] |] in
  let x =
    F.Lia_ode.integrate
      ~options:{ F.Lia_ode.default_options with t_end = 600. }
      net ~x0
  in
  let predicted = F.Lia_ode.fixed_point_prediction net x in
  (* the integrated rates satisfy Eq. 2 given their own induced losses *)
  Array.iteri
    (fun u xu ->
      Array.iteri
        (fun r xr ->
          let p = predicted.(u).(r) in
          Alcotest.(check bool)
            (Printf.sprintf "user %d route %d: %.2f vs %.2f" u r xr p)
            true
            (abs_float (xr -. p) < 0.15 *. (abs_float p +. 1.)))
        xu)
    x

let test_lia_ode_keeps_congested_path () =
  (* LIA's fixed point keeps meaningful traffic on the worse path, unlike
     OLIA's (the root of problems P1/P2) *)
  let net =
    {
      (two_link_net ()) with
      F.Network_model.links =
        [| F.Network_model.link 100.; F.Network_model.link 30. |];
    }
  in
  let x0 = [| [| 5.; 5. |]; [| 5. |] |] in
  let lia =
    F.Lia_ode.integrate
      ~options:{ F.Lia_ode.default_options with t_end = 600. }
      net ~x0
  in
  let olia =
    (F.Olia_ode.integrate
       ~options:{ F.Olia_ode.default_options with t_end = 600. }
       net ~x0:[| [| 5.; 5. |]; [| 5. |] |])
      .F.Olia_ode.rates
  in
  Alcotest.(check bool)
    (Printf.sprintf "LIA x2 %.2f >> OLIA x2 %.2f" lia.(0).(1) olia.(0).(1))
    true
    (lia.(0).(1) > 4. *. olia.(0).(1))

let test_lia_ode_derivative_zero_at_fixed_point () =
  (* construct the analytic scenario-C-like fixed point and check the
     derivative is small there *)
  let net = two_link_net () in
  let x0 = [| [| 20.; 20. |]; [| 20. |] |] in
  let x =
    F.Lia_ode.integrate
      ~options:{ F.Lia_ode.default_options with t_end = 600. }
      net ~x0
  in
  let dx = F.Lia_ode.derivative net x in
  Array.iteri
    (fun u du ->
      Array.iteri
        (fun r d ->
          Alcotest.(check bool)
            (Printf.sprintf "du[%d][%d] = %.4f small" u r d)
            true
            (abs_float d < 0.05 *. (x.(u).(r) +. 1.)))
        du)
    dx

(* --- CBR ------------------------------------------------------------------ *)

let test_cbr_rate () =
  let sim = Sim.create () in
  let count = ref 0 in
  let sink (_ : Packet.t) = incr count in
  let cbr =
    Cbr.create ~sim ~rate_bps:1.2e6 ~route:[| sink |] ~stop:10. ~flow_id:99 ()
  in
  Sim.run_until sim 20.;
  (* 1.2 Mb/s of 1500-byte packets = 100 pkt/s for 10 s (±1 for floating
     point accumulation at the boundary) *)
  Alcotest.(check bool) "sent" true (abs (Cbr.packets_sent cbr - 1000) <= 1);
  Alcotest.(check int) "delivered" (Cbr.packets_sent cbr) !count

let test_cbr_start_stop () =
  let sim = Sim.create () in
  let cbr =
    Cbr.create ~sim ~rate_bps:1.2e6 ~route:[| Cbr.blackhole |] ~start:5.
      ~stop:6. ~flow_id:0 ()
  in
  Sim.run_until sim 4.;
  Alcotest.(check int) "nothing early" 0 (Cbr.packets_sent cbr);
  Sim.run_until sim 20.;
  Alcotest.(check bool) "one second's worth" true
    (abs (Cbr.packets_sent cbr - 100) <= 1)

let test_cbr_steals_capacity_from_tcp () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let q =
    Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:300
      ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:10.)) ()
  in
  let fwd = Pipe.create ~sim ~delay:0.04 and rv = Pipe.create ~sim ~delay:0.04 in
  let conn =
    Tcp.create ~sim ~cc:(Reno.create ())
      ~paths:
        [| { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |]; rev = [| Pipe.hop rv |] } |]
      ~flow_id:0 ()
  in
  (* 5 Mb/s of background noise through the same bottleneck *)
  let _ =
    Cbr.create ~sim ~rate_bps:5e6
      ~route:[| Queue.hop q; Cbr.blackhole |]
      ~flow_id:1 ()
  in
  Sim.run_until sim 60.;
  let mbps = float_of_int (Tcp.total_acked conn * 12000) /. 60. /. 1e6 in
  Alcotest.(check bool) (Printf.sprintf "TCP squeezed to %.1f" mbps) true
    (mbps < 7.)

(* --- delayed ACKs ----------------------------------------------------------- *)

let delack_rig ~delayed_ack ~seed =
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let q =
    Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:300
      ~discipline:Queue.Droptail ()
  in
  let ack_count = ref 0 in
  let count_acks (p : Packet.t) =
    (match p.Packet.kind with Packet.Ack -> incr ack_count | Packet.Data -> ());
    Packet.forward p
  in
  let fwd = Pipe.create ~sim ~delay:0.04 and rv = Pipe.create ~sim ~delay:0.04 in
  let conn =
    Tcp.create ~sim ~cc:(Reno.create ()) ~delayed_ack
      ~paths:
        [|
          {
            Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |];
            rev = [| count_acks; Pipe.hop rv |];
          };
        |]
      ~size_pkts:400 ~flow_id:0 ()
  in
  Sim.run_until sim 60.;
  (conn, !ack_count)

let test_delayed_ack_halves_ack_count () =
  let conn1, acks1 = delack_rig ~delayed_ack:false ~seed:3 in
  let conn2, acks2 = delack_rig ~delayed_ack:true ~seed:3 in
  Alcotest.(check bool) "both complete" true
    (Tcp.completed conn1 && Tcp.completed conn2);
  Alcotest.(check bool)
    (Printf.sprintf "acks %d < 0.7 x %d" acks2 acks1)
    true
    (float_of_int acks2 < 0.7 *. float_of_int acks1)

let test_delayed_ack_still_completes_under_loss () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:4 in
  let q =
    Queue.create ~sim ~rng ~rate_bps:2e6 ~buffer_pkts:15
      ~discipline:Queue.Droptail ()
  in
  let fwd = Pipe.create ~sim ~delay:0.04 and rv = Pipe.create ~sim ~delay:0.04 in
  let conn =
    Tcp.create ~sim ~cc:(Reno.create ()) ~delayed_ack:true
      ~paths:
        [| { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |]; rev = [| Pipe.hop rv |] } |]
      ~size_pkts:600 ~flow_id:0 ()
  in
  Sim.run_until sim 120.;
  Alcotest.(check bool) "completed" true (Tcp.completed conn);
  Alcotest.(check int) "exact delivery" 600 (Tcp.total_acked conn)

(* --- subflow enable/disable and the path manager ----------------------------- *)

let two_queue_conn ~sim ~rng ~cc ~rate2 =
  let mk rate =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:rate ~buffer_pkts:300
      ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:(rate /. 1e6))) ()
  in
  let q1 = mk 10e6 and q2 = mk rate2 in
  let fwd = Pipe.create ~sim ~delay:0.04 and rv = Pipe.create ~sim ~delay:0.04 in
  let rev = [| Pipe.hop rv |] in
  let conn =
    Tcp.create ~sim ~cc
      ~paths:
        [|
          { Tcp.fwd = [| Queue.hop q1; Pipe.hop fwd |]; rev };
          { Tcp.fwd = [| Queue.hop q2; Pipe.hop fwd |]; rev };
        |]
      ~flow_id:0 ()
  in
  (conn, q1, q2)

let test_disable_stops_new_data () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:8 in
  let conn, _, _ = two_queue_conn ~sim ~rng ~cc:(Olia.create ()) ~rate2:10e6 in
  Sim.run_until sim 10.;
  Tcp.set_subflow_enabled conn 1 false;
  Alcotest.(check bool) "reported disabled" false (Tcp.subflow_enabled conn 1);
  let acked_at_disable = Tcp.subflow_acked conn 1 in
  Sim.run_until sim 30.;
  (* the flight drains but nothing new goes out: only a few more packets *)
  Alcotest.(check bool) "path quiesced" true
    (Tcp.subflow_acked conn 1 - acked_at_disable < 50);
  Tcp.set_subflow_enabled conn 1 true;
  Sim.run_until sim 50.;
  Alcotest.(check bool) "path resumed" true
    (Tcp.subflow_acked conn 1 - acked_at_disable > 100)

let congest_queue ~sim ~rng q n =
  let fwd = Pipe.create ~sim ~delay:0.04 and rv = Pipe.create ~sim ~delay:0.04 in
  List.init n (fun i ->
      Tcp.create ~sim ~cc:(Reno.create ())
        ~paths:
          [| { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |]; rev = [| Pipe.hop rv |] } |]
        ~start:(Rng.uniform rng 1.) ~flow_id:(1000 + i) ())

let test_path_manager_discards_bad_path () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:9 in
  (* second path through a slow queue crowded by six TCP flows *)
  let conn, _, q2 = two_queue_conn ~sim ~rng ~cc:(Olia.create ()) ~rate2:1e6 in
  let _ = congest_queue ~sim ~rng q2 6 in
  (* attach after the start-up transients have settled *)
  let pm = ref None in
  Sim.schedule_at sim 20. (fun () ->
      pm :=
        Some
          (Path_manager.attach ~sim
             ~policy:{ Path_manager.default_policy with reprobe_period = 1e6 }
             conn));
  Sim.run_until sim 120.;
  let pm = Option.get !pm in
  Alcotest.(check bool) "bad path discarded" true (Path_manager.discards pm >= 1);
  Alcotest.(check bool) "path 1 disabled" false (Tcp.subflow_enabled conn 1);
  Alcotest.(check bool) "good path kept" true (Tcp.subflow_enabled conn 0)

let test_path_manager_reprobes () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:10 in
  let conn, _, q2 = two_queue_conn ~sim ~rng ~cc:(Olia.create ()) ~rate2:1e6 in
  let _ = congest_queue ~sim ~rng q2 6 in
  let pm =
    Path_manager.attach ~sim
      ~policy:{ Path_manager.default_policy with reprobe_period = 10. }
      conn
  in
  Sim.run_until sim 120.;
  Alcotest.(check bool) "reprobed at least once" true
    (Path_manager.reprobes pm >= 1)

let test_path_manager_keeps_min_active () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:11 in
  (* both paths horrid: the manager must never disable the last one *)
  let mk rate =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:rate ~buffer_pkts:20
      ~discipline:Queue.Droptail ()
  in
  let q1 = mk 2e5 and q2 = mk 2e5 in
  let fwd = Pipe.create ~sim ~delay:0.04 and rv = Pipe.create ~sim ~delay:0.04 in
  let rev = [| Pipe.hop rv |] in
  let conn =
    Tcp.create ~sim ~cc:(Olia.create ())
      ~paths:
        [|
          { Tcp.fwd = [| Queue.hop q1; Pipe.hop fwd |]; rev };
          { Tcp.fwd = [| Queue.hop q2; Pipe.hop fwd |]; rev };
        |]
      ~flow_id:0 ()
  in
  let _ = Path_manager.attach ~sim ~policy:Path_manager.default_policy conn in
  Sim.run_until sim 60.;
  Alcotest.(check bool) "at least one active" true
    (Tcp.subflow_enabled conn 0 || Tcp.subflow_enabled conn 1)

let suite =
  [
    Alcotest.test_case "scalable: constant per-ACK increase" `Quick
      test_scalable_constant_increase;
    Alcotest.test_case "scalable: 1/8 decrease" `Quick test_scalable_decrease;
    Alcotest.test_case "scalable: custom params" `Quick
      test_scalable_custom_params;
    Alcotest.test_case "scalable: rejects bad params" `Quick
      test_scalable_rejects_bad_params;
    Alcotest.test_case "scalable: rtt-independent recovery" `Quick
      test_scalable_rate_rtt_independent;
    Alcotest.test_case "cubic: reno before first loss" `Quick
      test_cubic_reno_before_first_loss;
    Alcotest.test_case "cubic: beta decrease" `Quick test_cubic_decrease_is_beta;
    Alcotest.test_case "cubic: concave recovery" `Quick
      test_cubic_concave_recovery_toward_wmax;
    Alcotest.test_case "cubic: rejects bad params" `Quick
      test_cubic_rejects_bad_params;
    Alcotest.test_case "registry: cubic and scalable" `Quick
      test_cubic_and_scalable_in_registry;
    Alcotest.test_case "cubic: saturates a link" `Slow test_cubic_saturates_link;
    Alcotest.test_case "lia ode: lands on Eq. 2" `Slow
      test_lia_ode_reaches_eq2_fixed_point;
    Alcotest.test_case "lia ode: keeps congested path (vs OLIA)" `Slow
      test_lia_ode_keeps_congested_path;
    Alcotest.test_case "lia ode: derivative ~0 at fixed point" `Slow
      test_lia_ode_derivative_zero_at_fixed_point;
    Alcotest.test_case "cbr: rate and count" `Quick test_cbr_rate;
    Alcotest.test_case "cbr: start/stop window" `Quick test_cbr_start_stop;
    Alcotest.test_case "cbr: displaces TCP" `Slow
      test_cbr_steals_capacity_from_tcp;
    Alcotest.test_case "delack: halves ACK volume" `Slow
      test_delayed_ack_halves_ack_count;
    Alcotest.test_case "delack: completes under loss" `Slow
      test_delayed_ack_still_completes_under_loss;
    Alcotest.test_case "paths: disable stops new data" `Slow
      test_disable_stops_new_data;
    Alcotest.test_case "path manager: discards bad path" `Slow
      test_path_manager_discards_bad_path;
    Alcotest.test_case "path manager: re-probes" `Slow test_path_manager_reprobes;
    Alcotest.test_case "path manager: keeps one active" `Slow
      test_path_manager_keeps_min_active;
  ]

(* --- lossy links and the wireless scenario ----------------------------- *)

let test_lossy_drop_rate () =
  let rng = Rng.create ~seed:40 in
  let lossy = Lossy.create ~rng ~loss_prob:0.2 () in
  let forwarded = ref 0 in
  let route = [| Lossy.hop lossy; (fun _ -> incr forwarded) |] in
  for i = 0 to 9999 do
    Packet.forward (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:0. ~route)
  done;
  Alcotest.(check int) "conservation" 10000
    (Lossy.dropped lossy + Lossy.passed lossy);
  Alcotest.(check int) "forwarded = passed" (Lossy.passed lossy) !forwarded;
  let rate = float_of_int (Lossy.dropped lossy) /. 10000. in
  Alcotest.(check bool) (Printf.sprintf "rate %.3f near 0.2" rate) true
    (rate > 0.17 && rate < 0.23)

let test_lossy_spares_acks () =
  let rng = Rng.create ~seed:41 in
  let lossy = Lossy.create ~rng ~loss_prob:0.9 () in
  let forwarded = ref 0 in
  let route = [| Lossy.hop lossy; (fun _ -> incr forwarded) |] in
  for _ = 1 to 100 do
    Packet.forward
      (Packet.ack ~flow:0 ~subflow:0 ~ackno:0 ~echo:0. ~sack:None ~route
         ~sent_at:0.)
  done;
  Alcotest.(check int) "all acks pass" 100 !forwarded

let test_lossy_rejects_bad_prob () =
  let rng = Rng.create ~seed:42 in
  Alcotest.check_raises "p=1"
    (Invalid_argument "Lossy.create: loss_prob must be in [0, 1)") (fun () ->
      ignore (Lossy.create ~rng ~loss_prob:1. ()))

let test_wireless_multipath_beats_lossy_tcp () =
  let module W = Mptcp_repro.Scenarios.Wireless in
  let cfg = { W.default with duration = 60.; warmup = 15. } in
  let tcp = W.run { cfg with algo = "reno" } in
  let olia = W.run { cfg with algo = "olia" } in
  Alcotest.(check bool)
    (Printf.sprintf "OLIA %.1f > TCP-on-WiFi %.1f" olia.total_mbps
       tcp.total_mbps)
    true
    (olia.total_mbps > tcp.total_mbps);
  (* the clean cellular path carries the bulk for OLIA *)
  Alcotest.(check bool) "cellular saturated" true (olia.cell_mbps > 6.)

let test_wireless_olia_at_least_matches_lia () =
  (* reference [12]'s qualitative finding, within simulation noise *)
  let module W = Mptcp_repro.Scenarios.Wireless in
  let cfg = { W.default with duration = 90.; warmup = 20. } in
  let lia = W.run { cfg with algo = "lia" } in
  let olia = W.run { cfg with algo = "olia" } in
  Alcotest.(check bool)
    (Printf.sprintf "OLIA %.1f vs LIA %.1f" olia.total_mbps lia.total_mbps)
    true
    (olia.total_mbps > 0.85 *. lia.total_mbps)

let suite =
  suite
  @ [
      Alcotest.test_case "lossy: drop rate" `Quick test_lossy_drop_rate;
      Alcotest.test_case "lossy: spares acks" `Quick test_lossy_spares_acks;
      Alcotest.test_case "lossy: rejects p=1" `Quick test_lossy_rejects_bad_prob;
      Alcotest.test_case "wireless: MPTCP beats lossy TCP" `Slow
        test_wireless_multipath_beats_lossy_tcp;
      Alcotest.test_case "wireless: OLIA ~ LIA (ref [12])" `Slow
        test_wireless_olia_at_least_matches_lia;
    ]
