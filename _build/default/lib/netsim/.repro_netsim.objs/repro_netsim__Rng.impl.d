lib/netsim/rng.ml: Array Int64
