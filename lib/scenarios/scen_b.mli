(** Testbed Scenario B (paper Fig. 3, Tables I–II): the four-ISP
    multihoming story. [n] Blue users are multihomed (one subflow through
    bottleneck ISP X, one through bottleneck ISP T); [n] Red users connect
    through T and may upgrade to MPTCP by adding a subflow through X
    (which then also crosses T, per the paper's capacity constraints). *)

type config = {
  n : int;
  cx_mbps : float;  (** total capacity of ISP X *)
  ct_mbps : float;  (** total capacity of ISP T *)
  red_multipath : bool;  (** have Red users upgraded to MPTCP? *)
  algo : string;  (** coupled algorithm of the multipath users *)
  duration : float;
  warmup : float;
  seed : int;
}

val default : config
(** The Table I/II setting: 15+15 users, CX = 27, CT = 36 Mb/s. *)

type result = {
  blue_rate : float;  (** mean per-user Blue goodput, Mb/s *)
  red_rate : float;  (** mean per-user Red goodput, Mb/s *)
  aggregate : float;  (** total goodput, Mb/s *)
  px : float;  (** measured loss probability at X *)
  pt : float;  (** measured loss probability at T *)
  obs : Repro_obs.Meter.report;  (** run counters and timers *)
}

val run : config -> result
val replicate : config -> seeds:int list -> result list
