lib/fluid/olia_ode.mli: Network_model
