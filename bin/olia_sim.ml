(* olia_sim: command-line front end for the OLIA reproduction.

   Subcommands:
     list                                   registered scenarios and params
     run <scenario> [-p k=v]...             any registry scenario, one point
     sweep <scenario> [-x k=axis]...        multicore parameter sweep
     report <trace.jsonl>                   flight-recorder trace analysis
     scenario-a | scenario-b | scenario-c   testbed scenarios (paper §III/VI)
     trace                                  two-bottleneck window traces
     fattree                                static FatTree experiment
     fattree-dynamic                        short-flow experiment
     fluid                                  analytical fixed points
     shard-invariance                       sharded-vs-sequential CI gate
     check                                  conformance + golden traces *)

open Cmdliner
module S = Mptcp_repro.Scenarios
module E = Mptcp_repro.Exp
module F = Mptcp_repro.Fluid

(* --- common options ---------------------------------------------------- *)

let algo =
  let doc =
    "Congestion control: reno, lia, olia, balia, cubic, scalable, wvegas or \
     coupled:<eps>."
  in
  Arg.(value & opt string "olia" & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let seed =
  let doc = "PRNG seed (runs are deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let duration =
  let doc = "Simulated duration in seconds." in
  Arg.(value & opt float 120. & info [ "duration"; "d" ] ~docv:"SEC" ~doc)

let warmup =
  let doc = "Warm-up excluded from the measurements, seconds." in
  Arg.(value & opt float 30. & info [ "warmup"; "w" ] ~docv:"SEC" ~doc)

let n1 =
  let doc = "Number of multipath (type-1) users." in
  Arg.(value & opt int 10 & info [ "n1" ] ~docv:"N" ~doc)

let n2 =
  let doc = "Number of single-path (type-2) users." in
  Arg.(value & opt int 10 & info [ "n2" ] ~docv:"N" ~doc)

let c1 =
  let doc = "Per-user capacity C1, Mb/s." in
  Arg.(value & opt float 1. & info [ "c1" ] ~docv:"MBPS" ~doc)

let c2 =
  let doc = "Per-user capacity C2, Mb/s." in
  Arg.(value & opt float 1. & info [ "c2" ] ~docv:"MBPS" ~doc)

(* --- registry-driven commands: list, run, sweep ------------------------- *)

let scenario_pos =
  let doc = "Registry scenario name; $(b,olia_sim list) shows them all." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)

let params_opt =
  let doc =
    "Override one spec parameter, e.g. $(b,-p n2=30); repeatable."
  in
  Arg.(value & opt_all string [] & info [ "p"; "param" ] ~docv:"KEY=VALUE" ~doc)

let out_opt =
  let doc = "Write results to $(docv) (.json or .csv, by extension)." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let run_list () =
  List.iter
    (fun name ->
      let (module Sc : S.Registry.SCENARIO) = S.Registry.find name in
      Printf.printf "%s\n  %s\n" Sc.spec.E.Spec.name Sc.spec.E.Spec.doc;
      List.iter
        (fun p ->
          Printf.printf "    %-16s %-7s default %-8s %s\n" p.E.Spec.key
            (E.Spec.type_name p.E.Spec.default)
            (E.Spec.value_to_string p.E.Spec.default)
            p.E.Spec.doc)
        Sc.spec.E.Spec.params;
      print_newline ())
    S.Registry.names

let list_cmd =
  let doc = "List every registered scenario and its parameters." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run_list $ const ())

let print_outcome outcome =
  List.iter
    (fun (name, v) -> Printf.printf "%-24s %.6g\n" name v)
    outcome.E.Outcome.metrics;
  List.iter
    (fun (name, a) ->
      Printf.printf "%-24s [%d values]\n" name (Array.length a))
    outcome.E.Outcome.arrays

let trace_opt =
  let doc =
    "Stream structured simulator events (packet enqueue/drop/forward, TCP \
     state transitions, cwnd updates, RTO, subflow add/remove) to $(docv) \
     as JSONL, one event object per line."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let report_opt =
  let doc =
    "Analyze the run's event stream inline and write the deterministic \
     JSON report (queue latency percentiles, drop bursts, per-subflow \
     RTT/cwnd/state summaries) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let format_conv = Arg.enum [ ("text", `Text); ("json", `Json) ]

let format_opt =
  let doc = "Report rendering on stdout: $(b,text) tables or $(b,json)." in
  Arg.(value & opt format_conv `Text & info [ "format" ] ~docv:"FMT" ~doc)

let profile_opt =
  let doc =
    "Profile the event loop: per-source dispatch counts and wall time, \
     printed after the run (wall times are non-deterministic and never \
     enter the report JSON)."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

module Obs = Mptcp_repro.Obs

let trace_ring_opt =
  let doc =
    "Capacity of each per-domain trace ring, in records (default 262144). \
     Rings are pre-allocated and drop their oldest records on overflow; \
     the run warns if anything was dropped — raise this if it does."
  in
  Arg.(
    value
    & opt int (1 lsl 18)
    & info [ "trace-ring" ] ~docv:"RECORDS" ~doc)

let write_events_jsonl ~path events =
  let oc = open_out path in
  List.iter
    (fun ev ->
      output_string oc
        (Mptcp_repro.Stats.Json.to_string (Obs.Trace.to_json ev));
      output_char oc '\n')
    events;
  close_out oc

(* Arm tracing for the duration of [f] via per-domain binary rings: the
   calling domain binds ring 0 (single-loop scenarios emit into it),
   sharded scenarios bind one ring per worker inside the window loop,
   and after the run the rings decode — in exact sequential event
   order, whatever the shard count — into the JSONL file and/or the
   live report accumulator. *)
let with_obs_sinks ~trace ~report ~ring_capacity f =
  if trace = None && not report then (None, f ())
  else begin
    Obs.Trace.arm_rings ~capacity:ring_capacity ();
    Obs.Trace.bind_ring ~shard:0;
    match f () with
    | exception e ->
      Obs.Trace.disarm_rings ();
      raise e
    | r ->
      let events = Obs.Trace.decode_rings () in
      let dropped = Obs.Trace.rings_dropped () in
      Obs.Trace.disarm_rings ();
      if dropped > 0 then
        Printf.eprintf
          "warning: trace rings dropped %d events (oldest first); re-run \
           with a larger --trace-ring for a complete trace\n\
           %!"
          dropped;
      Option.iter (fun path -> write_events_jsonl ~path events) trace;
      let acc =
        if report then begin
          let a = Obs.Report.create () in
          List.iter (Obs.Report.feed a) events;
          Some a
        end
        else None
      in
      (acc, r)
  end

let shards_opt =
  let doc =
    "Simulation shards (OCaml domains), for scenarios with a $(b,shards) \
     parameter such as fattree-sharded. Shorthand for $(b,-p shards=N). \
     Results are bitwise shard-count-invariant, and $(b,--trace) works at \
     any shard count: each domain records into its own ring and the \
     decoded trace is byte-identical to the $(b,--shards 1) trace."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)

let has_shards_param (module Sc : S.Registry.SCENARIO) =
  List.exists (fun p -> p.E.Spec.key = "shards") Sc.spec.E.Spec.params

let sharded_scenario_names () =
  List.filter
    (fun n -> has_shards_param (S.Registry.find n))
    S.Registry.names

let run_generic name params shards out trace trace_ring report format profile =
  try
    let (module Sc : S.Registry.SCENARIO) = S.Registry.find name in
    let bindings = List.map (E.Spec.parse_assign Sc.spec) params in
    let bindings =
      match shards with
      | None -> bindings
      | Some n ->
        if not (has_shards_param (module Sc)) then
          invalid_arg
            (Printf.sprintf
               "--shards: scenario %s has no 'shards' parameter and always \
                runs on one event loop; sharded execution is available for: \
                %s"
               name
               (String.concat ", " (sharded_scenario_names ())))
        else ("shards", E.Spec.Int n) :: bindings
    in
    if profile then begin
      Obs.Profile.reset ();
      Obs.Profile.set_enabled true
    end;
    let acc, outcome =
      with_obs_sinks ~trace ~report:(Option.is_some report)
        ~ring_capacity:trace_ring (fun () -> Sc.run bindings)
    in
    if profile then Obs.Profile.set_enabled false;
    Option.iter (fun path -> Printf.printf "wrote trace %s\n" path) trace;
    Printf.printf "%s:\n" name;
    print_outcome outcome;
    Option.iter
      (fun path ->
        if Filename.check_suffix path ".csv" then
          E.Sweep.write_csv ~path ~spec:Sc.spec
            [ { E.Sweep.bindings; outcome } ]
        else
          Mptcp_repro.Stats.Json.write ~path
            (Mptcp_repro.Stats.Json.Obj
               [
                 ("scenario", Mptcp_repro.Stats.Json.String name);
                 ("params", E.Spec.to_json Sc.spec bindings);
                 ("outcome", E.Outcome.to_json outcome);
               ]);
        Printf.printf "wrote %s\n" path)
      out;
    Option.iter
      (fun acc ->
        (match format with
        | `Text -> print_string (Obs.Report.to_text acc)
        | `Json ->
          print_endline
            (Mptcp_repro.Stats.Json.to_string (Obs.Report.to_json acc)));
        Option.iter
          (fun path ->
            Mptcp_repro.Stats.Json.write ~path (Obs.Report.to_json acc);
            Printf.printf "wrote report %s\n" path)
          report)
      acc;
    if profile then begin
      Mptcp_repro.Stats.Table.print
        (Obs.Profile.to_table (Obs.Profile.report ()));
      (* the per-shard breakdown only says something when more than one
         domain accumulated dispatches *)
      match Obs.Profile.report_by_shard () with
      | [] | [ _ ] -> ()
      | by_shard ->
        Mptcp_repro.Stats.Table.print (Obs.Profile.to_shard_table by_shard)
    end;
    `Ok ()
  with Invalid_argument msg -> `Error (false, msg)

let run_cmd =
  let doc = "Run any registered scenario once, driven by its spec." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run_generic $ scenario_pos $ params_opt $ shards_opt $ out_opt
        $ trace_opt $ trace_ring_opt $ report_opt $ format_opt $ profile_opt))

(* --- report: offline trace analysis ------------------------------------- *)

let run_report trace_path out format =
  match Obs.Report.load_jsonl ~path:trace_path with
  | Error e -> `Error (false, e)
  | Ok acc ->
    (match format with
    | `Text -> print_string (Obs.Report.to_text acc)
    | `Json ->
      print_endline
        (Mptcp_repro.Stats.Json.to_string (Obs.Report.to_json acc)));
    Option.iter
      (fun path ->
        Mptcp_repro.Stats.Json.write ~path (Obs.Report.to_json acc);
        Printf.printf "wrote %s\n" path)
      out;
    `Ok ()

let report_cmd =
  let trace_pos =
    let doc = "JSONL trace file recorded with $(b,olia_sim run --trace)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let doc =
    "Analyze a recorded trace: queue-residence latency percentiles \
     (p50/p90/p99), drop causes and bursts, per-subflow RTT distributions, \
     cwnd timelines and TCP state dwell times."
  in
  let man =
    [
      `S Manpage.s_examples;
      `P "olia_sim run scenario-b --trace t.jsonl";
      `P "olia_sim report t.jsonl";
      `P "olia_sim report t.jsonl --format json --out report.json";
    ]
  in
  Cmd.v (Cmd.info "report" ~doc ~man)
    Term.(ret (const run_report $ trace_pos $ out_opt $ format_opt))

let axes_opt =
  let doc =
    "Sweep one parameter: $(b,-x n2=10:100:10) (inclusive range) or \
     $(b,-x algo=lia,olia) (explicit list); repeatable, the cross-product \
     of all axes is run."
  in
  Arg.(value & opt_all string [] & info [ "x"; "axis" ] ~docv:"KEY=AXIS" ~doc)

let seeds_opt =
  let doc =
    "Replicate every point under seeds 1..$(docv) (adds a seed axis)."
  in
  Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"N" ~doc)

let domains_opt =
  let doc =
    "Worker domains (0 = Domain.recommended_domain_count; 1 = sequential)."
  in
  Arg.(value & opt int 0 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let agg_out_opt =
  let doc = "Also write the aggregated (mean/stddev) table to $(docv)." in
  Arg.(value & opt (some string) None & info [ "agg-out" ] ~docv:"FILE" ~doc)

let run_sweep name axes params seeds domains out agg_out =
  try
    let (module Sc : S.Registry.SCENARIO) = S.Registry.find name in
    let fixed = List.map (E.Spec.parse_assign Sc.spec) params in
    let axes = List.map (E.Sweep.axis_of_assign Sc.spec) axes in
    let axes =
      if seeds > 1 && not (List.exists (fun a -> a.E.Sweep.key = "seed") axes)
      then axes @ [ E.Sweep.seed_axis seeds ]
      else axes
    in
    if axes = [] then invalid_arg "sweep: give at least one -x axis";
    let pts = E.Sweep.points Sc.spec ~fixed axes in
    let requested =
      if domains <= 0 then Domain.recommended_domain_count () else domains
    in
    let workers = Stdlib.max 1 (Stdlib.min requested (List.length pts)) in
    (* lint: allow R1 -- wall-clock timing of the sweep engine itself *)
    let t0 = Unix.gettimeofday () in
    let results = E.Sweep.run ~domains:workers (module Sc) pts in
    (* lint: allow R1 -- closes the wall-clock interval opened above *)
    let dt = Unix.gettimeofday () -. t0 in
    let agg = E.Sweep.aggregate results in
    (* print the aggregated table *)
    let axis_keys =
      List.filter (fun k -> k <> "seed") (List.map (fun a -> a.E.Sweep.key) axes)
    in
    let metrics =
      match agg.E.Sweep.rows with
      | [] -> []
      | a :: _ -> List.map fst a.E.Sweep.stats
    in
    let table =
      Mptcp_repro.Stats.Table.create
        ~title:(Printf.sprintf "%s sweep (n per point = seed replications)" name)
        ~columns:(axis_keys @ [ "n" ] @ metrics)
    in
    List.iter
      (fun (a : E.Sweep.agg) ->
        Mptcp_repro.Stats.Table.add_row table
          (List.map
             (fun k -> E.Spec.value_to_string (E.Spec.get Sc.spec a.group k))
             axis_keys
          @ [ string_of_int a.E.Sweep.n ]
          @ List.map
              (fun m ->
                let mean, sd = List.assoc m a.E.Sweep.stats in
                if a.E.Sweep.n > 1 then Printf.sprintf "%.4g ± %.2g" mean sd
                else Printf.sprintf "%.4g" mean)
              metrics))
      agg.E.Sweep.rows;
    Mptcp_repro.Stats.Table.print table;
    Printf.printf "%d points on %d domain%s in %.1f s\n" (List.length pts)
      workers
      (if workers = 1 then "" else "s")
      dt;
    Option.iter
      (fun path ->
        if Filename.check_suffix path ".csv" then
          E.Sweep.write_csv ~path ~spec:Sc.spec results
        else E.Sweep.write_json ~path ~spec:Sc.spec ~aggregated:agg results;
        Printf.printf "wrote %s\n" path)
      out;
    Option.iter
      (fun path ->
        E.Sweep.write_agg_csv ~path ~spec:Sc.spec agg;
        Printf.printf "wrote %s\n" path)
      agg_out;
    `Ok ()
  with Invalid_argument msg -> `Error (false, msg)

let sweep_cmd =
  let doc =
    "Sweep a scenario over parameter axes, in parallel across domains."
  in
  let man =
    [
      `S Manpage.s_examples;
      `P
        "olia_sim sweep scenario-a -x n2=10:100:10 -x algo=lia,olia --seeds \
         5 --out sweep.json";
    ]
  in
  Cmd.v (Cmd.info "sweep" ~doc ~man)
    Term.(
      ret
        (const run_sweep $ scenario_pos $ axes_opt $ params_opt $ seeds_opt
        $ domains_opt $ out_opt $ agg_out_opt))

(* --- scenario A --------------------------------------------------------- *)

let run_scenario_a algo n1 n2 c1 c2 duration warmup seed =
  let r =
    S.Scen_a.run
      { S.Scen_a.n1; n2; c1_mbps = c1; c2_mbps = c2; algo; duration; warmup;
        seed }
  in
  Printf.printf
    "scenario A (%s): type1 %.3f, type2 %.3f (normalized); p1 %.4f, p2 %.4f\n"
    algo r.S.Scen_a.norm_type1 r.S.Scen_a.norm_type2 r.S.Scen_a.p1
    r.S.Scen_a.p2

let scenario_a_cmd =
  let doc = "Scenario A: MPTCP streamers sharing an AP with TCP users." in
  Cmd.v
    (Cmd.info "scenario-a" ~doc)
    Term.(
      const run_scenario_a $ algo $ n1 $ n2 $ c1 $ c2 $ duration $ warmup
      $ seed)

(* --- scenario B --------------------------------------------------------- *)

let run_scenario_b algo red_multipath cx ct duration warmup seed =
  let r =
    S.Scen_b.run
      { S.Scen_b.n = 15; cx_mbps = cx; ct_mbps = ct; red_multipath; algo;
        duration; warmup; seed }
  in
  Printf.printf
    "scenario B (%s, red %s): blue %.2f, red %.2f Mb/s per user; aggregate \
     %.1f Mb/s; pX %.4f, pT %.4f\n"
    algo
    (if red_multipath then "multipath" else "single-path")
    r.S.Scen_b.blue_rate r.S.Scen_b.red_rate r.S.Scen_b.aggregate
    r.S.Scen_b.px r.S.Scen_b.pt

let scenario_b_cmd =
  let red_mp =
    Arg.(value & flag & info [ "red-multipath" ]
           ~doc:"Red users upgrade to MPTCP.")
  in
  let cx =
    Arg.(value & opt float 27. & info [ "cx" ] ~docv:"MBPS"
           ~doc:"ISP X capacity.")
  in
  let ct =
    Arg.(value & opt float 36. & info [ "ct" ] ~docv:"MBPS"
           ~doc:"ISP T capacity.")
  in
  let doc = "Scenario B: the four-ISP multihoming story (Tables I-II)." in
  Cmd.v
    (Cmd.info "scenario-b" ~doc)
    Term.(
      const run_scenario_b $ algo $ red_mp $ cx $ ct $ duration $ warmup
      $ seed)

(* --- scenario C --------------------------------------------------------- *)

let run_scenario_c algo n1 n2 c1 c2 duration warmup seed background
    path_manager =
  let r =
    S.Scen_c.run
      { S.Scen_c.n1; n2; c1_mbps = c1; c2_mbps = c2; algo; duration; warmup;
        seed; background_mbps = background; with_path_manager = path_manager }
  in
  Printf.printf
    "scenario C (%s): multipath %.3f, single %.3f (normalized); p1 %.4f, p2 \
     %.4f\n"
    algo r.S.Scen_c.norm_multipath r.S.Scen_c.norm_single r.S.Scen_c.p1
    r.S.Scen_c.p2

let scenario_c_cmd =
  let background =
    Arg.(value & opt float 0. & info [ "background" ] ~docv:"MBPS"
           ~doc:"CBR background traffic through AP2.")
  in
  let path_manager =
    Arg.(value & flag & info [ "path-manager" ]
           ~doc:"Attach the bad-path-discarding manager to multipath users.")
  in
  let doc = "Scenario C: multipath users sharing AP2 with TCP users." in
  Cmd.v
    (Cmd.info "scenario-c" ~doc)
    Term.(
      const run_scenario_c $ algo $ n1 $ n2 $ c1 $ c2 $ duration $ warmup
      $ seed $ background $ path_manager)

(* --- traces -------------------------------------------------------------- *)

let run_trace algo asymmetric duration seed =
  let base =
    if asymmetric then S.Two_bottleneck.asymmetric
    else S.Two_bottleneck.symmetric
  in
  let t = S.Two_bottleneck.run { base with algo; duration; seed } in
  Printf.printf
    "two-bottleneck (%s, %s): goodput %.2f / %.2f Mb/s, window flips %d\n"
    algo
    (if asymmetric then "asymmetric" else "symmetric")
    t.S.Two_bottleneck.goodput1_mbps t.S.Two_bottleneck.goodput2_mbps
    t.S.Two_bottleneck.flip_count;
  print_endline "t(s)  w1      w2      alpha1  alpha2";
  let every = Stdlib.max 1 (int_of_float (duration /. 40.)) in
  let w1 = Mptcp_repro.Stats.Timeseries.to_array t.S.Two_bottleneck.w1 in
  let w2 = Mptcp_repro.Stats.Timeseries.to_array t.S.Two_bottleneck.w2 in
  let a1 = Mptcp_repro.Stats.Timeseries.to_array t.S.Two_bottleneck.alpha1 in
  let a2 = Mptcp_repro.Stats.Timeseries.to_array t.S.Two_bottleneck.alpha2 in
  Array.iteri
    (fun i (time, w) ->
      if i mod (every * 10) = 0 then
        Printf.printf "%5.1f %7.2f %7.2f %+.2f %+.2f\n" time w (snd w2.(i))
          (snd a1.(i)) (snd a2.(i)))
    w1

let trace_cmd =
  let asym =
    Arg.(value & flag & info [ "asymmetric" ]
           ~doc:"Use the Fig. 8 setting (5 vs 10 TCP flows).")
  in
  let doc = "Window and alpha traces of a two-path connection (Figs. 7-8)." in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(const run_trace $ algo $ asym $ duration $ seed)

(* --- fattree ------------------------------------------------------------- *)

let run_fattree algo k subflows rate duration warmup seed =
  let r =
    S.Fattree_static.run
      { S.Fattree_static.k; rate_mbps = rate; delay_ms = 1.; subflows; algo;
        duration; warmup; seed }
  in
  Printf.printf
    "fattree k=%d %s sf=%d: aggregate %.1f%% of optimal, mean core loss %.4f\n"
    k algo subflows r.S.Fattree_static.aggregate_pct_optimal
    r.S.Fattree_static.mean_core_loss

let k_arg =
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K"
         ~doc:"FatTree arity (even; k=8 gives 128 hosts).")

let subflows =
  Arg.(value & opt int 8 & info [ "subflows"; "s" ] ~docv:"N"
         ~doc:"MPTCP subflows per connection (1 = plain TCP).")

let rate =
  Arg.(value & opt float 10. & info [ "rate" ] ~docv:"MBPS"
         ~doc:"Host link rate.")

let fattree_cmd =
  let doc = "Static FatTree permutation experiment (Fig. 13)." in
  Cmd.v
    (Cmd.info "fattree" ~doc)
    Term.(
      const run_fattree $ algo $ k_arg $ subflows $ rate $ duration $ warmup
      $ seed)

let run_fattree_dynamic algo k subflows rate duration warmup seed =
  let r =
    S.Fattree_dynamic.run
      { S.Fattree_dynamic.k; rate_mbps = rate; delay_ms = 1.;
        oversubscription = 4.; algo; subflows; mean_interval = 0.2; duration;
        warmup; seed }
  in
  Printf.printf
    "fattree-dynamic k=%d %s: short flows %.0f ± %.0f ms, core %.1f%%, long \
     %.2f Mb/s (%d shorts unfinished)\n"
    k algo r.S.Fattree_dynamic.mean_completion_ms
    r.S.Fattree_dynamic.stdev_completion_ms
    r.S.Fattree_dynamic.core_utilization_pct r.S.Fattree_dynamic.long_flow_mbps
    r.S.Fattree_dynamic.unfinished_shorts

let fattree_dynamic_cmd =
  let rate =
    Arg.(value & opt float 100. & info [ "rate" ] ~docv:"MBPS"
           ~doc:"Host link rate.")
  in
  let doc = "Dynamic short-flow experiment (Fig. 14, Table III)." in
  Cmd.v
    (Cmd.info "fattree-dynamic" ~doc)
    Term.(
      const run_fattree_dynamic $ algo $ k_arg $ subflows $ rate $ duration
      $ warmup $ seed)

(* --- responsiveness --------------------------------------------------------- *)

let run_responsiveness algo seed =
  let r =
    S.Responsiveness.run { S.Responsiveness.default with algo; seed }
  in
  Printf.printf
    "responsiveness (%s): pre-shock share %.2f; flees in %.1f s; reclaims \
     in %.1f s; post-relief share %.2f\n"
    algo r.S.Responsiveness.pre_shock_share r.S.Responsiveness.shock_response_s
    r.S.Responsiveness.relief_response_s r.S.Responsiveness.post_relief_share

let responsiveness_cmd =
  let doc = "Shock/relief responsiveness experiment (paper SII claim)." in
  Cmd.v
    (Cmd.info "responsiveness" ~doc)
    Term.(const run_responsiveness $ algo $ seed)

(* --- wireless ---------------------------------------------------------------- *)

let run_wireless algo seed duration warmup =
  let r =
    S.Wireless.run { S.Wireless.default with algo; seed; duration; warmup }
  in
  Printf.printf
    "wireless (%s): wifi %.2f + cellular %.2f = %.2f Mb/s (wifi timeouts %d)\n"
    algo r.S.Wireless.wifi_mbps r.S.Wireless.cell_mbps r.S.Wireless.total_mbps
    r.S.Wireless.wifi_timeouts

let wireless_cmd =
  let doc = "WiFi+cellular bonding with random wireless losses (ref. [12])." in
  Cmd.v
    (Cmd.info "wireless" ~doc)
    Term.(const run_wireless $ algo $ seed $ duration $ warmup)

(* --- fluid ---------------------------------------------------------------- *)

let run_fluid scenario n1 n2 c1 c2 =
  let to_pps = F.Units.pps_of_mbps in
  match scenario with
  | "a" ->
    let r =
      F.Scenario_a.lia
        { F.Scenario_a.n1; n2; c1 = to_pps c1; c2 = to_pps c2; rtt = 0.15 }
    in
    Printf.printf
      "fluid A (LIA): type1 %.3f, type2 %.3f; p1 %.4f, p2 %.4f\n"
      r.F.Scenario_a.norm_type1 r.F.Scenario_a.norm_type2 r.F.Scenario_a.p1
      r.F.Scenario_a.p2
  | "b" ->
    let params =
      { F.Scenario_b.n = n1; cx = to_pps c1; ct = to_pps c2; rtt = 0.15 }
    in
    let sp = F.Scenario_b.lia_red_singlepath params in
    let mp = F.Scenario_b.lia_red_multipath params in
    Printf.printf
      "fluid B (LIA): single-path blue %.2f red %.2f; multipath blue %.2f \
       red %.2f Mb/s per user\n"
      (F.Units.mbps_of_pps sp.F.Scenario_b.blue_total)
      (F.Units.mbps_of_pps sp.F.Scenario_b.red_total)
      (F.Units.mbps_of_pps mp.F.Scenario_b.blue_total)
      (F.Units.mbps_of_pps mp.F.Scenario_b.red_total)
  | "c" ->
    let r =
      F.Scenario_c.lia
        { F.Scenario_c.n1; n2; c1 = to_pps c1; c2 = to_pps c2; rtt = 0.15 }
    in
    Printf.printf
      "fluid C (LIA): multipath %.3f, single %.3f; p1 %.4f, p2 %.4f\n"
      r.F.Scenario_c.norm_multipath r.F.Scenario_c.norm_single
      r.F.Scenario_c.p1 r.F.Scenario_c.p2
  | s -> Printf.eprintf "unknown fluid scenario %s (a, b or c)\n" s

let fluid_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"a, b or c.")
  in
  let doc = "Analytical fixed points of the paper's scenarios." in
  Cmd.v
    (Cmd.info "fluid" ~doc)
    Term.(const run_fluid $ scenario $ n1 $ n2 $ c1 $ c2)

(* --- shard-invariance ------------------------------------------------------ *)

module Json = Mptcp_repro.Stats.Json

(* One traced run of the sharded FatTree: arm per-domain rings, run,
   decode back to JSONL lines. The decoded sequence is the gate's raw
   material — [--traced] byte-compares the N-shard decode against the
   1-shard decode. *)
let traced_lines cfg ~ring_capacity s =
  Obs.Trace.arm_rings ~capacity:ring_capacity ();
  match S.Fattree_sharded.run (cfg s) with
  | exception e ->
    Obs.Trace.disarm_rings ();
    raise e
  | (_ : S.Fattree_sharded.result) ->
    let events = Obs.Trace.decode_rings () in
    let dropped = Obs.Trace.rings_dropped () in
    Obs.Trace.disarm_rings ();
    if dropped > 0 then
      invalid_arg
        (Printf.sprintf
           "shard-invariance: trace rings dropped %d events at --shards %d; \
            raise --trace-ring so the byte comparison sees complete traces"
           dropped s);
    List.map (fun ev -> Json.to_string (Obs.Trace.to_json ev)) events

(* Run the sharded FatTree scenario at --shards 1 and --shards N with the
   same seed, compare banded metrics (the CI gate for the conservative
   lookahead runtime) and report the wall-clock speedup. With [--traced],
   also run both shard counts with trace rings armed and require the
   decoded traces to be byte-identical — the strongest form of the
   invariance claim. *)
let run_shard_invariance k shards flows_per_host subflows rate algo duration
    warmup seed tolerance min_speedup traced trace_ring trace_out out =
  try
    if shards < 2 then
      invalid_arg "shard-invariance: --shards must be >= 2 (it is compared \
                   against a --shards 1 baseline)";
    let traced = traced || Option.is_some trace_out in
    let cfg s =
      { S.Fattree_sharded.k; shards = s; rate_mbps = rate; delay_ms = 1.;
        subflows; flows_per_host; algo; duration; warmup; seed }
    in
    let flows = k * k * k / 4 * flows_per_host in
    let timed s =
      (* lint: allow R1 -- wall-clock speedup measurement of the runtime *)
      let t0 = Unix.gettimeofday () in
      let r = S.Fattree_sharded.run (cfg s) in
      (* lint: allow R1 -- closes the wall-clock interval opened above *)
      (r, Unix.gettimeofday () -. t0)
    in
    Printf.printf
      "shard-invariance: k=%d, %d flows, %s, %.3g s simulated (seed %d)\n\
       running --shards 1 ...\n\
       %!"
      k flows algo duration seed;
    let base, wall1 = timed 1 in
    Printf.printf "  %.1f s wall; running --shards %d ...\n%!" wall1 shards;
    let shd, walln = timed shards in
    let speedup = wall1 /. walln in
    Printf.printf "  %.1f s wall (speedup %.2fx)\n" walln speedup;
    let checks =
      List.map
        (fun (metric, b, s, limit, kind) ->
          let dev =
            match kind with
            | `Rel -> abs_float (s -. b) /. Stdlib.max (abs_float b) 1e-9
            | `Abs -> abs_float (s -. b)
          in
          (metric, b, s, dev, limit, kind, dev <= limit))
        [
          ("aggregate_mbps", base.S.Fattree_sharded.aggregate_mbps,
           shd.S.Fattree_sharded.aggregate_mbps, tolerance, `Rel);
          ("mean_flow_mbps", base.S.Fattree_sharded.mean_flow_mbps,
           shd.S.Fattree_sharded.mean_flow_mbps, tolerance, `Rel);
          ("p50_flow_mbps", base.S.Fattree_sharded.p50_flow_mbps,
           shd.S.Fattree_sharded.p50_flow_mbps, tolerance, `Rel);
          ("p10_flow_mbps", base.S.Fattree_sharded.p10_flow_mbps,
           shd.S.Fattree_sharded.p10_flow_mbps, 2. *. tolerance, `Rel);
          ("p90_flow_mbps", base.S.Fattree_sharded.p90_flow_mbps,
           shd.S.Fattree_sharded.p90_flow_mbps, 2. *. tolerance, `Rel);
          ("mean_core_loss", base.S.Fattree_sharded.mean_core_loss,
           shd.S.Fattree_sharded.mean_core_loss, 0.02, `Abs);
        ]
    in
    List.iter
      (fun (metric, b, s, dev, limit, kind, ok) ->
        Printf.printf "%s %-18s shards=1 %10.5g  shards=%d %10.5g  %s %.3g \
                       (limit %.3g)\n"
          (if ok then "ok  " else "FAIL")
          metric b shards s
          (match kind with `Rel -> "rel-dev" | `Abs -> "abs-dev")
          dev limit)
      checks;
    Printf.printf "cut messages: %d (shards=1: %d)\n"
      shd.S.Fattree_sharded.cut_messages base.S.Fattree_sharded.cut_messages;
    let metrics_pass = List.for_all (fun (_, _, _, _, _, _, ok) -> ok) checks in
    let speedup_pass = min_speedup <= 0. || speedup >= min_speedup in
    if not speedup_pass then
      Printf.printf "FAIL speedup %.2fx < required %.2fx\n" speedup min_speedup
    else if min_speedup > 0. then
      Printf.printf "ok   speedup %.2fx >= %.2fx\n" speedup min_speedup;
    let trace_result =
      if not traced then None
      else begin
        Printf.printf
          "running traced legs (ring capacity %d records/domain) ...\n%!"
          trace_ring;
        let base_lines = traced_lines cfg ~ring_capacity:trace_ring 1 in
        let shd_lines = traced_lines cfg ~ring_capacity:trace_ring shards in
        let identical = base_lines = shd_lines in
        Printf.printf
          "%s traced decode: %d events at shards=1, %d at shards=%d -- %s\n"
          (if identical then "ok  " else "FAIL")
          (List.length base_lines) (List.length shd_lines) shards
          (if identical then "byte-identical" else "traces diverge");
        Option.iter
          (fun path ->
            let oc = open_out path in
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              shd_lines;
            close_out oc;
            Printf.printf "wrote decoded sharded trace %s\n" path)
          trace_out;
        Some (List.length base_lines, List.length shd_lines, identical)
      end
    in
    let trace_pass =
      match trace_result with None -> true | Some (_, _, ok) -> ok
    in
    let json =
      let result_json (r : S.Fattree_sharded.result) wall =
        Json.Obj
          [
            ("aggregate_mbps", Json.Float r.S.Fattree_sharded.aggregate_mbps);
            ( "aggregate_pct_optimal",
              Json.Float r.S.Fattree_sharded.aggregate_pct_optimal );
            ("mean_flow_mbps", Json.Float r.S.Fattree_sharded.mean_flow_mbps);
            ("p10_flow_mbps", Json.Float r.S.Fattree_sharded.p10_flow_mbps);
            ("p50_flow_mbps", Json.Float r.S.Fattree_sharded.p50_flow_mbps);
            ("p90_flow_mbps", Json.Float r.S.Fattree_sharded.p90_flow_mbps);
            ("mean_core_loss", Json.Float r.S.Fattree_sharded.mean_core_loss);
            ("cut_messages", Json.Int r.S.Fattree_sharded.cut_messages);
            ("wall_s", Json.Float wall);
          ]
      in
      Json.Obj
        ([
          ("scenario", Json.String "fattree-sharded");
          ("k", Json.Int k);
          ("shards", Json.Int shards);
          ("flows", Json.Int flows);
          ("subflows", Json.Int subflows);
          ("algo", Json.String algo);
          ("duration_s", Json.Float duration);
          ("seed", Json.Int seed);
          ("tolerance", Json.Float tolerance);
          ("min_speedup", Json.Float min_speedup);
          ("baseline", result_json base wall1);
          ("sharded", result_json shd walln);
          ("speedup", Json.Float speedup);
          ( "checks",
            Json.List
              (List.map
                 (fun (metric, b, s, dev, limit, kind, ok) ->
                   Json.Obj
                     [
                       ("metric", Json.String metric);
                       ("baseline", Json.Float b);
                       ("sharded", Json.Float s);
                       ( "deviation",
                         Json.Obj
                           [
                             ( "kind",
                               Json.String
                                 (match kind with
                                 | `Rel -> "relative"
                                 | `Abs -> "absolute") );
                             ("value", Json.Float dev);
                             ("limit", Json.Float limit);
                           ] );
                       ("pass", Json.Bool ok);
                     ])
                 checks) );
          ("metrics_pass", Json.Bool metrics_pass);
          ("speedup_pass", Json.Bool speedup_pass);
        ]
        @ (match trace_result with
          | None -> []
          | Some (nb, ns, identical) ->
            [
              ( "trace",
                Json.Obj
                  [
                    ("baseline_events", Json.Int nb);
                    ("sharded_events", Json.Int ns);
                    ("byte_identical", Json.Bool identical);
                  ] );
            ])
        @ [ ("pass", Json.Bool (metrics_pass && speedup_pass && trace_pass)) ])
    in
    Option.iter
      (fun path ->
        Json.write ~path json;
        Printf.printf "wrote %s\n" path)
      out;
    if metrics_pass && speedup_pass && trace_pass then begin
      Printf.printf
        "shard-invariance: PASS (metrics within bands%s, speedup %.2fx)\n"
        (if traced then ", traces byte-identical" else "")
        speedup;
      `Ok ()
    end
    else begin
      Printf.printf "shard-invariance: FAIL\n";
      exit 1
    end
  with Invalid_argument msg -> `Error (false, msg)

let shard_invariance_cmd =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
           ~doc:"Shard count compared against the --shards 1 baseline \
                 (must divide $(b,--k)).")
  in
  let flows_per_host =
    Arg.(value & opt int 8 & info [ "flows-per-host" ] ~docv:"N"
           ~doc:"Long-lived permutation flows per host (k=8 and 8 \
                 flows/host give 1024 flows).")
  in
  let subflows =
    Arg.(value & opt int 2 & info [ "subflows"; "s" ] ~docv:"N"
           ~doc:"MPTCP subflows per connection.")
  in
  let duration =
    Arg.(value & opt float 5. & info [ "duration"; "d" ] ~docv:"SEC"
           ~doc:"Simulated duration in seconds.")
  in
  let warmup =
    Arg.(value & opt float 1. & info [ "warmup"; "w" ] ~docv:"SEC"
           ~doc:"Warm-up excluded from the measurements, seconds.")
  in
  let tolerance =
    Arg.(value & opt float 0.1 & info [ "tolerance" ] ~docv:"FRAC"
           ~doc:"Relative band on aggregate/mean/median goodput (tail \
                 percentiles get twice this; core loss an absolute 0.02).")
  in
  let min_speedup =
    Arg.(value & opt float 0. & info [ "min-speedup" ] ~docv:"X"
           ~doc:"Fail unless sharded wall-clock speedup reaches $(docv) \
                 (0 = report only).")
  in
  let traced =
    Arg.(value & flag
         & info [ "traced" ]
             ~doc:"Also run both shard counts with trace rings armed and \
                   fail unless the decoded N-shard trace is byte-identical \
                   to the --shards 1 trace.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the decoded sharded trace (JSONL) to $(docv) for \
                   artifact upload; implies $(b,--traced).")
  in
  let doc =
    "CI gate: run the fattree-sharded scenario at --shards 1 and --shards \
     N with one seed, fail if banded metrics diverge (shard-count \
     invariance of the conservative-lookahead runtime), and report the \
     wall-clock speedup. With $(b,--traced), additionally require the \
     decoded sharded trace to be byte-identical to the --shards 1 trace."
  in
  let man =
    [
      `S Manpage.s_examples;
      `P "olia_sim shard-invariance --shards 4 --out report.json";
      `P "olia_sim shard-invariance --k 4 --flows-per-host 2 -d 2 \
          --min-speedup 1.2";
      `P "olia_sim shard-invariance --k 4 --flows-per-host 2 -d 2 --traced \
          --trace-out decoded.jsonl";
    ]
  in
  Cmd.v
    (Cmd.info "shard-invariance" ~doc ~man)
    Term.(
      ret
        (const run_shard_invariance $ k_arg $ shards $ flows_per_host
        $ subflows $ rate $ algo $ duration $ warmup $ seed $ tolerance
        $ min_speedup $ traced $ trace_ring_opt $ trace_out $ out_opt))

(* --- check ----------------------------------------------------------------- *)

module Ck = Mptcp_repro.Check

let has_sub hay needle =
  let lh = String.length hay and ln = String.length needle in
  if ln = 0 then true
  else
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0

(* The float-vs-fixed-point differential registry: every case names the
   kernel source its integer side mirrors, and the report carries the
   per-metric divergence next to its band. *)
let run_diff only out =
  let report = Ck.Diff.run_all ?only () in
  List.iter
    (fun (cr : Ck.Diff.case_report) ->
      Printf.printf "%s %s (%s vs %s)\n"
        (if cr.pass then "PASS" else "FAIL")
        cr.case cr.float_algo cr.fixed_algo;
      Printf.printf "  source: %s\n" cr.source;
      List.iter
        (fun (r : Ck.Diff.check_result) ->
          Printf.printf
            "  %s %-20s float %11.5g  fixed %11.5g  deviation %.4g (limit \
             %.4g)\n"
            (if r.pass then "ok  " else "FAIL")
            r.metric r.float_value r.fixed_value r.deviation r.limit)
        cr.results)
    report.Ck.Diff.cases;
  Option.iter (fun path -> Json.write ~path (Ck.Diff.report_to_json report)) out;
  Printf.printf "diff-conformance: %d/%d checks within divergence bands\n"
    (report.Ck.Diff.checks_total - report.Ck.Diff.checks_failed)
    report.Ck.Diff.checks_total;
  if not report.Ck.Diff.pass then exit 1

let run_check only out update_golden golden_dir diff =
  if diff then run_diff only out
  else if update_golden then begin
    Ck.Golden.update_all ~dir:golden_dir;
    Printf.printf "golden traces re-recorded under %s/\n" golden_dir
  end
  else begin
    let report = Ck.Conformance.run_all ?only () in
    List.iter
      (fun (cr : Ck.Conformance.case_report) ->
        Printf.printf "%s %s\n" (if cr.pass then "PASS" else "FAIL") cr.case;
        List.iter
          (fun (r : Ck.Band.result) ->
            Printf.printf
              "  %s %-24s %-38s actual %11.5g  band [%.5g, %.5g]\n"
              (if r.pass then "ok  " else "FAIL")
              r.band.Ck.Band.id r.band.Ck.Band.metric r.actual
              r.band.Ck.Band.lo r.band.Ck.Band.hi)
          cr.results)
      report.Ck.Conformance.cases;
    let golden_names =
      List.filter
        (fun n ->
          match only with
          | None -> true
          | Some s -> has_sub ("golden/" ^ n) s)
        Ck.Golden.names
    in
    let golden =
      List.map (fun n -> (n, Ck.Golden.check ~dir:golden_dir n)) golden_names
    in
    List.iter
      (fun (n, r) ->
        match r with
        | Ok () -> Printf.printf "PASS golden/%s\n" n
        | Error e -> Printf.printf "FAIL golden/%s\n  %s\n" n e)
      golden;
    let report_names =
      List.filter
        (fun n ->
          match only with
          | None -> true
          | Some s -> has_sub ("golden/" ^ n) s)
        Ck.Golden.report_names
    in
    let reports =
      List.map
        (fun n -> (n, Ck.Golden.check_report ~dir:golden_dir n))
        report_names
    in
    List.iter
      (fun (n, r) ->
        match r with
        | Ok () -> Printf.printf "PASS golden/%s\n" n
        | Error e -> Printf.printf "FAIL golden/%s\n  %s\n" n e)
      reports;
    let golden = golden @ reports in
    let golden_pass = List.for_all (fun (_, r) -> Result.is_ok r) golden in
    let json =
      let golden_json =
        Json.List
          (List.map
             (fun (n, r) ->
               Json.Obj
                 (("name", Json.String n)
                 :: ("pass", Json.Bool (Result.is_ok r))
                 ::
                 (match r with
                 | Ok () -> []
                 | Error e -> [ ("error", Json.String e) ])))
             golden)
      in
      match Ck.Conformance.report_to_json report with
      | Json.Obj fields -> Json.Obj (fields @ [ ("golden", golden_json) ])
      | j -> j
    in
    Option.iter (fun path -> Json.write ~path json) out;
    Printf.printf
      "conformance: %d/%d bands within tolerance, %d/%d golden traces match\n"
      (report.Ck.Conformance.bands_total - report.Ck.Conformance.bands_failed)
      report.Ck.Conformance.bands_total
      (List.length (List.filter (fun (_, r) -> Result.is_ok r) golden))
      (List.length golden);
    if not (report.Ck.Conformance.pass && golden_pass) then exit 1
  end

let check_cmd =
  let only =
    let doc =
      "Run only conformance cases whose name contains $(docv); golden traces \
       match against golden/<name>."
    in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"SUBSTR" ~doc)
  in
  let update_golden =
    let doc = "Re-record the golden trace files and exit." in
    Arg.(value & flag & info [ "update-golden" ] ~doc)
  in
  let golden_dir =
    let doc = "Directory holding the golden trace files." in
    Arg.(value & opt string "test/golden" & info [ "golden-dir" ] ~docv:"DIR" ~doc)
  in
  let diff =
    let doc =
      "Run the float-vs-fixed-point differential registry instead: the same \
       seeded scenarios under each backend, divergence bands with kernel \
       provenance, plus the per-ACK lockstep drivers."
    in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let doc =
    "Differential conformance: packet simulations vs fluid-model tolerance \
     bands, fault-recovery checks and golden-trace regression (or, with \
     $(b,--diff), float vs fixed-point congestion control)."
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const run_check $ only $ out_opt $ update_golden $ golden_dir $ diff)

(* --- main ------------------------------------------------------------------ *)

let () =
  let doc = "reproduction of 'MPTCP is not Pareto-Optimal' (OLIA)" in
  let info = Cmd.info "olia_sim" ~version:"1.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group info ~default
          [
            list_cmd; run_cmd; sweep_cmd; report_cmd; scenario_a_cmd;
            scenario_b_cmd; scenario_c_cmd; trace_cmd; fattree_cmd;
            fattree_dynamic_cmd; responsiveness_cmd; wireless_cmd; fluid_cmd;
            shard_invariance_cmd; check_cmd;
          ]))
