(* olia_lint — the repo's own static-analysis pass.

   Walks every .ml/.mli under the given roots (default: lib bin bench
   test), parses them with compiler-libs and enforces the invariant
   catalogue R1-R8 described in docs/LINT.md. Exit status: 0 clean,
   1 findings, 2 usage error. *)

let usage = "usage: olia_lint [--json] [--rules] [DIR|FILE ...]"

let print_rules () =
  List.iter
    (fun r ->
      Printf.printf "%-8s %s\n" (Repro_lint.Finding.rule_name r)
        (Repro_lint.Finding.rule_doc r))
    Repro_lint.Finding.[ R1; R2; R3; R4; R5; R6; R7; R8; Parse; Suppress ]

let () =
  let json = ref false in
  let rules = ref false in
  let roots = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " report findings as JSON on stdout");
      ("--rules", Arg.Set rules, " print the rule catalogue and exit");
    ]
  in
  (try Arg.parse spec (fun d -> roots := d :: !roots) usage
   with Arg.Bad msg ->
     prerr_endline msg;
     exit 2);
  if !rules then (
    print_rules ();
    exit 0);
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | r -> r
  in
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
   | [] -> ()
   | missing ->
     Printf.eprintf "olia_lint: no such file or directory: %s\n"
       (String.concat ", " missing);
     exit 2);
  let files, findings = Repro_lint.Engine.lint_paths roots in
  if !json then
    print_endline
      (Repro_stats.Json.to_string
         (Repro_lint.Report.to_json ~files findings))
  else print_string (Repro_lint.Report.to_text ~files findings);
  exit (if findings = [] then 0 else 1)
