type policy = {
  check_period : float;
  discard_factor : float;
  min_loss : float;
  min_active : int;
  reprobe_period : float;
}

let default_policy =
  {
    check_period = 5.;
    discard_factor = 8.;
    min_loss = 0.02;
    min_active = 1;
    reprobe_period = 30.;
  }

type t = {
  sim : Sim.t;
  policy : policy;
  conn : Tcp.conn;
  last_acked : int array;
  last_rtx : int array;
  disabled_at : float array;
  mutable discards : int;
  mutable reprobes : int;
}

(* loss-event estimate over the last period: retransmissions relative to
   delivered data *)
let period_loss t idx =
  let acked = Tcp.subflow_acked t.conn idx - t.last_acked.(idx) in
  let rtx = Tcp.subflow_retransmits t.conn idx - t.last_rtx.(idx) in
  if acked + rtx = 0 then 0.
  else float_of_int rtx /. float_of_int (acked + rtx)

let snapshot t =
  for idx = 0 to Tcp.subflow_count t.conn - 1 do
    t.last_acked.(idx) <- Tcp.subflow_acked t.conn idx;
    t.last_rtx.(idx) <- Tcp.subflow_retransmits t.conn idx
  done

let active_count t =
  let n = ref 0 in
  for idx = 0 to Tcp.subflow_count t.conn - 1 do
    if Tcp.subflow_enabled t.conn idx then incr n
  done;
  !n

let check t =
  let n = Tcp.subflow_count t.conn in
  let losses = Array.init n (period_loss t) in
  let best = ref infinity in
  Array.iteri
    (fun idx l -> if Tcp.subflow_enabled t.conn idx && l < !best then best := l)
    losses;
  for idx = 0 to n - 1 do
    if Tcp.subflow_enabled t.conn idx then begin
      let bad =
        losses.(idx) > t.policy.min_loss
        && losses.(idx) > t.policy.discard_factor *. Stdlib.max !best 1e-4
      in
      if bad && active_count t > t.policy.min_active then begin
        Tcp.set_subflow_enabled t.conn idx false;
        t.disabled_at.(idx) <- Sim.now t.sim;
        t.discards <- t.discards + 1
      end
    end
    else if Sim.now t.sim -. t.disabled_at.(idx) >= t.policy.reprobe_period
    then begin
      Tcp.set_subflow_enabled t.conn idx true;
      t.reprobes <- t.reprobes + 1
    end
  done;
  snapshot t

let attach ~sim ~policy conn =
  let n = Tcp.subflow_count conn in
  let t =
    {
      sim;
      policy;
      conn;
      last_acked = Array.make n 0;
      last_rtx = Array.make n 0;
      disabled_at = Array.make n 0.;
      discards = 0;
      reprobes = 0;
    }
  in
  (* baseline the counters so the first period excludes history from
     before the manager was attached *)
  snapshot t;
  ignore
    (Sim.every ~src:"path_manager.check" sim policy.check_period (fun () ->
         check t)
      : Sim.Timer.t);
  t

let discards t = t.discards
let reprobes t = t.reprobes
