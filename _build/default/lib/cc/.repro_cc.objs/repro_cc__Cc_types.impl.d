lib/cc/cc_types.ml: Array
