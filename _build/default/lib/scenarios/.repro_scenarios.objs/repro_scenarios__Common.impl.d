lib/scenarios/common.ml: Array List Queue Repro_cc Repro_netsim Sim Stdlib Tcp
