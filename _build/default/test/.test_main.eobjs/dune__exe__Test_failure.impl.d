test/test_failure.ml: Alcotest Lia Mptcp_repro Olia Packet Path_manager Pipe Printf Queue Reno Rng Sim Tcp
