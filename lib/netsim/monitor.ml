type probe = { name : string; sample : unit -> float }

type t = {
  sim : Sim.t;
  period : float;
  mutable probes : probe list;  (* reversed registration order *)
  mutable timer : Sim.Timer.t;
  table : (string, Repro_stats.Timeseries.t) Hashtbl.t;
}

let create ~sim ~period ?(start = 0.) ?(stop = infinity) () =
  if period <= 0. then invalid_arg "Monitor.create: period <= 0";
  let t = { sim; period; probes = []; timer = Sim.Timer.none;
            table = Hashtbl.create 8 } in
  let tick () =
    let now = Sim.now sim in
    List.iter
      (fun p ->
        Repro_stats.Timeseries.add (Hashtbl.find t.table p.name) ~time:now
          (p.sample ()))
      (List.rev t.probes);
    (* keep sampling as long as other events may still be scheduled *)
    if not (now +. period <= stop && Sim.pending sim > 0) then
      Sim.Timer.cancel sim t.timer
  in
  t.timer <- Sim.every ~src:"monitor.sample" ~start sim period tick;
  t

let series t name = Hashtbl.find t.table name
let names t = List.rev_map (fun p -> p.name) t.probes

let watch t name sample =
  if Hashtbl.mem t.table name then
    invalid_arg ("Monitor.watch: duplicate name " ^ name);
  Hashtbl.add t.table name (Repro_stats.Timeseries.create ());
  t.probes <- { name; sample } :: t.probes

let watch_cwnd t name conn idx =
  watch t name (fun () -> Tcp.subflow_cwnd conn idx)

let watch_goodput t name conn =
  let last = ref 0 in
  watch t name (fun () ->
      let acked = Tcp.total_acked conn in
      let delta = acked - !last in
      last := acked;
      float_of_int (delta * 8 * Packet.data_size) /. t.period /. 1e6)

(* The monitor double-checks what it samples: a probe reading broken
   queue state would otherwise be archived as a plausible data point. *)
let watch_backlog t name q =
  watch t name (fun () ->
      let b = Queue.backlog q in
      if Invariant.enabled () then
        Invariant.require
          (b >= 0 && b <= Queue.capacity q)
          (Printf.sprintf "monitor %s: sampled backlog %d outside [0, %d]"
             name b (Queue.capacity q));
      float_of_int b)

let watch_drops t name q =
  watch t name (fun () -> float_of_int (Queue.drops q))

let watch_loss t name q =
  watch t name (fun () ->
      let p = Queue.loss_probability q in
      if Invariant.enabled () then
        Invariant.require
          (p >= 0. && p <= 1.)
          (Printf.sprintf "monitor %s: sampled loss probability %g outside \
                           [0, 1]" name p);
      p)

let to_csv t ~path =
  let names = names t in
  let columns = "time" :: names in
  let all = List.map (fun n -> Repro_stats.Timeseries.to_array (series t n)) names in
  match all with
  | [] -> Repro_stats.Csv.write_series ~path ~columns []
  | first :: _ ->
    let rows =
      Array.to_list
        (Array.mapi
           (fun i (time, _) ->
             time :: List.map (fun s -> if i < Array.length s then snd s.(i) else nan) all)
           first)
    in
    Repro_stats.Csv.write_series ~path ~columns rows
