lib/scenarios/scen_c.ml: Cbr Common List Path_manager Pipe Queue Repro_cc Repro_netsim Rng Sim Tcp
