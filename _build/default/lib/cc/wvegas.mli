(** wVegas (weighted Vegas; Cao, Xu, Fu 2012) — the delay-based coupled
    congestion control that ships alongside LIA/OLIA/BALIA in the Linux
    MPTCP stack; implemented here as a further extension point.

    Each subflow keeps its minimum observed RTT as [base_rtt] and
    estimates its backlog [diff = w·(1 − base_rtt/rtt)] in packets. The
    connection distributes a total backlog target of [total_alpha]
    packets across subflows in proportion to their rates; subflow windows
    grow by [1/w] per ACK while below their share and shrink by [1/w]
    while above it. Losses halve the window as usual. *)

val create : ?total_alpha:float -> unit -> Cc_types.t
(** [total_alpha] defaults to 10 packets. Raises [Invalid_argument] if
    non-positive. *)
