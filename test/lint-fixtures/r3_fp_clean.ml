(* The clean twin of r3_fp_broken.ml: the update path is pure integer
   arithmetic and every float touch lives in a [@olia.float_boundary]
   adapter, so the R3-fp sub-check stays silent. *)

let scale = 10
let rate w rtt_us = if rtt_us <= 0 then 0 else (w lsl scale) / rtt_us
let cnt w rtt_us = rate w rtt_us * rate w rtt_us

let[@olia.float_boundary] sync w =
  let scaled = int_of_float ((w *. 1024.) +. 0.5) in
  if scaled < 1 then 1 else scaled

let[@olia.float_boundary] to_surface w = float_of_int w /. 1024.
