open Mptcp_repro.Cc

let check_close eps = Alcotest.(check (float eps))

let view cwnd rtt = { Types.cwnd; rtt }

(* --- Reno ----------------------------------------------------------- *)

let test_reno_increase () =
  let cc = Reno.create () in
  let views = [| view 10. 0.1 |] in
  check_close 1e-12 "1/w" 0.1 (cc.Types.increase ~views ~idx:0)

let test_reno_halves () =
  let cc = Reno.create () in
  let views = [| view 10. 0.1 |] in
  check_close 1e-12 "w/2" 5. (cc.Types.loss_decrease ~views ~idx:0)

let test_reno_independent_subflows () =
  let cc = Reno.create () in
  let views = [| view 10. 0.1; view 100. 0.1 |] in
  check_close 1e-12 "only own window matters" 0.1
    (cc.Types.increase ~views ~idx:0)

let test_reno_keeps_slow_start () =
  let cc = Reno.create () in
  Alcotest.(check bool) "no multipath ssthresh clamp" true
    (cc.Types.multipath_initial_ssthresh = None)

(* --- LIA (Eq. 1) ----------------------------------------------------- *)

let test_lia_equal_paths () =
  (* two equal paths, equal rtt: coupled term = (w/r²)/(2w/r)² = 1/(4w) *)
  let views = [| view 10. 0.1; view 10. 0.1 |] in
  check_close 1e-12 "coupled" (1. /. 40.) (Lia.increase_formula views 0)

let test_lia_capped_by_own_window () =
  (* a tiny own window makes 1/w_r the binding term *)
  let views = [| view 1.; view 100. |] in
  ignore views;
  let views = [| view 1. 0.1; view 1. 0.1 |] in
  (* coupled term = (10)/(20)² = ... with w=1: (1/0.01)/(1/0.1+1/0.1)² =
     100/400 = 0.25 < 1/w = 1 -> coupled wins *)
  check_close 1e-12 "coupled smaller" 0.25 (Lia.increase_formula views 0);
  let views = [| view 0.5 0.1; view 0.5 0.1 |] in
  (* coupled = 50/100 = 0.5; own cap = 1/0.5 = 2 -> still coupled *)
  check_close 1e-12 "coupled" 0.5 (Lia.increase_formula views 0)

let test_lia_cap_applies () =
  (* a high-quality low-rtt sibling path can push the coupled term above
     1/w on the large-window path; the min of Eq. 1 must bind *)
  let views = [| view 1. 0.001; view 100. 1. |] in
  let coupled =
    let num = 1. /. (0.001 ** 2.) in
    let denom = (1. /. 0.001) +. (100. /. 1.) in
    num /. (denom *. denom)
  in
  Alcotest.(check bool) "sanity: coupled > 1/w on path 1" true
    (coupled > 1. /. 100.);
  check_close 1e-9 "cap 1/w" (1. /. 100.) (Lia.increase_formula views 1)

let test_lia_rtt_compensation () =
  (* lower-rtt path gets relatively larger increase in the coupled term *)
  let views = [| view 10. 0.05; view 10. 0.2 |] in
  let i0 = Lia.increase_formula views 0 and i1 = Lia.increase_formula views 1 in
  Alcotest.(check bool) "same coupled increase for both" true (i0 = i1)

let test_lia_aggressiveness_bounded_by_tcp () =
  (* goal 2: never more aggressive than TCP on any path *)
  let views = [| view 3. 0.1; view 7. 0.15; view 2. 0.3 |] in
  let cc = Lia.create () in
  Array.iteri
    (fun idx v ->
      Alcotest.(check bool) "<= 1/w" true
        (cc.Types.increase ~views ~idx <= (1. /. v.Types.cwnd) +. 1e-12))
    views

let prop_lia_increase_positive_and_bounded =
  QCheck.Test.make ~name:"lia: increase in (0, 1/w]" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 5)
        (pair (float_range 1. 100.) (float_range 0.01 1.)))
    (fun specs ->
      let views = Array.of_list (List.map (fun (w, r) -> view w r) specs) in
      let ok = ref true in
      Array.iteri
        (fun idx v ->
          let i = Lia.increase_formula views idx in
          if not (i > 0. && i <= (1. /. v.Types.cwnd) +. 1e-9) then ok := false)
        views;
      !ok)

(* --- OLIA (Eqs. 5-6) -------------------------------------------------- *)

let test_olia_single_path_is_reno () =
  let cc = Olia.create () in
  let views = [| view 8. 0.1 |] in
  check_close 1e-12 "1/w" 0.125 (cc.Types.increase ~views ~idx:0)

let test_olia_equal_paths_kelly_term () =
  (* equal windows and rtts: alpha = 0, increase = (w/r²)/(2w/r)² *)
  let cc = Olia.create () in
  let views = [| view 10. 0.1; view 10. 0.1 |] in
  check_close 1e-12 "kelly term" (1. /. 40.) (cc.Types.increase ~views ~idx:0)

let test_olia_ssthresh_clamp () =
  let cc = Olia.create () in
  Alcotest.(check bool) "1 MSS" true
    (cc.Types.multipath_initial_ssthresh = Some 1.)

let test_olia_alpha_redistributes () =
  (* path 0: big window, worse quality; path 1: small window, best ell.
     alpha must be negative on 0 and positive on 1 (Eq. 6). *)
  let ell = [| 10.; 1000. |] in
  let views = [| view 20. 0.1; view 2. 0.1 |] in
  let alpha = Olia.alpha_values ~ell views in
  check_close 1e-12 "sum zero" 0. (alpha.(0) +. alpha.(1));
  check_close 1e-12 "alpha best" 0.5 alpha.(1);
  check_close 1e-12 "alpha max-window" (-0.5) alpha.(0)

let test_olia_alpha_zero_when_aligned () =
  (* best path also has the max window: B \ M = empty, all alphas 0 *)
  let ell = [| 1000.; 10. |] in
  let views = [| view 20. 0.1; view 2. 0.1 |] in
  let alpha = Olia.alpha_values ~ell views in
  check_close 1e-12 "a0" 0. alpha.(0);
  check_close 1e-12 "a1" 0. alpha.(1)

let test_olia_alpha_three_paths () =
  (* |Ru| = 3: positive alpha is (1/3)/|B\M| *)
  let ell = [| 10.; 900.; 900. |] in
  let views = [| view 20. 0.1; view 2. 0.1; view 2. 0.1 |] in
  let alpha = Olia.alpha_values ~ell views in
  check_close 1e-12 "split between two best" (1. /. 6.) alpha.(1);
  check_close 1e-12 "split between two best" (1. /. 6.) alpha.(2);
  check_close 1e-12 "minus on max" (-1. /. 3.) alpha.(0)

let test_olia_ell_counters () =
  let cc, probe = Olia.create_instrumented () in
  cc.Types.on_ack ~idx:0 ~acked:10.;
  cc.Types.on_ack ~idx:0 ~acked:5.;
  let p = probe 1 in
  check_close 1e-12 "ell2 accumulates" 15. p.Olia.ell.(0);
  cc.Types.on_loss ~idx:0;
  let p = probe 1 in
  (* after a loss, ell1 holds the previous count and ell2 restarts *)
  check_close 1e-12 "ell = max(ell1, ell2)" 15. p.Olia.ell.(0);
  cc.Types.on_ack ~idx:0 ~acked:30.;
  let p = probe 1 in
  check_close 1e-12 "ell2 can exceed ell1" 30. p.Olia.ell.(0)

let test_olia_negative_increase_possible () =
  (* on a max-window path with a better path elsewhere, Eq. 5 can shrink
     the window: kelly term + alpha/w < 0 *)
  let cc, _ = Olia.create_instrumented () in
  (* build ell state: path 1 presumably best *)
  cc.Types.on_ack ~idx:0 ~acked:10.;
  cc.Types.on_ack ~idx:1 ~acked:1000.;
  (* w0 = 3, w1 = 2: kelly = 3/25 = 0.12, alpha/w = -0.5/3 ≈ -0.167 *)
  let views = [| view 3. 0.1; view 2. 0.1 |] in
  let inc = cc.Types.increase ~views ~idx:0 in
  Alcotest.(check bool) "negative" true (inc < 0.)

let test_olia_halves_on_loss () =
  let cc = Olia.create () in
  let views = [| view 12. 0.1; view 4. 0.1 |] in
  check_close 1e-12 "w/2" 6. (cc.Types.loss_decrease ~views ~idx:0)

let prop_olia_alpha_sums_to_zero =
  QCheck.Test.make ~name:"olia: alpha always sums to zero" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 2 6)
        (triple (float_range 1. 50.) (float_range 0.01 0.5)
           (float_range 1. 1e4)))
    (fun specs ->
      let views =
        Array.of_list (List.map (fun (w, r, _) -> view w r) specs)
      in
      let ell = Array.of_list (List.map (fun (_, _, e) -> e) specs) in
      let alpha = Olia.alpha_values ~ell views in
      abs_float (Array.fold_left ( +. ) 0. alpha) < 1e-9)

let prop_olia_alpha_nonnegative_off_m =
  QCheck.Test.make ~name:"olia: alpha negative only on max-window paths"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 2 6)
        (triple (float_range 1. 50.) (float_range 0.01 0.5)
           (float_range 1. 1e4)))
    (fun specs ->
      let views =
        Array.of_list (List.map (fun (w, r, _) -> view w r) specs)
      in
      let ell = Array.of_list (List.map (fun (_, _, e) -> e) specs) in
      let alpha = Olia.alpha_values ~ell views in
      let wmax =
        Array.fold_left (fun a v -> Stdlib.max a v.Types.cwnd) 0. views
      in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          if a < -1e-12 && views.(i).Types.cwnd < wmax *. (1. -. 1e-6) then
            ok := false)
        alpha;
      !ok)

(* --- Coupled family --------------------------------------------------- *)

let test_coupled_eps2_is_reno () =
  let cc = Coupled.create ~epsilon:2. in
  let views = [| view 10. 0.1; view 5. 0.1 |] in
  check_close 1e-12 "1/w" 0.1 (cc.Types.increase ~views ~idx:0)

let test_coupled_eps0_kelly () =
  (* epsilon 0: w_r / (sum w)² *)
  let cc = Coupled.create ~epsilon:0. in
  let views = [| view 10. 0.1; view 10. 0.1 |] in
  check_close 1e-12 "w/(sum)²" (10. /. 400.) (cc.Types.increase ~views ~idx:0)

let test_coupled_eps1_semicoupled () =
  let cc = Coupled.create ~epsilon:1. in
  let views = [| view 10. 0.1; view 30. 0.1 |] in
  check_close 1e-12 "1/sum" (1. /. 40.) (cc.Types.increase ~views ~idx:0)

let test_coupled_rejects_bad_eps () =
  Alcotest.check_raises "eps 3"
    (Invalid_argument "Coupled.create: epsilon must be in [0, 2]") (fun () ->
      ignore (Coupled.create ~epsilon:3.))

(* --- BALIA ------------------------------------------------------------ *)

let test_balia_symmetric_matches_structure () =
  (* equal paths: alpha_r = 1, increase = x/(rtt·(2x)²)·1·1 = 1/(4·w·... ) *)
  let cc = Balia.create () in
  let views = [| view 10. 0.1; view 10. 0.1 |] in
  (* x = 100; increase = (100/0.1)/(200²)·(1)·(1) = 1000/40000 = 0.025 *)
  check_close 1e-12 "symmetric" 0.025 (cc.Types.increase ~views ~idx:0)

let test_balia_loss_decrease_bounded () =
  let cc = Balia.create () in
  (* very asymmetric: alpha large, decrease capped at 1.5·w/2 *)
  let views = [| view 2. 0.1; view 50. 0.1 |] in
  check_close 1e-12 "capped" (2. /. 2. *. 1.5)
    (cc.Types.loss_decrease ~views ~idx:0);
  (* best path: alpha = 1, plain halving *)
  check_close 1e-12 "halving on best" 25.
    (cc.Types.loss_decrease ~views ~idx:1)

(* --- Registry ---------------------------------------------------------- *)

let test_registry_known () =
  List.iter
    (fun name ->
      let cc = Registry.create name in
      Alcotest.(check string) "name round trip" name cc.Types.name)
    [ "reno"; "lia"; "olia"; "olia-fp"; "balia"; "balia-fp" ]

let test_registry_coupled () =
  let cc = Registry.create "coupled:0.5" in
  Alcotest.(check string) "name" "coupled(eps=0.5)" cc.Types.name

let test_registry_unknown () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Registry.create: unknown algorithm nope") (fun () ->
      ignore (Registry.create "nope"));
  Alcotest.check_raises "bad eps"
    (Invalid_argument "Registry.create: bad epsilon in coupled:x") (fun () ->
      ignore (Registry.create "coupled:x"))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "reno: 1/w increase" `Quick test_reno_increase;
    Alcotest.test_case "reno: halves on loss" `Quick test_reno_halves;
    Alcotest.test_case "reno: subflow independence" `Quick
      test_reno_independent_subflows;
    Alcotest.test_case "reno: regular slow start" `Quick
      test_reno_keeps_slow_start;
    Alcotest.test_case "lia: equal paths" `Quick test_lia_equal_paths;
    Alcotest.test_case "lia: coupled term" `Quick test_lia_capped_by_own_window;
    Alcotest.test_case "lia: 1/w cap applies" `Quick test_lia_cap_applies;
    Alcotest.test_case "lia: rtt compensation" `Quick test_lia_rtt_compensation;
    Alcotest.test_case "lia: goal 2 (never beats TCP)" `Quick
      test_lia_aggressiveness_bounded_by_tcp;
    q prop_lia_increase_positive_and_bounded;
    Alcotest.test_case "olia: single path degrades to reno" `Quick
      test_olia_single_path_is_reno;
    Alcotest.test_case "olia: kelly term on ties" `Quick
      test_olia_equal_paths_kelly_term;
    Alcotest.test_case "olia: multipath ssthresh = 1" `Quick
      test_olia_ssthresh_clamp;
    Alcotest.test_case "olia: alpha redistributes (Eq. 6)" `Quick
      test_olia_alpha_redistributes;
    Alcotest.test_case "olia: alpha zero when aligned" `Quick
      test_olia_alpha_zero_when_aligned;
    Alcotest.test_case "olia: alpha three paths" `Quick
      test_olia_alpha_three_paths;
    Alcotest.test_case "olia: inter-loss counters" `Quick test_olia_ell_counters;
    Alcotest.test_case "olia: negative increase on crowded path" `Quick
      test_olia_negative_increase_possible;
    Alcotest.test_case "olia: unmodified TCP decrease" `Quick
      test_olia_halves_on_loss;
    q prop_olia_alpha_sums_to_zero;
    q prop_olia_alpha_nonnegative_off_m;
    Alcotest.test_case "coupled: eps=2 is reno" `Quick test_coupled_eps2_is_reno;
    Alcotest.test_case "coupled: eps=0 is kelly" `Quick test_coupled_eps0_kelly;
    Alcotest.test_case "coupled: eps=1 semicoupled" `Quick
      test_coupled_eps1_semicoupled;
    Alcotest.test_case "coupled: rejects bad eps" `Quick
      test_coupled_rejects_bad_eps;
    Alcotest.test_case "balia: symmetric increase" `Quick
      test_balia_symmetric_matches_structure;
    Alcotest.test_case "balia: loss decrease capped" `Quick
      test_balia_loss_decrease_bounded;
    Alcotest.test_case "registry: known names" `Quick test_registry_known;
    Alcotest.test_case "registry: coupled parsing" `Quick test_registry_coupled;
    Alcotest.test_case "registry: errors" `Quick test_registry_unknown;
  ]
