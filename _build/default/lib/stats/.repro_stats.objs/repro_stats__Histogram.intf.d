lib/stats/histogram.mli:
