examples/custom_topology_example.mli:
