(* Negative twin of r9_broken.ml: the same shape of hot path, but the
   helper only does arithmetic and the one allocation sits behind the
   Invariant.enabled guard, so R9 must stay silent. *)

let bump x acc = x + acc

let[@olia.alloc_free] dispatch x acc =
  if Invariant.enabled () then failwith (string_of_int x);
  bump x acc
