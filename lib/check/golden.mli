(** Golden-trace regression tests.

    Three small canonical simulations — a Reno transfer through a tight
    droptail bottleneck, an OLIA transfer over two asymmetric paths, and
    a finite transfer through a flapping link — have their full
    {!Repro_obs.Trace} event streams recorded as JSONL under
    [test/golden/]. A {!check} re-runs the scenario and diffs the
    semantic event sequence against the recorded one, zeroing all
    timestamps first: intentional behaviour changes require
    re-recording with [olia_sim check --update-golden]. *)

val names : string list
(** The canonical scenario names (also the golden file basenames). *)

val record : string -> Repro_obs.Trace.event list
(** Run a canonical scenario with a capturing trace sink and return its
    event stream. Raises [Invalid_argument] on an unknown name.
    Installs and removes the process-global sink — not for use around
    concurrent traced runs. *)

val update : dir:string -> string -> unit
(** Re-record one scenario's golden file ([<dir>/<name>.jsonl]). *)

val update_all : dir:string -> unit

val check : dir:string -> string -> (unit, string) result
(** Re-run the scenario and compare against the golden file. The error
    carries a first-divergence diagnostic (event index, golden vs got,
    both with timestamps zeroed). *)
