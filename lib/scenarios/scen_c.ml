open Repro_netsim

type config = {
  n1 : int;
  n2 : int;
  c1_mbps : float;
  c2_mbps : float;
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
  background_mbps : float;
  with_path_manager : bool;
}

let default =
  {
    n1 = 10;
    n2 = 10;
    c1_mbps = 1.;
    c2_mbps = 1.;
    algo = "olia";
    duration = 120.;
    warmup = 30.;
    seed = 1;
    background_mbps = 0.;
    with_path_manager = false;
  }

type result = {
  norm_multipath : float;
  norm_single : float;
  p1 : float;
  p2 : float;
  obs : Repro_obs.Meter.report;
}

let run cfg =
  let meter = Repro_obs.Meter.start () in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let rate1 = float_of_int cfg.n1 *. cfg.c1_mbps *. 1e6 in
  let rate2 = float_of_int cfg.n2 *. cfg.c2_mbps *. 1e6 in
  let mk_queue rate name =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:rate
      ~buffer_pkts:(Common.bottleneck_buffer ~rate_bps:rate)
      ~discipline:(Common.red_for ~rate_bps:rate) ~name ()
  in
  let ap1 = mk_queue rate1 "AP1" and ap2 = mk_queue rate2 "AP2" in
  let one_way = Common.paper_propagation_delay /. 2. in
  let fwd_pipe = Pipe.create ~sim ~delay:one_way in
  let rev_pipe = Pipe.create ~sim ~delay:one_way in
  let rev = [| Pipe.hop rev_pipe |] in
  let factory = Common.factory_of_name cfg.algo in
  let multipath =
    List.init cfg.n1 (fun i ->
        let paths =
          [|
            { Tcp.fwd = [| Queue.hop ap1; Pipe.hop fwd_pipe |]; rev };
            { Tcp.fwd = [| Queue.hop ap2; Pipe.hop fwd_pipe |]; rev };
          |]
        in
        let conn =
          Tcp.create ~sim ~cc:(factory ()) ~paths ~start:(Rng.uniform rng 2.)
            ~flow_id:i ()
        in
        if cfg.with_path_manager then
          ignore
            (Path_manager.attach ~sim ~policy:Path_manager.default_policy conn);
        conn)
  in
  if cfg.background_mbps > 0. then
    ignore
      (Cbr.create ~sim ~rate_bps:(cfg.background_mbps *. 1e6)
         ~route:[| Queue.hop ap2; Cbr.blackhole |]
         ~flow_id:(-1) ());
  let single =
    List.init cfg.n2 (fun i ->
        let paths =
          [| { Tcp.fwd = [| Queue.hop ap2; Pipe.hop fwd_pipe |]; rev } |]
        in
        Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths
          ~start:(Rng.uniform rng 2.) ~flow_id:(cfg.n1 + i) ())
  in
  ignore
    (Sim.schedule_at ~src:"scenario.warmup" sim cfg.warmup (fun () ->
         Queue.reset_stats ap1;
         Queue.reset_stats ap2)
      : Sim.Timer.t);
  let measured =
    Common.measure_conns ~sim ~warmup:cfg.warmup ~duration:cfg.duration
      (multipath @ single)
  in
  let rates = List.map (fun m -> m.Common.goodput_mbps) measured in
  let rm, rs = Common.split_at cfg.n1 rates in
  let mm, ms = Common.split_at cfg.n1 measured in
  {
    norm_multipath = Common.mean rm /. cfg.c1_mbps;
    norm_single = Common.mean rs /. cfg.c2_mbps;
    p1 = Queue.loss_probability ap1;
    p2 = Queue.loss_probability ap2;
    obs =
      Common.observe ~meter ~sim
        ~subflow_goodput_bps:
          (Common.subflow_goodput_bps ~label:"multipath" ~subflows:2 mm
          @ Common.subflow_goodput_bps ~label:"single" ~subflows:1 ms)
        [ ap1; ap2 ];
  }

let replicate cfg ~seeds = List.map (fun seed -> run { cfg with seed }) seeds
