lib/cc/registry.ml: Balia Coupled Cubic Lia Olia Reno Scalable String Wvegas
