(** Generic undirected multigraph with shortest-path routing, used to
    build arbitrary testbed topologies beyond the hand-wired scenarios
    (Click's role in the paper's testbed).

    Vertices are dense integers [0 .. vertex_count-1]; each edge carries a
    client payload (typically a [Duplex.t]) and a weight. *)

type 'a t

val create : vertices:int -> 'a t
(** An edgeless graph. Raises [Invalid_argument] if [vertices <= 0]. *)

val vertex_count : 'a t -> int
val edge_count : 'a t -> int

val add_edge : 'a t -> u:int -> v:int -> ?weight:float -> 'a -> int
(** Add an undirected edge carrying a payload; returns its edge id.
    Parallel edges and self-loops are rejected
    ([Invalid_argument]). Default weight 1. *)

val edge_payload : 'a t -> int -> 'a
val edge_endpoints : 'a t -> int -> int * int
val neighbors : 'a t -> int -> (int * int) list
(** [(neighbor, edge id)] pairs. *)

val find_edge : 'a t -> u:int -> v:int -> int option
(** The edge joining [u] and [v], if any. *)

type hop = { edge : int; from_u_to_v : bool }
(** One step of a path: the edge taken and its direction relative to the
    stored endpoints. *)

val shortest_path : 'a t -> src:int -> dst:int -> hop list option
(** Dijkstra by edge weight; [None] if disconnected, [Some []] if
    [src = dst]. *)

val k_shortest_paths : 'a t -> src:int -> dst:int -> k:int -> hop list list
(** Up to [k] loop-free paths in non-decreasing weight order (Yen's
    algorithm). *)

val edge_disjoint_paths : 'a t -> src:int -> dst:int -> hop list list
(** A maximal set of pairwise edge-disjoint shortest-ish paths, greedily:
    repeatedly take a shortest path and remove its edges. The natural
    notion of "independent MPTCP subflow paths". *)

val path_weight : 'a t -> hop list -> float
