lib/scenarios/two_bottleneck.ml: Array Common List Pipe Queue Repro_cc Repro_netsim Repro_stats Rng Sim Tcp
