lib/fluid/network_model.mli:
