(** Fixed propagation delay element (htsim's "pipe"): forwards every
    packet after a constant latency, with unlimited capacity. *)

type t

val create : sim:Sim.t -> delay:float -> t
(** [delay] in seconds; must be non-negative. *)

val hop : t -> Packet.hop
(** The entry point, to place on routes. *)

val delay : t -> float
