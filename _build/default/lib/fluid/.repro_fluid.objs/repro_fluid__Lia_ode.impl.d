lib/fluid/lia_ode.ml: Array Network_model Stdlib Tcp_model
