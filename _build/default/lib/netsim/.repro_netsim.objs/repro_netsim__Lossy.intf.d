lib/netsim/lossy.mli: Packet Rng
