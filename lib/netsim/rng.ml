type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (int64 t) }

let[@inline] float t =
  Int64.to_float (Int64.shift_right_logical (int64 t) 11) /. 9007199254740992.

let uniform t bound = float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection-free modulo is fine here: bounds are tiny vs 2^63. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1)
                  (Int64.of_int bound))

let exponential t ~mean =
  let u = float t in
  (* Guard against log 0. *)
  -.mean *. log (1. -. (u *. 0.9999999999))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let derangement_permutation t n =
  if n < 2 then invalid_arg "Rng.derangement_permutation: n < 2";
  let rec try_once () =
    let p = permutation t n in
    let ok = ref true in
    Array.iteri (fun i v -> if i = v then ok := false) p;
    if !ok then p else try_once ()
  in
  try_once ()
