module Trace = Repro_obs.Trace

type red_params = {
  min_th : float;
  max_th : float;
  max_p : float;
  weight : float;
}

let paper_red ~link_mbps =
  let scale = link_mbps /. 10. in
  {
    min_th = 25. *. scale;
    max_th = 50. *. scale;
    max_p = 0.1;
    weight = 0.002;
  }

type discipline = Droptail | Red of red_params

(* Float-only so stores stay unboxed: [idle_since] is written on every
   busy->idle transition, which under light load is once per packet. *)
type red_state = { mutable avg_queue : float; mutable idle_since : float }

type t = {
  sim : Sim.t;
  rng : Rng.t;
  rate_bps : float;
  buffer_pkts : int;
  discipline : discipline;
  name : string;
  name_id : int; (* [Trace.intern name], so armed emission never touches the string *)
  (* FIFO as a ring over a preallocated array (the backlog is bounded
     by [buffer_pkts]), so enqueue/dequeue never allocate. [sentinel]
     parks empty slots so the ring doesn't retain forwarded packets. *)
  ring : Packet.t array;
  sentinel : Packet.t;
  mutable head : int; (* index of the oldest queued packet *)
  mutable count : int; (* queued packets, excluding the one in service *)
  mutable in_service : Packet.t; (* [sentinel] when not busy *)
  mutable on_served : unit -> unit; (* persistent serve-completion fn *)
  mutable busy : bool;
  mutable backlog : int;
  red : red_state;
  mutable red_count : int;  (* packets since the last RED drop *)
  mutable arrivals : int;
  mutable drops : int;
  mutable drops_overflow : int;  (* data drops from a full buffer *)
  mutable drops_red : int;  (* data drops from RED early marking *)
  mutable bytes_forwarded : int;
  (* conservation counters for Invariant checks: never reset by
     [reset_stats], so in = dropped + delivered + queued always holds *)
  mutable dbg_data_in : int;
  mutable dbg_data_dropped : int;
  mutable dbg_data_done : int;
  mutable dbg_service_data : bool;  (* is the packet in service Data? *)
}

let[@inline] service_time t (p : Packet.t) =
  float_of_int (8 * p.size_bytes) /. t.rate_bps

let is_data (p : Packet.t) =
  match p.kind with Packet.Data -> true | Packet.Ack -> false

(* Packet conservation and occupancy, checked at every state change
   when OLIA_DEBUG_INVARIANTS is set: every data packet that ever
   arrived is accounted for as dropped, delivered, queued or in
   service, and the backlog tracks the fifo exactly and never exceeds
   the buffer. *)
let check_invariants t =
  if Invariant.enabled () then begin
    Invariant.require
      (t.backlog >= 0 && t.backlog <= t.buffer_pkts)
      (Printf.sprintf "queue %s: backlog %d outside [0, %d]" t.name t.backlog
         t.buffer_pkts);
    Invariant.require
      (t.backlog = t.count + (if t.busy then 1 else 0))
      (Printf.sprintf
         "queue %s: backlog %d disagrees with fifo length %d (busy %b)"
         t.name t.backlog t.count t.busy);
    let queued_data = ref (if t.dbg_service_data then 1 else 0) in
    let cap = Array.length t.ring in
    for i = 0 to t.count - 1 do
      if is_data t.ring.((t.head + i) mod cap) then incr queued_data
    done;
    Invariant.require
      (t.dbg_data_in = t.dbg_data_dropped + t.dbg_data_done + !queued_data)
      (Printf.sprintf
         "queue %s: data packets not conserved (in %d <> dropped %d + \
          delivered %d + queued %d)"
         t.name t.dbg_data_in t.dbg_data_dropped t.dbg_data_done !queued_data)
  end

let[@olia.alloc_free] rec serve t =
  if t.count = 0 then begin
    t.busy <- false;
    t.red.idle_since <- Sim.now t.sim
  end
  else begin
    let p = t.ring.(t.head) in
    t.ring.(t.head) <- t.sentinel;
    t.head <- (t.head + 1) mod Array.length t.ring;
    t.count <- t.count - 1;
    t.busy <- true;
    t.in_service <- p;
    t.dbg_service_data <- is_data p;
    ignore
      (Sim.schedule_after ~src:"queue.serve" t.sim (service_time t p)
         t.on_served
        : Sim.Timer.t)
  end

and[@olia.alloc_free] finish_service t =
  let p = t.in_service in
  t.in_service <- t.sentinel;
  t.backlog <- t.backlog - 1;
  t.bytes_forwarded <- t.bytes_forwarded + p.size_bytes;
  if is_data p then t.dbg_data_done <- t.dbg_data_done + 1;
  t.dbg_service_data <- false;
  if Trace.enabled () then
    Trace.pkt_forward ~time:(Sim.now t.sim) ~queue:t.name_id ~flow:p.flow
      ~subflow:p.subflow ~seq:p.seq
      ~kind:(Packet.kind_code p.kind)
      ~bytes:p.size_bytes
      ~qdelay:(Sim.now t.sim -. p.times.enqueued_at);
  Packet.forward p;
  serve t;
  check_invariants t

let create ~sim ~rng ~rate_bps ~buffer_pkts ~discipline ?(name = "queue") () =
  if rate_bps <= 0. then invalid_arg "Queue.create: rate must be > 0";
  if buffer_pkts <= 0 then invalid_arg "Queue.create: buffer must be > 0";
  let sentinel = Packet.sentinel () in
  let t =
    {
      sim;
      rng;
      rate_bps;
      buffer_pkts;
      discipline;
      name;
      name_id = Trace.intern name;
      ring = Array.make buffer_pkts sentinel;
      sentinel;
      head = 0;
      count = 0;
      in_service = sentinel;
      on_served = (fun () -> ());
      busy = false;
      backlog = 0;
      red = { avg_queue = 0.; idle_since = 0. };
      red_count = -1;
      arrivals = 0;
      drops = 0;
      drops_overflow = 0;
      drops_red = 0;
      bytes_forwarded = 0;
      dbg_data_in = 0;
      dbg_data_dropped = 0;
      dbg_data_done = 0;
      dbg_service_data = false;
    }
  in
  t.on_served <- (fun () -> finish_service t);
  t

let[@inline] red_drop_probability params avg =
  if avg < params.min_th then 0.
  else if avg < params.max_th then
    params.max_p *. (avg -. params.min_th) /. (params.max_th -. params.min_th)
  else if avg < 2. *. params.max_th then
    params.max_p +. ((1. -. params.max_p) *. (avg -. params.max_th)
                     /. params.max_th)
  else 1.

let red_decides_drop t params =
  (* EWMA over the instantaneous backlog, updated at each arrival. During
     idle periods the average decays as if small packets had been served
     back-to-back (Floyd & Jacobson's idle handling), so a drained queue
     does not keep dropping based on a stale average. *)
  if (not t.busy) && t.backlog = 0 then begin
    let idle = Sim.now t.sim -. t.red.idle_since in
    let pkt_time = float_of_int (8 * Packet.data_size) /. t.rate_bps in
    if idle > 0. && pkt_time > 0. then
      t.red.avg_queue <-
        t.red.avg_queue *. ((1. -. params.weight) ** (idle /. pkt_time))
  end;
  t.red.avg_queue <-
    ((1. -. params.weight) *. t.red.avg_queue)
    +. (params.weight *. float_of_int t.backlog);
  let p_b = red_drop_probability params t.red.avg_queue in
  if p_b <= 0. then begin
    t.red_count <- -1;
    false
  end
  else if p_b >= 1. then begin
    t.red_count <- 0;
    true
  end
  else begin
    (* Floyd & Jacobson's inter-drop uniformization: spreading drops
       ~1/p_b packets apart avoids the clustered losses within one window
       that would make TCP halve once for several drops. *)
    t.red_count <- t.red_count + 1;
    let denom = 1. -. (float_of_int t.red_count *. p_b) in
    let p_a = if denom <= 0. then 1. else p_b /. denom in
    if Rng.float t.rng < p_a then begin
      t.red_count <- 0;
      true
    end
    else false
  end

let[@olia.alloc_free] enqueue t (p : Packet.t) =
  if is_data p then begin
    t.arrivals <- t.arrivals + 1;
    t.dbg_data_in <- t.dbg_data_in + 1
  end;
  let overflow = t.backlog >= t.buffer_pkts in
  let red_drop =
    (not overflow)
    && (match t.discipline with
       | Droptail -> false
       | Red params -> red_decides_drop t params)
  in
  if overflow || red_drop then begin
    if is_data p then begin
      t.drops <- t.drops + 1;
      if overflow then t.drops_overflow <- t.drops_overflow + 1
      else t.drops_red <- t.drops_red + 1;
      t.dbg_data_dropped <- t.dbg_data_dropped + 1
    end;
    if Trace.enabled () then
      Trace.pkt_drop ~time:(Sim.now t.sim) ~queue:t.name_id ~flow:p.flow
        ~subflow:p.subflow ~seq:p.seq
        ~kind:(Packet.kind_code p.kind)
        ~cause:(if overflow then Trace.Overflow else Trace.Red_early);
    Packet.free p
  end
  else begin
    p.times.enqueued_at <- Sim.now t.sim;
    t.ring.((t.head + t.count) mod Array.length t.ring) <- p;
    t.count <- t.count + 1;
    t.backlog <- t.backlog + 1;
    if Trace.enabled () then
      Trace.pkt_enqueue ~time:(Sim.now t.sim) ~queue:t.name_id ~flow:p.flow
        ~subflow:p.subflow ~seq:p.seq
        ~kind:(Packet.kind_code p.kind)
        ~backlog:t.backlog;
    if not t.busy then serve t
  end;
  check_invariants t

let hop t = enqueue t
let backlog t = t.backlog
let capacity t = t.buffer_pkts
let arrivals t = t.arrivals
let drops t = t.drops
let drops_overflow t = t.drops_overflow
let drops_red t = t.drops_red

let loss_probability t =
  if t.arrivals = 0 then 0.
  else float_of_int t.drops /. float_of_int t.arrivals

let bytes_forwarded t = t.bytes_forwarded

let utilization t ~since ~now =
  let dt = now -. since in
  if dt <= 0. then 0.
  else float_of_int (8 * t.bytes_forwarded) /. (t.rate_bps *. dt)

let reset_stats t =
  t.arrivals <- 0;
  t.drops <- 0;
  t.drops_overflow <- 0;
  t.drops_red <- 0;
  t.bytes_forwarded <- 0

let name t = t.name
