(** Constant-bit-rate background traffic source: uncontrolled data packets
    injected at a fixed rate (the paper's §VII "background traffic"
    factor). CBR packets traverse a route like any other packet and are
    dropped or delivered without acknowledgments. *)

type t

val blackhole : Packet.hop
(** A terminal hop that absorbs packets; put it at the end of CBR
    routes. *)

val create :
  sim:Sim.t ->
  rate_bps:float ->
  route:Packet.hop array ->
  ?start:float ->
  ?stop:float ->
  flow_id:int ->
  unit ->
  t
(** Send MSS-sized packets back-to-back at [rate_bps] from [start]
    (default 0) until [stop] (default: forever). *)

val packets_sent : t -> int
