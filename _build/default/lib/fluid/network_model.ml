type link = { capacity : float; sharpness : float; scale : float }
type route = { links : int array; rtt : float }
type user = { routes : route array }
type t = { links : link array; users : user array }

let link ?(sharpness = 12.) ?(scale = 0.05) capacity =
  { capacity; sharpness; scale }

let route_count t =
  Array.fold_left (fun acc u -> acc + Array.length u.routes) 0 t.users

let validate t =
  let n = Array.length t.links in
  Array.iter
    (fun l ->
      if l.capacity <= 0. || l.sharpness <= 0. || l.scale <= 0. then
        invalid_arg "Network_model: non-positive link parameter")
    t.links;
  Array.iter
    (fun u ->
      if Array.length u.routes = 0 then
        invalid_arg "Network_model: user with no route";
      Array.iter
        (fun r ->
          if r.rtt <= 0. then invalid_arg "Network_model: non-positive rtt";
          Array.iter
            (fun l ->
              if l < 0 || l >= n then
                invalid_arg "Network_model: route references unknown link")
            r.links)
        u.routes)
    t.users

let link_loads t x =
  let loads = Array.make (Array.length t.links) 0. in
  Array.iteri
    (fun u user ->
      Array.iteri
        (fun r (route : route) ->
          Array.iter
            (fun l -> loads.(l) <- loads.(l) +. x.(u).(r))
            route.links)
        user.routes)
    t.users;
  loads

let link_loss l y =
  if y <= 0. then 0.
  else
    let p = l.scale *. ((y /. l.capacity) ** l.sharpness) in
    if p > 1. then 1. else p

let route_losses t link_p =
  Array.map
    (fun user ->
      Array.map
        (fun (route : route) ->
          let p =
            Array.fold_left (fun acc l -> acc +. link_p.(l)) 0. route.links
          in
          Stdlib.min p 1.)
        user.routes)
    t.users

(* ∫₀^y scale·(u/C)^B du = scale·y·(y/C)^B / (B+1); for loads beyond the
   point where p saturates at 1 we integrate the clamped curve exactly. *)
let link_cost l y =
  if y <= 0. then 0.
  else
    let y_sat = l.capacity *. ((1. /. l.scale) ** (1. /. l.sharpness)) in
    let smooth y = l.scale *. y *. ((y /. l.capacity) ** l.sharpness)
                   /. (l.sharpness +. 1.) in
    if y <= y_sat then smooth y else smooth y_sat +. (y -. y_sat)

let congestion_cost t x =
  let loads = link_loads t x in
  let acc = ref 0. in
  Array.iteri (fun i l -> acc := !acc +. link_cost l loads.(i)) t.links;
  !acc

let weighted_total user xu =
  let acc = ref 0. in
  Array.iteri
    (fun r route -> acc := !acc +. (xu.(r) /. (route.rtt *. route.rtt)))
    user.routes;
  !acc

let utility_vstar t ~tau x =
  let user_terms = ref 0. in
  Array.iteri
    (fun u user ->
      let s = weighted_total user x.(u) in
      let term =
        if s <= 0. then neg_infinity
        else -1. /. (tau.(u) *. tau.(u) *. s)
      in
      user_terms := !user_terms +. term)
    t.users;
  !user_terms -. (0.5 *. congestion_cost t x)

let utility_v t x =
  let user_terms = ref 0. in
  Array.iteri
    (fun u user ->
      let rtt = user.routes.(0).rtt in
      let s = Array.fold_left ( +. ) 0. x.(u) in
      let term =
        if s <= 0. then neg_infinity else -1. /. (rtt *. rtt *. s)
      in
      user_terms := !user_terms +. term)
    t.users;
  !user_terms -. (0.5 *. congestion_cost t x)
