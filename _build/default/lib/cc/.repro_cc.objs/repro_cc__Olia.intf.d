lib/cc/olia.mli: Cc_types
