type params = { n1 : int; n2 : int; c1 : float; c2 : float; rtt : float }

type lia_point = {
  z : float;
  p1 : float;
  p2 : float;
  x1 : float;
  x2 : float;
  y : float;
  norm_type1 : float;
  norm_type2 : float;
}

let check { n1; n2; c1; c2; rtt } =
  if n1 <= 0 || n2 <= 0 then invalid_arg "Scenario_a: user counts must be > 0";
  if c1 <= 0. || c2 <= 0. then invalid_arg "Scenario_a: capacities must be > 0";
  if rtt <= 0. then invalid_arg "Scenario_a: rtt must be > 0"

let lia ({ n1; n2; c1; c2; rtt } as params) =
  check params;
  let ratio_n = float_of_int n1 /. float_of_int n2 in
  let target = c2 /. c1 in
  (* Eq. (10): z + z²/(1+2z²)·(N1/N2) = C2/C1, LHS strictly increasing. *)
  let f z = z +. (z *. z /. (1. +. (2. *. z *. z)) *. ratio_n) -. target in
  let z = Roots.find_increasing_root ~f () in
  let p1 = 2. /. ((rtt *. c1) ** 2.) in
  let p2 = p1 /. (z *. z) in
  (* LIA splits: x1+x2 = C1 and x2 = C1/(2 + p2/p1). *)
  let x2 = c1 /. (2. +. (p2 /. p1)) in
  let x1 = c1 -. x2 in
  let y = sqrt (2. /. p2) /. rtt in
  {
    z;
    p1;
    p2;
    x1;
    x2;
    y;
    norm_type1 = 1.;
    norm_type2 = y /. c2;
  }

type allocation = {
  type1_total : float;
  type2_total : float;
  norm1 : float;
  norm2 : float;
}

let optimum_with_probing ({ n1; n2; c1; c2; rtt } as params) =
  check params;
  let probe = Units.probe_rate ~rtt in
  let ratio_n = float_of_int n1 /. float_of_int n2 in
  let y = c2 -. (ratio_n *. probe) in
  {
    type1_total = c1;
    type2_total = y;
    norm1 = 1.;
    norm2 = y /. c2;
  }

let lia_allocation params =
  let pt = lia params in
  {
    type1_total = pt.x1 +. pt.x2;
    type2_total = pt.y;
    norm1 = pt.norm_type1;
    norm2 = pt.norm_type2;
  }
