(* Deliberately shard-unsafe code: toplevel mutable state reachable from
   the sharded runtime's window loop. test_lint feeds this content to the
   engine under the path lib/netsim/shard.ml, where [run_windows] and
   [deliver] are domain-spawning R10 roots; at its real path under test/
   the file is inert. *)

let cut_tally = ref 0
let deliver n = cut_tally := !cut_tally + n
let run_windows t = deliver t
