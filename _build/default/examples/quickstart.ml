(* Quickstart: one MPTCP connection over two bottleneck links, competing
   with a regular TCP flow on the second link.

   Build and run with:  dune exec examples/quickstart.exe *)

open Mptcp_repro.Netsim

let () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in

  (* Two 10 Mb/s bottlenecks with the paper's RED profile. *)
  let bottleneck name =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:10e6 ~buffer_pkts:300
      ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:10.))
      ~name ()
  in
  let link1 = bottleneck "link1" and link2 = bottleneck "link2" in

  (* 40 ms of one-way propagation in each direction (80 ms RTT). *)
  let fwd = Pipe.create ~sim ~delay:0.04 in
  let rev = Pipe.create ~sim ~delay:0.04 in
  let path_via q =
    { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |]; rev = [| Pipe.hop rev |] }
  in

  (* An MPTCP connection running OLIA over both links... *)
  let mptcp =
    Tcp.create ~sim ~cc:(Mptcp_repro.Cc.Olia.create ())
      ~paths:[| path_via link1; path_via link2 |]
      ~flow_id:0 ()
  in
  (* ...and a regular TCP flow on link 2. *)
  let tcp =
    Tcp.create ~sim
      ~cc:(Mptcp_repro.Cc.Reno.create ())
      ~paths:[| path_via link2 |]
      ~start:0.5 ~flow_id:1 ()
  in

  Sim.run_until sim 60.;

  let mbps pkts = float_of_int (pkts * 1500 * 8) /. 60. /. 1e6 in
  Printf.printf "MPTCP (OLIA) over link1: %5.2f Mb/s\n"
    (mbps (Tcp.subflow_acked mptcp 0));
  Printf.printf "MPTCP (OLIA) over link2: %5.2f Mb/s\n"
    (mbps (Tcp.subflow_acked mptcp 1));
  Printf.printf "TCP          over link2: %5.2f Mb/s\n"
    (mbps (Tcp.total_acked tcp));
  Printf.printf "loss at link1: %.4f   loss at link2: %.4f\n"
    (Queue.loss_probability link1)
    (Queue.loss_probability link2);
  print_endline
    "OLIA concentrates on the uncontested link and leaves link2 to TCP."
