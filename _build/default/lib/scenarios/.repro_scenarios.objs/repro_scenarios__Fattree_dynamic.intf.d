lib/scenarios/fattree_dynamic.mli:
