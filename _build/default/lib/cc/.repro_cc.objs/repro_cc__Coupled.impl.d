lib/cc/coupled.ml: Array Cc_types Printf Stdlib
