type t = {
  sim : Sim.t;
  interval : float;
  route : Packet.hop array;
  stop : float;
  flow_id : int;
  mutable sent : int;
  mutable timer : Sim.Timer.t;
}

let blackhole (p : Packet.t) = Packet.free p

let create ~sim ~rate_bps ~route ?(start = 0.) ?(stop = infinity) ~flow_id () =
  if rate_bps <= 0. then invalid_arg "Cbr.create: rate must be > 0";
  let interval = float_of_int (8 * Packet.data_size) /. rate_bps in
  let t = { sim; interval; route; stop; flow_id; sent = 0; timer = Sim.Timer.none } in
  let tick () =
    if Sim.now sim < t.stop then begin
      let p =
        Packet.data ~flow:t.flow_id ~subflow:0 ~seq:t.sent
          ~sent_at:(Sim.now sim) ~route:t.route
      in
      t.sent <- t.sent + 1;
      Packet.forward p
    end
    else Sim.Timer.cancel sim t.timer
  in
  t.timer <- Sim.every ~src:"cbr.tick" ~start sim interval tick;
  t

let packets_sent t = t.sent
