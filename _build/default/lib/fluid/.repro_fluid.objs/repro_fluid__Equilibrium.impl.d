lib/fluid/equilibrium.ml: Array Int64 List Network_model Stdlib Tcp_model
