examples/datacenter_example.mli:
