lib/fluid/network_model.ml: Array Stdlib
