(** The uniform interface every registered experiment implements: a
    parameter {!Spec.t} (name, doc, typed defaults) and a [run] taking
    resolved bindings to an {!Outcome.t}. The typed entry points
    ([Scen_a.run : config -> result] etc.) remain the implementation;
    registry adapters in [lib/scenarios] wrap them in this signature. *)

module type S = sig
  val spec : Spec.t

  val run : Spec.bindings -> Outcome.t
  (** Must be pure up to its bindings (fresh simulator and RNG per call,
      seeded from the ["seed"] parameter) so the sweep engine may invoke
      it from any domain. *)
end
