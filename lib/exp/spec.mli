(** Typed parameter specifications for the uniform experiment API.

    A {!t} describes one experiment: its registry name and the set of
    key/value parameters it accepts, each with a typed default. Concrete
    settings are {!bindings} — association lists resolved against the
    spec's defaults — so a scenario can be driven from the command line
    ([-p n2=30]), from a sweep axis, or programmatically, all through the
    same interface. *)

type value = Int of int | Float of float | Bool of bool | String of string

type param = { key : string; default : value; doc : string }

type t = { name : string; doc : string; params : param list }

(** {1 Construction helpers} *)

val int : string -> int -> string -> param
val float : string -> float -> string -> param
val bool : string -> bool -> string -> param
val string : string -> string -> string -> param

(** {1 Values} *)

val value_to_string : value -> string
(** Render a value the way the CLI accepts it ([true]/[false] for
    booleans, [%.12g] for floats). *)

val type_name : value -> string
(** ["int"], ["float"], ["bool"] or ["string"]. *)

val parse_value : like:value -> string -> value
(** Parse a string as the same type as [like]. Raises
    [Invalid_argument] on a malformed literal. *)

(** {1 Bindings} *)

type bindings = (string * value) list
(** Overrides for a spec's defaults; earlier entries shadow later ones,
    and any key not bound falls back to the spec default. *)

val param : t -> string -> param
(** Raises [Invalid_argument] (listing the valid keys) when the spec has
    no such parameter. *)

val get : t -> bindings -> string -> value
(** The bound value, or the spec default. Raises on unknown keys. *)

val get_int : t -> bindings -> string -> int
val get_float : t -> bindings -> string -> float
(** Accepts an [Int] binding for a float-typed parameter. *)

val get_bool : t -> bindings -> string -> bool
val get_string : t -> bindings -> string -> string

val validate : t -> bindings -> unit
(** Check every bound key against the spec: raises [Invalid_argument]
    on unknown keys or type mismatches. *)

val parse_assign : t -> string -> string * value
(** [parse_assign spec "n2=30"] is [("n2", Int 30)], typed according to
    the spec's default for that key. *)

val to_json : t -> bindings -> Repro_stats.Json.t
(** The fully-resolved parameter set (defaults plus overrides) as a JSON
    object, in spec order. *)
