test/test_netsim.ml: Alcotest Array Fun Gen List Mptcp_repro Packet Pipe QCheck QCheck_alcotest Queue Rng Sim
