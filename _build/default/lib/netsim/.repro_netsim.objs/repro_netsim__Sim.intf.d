lib/netsim/sim.mli:
