let create () =
  {
    Cc_types.name = "reno";
    multipath_initial_ssthresh = None;
    on_ack = (fun ~idx:_ ~acked:_ -> ());
    on_loss = (fun ~idx:_ -> ());
    increase =
      (fun ~views ~idx -> 1. /. Stdlib.max views.(idx).Cc_types.cwnd 1.);
    loss_decrease = Cc_types.halve;
  }
