lib/cc/registry.mli: Cc_types
