(* lint: allow-file R1 -- wall-clock metering of the harness itself; simulation results never read these values *)

(* Per-run counters and timers. A scenario starts a meter, runs, and
   finishes it with the simulator's own counters; the report separates
   deterministic counters (safe to export through Exp.Outcome, where
   sweep results must be byte-reproducible) from wall-clock timers. *)

module Json = Repro_stats.Json

type t = { started_at : float }

let start () = { started_at = Unix.gettimeofday () }

type report = {
  wall_s : float;
  sim_s : float;
  wall_per_sim_s : float;
  events_processed : int;
  max_heap_depth : int;
  drops_overflow : int;
  drops_red : int;
  drops_random : int;
  subflow_goodput_bps : (string * float) list;
}

let finish t ~sim_s ~events_processed ~max_heap_depth ~drops_overflow
    ~drops_red ~drops_random ~subflow_goodput_bps =
  let wall_s = Unix.gettimeofday () -. t.started_at in
  let wall_per_sim_s = if sim_s > 0. then wall_s /. sim_s else nan in
  {
    wall_s;
    sim_s;
    wall_per_sim_s;
    events_processed;
    max_heap_depth;
    drops_overflow;
    drops_red;
    drops_random;
    subflow_goodput_bps;
  }

(* Per-shard counters for sharded runs: each worker's simulator keeps
   its own totals, and the merge is deterministic — shards ascend, int
   sums and maxes are order-free — so the merged values feed the same
   obs_* metrics a 1-shard run reports. *)
type shard_counters = {
  shard : int;
  events_processed : int;
  max_heap_depth : int;
}

let merge_shards shards =
  let shards =
    List.sort (fun a b -> Int.compare a.shard b.shard) shards
  in
  List.fold_left
    (fun (ev, depth) s ->
      (ev + s.events_processed, Stdlib.max depth s.max_heap_depth))
    (0, 0) shards

let shards_to_json shards =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("shard", Json.Int s.shard);
             ("events_processed", Json.Int s.events_processed);
             ("max_heap_depth", Json.Int s.max_heap_depth);
           ])
       (List.sort (fun a b -> Int.compare a.shard b.shard) shards))

(* Deterministic counters only: these are a function of the seed, so
   exporting them keeps Exp.Sweep's parallel-equals-sequential and
   byte-identical-JSON guarantees intact. Wall timers stay in the
   report (and in to_json) for the CLI and the bench harness. *)
let metrics (r : report) =
  [
    ("obs_events", float_of_int r.events_processed);
    ("obs_max_heap_depth", float_of_int r.max_heap_depth);
    ("obs_drops_overflow", float_of_int r.drops_overflow);
    ("obs_drops_red", float_of_int r.drops_red);
    ("obs_drops_random", float_of_int r.drops_random);
  ]
  @ List.map
      (fun (label, bps) -> ("obs_subflow_goodput_bps_" ^ label, bps))
      r.subflow_goodput_bps

let to_json (r : report) =
  Json.Obj
    [
      ("wall_s", Json.Float r.wall_s);
      ("sim_s", Json.Float r.sim_s);
      ("wall_per_sim_s", Json.Float r.wall_per_sim_s);
      ("events_processed", Json.Int r.events_processed);
      ("max_heap_depth", Json.Int r.max_heap_depth);
      ("drops_overflow", Json.Int r.drops_overflow);
      ("drops_red", Json.Int r.drops_red);
      ("drops_random", Json.Int r.drops_random);
      ( "subflow_goodput_bps",
        Json.Obj
          (List.map
             (fun (label, bps) -> (label, Json.Float bps))
             r.subflow_goodput_bps) );
    ]
