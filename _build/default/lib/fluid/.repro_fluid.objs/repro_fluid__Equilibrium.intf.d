lib/fluid/equilibrium.mli: Network_model
