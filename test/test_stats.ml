open Mptcp_repro.Stats

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- Summary -------------------------------------------------------- *)

let test_empty () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s));
  check_float "ci" 0. (Summary.ci95_halfwidth s)

let test_single () =
  let s = Summary.of_list [ 42. ] in
  check_float "mean" 42. (Summary.mean s);
  check_float "min" 42. (Summary.min s);
  check_float "max" 42. (Summary.max s);
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Summary.variance s))

let test_known_values () =
  let s = Summary.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check_float "mean" 5. (Summary.mean s);
  check_close 1e-9 "variance" (32. /. 7.) (Summary.variance s);
  check_float "sum" 40. (Summary.sum s);
  check_float "min" 2. (Summary.min s);
  check_float "max" 9. (Summary.max s)

let test_ci_five_measurements () =
  (* five observations, as in the paper's measurement protocol: the
     Student t quantile for 4 dof is 2.776 *)
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  let expected = 2.776 *. Summary.stdev s /. sqrt 5. in
  check_close 1e-9 "ci95" expected (Summary.ci95_halfwidth s)

let test_merge_matches_concat () =
  let a = Summary.of_list [ 1.; 2.; 3. ] in
  let b = Summary.of_list [ 10.; 20. ] in
  let m = Summary.merge a b in
  let all = Summary.of_list [ 1.; 2.; 3.; 10.; 20. ] in
  check_close 1e-9 "mean" (Summary.mean all) (Summary.mean m);
  check_close 1e-9 "variance" (Summary.variance all) (Summary.variance m);
  Alcotest.(check int) "count" 5 (Summary.count m);
  check_float "min" 1. (Summary.min m);
  check_float "max" 20. (Summary.max m)

let test_merge_with_empty () =
  let a = Summary.of_list [ 1.; 2. ] in
  let e = Summary.create () in
  check_close 1e-9 "left" (Summary.mean a) (Summary.mean (Summary.merge e a));
  check_close 1e-9 "right" (Summary.mean a) (Summary.mean (Summary.merge a e))

let test_add_seq () =
  let s = Summary.create () in
  Summary.add_seq s (Seq.init 10 float_of_int);
  Alcotest.(check int) "count" 10 (Summary.count s);
  check_float "mean" 4.5 (Summary.mean s)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"summary: welford variance = naive variance"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Summary.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
      in
      abs_float (Summary.variance s -. var) < 1e-6 *. (1. +. abs_float var))

let prop_merge_commutes =
  QCheck.Test.make ~name:"summary: merge is symmetric in the mean" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 20) (float_range (-10.) 10.))
        (list_of_size (Gen.int_range 1 20) (float_range (-10.) 10.)))
    (fun (xs, ys) ->
      let a = Summary.of_list xs and b = Summary.of_list ys in
      let m1 = Summary.merge a b and m2 = Summary.merge b a in
      abs_float (Summary.mean m1 -. Summary.mean m2) < 1e-9)

(* --- Histogram ------------------------------------------------------ *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.9 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check int) "bin0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin9" 1 (Histogram.bin_count h 9)

let test_histogram_clamping () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Histogram.add h (-5.);
  Histogram.add h 99.;
  Alcotest.(check int) "low edge" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "high edge" 1 (Histogram.bin_count h 3)

let test_histogram_pdf_integrates_to_one () =
  let h = Histogram.create ~lo:0. ~hi:5. ~bins:5 in
  List.iter (Histogram.add h) [ 0.1; 1.1; 2.2; 3.3; 4.4; 4.5 ];
  let area =
    Array.fold_left (fun a (_, d) -> a +. (d *. Histogram.bin_width h)) 0.
      (Histogram.pdf h)
  in
  check_close 1e-9 "area" 1. area

let test_histogram_cdf_monotone () =
  let h = Histogram.create ~lo:0. ~hi:5. ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 0.5; 3.; 4.9 ];
  let cdf = Histogram.cdf h in
  let ok = ref true in
  for i = 1 to Array.length cdf - 1 do
    if snd cdf.(i) < snd cdf.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "monotone" true !ok;
  check_close 1e-9 "last is 1" 1. (snd cdf.(Array.length cdf - 1))

let test_histogram_quantile () =
  let h = Histogram.create ~lo:0. ~hi:100. ~bins:100 in
  for i = 0 to 99 do
    Histogram.add h (float_of_int i +. 0.5)
  done;
  check_close 1.5 "median" 50. (Histogram.quantile h 0.5);
  check_close 1.5 "p90" 90. (Histogram.quantile h 0.9)

let test_histogram_invalid () =
  Alcotest.check_raises "bins=0" (Invalid_argument "Histogram.create: bins <= 0")
    (fun () -> ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Histogram.create ~lo:1. ~hi:1. ~bins:4))

let prop_histogram_count_preserved =
  QCheck.Test.make ~name:"histogram: total count = observations" ~count:100
    QCheck.(list (float_range (-10.) 110.))
    (fun xs ->
      let h = Histogram.create ~lo:0. ~hi:100. ~bins:13 in
      List.iter (Histogram.add h) xs;
      Histogram.count h = List.length xs)

let test_histogram_quantiles_empty () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.(check bool) "quantile nan" true
    (Float.is_nan (Histogram.quantile h 0.5));
  Alcotest.(check bool) "percentile nan" true
    (Float.is_nan (Histogram.percentile h 99.));
  Alcotest.(check bool) "cdf_at nan" true
    (Float.is_nan (Histogram.cdf_at h 0.5))

let test_histogram_single_sample () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add h 3.5;
  (* with one observation every quantile lands inside its bin [3, 4) *)
  List.iter
    (fun q ->
      let v = Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f inside the occupied bin" q)
        true
        (v >= 3. && v <= 4.))
    [ 0.01; 0.5; 0.99; 1.0 ];
  check_float "percentile is quantile/100"
    (Histogram.quantile h 0.5)
    (Histogram.percentile h 50.)

let test_histogram_quantile_edge_bins () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  (* out-of-range observations saturate into the edge bins *)
  Histogram.add h (-5.);
  Histogram.add h 99.;
  let q0 = Histogram.quantile h 0.25 in
  Alcotest.(check bool) "low quantile stays in the first bin" true
    (q0 >= 0. && q0 <= 0.25);
  check_float "q=1 reaches hi" 1. (Histogram.quantile h 1.0);
  check_float "cdf saturates above hi" 1. (Histogram.cdf_at h 2.);
  check_float "cdf is zero below lo" 0. (Histogram.cdf_at h (-1.))

let test_histogram_cdf_at_interpolates () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  for i = 0 to 9 do
    Histogram.add h (float_of_int i +. 0.5)
  done;
  check_float "cdf at lo" 0. (Histogram.cdf_at h 0.);
  check_close 1e-9 "cdf midway" 0.5 (Histogram.cdf_at h 5.);
  check_close 1e-9 "interpolated inside a bin" 0.55 (Histogram.cdf_at h 5.5);
  check_float "cdf at hi" 1. (Histogram.cdf_at h 10.);
  (* quantile is the inverse view of cdf_at *)
  check_close 1e-9 "quantile inverts cdf_at" 5.5
    (Histogram.quantile h (Histogram.cdf_at h 5.5))

let test_histogram_percentiles_array () =
  let h = Histogram.create ~lo:0. ~hi:100. ~bins:100 in
  for i = 0 to 99 do
    Histogram.add h (float_of_int i +. 0.5)
  done;
  let ps = Histogram.percentiles h [| 50.; 90.; 99. |] in
  Alcotest.(check int) "three results" 3 (Array.length ps);
  check_close 1.5 "p50" 50. ps.(0);
  check_close 1.5 "p90" 90. ps.(1);
  check_close 1.5 "p99" 99. ps.(2)

let test_histogram_log_spacing () =
  let h = Histogram.create_log ~lo:1e-3 ~hi:10. ~bins:80 in
  check_close 1e-12 "first edge is lo" 1e-3 (Histogram.bin_edge h 0);
  check_close 1e-9 "last edge is hi" 10. (Histogram.bin_edge h 80);
  (* log spacing means a constant edge ratio, not a constant width *)
  check_close 1e-9 "geometric progression"
    (Histogram.bin_edge h 1 /. Histogram.bin_edge h 0)
    (Histogram.bin_edge h 41 /. Histogram.bin_edge h 40);
  (* log-uniform samples over four decades: the median is the geometric
     midpoint of the range, within bucketing error *)
  for i = 0 to 99 do
    Histogram.add h (10. ** (-3. +. (4. *. (float_of_int i +. 0.5) /. 100.)))
  done;
  let q50 = Histogram.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "median near 0.1 (got %g)" q50)
    true
    (q50 > 0.07 && q50 < 0.15);
  (* non-positive values cannot be log-binned; they saturate low *)
  Histogram.add h (-1.);
  Alcotest.(check bool) "value <= 0 lands in the first bin" true
    (Histogram.bin_count h 0 >= 1)

let test_histogram_log_invalid () =
  Alcotest.check_raises "lo <= 0"
    (Invalid_argument "Histogram.create_log: lo <= 0") (fun () ->
      ignore (Histogram.create_log ~lo:0. ~hi:1. ~bins:4))

(* --- Timeseries ----------------------------------------------------- *)

let test_ts_basic () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0. 1.;
  Timeseries.add ts ~time:1. 3.;
  Alcotest.(check int) "length" 2 (Timeseries.length ts);
  Alcotest.(check (option (pair (float 0.) (float 0.))))
    "last" (Some (1., 3.)) (Timeseries.last ts)

let test_ts_rejects_backwards () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:5. 0.;
  Alcotest.check_raises "monotonic"
    (Invalid_argument "Timeseries.add: non-monotonic time") (fun () ->
      Timeseries.add ts ~time:4. 0.)

let test_ts_mean_over () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0. 2.;
  Timeseries.add ts ~time:10. 4.;
  (* piecewise-constant: 2 on [0,10), 4 from 10 *)
  check_close 1e-9 "first half" 2. (Timeseries.mean_over ts ~from:0. ~until:10.);
  check_close 1e-9 "spanning" 3. (Timeseries.mean_over ts ~from:5. ~until:15.);
  check_close 1e-9 "after" 4. (Timeseries.mean_over ts ~from:12. ~until:20.)

let test_ts_mean_before_first_sample () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:10. 1.;
  Alcotest.(check bool) "nan" true
    (Float.is_nan (Timeseries.mean_over ts ~from:0. ~until:5.))

let test_ts_resample () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0. 1.;
  Timeseries.add ts ~time:2. 5.;
  let r = Timeseries.resample ts ~dt:1. ~from:0. ~until:4. in
  Alcotest.(check int) "samples" 4 (Array.length r);
  check_float "t0" 1. r.(0);
  check_float "t1" 1. r.(1);
  check_float "t2" 5. r.(2)

let test_ts_resample_boundaries () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:1. 2.;
  Timeseries.add ts ~time:2. 3.;
  (* an empty window resamples to nothing *)
  Alcotest.(check int) "from = until" 0
    (Array.length (Timeseries.resample ts ~dt:0.5 ~from:1.5 ~until:1.5));
  (* sample-and-hold: nan before the first sample, the last value held
     on grid points past the final sample *)
  let r = Timeseries.resample ts ~dt:1. ~from:0. ~until:5. in
  Alcotest.(check int) "samples" 5 (Array.length r);
  Alcotest.(check bool) "nan before first sample" true (Float.is_nan r.(0));
  check_float "at the first sample" 2. r.(1);
  check_float "at the second" 3. r.(2);
  check_float "held past the last" 3. r.(3);
  check_float "still held" 3. r.(4)

let test_ts_growth () =
  let ts = Timeseries.create () in
  for i = 0 to 999 do
    Timeseries.add ts ~time:(float_of_int i) (float_of_int (i * i))
  done;
  Alcotest.(check int) "length" 1000 (Timeseries.length ts);
  let arr = Timeseries.to_array ts in
  check_float "spot" (999. *. 999.) (snd arr.(999))

let test_ts_fold () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0. 1.;
  Timeseries.add ts ~time:1. 2.;
  let sum = Timeseries.fold ts ~init:0. ~f:(fun a _ v -> a +. v) in
  check_float "sum" 3. sum

(* --- Table ---------------------------------------------------------- *)

let test_table_renders () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  let _ = Table.add_float_row t "row" [ 1.5 ] in
  let s = Table.to_string t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "mentions row" true
    (String.length s >= 3 && String.sub s 0 1 = "T")

let test_table_pads_short_rows () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "rendered" true (String.length s > 0)

let test_table_rejects_long_rows () =
  let t = Table.create ~title:"t" ~columns:[ "a" ] in
  Alcotest.check_raises "too many"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "summary: empty" `Quick test_empty;
    Alcotest.test_case "summary: single" `Quick test_single;
    Alcotest.test_case "summary: known values" `Quick test_known_values;
    Alcotest.test_case "summary: ci (n=5)" `Quick test_ci_five_measurements;
    Alcotest.test_case "summary: merge = concat" `Quick test_merge_matches_concat;
    Alcotest.test_case "summary: merge with empty" `Quick test_merge_with_empty;
    Alcotest.test_case "summary: add_seq" `Quick test_add_seq;
    q prop_welford_matches_naive;
    q prop_merge_commutes;
    Alcotest.test_case "histogram: basic binning" `Quick test_histogram_basic;
    Alcotest.test_case "histogram: edge clamping" `Quick test_histogram_clamping;
    Alcotest.test_case "histogram: pdf integrates to 1" `Quick
      test_histogram_pdf_integrates_to_one;
    Alcotest.test_case "histogram: cdf monotone" `Quick
      test_histogram_cdf_monotone;
    Alcotest.test_case "histogram: quantiles" `Quick test_histogram_quantile;
    Alcotest.test_case "histogram: invalid args" `Quick test_histogram_invalid;
    q prop_histogram_count_preserved;
    Alcotest.test_case "histogram: quantiles of empty are nan" `Quick
      test_histogram_quantiles_empty;
    Alcotest.test_case "histogram: single sample" `Quick
      test_histogram_single_sample;
    Alcotest.test_case "histogram: quantiles at edge bins" `Quick
      test_histogram_quantile_edge_bins;
    Alcotest.test_case "histogram: cdf_at interpolates" `Quick
      test_histogram_cdf_at_interpolates;
    Alcotest.test_case "histogram: percentiles array" `Quick
      test_histogram_percentiles_array;
    Alcotest.test_case "histogram: log spacing" `Quick
      test_histogram_log_spacing;
    Alcotest.test_case "histogram: log rejects lo <= 0" `Quick
      test_histogram_log_invalid;
    Alcotest.test_case "timeseries: basic" `Quick test_ts_basic;
    Alcotest.test_case "timeseries: rejects backwards time" `Quick
      test_ts_rejects_backwards;
    Alcotest.test_case "timeseries: time-weighted mean" `Quick test_ts_mean_over;
    Alcotest.test_case "timeseries: mean before first sample" `Quick
      test_ts_mean_before_first_sample;
    Alcotest.test_case "timeseries: resample" `Quick test_ts_resample;
    Alcotest.test_case "timeseries: growth" `Quick test_ts_growth;
    Alcotest.test_case "timeseries: fold" `Quick test_ts_fold;
    Alcotest.test_case "table: renders" `Quick test_table_renders;
    Alcotest.test_case "table: pads short rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "table: rejects long rows" `Quick
      test_table_rejects_long_rows;
  ]

let test_jain_index () =
  check_float "equal shares" 1. (Summary.jain_index [ 5.; 5.; 5. ]);
  check_close 1e-9 "one hog" 0.25 (Summary.jain_index [ 1.; 0.; 0.; 0. ]);
  check_close 1e-9 "two equal of four" 0.5
    (Summary.jain_index [ 1.; 1.; 0.; 0. ]);
  Alcotest.(check bool) "empty" true (Float.is_nan (Summary.jain_index []));
  check_float "all zero" 1. (Summary.jain_index [ 0.; 0. ])

let prop_jain_in_unit_interval =
  QCheck.Test.make ~name:"jain index lies in [1/n, 1]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.0 100.))
    (fun xs ->
      let j = Summary.jain_index xs in
      let n = float_of_int (List.length xs) in
      j >= (1. /. n) -. 1e-9 && j <= 1. +. 1e-9)

let suite =
  suite
  @ [
      Alcotest.test_case "summary: jain index" `Quick test_jain_index;
      QCheck_alcotest.to_alcotest prop_jain_in_unit_interval;
    ]

let test_table_csv_export () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "y,z"; "2" ];
  Alcotest.(check (list (list string))) "rows accessor"
    [ [ "x"; "1" ]; [ "y,z"; "2" ] ]
    (Table.rows t);
  let path = Filename.temp_file "repro" ".csv" in
  Table.to_csv t ~path;
  let ic = open_in path in
  let first = input_line ic and second = input_line ic and third = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "a,b" first;
  Alcotest.(check string) "row" "x,1" second;
  Alcotest.(check string) "escaped" "\"y,z\",2" third

let suite =
  suite
  @ [ Alcotest.test_case "table: csv export" `Quick test_table_csv_export ]

(* --- Json ----------------------------------------------------------- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> Float.equal x y
  | Json.String x, Json.String y -> String.equal x y
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
         xs ys
  | _ -> false

let roundtrip name j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) name true (json_equal j j')
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_json_escapes () =
  let s = "quote\" back\\ nl\n cr\r tab\t bs\b ff\012 nul\000 del\127" in
  Alcotest.(check string)
    "rendering"
    "\"quote\\\" back\\\\ nl\\n cr\\r tab\\t bs\\b ff\\f nul\\u0000 \
     del\\u007f\""
    (Json.to_string (Json.String s));
  roundtrip "control chars round-trip" (Json.String s)

let test_json_unicode_escapes () =
  (* \u escapes decode to UTF-8, including surrogate pairs *)
  let check name input expected =
    match Json.of_string input with
    | Ok (Json.String s) -> Alcotest.(check string) name expected s
    | Ok _ -> Alcotest.fail (name ^ ": not a string")
    | Error e -> Alcotest.fail (name ^ ": " ^ e)
  in
  check "2-byte" "\"\\u00e9\"" "\xc3\xa9";
  check "3-byte" "\"\\u20ac\"" "\xe2\x82\xac";
  check "surrogate pair" "\"\\ud83d\\ude00\"" "\xf0\x9f\x98\x80";
  match Json.of_string "\"\\ud83d\"" with
  | Ok _ -> Alcotest.fail "unpaired surrogate accepted"
  | Error _ -> ()

let test_json_float_typed () =
  (* integral floats keep a float-typed token so documents read back
     with the same constructors they were written with *)
  Alcotest.(check string) "integral" "1.0" (Json.to_string (Json.Float 1.));
  Alcotest.(check string) "int stays int" "1" (Json.to_string (Json.Int 1));
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  roundtrip "float 1." (Json.Float 1.);
  roundtrip "float 0.1" (Json.Float 0.1);
  roundtrip "float -2e30" (Json.Float (-2e30))

let test_json_parse_basics () =
  let ok name input expected =
    match Json.of_string input with
    | Ok j -> Alcotest.(check bool) name true (json_equal expected j)
    | Error e -> Alcotest.fail (name ^ ": " ^ e)
  in
  ok "null" " null " Json.Null;
  ok "true" "true" (Json.Bool true);
  ok "int" "-42" (Json.Int (-42));
  ok "float" "2.5e3" (Json.Float 2500.);
  ok "empty list" "[]" (Json.List []);
  ok "empty obj" "{ }" (Json.Obj []);
  ok "nested"
    "{\"a\": [1, 2.0, \"x\"], \"b\": {\"c\": null}}"
    (Json.Obj
       [
         ("a", Json.List [ Json.Int 1; Json.Float 2.; Json.String "x" ]);
         ("b", Json.Obj [ ("c", Json.Null) ]);
       ])

let test_json_parse_errors () =
  let bad name input =
    match Json.of_string input with
    | Ok _ -> Alcotest.fail (name ^ ": accepted")
    | Error _ -> ()
  in
  bad "empty" "";
  bad "trailing" "1 2";
  bad "unterminated string" "\"abc";
  bad "bad escape" "\"\\q\"";
  bad "unclosed list" "[1, 2";
  bad "missing colon" "{\"a\" 1}";
  bad "bare word" "nope"

let prop_json_roundtrip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self size ->
          let leaf =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
                map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
                map (fun s -> Json.String s) string_printable;
              ]
          in
          if size <= 0 then leaf
          else
            frequency
              [
                (3, leaf);
                ( 1,
                  map
                    (fun xs -> Json.List xs)
                    (list_size (int_range 0 4) (self (size / 2))) );
                ( 1,
                  map
                    (fun kvs -> Json.Obj kvs)
                    (list_size (int_range 0 4)
                       (pair string_printable (self (size / 2)))) );
              ]))
  in
  QCheck.Test.make ~name:"json: to_string |> of_string round-trips" ~count:300
    (QCheck.make gen)
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> json_equal j j'
      | Error _ -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "json: escape rendering" `Quick test_json_escapes;
      Alcotest.test_case "json: unicode escapes" `Quick
        test_json_unicode_escapes;
      Alcotest.test_case "json: float-typed numbers" `Quick
        test_json_float_typed;
      Alcotest.test_case "json: parse basics" `Quick test_json_parse_basics;
      Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
      QCheck_alcotest.to_alcotest prop_json_roundtrip;
    ]
