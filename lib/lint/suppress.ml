type directive = { line : int; file_wide : bool; rules : Finding.rule list }
type t = { directives : directive list; invalid : Finding.t list }

(* Index of [sub] in [s] at or after [from], if any. *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun w -> w <> "")

(* Parse the directive body, i.e. the text strictly between the
   ["(* lint:"] marker and ["*)"]. *)
let parse_body ~file ~line body =
  let invalid msg = Error (Finding.v ~rule:Suppress ~file ~line ~col:0 msg) in
  let head, reason =
    match find_sub body "--" 0 with
    | None -> (body, None)
    | Some i ->
      ( String.sub body 0 i,
        Some
          (String.trim
             (String.sub body (i + 2) (String.length body - i - 2))) )
  in
  match split_words head with
  | [] -> invalid "empty lint directive (expected allow or allow-file)"
  | verb :: ids ->
    let file_wide =
      match verb with
      | "allow" -> Some false
      | "allow-file" -> Some true
      | _ -> None
    in
    (match file_wide with
     | None ->
       invalid
         (Printf.sprintf "unknown lint directive %S (expected allow or \
                          allow-file)" verb)
     | Some file_wide ->
       let rules = List.map Finding.rule_of_name ids in
       if ids = [] then invalid "lint directive lists no rule ids"
       else if List.mem None rules then
         invalid
           (Printf.sprintf "unknown rule id in lint directive (waivable \
                            rules are R1-R11): %s"
              (String.concat " " ids))
       else (
         match reason with
         | None | Some "" ->
           invalid
             "suppression without a reason (write: (* lint: allow R3 -- \
              why it is safe *))"
         | Some _ ->
           Ok { line; file_wide; rules = List.filter_map Fun.id rules }))

(* A minimal lexer pass: directives are only recognized where a real
   comment opens in code position — ["(* lint:"] inside a string
   literal, or nested inside another comment (e.g. an example in a doc
   comment), is plain text. String escapes, char literals like ['"']
   and quoted strings ([{|...|}], [{id|...|id}]) are handled; strings
   inside comments are not, which is fine for sources this linter
   accepts. *)
let scan ~file content =
  let directives = ref [] and invalid = ref [] in
  let n = String.length content in
  let line = ref 1 in
  let marker = " lint:" in
  let starts_with i sub =
    i + String.length sub <= n && String.sub content i (String.length sub) = sub
  in
  let line_end i =
    match String.index_from_opt content i '\n' with
    | Some j -> j
    | None -> n
  in
  (* [i] is the current scan position; [depth] the comment nesting. *)
  let rec code i =
    if i >= n then ()
    else
      match content.[i] with
      | '\n' ->
        incr line;
        code (i + 1)
      | '"' -> string (i + 1)
      | '\'' when i + 2 < n && content.[i + 1] <> '\\' && content.[i + 2] = '\''
        ->
        code (i + 3)
      | '\'' when i + 3 < n && content.[i + 1] = '\\' && content.[i + 3] = '\''
        ->
        code (i + 4)
      | '(' when starts_with i "(*" ->
        if starts_with (i + 2) marker then directive (i + 2 + String.length marker) i
        else comment (i + 2) 1
      | '{' -> (
        (* quoted-string literal {|...|} or {id|...|id} *)
        match quoted_open (i + 1) with
        | Some (id, j) -> quoted id j
        | None -> code (i + 1))
      | _ -> code (i + 1)
  and quoted_open i =
    let rec ident j =
      if j < n && (content.[j] = '_' || (content.[j] >= 'a' && content.[j] <= 'z'))
      then ident (j + 1)
      else j
    in
    let stop = ident i in
    if stop < n && content.[stop] = '|' then
      Some (String.sub content i (stop - i), stop + 1)
    else None
  and quoted id i =
    let close = "|" ^ id ^ "}" in
    if i >= n then ()
    else if starts_with i close then code (i + String.length close)
    else (
      if content.[i] = '\n' then incr line;
      quoted id (i + 1))
  and string i =
    if i >= n then ()
    else
      match content.[i] with
      | '\\' ->
        (* a backslash-newline continuation still ends the line *)
        if i + 1 < n && content.[i + 1] = '\n' then incr line;
        string (i + 2)
      | '"' -> code (i + 1)
      | '\n' ->
        incr line;
        string (i + 1)
      | _ -> string (i + 1)
  and comment i depth =
    if i >= n then ()
    else if starts_with i "(*" then comment (i + 2) (depth + 1)
    else if starts_with i "*)" then
      if depth = 1 then code (i + 2) else comment (i + 2) (depth - 1)
    else (
      if content.[i] = '\n' then incr line;
      comment (i + 1) depth)
  and directive body_start open_pos =
    let open_col =
      match String.rindex_from_opt content (Stdlib.max 0 (open_pos - 1)) '\n' with
      | Some j -> open_pos - j - 1
      | None -> open_pos
    in
    let stop = line_end body_start in
    match find_sub (String.sub content 0 stop) "*)" body_start with
    | None ->
      invalid :=
        Finding.v ~rule:Suppress ~file ~line:!line ~col:open_col
          "lint directive must open and close on one line"
        :: !invalid;
      (* resynchronize as an ordinary comment *)
      comment body_start 1
    | Some close ->
      (match
         parse_body ~file ~line:!line
           (String.sub content body_start (close - body_start))
       with
       | Ok d -> directives := d :: !directives
       | Error f -> invalid := f :: !invalid);
      code (close + 2)
  in
  code 0;
  { directives = List.rev !directives; invalid = List.rev !invalid }

let invalid t = t.invalid

let permits_line t rule line =
  match rule with
  | Finding.Parse | Finding.Suppress -> false
  | rule ->
    List.exists
      (fun d ->
        List.mem rule d.rules
        && (d.file_wide || line = d.line || line = d.line + 1))
      t.directives

let permits t (f : Finding.t) = permits_line t f.Finding.rule f.Finding.line
