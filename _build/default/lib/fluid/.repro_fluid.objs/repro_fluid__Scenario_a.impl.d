lib/fluid/scenario_a.ml: Roots Units
