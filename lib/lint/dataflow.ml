(* Pass 2: the interprocedural analyses over the call graph.

   All three checks are BFS reachability with parent links so every
   finding can explain its call chain, and every whole-program finding
   carries the chain's root (file, line) so a suppression at the entry
   point waives the findings it implies (Engine consults both). Node
   ids are (path, source-order) positions, so results are
   deterministic. *)

let line_of = Callgraph.line_of

let col_of (loc : Location.t) =
  loc.loc_start.pos_cnum - loc.loc_start.pos_bol

(* Multi-source BFS; [follow] filters edges. Returns the parent array
   (-1 for a root, min_int for unreachable) in visit order. *)
let bfs g roots ~follow =
  let n = Callgraph.size g in
  let parent = Array.make n min_int in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if parent.(r) = min_int then begin
        parent.(r) <- -1;
        Queue.add r q
      end)
    roots;
  let order = ref [] in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    order := i :: !order;
    List.iter
      (fun (e : Callgraph.edge) ->
        if follow e && parent.(e.target) = min_int then begin
          parent.(e.target) <- i;
          Queue.add e.target q
        end)
      (Callgraph.edges g i)
  done;
  (parent, List.rev !order)

let rec root_of parent i = if parent.(i) < 0 then i else root_of parent parent.(i)

let chain g parent i =
  let rec up acc i =
    let acc = Summary.display (Callgraph.node g i) :: acc in
    if parent.(i) < 0 then acc else up acc parent.(i)
  in
  String.concat " -> " (up [] i)

let finding_at g parent i ~rule ~file ~loc msg =
  let r = root_of parent i in
  let rn = Callgraph.node g r in
  Finding.v
    ~root:(rn.Summary.path, line_of rn.Summary.nloc)
    ~rule ~file ~line:(line_of loc) ~col:(col_of loc) msg

(* --- R9: alloc-free proof of the hot path ----------------------------- *)

let check_alloc_free ?(extra_roots = []) g =
  let roots = ref [] in
  for i = Callgraph.size g - 1 downto 0 do
    let n = Callgraph.node g i in
    if n.Summary.alloc_free_root || List.mem (Summary.display n) extra_roots
    then roots := i :: !roots
  done;
  let parent, order = bfs g !roots ~follow:(fun e -> e.Callgraph.hot) in
  let findings = ref [] in
  let emit i loc msg =
    let n = Callgraph.node g i in
    findings :=
      finding_at g parent i ~rule:Finding.R9 ~file:n.Summary.path ~loc msg
      :: !findings
  in
  List.iter
    (fun i ->
      let n = Callgraph.node g i in
      let here = chain g parent i in
      (* an arity-0 binding allocates once at module init, not per
         call: reading it from the hot path costs nothing *)
      if n.Summary.arity > 0 then
        List.iter
          (fun (a : Summary.alloc) ->
            if not a.aguarded then
              emit i a.aloc
                (Printf.sprintf
                   "%s on the [@olia.alloc_free] hot path (chain: %s)" a.what
                   here))
          n.Summary.allocs;
      (* a float-returning function without [@inline] boxes its result
         at every call from another compilation unit *)
      if
        n.Summary.float_return && (not n.Summary.inline)
        && n.Summary.arity > 0
      then
        emit i n.Summary.nloc
          (Printf.sprintf
             "float-returning %s lacks [@inline]: the boxed return \
              allocates on the hot path (chain: %s)"
             (Summary.display n) here);
      List.iter
        (fun (e : Callgraph.edge) ->
          let t = Callgraph.node g e.Callgraph.target in
          if
            e.Callgraph.hot && e.Callgraph.min_args >= 0
            && t.Summary.arity > 0
            && e.Callgraph.min_args < t.Summary.required
          then
            emit i e.Callgraph.eloc
              (Printf.sprintf
                 "partial application of %s (%d of %d required arguments) \
                  allocates a closure on the hot path (chain: %s)"
                 (Summary.display t) e.Callgraph.min_args t.Summary.required
                 here))
        (Callgraph.edges g i))
    order;
  List.rev !findings

(* --- R10: domain-safety of the sharded sweep -------------------------- *)

let is_sweep_root (n : Summary.node) =
  (Rules.under [ "lib"; "exp" ] n.Summary.path
   && Rules.basename n.Summary.path = "sweep.ml"
   && (n.Summary.qual = "run" || n.Summary.qual = "run_seq"))
  || (Rules.under [ "lib"; "scenarios" ] n.Summary.path
      && Rules.basename n.Summary.path <> "registry.ml"
      && Rules.basename n.Summary.path <> "common.ml"
      && n.Summary.qual = "run")
  (* the sharded simulation runtime spawns domains exactly like the
     sweep engine: everything reachable from its window loop (and from
     the per-shard delivery path it schedules) runs on worker domains *)
  || (Rules.under [ "lib"; "netsim" ] n.Summary.path
      && Rules.basename n.Summary.path = "shard.ml"
      && (n.Summary.qual = "run_windows" || n.Summary.qual = "deliver"))

let check_domain_safety g =
  let roots = ref [] in
  for i = Callgraph.size g - 1 downto 0 do
    if is_sweep_root (Callgraph.node g i) then roots := i :: !roots
  done;
  (* guarded edges count: invariants and tracing can be armed while a
     sweep runs single-domain, and shared state is shared either way *)
  let parent, order = bfs g !roots ~follow:(fun _ -> true) in
  let findings = ref [] in
  List.iter
    (fun i ->
      let n = Callgraph.node g i in
      match n.Summary.creates_mutable with
      | Some what when Rules.under [ "lib" ] n.Summary.path ->
        findings :=
          finding_at g parent i ~rule:Finding.R10 ~file:n.Summary.path
            ~loc:n.Summary.nloc
            (Printf.sprintf
               "toplevel mutable state (%s) is reachable from sweep worker \
                code without per-domain instantiation (chain: %s); domains \
                race on it — use Domain.DLS like Packet.pool, or per-run \
                state"
               what (chain g parent i))
          :: !findings
      | _ -> ())
    order;
  List.rev !findings

(* --- R11: interprocedural determinism taint --------------------------- *)

let kind_index = function
  | Summary.Wall_clock -> 0
  | Summary.Ambient_random -> 1
  | Summary.Table_order -> 2
  | Summary.Float_compare -> 3

let kinds =
  [
    Summary.Wall_clock; Summary.Ambient_random; Summary.Table_order;
    Summary.Float_compare;
  ]

(* A sort anywhere in the node re-establishes a canonical order, so
   Table_order taint neither originates there nor flows through it. *)
let sanitizes (n : Summary.node) = function
  | Summary.Table_order -> n.Summary.sorts
  | _ -> false

let check_determinism_taint g =
  let n = Callgraph.size g in
  let taint = Array.make_matrix n 4 false in
  for i = 0 to n - 1 do
    let nd = Callgraph.node g i in
    List.iter
      (fun (s : Summary.nsource) ->
        if not (sanitizes nd s.skind) then
          taint.(i).(kind_index s.skind) <- true)
      nd.Summary.sources
  done;
  (* Taint flows callee -> caller, to a fixpoint over the (cyclic)
     graph — but only along unguarded edges: calls made under the
     zero-cost-off idiom (profiling self-timing, armed invariants) are
     off the replay path by construction. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let nd = Callgraph.node g i in
      List.iter
        (fun (e : Callgraph.edge) ->
          if e.Callgraph.hot then
            List.iter
              (fun k ->
                let ki = kind_index k in
                if
                  taint.(e.Callgraph.target).(ki)
                  && (not (sanitizes nd k))
                  && not taint.(i).(ki)
                then begin
                  taint.(i).(ki) <- true;
                  changed := true
                end)
              kinds)
        (Callgraph.edges g i)
    done
  done;
  (* explain each tainted sink with the shortest chain to a source *)
  let findings = ref [] in
  for i = 0 to n - 1 do
    let nd = Callgraph.node g i in
    if Rules.under [ "lib" ] nd.Summary.path && nd.Summary.sinks <> [] then
      List.iter
        (fun k ->
          let ki = kind_index k in
          if taint.(i).(ki) then begin
            let follow (e : Callgraph.edge) =
              e.Callgraph.hot
              && taint.(e.Callgraph.target).(ki)
              && not (sanitizes (Callgraph.node g e.Callgraph.target) k)
            in
            let parent, order = bfs g [ i ] ~follow in
            let src =
              List.find_opt
                (fun j ->
                  List.exists
                    (fun (s : Summary.nsource) -> s.Summary.skind = k)
                    (Callgraph.node g j).Summary.sources)
                order
            in
            match src with
            | None -> ()
            | Some j ->
              let s =
                List.find
                  (fun (s : Summary.nsource) -> s.Summary.skind = k)
                  (Callgraph.node g j).Summary.sources
              in
              List.iter
                (fun (sink_name, sink_loc) ->
                  findings :=
                    Finding.v
                      ~root:(nd.Summary.path, line_of nd.Summary.nloc)
                      ~rule:Finding.R11 ~file:nd.Summary.path
                      ~line:(line_of sink_loc) ~col:(col_of sink_loc)
                      (Printf.sprintf
                         "%s flows into %s (chain: %s; source: %s in %s:%d); \
                          emitted output is not reproducible across runs"
                         (Summary.source_kind_name k) sink_name
                         (chain g parent j) s.Summary.sname
                         (Callgraph.node g j).Summary.path
                         (line_of s.Summary.sloc))
                    :: !findings)
                nd.Summary.sinks
          end)
        kinds
  done;
  List.rev !findings
