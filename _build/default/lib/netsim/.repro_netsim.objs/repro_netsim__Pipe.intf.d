lib/netsim/pipe.mli: Packet Sim
