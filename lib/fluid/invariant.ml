(* Debug-time invariant checks for the fluid solvers, mirroring
   Repro_netsim.Invariant (the two libraries cannot share code because
   repro_fluid sits below repro_netsim in the dependency order). Armed
   by OLIA_DEBUG_INVARIANTS=1 or [set_enabled true]; disarmed the
   checks cost one ref read. *)

exception Violation of string

let armed_from_env =
  match Sys.getenv_opt "OLIA_DEBUG_INVARIANTS" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

(* lint: allow R2 -- written once at startup or single-domain test setup, read-only while sweep domains run *)
let armed = ref armed_from_env

let enabled () = !armed
let set_enabled v = armed := v
let require cond msg = if not cond then raise (Violation msg)
