lib/cc/balia.mli: Cc_types
