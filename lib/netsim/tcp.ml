module Trace = Repro_obs.Trace

type path = { fwd : Packet.hop array; rev : Packet.hop array }

type conn = {
  sim : Sim.t;
  rcv_sim : Sim.t;
      (* event loop of the receiver endpoint; [sim] unless the receiver
         lives in another shard's domain (see Shard). Receiver-side
         state (rcv_cum, ooo, the delack fields) is mutated only on
         this loop, sender-side state only on [sim]'s — the two field
         sets are disjoint, so the split needs no locking. *)
  cc : Repro_cc.Cc_types.t;
  flow_id : int;
  mutable subs : sub array;
  mutable views : Repro_cc.Cc_types.subflow_view array;
      (* one long-lived view per subflow, refreshed in place on use *)
  mutable unassigned : int;  (* packets not yet assigned to a subflow; -1 = infinite *)
  mutable completed : bool;
  mutable completion_time : float option;
  size_pkts : int option;
  on_complete : (float -> unit) option;
  min_rto : float;
  rcv_wnd : float;  (* receive-window cap on each subflow's cwnd, packets *)
  delayed_ack : bool;
}

and sub = {
  conn : conn;
  idx : int;
  mutable fwd_route : Packet.hop array;  (* ends at this subflow's sink handler *)
  mutable rev_route : Packet.hop array;  (* ends at the ACK handler *)
  (* sender state *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable limit : int;  (* packets assigned to this subflow (finite flows) *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : float;
  mutable rto_timer : Sim.Timer.t;
  mutable rto_fire : unit -> unit;  (* persistent RTO callback *)
  mutable retransmits : int;
  mutable timeouts : int;
  sacked : (int, unit) Hashtbl.t;  (* scoreboard of SACKed sequences *)
  mutable high_rtx : int;  (* highest seq retransmitted this recovery *)
  mutable inc_cached : float;  (* cached congestion-avoidance increase *)
  mutable inc_credit : int;  (* newly-acked packets the cache still covers *)
  mutable enabled : bool;  (* path manager can stop new data on a subflow *)
  (* receiver state *)
  mutable rcv_cum : int;  (* next expected sequence number *)
  ooo : (int, unit) Hashtbl.t;
  mutable delack_count : int;  (* in-order segments not yet acknowledged *)
  mutable delack_echo : float;  (* timestamp to echo when the delack flushes *)
  mutable delack_timer : Sim.Timer.t;
  mutable delack_fire : unit -> unit;  (* persistent delayed-ACK callback *)
}

let[@inline] min_ssthresh sub =
  if Array.length sub.conn.subs > 1 then
    match sub.conn.cc.Repro_cc.Cc_types.multipath_initial_ssthresh with
    | Some s -> s
    | None -> 2.
  else 2.

let flight sub = sub.snd_nxt - sub.snd_una
let[@inline] invalidate_increase sub = sub.inc_credit <- 0

(* cwnd is measured in MSS-sized packets: below one MSS the ACK clock
   stalls and the subflow silently starves, which shows up downstream
   as an inexplicable throughput collapse — catch it at the source. *)
let check_window sub =
  if Invariant.enabled () then begin
    Invariant.require (sub.cwnd >= 1.)
      (Printf.sprintf "tcp flow %d subflow %d: cwnd %g < 1 MSS"
         sub.conn.flow_id sub.idx sub.cwnd);
    Invariant.require
      (sub.snd_una <= sub.snd_nxt)
      (Printf.sprintf "tcp flow %d subflow %d: snd_una %d > snd_nxt %d"
         sub.conn.flow_id sub.idx sub.snd_una sub.snd_nxt)
  end

(* Trace helpers. All callers capture [Trace.enabled ()] once on entry
   and thread it through, so the tracing-off path costs one ref read per
   instrumented function and allocates nothing (tcp_state values are
   constant constructors). *)
let trace_state sub =
  if sub.in_recovery then Trace.Fast_recovery
  else if sub.cwnd < sub.ssthresh then Trace.Slow_start
  else Trace.Congestion_avoidance

let emit_transition sub ~from_state =
  let to_state = trace_state sub in
  if to_state <> from_state then
    Trace.tcp_state ~time:(Sim.now sub.conn.sim) ~flow:sub.conn.flow_id
      ~subflow:sub.idx ~from_state ~to_state

let emit_cwnd sub =
  Trace.cwnd_update ~time:(Sim.now sub.conn.sim) ~flow:sub.conn.flow_id
    ~subflow:sub.idx ~cwnd:sub.cwnd ~ssthresh:sub.ssthresh

let views conn =
  let vs = conn.views in
  let subs = conn.subs in
  for i = 0 to Array.length subs - 1 do
    let s = subs.(i) in
    let v = vs.(i) in
    v.Repro_cc.Cc_types.cwnd <- s.cwnd;
    v.Repro_cc.Cc_types.rtt <- (if s.srtt > 0. then s.srtt else 0.1)
  done;
  vs

(* --- sending ------------------------------------------------------- *)

let transmit sub seq =
  if Invariant.enabled () then begin
    Invariant.require
      (Array.length sub.fwd_route > 0)
      (Printf.sprintf "tcp flow %d subflow %d: empty forward route"
         sub.conn.flow_id sub.idx);
    Invariant.require (seq >= sub.snd_una)
      (Printf.sprintf
         "tcp flow %d subflow %d: transmitting seq %d below snd_una %d"
         sub.conn.flow_id sub.idx seq sub.snd_una)
  end;
  let p =
    Packet.data ~flow:sub.conn.flow_id ~subflow:sub.idx ~seq
      ~sent_at:(Sim.now sub.conn.sim) ~route:sub.fwd_route
  in
  Packet.forward p

let purge_sacked sub =
  Hashtbl.filter_map_inplace
    (* lint: allow R9 -- the filter closure exists only while SACK state is non-empty, i.e. during loss-recovery episodes *)
    (fun seq () -> if seq >= sub.snd_una then Some () else None)
    sub.sacked

(* RFC 6298 timer management on a single persistent timer per subflow:
   [restart_rto] moves the deadline (or arms the timer if idle) when new
   data is acknowledged; [ensure_rto] arms it, without pushing an
   existing deadline, when data is transmitted. The old idiom of
   scheduling an orphan closure and re-checking a stale deadline at fire
   time is gone: the timer's deadline is always the real one. *)
let restart_rto sub =
  let sim = sub.conn.sim in
  let deadline = Sim.now sim +. sub.rto in
  if Sim.Timer.active sim sub.rto_timer then
    Sim.Timer.reschedule sim sub.rto_timer deadline
  else
    sub.rto_timer <- Sim.schedule_at ~src:"tcp.rto" sim deadline sub.rto_fire

let ensure_rto sub =
  let sim = sub.conn.sim in
  if not (Sim.Timer.active sim sub.rto_timer) then
    sub.rto_timer <-
      Sim.schedule_at ~src:"tcp.rto" sim
        (Sim.now sim +. sub.rto)
        sub.rto_fire

let on_timeout sub =
  let traced = Trace.enabled () in
  let from_state = if traced then trace_state sub else Trace.Slow_start in
  if traced then
    Trace.rto_fired ~time:(Sim.now sub.conn.sim) ~flow:sub.conn.flow_id
      ~subflow:sub.idx ~rto:sub.rto;
  sub.timeouts <- sub.timeouts + 1;
  invalidate_increase sub;
  sub.conn.cc.Repro_cc.Cc_types.on_loss ~idx:sub.idx;
  let fl = float_of_int (flight sub) in
  sub.ssthresh <- Stdlib.max (fl /. 2.) (min_ssthresh sub);
  sub.cwnd <- 1.;
  sub.dupacks <- 0;
  sub.in_recovery <- false;
  sub.retransmits <- sub.retransmits + 1;
  (* go-back-N: everything past the last cumulative ACK is resent as the
     window reopens *)
  sub.snd_nxt <- sub.snd_una;
  sub.high_rtx <- sub.snd_una - 1;
  purge_sacked sub;
  sub.rto <- Stdlib.min (2. *. sub.rto) 60.;
  transmit sub sub.snd_una;
  sub.snd_nxt <- sub.snd_una + 1;
  restart_rto sub;
  if traced then begin
    emit_transition sub ~from_state;
    emit_cwnd sub
  end;
  check_window sub

let can_assign sub =
  if sub.snd_nxt < sub.limit then true
  else if sub.conn.unassigned < 0 then begin
    (* infinite flow: extend the assignment lazily *)
    sub.limit <- sub.snd_nxt + 1;
    true
  end
  else if sub.conn.unassigned > 0 then begin
    sub.conn.unassigned <- sub.conn.unassigned - 1;
    sub.limit <- sub.limit + 1;
    true
  end
  else false

(* Limited transmit (RFC 3042): the first two duplicate ACKs may clock out
   new segments beyond the congestion window. *)
let effective_window sub =
  int_of_float (Stdlib.min sub.cwnd sub.conn.rcv_wnd)
  + if sub.in_recovery then 0 else Stdlib.min sub.dupacks 2

let rec try_send sub =
  if sub.enabled && (not sub.conn.completed)
     && flight sub < effective_window sub then
    if can_assign sub then begin
      (* data after an idle period gets a fresh timer *)
      if flight sub = 0 then restart_rto sub;
      let seq = sub.snd_nxt in
      sub.snd_nxt <- sub.snd_nxt + 1;
      if Hashtbl.mem sub.sacked seq then
        (* the receiver already holds this segment (go-back-N skip) *)
        try_send sub
      else begin
        transmit sub seq;
        ensure_rto sub;
        try_send sub
      end
    end

(* --- receiving acks ------------------------------------------------ *)

let sample_rtt sub echo =
  let rtt = Sim.now sub.conn.sim -. echo in
  if rtt > 0. then begin
    if sub.srtt <= 0. then begin
      sub.srtt <- rtt;
      sub.rttvar <- rtt /. 2.
    end
    else begin
      sub.rttvar <-
        (0.75 *. sub.rttvar) +. (0.25 *. abs_float (sub.srtt -. rtt));
      sub.srtt <- (0.875 *. sub.srtt) +. (0.125 *. rtt)
    end;
    (* Linux floors rttvar at tcp_rto_min/4, so RTO ≈ srtt + 200 ms even
       when the RTT variance collapses; this absorbs queueing-delay spikes
       at the bottleneck without spurious timeouts. *)
    let rttvar = Stdlib.max sub.rttvar (sub.conn.min_rto /. 4.) in
    sub.rto <-
      Stdlib.min 60.
        (Stdlib.max (sub.srtt +. (4. *. rttvar)) sub.conn.min_rto);
    if Trace.enabled () then
      Trace.rtt_sample ~time:(Sim.now sub.conn.sim) ~flow:sub.conn.flow_id
        ~subflow:sub.idx ~rtt ~srtt:sub.srtt
  end

let check_completion conn =
  match conn.size_pkts with
  | None -> ()
  | Some size ->
    let acked = Array.fold_left (fun a s -> a + s.snd_una) 0 conn.subs in
    if acked >= size && not conn.completed then begin
      conn.completed <- true;
      (* lint: allow R9 -- completion transition runs exactly once per connection *)
      conn.completion_time <- Some (Sim.now conn.sim);
      Array.iter
        (* lint: allow R9 -- same once-per-connection transition as above *)
        (fun s ->
          Sim.Timer.cancel conn.sim s.rto_timer;
          (* the delack timer belongs to the receiver's loop; cancelling
             it from the sender's domain would race when the endpoints
             are sharded. Leave it to fire (its callback checks
             delack_count) unless both ends share a loop. *)
          if conn.rcv_sim == conn.sim then
            Sim.Timer.cancel conn.sim s.delack_timer)
        conn.subs;
      match conn.on_complete with
      | Some f -> f (Sim.now conn.sim)
      | None -> ()
    end

(* RFC 6675-style NextSeg: the lowest hole in [snd_una, recover) that has
   not been retransmitted in this recovery episode. The scan is a
   toplevel recursion (a local [rec] closure would capture [sub] and
   allocate on every call). *)
let rec find_hole sub seq =
  if seq >= sub.recover then None
  else if Hashtbl.mem sub.sacked seq then find_hole sub (seq + 1)
  else
    (* lint: allow R9 -- [Some seq] only materializes during loss recovery, bounded by the loss rate, not on the in-order ACK steady state *)
    Some seq

let next_hole sub = find_hole sub (Stdlib.max sub.snd_una (sub.high_rtx + 1))

let retransmit_hole sub =
  match next_hole sub with
  | None -> false
  | Some seq ->
    sub.retransmits <- sub.retransmits + 1;
    sub.high_rtx <- seq;
    transmit sub seq;
    true

let enter_recovery sub =
  let conn = sub.conn in
  let traced = Trace.enabled () in
  let from_state = if traced then trace_state sub else Trace.Slow_start in
  invalidate_increase sub;
  conn.cc.Repro_cc.Cc_types.on_loss ~idx:sub.idx;
  let v = views conn in
  let decrease = conn.cc.Repro_cc.Cc_types.loss_decrease ~views:v ~idx:sub.idx in
  sub.ssthresh <- Stdlib.max (sub.cwnd -. decrease) (min_ssthresh sub);
  sub.recover <- sub.snd_nxt;
  sub.in_recovery <- true;
  sub.high_rtx <- sub.snd_una - 1;
  ignore (retransmit_hole sub);
  sub.cwnd <- sub.ssthresh +. float_of_int sub.dupacks;
  ensure_rto sub;
  if traced then emit_transition sub ~from_state;
  check_window sub

(* The coupled increase (e.g. OLIA's alpha) is a whole-connection
   computation — O(subflows) work and allocation per call — for a value
   that only drifts on RTT timescales. Refresh it once per cwnd of
   newly-acked packets and spend the cached value in between; every
   cwnd/ssthresh discontinuity (loss, timeout, recovery exit, path-
   manager changes) invalidates the cache so the next ACK recomputes. *)
let congestion_avoidance_increase sub newly =
  let conn = sub.conn in
  if sub.inc_credit <= 0 then begin
    let v = views conn in
    sub.inc_cached <- conn.cc.Repro_cc.Cc_types.increase ~views:v ~idx:sub.idx;
    sub.inc_credit <- Stdlib.max 1 (int_of_float sub.cwnd)
  end;
  sub.inc_credit <- sub.inc_credit - newly;
  sub.cwnd <- Stdlib.max 1. (sub.cwnd +. (float_of_int newly *. sub.inc_cached))

let on_new_ack sub ackno =
  let conn = sub.conn in
  let traced = Trace.enabled () in
  let from_state = if traced then trace_state sub else Trace.Slow_start in
  let newly = ackno - sub.snd_una in
  sub.snd_una <- ackno;
  (* after a go-back-N rewind the receiver may already hold later data *)
  if ackno > sub.snd_nxt then sub.snd_nxt <- ackno;
  conn.cc.Repro_cc.Cc_types.on_ack ~idx:sub.idx ~acked:(float_of_int newly);
  if sub.in_recovery then begin
    if ackno > sub.recover then begin
      (* full ACK: leave recovery, deflate to ssthresh *)
      invalidate_increase sub;
      sub.in_recovery <- false;
      sub.dupacks <- 0;
      sub.cwnd <- Stdlib.max 1. sub.ssthresh;
      purge_sacked sub
    end
    else begin
      (* partial ACK: retransmit the next hole, deflate *)
      ignore (retransmit_hole sub);
      sub.cwnd <- Stdlib.max 1. (sub.cwnd -. float_of_int newly +. 1.)
    end
  end
  else begin
    sub.dupacks <- 0;
    if sub.cwnd < sub.ssthresh then
      (* slow start, with appropriate-byte-counting capped at 2 packets
         per ACK so cumulative jumps after recovery do not cause bursts *)
      sub.cwnd <- sub.cwnd +. float_of_int (Stdlib.min newly 2)
    else congestion_avoidance_increase sub newly
  end;
  (* restart unconditionally: at w = 1 the flight is momentarily zero here
     (the next segment goes out in try_send just after), and a stale
     deadline would fire spuriously mid-flight *)
  restart_rto sub;
  if traced then begin
    emit_transition sub ~from_state;
    emit_cwnd sub
  end;
  check_window sub;
  check_completion conn

(* Early retransmit (RFC 5827): with fewer than four segments in flight the
   duplicate-ACK threshold drops to flight-1, so small windows can still
   recover without a timeout. *)
let dupack_threshold sub =
  let fl = flight sub in
  if fl >= 4 then 3 else Stdlib.max 1 (fl - 1)

let on_dup_ack sub =
  if sub.in_recovery then begin
    (* each duplicate means a packet left the network: retransmit the next
       SACK hole if any, else inflate to clock out new data *)
    if not (retransmit_hole sub) then sub.cwnd <- sub.cwnd +. 1.
  end
  else begin
    sub.dupacks <- sub.dupacks + 1;
    if sub.dupacks >= dupack_threshold sub then enter_recovery sub
  end;
  if Trace.enabled () then emit_cwnd sub;
  check_window sub

let record_sack sub = function
  | None -> ()
  | Some (lo, hi) ->
    for seq = lo to hi - 1 do
      if seq >= sub.snd_una && not (Hashtbl.mem sub.sacked seq) then
        (* lint: allow R9 -- SACK bookkeeping only on reordered ACKs, bounded by the reorder window *)
        Hashtbl.add sub.sacked seq ()
    done

let[@olia.alloc_free] ack_handler sub (p : Packet.t) =
  (match p.kind with
  | Packet.Data -> assert false
  | Packet.Ack ->
    if not sub.conn.completed then begin
      let ackno = p.ackno in
      sample_rtt sub p.times.echo;
      record_sack sub p.sack;
      (* the packet goes back to the pool before the ACK is processed:
         nothing below reads it, and the cell is free for reuse by
         whatever try_send transmits *)
      Packet.free p;
      if ackno > sub.snd_una then on_new_ack sub ackno
      else if ackno = sub.snd_una then on_dup_ack sub;
      try_send sub
    end
    else Packet.free p)

(* --- receiver ------------------------------------------------------ *)

(* The SACK block is the contiguous run of out-of-order data around the
   segment that just arrived, as a real receiver would report first.
   The run bounds walk tail-recursively rather than through local
   [ref]s; the [Some] block itself only exists on reordered arrivals. *)
let rec sack_lo sub lo =
  if Hashtbl.mem sub.ooo (lo - 1) then sack_lo sub (lo - 1) else lo

let rec sack_hi sub hi =
  if Hashtbl.mem sub.ooo hi then sack_hi sub (hi + 1) else hi

let sack_block_around sub seq =
  if not (Hashtbl.mem sub.ooo seq) then None
  else
    (* lint: allow R9 -- SACK blocks are built only for out-of-order arrivals, off the in-order steady state the alloc-free proof covers *)
    Some (sack_lo sub seq, sack_hi sub (seq + 1))

let send_ack sub ~echo ~sack =
  sub.delack_count <- 0;
  let ack =
    Packet.ack ~flow:sub.conn.flow_id ~subflow:sub.idx ~ackno:sub.rcv_cum
      ~echo ~sack ~route:sub.rev_route ~sent_at:(Sim.now sub.conn.rcv_sim)
  in
  Packet.forward ack

(* RFC 1122 delayed-ACK timer: flush a pending acknowledgment within
   100 ms even if the second segment never arrives. *)
let arm_delack_timer sub =
  let sim = sub.conn.rcv_sim in
  if not (Sim.Timer.active sim sub.delack_timer) then
    sub.delack_timer <-
      Sim.schedule_after ~src:"tcp.delack" sim 0.1 sub.delack_fire

let[@olia.alloc_free] sink_handler sub (p : Packet.t) =
  match p.kind with
  | Packet.Ack -> assert false
  | Packet.Data ->
    let seq = p.seq in
    let sent_at = p.times.sent_at in
    (* the sink owns the segment; recycle it before building the ACK so
       the ACK reuses the same pool cell *)
    Packet.free p;
    let in_order = seq = sub.rcv_cum in
    if in_order then begin
      sub.rcv_cum <- sub.rcv_cum + 1;
      while Hashtbl.mem sub.ooo sub.rcv_cum do
        Hashtbl.remove sub.ooo sub.rcv_cum;
        sub.rcv_cum <- sub.rcv_cum + 1
      done
    end
    else if seq > sub.rcv_cum && not (Hashtbl.mem sub.ooo seq) then
      (* lint: allow R9 -- out-of-order bookkeeping, absent on the in-order steady state *)
      Hashtbl.add sub.ooo seq ();
    let gap = Hashtbl.length sub.ooo > 0 in
    if sub.conn.delayed_ack && in_order && not gap then begin
      sub.delack_count <- sub.delack_count + 1;
      sub.delack_echo <- sent_at;
      if sub.delack_count >= 2 then send_ack sub ~echo:sent_at ~sack:None
      else arm_delack_timer sub
    end
    else
      (* out-of-order data, duplicates and hole-filling segments are
         acknowledged immediately, carrying SACK information *)
      send_ack sub ~echo:sent_at ~sack:(sack_block_around sub seq)

(* --- construction --------------------------------------------------- *)

let create ~sim ?rcv_sim ~cc ~paths ?size_pkts ?(start = 0.)
    ?(initial_cwnd = 2.) ?(min_rto = 0.2) ?(rcv_wnd = 10_000.)
    ?(delayed_ack = false) ?(subflow_join_delay = 0.) ?on_complete ~flow_id
    () =
  if Array.length paths = 0 then invalid_arg "Tcp.create: no paths";
  let rcv_sim = match rcv_sim with Some s -> s | None -> sim in
  let conn =
    {
      sim;
      rcv_sim;
      cc;
      flow_id;
      subs = [||];
      views = [||];
      unassigned = (match size_pkts with None -> -1 | Some s -> s);
      completed = false;
      completion_time = None;
      size_pkts;
      on_complete;
      min_rto;
      rcv_wnd;
      delayed_ack;
    }
  in
  let multipath = Array.length paths > 1 in
  let initial_ssthresh =
    if multipath then
      match cc.Repro_cc.Cc_types.multipath_initial_ssthresh with
      | Some s -> s
      | None -> infinity
    else infinity
  in
  let make_sub idx (path : path) =
    let sub =
      {
        conn;
        idx;
        fwd_route = [||];
        rev_route = [||];
        cwnd = initial_cwnd;
        ssthresh = initial_ssthresh;
        snd_una = 0;
        snd_nxt = 0;
        limit = 0;
        dupacks = 0;
        in_recovery = false;
        recover = 0;
        srtt = 0.;
        rttvar = 0.;
        rto = 1.;
        rto_timer = Sim.Timer.none;
        rto_fire = ignore;
        retransmits = 0;
        timeouts = 0;
        sacked = Hashtbl.create 64;
        high_rtx = -1;
        inc_cached = 0.;
        inc_credit = 0;
        enabled = true;
        rcv_cum = 0;
        ooo = Hashtbl.create 64;
        delack_count = 0;
        delack_echo = 0.;
        delack_timer = Sim.Timer.none;
        delack_fire = ignore;
      }
    in
    sub.fwd_route <- Array.append path.fwd [| sink_handler sub |];
    sub.rev_route <- Array.append path.rev [| ack_handler sub |];
    sub.rto_fire <-
      (fun () ->
        if (not sub.conn.completed) && flight sub > 0 then on_timeout sub);
    sub.delack_fire <-
      (fun () ->
        if sub.delack_count > 0 then
          send_ack sub ~echo:sub.delack_echo ~sack:None);
    sub
  in
  conn.subs <- Array.mapi make_sub paths;
  conn.views <-
    Array.map
      (fun _ -> { Repro_cc.Cc_types.cwnd = 0.; rtt = 0.1 })
      conn.subs;
  (* the first subflow starts immediately; additional subflows join after
     the MP_JOIN handshake delay, as in real MPTCP *)
  Array.iteri
    (fun idx sub ->
      let at = if idx = 0 then start else start +. subflow_join_delay in
      ignore
        (Sim.schedule_at ~src:"tcp.start" sim at (fun () ->
             if Trace.enabled () then
               Trace.subflow_add ~time:(Sim.now sim) ~flow:conn.flow_id
                 ~subflow:idx;
             try_send sub)
          : Sim.Timer.t))
    conn.subs;
  conn

let subflow_count conn = Array.length conn.subs

let total_acked conn =
  Array.fold_left (fun a s -> a + s.snd_una) 0 conn.subs

let completed conn = conn.completed
let completion_time conn = conn.completion_time
let subflow_cwnd conn idx = conn.subs.(idx).cwnd
let subflow_ssthresh conn idx = conn.subs.(idx).ssthresh
let subflow_rtt conn idx = conn.subs.(idx).srtt
let subflow_acked conn idx = conn.subs.(idx).snd_una
let subflow_retransmits conn idx = conn.subs.(idx).retransmits
let subflow_timeouts conn idx = conn.subs.(idx).timeouts

let set_subflow_enabled conn idx enabled =
  let sub = conn.subs.(idx) in
  if Trace.enabled () && sub.enabled <> enabled then
    if enabled then
      Trace.subflow_add ~time:(Sim.now conn.sim) ~flow:conn.flow_id
        ~subflow:idx
    else
      Trace.subflow_remove ~time:(Sim.now conn.sim) ~flow:conn.flow_id
        ~subflow:idx;
  (* the subflow set feeds every subflow's coupled increase *)
  Array.iter invalidate_increase conn.subs;
  sub.enabled <- enabled;
  if enabled then try_send sub

let subflow_enabled conn idx = conn.subs.(idx).enabled
