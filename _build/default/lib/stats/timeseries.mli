(** Append-only time series of [(time, value)] samples, used for window and
    alpha traces (Figs. 7–8) and throughput-over-time probes. *)

type t

val create : unit -> t
(** Empty series. *)

val add : t -> time:float -> float -> unit
(** Append a sample. Times must be non-decreasing; out-of-order samples
    raise [Invalid_argument]. *)

val length : t -> int
(** Number of samples. *)

val to_array : t -> (float * float) array
(** All samples, oldest first. *)

val last : t -> (float * float) option
(** Most recent sample, if any. *)

val mean_over : t -> from:float -> until:float -> float
(** Time-weighted mean of the (piecewise-constant) signal on
    [\[from, until)]; [nan] if the series has no sample at or before
    [from]. Used for steady-state averaging after a warm-up period. *)

val resample : t -> dt:float -> from:float -> until:float -> float array
(** Sample-and-hold resampling on a regular grid, for plotting traces. *)

val fold : t -> init:'a -> f:('a -> float -> float -> 'a) -> 'a
(** [fold t ~init ~f] folds [f acc time value] over samples in order. *)
