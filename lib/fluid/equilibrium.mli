(** General-network equilibrium solver: computes the fixed-point rate
    allocation of TCP (uncoupled), LIA or OLIA on an arbitrary
    [Network_model.t] by damped fixed-point iteration on the
    loss–throughput formulas. This generalizes the closed-form Scenario
    A/B/C analyses and lets tests cross-validate them. *)

type algorithm =
  | Uncoupled  (** independent TCP on every route (the ε=2 end point) *)
  | Lia  (** paper Eq. 2 *)
  | Olia  (** paper Theorem 1: best paths only *)
  | Olia_probing  (** Theorem 1 plus one MSS/RTT on non-best paths *)

type options = {
  damping : float;  (** step of the damped iteration, default 0.05 *)
  max_iter : int;  (** default 50_000 *)
  tol : float;  (** relative change threshold, default 1e-9 *)
  min_loss : float;  (** floor on route loss, default 1e-10 *)
}

val default_options : options

val solve :
  ?options:options -> Network_model.t -> algorithm -> float array array
(** [solve net algo] returns per-user per-route equilibrium rates.
    Raises [Failure] if the iteration does not converge. With
    {!Invariant.enabled} ([OLIA_DEBUG_INVARIANTS=1]) the converged
    point is re-checked through {!check_fixed_point} before it is
    returned. *)

val residual :
  ?min_loss:float -> Network_model.t -> algorithm -> float array array -> float
(** Worst relative gap between an allocation and the rates the
    algorithm's loss–throughput formula assigns at the losses that
    allocation induces: exactly 0 at a fixed point. [min_loss] floors
    route losses as in {!solve} (default {!default_options}). *)

val check_fixed_point :
  ?options:options -> Network_model.t -> algorithm -> float array array -> unit
(** When {!Invariant.enabled}, raises [Invariant.Violation] unless
    {!residual} is finite and within [50·tol/damping] — the bound the
    damped iteration's own convergence test implies. A no-op when
    invariants are disarmed. *)

val user_utilities : Network_model.t -> float array array -> float array
(** Per-user values of [Σ_r x_r / rtt_r²], the quantity Theorem 3 shows
    cannot be improved for one user without hurting another. *)

val pareto_witness :
  ?trials:int ->
  ?step:float ->
  seed:int ->
  Network_model.t ->
  float array array ->
  float array array option
(** Random-search check of Theorem 3: attempts [trials] random feasible
    perturbations of the allocation and returns one that Pareto-dominates
    it (all user utilities no worse, one strictly better, congestion cost
    not increased), or [None] if none is found. A correct OLIA fixed point
    should always yield [None]. *)
