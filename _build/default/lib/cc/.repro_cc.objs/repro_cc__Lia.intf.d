lib/cc/lia.mli: Cc_types
