type t = { sim : Sim.t; delay : float }

let create ~sim ~delay =
  if delay < 0. then invalid_arg "Pipe.create: negative delay";
  { sim; delay }

(* The packet rides in the timer cell itself and [Packet.forward] is a
   static function, so a pipe traversal schedules without allocating. *)
let[@olia.alloc_free] hop t (p : Packet.t) =
  ignore
    (Sim.schedule_pkt_after ~src:"pipe.deliver" t.sim t.delay Packet.forward p
      : Sim.Timer.t)

let delay t = t.delay
