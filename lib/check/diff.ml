module Json = Repro_stats.Json
module SA = Repro_scenarios.Scen_a
module SB = Repro_scenarios.Scen_b
module SC = Repro_scenarios.Scen_c
module Cc = Repro_cc.Cc_types
module Registry = Repro_cc.Registry

(* Differential conformance between the float congestion-control model
   and its fixed-point kernel twins: the same seeded scenario is run
   once per backend and the resulting metrics must agree within a
   divergence band. The twins truncate cwnd to whole packets and carry
   every update in scaled integers, so the trajectories are not
   identical — but both sit in the same equilibrium basin, and the
   bands bound how far the integer arithmetic may drift the measured
   goodputs. Every case carries the provenance of the integer side:
   which kernel source its arithmetic mirrors. *)

let olia_source =
  "net/mptcp/mptcp_olia.c (linux-4.1 MPTCP tree): scale=10 fixed-point \
   rate/epsilon/snd_cwnd_cnt arithmetic"

let balia_source =
  "net/mptcp/mptcp_balia.c (linux-4.1 MPTCP tree): recalc_ai with \
   alpha_scale=10, rate_scale_limit=25, scale_num=5"

(* A [Rel tol] check compares the float-backend metric against the
   fixed-backend metric by relative deviation; a [Bound limit] check
   requires the (joint) metric itself to stay at or below [limit] —
   used for the lockstep drivers' trajectory-divergence metrics, which
   measure both backends at once. *)
type tolerance = Rel of float | Bound of float

type check = { metric : string; tol : tolerance }

type case = {
  name : string;
  doc : string;
  source : string;  (** kernel provenance of the fixed-point side *)
  float_algo : string;
  fixed_algo : string;
  checks : check list;
  run : unit -> (string * float) list * (string * float) list;
      (** metrics of the float run and of the fixed-point run *)
}

(* --- lockstep driver --------------------------------------------------- *)

(* Drive two CC backends through an identical, fully prescribed ACK/loss
   schedule on two asymmetric synthetic subflows — no simulator, no
   randomness. Each step delivers one ACK per subflow (or a prescribed
   loss), applies the backend's increase/decrease to its own view
   array, and tracks the largest relative cwnd divergence between the
   trajectories. This pins the per-ACK update rules against each other
   far more tightly than a goodput comparison can. *)

type lockstep_result = {
  max_rel_divergence : float;
  final_float : float array;  (** per-subflow cwnd after the run *)
  final_fixed : float array;
}

let lockstep_subflows = [| (10., 0.05); (6., 0.15) |]

let lockstep ?(steps = 4000) ~float_algo ~fixed_algo () =
  let mk algo =
    ( Registry.create algo,
      Array.map
        (fun (cwnd, rtt) -> { Cc.cwnd; rtt })
        lockstep_subflows )
  in
  let ccf, vf = mk float_algo in
  let cci, vi = mk fixed_algo in
  let nsub = Array.length lockstep_subflows in
  let step_one (cc : Cc.t) v idx loss =
    if loss then begin
      cc.Cc.on_loss ~idx;
      let d = cc.Cc.loss_decrease ~views:v ~idx in
      v.(idx).Cc.cwnd <- Stdlib.max 1. (v.(idx).Cc.cwnd -. d)
    end
    else begin
      cc.Cc.on_ack ~idx ~acked:1.;
      let inc = cc.Cc.increase ~views:v ~idx in
      v.(idx).Cc.cwnd <- Stdlib.max 1. (v.(idx).Cc.cwnd +. inc)
    end
  in
  let max_rel = ref 0. in
  for t = 1 to steps do
    for idx = 0 to nsub - 1 do
      (* losses at fixed co-prime periods: identical on both backends,
         dependent on neither backend's state *)
      let loss = t mod (311 + (172 * idx)) = 0 in
      step_one ccf vf idx loss;
      step_one cci vi idx loss
    done;
    for idx = 0 to nsub - 1 do
      (* the twin keeps an integer cwnd, so the trajectories may always
         sit one packet apart; the divergence metric allows that
         quantum and bounds the drift beyond it *)
      let d = abs_float (vf.(idx).Cc.cwnd -. vi.(idx).Cc.cwnd) in
      let rel =
        Stdlib.max 0. (d -. 1.)
        /. Stdlib.max (Stdlib.max vf.(idx).Cc.cwnd vi.(idx).Cc.cwnd) 1.
      in
      if rel > !max_rel then max_rel := rel
    done
  done;
  {
    max_rel_divergence = !max_rel;
    final_float = Array.map (fun v -> v.Cc.cwnd) vf;
    final_fixed = Array.map (fun v -> v.Cc.cwnd) vi;
  }

(* --- the case registry ------------------------------------------------- *)

let metrics_a (r : SA.result) =
  [ ("norm_type1", r.SA.norm_type1); ("norm_type2", r.SA.norm_type2) ]

let metrics_b (r : SB.result) =
  [
    ("blue_rate", r.SB.blue_rate);
    ("red_rate", r.SB.red_rate);
    ("aggregate", r.SB.aggregate);
  ]

let metrics_c (r : SC.result) =
  [
    ("norm_multipath", r.SC.norm_multipath);
    ("norm_single", r.SC.norm_single);
  ]

(* The quick profile shortens the runs for the test suite; the full
   profile is what `olia_sim check --diff` and CI run. Tolerances are
   looser on the quick profile: short windows average less noise. *)
let scenario_case ~quick ~name ~doc ~source ~float_algo ~fixed_algo ~metrics
    run =
  let rtol = if quick then 0.30 else 0.20 in
  {
    name;
    doc;
    source;
    float_algo;
    fixed_algo;
    checks = List.map (fun m -> { metric = m; tol = Rel rtol }) metrics;
    run = (fun () -> (run float_algo, run fixed_algo));
  }

let lockstep_case ~name ~doc ~source ~float_algo ~fixed_algo ~max_div =
  {
    name;
    doc;
    source;
    float_algo;
    fixed_algo;
    checks =
      [
        { metric = "max_rel_divergence"; tol = Bound max_div };
        { metric = "final_cwnd_sf0"; tol = Rel max_div };
        { metric = "final_cwnd_sf1"; tol = Rel max_div };
      ];
    run =
      (fun () ->
        let r = lockstep ~float_algo ~fixed_algo () in
        let side final =
          [
            ("max_rel_divergence", r.max_rel_divergence);
            ("final_cwnd_sf0", final.(0));
            ("final_cwnd_sf1", final.(1));
          ]
        in
        (side r.final_float, side r.final_fixed));
  }

let cases ?(quick = false) () =
  let dur_a d w (c : SA.config) = { c with SA.duration = d; warmup = w } in
  let dur_b d w (c : SB.config) = { c with SB.duration = d; warmup = w } in
  let dur_c d w (c : SC.config) = { c with SC.duration = d; warmup = w } in
  let d, w = if quick then (10., 2.) else (60., 15.) in
  let run_a algo = metrics_a (SA.run (dur_a d w { SA.default with algo })) in
  let run_b algo =
    metrics_b (SB.run (dur_b d w { SB.default with SB.algo; red_multipath = true }))
  in
  let run_c algo = metrics_c (SC.run (dur_c d w { SC.default with SC.algo })) in
  let sc = scenario_case ~quick in
  [
    sc ~name:"diff/a-olia" ~float_algo:"olia" ~fixed_algo:"olia-fp"
      ~source:olia_source ~metrics:[ "norm_type1"; "norm_type2" ]
      ~doc:"scenario A: float OLIA vs the scale=10 integer twin" run_a;
    sc ~name:"diff/a-balia" ~float_algo:"balia" ~fixed_algo:"balia-fp"
      ~source:balia_source ~metrics:[ "norm_type1"; "norm_type2" ]
      ~doc:"scenario A: float BALIA vs the recalc_ai integer twin" run_a;
    sc ~name:"diff/b-olia" ~float_algo:"olia" ~fixed_algo:"olia-fp"
      ~source:olia_source ~metrics:[ "blue_rate"; "red_rate"; "aggregate" ]
      ~doc:"scenario B (Red multipath): float OLIA vs the integer twin"
      run_b;
    sc ~name:"diff/b-balia" ~float_algo:"balia" ~fixed_algo:"balia-fp"
      ~source:balia_source ~metrics:[ "blue_rate"; "red_rate"; "aggregate" ]
      ~doc:"scenario B (Red multipath): float BALIA vs the integer twin"
      run_b;
    sc ~name:"diff/c-olia" ~float_algo:"olia" ~fixed_algo:"olia-fp"
      ~source:olia_source ~metrics:[ "norm_multipath"; "norm_single" ]
      ~doc:"scenario C: float OLIA vs the scale=10 integer twin" run_c;
    sc ~name:"diff/c-balia" ~float_algo:"balia" ~fixed_algo:"balia-fp"
      ~source:balia_source ~metrics:[ "norm_multipath"; "norm_single" ]
      ~doc:"scenario C: float BALIA vs the recalc_ai integer twin" run_c;
    lockstep_case ~name:"diff/lockstep-olia" ~float_algo:"olia"
      ~fixed_algo:"olia-fp" ~source:olia_source ~max_div:0.25
      ~doc:
        "per-ACK lockstep: both OLIA backends on one prescribed ACK/loss \
         schedule, bounded cwnd divergence";
    lockstep_case ~name:"diff/lockstep-balia" ~float_algo:"balia"
      ~fixed_algo:"balia-fp" ~source:balia_source ~max_div:0.25
      ~doc:
        "per-ACK lockstep: both BALIA backends on one prescribed ACK/loss \
         schedule, bounded cwnd divergence";
  ]

(* --- running and reporting --------------------------------------------- *)

type check_result = {
  metric : string;
  float_value : float;
  fixed_value : float;
  deviation : float;  (** relative deviation, or the bounded value *)
  limit : float;
  pass : bool;
}

type case_report = {
  case : string;
  doc : string;
  source : string;
  float_algo : string;
  fixed_algo : string;
  results : check_result list;
  pass : bool;
}

type report = {
  cases : case_report list;
  pass : bool;
  checks_total : int;
  checks_failed : int;
}

let lookup metrics name =
  match List.assoc_opt name metrics with Some v -> v | None -> Float.nan

let run_case c =
  let fm, xm = c.run () in
  let results =
    List.map
      (fun (ck : check) ->
        let fv = lookup fm ck.metric and xv = lookup xm ck.metric in
        let deviation, limit =
          match ck.tol with
          | Rel rtol ->
              (abs_float (fv -. xv) /. Stdlib.max (abs_float fv) 1e-9, rtol)
          | Bound b -> (xv, b)
        in
        {
          metric = ck.metric;
          float_value = fv;
          fixed_value = xv;
          deviation;
          limit;
          pass =
            Float.is_finite fv && Float.is_finite xv
            && Float.is_finite deviation && deviation <= limit;
        })
      c.checks
  in
  {
    case = c.name;
    doc = c.doc;
    source = c.source;
    float_algo = c.float_algo;
    fixed_algo = c.fixed_algo;
    results;
    pass = List.for_all (fun (r : check_result) -> r.pass) results;
  }

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  if ln = 0 then true
  else
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0

let run_all ?only ?(quick = false) () =
  let cs = cases ~quick () in
  let cs =
    match only with
    | None -> cs
    | Some s -> List.filter (fun c -> contains c.name s) cs
  in
  let reports = List.map run_case cs in
  let checks_total =
    List.fold_left (fun n r -> n + List.length r.results) 0 reports
  in
  let checks_failed =
    List.fold_left
      (fun n r ->
        n
        + List.length
            (List.filter (fun (c : check_result) -> not c.pass) r.results))
      0 reports
  in
  {
    cases = reports;
    pass = List.for_all (fun (r : case_report) -> r.pass) reports;
    checks_total;
    checks_failed;
  }

let check_result_to_json r =
  Json.Obj
    [
      ("metric", Json.String r.metric);
      ("float", Json.Float r.float_value);
      ("fixed", Json.Float r.fixed_value);
      ("deviation", Json.Float r.deviation);
      ("limit", Json.Float r.limit);
      ("pass", Json.Bool r.pass);
    ]

let case_report_to_json cr =
  Json.Obj
    [
      ("case", Json.String cr.case);
      ("doc", Json.String cr.doc);
      ("source", Json.String cr.source);
      ("float_algo", Json.String cr.float_algo);
      ("fixed_algo", Json.String cr.fixed_algo);
      ("pass", Json.Bool cr.pass);
      ("checks", Json.List (List.map check_result_to_json cr.results));
    ]

let report_to_json r =
  Json.Obj
    [
      ("pass", Json.Bool r.pass);
      ("cases_total", Json.Int (List.length r.cases));
      ( "cases_failed",
        Json.Int
          (List.length
             (List.filter (fun (c : case_report) -> not c.pass) r.cases)) );
      ("checks_total", Json.Int r.checks_total);
      ("checks_failed", Json.Int r.checks_failed);
      ("cases", Json.List (List.map case_report_to_json r.cases));
    ]
