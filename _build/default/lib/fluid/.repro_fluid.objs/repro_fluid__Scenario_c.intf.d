lib/fluid/scenario_c.mli:
