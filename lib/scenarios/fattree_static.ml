open Repro_netsim

type config = {
  k : int;
  rate_mbps : float;
  delay_ms : float;
  subflows : int;
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
}

let default =
  {
    k = 8;
    rate_mbps = 10.;
    delay_ms = 1.;
    subflows = 8;
    algo = "olia";
    duration = 40.;
    warmup = 10.;
    seed = 1;
  }

type result = {
  flow_mbps : float array;
  aggregate_pct_optimal : float;
  ranked_pct : float array;
  mean_core_loss : float;
}

let run cfg =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let rate = cfg.rate_mbps *. 1e6 in
  let tree =
    Repro_topology.Fattree.create ~sim ~rng:(Rng.split rng) ~k:cfg.k ~rate_bps:rate
      ~delay:(cfg.delay_ms /. 1000.)
      ~buffer_pkts:100 ~discipline:Queue.Droptail ()
  in
  let hosts = Repro_topology.Fattree.host_count tree in
  let flows =
    Repro_workload.Workload.permutation_long_flows ~rng:(Rng.split rng) ~hosts ~max_jitter:1.
  in
  let factory =
    if cfg.subflows <= 1 then fun () -> Repro_cc.Reno.create ()
    else Common.factory_of_name cfg.algo
  in
  let conns =
    List.map
      (fun { Repro_workload.Workload.start; src; dst; _ } ->
        let paths =
          Repro_topology.Fattree.sample_paths tree ~rng ~src ~dst ~n:(Stdlib.max 1 cfg.subflows)
        in
        Tcp.create ~sim ~cc:(factory ()) ~paths ~start ~flow_id:src ())
      flows
  in
  let core = Repro_topology.Fattree.core_queues tree in
  ignore
    (Sim.schedule_at ~src:"scenario.warmup" sim cfg.warmup (fun () ->
         List.iter Queue.reset_stats (Repro_topology.Fattree.all_queues tree))
      : Sim.Timer.t);
  let measured =
    Common.measure_conns ~sim ~warmup:cfg.warmup ~duration:cfg.duration conns
  in
  let flow_mbps =
    Array.of_list (List.map (fun m -> m.Common.goodput_mbps) measured)
  in
  let total = Array.fold_left ( +. ) 0. flow_mbps in
  let optimal = float_of_int hosts *. cfg.rate_mbps in
  let ranked_pct =
    let a = Array.map (fun m -> 100. *. m /. cfg.rate_mbps) flow_mbps in
    Array.sort compare a;
    a
  in
  let losses = List.map Queue.loss_probability core in
  {
    flow_mbps;
    aggregate_pct_optimal = 100. *. total /. optimal;
    ranked_pct;
    mean_core_loss = Common.mean losses;
  }
