lib/stats/table.mli:
