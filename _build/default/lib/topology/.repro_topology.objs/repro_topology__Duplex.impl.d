lib/topology/duplex.ml: Pipe Queue Repro_netsim Rng
