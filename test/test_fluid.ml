open Mptcp_repro.Fluid

let check_close eps = Test_common.close ~atol:eps

(* --- Roots ---------------------------------------------------------- *)

let test_bisect_sqrt2 () =
  let r = Roots.bisect ~f:(fun x -> (x *. x) -. 2.) 0. 2. in
  check_close 1e-9 "sqrt 2" (sqrt 2.) r

let test_bisect_endpoint_root () =
  check_close 1e-12 "root at lo" 0. (Roots.bisect ~f:(fun x -> x) 0. 1.);
  check_close 1e-12 "root at hi" 1.
    (Roots.bisect ~f:(fun x -> x -. 1.) 0. 1.)

let test_bisect_no_sign_change () =
  Alcotest.check_raises "raises"
    (Invalid_argument "Roots.bisect: no sign change on the interval")
    (fun () -> ignore (Roots.bisect ~f:(fun x -> (x *. x) +. 1.) 0. 1.))

let test_increasing_root () =
  let r = Roots.find_increasing_root ~f:(fun x -> log x) () in
  check_close 1e-9 "log root" 1. r;
  let r = Roots.find_increasing_root ~f:(fun x -> x -. 1e6) () in
  check_close 1e-3 "large root" 1e6 r;
  let r = Roots.find_increasing_root ~f:(fun x -> x -. 1e-6) () in
  check_close 1e-12 "small root" 1e-6 r

let test_newton () =
  let r = Roots.newton ~f:(fun x -> (x *. x) -. 2.) ~df:(fun x -> 2. *. x) 1. in
  check_close 1e-9 "sqrt 2" (sqrt 2.) r

let test_newton_zero_derivative () =
  Alcotest.check_raises "raises" (Failure "Roots.newton: zero derivative")
    (fun () ->
      ignore (Roots.newton ~f:(fun x -> (x *. x) +. 1.) ~df:(fun _ -> 0.) 0.))

let test_poly_eval () =
  (* 1 + 2x + 3x² at x = 2 → 17 *)
  check_close 1e-12 "horner" 17. (Roots.poly_eval [| 1.; 2.; 3. |] 2.)

let test_poly_derivative () =
  let d = Roots.poly_derivative [| 1.; 2.; 3. |] in
  check_close 1e-12 "d at 2" 14. (Roots.poly_eval d 2.)

let test_positive_poly_root () =
  (* z³ + z² + z − 3 has root 1 *)
  check_close 1e-9 "cubic" 1. (Roots.positive_poly_root [| -3.; 1.; 1.; 1. |])

let prop_positive_poly_root_is_root =
  QCheck.Test.make ~name:"roots: positive_poly_root satisfies p(z)=0"
    ~count:200
    QCheck.(
      quad (float_range 0.1 50.) (float_range 0. 5.) (float_range 0. 5.)
        (float_range 0.1 5.))
    (fun (c0, c1, c2, c3) ->
      let coeffs = [| -.c0; c1; c2; c3 |] in
      let z = Roots.positive_poly_root coeffs in
      z > 0. && abs_float (Roots.poly_eval coeffs z) < 1e-6 *. (1. +. c0))

(* --- Units ---------------------------------------------------------- *)

let test_units_roundtrip () =
  check_close 1e-9 "roundtrip" 7.5 (Units.mbps_of_pps (Units.pps_of_mbps 7.5));
  (* 1 Mb/s = 10^6 / 12000 packets of 1500 B *)
  check_close 1e-9 "1 Mbps" (1e6 /. 12000.) (Units.pps_of_mbps 1.);
  check_close 1e-9 "probe" (1. /. 0.15) (Units.probe_rate ~rtt:0.15)

(* --- Tcp_model ------------------------------------------------------ *)

let test_tcp_rate_formula () =
  let p = { Tcp_model.loss = 0.02; rtt = 0.1 } in
  check_close 1e-9 "rate" (10. *. sqrt 100.) (Tcp_model.tcp_rate p)

let test_tcp_rate_zero_loss () =
  Alcotest.(check bool) "infinite" true
    (Float.equal (Tcp_model.tcp_rate { Tcp_model.loss = 0.; rtt = 0.1 }) infinity)

let test_tcp_loss_inverse () =
  let rtt = 0.15 in
  let rate = 100. in
  let p = Tcp_model.tcp_loss_for_rate ~rtt rate in
  check_close 1e-6 "inverse" rate (Tcp_model.tcp_rate { Tcp_model.loss = p; rtt })

let test_best_path_rate () =
  let paths =
    [
      { Tcp_model.loss = 0.01; rtt = 0.1 };
      { Tcp_model.loss = 0.001; rtt = 0.1 };
    ]
  in
  check_close 1e-9 "best" (Tcp_model.tcp_rate (List.nth paths 1))
    (Tcp_model.best_path_rate paths)

let test_lia_rates_equal_paths () =
  (* two identical paths: equal windows, total = best-path TCP rate *)
  let p = { Tcp_model.loss = 0.01; rtt = 0.1 } in
  match Tcp_model.lia_rates [ p; p ] with
  | [ a; b ] ->
    check_close 1e-9 "equal" a b;
    check_close 1e-6 "total" (Tcp_model.tcp_rate p) (a +. b)
  | _ -> Alcotest.fail "expected two rates"

let test_lia_rates_window_proportionality () =
  (* Eq. 2: windows proportional to 1/p *)
  let p1 = { Tcp_model.loss = 0.01; rtt = 0.1 } in
  let p2 = { Tcp_model.loss = 0.02; rtt = 0.1 } in
  match Tcp_model.lia_rates [ p1; p2 ] with
  | [ a; b ] -> check_close 1e-9 "x1 = 2 x2" a (2. *. b)
  | _ -> Alcotest.fail "expected two rates"

let test_olia_rates_best_only () =
  let good = { Tcp_model.loss = 0.001; rtt = 0.1 } in
  let bad = { Tcp_model.loss = 0.1; rtt = 0.1 } in
  match Tcp_model.olia_rates [ bad; good ] with
  | [ a; b ] ->
    check_close 1e-9 "bad unused" 0. a;
    check_close 1e-6 "best-path total" (Tcp_model.tcp_rate good) b
  | _ -> Alcotest.fail "expected two rates"

let test_olia_rates_tie_split () =
  let p = { Tcp_model.loss = 0.01; rtt = 0.1 } in
  match Tcp_model.olia_rates [ p; p ] with
  | [ a; b ] ->
    check_close 1e-9 "even split" a b;
    check_close 1e-6 "total" (Tcp_model.tcp_rate p) (a +. b)
  | _ -> Alcotest.fail "expected two rates"

let test_olia_probing () =
  let good = { Tcp_model.loss = 0.001; rtt = 0.1 } in
  let bad = { Tcp_model.loss = 0.1; rtt = 0.2 } in
  match Tcp_model.olia_rates_with_probing [ good; bad ] with
  | [ a; b ] ->
    check_close 1e-9 "probe on bad" (1. /. 0.2) b;
    Alcotest.(check bool) "good path pays the probe" true
      (a < Tcp_model.tcp_rate good)
  | _ -> Alcotest.fail "expected two rates"

let prop_lia_total_equals_best =
  QCheck.Test.make
    ~name:"tcp_model: LIA total = best-path rate (equal rtt, Eq. 2)"
    ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 6) (float_range 0.001 0.3))
    (fun losses ->
      let paths = List.map (fun l -> { Tcp_model.loss = l; rtt = 0.2 }) losses in
      let total = List.fold_left ( +. ) 0. (Tcp_model.lia_rates paths) in
      let best = Tcp_model.best_path_rate paths in
      abs_float (total -. best) < 1e-6 *. best)

let prop_olia_uses_only_best =
  QCheck.Test.make ~name:"tcp_model: OLIA sends only on best paths (Thm 1)"
    ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 6)
        (pair (float_range 0.001 0.3) (float_range 0.01 0.5)))
    (fun specs ->
      let paths =
        List.map (fun (l, r) -> { Tcp_model.loss = l; rtt = r }) specs
      in
      let best = Tcp_model.best_path_rate paths in
      let rates = Tcp_model.olia_rates paths in
      List.for_all2
        (fun p x ->
          Float.equal x 0. || Tcp_model.tcp_rate p >= best *. (1. -. 1e-6))
        paths rates)

(* --- Scenario A ----------------------------------------------------- *)

let scen_a c1 c2 n1 n2 =
  { Scenario_a.n1; n2; c1 = Units.pps_of_mbps c1; c2 = Units.pps_of_mbps c2;
    rtt = 0.15 }

let test_scenario_a_type1_capped () =
  let pt = Scenario_a.lia (scen_a 1. 1. 10 10) in
  check_close 1e-9 "normalized type1 is 1" 1. pt.norm_type1;
  check_close 1e-6 "x1+x2 = C1" (Units.pps_of_mbps 1.) (pt.x1 +. pt.x2)

let test_scenario_a_eq10 () =
  (* the root z satisfies Eq. (10) *)
  let params = scen_a 1. 1. 20 10 in
  let pt = Scenario_a.lia params in
  let z = pt.z in
  let lhs = z +. (z *. z /. (1. +. (2. *. z *. z)) *. 2.) in
  check_close 1e-9 "Eq 10" 1. lhs

let test_scenario_a_paper_trend () =
  (* Fig. 1(b): type-2 throughput decreases as N1/N2 grows; about 30% loss
     at N1=N2 and 50-60% at N1=3N2 for C1/C2 = 1 *)
  let r1 = Scenario_a.lia (scen_a 1. 1. 10 10) in
  let r2 = Scenario_a.lia (scen_a 1. 1. 20 10) in
  let r3 = Scenario_a.lia (scen_a 1. 1. 30 10) in
  Alcotest.(check bool) "decreasing" true
    (r1.norm_type2 > r2.norm_type2 && r2.norm_type2 > r3.norm_type2);
  Alcotest.(check bool) "~30% at N1=N2" true
    (r1.norm_type2 > 0.65 && r1.norm_type2 < 0.80);
  Alcotest.(check bool) "50-60% at N1=3N2" true
    (r3.norm_type2 > 0.40 && r3.norm_type2 < 0.55)

let test_scenario_a_depends_only_on_ratios () =
  let a = Scenario_a.lia (scen_a 1. 2. 10 10) in
  let b = Scenario_a.lia (scen_a 3. 6. 30 30) in
  check_close 1e-9 "scale invariant" a.norm_type2 b.norm_type2

let test_scenario_a_optimum () =
  let params = scen_a 1. 1. 30 10 in
  let o = Scenario_a.optimum_with_probing params in
  (* y = C2 − 3·probe; probe = 1/rtt pkts/s *)
  let expected = Units.pps_of_mbps 1. -. (3. /. 0.15) in
  check_close 1e-6 "type2" expected o.type2_total;
  Alcotest.(check bool) "optimum beats LIA" true
    (o.norm2 > (Scenario_a.lia params).norm_type2)

let test_scenario_a_p1_depends_on_c1 () =
  (* measured p1 in the paper: ~0.02, 0.009, 0.004 for C1 = 0.75, 1, 1.5 *)
  let p c1 = (Scenario_a.lia (scen_a c1 1. 10 10)).p1 in
  check_close 0.01 "C1=0.75" 0.02 (p 0.75);
  check_close 0.005 "C1=1" 0.009 (p 1.);
  check_close 0.003 "C1=1.5" 0.004 (p 1.5)

let test_scenario_a_invalid () =
  Alcotest.check_raises "n1=0"
    (Invalid_argument "Scenario_a: user counts must be > 0") (fun () ->
      ignore (Scenario_a.lia (scen_a 1. 1. 0 10)))

(* --- Scenario C ----------------------------------------------------- *)

let scen_c c1 c2 n1 n2 =
  { Scenario_c.n1; n2; c1 = Units.pps_of_mbps c1; c2 = Units.pps_of_mbps c2;
    rtt = 0.15 }

let test_scenario_c_threshold () =
  check_close 1e-9 "1/(2+1)" (1. /. 3.) (Scenario_c.threshold (scen_c 1. 1. 10 10));
  check_close 1e-9 "1/(2+3)" 0.2 (Scenario_c.threshold (scen_c 1. 1. 30 10))

let test_scenario_c_balanced_regime () =
  (* C1/C2 well below the threshold: everyone gets the fair share *)
  let params = scen_c 0.2 1. 10 10 in
  let pt = Scenario_c.lia params in
  Alcotest.(check bool) "regime" true (pt.regime = Scenario_c.Balanced);
  let fair = Scenario_c.fair_share params in
  check_close 1e-6 "multipath total" fair (pt.x1 +. pt.x2);
  check_close 1e-6 "single" fair pt.y

let test_scenario_c_cubic_regime () =
  let params = scen_c 1. 1. 10 10 in
  let pt = Scenario_c.lia params in
  Alcotest.(check bool) "regime" true (pt.regime = Scenario_c.Ap1_better);
  (* z is the positive root of z³ + (N1/N2)z² + z − C2/C1 *)
  let z = pt.z in
  check_close 1e-9 "cubic satisfied" 1.
    ((z ** 3.) +. (z *. z) +. z -. 1. +. 1.);
  check_close 1e-9 "norm multipath 1+z²" (1. +. (z *. z)) pt.norm_multipath

let test_scenario_c_aggressiveness () =
  (* Fig. 5(b): at C1 = C2, LIA multipath users take much more than fair *)
  let pt = Scenario_c.lia (scen_c 1. 1. 10 10) in
  Alcotest.(check bool) "multipath > 1.25" true (pt.norm_multipath > 1.25);
  Alcotest.(check bool) "single < 0.75" true (pt.norm_single < 0.75)

let test_scenario_c_fair_below_third () =
  (* LIA is fair to TCP users as long as C1 < C2/3 (paper §III-C) *)
  let pt = Scenario_c.lia (scen_c 0.30 1. 10 10) in
  check_close 0.02 "single keeps fair share"
    (Scenario_c.fair_share (scen_c 0.30 1. 10 10) /. Units.pps_of_mbps 1.)
    pt.norm_single

let test_scenario_c_optimum () =
  let params = scen_c 2. 1. 10 10 in
  let o = Scenario_c.optimum_with_probing params in
  (* C1 > C2: multipath should only probe AP2 *)
  check_close 1e-6 "multipath = C1 + probe"
    (Units.pps_of_mbps 2. +. (1. /. 0.15))
    o.multipath_total;
  check_close 1e-6 "single = C2 − probe"
    (Units.pps_of_mbps 1. -. (1. /. 0.15))
    o.single_total

let test_scenario_c_optimum_pooling () =
  (* C1 << C2: pooling helps, everyone gets the fair share *)
  let params = scen_c 0.2 1. 10 10 in
  let o = Scenario_c.optimum_with_probing params in
  let fair = Scenario_c.fair_share params in
  check_close 1e-6 "multipath fair" fair o.multipath_total;
  check_close 1e-6 "single fair" fair o.single_total

let test_scenario_c_continuity_at_threshold () =
  (* the two regimes agree near C1/C2 = 1/(2+N1/N2) *)
  let eps = 1e-6 in
  let below = Scenario_c.lia (scen_c (1. /. 3. -. eps) 1. 10 10) in
  let above = Scenario_c.lia (scen_c (1. /. 3. +. eps) 1. 10 10) in
  check_close 1e-3 "continuous" below.norm_single above.norm_single

let prop_scenario_c_single_decreasing_in_n1 =
  QCheck.Test.make
    ~name:"scenario C: single-path throughput decreases with N1" ~count:50
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (na, nb) ->
      let na, nb = (Stdlib.min na nb, Stdlib.max na nb) in
      na = nb
      ||
      let ra = Scenario_c.lia (scen_c 1. 1. na 10) in
      let rb = Scenario_c.lia (scen_c 1. 1. nb 10) in
      ra.norm_single >= rb.norm_single -. 1e-9)

(* --- Scenario B ----------------------------------------------------- *)

let scen_b cx ct =
  { Scenario_b.n = 15; cx = Units.pps_of_mbps cx; ct = Units.pps_of_mbps ct;
    rtt = 0.15 }

let test_scenario_b_regime_boundary () =
  (* CX/CT = 5/9 separates the two regimes *)
  let at_boundary = Scenario_b.lia_red_multipath (scen_b 5. 9.) in
  check_close 0.02 "px = pt at boundary" 1.
    (at_boundary.px /. at_boundary.pt);
  let x_congested = Scenario_b.lia_red_multipath (scen_b 3. 9.) in
  Alcotest.(check bool) "x regime" true
    (x_congested.regime = Scenario_b.X_more_congested);
  let t_congested = Scenario_b.lia_red_multipath (scen_b 27. 36.) in
  Alcotest.(check bool) "t regime" true
    (t_congested.regime = Scenario_b.T_more_congested)

let test_scenario_b_capacity_constraints () =
  (* the fixed point saturates both bottlenecks *)
  let params = scen_b 27. 36. in
  let pt = Scenario_b.lia_red_multipath params in
  let n = 15. in
  check_close 1e-3 "CX" (Units.pps_of_mbps 27.) (n *. (pt.x1 +. pt.y1));
  check_close 1e-3 "CT" (Units.pps_of_mbps 36.)
    (n *. (pt.x2 +. pt.y1 +. pt.y2))

let test_scenario_b_table1_values () =
  (* Table I: single-path blue 2.5, red 1.5; multipath blue 2.0, red 1.4;
     aggregate drop ≈ 13% *)
  let params = scen_b 27. 36. in
  let sp = Scenario_b.lia_red_singlepath params in
  let mp = Scenario_b.lia_red_multipath params in
  check_close 0.25 "sp blue" 2.5 (Units.mbps_of_pps sp.blue_total);
  check_close 0.25 "sp red" 1.5 (Units.mbps_of_pps sp.red_total);
  check_close 0.25 "mp blue" 2.0 (Units.mbps_of_pps mp.blue_total);
  check_close 0.3 "mp red" 1.4 (Units.mbps_of_pps mp.red_total);
  let drop = 1. -. (mp.aggregate /. sp.aggregate) in
  Alcotest.(check bool) "aggregate drops 10-20%" true
    (drop > 0.10 && drop < 0.20)

let test_scenario_b_upgrade_hurts_everyone () =
  (* P1: upgrading Red users reduces everyone's throughput (Fig. 4a) *)
  List.iter
    (fun cx ->
      let params = scen_b cx 36. in
      let sp = Scenario_b.lia_red_singlepath params in
      let mp = Scenario_b.lia_red_multipath params in
      Alcotest.(check bool) "blue hurt" true
        (mp.blue_total < sp.blue_total +. 1e-9);
      Alcotest.(check bool) "aggregate hurt" true
        (mp.aggregate < sp.aggregate +. 1e-9))
    [ 10.; 18.; 27.; 36. ]

let test_scenario_b_optimum_small_loss () =
  (* with an optimal algorithm the upgrade costs only the probing traffic *)
  let params = scen_b 27. 36. in
  let o_sp = Scenario_b.optimum_red_singlepath params in
  let o_mp = Scenario_b.optimum_red_multipath params in
  let drop = 1. -. (o_mp.aggregate /. o_sp.aggregate) in
  Alcotest.(check bool) "drop below 5%" true (drop >= 0. && drop < 0.05);
  (* paper: ≈3% at 150 ms *)
  check_close 0.02 "~3%" 0.03 drop

let test_scenario_b_optimum_probing_overhead_formula () =
  (* Appendix B: the aggregate decreases exactly by N·MSS/rtt *)
  let params = scen_b 20. 36. in
  let o_sp = Scenario_b.optimum_red_singlepath params in
  let o_mp = Scenario_b.optimum_red_multipath params in
  check_close 1e-6 "N/rtt" (15. /. 0.15) (o_sp.aggregate -. o_mp.aggregate)

let test_scenario_b_normalized () =
  let params = scen_b 27. 36. in
  let mp = Scenario_b.lia_red_multipath params in
  let blue, red =
    Scenario_b.normalized params
      { Scenario_b.blue_total = mp.blue_total; red_total = mp.red_total;
        aggregate = mp.aggregate }
  in
  check_close 1e-9 "blue" (mp.blue_total /. (Units.pps_of_mbps 36. /. 15.)) blue;
  Alcotest.(check bool) "red smaller" true (red < blue)

let prop_scenario_b_aggregate_increases_with_cx =
  QCheck.Test.make ~name:"scenario B: aggregate grows with CX" ~count:50
    QCheck.(pair (float_range 5. 50.) (float_range 5. 50.))
    (fun (a, b) ->
      let a, b = (Stdlib.min a b, Stdlib.max a b) in
      b -. a < 0.5
      ||
      let ra = Scenario_b.lia_red_multipath (scen_b a 36.) in
      let rb = Scenario_b.lia_red_multipath (scen_b b 36.) in
      rb.aggregate >= ra.aggregate -. 1e-6)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "roots: bisect sqrt2" `Quick test_bisect_sqrt2;
    Alcotest.test_case "roots: bisect endpoints" `Quick test_bisect_endpoint_root;
    Alcotest.test_case "roots: bisect rejects same sign" `Quick
      test_bisect_no_sign_change;
    Alcotest.test_case "roots: auto-bracketed root" `Quick test_increasing_root;
    Alcotest.test_case "roots: newton" `Quick test_newton;
    Alcotest.test_case "roots: newton zero derivative" `Quick
      test_newton_zero_derivative;
    Alcotest.test_case "roots: horner eval" `Quick test_poly_eval;
    Alcotest.test_case "roots: derivative" `Quick test_poly_derivative;
    Alcotest.test_case "roots: positive poly root" `Quick test_positive_poly_root;
    q prop_positive_poly_root_is_root;
    Alcotest.test_case "units: conversions" `Quick test_units_roundtrip;
    Alcotest.test_case "tcp_model: rate formula" `Quick test_tcp_rate_formula;
    Alcotest.test_case "tcp_model: zero loss" `Quick test_tcp_rate_zero_loss;
    Alcotest.test_case "tcp_model: loss inverse" `Quick test_tcp_loss_inverse;
    Alcotest.test_case "tcp_model: best path" `Quick test_best_path_rate;
    Alcotest.test_case "tcp_model: LIA equal paths" `Quick
      test_lia_rates_equal_paths;
    Alcotest.test_case "tcp_model: LIA window proportionality" `Quick
      test_lia_rates_window_proportionality;
    Alcotest.test_case "tcp_model: OLIA best only" `Quick
      test_olia_rates_best_only;
    Alcotest.test_case "tcp_model: OLIA tie split" `Quick
      test_olia_rates_tie_split;
    Alcotest.test_case "tcp_model: OLIA probing" `Quick test_olia_probing;
    q prop_lia_total_equals_best;
    q prop_olia_uses_only_best;
    Alcotest.test_case "scenario A: type1 capped at C1" `Quick
      test_scenario_a_type1_capped;
    Alcotest.test_case "scenario A: Eq. 10 satisfied" `Quick test_scenario_a_eq10;
    Alcotest.test_case "scenario A: Fig. 1(b) trend" `Quick
      test_scenario_a_paper_trend;
    Alcotest.test_case "scenario A: ratio invariance" `Quick
      test_scenario_a_depends_only_on_ratios;
    Alcotest.test_case "scenario A: optimum with probing" `Quick
      test_scenario_a_optimum;
    Alcotest.test_case "scenario A: p1 vs C1 (paper values)" `Quick
      test_scenario_a_p1_depends_on_c1;
    Alcotest.test_case "scenario A: invalid params" `Quick test_scenario_a_invalid;
    Alcotest.test_case "scenario C: threshold" `Quick test_scenario_c_threshold;
    Alcotest.test_case "scenario C: balanced regime" `Quick
      test_scenario_c_balanced_regime;
    Alcotest.test_case "scenario C: cubic regime" `Quick test_scenario_c_cubic_regime;
    Alcotest.test_case "scenario C: aggressiveness (P2)" `Quick
      test_scenario_c_aggressiveness;
    Alcotest.test_case "scenario C: fair below C2/3" `Quick
      test_scenario_c_fair_below_third;
    Alcotest.test_case "scenario C: optimum, C1 > C2" `Quick test_scenario_c_optimum;
    Alcotest.test_case "scenario C: optimum pools when C1 << C2" `Quick
      test_scenario_c_optimum_pooling;
    Alcotest.test_case "scenario C: regimes continuous" `Quick
      test_scenario_c_continuity_at_threshold;
    q prop_scenario_c_single_decreasing_in_n1;
    Alcotest.test_case "scenario B: regime boundary 5/9" `Quick
      test_scenario_b_regime_boundary;
    Alcotest.test_case "scenario B: capacity constraints hold" `Quick
      test_scenario_b_capacity_constraints;
    Alcotest.test_case "scenario B: Table I values" `Quick
      test_scenario_b_table1_values;
    Alcotest.test_case "scenario B: upgrade hurts everyone (P1)" `Quick
      test_scenario_b_upgrade_hurts_everyone;
    Alcotest.test_case "scenario B: optimum loses only 3%" `Quick
      test_scenario_b_optimum_small_loss;
    Alcotest.test_case "scenario B: probing overhead formula" `Quick
      test_scenario_b_optimum_probing_overhead_formula;
    Alcotest.test_case "scenario B: normalization" `Quick test_scenario_b_normalized;
    q prop_scenario_b_aggregate_increases_with_cx;
  ]

let test_scenario_b_quadratic_closed_form () =
  (* in the X-more-congested regime the numeric ratio px/pt is the
     positive root of the paper's Appendix-B quadratic *)
  List.iter
    (fun cx ->
      let params = scen_b cx 36. in
      let pt = Scenario_b.lia_red_multipath params in
      match pt.regime with
      | Scenario_b.X_more_congested ->
        let rho = 36. /. cx in
        let s = pt.px /. pt.pt in
        check_close 1e-6 "root of the quadratic" 0.
          (Roots.poly_eval (Scenario_b.x_congested_quadratic ~rho) s)
      | Scenario_b.T_more_congested -> Alcotest.fail "expected X regime")
    [ 4.; 10.; 16. ]

let suite =
  suite
  @ [
      Alcotest.test_case "scenario B: Appendix-B quadratic" `Quick
        test_scenario_b_quadratic_closed_form;
    ]
