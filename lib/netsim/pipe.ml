type t = { sim : Sim.t; delay : float }

let create ~sim ~delay =
  if delay < 0. then invalid_arg "Pipe.create: negative delay";
  { sim; delay }

let hop t (p : Packet.t) =
  Sim.schedule_after ~src:"pipe.deliver" t.sim t.delay (fun () ->
      Packet.forward p)

let delay t = t.delay
