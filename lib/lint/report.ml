let to_text ~files findings =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    findings;
  (match findings with
   | [] ->
     Buffer.add_string b
       (Printf.sprintf "olia_lint: %d files clean (rules R1-R11)\n" files)
   | _ ->
     Buffer.add_string b
       (Printf.sprintf "olia_lint: %d finding%s in %d files\n"
          (List.length findings)
          (if List.length findings = 1 then "" else "s")
          files));
  Buffer.contents b

let to_json ~files findings =
  Repro_stats.Json.Obj
    [
      ("files", Repro_stats.Json.Int files);
      ("count", Repro_stats.Json.Int (List.length findings));
      ("clean", Repro_stats.Json.Bool (findings = []));
      ( "findings",
        Repro_stats.Json.List (List.map Finding.to_json findings) );
    ]

(* Minimal SARIF 2.1.0 for code-scanning upload. One run, one driver,
   one rule entry per rule id that actually fired; columns are
   SARIF-style 1-based while findings carry compiler-style 0-based. *)
let to_sarif findings =
  let open Repro_stats.Json in
  let rules_fired =
    List.sort_uniq Stdlib.compare (List.map (fun f -> f.Finding.rule) findings)
  in
  let rule_obj r =
    Obj
      [
        ("id", String (Finding.rule_name r));
        ( "shortDescription",
          Obj [ ("text", String (Finding.rule_doc r)) ] );
      ]
  in
  let result f =
    Obj
      [
        ("ruleId", String (Finding.rule_name f.Finding.rule));
        ("level", String "error");
        ("message", Obj [ ("text", String f.Finding.message) ]);
        ( "locations",
          List
            [
              Obj
                [
                  ( "physicalLocation",
                    Obj
                      [
                        ( "artifactLocation",
                          Obj [ ("uri", String f.Finding.file) ] );
                        ( "region",
                          Obj
                            [
                              ("startLine", Int f.Finding.line);
                              ("startColumn", Int (f.Finding.col + 1));
                            ] );
                      ] );
                ];
            ] );
      ]
  in
  Obj
    [
      ( "$schema",
        String
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", String "2.1.0");
      ( "runs",
        List
          [
            Obj
              [
                ( "tool",
                  Obj
                    [
                      ( "driver",
                        Obj
                          [
                            ("name", String "olia_lint");
                            ( "informationUri",
                              String "https://example.invalid/olia_lint" );
                            ("rules", List (List.map rule_obj rules_fired));
                          ] );
                    ] );
                ("results", List (List.map result findings));
              ];
          ] );
    ]
