lib/fluid/tcp_model.mli:
