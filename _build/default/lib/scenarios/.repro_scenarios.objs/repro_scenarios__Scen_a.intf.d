lib/scenarios/scen_a.mli:
