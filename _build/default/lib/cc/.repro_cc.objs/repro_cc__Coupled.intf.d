lib/cc/coupled.mli: Cc_types
