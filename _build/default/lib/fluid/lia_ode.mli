(** Fluid model of LIA, the counterpart of [Olia_ode] for the default
    MPTCP algorithm.

    Each ACK on route [r] grows the window by Eq. 1,
    [min(max_p(w_p/rtt_p²)/(Σ_p w_p/rtt_p)², 1/w_r)], and each loss halves
    it, giving

    [dx_r/dt = x_r·(i_r(x) − p_r·x_r·rtt_r/2)/rtt_r]

    with [i_r] the per-ACK increase. Its fixed points follow the
    loss-throughput formula Eq. 2 ([Tcp_model.lia_rates]), which tests
    cross-check; unlike OLIA's, they are not Pareto-optimal. *)

type options = {
  dt : float;
  t_end : float;
  min_rate : float;
}

val default_options : options

val derivative : Network_model.t -> float array array -> float array array
(** Right-hand side of the LIA fluid equation. *)

val integrate :
  ?options:options ->
  Network_model.t ->
  x0:float array array ->
  float array array
(** Forward-Euler integration from [x0]; returns the final rates. *)

val fixed_point_prediction : Network_model.t -> float array array -> float array array
(** Eq. 2 evaluated at the loss probabilities induced by a rate
    allocation: the windows LIA's fixed point assigns given those
    losses. Used to verify that [integrate] lands on Eq. 2. *)
