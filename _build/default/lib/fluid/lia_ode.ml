type options = { dt : float; t_end : float; min_rate : float }

let default_options = { dt = 1e-3; t_end = 400.; min_rate = 1e-3 }

let route_losses net x =
  let loads = Network_model.link_loads net x in
  let link_p =
    Array.mapi (fun i l -> Network_model.link_loss l loads.(i))
      net.Network_model.links
  in
  Network_model.route_losses net link_p

(* Eq. 1 for the fluid state: windows are w_r = x_r·rtt_r. *)
let increase_per_ack (user : Network_model.user) xu r =
  let num = ref 0. and denom = ref 0. in
  Array.iteri
    (fun p (route : Network_model.route) ->
      let w = Stdlib.max (xu.(p) *. route.rtt) 1e-9 in
      let per_rtt2 = w /. (route.rtt *. route.rtt) in
      if per_rtt2 > !num then num := per_rtt2;
      denom := !denom +. (w /. route.rtt))
    user.routes;
  let coupled = !num /. Stdlib.max (!denom *. !denom) 1e-18 in
  let own = 1. /. Stdlib.max (xu.(r) *. user.routes.(r).rtt) 1e-9 in
  Stdlib.min coupled own

let derivative net x =
  let route_p = route_losses net x in
  Array.mapi
    (fun u (user : Network_model.user) ->
      Array.mapi
        (fun r (route : Network_model.route) ->
          let xr = x.(u).(r) in
          let i = increase_per_ack user x.(u) r in
          let w = xr *. route.rtt in
          (* ACK rate x_r; each loss (rate p·x_r) halves the window *)
          xr /. route.rtt *. (i -. (route_p.(u).(r) *. w /. 2.)))
        user.routes)
    net.Network_model.users

let integrate ?(options = default_options) net ~x0 =
  Network_model.validate net;
  let { dt; t_end; min_rate } = options in
  let x = Array.map Array.copy x0 in
  let steps = int_of_float (ceil (t_end /. dt)) in
  for _ = 1 to steps do
    let dx = derivative net x in
    Array.iteri
      (fun u xu ->
        Array.iteri
          (fun r xr -> xu.(r) <- Stdlib.max min_rate (xr +. (dt *. dx.(u).(r))))
          (Array.copy xu))
      x
  done;
  x

let fixed_point_prediction net x =
  let route_p = route_losses net x in
  Array.mapi
    (fun u (user : Network_model.user) ->
      let paths =
        Array.to_list
          (Array.mapi
             (fun r (route : Network_model.route) ->
               { Tcp_model.loss = Stdlib.max route_p.(u).(r) 1e-12;
                 rtt = route.rtt })
             user.routes)
      in
      Array.of_list (Tcp_model.lia_rates paths))
    net.Network_model.users
