(** Differential conformance between the float congestion-control
    model and its fixed-point kernel twins ([olia-fp], [balia-fp]).

    Each case runs the same seeded scenario once per backend and bounds
    how far the integer arithmetic may drift the measured metrics, or
    drives both backends per-ACK through one prescribed schedule and
    bounds the cwnd divergence of the trajectories. Every case carries
    the kernel-source provenance of its fixed-point side. All runs are
    seeded and deterministic, so {!run_all} yields byte-identical
    reports across invocations. *)

type tolerance =
  | Rel of float  (** max relative float-vs-fixed deviation *)
  | Bound of float  (** hard upper bound on the metric itself *)

type check = { metric : string; tol : tolerance }

type case = {
  name : string;
  doc : string;
  source : string;  (** kernel provenance of the fixed-point side *)
  float_algo : string;
  fixed_algo : string;
  checks : check list;
  run : unit -> (string * float) list * (string * float) list;
      (** metrics of the float run and of the fixed-point run *)
}

type lockstep_result = {
  max_rel_divergence : float;
      (** largest per-subflow relative cwnd divergence over the run,
          after allowing the one packet the integer cwnd quantizes *)
  final_float : float array;  (** per-subflow cwnd after the run *)
  final_fixed : float array;
}

val lockstep :
  ?steps:int -> float_algo:string -> fixed_algo:string -> unit ->
  lockstep_result
(** Drive both backends through an identical prescribed ACK/loss
    schedule on two asymmetric synthetic subflows (no simulator, no
    randomness; default 4000 steps). *)

val cases : ?quick:bool -> unit -> case list
(** The differential registry: scenarios A/B/C × \{OLIA, BALIA\} plus
    the two per-ACK lockstep cases. [quick] shortens the scenario runs
    (and widens the bands) for the test suite. *)

type check_result = {
  metric : string;
  float_value : float;
  fixed_value : float;
  deviation : float;  (** relative deviation, or the bounded value *)
  limit : float;
  pass : bool;
}

type case_report = {
  case : string;
  doc : string;
  source : string;
  float_algo : string;
  fixed_algo : string;
  results : check_result list;
  pass : bool;
}

type report = {
  cases : case_report list;
  pass : bool;
  checks_total : int;
  checks_failed : int;
}

val run_case : case -> case_report

val run_all : ?only:string -> ?quick:bool -> unit -> report
(** Run every case whose name contains [only] (all by default). *)

val case_report_to_json : case_report -> Repro_stats.Json.t
val report_to_json : report -> Repro_stats.Json.t
