test/test_common.ml: Alcotest Float Mptcp_repro Pipe Printf Queue Rng Sim Tcp
