(** Pass 1 of the whole-program analyzer: per-binding summaries.

    Each toplevel value binding of each parsed [.ml] becomes one
    {!node} recording everything pass 2 needs — allocation sites (with
    a [guarded] flag for branches pruned by the zero-cost-off idiom),
    outgoing calls and bare mentions, nondeterminism sources, output
    sinks, and whether the binding defines toplevel mutable state.
    Nested functions fold into their enclosing toplevel binding.

    The extraction is syntactic; the approximations (opaque indirect
    calls, constant closures, untracked int64 boxing) are documented in
    docs/LINT.md. *)

type alloc = {
  aloc : Location.t;
  what : string;  (** human description, e.g. ["closure capturing t"] *)
  aguarded : bool;
      (** under an [Invariant]/[Trace]/[Profile].[enabled ()] guard or
          on an error path — off the steady path, invisible to R9 *)
}

type call = {
  callee : Longident.t;
  cloc : Location.t;
  args : int;  (** supplied non-optional arguments; [-1] = bare mention *)
  cguarded : bool;
}

type source_kind = Wall_clock | Ambient_random | Table_order | Float_compare

val source_kind_name : source_kind -> string

type nsource = { skind : source_kind; sname : string; sloc : Location.t }

type node = {
  path : string;
  modname : string;
  qual : string;  (** dotted name within the file, e.g. ["Timer.cancel"] *)
  nloc : Location.t;
  alloc_free_root : bool;  (** carries [@olia.alloc_free] *)
  inline : bool;  (** carries [@inline] *)
  arity : int;  (** leading fun parameters; [0] = plain value *)
  required : int;  (** [arity] minus optional parameters *)
  allocs : alloc list;
  calls : call list;
  sources : nsource list;
  sinks : (string * Location.t) list;
  sorts : bool;  (** calls a sort, which sanitizes [Table_order] taint *)
  float_return : bool;
      (** some tail position is syntactically float: without [@inline]
          the classical compiler boxes the return at every call *)
  creates_mutable : string option;
      (** for arity-0 bindings: the creator ([ref], [Hashtbl.create],
          mutable record, ...) if the value is toplevel mutable state *)
}

val display : node -> string
(** ["Sim.Timer.cancel"] — module-qualified name for messages. *)

val of_structure : path:string -> Parsetree.structure -> node list
(** Summarize every toplevel binding, in source order. *)
