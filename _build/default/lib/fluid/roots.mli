(** Scalar root finding used by the fixed-point analyses. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds a root of [f] in [\[lo, hi\]], assuming
    [f lo] and [f hi] have opposite signs (raises [Invalid_argument]
    otherwise). [tol] bounds the interval width (default [1e-12]). *)

val find_increasing_root :
  ?tol:float -> f:(float -> float) -> unit -> float
(** Root of a strictly increasing function on [(0, ∞)] with
    [f 0+ < 0 < f ∞]: brackets automatically by doubling, then bisects.
    Raises [Failure] if no sign change is found within a huge range. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float
(** [newton ~f ~df x0]: Newton-Raphson iteration from [x0]; raises
    [Failure] on non-convergence. *)

val poly_eval : float array -> float -> float
(** [poly_eval coeffs x] evaluates [coeffs.(0) + coeffs.(1)·x + …] by
    Horner's rule. *)

val poly_derivative : float array -> float array
(** Coefficients of the derivative polynomial. *)

val positive_poly_root : ?tol:float -> float array -> float
(** The unique positive root of a polynomial that is negative at 0 and
    eventually positive (the shape of all the paper's fixed-point
    polynomials). Raises [Failure] if the shape assumption fails. *)
