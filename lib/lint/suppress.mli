(** Suppression directives.

    A finding can be waived in the source itself, with a mandatory
    reason:

    {v
    (* lint: allow R3 -- exact sentinel comparison, never arithmetic *)
    (* lint: allow-file R1 -- wall-clock timing of the harness itself *)
    v}

    A line-scoped directive covers findings on its own line and on the
    line immediately below (so it can sit above the offending
    expression); [allow-file] covers the whole file. Several rule ids
    may be listed. Directives must fit on one line. A directive with an
    unknown rule id, no rule ids, or a missing/empty reason after [--]
    is itself reported as a [Suppress] finding — and [parse]/[suppress]
    findings can never be waived.

    Whole-program findings (R9-R11) carry a [root] location — the entry
    point of the offending call chain — and are waived either by a
    directive at the finding's own site or by one at the chain's root
    (see {!Engine}); both checks go through {!permits_line}. *)

type t

val scan : file:string -> string -> t
(** Extract every directive from the raw source text. *)

val invalid : t -> Finding.t list
(** Malformed directives, as findings. *)

val permits : t -> Finding.t -> bool
(** Is the finding waived by a directive in this file? *)

val permits_line : t -> Finding.rule -> int -> bool
(** Is a finding of [rule] at [line] waived by a directive in this
    file? Used for the site check and again for the chain-root check of
    whole-program findings. *)
