module Trace = Repro_obs.Trace

type t = {
  rng : Rng.t;
  loss_prob : float;
  sim : Sim.t option;  (* for trace timestamps only *)
  name_id : int;
  mutable dropped : int;
  mutable passed : int;
}

let create ?sim ?(name = "lossy") ~rng ~loss_prob () =
  if loss_prob < 0. || loss_prob >= 1. then
    invalid_arg "Lossy.create: loss_prob must be in [0, 1)";
  { rng; loss_prob; sim; name_id = Trace.intern name; dropped = 0; passed = 0 }

let hop t (p : Packet.t) =
  match p.kind with
  | Packet.Ack -> Packet.forward p
  | Packet.Data ->
    if Rng.float t.rng < t.loss_prob then begin
      t.dropped <- t.dropped + 1;
      if Trace.enabled () then
        Trace.pkt_drop
          ~time:(match t.sim with Some s -> Sim.now s | None -> nan)
          ~queue:t.name_id ~flow:p.flow ~subflow:p.subflow ~seq:p.seq
          ~kind:(Packet.kind_code p.kind)
          ~cause:Trace.Random_loss;
      Packet.free p
    end
    else begin
      t.passed <- t.passed + 1;
      Packet.forward p
    end

let dropped t = t.dropped
let passed t = t.passed
