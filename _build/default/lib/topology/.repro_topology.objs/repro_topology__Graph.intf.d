lib/topology/graph.mli:
