lib/scenarios/fattree_dynamic.ml: Array Common List Queue Repro_cc Repro_netsim Repro_stats Repro_topology Repro_workload Rng Sim Tcp
