lib/netsim/tcp.ml: Array Hashtbl Packet Repro_cc Sim Stdlib
