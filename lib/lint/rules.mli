(** The rule catalogue R1-R8.

    Rules are purely syntactic (no typing pass), so each one errs on
    the side of precision over recall; docs/LINT.md records the
    approximations. Path scoping — which rules run where — is decided
    here from the repo-relative path of the file. *)

val scope_r1 : string -> bool
(** Everywhere except [lib/netsim/rng.ml], the one blessed RNG. *)

val scope_r2 : string -> bool
(** [lib/] only: libraries run inside [Exp.Sweep] domains. *)

val scope_r3 : string -> bool
(** [lib/fluid/] and [lib/cc/], the numerics. *)

val scope_r4 : string -> bool
(** [lib/] only. *)

val scope_r6 : string -> bool
(** Everywhere: discarding an [Error] is equally wrong in binaries,
    benches and tests. *)

val scope_r7 : string -> bool
(** [lib/scenarios/] only: tests, benches and the golden-trace
    fixtures legitimately pin literal seeds. *)

val check_structure : path:string -> Parsetree.structure -> Finding.t list
(** Run R1-R4 and R6-R8 (as scoped for [path]) over one parsed
    implementation. *)

val check_registry :
  sources:(string * Parsetree.structure) list -> Finding.t list
(** R5: given every parsed [.ml] of the run, report scenario modules
    under [lib/scenarios/] (files defining a top-level [run], other
    than [registry.ml]/[common.ml]) that [lib/scenarios/registry.ml]
    never references. *)
