(** LIA, the "linked increases" algorithm of RFC 6356 (paper Eq. 1).

    For each ACK on subflow [r], the window grows by
    [min( (max_i w_i/rtt_i²) / (Σ_i w_i/rtt_i)², 1/w_r )] and losses halve
    the window as in TCP. *)

val create : unit -> Cc_types.t

val increase_formula : Cc_types.subflow_view array -> int -> float
(** The bare Eq. 1 increase, exposed for unit tests and the fixed-point
    cross-checks. *)
