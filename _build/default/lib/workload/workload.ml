open Repro_netsim

type flow_spec = {
  start : float;
  size_pkts : int option;
  src : int;
  dst : int;
}

let staggered_starts ~rng ~n ~max_jitter =
  Array.init n (fun _ -> Rng.uniform rng max_jitter)

let permutation_long_flows ~rng ~hosts ~max_jitter =
  let perm = Rng.derangement_permutation rng hosts in
  List.init hosts (fun src ->
      {
        start = Rng.uniform rng max_jitter;
        size_pkts = None;
        src;
        dst = perm.(src);
      })

let poisson_short_flows ~rng ~src ~dst ~mean_interval ~size_pkts ~duration =
  let rec gen t acc =
    let t = t +. Rng.exponential rng ~mean:mean_interval in
    if t >= duration then List.rev acc
    else gen t ({ start = t; size_pkts = Some size_pkts; src; dst } :: acc)
  in
  gen 0. []

let short_flow_pkts = (70 * 1000 / 1500) + 1
