open Repro_netsim

type config = {
  n_tcp1 : int;
  n_tcp2 : int;
  c_mbps : float;
  delay1_ms : float;
  delay2_ms : float;
  algo : string;
  duration : float;
  sample_period : float;
  seed : int;
}

let symmetric =
  {
    n_tcp1 = 5;
    n_tcp2 = 5;
    c_mbps = 10.;
    delay1_ms = 40.;
    delay2_ms = 40.;
    algo = "olia";
    duration = 120.;
    sample_period = 0.1;
    seed = 1;
  }

let asymmetric = { symmetric with n_tcp2 = 10 }

type traces = {
  w1 : Repro_stats.Timeseries.t;
  w2 : Repro_stats.Timeseries.t;
  alpha1 : Repro_stats.Timeseries.t;
  alpha2 : Repro_stats.Timeseries.t;
  goodput1_mbps : float;
  goodput2_mbps : float;
  flip_count : int;
}

let run cfg =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let rate = cfg.c_mbps *. 1e6 in
  let mk name =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:rate
      ~buffer_pkts:(Common.bottleneck_buffer ~rate_bps:rate)
      ~discipline:(Common.red_for ~rate_bps:rate) ~name ()
  in
  let q1 = mk "bottleneck1" and q2 = mk "bottleneck2" in
  let pipes delay_ms =
    let one_way = delay_ms /. 1000. in
    (Pipe.create ~sim ~delay:one_way, Pipe.create ~sim ~delay:one_way)
  in
  let fwd1, rev1 = pipes cfg.delay1_ms in
  let fwd2, rev2 = pipes cfg.delay2_ms in
  let path1 =
    { Tcp.fwd = [| Queue.hop q1; Pipe.hop fwd1 |]; rev = [| Pipe.hop rev1 |] }
  in
  let path2 =
    { Tcp.fwd = [| Queue.hop q2; Pipe.hop fwd2 |]; rev = [| Pipe.hop rev2 |] }
  in
  (* The multipath user, instrumented when the algorithm is OLIA. *)
  let cc, probe =
    if cfg.algo = "olia" then
      let cc, probe = Repro_cc.Olia.create_instrumented () in
      (cc, fun () -> (probe 2).Repro_cc.Olia.alpha)
    else (Common.factory_of_name cfg.algo (), fun () -> [| 0.; 0. |])
  in
  let mp =
    Tcp.create ~sim ~cc ~paths:[| path1; path2 |] ~start:(Rng.uniform rng 1.)
      ~flow_id:0 ()
  in
  let tcp_on path base n =
    List.init n (fun i ->
        Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths:[| path |]
          ~start:(Rng.uniform rng 2.) ~flow_id:(base + i) ())
  in
  let _ = tcp_on path1 1 cfg.n_tcp1 and _ = tcp_on path2 100 cfg.n_tcp2 in
  let w1 = Repro_stats.Timeseries.create () in
  let w2 = Repro_stats.Timeseries.create () in
  let alpha1 = Repro_stats.Timeseries.create () in
  let alpha2 = Repro_stats.Timeseries.create () in
  let flips = ref 0 and order = ref 0 in
  let sample_timer = ref Sim.Timer.none in
  let sample () =
    let t = Sim.now sim in
    let cw1 = Tcp.subflow_cwnd mp 0 and cw2 = Tcp.subflow_cwnd mp 1 in
    Repro_stats.Timeseries.add w1 ~time:t cw1;
    Repro_stats.Timeseries.add w2 ~time:t cw2;
    let a = probe () in
    Repro_stats.Timeseries.add alpha1 ~time:t a.(0);
    Repro_stats.Timeseries.add alpha2 ~time:t a.(1);
    (* flappiness: count strict dominance reversals with a 2-packet margin *)
    let new_order =
      if cw1 > cw2 +. 2. then 1 else if cw2 > cw1 +. 2. then -1 else !order
    in
    if new_order <> !order && !order <> 0 then incr flips;
    order := new_order;
    if not (t +. cfg.sample_period <= cfg.duration) then
      Sim.Timer.cancel sim !sample_timer
  in
  sample_timer :=
    Sim.every ~src:"two_bottleneck.sample" ~start:0. sim cfg.sample_period
      sample;
  let acked1 = ref 0 and acked2 = ref 0 in
  let warmup = cfg.duration /. 6. in
  ignore
    (Sim.schedule_at ~src:"scenario.warmup" sim warmup (fun () ->
         acked1 := Tcp.subflow_acked mp 0;
         acked2 := Tcp.subflow_acked mp 1)
      : Sim.Timer.t);
  Sim.run_until sim cfg.duration;
  let window = cfg.duration -. warmup in
  let mbps acked snap =
    float_of_int (acked - snap) *. 12000. /. window /. 1e6
  in
  {
    w1;
    w2;
    alpha1;
    alpha2;
    goodput1_mbps = mbps (Tcp.subflow_acked mp 0) !acked1;
    goodput2_mbps = mbps (Tcp.subflow_acked mp 1) !acked2;
    flip_count = !flips;
  }
