(** Deterministic fault injection: a gate hop that can take a link
    down, drop bursts of data packets, or delay (reorder) packets for
    scheduled windows of simulated time.

    Place {!hop} on a route like a queue or pipe and drive the failure
    schedule with {!schedule_flap}, {!schedule_burst} and
    {!schedule_reorder}. Mode switches ride the simulator clock and
    randomness comes from the seeded {!Rng}, so a fault scenario is as
    reproducible as any other run — the conformance harness
    ([lib/check]) relies on byte-identical reports across runs.

    While [Down] the gate swallows traffic in both directions (data and
    ACKs), as a dead link would; [Burst] drops only data, like
    {!Lossy}; [Reorder] holds back a random subset of packets by a
    fixed extra delay so later packets overtake them. Drops are traced
    as [Trace.Pkt_drop] with cause [Link_down]. *)

type mode =
  | Up  (** pass-through (initial state) *)
  | Down  (** swallow everything *)
  | Burst of { loss_prob : float }  (** Bernoulli-drop data packets *)
  | Reorder of { prob : float; extra_delay : float }
      (** delay a [prob]-fraction of packets by [extra_delay] seconds *)

type t

val create : sim:Sim.t -> rng:Rng.t -> ?name:string -> unit -> t
(** A gate starting [Up]. [name] (default ["fault"]) labels trace
    events. *)

val hop : t -> Packet.hop
(** The gate's entry point, to place on routes. *)

val mode : t -> mode
val is_down : t -> bool

val set_mode : t -> mode -> unit
(** Switch immediately. Raises [Invalid_argument] on parameters outside
    their documented ranges. *)

val schedule_flap : t -> down_at:float -> up_at:float -> unit
(** Link outage over [\[down_at, up_at)]. Raises [Invalid_argument]
    unless [down_at < up_at]. *)

val schedule_burst : t -> at:float -> until:float -> loss_prob:float -> unit
(** Burst-loss episode over [\[at, until)] dropping each data packet
    with probability [loss_prob] (in [\[0, 1)]). *)

val schedule_reorder :
  t -> at:float -> until:float -> prob:float -> extra_delay:float -> unit
(** Reordering window over [\[at, until)]: each packet is delayed by
    [extra_delay] with probability [prob]. *)

val dropped : t -> int
(** Packets swallowed (outage plus burst losses). *)

val reordered : t -> int
(** Packets held back by a reorder window. *)

val passed : t -> int
(** Packets forwarded immediately. *)
