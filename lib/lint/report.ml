let to_text ~files findings =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    findings;
  (match findings with
   | [] ->
     Buffer.add_string b
       (Printf.sprintf "olia_lint: %d files clean (rules R1-R8)\n" files)
   | _ ->
     Buffer.add_string b
       (Printf.sprintf "olia_lint: %d finding%s in %d files\n"
          (List.length findings)
          (if List.length findings = 1 then "" else "s")
          files));
  Buffer.contents b

let to_json ~files findings =
  Repro_stats.Json.Obj
    [
      ("files", Repro_stats.Json.Int files);
      ("count", Repro_stats.Json.Int (List.length findings));
      ("clean", Repro_stats.Json.Bool (findings = []));
      ( "findings",
        Repro_stats.Json.List (List.map Finding.to_json findings) );
    ]
