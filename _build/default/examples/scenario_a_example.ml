(* Scenario A end-to-end: the paper's headline non-Pareto-optimality
   demonstration. N1 streaming clients (capped by their server) add an
   MPTCP subflow through an AP that N2 TCP users depend on; LIA hurts the
   TCP users for no gain, OLIA does not.

   Run with:  dune exec examples/scenario_a_example.exe *)

module Scen_a = Mptcp_repro.Scenarios.Scen_a
module Fluid_a = Mptcp_repro.Fluid.Scenario_a
module Units = Mptcp_repro.Fluid.Units
module Table = Mptcp_repro.Stats.Table

let () =
  let cfg = { Scen_a.default with duration = 60.; warmup = 20. } in
  let fluid =
    Fluid_a.lia
      {
        Fluid_a.n1 = cfg.n1;
        n2 = cfg.n2;
        c1 = Units.pps_of_mbps cfg.c1_mbps;
        c2 = Units.pps_of_mbps cfg.c2_mbps;
        rtt = 0.15;
      }
  in
  let optimum =
    Fluid_a.optimum_with_probing
      {
        Fluid_a.n1 = cfg.n1;
        n2 = cfg.n2;
        c1 = Units.pps_of_mbps cfg.c1_mbps;
        c2 = Units.pps_of_mbps cfg.c2_mbps;
        rtt = 0.15;
      }
  in
  Printf.printf
    "Scenario A: N1=%d MPTCP streamers vs N2=%d TCP users (C1=C2=%g Mb/s)\n\n"
    cfg.n1 cfg.n2 cfg.c1_mbps;
  let t =
    Table.create ~title:"Normalized throughput and shared-AP loss"
      ~columns:[ "algorithm"; "type1 (MPTCP)"; "type2 (TCP)"; "p2" ]
  in
  let add_run algo =
    let r = Scen_a.run { cfg with algo } in
    Table.add_row t
      [
        "measured " ^ algo;
        Printf.sprintf "%.3f" r.norm_type1;
        Printf.sprintf "%.3f" r.norm_type2;
        Printf.sprintf "%.4f" r.p2;
      ]
  in
  add_run "lia";
  add_run "olia";
  Table.add_row t
    [
      "fluid model (LIA)";
      Printf.sprintf "%.3f" fluid.norm_type1;
      Printf.sprintf "%.3f" fluid.norm_type2;
      Printf.sprintf "%.4f" fluid.p2;
    ];
  Table.add_row t
    [
      "optimum w/ probing";
      Printf.sprintf "%.3f" optimum.norm1;
      Printf.sprintf "%.3f" optimum.norm2;
      "~0";
    ];
  Table.print t;
  print_newline ();
  print_endline
    "Type-1 users gain nothing from the shared AP (their server is the";
  print_endline
    "bottleneck), yet LIA pushes traffic through it and hurts the TCP";
  print_endline "users. OLIA keeps close to the probing-cost optimum."
