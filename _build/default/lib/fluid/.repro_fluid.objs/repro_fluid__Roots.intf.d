lib/fluid/roots.mli:
