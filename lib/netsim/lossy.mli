(** Random-loss hop: drops each data packet independently with a fixed
    probability, modeling non-congestion (wireless) losses — the setting
    of Chen et al.'s follow-up study the paper cites (§I, [12]). ACKs
    pass through unharmed, as they would over a reliable reverse
    channel. *)

type t

val create :
  ?sim:Sim.t -> ?name:string -> rng:Rng.t -> loss_prob:float -> unit -> t
(** Raises [Invalid_argument] unless [0 <= loss_prob < 1]. [sim] and
    [name] (default ["lossy"]) only feed trace events: drops are
    reported with [Trace.Random_loss], timestamped from [sim] when
    given (nan otherwise). *)

val hop : t -> Packet.hop
val dropped : t -> int
val passed : t -> int
