lib/scenarios/scen_c.mli:
