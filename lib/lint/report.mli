(** Rendering findings.

    All reporters return data (a string, a JSON tree) rather than
    printing: [lib/] code is subject to its own R4, so the terminal
    belongs to [bin/olia_lint]. The text and JSON shapes are
    byte-stable interfaces consumed by CI greps; additions go to new
    formats (like SARIF), not to these two. *)

val to_text : files:int -> Finding.t list -> string
(** Compiler-style [file:line:col: RULE message] lines followed by a
    one-line tally, or a single "clean" line. *)

val to_json : files:int -> Finding.t list -> Repro_stats.Json.t
(** [{"files": n, "findings": [...], "count": n, "clean": bool}]. *)

val to_sarif : Finding.t list -> Repro_stats.Json.t
(** Minimal SARIF 2.1.0 log (one run, driver [olia_lint], a rule entry
    per rule that fired) for GitHub code-scanning upload. Columns are
    converted to SARIF's 1-based convention. *)
