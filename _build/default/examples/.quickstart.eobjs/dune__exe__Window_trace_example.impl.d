examples/window_trace_example.ml: Array Mptcp_repro Printf Stdlib String
