(* Integer twin of the kernel's BALIA (net/mptcp/mptcp_balia.c,
   linux-4.1 MPTCP tree, SNIPPETS.md): mptcp_balia_recalc_ai mirrored
   step by step — per-path rates in mss*usec units, alpha in
   alpha_scale units, the rate_scale_limit/num_scale_down rescaling
   loop, and the ai/md outputs consumed as a 1/ai per-ACK increase and
   an md loss decrease. Like the float Balia, the twin is stateless
   across ACKs: everything is recomputed from the current views, so
   on_ack/on_loss are no-ops. Floats appear only in the
   [@olia.float_boundary] adapters. *)

module Fp = Fixedpoint

(* tp->mss_cache: rates enter ai and md only as ratios, so any fixed
   segment size cancels; 1460 matches a typical Ethernet mss_cache. *)
let mss = 1460

(* USEC_PER_SEC << 3 *)
let usec_per_sec_shl3 = 8_000_000

type state = {
  mutable n : int;
  mutable cwnd : int array;
  mutable rtt_us : int array;
  mutable rates : int array;
  mutable sum_rate : int;
  mutable max_rate : int;
  mutable ai : int;
  mutable md : int;
}

(* --- integer cores (kernel arithmetic, alloc-free) -------------------- *)

(* div_u64(mss_cache * snd_cwnd * (USEC_PER_SEC << 3), srtt_us) *)
let[@olia.alloc_free] path_rate st p =
  Fp.div_u64
    (Fp.mul_sat (Fp.mul_sat mss st.cwnd.(p)) usec_per_sec_shl3)
    st.rtt_us.(p)

(* mptcp_balia_recalc_ai for the subflow at [idx]: writes st.ai and
   st.md. With at most one established subflow (or a zero own rate)
   BALIA falls back to Reno behaviour: ai = snd_cwnd, md = cwnd/2. *)
let[@olia.alloc_free] recalc_ai st idx =
  if st.n <= 1 then begin
    st.ai <- st.cwnd.(idx);
    st.md <- st.cwnd.(idx) asr 1
  end
  else begin
    st.max_rate <- 0;
    st.sum_rate <- 0;
    for p = 0 to st.n - 1 do
      let tmp = path_rate st p in
      st.rates.(p) <- tmp;
      st.sum_rate <- Fp.add_sat st.sum_rate tmp;
      if tmp >= st.max_rate then st.max_rate <- tmp
    done;
    if st.rates.(idx) = 0 then begin
      st.ai <- st.cwnd.(idx);
      st.md <- st.cwnd.(idx) asr 1
    end
    else begin
      let alpha =
        Fp.div_u64 (Fp.shift_sat st.max_rate Fp.alpha_scale) st.rates.(idx)
      in
      (* scale every rate down in lockstep until the largest fits below
         2^rate_scale_limit, so the squared sum below cannot overflow *)
      let down = Fp.num_scale_down st.max_rate in
      if down > 0 then begin
        st.sum_rate <- 0;
        for p = 0 to st.n - 1 do
          st.rates.(p) <- Fp.rescale st.rates.(p) down;
          st.sum_rate <- Fp.add_sat st.sum_rate st.rates.(p)
        done;
        st.max_rate <- Fp.rescale st.max_rate down
      end;
      let rate = st.rates.(idx) in
      (*      (sum_rate)^2 * 10 * w_i
         ai = ------------------------------------
              (x_i + max_rate) * (4x_i + max_rate)  *)
      let sum2 = Fp.mul_sat st.sum_rate st.sum_rate in
      let ai =
        Fp.div_u64 (Fp.mul_sat sum2 10) (Fp.add_sat rate st.max_rate)
      in
      let ai =
        Fp.div_u64
          (Fp.mul_sat ai st.cwnd.(idx))
          (Fp.add_sat (Fp.shift_sat rate 2) st.max_rate)
      in
      st.ai <- (if ai = 0 then st.cwnd.(idx) else ai);
      (* md = (cwnd/2) * min(alpha, 1.5) in alpha_scale units *)
      let cap = (3 lsl Fp.alpha_scale) asr 1 in
      let a = if alpha < cap then alpha else cap in
      st.md <- Fp.mul_sat (st.cwnd.(idx) asr 1) a asr Fp.alpha_scale
    end
  end

(* --- float boundary ---------------------------------------------------- *)

let ensure st idx =
  if idx >= Array.length st.cwnd then begin
    let cap = Stdlib.max (2 * (idx + 1)) 4 in
    let grow fill a =
      Array.init cap (fun i -> if i < Array.length a then a.(i) else fill)
    in
    st.cwnd <- grow 0 st.cwnd;
    st.rtt_us <- grow 1 st.rtt_us;
    st.rates <- grow 0 st.rates
  end;
  if idx >= st.n then st.n <- idx + 1

let[@olia.float_boundary] sync st (views : Cc_types.subflow_view array) =
  let n = Array.length views in
  ensure st (n - 1);
  st.n <- n;
  for p = 0 to n - 1 do
    let v = views.(p) in
    let w = int_of_float v.Cc_types.cwnd in
    st.cwnd.(p) <- (if w < 1 then 1 else w);
    st.rtt_us.(p) <- Fp.usec_of_sec v.Cc_types.rtt
  done

let[@olia.float_boundary] create () =
  let st =
    {
      n = 0;
      cwnd = Array.make 4 0;
      rtt_us = Array.make 4 1;
      rates = Array.make 4 0;
      sum_rate = 0;
      max_rate = 0;
      ai = 0;
      md = 0;
    }
  in
  let increase ~views ~idx =
    sync st views;
    recalc_ai st idx;
    1. /. float_of_int st.ai
  in
  let loss_decrease ~views ~idx =
    sync st views;
    recalc_ai st idx;
    float_of_int st.md
  in
  {
    Cc_types.name = "balia-fp";
    multipath_initial_ssthresh = None;
    on_ack = (fun ~idx:_ ~acked:_ -> ());
    on_loss = (fun ~idx:_ -> ());
    increase;
    loss_decrease;
  }
