let increase_formula views idx =
  let num = ref 0. and denom = ref 0. in
  Array.iter
    (fun (v : Cc_types.subflow_view) ->
      let w = Stdlib.max v.cwnd 1e-9 and rtt = Stdlib.max v.rtt 1e-9 in
      let per_rtt2 = w /. (rtt *. rtt) in
      if per_rtt2 > !num then num := per_rtt2;
      denom := !denom +. (w /. rtt))
    views;
  let coupled = !num /. (!denom *. !denom) in
  let own = 1. /. Stdlib.max views.(idx).Cc_types.cwnd 1e-9 in
  Stdlib.min coupled own

let create () =
  {
    Cc_types.name = "lia";
    multipath_initial_ssthresh = None;
    on_ack = (fun ~idx:_ ~acked:_ -> ());
    on_loss = (fun ~idx:_ -> ());
    increase = (fun ~views ~idx -> increase_formula views idx);
    loss_decrease = Cc_types.halve;
  }
