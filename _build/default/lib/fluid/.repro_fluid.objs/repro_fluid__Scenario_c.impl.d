lib/fluid/scenario_c.ml: Roots Stdlib Units
