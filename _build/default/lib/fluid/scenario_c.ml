type params = { n1 : int; n2 : int; c1 : float; c2 : float; rtt : float }

type regime = Balanced | Ap1_better

type lia_point = {
  regime : regime;
  z : float;
  p1 : float;
  p2 : float;
  x1 : float;
  x2 : float;
  y : float;
  norm_multipath : float;
  norm_single : float;
}

let check { n1; n2; c1; c2; rtt } =
  if n1 <= 0 || n2 <= 0 then invalid_arg "Scenario_c: user counts must be > 0";
  if c1 <= 0. || c2 <= 0. then invalid_arg "Scenario_c: capacities must be > 0";
  if rtt <= 0. then invalid_arg "Scenario_c: rtt must be > 0"

let ratio_n { n1; n2; _ } = float_of_int n1 /. float_of_int n2

let threshold params =
  check params;
  1. /. (2. +. ratio_n params)

let fair_share ({ n1; n2; c1; c2; _ } as params) =
  check params;
  ((float_of_int n1 *. c1) +. (float_of_int n2 *. c2))
  /. float_of_int (n1 + n2)

let lia ({ c1; c2; rtt; _ } as params) =
  check params;
  let rn = ratio_n params in
  if c1 /. c2 < 1. /. (2. +. rn) then begin
    (* Balanced regime: AP1 is the worse path, LIA equalizes totals. *)
    let total = fair_share params in
    let p2 = 2. /. ((rtt *. total) ** 2.) in
    (* x1 = C1 saturates AP1; the remainder flows on AP2. *)
    let x1 = c1 in
    let x2 = total -. c1 in
    (* p1/p2 = x2/x1 from the window-proportionality of Eq. 2. *)
    let p1 = p2 *. x2 /. x1 in
    {
      regime = Balanced;
      z = sqrt (p1 /. p2);
      p1;
      p2;
      x1;
      x2;
      y = total;
      norm_multipath = total /. c1;
      norm_single = total /. c2;
    }
  end
  else begin
    (* AP1 is the better path: z = sqrt(p1/p2) solves the cubic of §III-C. *)
    let z =
      Roots.positive_poly_root [| -.(c2 /. c1); 1.; rn; 1. |]
    in
    let p1 = 2. /. ((rtt *. c1 *. (1. +. (z *. z))) ** 2.) in
    let p2 = p1 /. (z *. z) in
    let x1 = c1 in
    let x2 = c1 *. z *. z in
    let y = sqrt (2. /. p2) /. rtt in
    {
      regime = Ap1_better;
      z;
      p1;
      p2;
      x1;
      x2;
      y;
      norm_multipath = 1. +. (z *. z);
      norm_single = y /. c2;
    }
  end

type allocation = {
  multipath_total : float;
  single_total : float;
  norm_multipath : float;
  norm_single : float;
}

let optimum_with_probing ({ c1; c2; rtt; _ } as params) =
  check params;
  let probe = Units.probe_rate ~rtt in
  let fair = fair_share params in
  let multipath = Stdlib.max (c1 +. probe) fair in
  let single = Stdlib.min (c2 -. (ratio_n params *. probe)) fair in
  {
    multipath_total = multipath;
    single_total = single;
    norm_multipath = multipath /. c1;
    norm_single = single /. c2;
  }

let lia_allocation params =
  let pt = lia params in
  {
    multipath_total = pt.x1 +. pt.x2;
    single_total = pt.y;
    norm_multipath = pt.norm_multipath;
    norm_single = pt.norm_single;
  }
