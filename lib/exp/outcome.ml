type t = {
  metrics : (string * float) list;
  arrays : (string * float array) list;
}

let of_metrics ?(arrays = []) metrics = { metrics; arrays }
let add_metrics t extra = { t with metrics = t.metrics @ extra }

let metric_opt t name = List.assoc_opt name t.metrics

let metric_names t = List.map fst t.metrics

let metric t name =
  match metric_opt t name with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Outcome.metric: no metric %S (available: %s)" name
         (String.concat ", " (metric_names t)))

let to_json t =
  let open Repro_stats.Json in
  let metrics =
    ("metrics", Obj (List.map (fun (k, v) -> (k, Float v)) t.metrics))
  in
  match t.arrays with
  | [] -> Obj [ metrics ]
  | arrays ->
    Obj
      [
        metrics;
        ( "arrays",
          Obj
            (List.map
               (fun (k, a) ->
                 (k, List (Array.to_list (Array.map (fun v -> Float v) a))))
               arrays) );
      ]
