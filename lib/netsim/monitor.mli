(** Periodic measurement probes: attach samplers to connections and
    queues and collect time series without hand-rolling schedule loops in
    every experiment. *)

type t

val create :
  sim:Sim.t -> period:float -> ?start:float -> ?stop:float -> unit -> t
(** A monitor sampling every [period] seconds from [start] (default 0).
    Without [stop], sampling continues while other events remain queued —
    note that two such monitors keep each other alive forever under
    [Sim.run], so pass [stop] (or use [Sim.run_until]) when attaching
    several monitors. *)

val series : t -> string -> Repro_stats.Timeseries.t
(** The series recorded under a name (raises [Not_found] before the
    first sample of that name... the series is created on registration,
    so this is safe after the corresponding [watch_*] call). *)

val names : t -> string list

val watch : t -> string -> (unit -> float) -> unit
(** Record an arbitrary probe under a name. *)

val watch_cwnd : t -> string -> Tcp.conn -> int -> unit
(** Congestion window of one subflow. *)

val watch_goodput : t -> string -> Tcp.conn -> unit
(** Connection goodput in Mb/s over each sampling period (differences of
    delivered packets). *)

val watch_backlog : t -> string -> Queue.t -> unit

val watch_drops : t -> string -> Queue.t -> unit
(** Cumulative data-packet drops of a queue (since [reset_stats]). *)

val watch_loss : t -> string -> Queue.t -> unit
(** Cumulative loss probability of a queue. *)

val to_csv : t -> path:string -> unit
(** Export all series on a shared time grid, one column per name. *)
