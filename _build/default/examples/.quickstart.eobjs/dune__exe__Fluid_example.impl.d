examples/fluid_example.ml: Array Equilibrium List Mptcp_repro Network_model Olia_ode Printf Scenario_c Units
