open Parsetree

(* --- path scoping ---------------------------------------------------- *)

(* Path scoping is by repo-relative segments ([lib/fluid/...]); when the
   linter is invoked on an absolute or prefixed root, anchor at the
   first segment that names one of the scanned top-level directories. *)
let tops = [ "lib"; "bin"; "bench"; "test" ]

let normalize path =
  let segments =
    List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)
  in
  let rec anchor = function
    | [] -> segments
    | s :: _ as rest when List.mem s tops -> rest
    | _ :: rest -> anchor rest
  in
  anchor segments

let under prefix path =
  let rec go p q =
    match (p, q) with
    | [], _ -> true
    | x :: p, y :: q -> x = y && go p q
    | _ :: _, [] -> false
  in
  go prefix (normalize path)

let scope_r1 path = not (under [ "lib"; "netsim"; "rng.ml" ] path)
let scope_r2 path = under [ "lib" ] path

let scope_r3 path =
  under [ "lib"; "fluid" ] path
  || under [ "lib"; "cc" ] path
  || under [ "test" ] path

let scope_r4 path = under [ "lib" ] path
let scope_r6 _ = true
let scope_r7 path = under [ "lib"; "scenarios" ] path

(* R8 covers library and bench code; the scheduler implementation
   itself is the one file allowed to name its internals however it
   likes. Tests schedule throwaway events and are exempt. *)
let scope_r8 path =
  (under [ "lib" ] path || under [ "bench" ] path)
  && not (under [ "lib"; "netsim"; "sim.ml" ] path)

(* --- longident helpers ----------------------------------------------- *)

let rec lid_root = function
  | Longident.Lident s -> s
  | Longident.Ldot (p, _) -> lid_root p
  | Longident.Lapply (p, _) -> lid_root p

let rec lid_name = function
  | Longident.Lident s -> s
  | Longident.Ldot (p, s) -> lid_name p ^ "." ^ s
  | Longident.Lapply (p, q) ->
    Printf.sprintf "%s(%s)" (lid_name p) (lid_name q)

(* Strip an explicit [Stdlib.] qualifier so [Stdlib.compare] and
   [compare] are the same ident to the rules. *)
let canonical name =
  let pfx = "Stdlib." in
  let n = String.length pfx in
  if String.length name > n && String.sub name 0 n = pfx then
    String.sub name n (String.length name - n)
  else name

let finding ~rule ~path (loc : Location.t) message =
  let p = loc.Location.loc_start in
  Finding.v ~rule ~file:path ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    message

(* --- R1: determinism ------------------------------------------------- *)

let r1_banned_exact = [ "Unix.gettimeofday"; "Sys.time" ]

let check_r1 ~path structure =
  let found = ref [] in
  let emit loc msg = found := finding ~rule:Finding.R1 ~path loc msg :: !found in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_ident { txt; loc } ->
       let name = canonical (lid_name txt) in
       if lid_root txt = "Random" then
         emit loc
           (Printf.sprintf
              "%s: ambient randomness breaks sweep reproducibility (draw \
               from Netsim.Rng instead)"
              name)
       else if List.mem name r1_banned_exact then
         emit loc
           (Printf.sprintf
              "%s: wall-clock time is nondeterministic (use Sim.now for \
               simulated time)"
              name)
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !found

(* --- R2: domain-safety ----------------------------------------------- *)

(* Creators whose result is shared mutable state when bound at module
   level. [Array.make] is listed but array literals are not: literal
   arrays are overwhelmingly read-only lookup tables, while an
   explicitly sized [Array.make] is a buffer someone intends to fill. *)
let r2_creators =
  [
    "ref";
    "Hashtbl.create";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Atomic.make";
    "Array.make";
    "Bytes.create";
    "Bytes.make";
    "Dynarray.create";
  ]

(* Field names declared [mutable] by record types of the same file, so
   [let shared = { state = 0 }] is caught when [state] is mutable. *)
let mutable_fields structure =
  let fields = Hashtbl.create 8 in
  let type_declaration self td =
    (match td.ptype_kind with
     | Ptype_record labels ->
       List.iter
         (fun ld ->
           match ld.pld_mutable with
           | Asttypes.Mutable -> Hashtbl.replace fields ld.pld_name.txt ()
           | Asttypes.Immutable -> ())
         labels
     | _ -> ());
    Ast_iterator.default_iterator.type_declaration self td
  in
  let it = { Ast_iterator.default_iterator with type_declaration } in
  it.structure it structure;
  fields

let last_field lid =
  match lid with
  | Longident.Lident s | Longident.Ldot (_, s) -> s
  | Longident.Lapply _ -> ""

(* The right-hand side of a module-level binding is walked without
   entering function bodies: state created inside a closure is
   per-call, not shared. [lazy] is entered — a module-level lazy cell
   is shared. *)
let check_r2 ~path structure =
  let found = ref [] in
  let fields = mutable_fields structure in
  let emit loc msg = found := finding ~rule:Finding.R2 ~path loc msg :: !found in
  let scan_binding vb =
    let on_creator loc name =
      emit loc
        (Printf.sprintf
           "module-level %s: shared mutable state races under Exp.Sweep \
            domains (allocate it inside the function or pass it \
            explicitly)"
           name)
    in
    let expr_it self e =
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> ()
      | _ ->
        (match e.pexp_desc with
         | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
           let name = canonical (lid_name txt) in
           if List.mem name r2_creators then on_creator e.pexp_loc name
         | Pexp_record (record_fields, _) ->
           if
             List.exists
               (fun ({ Location.txt; _ }, _) ->
                 Hashtbl.mem fields (last_field txt))
               record_fields
           then
             emit e.pexp_loc
               "module-level record with mutable fields: shared mutable \
                state races under Exp.Sweep domains"
         | _ -> ());
        Ast_iterator.default_iterator.expr self e
    in
    let it = { Ast_iterator.default_iterator with expr = expr_it } in
    it.expr it vb.pvb_expr
  in
  let rec scan_items items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter scan_binding vbs
        | Pstr_module { pmb_expr; _ } -> scan_module_expr pmb_expr
        | Pstr_recmodule mbs ->
          List.iter (fun { pmb_expr; _ } -> scan_module_expr pmb_expr) mbs
        | Pstr_include { pincl_mod; _ } -> scan_module_expr pincl_mod
        | _ -> ())
      items
  and scan_module_expr me =
    match me.pmod_desc with
    | Pmod_structure items -> scan_items items
    | Pmod_constraint (me, _) -> scan_module_expr me
    | Pmod_functor (_, me) -> scan_module_expr me
    | _ -> ()
  in
  scan_items structure;
  !found

(* --- R3: float-hygiene ----------------------------------------------- *)

let r3_comparisons = [ "="; "<>"; "=="; "!="; "compare" ]
let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "mod_float" ]

let float_fns =
  [
    "float_of_int";
    "float_of_string";
    "abs_float";
    "sqrt";
    "exp";
    "log";
    "log10";
    "log1p";
    "expm1";
    "cos";
    "sin";
    "tan";
    "atan";
    "atan2";
    "floor";
    "ceil";
    "Float.of_int";
    "Float.of_string";
    "Float.abs";
    "Float.min";
    "Float.max";
    "Float.rem";
    "Float.round";
  ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float";
    "min_float"; "Float.pi"; "Float.nan"; "Float.infinity" ]

(* Syntactic evidence that an expression is a float. Typing would be
   exact; this recognizes literals, float arithmetic and a list of
   well-known float-returning stdlib names, which is what comparison
   operands in numeric code overwhelmingly look like. *)
let is_floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> List.mem (canonical (lid_name txt)) float_consts
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let name = canonical (lid_name txt) in
    List.mem name float_ops || List.mem name float_fns
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) ->
    lid_name txt = "float"
  | _ -> false

let check_r3 ~path structure =
  let found = ref [] in
  let emit loc op =
    found :=
      finding ~rule:Finding.R3 ~path loc
        (Printf.sprintf
           "structural %s on float operands: NaN and -0. make polymorphic \
            comparison treacherous (use Float.equal for exact sentinels \
            or an explicit tolerance)"
           op)
      :: !found
  in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_apply
         ( { pexp_desc = Pexp_ident { txt; loc }; _ },
           [ (_, a); (_, b) ] ) ->
       let name = canonical (lid_name txt) in
       if List.mem name r3_comparisons && (is_floatish a || is_floatish b)
       then emit loc name
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !found

(* --- R3-fp: fixed-point twins are float-free -------------------------- *)

(* The kernel-twin controllers ([lib/cc/*_fp.ml]) exist to mirror the
   kernel's integer arithmetic bit for bit, so their update paths must
   not touch floats at all — a stray [float_of_int] silently reintroduces
   the rounding the twin is supposed to eliminate. Bindings marked
   [@olia.float_boundary] are the sanctioned adapters between the float
   [Cc_types.t] surface and the integer core, and are exempt. *)

let scope_r3_fp path =
  under [ "lib"; "cc" ] path
  &&
  let base = Filename.basename path in
  Filename.check_suffix base "_fp.ml"

let is_float_boundary attrs =
  List.exists
    (fun (a : attribute) -> a.attr_name.txt = "olia.float_boundary")
    attrs

(* Conversions that cross the int/float line without using float syntax:
   the float lists above miss them because plain R3 only cares about
   comparison operands. *)
let r3_fp_conversions = [ "int_of_float"; "truncate"; "string_of_float" ]

let check_r3_fp ~path structure =
  let found = ref [] in
  let emit loc what =
    found :=
      finding ~rule:Finding.R3 ~path loc
        (Printf.sprintf
           "%s in a fixed-point twin update path: kernel-twin arithmetic \
            must stay integer (move the conversion into a \
            [@olia.float_boundary] adapter)"
           what)
      :: !found
  in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_constant (Pconst_float (lit, _)) ->
       emit e.pexp_loc (Printf.sprintf "float literal %s" lit)
     | Pexp_ident { txt; loc } ->
       let name = canonical (lid_name txt) in
       if
         List.mem name float_ops || List.mem name float_fns
         || List.mem name float_consts
         || List.mem name r3_fp_conversions
         || lid_root txt = "Float"
       then emit loc name
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let value_binding self vb =
    if is_float_boundary (vb.pvb_attributes @ vb.pvb_expr.pexp_attributes)
    then ()
    else Ast_iterator.default_iterator.value_binding self vb
  in
  let it = { Ast_iterator.default_iterator with expr; value_binding } in
  it.structure it structure;
  !found

(* --- R4: output hygiene ---------------------------------------------- *)

let r4_banned =
  [
    "Printf.printf";
    "print_endline";
    "print_string";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
  ]

let check_r4 ~path structure =
  let found = ref [] in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_ident { txt; loc } ->
       let name = canonical (lid_name txt) in
       if List.mem name r4_banned then
         found :=
           finding ~rule:Finding.R4 ~path loc
             (Printf.sprintf
                "%s: libraries must not print to stdout (emit through \
                 lib/stats or Netsim.Monitor; binaries own the terminal)"
                name)
           :: !found
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !found

(* --- R6: error hygiene ----------------------------------------------- *)

(* Combinators and repo entry points that return a [result]. As with
   R3, this is syntactic evidence, not typing: the listed names cover
   how result values are actually produced in this codebase. *)
let r6_result_fns =
  [
    "Result.map";
    "Result.map_error";
    "Result.bind";
    "Result.join";
    "Json.of_string";
    "Repro_stats.Json.of_string";
    "Trace.of_json";
    "Repro_obs.Trace.of_json";
    "Snapshot.read";
    "Repro_obs.Snapshot.read";
  ]

let rec is_resultish e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("Ok" | "Error"); _ }, Some _) ->
    true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, _); _ }) ->
    let name = canonical (lid_name txt) in
    name = "result" || name = "Result.t"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    List.mem (canonical (lid_name txt)) r6_result_fns
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
    List.exists (fun c -> is_resultish c.pc_rhs) cases
  | Pexp_ifthenelse (_, a, Some b) -> is_resultish a || is_resultish b
  | Pexp_sequence (_, e) | Pexp_let (_, _, e) -> is_resultish e
  | _ -> false

let check_r6 ~path structure =
  let found = ref [] in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_apply
         ( { pexp_desc = Pexp_ident { txt; loc }; _ },
           [ (Asttypes.Nolabel, arg) ] )
       when canonical (lid_name txt) = "ignore" && is_resultish arg ->
       found :=
         finding ~rule:Finding.R6 ~path loc
           "ignore of a result value: the Error case is silently dropped \
            (match on it, or propagate it with Result.bind)"
         :: !found
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !found

(* --- R7: seed plumbing ----------------------------------------------- *)

(* A scenario that seeds its RNG from a literal, or defaults an optional
   [?seed] argument, produces one fixed run however the sweep varies the
   seed axis — replications silently collapse to n identical points.
   Scenario code must take the seed from its config record and pass it
   down: [Rng.create ~seed:cfg.seed]. Syntactic, like R3/R6: a literal
   seed expression is the evidence; computed seeds are assumed to come
   from the caller. *)

let is_rng_create name =
  name = "Rng.create" || name = "Netsim.Rng.create"
  || name = "Repro_netsim.Rng.create"

let rec is_literal_seed e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _) -> true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("+" | "-" | "*"); _ };
          _ },
        args ) ->
    List.for_all (fun (_, a) -> is_literal_seed a) args
  | Pexp_constraint (e, _) -> is_literal_seed e
  | _ -> false

let check_r7 ~path structure =
  let found = ref [] in
  let emit loc msg = found := finding ~rule:Finding.R7 ~path loc msg :: !found in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
       when is_rng_create (canonical (lid_name txt)) ->
       List.iter
         (fun (label, arg) ->
           match label with
           | Asttypes.Labelled "seed" when is_literal_seed arg ->
             emit loc
               "Rng.create with a literal seed: every replication of this \
                scenario replays the same run (thread the seed from the \
                caller's config: ~seed:cfg.seed)"
           | _ -> ())
         args
     | Pexp_fun (Asttypes.Optional "seed", Some _, _, _) ->
       emit e.pexp_loc
         "optional ?seed with a default: callers that forget to pass it get \
          one fixed run per sweep point (make the seed a required part of \
          the scenario config)"
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !found

(* --- R8: timer attribution ------------------------------------------- *)

(* The event-loop profiler buckets dispatches by the [~src] label given
   at scheduling time; an unlabelled call shows up as an anonymous
   bucket that cannot be traced back to its subsystem. Matches any
   [<path>.Sim.<scheduler>] application ([Sim.schedule_at],
   [Netsim.Sim.every], [Repro_netsim.Sim.schedule_pkt_after], ...)
   that passes no [~src] argument. *)

let r8_schedulers =
  [ "schedule_at"; "schedule_after"; "schedule_pkt_at"; "schedule_pkt_after";
    "every" ]

let is_sim_scheduler name =
  match List.rev (String.split_on_char '.' name) with
  | fn :: "Sim" :: _ -> List.mem fn r8_schedulers
  | _ -> false

let check_r8 ~path structure =
  let found = ref [] in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
       when is_sim_scheduler (canonical (lid_name txt)) ->
       let has_src =
         List.exists
           (fun (label, _) ->
             match label with
             | Asttypes.Labelled "src" | Asttypes.Optional "src" -> true
             | _ -> false)
           args
       in
       if not has_src then
         found :=
           finding ~rule:Finding.R8 ~path loc
             (Printf.sprintf
                "%s without ~src: the event-loop profiler cannot attribute \
                 this timer's dispatches (label the call site, e.g. \
                 ~src:\"tcp.rto\")"
                (lid_name txt))
           :: !found
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !found

(* --- R5: registry completeness --------------------------------------- *)

let basename path =
  match List.rev (normalize path) with [] -> path | b :: _ -> b

let is_scenario_source path =
  under [ "lib"; "scenarios" ] path
  && Filename.check_suffix path ".ml"
  &&
  let b = basename path in
  b <> "registry.ml" && b <> "common.ml"

let defines_toplevel_run structure =
  let rec pat_is_run p =
    match p.ppat_desc with
    | Ppat_var { txt = "run"; _ } -> true
    | Ppat_constraint (p, _) -> pat_is_run p
    | _ -> false
  in
  List.exists
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.exists (fun vb -> pat_is_run vb.pvb_pat) vbs
      | _ -> false)
    structure

(* Every module name the registry source mentions, wherever it appears:
   value paths (Scen_a.run), record labels ({ Scen_a.n1 = ... }), field
   projections, constructors, types and module expressions. *)
let referenced_modules structure =
  let refs = Hashtbl.create 16 in
  let add lid =
    match lid with
    | Longident.Ldot _ | Longident.Lapply _ -> Hashtbl.replace refs (lid_root lid) ()
    | Longident.Lident s ->
      (* A bare capitalized ident is a module or constructor mention. *)
      if s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' then Hashtbl.replace refs s ()
  in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_ident { txt; _ }
     | Pexp_construct ({ txt; _ }, _)
     | Pexp_field (_, { txt; _ })
     | Pexp_setfield (_, { txt; _ }, _)
     | Pexp_new { txt; _ } -> add txt
     | Pexp_record (fields, _) -> List.iter (fun ({ Location.txt; _ }, _) -> add txt) fields
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let pat self p =
    (match p.ppat_desc with
     | Ppat_construct ({ txt; _ }, _) -> add txt
     | Ppat_record (fields, _) -> List.iter (fun ({ Location.txt; _ }, _) -> add txt) fields
     | _ -> ());
    Ast_iterator.default_iterator.pat self p
  in
  let typ self t =
    (match t.ptyp_desc with
     | Ptyp_constr ({ txt; _ }, _) | Ptyp_class ({ txt; _ }, _) -> add txt
     | _ -> ());
    Ast_iterator.default_iterator.typ self t
  in
  let module_expr self me =
    (match me.pmod_desc with
     | Pmod_ident { txt; _ } -> add txt
     | _ -> ());
    Ast_iterator.default_iterator.module_expr self me
  in
  let it =
    { Ast_iterator.default_iterator with expr; pat; typ; module_expr }
  in
  it.structure it structure;
  refs

let module_name_of path = String.capitalize_ascii (Filename.chop_extension (basename path))

let check_registry ~sources =
  let scenarios =
    List.filter
      (fun (path, structure) ->
        is_scenario_source path && defines_toplevel_run structure)
      sources
  in
  if scenarios = [] then []
  else
    let registry =
      List.find_opt
        (fun (path, _) ->
          under [ "lib"; "scenarios" ] path && basename path = "registry.ml")
        sources
    in
    match registry with
    | None ->
      List.map
        (fun (path, _) ->
          Finding.v ~rule:Finding.R5 ~file:path ~line:1 ~col:0
            "scenario module cannot be reachable: no \
             lib/scenarios/registry.ml in this lint run")
        scenarios
    | Some (_, registry_structure) ->
      let refs = referenced_modules registry_structure in
      List.filter_map
        (fun (path, _) ->
          let m = module_name_of path in
          if Hashtbl.mem refs m then None
          else
            Some
              (Finding.v ~rule:Finding.R5 ~file:path ~line:1 ~col:0
                 (Printf.sprintf
                    "scenario module %s is never referenced by \
                     Scenarios.Registry: it cannot be listed, swept or run \
                     from the CLI"
                    m)))
        scenarios

(* --- entry point ----------------------------------------------------- *)

let check_structure ~path structure =
  let r1 = if scope_r1 path then check_r1 ~path structure else [] in
  let r2 = if scope_r2 path then check_r2 ~path structure else [] in
  let r3 = if scope_r3 path then check_r3 ~path structure else [] in
  let r3_fp = if scope_r3_fp path then check_r3_fp ~path structure else [] in
  let r4 = if scope_r4 path then check_r4 ~path structure else [] in
  let r6 = if scope_r6 path then check_r6 ~path structure else [] in
  let r7 = if scope_r7 path then check_r7 ~path structure else [] in
  let r8 = if scope_r8 path then check_r8 ~path structure else [] in
  r1 @ r2 @ r3 @ r3_fp @ r4 @ r6 @ r7 @ r8
