(** Name-based construction of congestion-control algorithms, for the CLI
    and the bench harness. *)

val names : string list
(** All recognised names: ["reno"; "lia"; "olia"; "olia-fp"; "balia";
    "balia-fp"; "cubic"; "scalable"; "wvegas"; "coupled:<eps>"]. The
    [-fp] variants are the fixed-point kernel twins. *)

val create : string -> Cc_types.t
(** Fresh instance by name; ["coupled:0.5"] selects the ε-family.
    Raises [Invalid_argument] on unknown names. *)
