lib/fluid/units.ml:
