examples/scenario_a_example.ml: Mptcp_repro Printf
