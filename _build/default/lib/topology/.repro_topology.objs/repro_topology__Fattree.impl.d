lib/topology/fattree.ml: Array Duplex List Printf Repro_netsim Rng Tcp
