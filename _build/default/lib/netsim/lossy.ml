type t = {
  rng : Rng.t;
  loss_prob : float;
  mutable dropped : int;
  mutable passed : int;
}

let create ~rng ~loss_prob =
  if loss_prob < 0. || loss_prob >= 1. then
    invalid_arg "Lossy.create: loss_prob must be in [0, 1)";
  { rng; loss_prob; dropped = 0; passed = 0 }

let hop t (p : Packet.t) =
  match p.kind with
  | Packet.Ack _ -> Packet.forward p
  | Packet.Data ->
    if Rng.float t.rng < t.loss_prob then t.dropped <- t.dropped + 1
    else begin
      t.passed <- t.passed + 1;
      Packet.forward p
    end

let dropped t = t.dropped
let passed t = t.passed
