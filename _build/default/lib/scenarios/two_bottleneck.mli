(** The illustrative two-bottleneck example of paper §IV-C (Figs. 6–8):
    one two-path MPTCP user whose paths cross two separate links of equal
    capacity, shared with [n_tcp1] and [n_tcp2] regular TCP flows.

    With [n_tcp1 = n_tcp2] both paths are equally good and the multipath
    user should use both without flapping (Fig. 7); with 5 vs 10 TCP flows
    it should concentrate on the first path and keep a minimal window on
    the congested one (Fig. 8). *)

type config = {
  n_tcp1 : int;  (** TCP flows sharing bottleneck 1 *)
  n_tcp2 : int;  (** TCP flows sharing bottleneck 2 *)
  c_mbps : float;  (** capacity of each bottleneck *)
  delay1_ms : float;  (** one-way propagation of path 1 (default 40 ms) *)
  delay2_ms : float;  (** one-way propagation of path 2 *)
  algo : string;
  duration : float;
  sample_period : float;  (** window/α sampling interval *)
  seed : int;
}

val symmetric : config
(** Fig. 7: 5 TCP flows on each bottleneck, OLIA, 10 Mb/s, 120 s. *)

val asymmetric : config
(** Fig. 8: 5 vs 10 TCP flows. *)

type traces = {
  w1 : Repro_stats.Timeseries.t;  (** multipath window on path 1, packets *)
  w2 : Repro_stats.Timeseries.t;
  alpha1 : Repro_stats.Timeseries.t;  (** OLIA's α on path 1 (zero for LIA) *)
  alpha2 : Repro_stats.Timeseries.t;
  goodput1_mbps : float;  (** multipath goodput via path 1 *)
  goodput2_mbps : float;
  flip_count : int;
      (** times the paths swapped window-size order with a margin of 2
          packets — the flappiness indicator *)
}

val run : config -> traces
