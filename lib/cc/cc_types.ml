type subflow_view = { mutable cwnd : float; mutable rtt : float }

type t = {
  name : string;
  multipath_initial_ssthresh : float option;
  on_ack : idx:int -> acked:float -> unit;
  on_loss : idx:int -> unit;
  increase : views:subflow_view array -> idx:int -> float;
  loss_decrease : views:subflow_view array -> idx:int -> float;
}

let halve ~views ~idx = views.(idx).cwnd /. 2.
