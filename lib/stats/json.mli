(** Minimal JSON tree and serializer for exporting experiment outcomes
    and sweep tables to plotting tools. No parsing — emission only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialize as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit
(** [to_string] streamed to a channel, with a trailing newline. *)

val write : path:string -> t -> unit
(** Write the compact rendering (plus newline) to [path], creating or
    truncating it. *)

val pp : Format.formatter -> t -> unit
(** Same compact rendering, as a formatter. *)
