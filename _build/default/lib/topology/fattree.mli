(** k-ary FatTree topology (paper §VI-B; the htsim data-center setting:
    k = 8 gives 128 hosts and 80 switches).

    The tree has [k] pods, each with [k/2] edge and [k/2] aggregation
    switches, and [(k/2)²] core switches. Every adjacent pair is joined by
    a bidirectional link. Between two hosts in different pods there are
    [(k/2)²] equal-length paths (one per aggregation/core choice), which
    MPTCP subflows are spread across ECMP-style. *)

type t

val create :
  sim:Repro_netsim.Sim.t ->
  rng:Repro_netsim.Rng.t ->
  k:int ->
  rate_bps:float ->
  delay:float ->
  buffer_pkts:int ->
  discipline:Repro_netsim.Queue.discipline ->
  ?oversubscription:float ->
  unit ->
  t
(** [k] must be even and ≥ 2. [delay] is the one-way latency of each hop.
    [oversubscription] divides the capacity of edge→aggregation and
    aggregation→core links (default 1., i.e. a full-bisection tree; Fig. 14
    uses 4). *)

val k : t -> int
val host_count : t -> int
val switch_count : t -> int

val path_count : t -> src:int -> dst:int -> int
(** Number of distinct shortest paths between two hosts. *)

val all_paths : t -> src:int -> dst:int -> Repro_netsim.Tcp.path array
(** Every shortest path, as ready-to-use forward/reverse hop arrays.
    Raises [Invalid_argument] if [src = dst] or out of range. *)

val sample_paths :
  t -> rng:Repro_netsim.Rng.t -> src:int -> dst:int -> n:int ->
  Repro_netsim.Tcp.path array
(** [n] paths chosen uniformly without replacement (all of them if fewer
    than [n] exist) — the paper's "MPTCP with n subflows". *)

val core_queues : t -> Repro_netsim.Queue.t list
(** Queues of every aggregation→core and core→aggregation hop, for the
    network-core utilization figure of Table III. *)

val all_queues : t -> Repro_netsim.Queue.t list
