type source = { path : string; content : string }

type parsed =
  | Impl of Parsetree.structure
  | Intf
  | Failed of Finding.t

let parse { path; content } =
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf path;
  try
    if Filename.check_suffix path ".mli" then (
      ignore (Parse.interface lexbuf);
      Intf)
    else Impl (Parse.implementation lexbuf)
  with exn ->
    let loc, detail =
      match exn with
      | Syntaxerr.Error e -> (Syntaxerr.location_of_error e, "syntax error")
      | Lexer.Error (_, loc) -> (loc, "lexing error")
      | _ -> (Location.in_file path, Printexc.to_string exn)
    in
    let p = loc.Location.loc_start in
    Failed
      (Finding.v ~rule:Finding.Parse ~file:path ~line:p.Lexing.pos_lnum
         ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
         (Printf.sprintf "file does not parse (%s); no rule was checked"
            detail))

let rec dedup_sorted = function
  | a :: b :: rest when Finding.compare a b = 0 -> dedup_sorted (b :: rest)
  | a :: rest -> a :: dedup_sorted rest
  | [] -> []

(* Pass 1 shared by linting and [--graph-dump]: parse everything once,
   splitting into per-file parse findings and parsed structures. *)
let parse_all sources =
  List.fold_left
    (fun (structures, failures) src ->
      match parse src with
      | Failed f -> (structures, f :: failures)
      | Intf -> (structures, failures)
      | Impl structure -> ((src.path, structure) :: structures, failures))
    ([], []) sources
  |> fun (structures, failures) -> (List.rev structures, List.rev failures)

let graph_of_structures structures =
  Callgraph.build
    (List.map
       (fun (path, structure) -> (path, Summary.of_structure ~path structure))
       structures)

let graph_of_sources sources =
  let structures, _ = parse_all sources in
  graph_of_structures structures

let lint_sources ?(extra_alloc_free_roots = []) sources =
  let structures, parse_failures = parse_all sources in
  (* pass 1: the per-file catalogue, R5 across files *)
  let raw =
    parse_failures
    @ List.concat_map
        (fun (path, structure) -> Rules.check_structure ~path structure)
        structures
    @ Rules.check_registry ~sources:structures
  in
  (* pass 2: summaries -> call graph -> interprocedural R9/R10/R11 *)
  let g = graph_of_structures structures in
  let raw =
    raw
    @ Dataflow.check_alloc_free ~extra_roots:extra_alloc_free_roots g
    @ Dataflow.check_domain_safety g
    @ Dataflow.check_determinism_taint g
  in
  (* Suppression: a whole-program finding is waived by a directive at
     its own site or by one at its chain's root entry point. *)
  let sup_by_file = Hashtbl.create 64 in
  List.iter
    (fun src ->
      Hashtbl.replace sup_by_file src.path
        (Suppress.scan ~file:src.path src.content))
    sources;
  let waived (f : Finding.t) =
    (match Hashtbl.find_opt sup_by_file f.Finding.file with
     | Some sup -> Suppress.permits sup f
     | None -> false)
    ||
    match f.Finding.root with
    | None -> false
    | Some (rfile, rline) -> (
      match Hashtbl.find_opt sup_by_file rfile with
      | Some sup -> Suppress.permits_line sup f.Finding.rule rline
      | None -> false)
  in
  let findings =
    List.concat_map
      (fun src ->
        let sup = Hashtbl.find sup_by_file src.path in
        Suppress.invalid sup
        @ List.filter
            (fun f -> f.Finding.file = src.path && not (waived f))
            raw)
      sources
  in
  dedup_sorted (List.sort Finding.compare findings)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let collect_files roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          (* lint-fixtures hold deliberately-broken sources for the
             test suite; [dune build @lint] must not trip over them *)
          if entry <> "_build" && entry <> "lint-fixtures"
             && entry.[0] <> '.'
          then walk (Filename.concat path entry))
        (Sys.readdir path)
    else if is_source path then acc := path :: !acc
  in
  List.iter
    (fun root -> if Sys.file_exists root then walk root)
    roots;
  List.sort String.compare !acc

let read_sources roots =
  List.map
    (fun path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      { path; content })
    (collect_files roots)

let lint_paths ?extra_alloc_free_roots roots =
  let sources = read_sources roots in
  (List.length sources, lint_sources ?extra_alloc_free_roots sources)
