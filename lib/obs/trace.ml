(* Structured event tracing for the simulator.

   The design point is zero cost when disarmed: every instrumentation
   site in lib/netsim guards its event construction with
   [if Trace.enabled () then ...], and [enabled] is a single ref read,
   so the tracing-off hot path neither allocates nor branches beyond
   that one test. Events are plain records of scalars — no closures,
   no lazy thunks — and serialize through [Repro_stats.Json] to JSONL
   (one compact object per line), which `olia_sim run --trace` and the
   OLIA_TRACE environment variable arm. *)

module Json = Repro_stats.Json

type tcp_state = Slow_start | Congestion_avoidance | Fast_recovery
type drop_cause = Overflow | Red_early | Random_loss | Link_down

type event =
  | Pkt_enqueue of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      backlog : int;
    }
  | Pkt_drop of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      cause : drop_cause;
    }
  | Pkt_forward of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      bytes : int;
      qdelay : float;
    }
  | Tcp_state of {
      time : float;
      flow : int;
      subflow : int;
      from_state : tcp_state;
      to_state : tcp_state;
    }
  | Cwnd_update of {
      time : float;
      flow : int;
      subflow : int;
      cwnd : float;
      ssthresh : float;
    }
  | Rto_fired of { time : float; flow : int; subflow : int; rto : float }
  | Rtt_sample of {
      time : float;
      flow : int;
      subflow : int;
      rtt : float;
      srtt : float;
    }
  | Subflow_add of { time : float; flow : int; subflow : int }
  | Subflow_remove of { time : float; flow : int; subflow : int }

let state_name = function
  | Slow_start -> "slow_start"
  | Congestion_avoidance -> "congestion_avoidance"
  | Fast_recovery -> "fast_recovery"

let state_of_name = function
  | "slow_start" -> Some Slow_start
  | "congestion_avoidance" -> Some Congestion_avoidance
  | "fast_recovery" -> Some Fast_recovery
  | _ -> None

let cause_name = function
  | Overflow -> "overflow"
  | Red_early -> "red_early"
  | Random_loss -> "random_loss"
  | Link_down -> "link_down"

let cause_of_name = function
  | "overflow" -> Some Overflow
  | "red_early" -> Some Red_early
  | "random_loss" -> Some Random_loss
  | "link_down" -> Some Link_down
  | _ -> None

(* Every object leads with an "ev" discriminator so a stream consumer
   can dispatch without probing field sets. *)
let to_json = function
  | Pkt_enqueue { time; queue; flow; subflow; seq; kind; backlog } ->
    Json.Obj
      [
        ("ev", Json.String "pkt_enqueue"); ("t", Json.Float time);
        ("queue", Json.String queue); ("flow", Json.Int flow);
        ("subflow", Json.Int subflow); ("seq", Json.Int seq);
        ("kind", Json.String kind); ("backlog", Json.Int backlog);
      ]
  | Pkt_drop { time; queue; flow; subflow; seq; kind; cause } ->
    Json.Obj
      [
        ("ev", Json.String "pkt_drop"); ("t", Json.Float time);
        ("queue", Json.String queue); ("flow", Json.Int flow);
        ("subflow", Json.Int subflow); ("seq", Json.Int seq);
        ("kind", Json.String kind);
        ("cause", Json.String (cause_name cause));
      ]
  | Pkt_forward { time; queue; flow; subflow; seq; kind; bytes; qdelay } ->
    Json.Obj
      [
        ("ev", Json.String "pkt_forward"); ("t", Json.Float time);
        ("queue", Json.String queue); ("flow", Json.Int flow);
        ("subflow", Json.Int subflow); ("seq", Json.Int seq);
        ("kind", Json.String kind); ("bytes", Json.Int bytes);
        ("qdelay", Json.Float qdelay);
      ]
  | Tcp_state { time; flow; subflow; from_state; to_state } ->
    Json.Obj
      [
        ("ev", Json.String "tcp_state"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
        ("from", Json.String (state_name from_state));
        ("to", Json.String (state_name to_state));
      ]
  | Cwnd_update { time; flow; subflow; cwnd; ssthresh } ->
    Json.Obj
      [
        ("ev", Json.String "cwnd_update"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
        ("cwnd", Json.Float cwnd); ("ssthresh", Json.Float ssthresh);
      ]
  | Rto_fired { time; flow; subflow; rto } ->
    Json.Obj
      [
        ("ev", Json.String "rto_fired"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
        ("rto", Json.Float rto);
      ]
  | Rtt_sample { time; flow; subflow; rtt; srtt } ->
    Json.Obj
      [
        ("ev", Json.String "rtt_sample"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
        ("rtt", Json.Float rtt); ("srtt", Json.Float srtt);
      ]
  | Subflow_add { time; flow; subflow } ->
    Json.Obj
      [
        ("ev", Json.String "subflow_add"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
      ]
  | Subflow_remove { time; flow; subflow } ->
    Json.Obj
      [
        ("ev", Json.String "subflow_remove"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
      ]

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

let as_float name = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | Json.Null -> Ok nan (* non-finite floats serialize as null *)
  | _ -> Error (Printf.sprintf "field %S is not a number" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S is not an integer" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

let floatf fields name =
  let* v = field fields name in
  as_float name v

let intf fields name =
  let* v = field fields name in
  as_int name v

let stringf fields name =
  let* v = field fields name in
  as_string name v

let statef fields name =
  let* s = stringf fields name in
  match state_of_name s with
  | Some st -> Ok st
  | None -> Error (Printf.sprintf "unknown tcp state %S" s)

let of_json json =
  match json with
  | Json.Obj fields -> (
    let* ev = stringf fields "ev" in
    match ev with
    | "pkt_enqueue" ->
      let* time = floatf fields "t" in
      let* queue = stringf fields "queue" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* seq = intf fields "seq" in
      let* kind = stringf fields "kind" in
      let* backlog = intf fields "backlog" in
      Ok (Pkt_enqueue { time; queue; flow; subflow; seq; kind; backlog })
    | "pkt_drop" ->
      let* time = floatf fields "t" in
      let* queue = stringf fields "queue" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* seq = intf fields "seq" in
      let* kind = stringf fields "kind" in
      let* cause_s = stringf fields "cause" in
      let* cause =
        match cause_of_name cause_s with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown drop cause %S" cause_s)
      in
      Ok (Pkt_drop { time; queue; flow; subflow; seq; kind; cause })
    | "pkt_forward" ->
      let* time = floatf fields "t" in
      let* queue = stringf fields "queue" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* seq = intf fields "seq" in
      let* kind = stringf fields "kind" in
      let* bytes = intf fields "bytes" in
      let* qdelay = floatf fields "qdelay" in
      Ok (Pkt_forward { time; queue; flow; subflow; seq; kind; bytes; qdelay })
    | "tcp_state" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* from_state = statef fields "from" in
      let* to_state = statef fields "to" in
      Ok (Tcp_state { time; flow; subflow; from_state; to_state })
    | "cwnd_update" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* cwnd = floatf fields "cwnd" in
      let* ssthresh = floatf fields "ssthresh" in
      Ok (Cwnd_update { time; flow; subflow; cwnd; ssthresh })
    | "rto_fired" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* rto = floatf fields "rto" in
      Ok (Rto_fired { time; flow; subflow; rto })
    | "rtt_sample" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* rtt = floatf fields "rtt" in
      let* srtt = floatf fields "srtt" in
      Ok (Rtt_sample { time; flow; subflow; rtt; srtt })
    | "subflow_add" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      Ok (Subflow_add { time; flow; subflow })
    | "subflow_remove" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      Ok (Subflow_remove { time; flow; subflow })
    | other -> Error (Printf.sprintf "unknown event %S" other))
  | _ -> Error "trace event is not a JSON object"

(* --- integer encodings ---------------------------------------------- *)

(* Fixed codes for the binary ring records. The string forms above stay
   the JSONL wire format; these never appear outside the rings. *)

let state_code = function
  | Slow_start -> 0
  | Congestion_avoidance -> 1
  | Fast_recovery -> 2

let state_of_code = function
  | 0 -> Slow_start
  | 1 -> Congestion_avoidance
  | 2 -> Fast_recovery
  | c -> invalid_arg (Printf.sprintf "Trace: unknown tcp state code %d" c)

let cause_code = function
  | Overflow -> 0
  | Red_early -> 1
  | Random_loss -> 2
  | Link_down -> 3

let cause_of_code = function
  | 0 -> Overflow
  | 1 -> Red_early
  | 2 -> Random_loss
  | 3 -> Link_down
  | c -> invalid_arg (Printf.sprintf "Trace: unknown drop cause code %d" c)

(* Packet kind codes follow [Packet.kind_code]: data 0, ack 1. *)
let kind_name_of_code = function
  | 0 -> "data"
  | 1 -> "ack"
  | c -> invalid_arg (Printf.sprintf "Trace: unknown packet kind code %d" c)

(* --- interning ------------------------------------------------------- *)

(* Source labels (queue names) intern to small ints at component
   creation time, so the armed emission path stores an int instead of
   touching a string. The table is process-global and mutex-protected:
   interning happens at topology construction (cold), lookups at decode
   time (offline). *)

let intern_lock = Mutex.create ()

(* lint: allow R2 R10 -- process-global intern table: written only at component creation under [intern_lock], read back offline by the decoder *)
let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 64

(* lint: allow R2 R10 -- reverse side of [intern_tbl], same discipline *)
let intern_names : string array ref = ref (Array.make 64 "")

(* lint: allow R2 R10 -- count of interned names, guarded by [intern_lock] *)
let intern_count = ref 0

let intern s =
  Mutex.protect intern_lock (fun () ->
      match Hashtbl.find_opt intern_tbl s with
      | Some id -> id
      | None ->
        let id = !intern_count in
        let names = !intern_names in
        let cap = Array.length names in
        if id = cap then begin
          let names' = Array.make (2 * cap) "" in
          Array.blit names 0 names' 0 cap;
          intern_names := names'
        end;
        !intern_names.(id) <- s;
        Hashtbl.add intern_tbl s id;
        incr intern_count;
        id)

let intern_name id =
  Mutex.protect intern_lock (fun () ->
      if id < 0 || id >= !intern_count then
        invalid_arg (Printf.sprintf "Trace.intern_name: unknown id %d" id);
      !intern_names.(id))

(* --- sinks and rings -------------------------------------------------- *)

(* Two armed modes share one [enabled] guard:

   - sink mode (the original design): a process-global [event -> unit]
     callback, mutex-serialized, fed by single-domain runs;
   - ring mode: each participating domain binds its own pre-allocated
     {!Ring}, emission is a lock-free single-writer binary append, and
     {!decode_rings} merges the rings offline back into the JSONL event
     order.

   A domain with a bound ring always writes the ring; the sink is the
   fallback for armed-but-unbound domains (i.e. the classic
   single-domain workflow). *)

(* lint: allow R2 R10 -- process-global trace sink, armed once by the CLI or test setup before the (single-domain) traced run starts *)
let sink : (event -> unit) option ref = ref None

(* lint: allow R2 -- paired with [sink]: the channel behind the JSONL writer, managed only by open_jsonl/close *)
let chan : out_channel option ref = ref None

(* lint: allow R2 R10 -- ring-mode arming flag, flipped only between runs (arm_rings/disarm_rings) *)
let rings_on = ref false

(* lint: allow R2 R10 -- ring capacity for subsequent bind_ring calls, set by arm_rings before workers start *)
let ring_capacity = ref (1 lsl 16)

(* lint: allow R2 R10 -- overflow policy for subsequent bind_ring calls, set by arm_rings before workers start *)
let ring_policy = ref Ring.Drop_oldest

(* lint: allow R2 R10 -- bound rings in registration order, appended under [lock] by bind_ring, read offline by decode_rings *)
let registry : (int * Ring.t) list ref = ref []

(* lint: allow R2 R10 -- registration counter for [registry], bumped under [lock] *)
let reg_count = ref 0

(* lint: allow R2 R10 -- the one-ref-read guard behind every instrumentation site; recomputed from sink/rings state under [lock] *)
let armed = ref false

let lock = Mutex.create ()
let[@inline] enabled () = !armed
let[@inline] sink_armed () = Option.is_some !sink
let rings_armed () = !rings_on
let recompute_armed () = armed := !rings_on || Option.is_some !sink

let emit_sink ev =
  match !sink with
  | None -> ()
  | Some f -> Mutex.protect lock (fun () -> f ev)

let close () =
  Mutex.protect lock (fun () ->
      (match !chan with
      | Some oc ->
        flush oc;
        if oc != stderr then close_out oc
      | None -> ());
      chan := None;
      sink := None;
      recompute_armed ())

let set_sink f =
  sink := f;
  recompute_armed ()

let jsonl_writer oc ev =
  output_string oc (Json.to_string (to_json ev));
  output_char oc '\n'

let open_jsonl ~path =
  close ();
  let oc = open_out path in
  chan := Some oc;
  sink := Some (jsonl_writer oc);
  recompute_armed ()

let with_jsonl ~path f =
  open_jsonl ~path;
  Fun.protect ~finally:close f

(* --- per-domain ring binding and dispatch context --------------------- *)

let ring_key = Domain.DLS.new_key (fun () -> Ring.null)

(* The dispatch context: the scheduler stores the currently-dispatching
   event's ordering key here ({!set_dispatch_ctx}, called once per
   dispatch while tracing is armed), and every record written during
   that dispatch carries it. The decoder sorts on it, which is what
   lets N per-shard rings merge back into exactly the sequential
   dispatch order: records of one dispatch share the key, and distinct
   same-instant dispatches are ordered by [(sched, class, packet
   identity)] — the scheduler's own shard-invariant tie-break. *)
type dctx = { cf : floatarray; ci : int array }

let ctx_key =
  Domain.DLS.new_key (fun () ->
      { cf = Float.Array.make 1 0.; ci = Array.make 5 0 })

let[@inline] set_dispatch_ctx ~sched ~cls ~flow ~subflow ~pseq ~kind =
  let c = Domain.DLS.get ctx_key in
  Float.Array.unsafe_set c.cf 0 sched;
  Array.unsafe_set c.ci 0 cls;
  Array.unsafe_set c.ci 1 flow;
  Array.unsafe_set c.ci 2 subflow;
  Array.unsafe_set c.ci 3 pseq;
  Array.unsafe_set c.ci 4 kind

let arm_rings ?capacity ?policy () =
  Mutex.protect lock (fun () ->
      (match capacity with
      | Some c ->
        if c < 1 then invalid_arg "Trace.arm_rings: capacity must be positive";
        ring_capacity := c
      | None -> ());
      (match policy with Some p -> ring_policy := p | None -> ());
      registry := [];
      reg_count := 0;
      rings_on := true;
      recompute_armed ())

let bind_ring ~shard =
  if not !rings_on then
    invalid_arg "Trace.bind_ring: rings are not armed (call arm_rings first)";
  let r = Ring.create ~shard ~capacity:!ring_capacity ~policy:!ring_policy in
  Mutex.protect lock (fun () ->
      registry := (!reg_count, r) :: !registry;
      incr reg_count);
  Domain.DLS.set ring_key r

let unbind_ring () = Domain.DLS.set ring_key Ring.null

let disarm_rings () =
  Mutex.protect lock (fun () ->
      rings_on := false;
      registry := [];
      reg_count := 0;
      recompute_armed ());
  unbind_ring ()

let rings_dropped () =
  Mutex.protect lock (fun () ->
      List.fold_left (fun acc (_, r) -> acc + Ring.dropped r) 0 !registry)

(* --- armed emission --------------------------------------------------- *)

(* Record layout (owned here, storage in {!Ring}). Int words:
   0 tag, 1 dispatch class, 2-5 dispatching packet identity
   (flow, subflow, seq, kind), 6.. payload. Float words: 0 event time,
   1 dispatch sched key, 2-3 payload. *)

let tag_pkt_enqueue = 0
let tag_pkt_drop = 1
let tag_pkt_forward = 2
let tag_tcp_state = 3
let tag_cwnd_update = 4
let tag_rto_fired = 5
let tag_rtt_sample = 6
let tag_subflow_add = 7
let tag_subflow_remove = 8

(* Claim a slot and fill the shared header words. *)
let[@inline] write_header r tag time =
  let c = Domain.DLS.get ctx_key in
  let s = Ring.claim r in
  Ring.set_f r s 0 time;
  Ring.set_f r s 1 (Float.Array.unsafe_get c.cf 0);
  Ring.set_i r s 0 tag;
  Ring.set_i r s 1 (Array.unsafe_get c.ci 0);
  Ring.set_i r s 2 (Array.unsafe_get c.ci 1);
  Ring.set_i r s 3 (Array.unsafe_get c.ci 2);
  Ring.set_i r s 4 (Array.unsafe_get c.ci 3);
  Ring.set_i r s 5 (Array.unsafe_get c.ci 4);
  s

(* The scalar emission functions: the armed hot path. With a bound ring
   each is a claim plus unboxed word stores — zero minor allocation,
   proven by the R9 roots below. [@inline] matters as much as the body:
   without it every float argument boxes at the call boundary (this
   repo builds without flambda), exactly like [Sim.schedule_after]. The
   sink branch (armed but unbound: the classic single-domain workflow)
   builds the event record and is pruned from the proof by the
   [sink_armed] guard. *)

let[@inline] [@olia.alloc_free] pkt_enqueue ~time ~queue ~flow ~subflow ~seq ~kind
    ~backlog =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_pkt_enqueue time in
    Ring.set_i r s 6 queue;
    Ring.set_i r s 7 flow;
    Ring.set_i r s 8 subflow;
    Ring.set_i r s 9 seq;
    Ring.set_i r s 10 kind;
    Ring.set_i r s 11 backlog
  end
  else if sink_armed () then
    emit_sink
      (Pkt_enqueue
         {
           time;
           queue = intern_name queue;
           flow;
           subflow;
           seq;
           kind = kind_name_of_code kind;
           backlog;
         })

let[@inline] [@olia.alloc_free] pkt_drop ~time ~queue ~flow ~subflow ~seq ~kind ~cause =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_pkt_drop time in
    Ring.set_i r s 6 queue;
    Ring.set_i r s 7 flow;
    Ring.set_i r s 8 subflow;
    Ring.set_i r s 9 seq;
    Ring.set_i r s 10 kind;
    Ring.set_i r s 11 (cause_code cause)
  end
  else if sink_armed () then
    emit_sink
      (Pkt_drop
         {
           time;
           queue = intern_name queue;
           flow;
           subflow;
           seq;
           kind = kind_name_of_code kind;
           cause;
         })

let[@inline] [@olia.alloc_free] pkt_forward ~time ~queue ~flow ~subflow ~seq ~kind
    ~bytes ~qdelay =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_pkt_forward time in
    Ring.set_f r s 2 qdelay;
    Ring.set_i r s 6 queue;
    Ring.set_i r s 7 flow;
    Ring.set_i r s 8 subflow;
    Ring.set_i r s 9 seq;
    Ring.set_i r s 10 kind;
    Ring.set_i r s 11 bytes
  end
  else if sink_armed () then
    emit_sink
      (Pkt_forward
         {
           time;
           queue = intern_name queue;
           flow;
           subflow;
           seq;
           kind = kind_name_of_code kind;
           bytes;
           qdelay;
         })

let[@inline] [@olia.alloc_free] tcp_state ~time ~flow ~subflow ~from_state ~to_state =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_tcp_state time in
    Ring.set_i r s 6 flow;
    Ring.set_i r s 7 subflow;
    Ring.set_i r s 8 (state_code from_state);
    Ring.set_i r s 9 (state_code to_state)
  end
  else if sink_armed () then
    emit_sink (Tcp_state { time; flow; subflow; from_state; to_state })

let[@inline] [@olia.alloc_free] cwnd_update ~time ~flow ~subflow ~cwnd ~ssthresh =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_cwnd_update time in
    Ring.set_f r s 2 cwnd;
    Ring.set_f r s 3 ssthresh;
    Ring.set_i r s 6 flow;
    Ring.set_i r s 7 subflow
  end
  else if sink_armed () then
    emit_sink (Cwnd_update { time; flow; subflow; cwnd; ssthresh })

let[@inline] [@olia.alloc_free] rto_fired ~time ~flow ~subflow ~rto =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_rto_fired time in
    Ring.set_f r s 2 rto;
    Ring.set_i r s 6 flow;
    Ring.set_i r s 7 subflow
  end
  else if sink_armed () then emit_sink (Rto_fired { time; flow; subflow; rto })

let[@inline] [@olia.alloc_free] rtt_sample ~time ~flow ~subflow ~rtt ~srtt =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_rtt_sample time in
    Ring.set_f r s 2 rtt;
    Ring.set_f r s 3 srtt;
    Ring.set_i r s 6 flow;
    Ring.set_i r s 7 subflow
  end
  else if sink_armed () then
    emit_sink (Rtt_sample { time; flow; subflow; rtt; srtt })

let[@inline] [@olia.alloc_free] subflow_add ~time ~flow ~subflow =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_subflow_add time in
    Ring.set_i r s 6 flow;
    Ring.set_i r s 7 subflow
  end
  else if sink_armed () then emit_sink (Subflow_add { time; flow; subflow })

let[@inline] [@olia.alloc_free] subflow_remove ~time ~flow ~subflow =
  let r = Domain.DLS.get ring_key in
  if r != Ring.null then begin
    let s = write_header r tag_subflow_remove time in
    Ring.set_i r s 6 flow;
    Ring.set_i r s 7 subflow
  end
  else if sink_armed () then emit_sink (Subflow_remove { time; flow; subflow })

(* Variant-level compatibility entry point: tests and external callers
   that hold an {!event} go through the same paths as the scalar
   functions (ring if bound, sink otherwise). Queue names re-intern, so
   a ring round-trip preserves them. *)
let emit ev =
  let r = Domain.DLS.get ring_key in
  if r == Ring.null then emit_sink ev
  else
    match ev with
    | Pkt_enqueue { time; queue; flow; subflow; seq; kind; backlog } ->
      pkt_enqueue ~time ~queue:(intern queue) ~flow ~subflow ~seq
        ~kind:(if kind = "ack" then 1 else 0)
        ~backlog
    | Pkt_drop { time; queue; flow; subflow; seq; kind; cause } ->
      pkt_drop ~time ~queue:(intern queue) ~flow ~subflow ~seq
        ~kind:(if kind = "ack" then 1 else 0)
        ~cause
    | Pkt_forward { time; queue; flow; subflow; seq; kind; bytes; qdelay } ->
      pkt_forward ~time ~queue:(intern queue) ~flow ~subflow ~seq
        ~kind:(if kind = "ack" then 1 else 0)
        ~bytes ~qdelay
    | Tcp_state { time; flow; subflow; from_state; to_state } ->
      tcp_state ~time ~flow ~subflow ~from_state ~to_state
    | Cwnd_update { time; flow; subflow; cwnd; ssthresh } ->
      cwnd_update ~time ~flow ~subflow ~cwnd ~ssthresh
    | Rto_fired { time; flow; subflow; rto } -> rto_fired ~time ~flow ~subflow ~rto
    | Rtt_sample { time; flow; subflow; rtt; srtt } ->
      rtt_sample ~time ~flow ~subflow ~rtt ~srtt
    | Subflow_add { time; flow; subflow } -> subflow_add ~time ~flow ~subflow
    | Subflow_remove { time; flow; subflow } ->
      subflow_remove ~time ~flow ~subflow

(* --- offline decoding ------------------------------------------------- *)

let event_of_record r s =
  let time = Ring.get_f r s 0 in
  let tag = Ring.get_i r s 0 in
  if tag = tag_pkt_enqueue then
    Pkt_enqueue
      {
        time;
        queue = intern_name (Ring.get_i r s 6);
        flow = Ring.get_i r s 7;
        subflow = Ring.get_i r s 8;
        seq = Ring.get_i r s 9;
        kind = kind_name_of_code (Ring.get_i r s 10);
        backlog = Ring.get_i r s 11;
      }
  else if tag = tag_pkt_drop then
    Pkt_drop
      {
        time;
        queue = intern_name (Ring.get_i r s 6);
        flow = Ring.get_i r s 7;
        subflow = Ring.get_i r s 8;
        seq = Ring.get_i r s 9;
        kind = kind_name_of_code (Ring.get_i r s 10);
        cause = cause_of_code (Ring.get_i r s 11);
      }
  else if tag = tag_pkt_forward then
    Pkt_forward
      {
        time;
        queue = intern_name (Ring.get_i r s 6);
        flow = Ring.get_i r s 7;
        subflow = Ring.get_i r s 8;
        seq = Ring.get_i r s 9;
        kind = kind_name_of_code (Ring.get_i r s 10);
        bytes = Ring.get_i r s 11;
        qdelay = Ring.get_f r s 2;
      }
  else if tag = tag_tcp_state then
    Tcp_state
      {
        time;
        flow = Ring.get_i r s 6;
        subflow = Ring.get_i r s 7;
        from_state = state_of_code (Ring.get_i r s 8);
        to_state = state_of_code (Ring.get_i r s 9);
      }
  else if tag = tag_cwnd_update then
    Cwnd_update
      {
        time;
        flow = Ring.get_i r s 6;
        subflow = Ring.get_i r s 7;
        cwnd = Ring.get_f r s 2;
        ssthresh = Ring.get_f r s 3;
      }
  else if tag = tag_rto_fired then
    Rto_fired
      {
        time;
        flow = Ring.get_i r s 6;
        subflow = Ring.get_i r s 7;
        rto = Ring.get_f r s 2;
      }
  else if tag = tag_rtt_sample then
    Rtt_sample
      {
        time;
        flow = Ring.get_i r s 6;
        subflow = Ring.get_i r s 7;
        rtt = Ring.get_f r s 2;
        srtt = Ring.get_f r s 3;
      }
  else if tag = tag_subflow_add then
    Subflow_add
      {
        time;
        flow = Ring.get_i r s 6;
        subflow = Ring.get_i r s 7;
      }
  else if tag = tag_subflow_remove then
    Subflow_remove
      {
        time;
        flow = Ring.get_i r s 6;
        subflow = Ring.get_i r s 7;
      }
  else invalid_arg (Printf.sprintf "Trace: unknown record tag %d" tag)

(* One decoded record with its merge key. [rank] orders rings (by
   shard, then registration order) and [pos] preserves each ring's own
   emission order for otherwise-equal keys. *)
type view = {
  v_time : float;
  v_sched : float;
  v_cls : int;
  v_dflow : int;
  v_dsub : int;
  v_dpseq : int;
  v_dkind : int;
  v_rank : int;
  v_pos : int;
  v_ev : event;
}

let compare_view a b =
  let c = Float.compare a.v_time b.v_time in
  if c <> 0 then c
  else
    let c = Float.compare a.v_sched b.v_sched in
    if c <> 0 then c
    else
      let c = Int.compare a.v_cls b.v_cls in
      if c <> 0 then c
      else
        let c = Int.compare a.v_dflow b.v_dflow in
        if c <> 0 then c
        else
          let c = Int.compare a.v_dsub b.v_dsub in
          if c <> 0 then c
          else
            let c = Int.compare a.v_dpseq b.v_dpseq in
            if c <> 0 then c
            else
              let c = Int.compare a.v_dkind b.v_dkind in
              if c <> 0 then c
              else
                (* The dispatch key can tie across distinct dispatches:
                   closure dispatches carry no packet identity (two
                   queue-serve completions armed and firing at the same
                   instants are common on the service-time lattice), and
                   they can run on different shards. The record's own
                   content is shard-invariant, so it canonicalizes the
                   order — the same regrouping on a 1-ring decode and an
                   N-ring decode. Structural compare of the decoded
                   event is total and deterministic (ints, floats,
                   interned-back strings). *)
                let c = Stdlib.compare a.v_ev b.v_ev in
                if c <> 0 then c
                else
                  let c = Int.compare a.v_rank b.v_rank in
                  if c <> 0 then c else Int.compare a.v_pos b.v_pos

(* Merge every bound ring's records into the canonical event order:
   sort by [(time, sched, class, dispatching-packet identity)] — the
   scheduler's own dispatch order — then by record content, with ring
   rank and in-ring position closing the order. Every component before
   rank/pos is shard-invariant, so a 1-ring decode and an N-ring decode
   of the same run order identically: that is the byte-identity the
   shard-invariance gate checks. *)
let decode_rings () =
  let rings =
    Mutex.protect lock (fun () ->
        List.sort
          (fun (ra, a) (rb, b) ->
            let c = Int.compare (Ring.shard a) (Ring.shard b) in
            if c <> 0 then c else Int.compare ra rb)
          !registry)
  in
  let views =
    List.concat_map
      (fun (rank, r) ->
        List.init (Ring.length r) (fun i ->
            let s = Ring.slot_of_index r i in
            {
              v_time = Ring.get_f r s 0;
              v_sched = Ring.get_f r s 1;
              v_cls = Ring.get_i r s 1;
              v_dflow = Ring.get_i r s 2;
              v_dsub = Ring.get_i r s 3;
              v_dpseq = Ring.get_i r s 4;
              v_dkind = Ring.get_i r s 5;
              v_rank = rank;
              v_pos = i;
              v_ev = event_of_record r s;
            }))
      rings
  in
  List.map (fun v -> v.v_ev) (List.sort compare_view views)

(* OLIA_TRACE=1 (or true/yes/on) streams JSONL to stderr; any other
   non-empty value is taken as an output path. *)
let () =
  match Sys.getenv_opt "OLIA_TRACE" with
  | None | Some "" | Some "0" -> ()
  | Some ("1" | "true" | "yes" | "on") ->
    chan := Some stderr;
    sink := Some (jsonl_writer stderr);
    recompute_armed ();
    at_exit close
  | Some path ->
    open_jsonl ~path;
    at_exit close
