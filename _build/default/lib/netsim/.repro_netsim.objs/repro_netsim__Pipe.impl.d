lib/netsim/pipe.ml: Packet Sim
