type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable minv : float;
  mutable maxv : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; minv = nan; maxv = nan }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.minv <- x;
    t.maxv <- x
  end
  else begin
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x
  end

let add_seq t seq = Seq.iter (add t) seq
let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stdev t = sqrt (variance t)
let min t = t.minv
let max t = t.maxv
let sum t = t.mean *. float_of_int t.n

(* Two-sided 97.5% Student t quantiles for small degrees of freedom; beyond
   the table we use the normal quantile. *)
let t_quantile_975 df =
  let table =
    [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262;
       2.228; 2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101;
       2.093; 2.086; 2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052;
       2.048; 2.045; 2.042 |]
  in
  if df <= 0 then nan
  else if df <= Array.length table then table.(df - 1)
  else 1.96

let ci95_halfwidth t =
  if t.n < 2 then 0.
  else
    let q = t_quantile_975 (t.n - 1) in
    q *. stdev t /. sqrt (float_of_int t.n)

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
    {
      n;
      mean;
      m2;
      minv = Stdlib.min a.minv b.minv;
      maxv = Stdlib.max a.maxv b.maxv;
    }

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let jain_index xs =
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0. xs in
    let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0. xs in
    if s2 = 0. then 1. else s *. s /. (n *. s2)

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else Format.fprintf ppf "%.4g ± %.2g (n=%d)" (mean t) (ci95_halfwidth t) t.n
