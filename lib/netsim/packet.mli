(** Packets and forwarding.

    A packet carries its remaining route as an array of hops; each hop is
    a function consuming the packet (a queue's enqueue, a pipe's delay, or
    an endpoint's protocol handler).

    Packet records are pooled: {!data} and {!ack} recycle cells from a
    per-domain free list and the component that consumes a packet — a
    protocol sink, or a queue/fault stage that drops it — must hand it
    back with {!free}. All fields are mutable for that reason; treat a
    packet as owned by whoever currently holds it. The float timestamps
    live in the float-only {!type-stamps} sub-record so re-stamping them
    never allocates. *)

type kind =
  | Data  (** one MSS of payload *)
  | Ack
      (** cumulative ACK; the payload rides in the [ackno], [sack] and
          [times.echo] fields so that building one allocates nothing *)

(** Float-only timestamp block (unboxed stores). *)
type stamps = {
  mutable sent_at : float;  (** departure time from the sender *)
  mutable enqueued_at : float;
      (** admission time at the queue currently holding the packet,
          re-stamped at every queue hop; [sent_at] until first queued.
          Queue-residence spans ([Pkt_forward.qdelay]) derive from it. *)
  mutable echo : float;
      (** ACKs only: departure timestamp of the packet that triggered
          the ACK, used for RTT sampling *)
}

type t = {
  mutable kind : kind;
  mutable seq : int;
      (** sequence number, in packets (Data only; 0 for ACKs) *)
  mutable size_bytes : int;
  mutable flow : int;  (** connection id, for tracing *)
  mutable subflow : int;
  mutable hop : int;  (** index of the next hop to visit *)
  mutable route : hop array;
  mutable ackno : int;
      (** ACKs only: the next expected sequence number *)
  mutable sack : (int * int) option;
      (** ACKs only: the most recent SACK block [\[lo, hi)] of
          out-of-order data held by the receiver; [None] on the
          in-order path, so the steady state allocates nothing *)
  times : stamps;
  mutable live : bool;
      (** debug-only ownership bit: set by the pool, cleared by
          {!free}; checked when OLIA_DEBUG_INVARIANTS is armed *)
}

and hop = t -> unit

val data_size : int
(** 1500 bytes: MSS-sized segments. *)

val ack_size : int
(** 40 bytes. *)

val kind_name : t -> string
(** ["data"] or ["ack"], for trace events. *)

val kind_code : kind -> int
(** [Data] is 0, [Ack] is 1: the fixed integer encoding used by the
    binary trace rings and the scheduler's content tie-break. *)

val data : flow:int -> subflow:int -> seq:int -> sent_at:float ->
  route:hop array -> t
(** A data packet positioned at the first hop of [route], drawn from the
    per-domain pool. *)

val ack : flow:int -> subflow:int -> ackno:int -> echo:float ->
  sack:(int * int) option -> route:hop array -> sent_at:float -> t
(** An acknowledgment positioned at the first hop of [route], drawn from
    the per-domain pool. *)

val free : t -> unit
(** Return a packet to the pool. Call exactly once, at the point the
    packet leaves the simulation: a protocol sink that has absorbed it,
    or a queue/fault/lossy stage that dropped it. Double frees raise
    [Invariant.Violation] when invariants are armed. *)

val forward : t -> unit
(** Deliver the packet to its next hop, advancing the hop index. Must not
    be called past the last hop (asserted). *)

val sentinel : unit -> t
(** A fresh packet that is outside the pool protocol ([live = false],
    never to be forwarded or freed): a placeholder for "no packet" slots
    in data structures. *)
