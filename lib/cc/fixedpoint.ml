(* u64-style fixed-point primitives for the kernel-twin congestion
   controls (net/mptcp/mptcp_olia.c, mptcp_balia.c of the linux-4.1
   MPTCP tree, carried in SNIPPETS.md). The kernel computes on u64 with
   explicit scale shifts; we compute on OCaml's native 63-bit int, which
   holds every intermediate the kernel's own rescaling keeps under
   2^62 — and saturates at [max_int] where a u64 would keep going, so
   an overflowing product degrades an increase term towards zero
   instead of wrapping.

   All operands are nonnegative by convention, as in the kernel's u64
   arithmetic; signs (OLIA's epsilon) are applied by the callers'
   branches, never carried through these primitives. *)

let scale = 10

(* BALIA: alpha is carried in [alpha_scale] units; per-path rates are
   shifted down [scale_num] bits at a time until the largest is below
   [2^rate_scale_limit], so products of three rescaled rates fit. *)
let alpha_scale = 10
let rate_scale_limit = 25
let scale_num = 5

(* 1.0 at [scale] *)
let one = 1 lsl scale

(* The kernel bumps snd_cwnd by a full packet when mptcp_snd_cwnd_cnt
   reaches (1 << scale) - 1: one cwnd step is 1023 cnt units. *)
let cnt_wrap = (1 lsl scale) - 1

(* div_u64 twin; a zero (or, here, negative) divisor yields 0 rather
   than trapping. Kernel callers avoid the case with explicit floors
   ("We have to avoid a zero-rate because it is used as a divisor"). *)
let div_u64 num den = if den <= 0 then 0 else num / den

let add_sat a b = if a > max_int - b then max_int else a + b

let mul_sat a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

(* mptcp_olia_scale / mptcp_balia_scale twin: [v lsl n], saturating
   where the kernel's u64 shift would overflow. *)
let shift_sat v n = if v > max_int asr n then max_int else v lsl n
let scale_sat v = shift_sat v scale

(* How many [scale_num]-bit shifts bring [max_rate] at or below
   2^rate_scale_limit — the kernel's num_scale_down loop. *)
let rec num_scale_down_from m n =
  if m > 1 lsl rate_scale_limit then num_scale_down_from (m asr scale_num) (n + 1)
  else n

let num_scale_down max_rate = num_scale_down_from max_rate 0

(* Shift a rate down by [down] rescale steps. *)
let rescale v down = v asr (scale_num * down)

(* --- float boundary ---------------------------------------------------
   Conversions between the float model's units and kernel units. These
   are the only float-touching helpers of the fixed-point layer; the
   *_fp twins call them exclusively from their [@olia.float_boundary]
   adapters. *)

(* Nearest [scale]-unit fixed-point value of a nonnegative float. *)
let of_float_scaled x = int_of_float ((x *. float_of_int one) +. 0.5)
let to_float_scaled v = float_of_int v /. float_of_int one

(* Seconds to the kernel's srtt microseconds, floored at 1 so it can
   serve as a divisor (mptcp_olia_sk_can_send requires srtt_us > 0). *)
let usec_of_sec s =
  let u = int_of_float (s *. 1e6) in
  if u < 1 then 1 else u
