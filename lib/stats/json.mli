(** Minimal JSON tree, serializer, and parser for exporting experiment
    outcomes and sweep tables to plotting tools and reading them back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialize as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit
(** [to_string] streamed to a channel, with a trailing newline. *)

val write : path:string -> t -> unit
(** Write the compact rendering (plus newline) to [path], creating or
    truncating it. *)

val pp : Format.formatter -> t -> unit
(** Same compact rendering, as a formatter. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed). Numeric
    tokens with a ['.'] or exponent become [Float], others [Int];
    [\u] escapes decode to UTF-8, combining surrogate pairs. Errors
    carry the byte offset. Inverse of [to_string] up to number
    formatting: [Float nan] serializes as [null] and does not read
    back as a float. *)
