lib/stats/csv.mli: Timeseries
