(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (plus ablations) and runs Bechamel micro-benchmarks of the
   hot paths.

     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- fig9 table2     # a subset
     dune exec bench/main.exe -- --quick         # shorter simulations
     dune exec bench/main.exe -- --list          # available targets

   Simulated links are scaled versions of the testbed (see DESIGN.md);
   shapes, not absolute numbers, are the reproduction target. *)

(* lint: allow-file R1 -- wall-clock progress reporting of the harness; simulation results never read it *)

module S = Mptcp_repro.Scenarios
module E = Mptcp_repro.Exp
module F = Mptcp_repro.Fluid
module Stats = Mptcp_repro.Stats
module Table = Stats.Table
module Summary = Stats.Summary

let quick = ref false
let n_seeds () = if !quick then 1 else 3
let duration () = if !quick then 40. else 90.
let warmup () = if !quick then 10. else 30.

(* Replicated measurements go through the experiment registry: one
   scenario point, [n_seeds] deterministic seeds fanned out on the sweep
   engine's domain pool, one summary per requested metric. The cache
   lets figures share points (fig1b/fig9 reuse fig1c/fig10's runs). *)

let measure_cache : (string * E.Spec.bindings, Summary.t list) Hashtbl.t =
  Hashtbl.create 64

let measure scenario overrides metrics =
  let overrides =
    overrides
    @ [
        ("duration", E.Spec.Float (duration ()));
        ("warmup", E.Spec.Float (warmup ()));
      ]
  in
  let key = (scenario, overrides) in
  match Hashtbl.find_opt measure_cache key with
  | Some s -> s
  | None ->
    let (module Sc : S.Registry.SCENARIO) = S.Registry.find scenario in
    let pts =
      E.Sweep.points Sc.spec ~fixed:overrides
        [ E.Sweep.seed_axis (n_seeds ()) ]
    in
    let results = E.Sweep.run (module Sc) pts in
    let summaries =
      List.map
        (fun m ->
          Summary.of_list
            (List.map
               (fun p -> E.Outcome.metric p.E.Sweep.outcome m)
               results))
        metrics
    in
    Hashtbl.replace measure_cache key summaries;
    summaries

let pm s = Printf.sprintf "%.3f ± %.3f" (Summary.mean s) (Summary.ci95_halfwidth s)
let pm2 s = Printf.sprintf "%.2f ± %.2f" (Summary.mean s) (Summary.ci95_halfwidth s)
let pm4 s = Printf.sprintf "%.4f ± %.4f" (Summary.mean s) (Summary.ci95_halfwidth s)

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ----- Scenario A (Figs. 1b, 1c, 9, 10) ------------------------------ *)

let scen_a_params ~n1 ~c1 =
  {
    F.Scenario_a.n1;
    n2 = 10;
    c1 = F.Units.pps_of_mbps c1;
    c2 = F.Units.pps_of_mbps 1.;
    rtt = 0.15;
  }

let scen_a_measure ~algo ~n1 ~c1 =
  match
    measure "scenario-a"
      [
        ("n1", E.Spec.Int n1);
        ("c1", E.Spec.Float c1);
        ("algo", E.Spec.String algo);
      ]
      [ "norm_type1"; "norm_type2"; "p1"; "p2" ]
  with
  | [ t1; t2; p1; p2 ] -> (t1, t2, p1, p2)
  | _ -> assert false

let scenario_a_rows ~algo ~loss =
  let t =
    Table.create
      ~title:
        (if loss then
           Printf.sprintf "loss probability p2 at the shared AP (%s)" algo
         else
           Printf.sprintf "normalized throughput, %s vs fluid vs optimum" algo)
      ~columns:
        (if loss then [ "N1/N2"; "C1/C2"; "p2 measured"; "p2 fluid(LIA)" ]
         else
           [
             "N1/N2"; "C1/C2"; "type1 meas"; "type2 meas"; "type2 fluid(LIA)";
             "type2 optimum";
           ])
  in
  List.iter
    (fun c1 ->
      List.iter
        (fun n1 ->
          let fluid = F.Scenario_a.lia (scen_a_params ~n1 ~c1) in
          let opt =
            F.Scenario_a.optimum_with_probing (scen_a_params ~n1 ~c1)
          in
          let t1, t2, _, p2 = scen_a_measure ~algo ~n1 ~c1 in
          if loss then
            Table.add_row t
              [
                Printf.sprintf "%.1f" (float_of_int n1 /. 10.);
                Printf.sprintf "%.2f" c1;
                pm4 p2;
                Printf.sprintf "%.4f" fluid.F.Scenario_a.p2;
              ]
          else
            Table.add_row t
              [
                Printf.sprintf "%.1f" (float_of_int n1 /. 10.);
                Printf.sprintf "%.2f" c1;
                pm t1;
                pm t2;
                Printf.sprintf "%.3f" fluid.F.Scenario_a.norm_type2;
                Printf.sprintf "%.3f" opt.F.Scenario_a.norm2;
              ])
        [ 10; 20; 30 ])
    [ 0.75; 1.0; 1.5 ];
  Table.print t

let fig1b () =
  section "Fig 1(b) - Scenario A with LIA: normalized throughputs";
  scenario_a_rows ~algo:"lia" ~loss:false

let fig1c () =
  section "Fig 1(c) - Scenario A with LIA: loss probability p2";
  scenario_a_rows ~algo:"lia" ~loss:true

let fig9 () =
  section "Fig 9 - Scenario A: OLIA normalized throughputs (vs fig1b)";
  scenario_a_rows ~algo:"olia" ~loss:false

let fig10 () =
  section "Fig 10 - Scenario A: loss probability p2 with OLIA (vs fig1c)";
  scenario_a_rows ~algo:"olia" ~loss:true

(* ----- Scenario B (Fig. 4, Tables I and II, Fig. 17) ------------------ *)

let scen_b_params ~rtt ~ratio =
  {
    F.Scenario_b.n = 15;
    cx = F.Units.pps_of_mbps (36. *. ratio);
    ct = F.Units.pps_of_mbps 36.;
    rtt;
  }

let ratios = [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 ]

let fig4a () =
  section "Fig 4(a) - Scenario B, LIA analysis: normalized throughput vs CX/CT";
  let t =
    Table.create ~title:"15+15 users, CT = 36 Mb/s, rtt = 150 ms"
      ~columns:[ "CX/CT"; "blue sp"; "red sp"; "blue mp"; "red mp" ]
  in
  List.iter
    (fun ratio ->
      let params = scen_b_params ~rtt:0.15 ~ratio in
      let sp = F.Scenario_b.lia_red_singlepath params in
      let mp = F.Scenario_b.lia_red_multipath params in
      let bsp, rsp = F.Scenario_b.normalized params sp in
      let bmp, rmp =
        F.Scenario_b.normalized params
          {
            F.Scenario_b.blue_total = mp.F.Scenario_b.blue_total;
            red_total = mp.F.Scenario_b.red_total;
            aggregate = mp.F.Scenario_b.aggregate;
          }
      in
      Table.add_row t
        [
          Printf.sprintf "%.2f" ratio;
          Printf.sprintf "%.3f" bsp;
          Printf.sprintf "%.3f" rsp;
          Printf.sprintf "%.3f" bmp;
          Printf.sprintf "%.3f" rmp;
        ])
    ratios;
  Table.print t;
  print_endline "(mp < sp everywhere: upgrading Red users hurts everyone, P1)"

let fig4b_body ~rtt title =
  let t =
    Table.create ~title
      ~columns:[ "CX/CT"; "blue sp"; "red sp"; "blue mp"; "red mp" ]
  in
  List.iter
    (fun ratio ->
      let params = scen_b_params ~rtt ~ratio in
      let sp = F.Scenario_b.optimum_red_singlepath params in
      let mp = F.Scenario_b.optimum_red_multipath params in
      let bsp, rsp = F.Scenario_b.normalized params sp in
      let bmp, rmp = F.Scenario_b.normalized params mp in
      Table.add_row t
        [
          Printf.sprintf "%.2f" ratio;
          Printf.sprintf "%.3f" bsp;
          Printf.sprintf "%.3f" rsp;
          Printf.sprintf "%.3f" bmp;
          Printf.sprintf "%.3f" rmp;
        ])
    ratios;
  Table.print t

let fig4b () =
  section "Fig 4(b) - Scenario B, optimum with probing cost";
  fig4b_body ~rtt:0.15 "15+15 users, CT = 36 Mb/s, rtt = 150 ms";
  print_endline "(the upgrade now costs only the probing overhead, ~3%)"

let fig17 () =
  section "Fig 17 - probing-cost optimum at RTT = 100 ms and 25 ms";
  fig4b_body ~rtt:0.1 "RTT = 100 ms";
  fig4b_body ~rtt:0.025 "RTT = 25 ms";
  print_endline "(smaller RTT = larger probing overhead: 1 MSS per RTT)"

let table_b ~algo ~label =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "%s - Scenario B measurements (%s), CX=27 CT=36 Mb/s, 15+15 users"
           label algo)
      ~columns:[ "Red users"; "blue rate/user"; "red rate/user"; "aggregate" ]
  in
  let row label red_multipath =
    match
      measure "scenario-b"
        [
          ("red_multipath", E.Spec.Bool red_multipath);
          ("algo", E.Spec.String algo);
        ]
        [ "blue_rate"; "red_rate"; "aggregate" ]
    with
    | [ blue; red; aggregate ] ->
      Table.add_row t [ label; pm2 blue; pm2 red; pm2 aggregate ];
      Summary.mean aggregate
    | _ -> assert false
  in
  let sp = row "single-path" false in
  let mp = row "multipath" true in
  Table.print t;
  Printf.printf "aggregate drop after the Red upgrade: %.1f%% (paper: %s)\n"
    (100. *. (1. -. (mp /. sp)))
    (if algo = "lia" then "13%" else "3.5%")

let table1 () =
  section "Table I - Scenario B with LIA";
  table_b ~algo:"lia" ~label:"Table I"

let table2 () =
  section "Table II - Scenario B with OLIA";
  table_b ~algo:"olia" ~label:"Table II"

(* ----- Scenario C (Figs. 5, 11, 12) ----------------------------------- *)

let scen_c_params ~n1 ~c1 =
  {
    F.Scenario_c.n1;
    n2 = 10;
    c1 = F.Units.pps_of_mbps c1;
    c2 = F.Units.pps_of_mbps 1.;
    rtt = 0.15;
  }

let fig5b () =
  section "Fig 5(b) - Scenario C analysis, N1 = N2: LIA vs optimum";
  let t =
    Table.create ~title:"normalized throughputs vs C1/C2"
      ~columns:[ "C1/C2"; "LIA multi"; "LIA single"; "opt multi"; "opt single" ]
  in
  List.iter
    (fun ratio ->
      let params = scen_c_params ~n1:10 ~c1:ratio in
      let lia = F.Scenario_c.lia params in
      let opt = F.Scenario_c.optimum_with_probing params in
      Table.add_row t
        [
          Printf.sprintf "%.2f" ratio;
          Printf.sprintf "%.3f" lia.F.Scenario_c.norm_multipath;
          Printf.sprintf "%.3f" lia.F.Scenario_c.norm_single;
          Printf.sprintf "%.3f" opt.F.Scenario_c.norm_multipath;
          Printf.sprintf "%.3f" opt.F.Scenario_c.norm_single;
        ])
    [ 0.25; 0.33; 0.5; 0.75; 1.0; 1.25; 1.5 ];
  Table.print t;
  print_endline "(LIA grabs AP2 beyond C1/C2 = 1/3; the optimum does not, P2)"

let scen_c_measure ~algo ~n1 ~c1 =
  match
    measure "scenario-c"
      [
        ("n1", E.Spec.Int n1);
        ("c1", E.Spec.Float c1);
        ("algo", E.Spec.String algo);
      ]
      [ "norm_multipath"; "norm_single"; "p2" ]
  with
  | [ multi; single; p2 ] -> (multi, single, p2)
  | _ -> assert false

let scenario_c_rows ~algo ~loss =
  let t =
    Table.create
      ~title:
        (if loss then Printf.sprintf "loss probability p2 at AP2 (%s)" algo
         else
           Printf.sprintf "normalized throughput (%s) vs fluid vs optimum" algo)
      ~columns:
        (if loss then [ "N1/N2"; "C1/C2"; "p2 measured"; "p2 fluid(LIA)" ]
         else
           [
             "N1/N2"; "C1/C2"; "multi meas"; "single meas";
             "single fluid(LIA)"; "single optimum";
           ])
  in
  List.iter
    (fun c1 ->
      List.iter
        (fun n1 ->
          let fluid = F.Scenario_c.lia (scen_c_params ~n1 ~c1) in
          let opt =
            F.Scenario_c.optimum_with_probing (scen_c_params ~n1 ~c1)
          in
          let multi, single, p2 = scen_c_measure ~algo ~n1 ~c1 in
          if loss then
            Table.add_row t
              [
                Printf.sprintf "%.1f" (float_of_int n1 /. 10.);
                Printf.sprintf "%.1f" c1;
                pm4 p2;
                Printf.sprintf "%.4f" fluid.F.Scenario_c.p2;
              ]
          else
            Table.add_row t
              [
                Printf.sprintf "%.1f" (float_of_int n1 /. 10.);
                Printf.sprintf "%.1f" c1;
                pm multi;
                pm single;
                Printf.sprintf "%.3f" fluid.F.Scenario_c.norm_single;
                Printf.sprintf "%.3f" opt.F.Scenario_c.norm_single;
              ])
        [ 5; 10; 20; 30 ])
    [ 1.; 2. ];
  Table.print t

let fig5c () =
  section "Fig 5(c) - Scenario C with LIA: normalized throughputs";
  scenario_c_rows ~algo:"lia" ~loss:false

let fig5d () =
  section "Fig 5(d) - Scenario C with LIA: loss probability p2";
  scenario_c_rows ~algo:"lia" ~loss:true

let fig11 () =
  section "Fig 11 - Scenario C: OLIA normalized throughputs (vs fig5c)";
  scenario_c_rows ~algo:"olia" ~loss:false

let fig12 () =
  section "Fig 12 - Scenario C: loss probability p2 with OLIA (vs fig5d)";
  scenario_c_rows ~algo:"olia" ~loss:true

(* ----- window traces (Figs. 7 and 8) ---------------------------------- *)

let trace_summary label cfg =
  let t = S.Two_bottleneck.run cfg in
  let d = cfg.S.Two_bottleneck.duration in
  let mean ts = Stats.Timeseries.mean_over ts ~from:(d /. 6.) ~until:d in
  Printf.printf
    "%s (%-4s): mean w1 = %5.1f, mean w2 = %5.1f pkts; goodput %.2f / %.2f \
     Mb/s; window flips = %d\n"
    label cfg.S.Two_bottleneck.algo
    (mean t.S.Two_bottleneck.w1)
    (mean t.S.Two_bottleneck.w2)
    t.S.Two_bottleneck.goodput1_mbps t.S.Two_bottleneck.goodput2_mbps
    t.S.Two_bottleneck.flip_count;
  t

let fig7 () =
  section "Fig 7 - symmetric two-bottleneck: both paths used, no flapping";
  let cfg = { S.Two_bottleneck.symmetric with duration = 120. } in
  let t = trace_summary "symmetric" cfg in
  let _ = trace_summary "symmetric" { cfg with algo = "lia" } in
  Printf.printf "alpha samples within [-1,1]: %b\n"
    (Array.for_all
       (fun (_, a) -> a >= -1. && a <= 1.)
       (Stats.Timeseries.to_array t.S.Two_bottleneck.alpha1))

let fig8 () =
  section
    "Fig 8 - asymmetric (5 vs 10 TCP flows): OLIA avoids the congested path";
  let cfg = { S.Two_bottleneck.asymmetric with duration = 120. } in
  let olia = trace_summary "asymmetric" cfg in
  let lia = trace_summary "asymmetric" { cfg with algo = "lia" } in
  Printf.printf
    "congested-path goodput: OLIA %.2f vs LIA %.2f Mb/s (paper: OLIA lower)\n"
    olia.S.Two_bottleneck.goodput2_mbps lia.S.Two_bottleneck.goodput2_mbps

(* ----- FatTree (Fig. 13) ---------------------------------------------- *)

let fattree_cfg () =
  if !quick then
    { S.Fattree_static.default with k = 4; duration = 20.; warmup = 5. }
  else { S.Fattree_static.default with k = 8; duration = 12.; warmup = 4. }

let fig13a () =
  section "Fig 13(a) - FatTree aggregate throughput vs number of subflows";
  let cfg = fattree_cfg () in
  Printf.printf
    "FatTree k=%d (%d hosts), %g Mb/s links (scaled; see DESIGN.md)\n"
    cfg.S.Fattree_static.k
    (cfg.S.Fattree_static.k * cfg.S.Fattree_static.k * cfg.S.Fattree_static.k
     / 4)
    cfg.S.Fattree_static.rate_mbps;
  let t =
    Table.create ~title:"aggregate throughput, % of the permutation optimum"
      ~columns:[ "subflows"; "TCP"; "MPTCP LIA"; "MPTCP OLIA" ]
  in
  let tcp = S.Fattree_static.run { cfg with subflows = 1 } in
  let subflow_counts = if !quick then [ 2; 4; 8 ] else [ 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun n ->
      let lia = S.Fattree_static.run { cfg with subflows = n; algo = "lia" } in
      let olia =
        S.Fattree_static.run { cfg with subflows = n; algo = "olia" }
      in
      Table.add_row t
        [
          string_of_int n;
          (if n = List.hd subflow_counts then
             Printf.sprintf "%.1f" tcp.S.Fattree_static.aggregate_pct_optimal
           else "-");
          Printf.sprintf "%.1f" lia.S.Fattree_static.aggregate_pct_optimal;
          Printf.sprintf "%.1f" olia.S.Fattree_static.aggregate_pct_optimal;
        ])
    subflow_counts;
  Table.print t

let fig13b () =
  section "Fig 13(b) - ranked per-flow throughput (8 subflows)";
  let cfg = fattree_cfg () in
  let tcp = S.Fattree_static.run { cfg with subflows = 1 } in
  let lia = S.Fattree_static.run { cfg with subflows = 8; algo = "lia" } in
  let olia = S.Fattree_static.run { cfg with subflows = 8; algo = "olia" } in
  let t =
    Table.create ~title:"flow throughput (% of optimal) at selected ranks"
      ~columns:[ "rank percentile"; "TCP"; "MPTCP LIA"; "MPTCP OLIA" ]
  in
  let pick (r : S.Fattree_static.result) q =
    let a = r.S.Fattree_static.ranked_pct in
    a.(Stdlib.min
         (Array.length a - 1)
         (int_of_float (q *. float_of_int (Array.length a))))
  in
  List.iter
    (fun q ->
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (q *. 100.);
          Printf.sprintf "%.1f" (pick tcp q);
          Printf.sprintf "%.1f" (pick lia q);
          Printf.sprintf "%.1f" (pick olia q);
        ])
    [ 0.05; 0.25; 0.5; 0.75; 0.95 ];
  Table.print t;
  let jain (r : S.Fattree_static.result) =
    Summary.jain_index (Array.to_list r.S.Fattree_static.ranked_pct)
  in
  Printf.printf
    "Jain fairness index: TCP %.3f, LIA %.3f, OLIA %.3f (paper: MPTCP \
     fairer than TCP)\n"
    (jain tcp) (jain lia) (jain olia);
  print_endline "(MPTCP lifts the whole distribution; TCP's tail starves)"

(* ----- dynamic short flows (Fig. 14, Table III) ------------------------ *)

let fig14_cache = ref None

let fig14_impl () =
  match !fig14_cache with
  | Some r ->
    Table.print (fst r);
    snd r
  | None ->
  let cfg =
    if !quick then
      { S.Fattree_dynamic.default with k = 4; duration = 15.; warmup = 4. }
    else { S.Fattree_dynamic.default with k = 8; duration = 15.; warmup = 4. }
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "4:1 oversubscribed FatTree k=%d: short-flow completion and core \
            usage"
           cfg.S.Fattree_dynamic.k)
      ~columns:
        [
          "long flows"; "short finish (mean±stdev ms)"; "core util %";
          "p50 / p90 ms";
        ]
  in
  let results =
    List.map
      (fun (label, algo, subflows) ->
        let r = S.Fattree_dynamic.run { cfg with algo; subflows } in
        let h = Stats.Histogram.create ~lo:0. ~hi:500. ~bins:100 in
        Array.iter (Stats.Histogram.add h)
          r.S.Fattree_dynamic.completion_times_ms;
        Table.add_row t
          [
            label;
            Printf.sprintf "%.0f ± %.0f" r.S.Fattree_dynamic.mean_completion_ms
              r.S.Fattree_dynamic.stdev_completion_ms;
            Printf.sprintf "%.1f" r.S.Fattree_dynamic.core_utilization_pct;
            Printf.sprintf "%.0f / %.0f"
              (Stats.Histogram.quantile h 0.5)
              (Stats.Histogram.quantile h 0.9);
          ];
        (label, r))
      [
        ("MPTCP - LIA", "lia", 8);
        ("MPTCP - OLIA", "olia", 8);
        ("Regular TCP", "reno", 1);
      ]
  in
  Table.print t;
  fig14_cache := Some (t, results);
  results

let fig14 () =
  section "Fig 14 - short-flow completion-time PDF";
  let results = fig14_impl () in
  print_endline "\ncompletion-time PDF (density per ms):";
  Printf.printf "%10s" "ms";
  List.iter (fun (label, _) -> Printf.printf " %14s" label) results;
  print_newline ();
  let hists =
    List.map
      (fun (_, r) ->
        let h = Stats.Histogram.create ~lo:0. ~hi:300. ~bins:15 in
        Array.iter (Stats.Histogram.add h)
          r.S.Fattree_dynamic.completion_times_ms;
        Stats.Histogram.pdf h)
      results
  in
  match hists with
  | first :: _ ->
    Array.iteri
      (fun i (center, _) ->
        Printf.printf "%10.0f" center;
        List.iter (fun pdf -> Printf.printf " %14.5f" (snd pdf.(i))) hists;
        print_newline ())
      first
  | [] -> ()

let table3 () =
  section "Table III - dynamic setting summary";
  ignore (fig14_impl ())

(* ----- ablations -------------------------------------------------------- *)

let ablation_epsilon () =
  section "Ablation - the ε-coupled family on Scenario C (design tradeoff)";
  let t =
    Table.create
      ~title:"C1 = C2 = 1 Mb/s, N1 = N2 = 10: aggressiveness vs epsilon"
      ~columns:[ "algorithm"; "multipath norm"; "single norm"; "p2" ]
  in
  let run algo =
    let cfg =
      { S.Scen_c.default with algo; duration = duration (); warmup = warmup () }
    in
    let r = S.Scen_c.run cfg in
    Table.add_row t
      [
        algo;
        Printf.sprintf "%.3f" r.S.Scen_c.norm_multipath;
        Printf.sprintf "%.3f" r.S.Scen_c.norm_single;
        Printf.sprintf "%.4f" r.S.Scen_c.p2;
      ]
  in
  List.iter run
    [
      "coupled:0"; "coupled:0.5"; "coupled:1"; "coupled:1.5"; "coupled:2";
      "lia"; "olia"; "balia"; "wvegas"; "cubic"; "scalable";
    ];
  Table.print t;
  print_endline
    "(higher epsilon = more aggressive on the shared AP; OLIA stays near 1)"

let ablation_seeds () =
  section "Ablation - seed stability of the OLIA Scenario-C point";
  let t =
    Table.create ~title:"five independent seeds"
      ~columns:[ "seed"; "multipath norm"; "single norm"; "p2" ]
  in
  List.iter
    (fun seed ->
      let r =
        S.Scen_c.run
          {
            S.Scen_c.default with
            algo = "olia";
            duration = duration ();
            warmup = warmup ();
            seed;
          }
      in
      Table.add_row t
        [
          string_of_int seed;
          Printf.sprintf "%.3f" r.S.Scen_c.norm_multipath;
          Printf.sprintf "%.3f" r.S.Scen_c.norm_single;
          Printf.sprintf "%.4f" r.S.Scen_c.p2;
        ])
    [ 1; 2; 3; 4; 5 ];
  Table.print t

let ablation_future_work () =
  section "Ablation - §VII refinements on Scenario C (OLIA)";
  let t =
    Table.create
      ~title:"path management and background traffic (C1 = C2 = 1 Mb/s)"
      ~columns:[ "variant"; "multipath norm"; "single norm"; "p2" ]
  in
  let run label cfg =
    let r = S.Scen_c.run cfg in
    Table.add_row t
      [
        label;
        Printf.sprintf "%.3f" r.S.Scen_c.norm_multipath;
        Printf.sprintf "%.3f" r.S.Scen_c.norm_single;
        Printf.sprintf "%.4f" r.S.Scen_c.p2;
      ]
  in
  let base =
    {
      S.Scen_c.default with
      algo = "olia";
      duration = duration ();
      warmup = warmup ();
    }
  in
  run "olia" base;
  run "olia + path manager" { base with with_path_manager = true };
  run "olia + 2 Mb/s background on AP2" { base with background_mbps = 2. };
  run "lia + 2 Mb/s background on AP2"
    { base with algo = "lia"; background_mbps = 2. };
  Table.print t;
  print_endline
    "(discarding chronically bad paths trims the probing overhead; \
     background traffic shifts the operating point for both algorithms)"

let ablation_rtt () =
  section "Ablation - RTT heterogeneity on two equal bottlenecks (paper §IV)";
  let t =
    Table.create
      ~title:
        "path 2 has 4x the propagation delay; both links 10 Mb/s, 5 TCP each"
      ~columns:
        [ "algorithm"; "goodput path1"; "goodput path2"; "total Mb/s" ]
  in
  let run algo =
    let r =
      S.Two_bottleneck.run
        {
          S.Two_bottleneck.symmetric with
          algo;
          delay1_ms = 20.;
          delay2_ms = 80.;
          duration = 120.;
        }
    in
    Table.add_row t
      [
        algo;
        Printf.sprintf "%.2f" r.S.Two_bottleneck.goodput1_mbps;
        Printf.sprintf "%.2f" r.S.Two_bottleneck.goodput2_mbps;
        Printf.sprintf "%.2f"
          (r.S.Two_bottleneck.goodput1_mbps
          +. r.S.Two_bottleneck.goodput2_mbps);
      ]
  in
  List.iter run [ "lia"; "olia"; "coupled:2" ];
  Table.print t;
  print_endline
    "(both coupled algorithms weight their increases by RTT; the uncoupled\n\
     \ flow is at the mercy of TCP's RTT bias on each path separately)"

let ablation_responsiveness () =
  section "Ablation - responsiveness to path-quality shocks (paper SII claim)";
  let t =
    Table.create
      ~title:
        "8 TCP flows slam path 2 at t=60s and leave at t=120s (10 Mb/s links)"
      ~columns:
        [
          "algorithm"; "pre-shock share"; "flee (s)"; "reclaim (s)";
          "post-relief share";
        ]
  in
  let fmt x = if Float.is_nan x then "-" else Printf.sprintf "%.1f" x in
  List.iter
    (fun algo ->
      let r =
        S.Responsiveness.run { S.Responsiveness.default with algo }
      in
      Table.add_row t
        [
          algo;
          Printf.sprintf "%.2f" r.S.Responsiveness.pre_shock_share;
          fmt r.S.Responsiveness.shock_response_s;
          fmt r.S.Responsiveness.relief_response_s;
          Printf.sprintf "%.2f" r.S.Responsiveness.post_relief_share;
        ])
    [ "lia"; "olia"; "balia"; "coupled:0"; "coupled:2" ];
  Table.print t;
  print_endline
    "(OLIA flees a congested path as fast as LIA; epsilon=0 is flappy even\n\
     \ before the shock - its pre-shock share sits far from 1/2)"

let ablation_convergence () =
  section "Ablation - fluid-model convergence (the paper's open question)";
  (* integrate both fluid models on the Fig. 6 network from a cold start
     and report when the utility/rates settle *)
  let net =
    {
      F.Network_model.links =
        [| F.Network_model.link 100.; F.Network_model.link 60. |];
      users =
        [|
          {
            F.Network_model.routes =
              [|
                { F.Network_model.links = [| 0 |]; rtt = 0.1 };
                { F.Network_model.links = [| 1 |]; rtt = 0.1 };
              |];
          };
          {
            F.Network_model.routes =
              [| { F.Network_model.links = [| 0 |]; rtt = 0.1 } |];
          };
          {
            F.Network_model.routes =
              [| { F.Network_model.links = [| 1 |]; rtt = 0.1 } |];
          };
        |];
    }
  in
  let olia =
    F.Olia_ode.integrate
      ~options:{ F.Olia_ode.default_options with t_end = 300. }
      net
      ~x0:(F.Olia_ode.uniform_start net ~rate:2.)
  in
  let trace = olia.F.Olia_ode.utility_trace in
  let v_end = snd trace.(Array.length trace - 1) in
  let converged_at =
    let hit = ref nan in
    Array.iter
      (fun (t, v) ->
        if Float.is_nan !hit && abs_float (v -. v_end) < 0.01 *. abs_float v_end
        then hit := t)
      trace;
    !hit
  in
  Printf.printf
    "OLIA fluid: V settles to within 1%% of its final value (%.4f) at t = \
     %.1f s\n"
    v_end converged_at;
  let lia_x =
    F.Lia_ode.integrate
      ~options:{ F.Lia_ode.default_options with t_end = 300. }
      net
      ~x0:(F.Olia_ode.uniform_start net ~rate:2.)
  in
  let pred = F.Lia_ode.fixed_point_prediction net lia_x in
  Printf.printf
    "LIA fluid: final rates [%.1f %.1f] vs its Eq.2 prediction [%.1f %.1f]\n"
    lia_x.(0).(0) lia_x.(0).(1) pred.(0).(0) pred.(0).(1);
  print_endline
    "(both fluid models converge numerically on this network; proving it in\n\
     \ general is the future work the paper's conclusion lists)"

let ablation_wireless () =
  section
    "Ablation - wireless bonding (Chen et al., the paper's reference [12])";
  let t =
    Table.create
      ~title:
        "20 Mb/s WiFi with 1% random loss + 8 Mb/s clean cellular"
      ~columns:[ "algorithm"; "wifi Mb/s"; "cell Mb/s"; "total Mb/s" ]
  in
  List.iter
    (fun algo ->
      let r =
        S.Wireless.run
          { S.Wireless.default with algo; duration = duration ();
            warmup = warmup () }
      in
      Table.add_row t
        [
          algo;
          Printf.sprintf "%.2f" r.S.Wireless.wifi_mbps;
          Printf.sprintf "%.2f" r.S.Wireless.cell_mbps;
          Printf.sprintf "%.2f" r.S.Wireless.total_mbps;
        ])
    [ "reno"; "lia"; "olia"; "balia"; "wvegas" ];
  Table.print t;
  print_endline
    "(reference [12] found OLIA at least matches LIA over wireless; plain\n\
     \ TCP on the lossy WiFi path alone is crippled by the random losses)"

(* ----- Bechamel micro-benchmarks --------------------------------------- *)

(* Fixed integer busy loop measured alongside the hot paths: a
   machine-speed proxy, so snapshots taken on different machines can be
   compared after normalizing by its ratio (Obs.Snapshot.regressions). *)
let calibration_work () =
  let acc = ref 0 in
  for i = 1 to 10_000 do
    acc := (!acc + (i * 7919)) land 0xFFFFFF
  done;
  Sys.opaque_identity !acc

let calibration_name = "calibrate: int work"

let micro_estimates_once () =
  let open Bechamel in
  let calibrate =
    Test.make ~name:calibration_name
      (Staged.stage (fun () -> ignore (calibration_work ())))
  in
  let sim_heap =
    Test.make ~name:"sim: schedule+run 1k events"
      (Staged.stage (fun () ->
           let sim = Mptcp_repro.Netsim.Sim.create () in
           for i = 0 to 999 do
             ignore
               (Mptcp_repro.Netsim.Sim.schedule_at ~src:"bench.micro" sim
                  (float_of_int ((i * 7919) mod 1000))
                  (fun () -> ())
                 : Mptcp_repro.Netsim.Sim.Timer.t)
           done;
           Mptcp_repro.Netsim.Sim.run sim))
  in
  let views =
    Array.init 4 (fun i ->
        { Mptcp_repro.Cc.Types.cwnd = 5. +. float_of_int i; rtt = 0.1 })
  in
  let olia_cc = Mptcp_repro.Cc.Olia.create () in
  let olia_inc =
    Test.make ~name:"olia: increase (4 subflows)"
      (Staged.stage (fun () ->
           ignore (olia_cc.Mptcp_repro.Cc.Types.increase ~views ~idx:1)))
  in
  let lia_cc = Mptcp_repro.Cc.Lia.create () in
  let lia_inc =
    Test.make ~name:"lia: increase (4 subflows)"
      (Staged.stage (fun () ->
           ignore (lia_cc.Mptcp_repro.Cc.Types.increase ~views ~idx:1)))
  in
  (* float-vs-fixed: the kernel twins next to their float models, same
     four-subflow view, so the snapshot history tracks what the integer
     arithmetic costs relative to the floats it mirrors *)
  let olia_fp_cc = Mptcp_repro.Cc.Olia_fp.create () in
  let olia_fp_inc =
    Test.make ~name:"olia-fp: increase (4 subflows)"
      (Staged.stage (fun () ->
           ignore (olia_fp_cc.Mptcp_repro.Cc.Types.increase ~views ~idx:1)))
  in
  let balia_cc = Mptcp_repro.Cc.Balia.create () in
  let balia_inc =
    Test.make ~name:"balia: increase (4 subflows)"
      (Staged.stage (fun () ->
           ignore (balia_cc.Mptcp_repro.Cc.Types.increase ~views ~idx:1)))
  in
  let balia_fp_cc = Mptcp_repro.Cc.Balia_fp.create () in
  let balia_fp_inc =
    Test.make ~name:"balia-fp: increase (4 subflows)"
      (Staged.stage (fun () ->
           ignore (balia_fp_cc.Mptcp_repro.Cc.Types.increase ~views ~idx:1)))
  in
  let scen_c_solve =
    Test.make ~name:"fluid: scenario C fixed point"
      (Staged.stage (fun () ->
           ignore (F.Scenario_c.lia (scen_c_params ~n1:10 ~c1:1.))))
  in
  let packet_sim =
    Test.make ~name:"netsim: 1 TCP-second at 10 Mb/s"
      (Staged.stage (fun () ->
           let open Mptcp_repro.Netsim in
           let sim = Sim.create () in
           let rng = Rng.create ~seed:1 in
           let q =
             Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:100
               ~discipline:Queue.Droptail ()
           in
           let fwd = Pipe.create ~sim ~delay:0.01 in
           let rev = Pipe.create ~sim ~delay:0.01 in
           let conn =
             Tcp.create ~sim
               ~cc:(Mptcp_repro.Cc.Reno.create ())
               ~paths:
                 [|
                   {
                     Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |];
                     rev = [| Pipe.hop rev |];
                   };
                 |]
               ~flow_id:0 ()
           in
           Sim.run_until sim 1.;
           ignore (Tcp.total_acked conn)))
  in
  let tests =
    Test.make_grouped ~name:"mptcp_repro"
      [
        calibrate;
        sim_heap;
        olia_inc;
        olia_fp_inc;
        lia_inc;
        balia_inc;
        balia_fp_inc;
        scen_c_solve;
        packet_sim;
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> rows := (name, nan) :: !rows)
    results;
  List.sort compare !rows

(* Best-of-N over whole Bechamel passes: OLS estimates occasionally spike
   1.5-2x under scheduler interference, and noise only ever adds time, so
   the per-test minimum is the robust statistic. This is what lets the
   snapshot gate hold a 12% tolerance instead of 15%. *)
let micro_estimates ?(reps = 1) () =
  let rec go i acc =
    if i >= reps then acc
    else
      let merged =
        List.map2
          (fun (name, est) (name', est') ->
            assert (String.equal name name');
            (name, Stdlib.min est est'))
          acc
          (micro_estimates_once ())
      in
      go (i + 1) merged
  in
  go 1 (micro_estimates_once ())

let micro () =
  section "Micro-benchmarks (Bechamel)";
  List.iter
    (fun (name, est) -> Printf.printf "%-45s %14.1f ns/run\n" name est)
    (micro_estimates ())

(* ----- perf snapshots (BENCH_*.json) ----------------------------------- *)

module Obs = Mptcp_repro.Obs

(* Wall-clock per simulated second on two representative scenarios,
   best-of-N to shave scheduler noise. *)
let scenario_wall_entries () =
  let best_of n f =
    let rec go i best =
      if i >= n then best
      else begin
        let t0 = Unix.gettimeofday () in
        f ();
        go (i + 1) (Stdlib.min best (Unix.gettimeofday () -. t0))
      end
    in
    go 0 infinity
  in
  let reps = 4 in
  let sim_s = 40. in
  let scen_a () =
    ignore
      (S.Scen_a.run { S.Scen_a.default with duration = sim_s; warmup = 10. })
  in
  let two_bottleneck () =
    ignore
      (S.Two_bottleneck.run
         { S.Two_bottleneck.symmetric with duration = sim_s })
  in
  [
    Obs.Snapshot.entry ~name:"scenario/scenario-a"
      ~value:(best_of reps scen_a /. sim_s)
      ~units:"s_wall/s_sim";
    Obs.Snapshot.entry ~name:"scenario/two-bottleneck"
      ~value:(best_of reps two_bottleneck /. sim_s)
      ~units:"s_wall/s_sim";
  ]

(* ----- trace emission: armed vs disarmed -------------------------------- *)

(* ns per emission through the instrumentation-site idiom (guard with
   Trace.enabled, then the scalar emitter). Disarmed is the cost every
   simulation always pays — one ref read — and armed-ring is the
   fixed-width record write into a bound per-domain ring, Drop_oldest
   wraparound included. Tracked as two snapshot entries so the gate
   catches both a fattened guard and a ring writer that starts
   allocating or locking. *)
let trace_micro_entries () =
  let iters = 2_000_000 in
  let time f =
    (* best-of-4, same rationale as micro_estimates: noise only adds time *)
    let best = ref infinity in
    for _ = 1 to 4 do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Stdlib.min !best (Unix.gettimeofday () -. t0)
    done;
    !best /. float_of_int iters *. 1e9
  in
  let burst () =
    for i = 1 to iters do
      if Obs.Trace.enabled () then
        Obs.Trace.rtt_sample
          ~time:(float_of_int i *. 1e-6)
          ~flow:0 ~subflow:0 ~rtt:0.01 ~srtt:0.02
    done
  in
  let disarmed = time burst in
  Obs.Trace.arm_rings ~capacity:(1 lsl 16) ();
  Obs.Trace.bind_ring ~shard:0;
  Obs.Trace.set_dispatch_ctx ~sched:0. ~cls:1 ~flow:0 ~subflow:0 ~pseq:0
    ~kind:0;
  let armed = time burst in
  Obs.Trace.disarm_rings ();
  [
    Obs.Snapshot.entry ~name:"micro/trace/emit-disarmed" ~value:disarmed
      ~units:"ns/event";
    Obs.Snapshot.entry ~name:"micro/trace/emit-armed-ring" ~value:armed
      ~units:"ns/event";
  ]

let trace_micro () =
  section "Micro - trace emission, armed ring vs disarmed guard";
  List.iter
    (fun (e : Obs.Snapshot.entry) ->
      Printf.printf "%-32s %8.2f %s\n" e.Obs.Snapshot.name e.Obs.Snapshot.value
        e.Obs.Snapshot.units)
    (trace_micro_entries ())

(* ----- macro FatTree: sharded vs sequential ----------------------------- *)

(* Wall-clock per simulated second of the fattree-sharded scenario, run
   sequentially and sharded across domains with the same seed. Tracked
   as two snapshot entries so the bench-smoke gate catches regressions
   in either the single-wheel hot path or the cross-shard runtime. *)
let fattree_macro_cfg () =
  if !quick then
    { S.Fattree_sharded.default with k = 4; flows_per_host = 4;
      duration = 3.; warmup = 1. }
  else { S.Fattree_sharded.default with duration = 3.; warmup = 1. }

let fattree_macro_shards () = if !quick then 2 else 4

let fattree_macro_walls () =
  let cfg = fattree_macro_cfg () in
  (* best-of-3, same rationale as micro_estimates: noise only adds time.
     The traced leg arms per-worker rings around each rep (Drop_oldest:
     wrap rather than fail — the records are discarded, only the
     emission cost is under measurement). *)
  let time ?(traced = false) shards =
    let rec go i best =
      if i >= 3 then best
      else begin
        if traced then Obs.Trace.arm_rings ~capacity:(1 lsl 19) ();
        let t0 = Unix.gettimeofday () in
        ignore
          (S.Fattree_sharded.run { cfg with S.Fattree_sharded.shards }
            : S.Fattree_sharded.result);
        let dt = Unix.gettimeofday () -. t0 in
        if traced then Obs.Trace.disarm_rings ();
        go (i + 1) (Stdlib.min best dt)
      end
    in
    go 0 infinity
  in
  let seq = time 1 in
  let shards = fattree_macro_shards () in
  (cfg, shards, seq, time shards, time ~traced:true shards)

let fattree_macro_entries () =
  let cfg, shards, seq, shd, traced = fattree_macro_walls () in
  let per_sim wall = wall /. cfg.S.Fattree_sharded.duration in
  [
    Obs.Snapshot.entry ~name:"macro/fattree/sequential" ~value:(per_sim seq)
      ~units:"s_wall/s_sim";
    Obs.Snapshot.entry
      ~name:(Printf.sprintf "macro/fattree/shards%d" shards)
      ~value:(per_sim shd) ~units:"s_wall/s_sim";
    Obs.Snapshot.entry
      ~name:(Printf.sprintf "macro/fattree/shards%d-traced" shards)
      ~value:(per_sim traced) ~units:"s_wall/s_sim";
  ]

let macro_fattree () =
  section "Macro - FatTree sharded vs sequential wall-clock";
  let cfg, shards, seq, shd, traced = fattree_macro_walls () in
  Printf.printf
    "k=%d, %d flows, %g simulated seconds\n\
     sequential   %.2f s wall (%.3f s_wall/s_sim)\n\
     %d shards    %.2f s wall (%.3f s_wall/s_sim)\n\
     speedup      %.2fx\n\
     traced       %.2f s wall (ring tracing overhead %.1f%%)\n"
    cfg.S.Fattree_sharded.k
    (cfg.S.Fattree_sharded.k * cfg.S.Fattree_sharded.k
     * cfg.S.Fattree_sharded.k / 4
    * cfg.S.Fattree_sharded.flows_per_host)
    cfg.S.Fattree_sharded.duration seq
    (seq /. cfg.S.Fattree_sharded.duration)
    shards shd
    (shd /. cfg.S.Fattree_sharded.duration)
    (seq /. shd) traced
    (100. *. ((traced /. shd) -. 1.))

let contains_substring ~needle hay =
  let nn = String.length needle and nh = String.length hay in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let take_snapshot () =
  section "Perf snapshot";
  let entries =
    List.map
      (fun (name, est) ->
        (* the calibration row keeps its canonical entry name so
           Snapshot.regressions can find it in both snapshots *)
        if contains_substring ~needle:calibration_name name then
          Obs.Snapshot.entry ~name:Obs.Snapshot.calibration_entry ~value:est
            ~units:"ns/run"
        else Obs.Snapshot.entry ~name:("micro/" ^ name) ~value:est
            ~units:"ns/run")
      (micro_estimates ~reps:3 ())
    @ scenario_wall_entries ()
    @ trace_micro_entries ()
    @ fattree_macro_entries ()
  in
  Obs.Snapshot.v ~quick:!quick entries

(* Returns false when the baseline comparison found regressions. *)
let snapshot_and_compare ~path ~baseline ~tolerance =
  let snap = take_snapshot () in
  Obs.Snapshot.write ~path snap;
  Printf.printf "wrote %s (%d entries)\n" path
    (List.length snap.Obs.Snapshot.entries);
  match baseline with
  | None -> true
  | Some bpath -> (
    match Obs.Snapshot.read ~path:bpath with
    | Error e ->
      Printf.eprintf "cannot read baseline %s: %s\n" bpath e;
      false
    | Ok base ->
      let regs =
        Obs.Snapshot.regressions ~baseline:base ~current:snap ~tolerance ()
      in
      (match
         ( Obs.Snapshot.find base Obs.Snapshot.calibration_entry,
           Obs.Snapshot.find snap Obs.Snapshot.calibration_entry )
       with
      | Some b, Some c ->
        Printf.printf
          "calibration: baseline %.1f ns, here %.1f ns (normalizing by \
           %.2fx)\n"
          b c (b /. c)
      | _ -> print_endline "calibration entry missing: comparing raw values");
      if regs = [] then begin
        Printf.printf "no perf regressions vs %s (tolerance %.0f%%)\n" bpath
          (100. *. tolerance);
        true
      end
      else begin
        List.iter
          (fun (r : Obs.Snapshot.regression) ->
            Printf.printf
              "REGRESSION %-45s baseline %.4g -> current %.4g (%.2fx, limit \
               %.2fx)\n"
              r.Obs.Snapshot.name r.Obs.Snapshot.baseline
              r.Obs.Snapshot.current r.Obs.Snapshot.ratio (1. +. tolerance))
          regs;
        false
      end)

(* ----- driver ----------------------------------------------------------- *)

let targets : (string * string * (unit -> unit)) list =
  [
    ("fig1b", "Scenario A, LIA: normalized throughput", fig1b);
    ("fig1c", "Scenario A, LIA: loss at the shared AP", fig1c);
    ("fig4a", "Scenario B, LIA analysis sweep", fig4a);
    ("fig4b", "Scenario B, probing-cost optimum sweep", fig4b);
    ("table1", "Scenario B measurements with LIA", table1);
    ("fig5b", "Scenario C analysis, LIA vs optimum", fig5b);
    ("fig5c", "Scenario C, LIA: normalized throughput", fig5c);
    ("fig5d", "Scenario C, LIA: loss at AP2", fig5d);
    ("fig7", "symmetric window traces", fig7);
    ("fig8", "asymmetric window traces", fig8);
    ("fig9", "Scenario A, OLIA vs LIA", fig9);
    ("fig10", "Scenario A, OLIA: loss at the shared AP", fig10);
    ("table2", "Scenario B measurements with OLIA", table2);
    ("fig11", "Scenario C, OLIA vs LIA", fig11);
    ("fig12", "Scenario C, OLIA: loss at AP2", fig12);
    ("fig13a", "FatTree aggregate vs subflows", fig13a);
    ("fig13b", "FatTree ranked flow throughput", fig13b);
    ("fig14", "short-flow completion PDF", fig14);
    ("table3", "dynamic-setting summary", table3);
    ("fig17", "probing optimum vs RTT", fig17);
    ("ablation-eps", "epsilon family ablation", ablation_epsilon);
    ("ablation-fw", "future-work refinements (path manager, background)",
     ablation_future_work);
    ("ablation-rtt", "RTT heterogeneity", ablation_rtt);
    ("ablation-resp", "responsiveness to shocks", ablation_responsiveness);
    ("ablation-conv", "fluid-model convergence", ablation_convergence);
    ("ablation-wireless", "wireless bonding (ref. [12])", ablation_wireless);
    ("ablation-seeds", "seed stability", ablation_seeds);
    ("micro", "Bechamel micro-benchmarks", micro);
    ("micro-trace", "trace emission, armed ring vs disarmed", trace_micro);
    ("macro-fattree", "FatTree sharded vs sequential wall-clock", macro_fattree);
  ]

let () =
  let snapshot_path = ref None in
  let baseline_path = ref None in
  let tolerance = ref 0.12 in
  let usage () =
    print_endline
      "usage: bench [--quick] [--list] [--snapshot FILE [--baseline FILE] \
       [--tolerance F]] [TARGET...]";
    List.iter (fun (n, d, _) -> Printf.printf "%-14s %s\n" n d) targets
  in
  let value flag = function
    | v :: rest -> (v, rest)
    | [] ->
      Printf.eprintf "%s needs a value\n" flag;
      exit 1
  in
  let rec parse names = function
    | [] -> List.rev names
    | "--quick" :: rest ->
      quick := true;
      parse names rest
    | "--list" :: _ ->
      usage ();
      exit 0
    | "--snapshot" :: rest ->
      let v, rest = value "--snapshot" rest in
      snapshot_path := Some v;
      parse names rest
    | "--baseline" :: rest ->
      let v, rest = value "--baseline" rest in
      baseline_path := Some v;
      parse names rest
    | "--tolerance" :: rest -> (
      let v, rest = value "--tolerance" rest in
      match float_of_string_opt v with
      | Some f when f > 0. ->
        tolerance := f;
        parse names rest
      | Some _ | None ->
        Printf.eprintf "--tolerance needs a positive float, got %s\n" v;
        exit 1)
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
      Printf.eprintf "unknown flag %s\n" a;
      usage ();
      exit 1
    | a :: rest -> parse (a :: names) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let to_run =
    match args with
    | [] ->
      (* bare --snapshot is a dedicated mode: skip the full target sweep *)
      if !snapshot_path <> None then [] else targets
    | names ->
      List.map
        (fun n ->
          match List.find_opt (fun (m, _, _) -> m = n) targets with
          | Some t -> t
          | None ->
            Printf.eprintf "unknown target %s (try --list)\n" n;
            exit 1)
        names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, _, f) ->
      let t1 = Unix.gettimeofday () in
      f ();
      Printf.printf "[%s done in %.1f s]\n%!" name (Unix.gettimeofday () -. t1))
    to_run;
  let ok =
    match !snapshot_path with
    | None -> true
    | Some path ->
      snapshot_and_compare ~path ~baseline:!baseline_path
        ~tolerance:!tolerance
  in
  Printf.printf "\nall targets finished in %.1f s\n" (Unix.gettimeofday () -. t0);
  if not ok then exit 1
