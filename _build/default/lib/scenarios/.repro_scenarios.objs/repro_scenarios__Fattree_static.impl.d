lib/scenarios/fattree_static.ml: Array Common List Queue Repro_cc Repro_netsim Repro_topology Repro_workload Rng Sim Stdlib Tcp
