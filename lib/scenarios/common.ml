open Repro_netsim

type cc_factory = unit -> Repro_cc.Cc_types.t

let factory_of_name name () = Repro_cc.Registry.create name

type measured = {
  goodput_pps : float;
  goodput_mbps : float;
  per_subflow_mbps : float array;
}

let mbps_of_pps pps = pps *. 1500. *. 8. /. 1e6

let measure_conns ~sim ~warmup ~duration conns =
  if warmup >= duration then invalid_arg "measure_conns: warmup >= duration";
  let conns_a = Array.of_list conns in
  let totals = Array.make (Array.length conns_a) 0 in
  let per_sf =
    Array.map (fun c -> Array.make (Tcp.subflow_count c) 0) conns_a
  in
  ignore
    (Sim.schedule_at ~src:"scenario.warmup" sim warmup (fun () ->
         Array.iteri
           (fun i c ->
             totals.(i) <- Tcp.total_acked c;
             Array.iteri
               (fun s _ -> per_sf.(i).(s) <- Tcp.subflow_acked c s)
               per_sf.(i))
           conns_a)
      : Sim.Timer.t);
  Sim.run_until sim duration;
  let window = duration -. warmup in
  List.mapi
    (fun i c ->
      let pkts = Tcp.total_acked c - totals.(i) in
      let pps = float_of_int pkts /. window in
      let per_subflow_mbps =
        Array.mapi
          (fun s base ->
            mbps_of_pps (float_of_int (Tcp.subflow_acked c s - base) /. window))
          per_sf.(i)
      in
      { goodput_pps = pps; goodput_mbps = mbps_of_pps pps; per_subflow_mbps })
    conns

(* One meter report per run: the simulator's own counters plus the
   drop split summed over the scenario's queues. Random-loss drops come
   from Lossy hops, which only the wireless scenario uses. *)
let observe ~meter ~sim ?(lossy = []) ?(subflow_goodput_bps = []) queues =
  let sum f = List.fold_left (fun acc q -> acc + f q) 0 queues in
  (* lint: allow R11 -- the meter reports elapsed wall time of the run by design (operator-facing); every simulation metric it carries is seeded *)
  Repro_obs.Meter.finish meter ~sim_s:(Sim.now sim)
    ~events_processed:(Sim.events_processed sim)
    ~max_heap_depth:(Sim.max_heap_depth sim)
    ~drops_overflow:(sum Queue.drops_overflow)
    ~drops_red:(sum Queue.drops_red)
    ~drops_random:
      (List.fold_left (fun acc l -> acc + Lossy.dropped l) 0 lossy)
    ~subflow_goodput_bps

let paper_rtt = 0.150
let paper_propagation_delay = 0.080

let red_for ~rate_bps =
  Queue.Red (Queue.paper_red ~link_mbps:(rate_bps /. 1e6))

let bottleneck_buffer ~rate_bps =
  Stdlib.max 50 (int_of_float (300. *. rate_bps /. 10e6))

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let rec split_at n l =
  match l with
  | rest when n = 0 -> ([], rest)
  | [] -> ([], [])
  | x :: rest ->
    let a, b = split_at (n - 1) rest in
    (x :: a, b)

(* Class mean of each subflow's goodput, as labelled bit/s pairs for
   Meter. [subflows] fixes the label set (missing subflows count 0) so
   a scenario exports the same metric names at every parameter point —
   Sweep aggregation relies on uniform metric sets. *)
let subflow_goodput_bps ~label ~subflows measured =
  List.init subflows (fun s ->
      ( Printf.sprintf "%s_sf%d" label s,
        1e6
        *. mean
             (List.map
                (fun m ->
                  if s < Array.length m.per_subflow_mbps then
                    m.per_subflow_mbps.(s)
                  else 0.)
                measured) ))
