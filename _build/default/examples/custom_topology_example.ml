(* Build-your-own testbed: describe a multihomed topology declaratively,
   route MPTCP subflows over edge-disjoint paths, monitor everything and
   export the series to CSV.

   Run with:  dune exec examples/custom_topology_example.exe *)

open Mptcp_repro.Netsim
module Builder = Mptcp_repro.Topology.Builder

let () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let b = Builder.create ~sim ~rng () in

  (* A dual-homed client: a DSL line and an LTE line converging on the
     same server through different provider networks. *)
  List.iter (Builder.add_node b)
    [ "client"; "dsl"; "lte"; "isp1"; "isp2"; "server" ];
  Builder.link b "client" "dsl" ~rate_mbps:8. ~delay_ms:15. ();
  Builder.link b "client" "lte" ~rate_mbps:15. ~delay_ms:35. ();
  Builder.link b "dsl" "isp1" ~rate_mbps:50. ~delay_ms:5. ();
  Builder.link b "lte" "isp2" ~rate_mbps:50. ~delay_ms:5. ();
  Builder.link b "isp1" "server" ~rate_mbps:100. ~delay_ms:5. ();
  Builder.link b "isp2" "server" ~rate_mbps:100. ~delay_ms:5. ();

  let paths =
    Builder.paths b ~src:"client" ~dst:"server" ~disjoint:true ~k:2 ()
  in
  Printf.printf "found %d edge-disjoint client->server paths\n"
    (Array.length paths);

  let conn =
    Tcp.create ~sim
      ~cc:(Mptcp_repro.Cc.Olia.create ())
      ~paths ~flow_id:0 ()
  in

  (* a competing TCP download on the DSL line, arriving once the MPTCP
     connection has reached steady state *)
  let _competitor =
    Tcp.create ~sim
      ~cc:(Mptcp_repro.Cc.Reno.create ())
      ~paths:[| Builder.path b ~src:"dsl" ~dst:"server" |]
      ~start:120. ~flow_id:1 ()
  in

  let m = Monitor.create ~sim ~period:0.5 () in
  Monitor.watch_goodput m "mptcp_goodput_mbps" conn;
  Monitor.watch_cwnd m "w_dsl" conn 0;
  Monitor.watch_cwnd m "w_lte" conn 1;
  Monitor.watch_backlog m "dsl_queue" (Builder.queue b "client" "dsl");

  Sim.run_until sim 240.;

  let mean name t0 t1 =
    Mptcp_repro.Stats.Timeseries.mean_over (Monitor.series m name) ~from:t0
      ~until:t1
  in
  Printf.printf "MPTCP goodput: %.2f Mb/s before the competitor, %.2f after\n"
    (mean "mptcp_goodput_mbps" 80. 120.)
    (mean "mptcp_goodput_mbps" 180. 240.);
  Printf.printf "DSL subflow window: %.1f pkts before, %.1f after\n"
    (mean "w_dsl" 80. 120.) (mean "w_dsl" 180. 240.);

  let csv = Filename.concat (Filename.get_temp_dir_name ()) "mptcp_trace.csv" in
  Monitor.to_csv m ~path:csv;
  Printf.printf "full traces written to %s\n" csv;
  print_endline
    "OLIA keeps pooling both access lines and yields DSL capacity to the\n\
     competing TCP flow when it arrives."
