(** Regular TCP congestion avoidance (RFC 5681): each subflow grows by
    [1/cwnd] per ACK, independently of the others. Used for single-path
    users and as the ε=2 "uncoupled" end of the design spectrum. *)

val create : unit -> Cc_types.t
