open Repro_netsim

type config = {
  n : int;
  cx_mbps : float;
  ct_mbps : float;
  red_multipath : bool;
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
}

let default =
  {
    n = 15;
    cx_mbps = 27.;
    ct_mbps = 36.;
    red_multipath = true;
    algo = "olia";
    duration = 120.;
    warmup = 30.;
    seed = 1;
  }

type result = {
  blue_rate : float;
  red_rate : float;
  aggregate : float;
  px : float;
  pt : float;
  obs : Repro_obs.Meter.report;
}

let run cfg =
  let meter = Repro_obs.Meter.start () in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let rate_x = cfg.cx_mbps *. 1e6 and rate_t = cfg.ct_mbps *. 1e6 in
  let mk_queue rate name =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:rate
      ~buffer_pkts:(Common.bottleneck_buffer ~rate_bps:rate)
      ~discipline:(Common.red_for ~rate_bps:rate) ~name ()
  in
  let qx = mk_queue rate_x "ispX" and qt = mk_queue rate_t "ispT" in
  let one_way = Common.paper_propagation_delay /. 2. in
  let fwd_pipe = Pipe.create ~sim ~delay:one_way in
  let rev_pipe = Pipe.create ~sim ~delay:one_way in
  let rev = [| Pipe.hop rev_pipe |] in
  let factory = Common.factory_of_name cfg.algo in
  let via_x = { Tcp.fwd = [| Queue.hop qx; Pipe.hop fwd_pipe |]; rev } in
  let via_t = { Tcp.fwd = [| Queue.hop qt; Pipe.hop fwd_pipe |]; rev } in
  let via_x_t =
    { Tcp.fwd = [| Queue.hop qx; Queue.hop qt; Pipe.hop fwd_pipe |]; rev }
  in
  let blue =
    List.init cfg.n (fun i ->
        Tcp.create ~sim ~cc:(factory ()) ~paths:[| via_x; via_t |]
          ~start:(Rng.uniform rng 2.) ~flow_id:i ())
  in
  let red =
    List.init cfg.n (fun i ->
        let paths =
          if cfg.red_multipath then [| via_t; via_x_t |] else [| via_t |]
        in
        let cc =
          if cfg.red_multipath then factory () else Repro_cc.Reno.create ()
        in
        Tcp.create ~sim ~cc ~paths ~start:(Rng.uniform rng 2.)
          ~flow_id:(cfg.n + i) ())
  in
  ignore
    (Sim.schedule_at ~src:"scenario.warmup" sim cfg.warmup (fun () ->
         Queue.reset_stats qx;
         Queue.reset_stats qt)
      : Sim.Timer.t);
  let measured =
    Common.measure_conns ~sim ~warmup:cfg.warmup ~duration:cfg.duration
      (blue @ red)
  in
  let rates = List.map (fun m -> m.Common.goodput_mbps) measured in
  let rb, rr = Common.split_at cfg.n rates in
  let mb, mr = Common.split_at cfg.n measured in
  {
    blue_rate = Common.mean rb;
    red_rate = Common.mean rr;
    aggregate = List.fold_left ( +. ) 0. rates;
    px = Queue.loss_probability qx;
    pt = Queue.loss_probability qt;
    obs =
      Common.observe ~meter ~sim
        ~subflow_goodput_bps:
          (Common.subflow_goodput_bps ~label:"blue" ~subflows:2 mb
          @ Common.subflow_goodput_bps ~label:"red" ~subflows:2 mr)
        [ qx; qt ];
  }

let replicate cfg ~seeds = List.map (fun seed -> run { cfg with seed }) seeds
