lib/scenarios/wireless.ml: Array Common Lossy Pipe Queue Repro_netsim Rng Sim Tcp
