(** Testbed Scenario C (paper Fig. 5): N1 multipath users connected to a
    private AP1 (capacity [n1·c1]) and to a shared AP2 (capacity
    [n2·c2]) that N2 single-path TCP users depend on. *)

type config = {
  n1 : int;
  n2 : int;
  c1_mbps : float;
  c2_mbps : float;
  algo : string;  (** congestion control of the multipath users *)
  duration : float;
  warmup : float;
  seed : int;
  background_mbps : float;
      (** CBR background traffic through AP2 (0 = none) — the paper's §VII
          "background traffic" factor *)
  with_path_manager : bool;
      (** attach a [Path_manager] to every multipath user — the §VII
          "discarding bad paths" refinement *)
}

val default : config
(** N1 = N2 = 10, C1 = C2 = 1 Mb/s, OLIA, 120 s / 30 s warmup. *)

type result = {
  norm_multipath : float;  (** mean multipath goodput normalized by c1 *)
  norm_single : float;  (** mean single-path goodput normalized by c2 *)
  p1 : float;
  p2 : float;
  obs : Repro_obs.Meter.report;  (** run counters and timers *)
}

val run : config -> result
val replicate : config -> seeds:int list -> result list
