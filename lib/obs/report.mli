(** Flight-recorder analysis: fold trace events into per-queue latency
    and drop statistics plus per-subflow RTT/cwnd/state summaries.

    Feed an accumulator live (install [feed t] as the trace sink) or
    offline from a JSONL trace file; then render with {!to_json} — a
    deterministic document, byte-identical across runs for a fixed
    seed, because no wall-clock data ever enters a report — or
    {!to_text} for aligned tables with p50/p90/p99 latency
    percentiles.

    Reconstructed per queue: enqueue/forward/drop counts (drops split
    by cause), queue-residence spans from {!Trace.Pkt_forward.qdelay}
    (log-bucketed histogram plus exact n/mean/min/max), and drop
    bursts — maximal runs of consecutive drops uninterrupted by an
    enqueue or forward. Per (flow, subflow): RTT samples, the cwnd
    timeline, dwell time per TCP state (open intervals close at the
    subflow's removal or the last event), and RTO counts. *)

type t
(** Mutable accumulator; [to_json]/[to_text] may be called mid-stream
    and again later (they never mutate). *)

val create : unit -> t

val feed : t -> Trace.event -> unit
(** Fold one event in. [feed t] is directly usable as a trace sink. *)

val load_jsonl : path:string -> (t, string) result
(** Replay a JSONL trace file through a fresh accumulator. Blank lines
    are skipped; the first malformed line aborts with
    ["path:line: reason"]. *)

val to_json : t -> Repro_stats.Json.t
(** Deterministic report document: event counts by type, time span,
    queues (sorted by name), subflows (sorted by flow then id). *)

val to_text : t -> string
(** Aligned text tables (queue and subflow sections) with p50/p90/p99
    latency percentiles in milliseconds. *)
