(** Conservative parallel simulation: one {!Sim} event loop per shard,
    synchronized in lockstep windows of length [lookahead].

    A sharded topology is an ordinary topology whose graph has been cut
    at links of latency ≥ [lookahead]: each cut link's propagation pipe
    is replaced by a cross-shard {!channel}, and every shard runs its
    own simulator, in its own domain, over the sub-topology it owns.

    The synchronization protocol is the classic conservative-lookahead
    window loop, degenerate (all-to-all) form: all shards advance
    through the same window boundaries [H_w = w·lookahead]. A message
    sent at time [s ∈ (H_{w-1}, H_w]] travels a channel of latency
    [≥ lookahead], so it arrives strictly after [H_w] — exchanging
    inboxes at every boundary therefore delivers every message before
    its arrival time is reached, no shard ever receives an event in its
    past, and no rollback is needed. Deadlock-freedom is immediate:
    windows are fixed in advance, every shard always advances to the
    next boundary without waiting on message availability, and the two
    barriers per window are the only blocking points. See DESIGN.md
    ("Sharded multicore simulation") for the full argument.

    Determinism: within a window each shard is an ordinary sequential
    simulator. At each boundary the drained messages are merged in
    [(arrival, src_shard, channel, channel_seq)] order before being
    scheduled, so the schedule-order tie-break of {!Sim} is a pure
    function of the simulation state — results are reproducible for a
    given (seed, shard count). Moreover each delivery carries its
    source-shard egress time as the [(time, sched, seq)] tie-break key
    of {!Sim.schedule_pkt_at_sched} — the same key the sequential run's
    propagation pipe produces — so same-instant events dispatch in the
    sequential order regardless of shard count, and a sharded run is
    bitwise identical to the unsharded one. A one-shard group is
    trivially so because windowed [run_until] calls chain exactly like
    a single call. *)

type t
(** A shard group: the sims, their channels and the lookahead. *)

type channel
(** A unidirectional cross-shard link stage of fixed latency: packets
    entering its {!egress} hop on the source shard reappear on the
    destination shard [latency] seconds later (re-allocated from the
    destination domain's packet pool). *)

(** One message in flight on a channel, exposed for the merge-order
    property tests. *)
type msg = {
  arrival : float;  (** absolute delivery time on the destination sim *)
  egress : float;
      (** source-shard clock at the send — the instant the sequential
          run's propagation pipe would have armed the delivery timer.
          Passed as the [~sched] tie-break key to
          {!Sim.schedule_pkt_at_sched} so sharded and sequential runs
          order same-instant arrivals identically. *)
  src_shard : int;
  src_seq : int;
      (** send index across all of the source shard's channels — the
          order in which the egress hops executed on the source domain,
          i.e. the order in which the sequential run would have armed
          these deliveries *)
  chan_id : int;  (** registration index of the carrying channel *)
  chan_seq : int;  (** per-channel send sequence number *)
  kind : Packet.kind;
  pkt_seq : int;
  flow : int;
  subflow : int;
  hop : int;  (** next hop index into [route] on arrival *)
  route : Packet.hop array;
  ackno : int;
  sack : (int * int) option;
  sent_at : float;
  enqueued_at : float;
  echo : float;
}

val create : sims:Sim.t array -> lookahead:float -> t
(** A group over the given per-shard simulators. [lookahead] is the
    window length and the minimum legal channel latency; it must be
    finite and positive when there is more than one shard. Raises
    [Invalid_argument] on an empty [sims]. *)

val shard_count : t -> int

val sim : t -> int -> Sim.t
(** The simulator owned by one shard. *)

val lookahead : t -> float

val open_channel : t -> src:int -> dst:int -> ?latency:float -> unit -> channel
(** Register a channel from shard [src] to shard [dst] (default latency
    = the group's lookahead). Raises [Invalid_argument] if [src = dst],
    either index is out of range, or [latency < lookahead] (a shorter
    channel would deliver inside the current window and break the
    conservative bound). Construction-time only: not safe once
    {!run_windows} has started. *)

val egress : channel -> Packet.hop
(** The hop to splice into a route in place of the cut link's
    propagation pipe. It consumes the packet (returning it to the
    source domain's pool) and enqueues a timestamped message; the
    destination shard re-materializes the packet at the next window
    boundary and delivers it at [now + latency]. *)

val sent_count : channel -> int
(** Messages sent so far (source-domain view). *)

val compare_msg : msg -> msg -> int
(** The deterministic merge order: [(arrival, egress, src_shard,
    src_seq)], lexicographically — arrival first so deliveries schedule
    in dispatch order, then the sequential run's arming order (egress
    instant, then send order within it). A total order on distinct
    messages from the runtime ([src_seq] is unique per source shard). *)

val merge : msg list list -> msg list
(** Merge per-channel FIFO batches into dispatch order — the order in
    which the destination shard schedules the arrivals, and therefore
    the order {!Sim} breaks same-instant ties. Equals sorting the
    concatenation by {!compare_msg}; exposed for the QCheck property
    ("merged dispatch order equals the sequential order"). *)

val windows : lookahead:float -> horizon:float -> int
(** Number of lockstep windows needed to reach [horizon]. *)

val run_windows :
  pool:((unit -> unit) array -> unit) -> t -> horizon:float -> unit
(** Run every shard to [horizon] through the barrier/window loop, one
    worker per shard scheduled by [pool] (pass [Repro_exp.Sweep.pool]
    to use the sweep engine's domain plumbing, or a sequential pool for
    single-domain tests — the results are identical by construction;
    with a single shard the loop degenerates to chained [run_until]
    calls on the calling domain). Tracing and profiling are
    per-worker: when trace rings are armed ([Trace.arm_rings]) each
    worker binds its own ring under its shard id — the decoded merge
    reproduces the sequential event order — and each worker's profile
    table is tagged with its shard (barrier wait accounted under
    ["shard.barrier"]). The process-global variant sink stays
    single-domain only; arm rings to trace sharded runs. Worker
    exceptions are re-raised after all domains have been joined. *)
