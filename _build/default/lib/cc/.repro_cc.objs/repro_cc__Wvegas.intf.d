lib/cc/wvegas.mli: Cc_types
