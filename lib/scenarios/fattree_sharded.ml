open Repro_netsim
module Ftp = Repro_topology.Fattree_pods

type config = {
  k : int;
  shards : int;
  rate_mbps : float;
  delay_ms : float;
  subflows : int;
  flows_per_host : int;
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
}

let default =
  {
    k = 8;
    shards = 1;
    rate_mbps = 10.;
    delay_ms = 1.;
    subflows = 2;
    flows_per_host = 8;
    algo = "olia";
    duration = 5.;
    warmup = 1.;
    seed = 1;
  }

type result = {
  flow_mbps : float array;
  aggregate_mbps : float;
  aggregate_pct_optimal : float;
  mean_flow_mbps : float;
  p10_flow_mbps : float;
  p50_flow_mbps : float;
  p90_flow_mbps : float;
  mean_core_loss : float;
  cut_messages : int;
  obs : Repro_obs.Meter.report;
  shard_obs : Repro_obs.Meter.shard_counters list;
      (* per-shard loop counters; their deterministic merge is exactly
         what [obs] carries as events/max-depth *)
}

(* [rounds] independent random permutations (no fixed point), expanded
   in explicit order so the RNG stream never depends on library
   evaluation order. *)
let rec permutation_rounds ~rng ~hosts ~rounds acc =
  if rounds = 0 then List.concat (List.rev acc)
  else
    let round =
      Repro_workload.Workload.permutation_long_flows ~rng:(Rng.split rng)
        ~hosts ~max_jitter:1.
    in
    permutation_rounds ~rng ~hosts ~rounds:(rounds - 1) (round :: acc)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Stdlib.min (n - 1) (int_of_float (p *. float_of_int n)))

let run cfg =
  if cfg.flows_per_host < 1 then
    invalid_arg "Fattree_sharded.run: flows_per_host must be >= 1";
  let meter = Repro_obs.Meter.start () in
  let rng = Rng.create ~seed:cfg.seed in
  let rate = cfg.rate_mbps *. 1e6 in
  let tree =
    Ftp.create ~shards:cfg.shards ~rng:(Rng.split rng) ~k:cfg.k
      ~rate_bps:rate
      ~delay:(cfg.delay_ms /. 1000.)
      ~buffer_pkts:100 ~discipline:Queue.Droptail ()
  in
  let group = Ftp.group tree in
  let hosts = Ftp.host_count tree in
  let flows =
    permutation_rounds ~rng ~hosts ~rounds:cfg.flows_per_host []
  in
  let factory =
    if cfg.subflows <= 1 then fun () -> Repro_cc.Reno.create ()
    else Common.factory_of_name cfg.algo
  in
  let conns =
    List.mapi
      (fun i { Repro_workload.Workload.start; src; dst; _ } ->
        let paths =
          Ftp.sample_paths tree ~rng ~src ~dst
            ~n:(Stdlib.max 1 cfg.subflows)
        in
        Tcp.create
          ~sim:(Ftp.sim_of_host tree src)
          ~rcv_sim:(Ftp.sim_of_host tree dst)
          ~cc:(factory ()) ~paths ~start ~flow_id:i ())
      flows
  in
  let conns_a = Array.of_list conns in
  let totals = Array.make (Array.length conns_a) 0 in
  (* warm-up bookkeeping runs on each owning shard's own loop: queue
     statistics reset per shard, and each connection's delivered-packet
     snapshot on its sender's simulator (snd_una is sender-side state) *)
  for s = 0 to Shard.shard_count group - 1 do
    let queues = Ftp.shard_queues tree s in
    ignore
      (Sim.schedule_at ~src:"scenario.warmup" (Shard.sim group s) cfg.warmup
         (fun () -> List.iter Queue.reset_stats queues)
        : Sim.Timer.t)
  done;
  List.iteri
    (fun i { Repro_workload.Workload.src; _ } ->
      ignore
        (Sim.schedule_at ~src:"scenario.warmup"
           (Ftp.sim_of_host tree src)
           cfg.warmup
           (fun () -> totals.(i) <- Tcp.total_acked conns_a.(i))
          : Sim.Timer.t))
    flows;
  Shard.run_windows ~pool:Repro_exp.Sweep.pool group ~horizon:cfg.duration;
  let window = cfg.duration -. cfg.warmup in
  if window <= 0. then
    invalid_arg "Fattree_sharded.run: warmup >= duration";
  let flow_mbps =
    Array.mapi
      (fun i c ->
        Common.mbps_of_pps
          (float_of_int (Tcp.total_acked c - totals.(i)) /. window))
      conns_a
  in
  let total = Array.fold_left ( +. ) 0. flow_mbps in
  let optimal = float_of_int hosts *. cfg.rate_mbps in
  let sorted = Array.copy flow_mbps in
  Array.sort compare sorted;
  let cut_messages =
    let acc = ref 0 in
    for s = 0 to cfg.shards - 1 do
      for d = 0 to cfg.shards - 1 do
        match Ftp.channel tree ~src:s ~dst:d with
        | Some ch -> acc := !acc + Shard.sent_count ch
        | None -> ()
      done
    done;
    !acc
  in
  let losses = List.map Queue.loss_probability (Ftp.core_queues tree) in
  let all_q = Ftp.all_queues tree in
  let sum f = List.fold_left (fun acc q -> acc + f q) 0 all_q in
  let shard_obs =
    List.init (Shard.shard_count group) (fun s ->
        let sim = Shard.sim group s in
        {
          Repro_obs.Meter.shard = s;
          events_processed = Sim.events_processed sim;
          max_heap_depth = Sim.max_heap_depth sim;
        })
  in
  let events, depth = Repro_obs.Meter.merge_shards shard_obs in
  let obs =
    (* lint: allow R11 -- the meter reports elapsed wall time of the run by design (operator-facing); every simulation metric it carries is seeded *)
    Repro_obs.Meter.finish meter ~sim_s:cfg.duration ~events_processed:events
      ~max_heap_depth:depth
      ~drops_overflow:(sum Queue.drops_overflow)
      ~drops_red:(sum Queue.drops_red) ~drops_random:0
      ~subflow_goodput_bps:[]
  in
  {
    flow_mbps;
    aggregate_mbps = total;
    aggregate_pct_optimal = 100. *. total /. optimal;
    mean_flow_mbps = total /. float_of_int (Array.length flow_mbps);
    p10_flow_mbps = percentile sorted 0.10;
    p50_flow_mbps = percentile sorted 0.50;
    p90_flow_mbps = percentile sorted 0.90;
    mean_core_loss = Common.mean losses;
    cut_messages;
    obs;
    shard_obs;
  }
