(** Integer twin of the kernel's OLIA ([net/mptcp/mptcp_olia.c],
    linux-4.1 MPTCP tree): u64-style fixed-point update rules on
    {!Fixedpoint} primitives, surfaced through the float CC interface
    by thin [@olia.float_boundary] adapters. Selectable from the
    registry as ["olia-fp"]. *)

val create : unit -> Cc_types.t
