lib/netsim/cbr.ml: Packet Sim
