(** Scalable TCP (Tom Kelly, 2003) — the paper's Remark 3 names STCP as a
    congestion control whose rate does not depend on the RTT, which is
    what full Pareto-optimality would require.

    MIMD rule: each ACK grows the window by a constant [a] (default 0.01
    packets, i.e. ~1% per RTT) and each loss shrinks it by [b·cwnd]
    (default b = 0.125). *)

val create : ?a:float -> ?b:float -> unit -> Cc_types.t
(** Raises [Invalid_argument] unless [a > 0] and [0 < b < 1]. *)
