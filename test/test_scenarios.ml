(* Integration tests: short simulated versions of the paper's experiments,
   checked for the qualitative properties (P1, P2, goals 1-3) rather than
   absolute numbers. Durations are cut relative to the paper's 120 s to
   keep the suite fast; seeds are fixed. *)

module S = Mptcp_repro.Scenarios

let duration = 60.
let warmup = 20.

let test_scenario_a_olia_beats_lia_for_tcp_users () =
  let cfg =
    { S.Scen_a.default with duration; warmup; algo = "lia"; seed = 2 }
  in
  let lia = S.Scen_a.run cfg in
  let olia = S.Scen_a.run { cfg with algo = "olia" } in
  Alcotest.(check bool)
    (Printf.sprintf "type2 better under OLIA (%.2f vs %.2f)" olia.norm_type2
       lia.norm_type2)
    true
    (olia.norm_type2 > lia.norm_type2);
  Alcotest.(check bool)
    (Printf.sprintf "congestion balanced: p2 lower (%.4f vs %.4f)" olia.p2
       lia.p2)
    true (olia.p2 < lia.p2)

let test_scenario_a_type1_unhurt_by_olia () =
  (* switching type-1 users from LIA to OLIA must not cost them much:
     their throughput is capped by the streaming server either way *)
  let cfg = { S.Scen_a.default with duration; warmup; seed = 3 } in
  let lia = S.Scen_a.run { cfg with algo = "lia" } in
  let olia = S.Scen_a.run { cfg with algo = "olia" } in
  Alcotest.(check bool) "within 15%" true
    (olia.norm_type1 > lia.norm_type1 -. 0.15)

let test_scenario_a_loss_probabilities_plausible () =
  let cfg = { S.Scen_a.default with duration; warmup; algo = "lia"; seed = 4 } in
  let r = S.Scen_a.run cfg in
  Alcotest.(check bool) "p1 in (0.001, 0.1)" true (r.p1 > 0.001 && r.p1 < 0.1);
  Alcotest.(check bool) "p2 in (0.001, 0.1)" true (r.p2 > 0.001 && r.p2 < 0.1)

let test_scenario_b_upgrade_penalty_smaller_with_olia () =
  (* Tables I-II: the aggregate-throughput drop from upgrading Red users
     is much smaller under OLIA than under LIA *)
  let base = { S.Scen_b.default with duration; warmup; seed = 5 } in
  let drop algo =
    let sp = S.Scen_b.run { base with algo; red_multipath = false } in
    let mp = S.Scen_b.run { base with algo; red_multipath = true } in
    1. -. (mp.aggregate /. sp.aggregate)
  in
  let lia_drop = drop "lia" and olia_drop = drop "olia" in
  Alcotest.(check bool)
    (Printf.sprintf "LIA drop %.3f > OLIA drop %.3f" lia_drop olia_drop)
    true
    (olia_drop < lia_drop)

let test_scenario_b_lia_aggregate_drop_matches_paper () =
  (* Table I: ~13% drop; accept 5-25% *)
  let base = { S.Scen_b.default with duration; warmup; algo = "lia"; seed = 6 } in
  let sp = S.Scen_b.run { base with red_multipath = false } in
  let mp = S.Scen_b.run base in
  let drop = 1. -. (mp.aggregate /. sp.aggregate) in
  Alcotest.(check bool) (Printf.sprintf "drop %.3f in range" drop) true
    (drop > 0.05 && drop < 0.25)

let test_scenario_b_aggregate_near_cutset () =
  (* with Red single-path, the aggregate approaches the 63 Mb/s cut-set *)
  let base = { S.Scen_b.default with duration; warmup; algo = "lia"; seed = 7 } in
  let sp = S.Scen_b.run { base with red_multipath = false } in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate %.1f > 52" sp.aggregate)
    true (sp.aggregate > 52.)

let test_scenario_c_olia_less_aggressive () =
  let cfg = { S.Scen_c.default with duration; warmup; seed = 8 } in
  let lia = S.Scen_c.run { cfg with algo = "lia" } in
  let olia = S.Scen_c.run { cfg with algo = "olia" } in
  Alcotest.(check bool)
    (Printf.sprintf "single-path users better off (%.2f vs %.2f)"
       olia.norm_single lia.norm_single)
    true
    (olia.norm_single > lia.norm_single);
  Alcotest.(check bool) "p2 improves" true (olia.p2 < lia.p2)

let test_scenario_c_lia_aggressive_at_equal_capacity () =
  (* P2: at C1 = C2, LIA multipath users take clearly more than C1 *)
  let cfg = { S.Scen_c.default with duration; warmup; algo = "lia"; seed = 9 } in
  let r = S.Scen_c.run cfg in
  Alcotest.(check bool)
    (Printf.sprintf "multipath %.2f > 1.1" r.norm_multipath)
    true (r.norm_multipath > 1.1)

let test_scenario_c_olia_near_probing_floor () =
  (* with OLIA the multipath users take roughly C1 plus the probe *)
  let cfg = { S.Scen_c.default with duration; warmup; algo = "olia"; seed = 10 } in
  let r = S.Scen_c.run cfg in
  Alcotest.(check bool)
    (Printf.sprintf "multipath %.2f close to 1" r.norm_multipath)
    true
    (r.norm_multipath > 0.85 && r.norm_multipath < 1.2)

let test_two_bottleneck_symmetric_uses_both () =
  (* Fig. 7: both paths carry real traffic and windows do not flap *)
  let t =
    S.Two_bottleneck.run
      { S.Two_bottleneck.symmetric with duration = 60.; seed = 11 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "both paths used (%.2f / %.2f Mb/s)" t.goodput1_mbps
       t.goodput2_mbps)
    true
    (t.goodput1_mbps > 0.3 && t.goodput2_mbps > 0.3)

let test_two_bottleneck_asymmetric_prefers_good_path () =
  (* Fig. 8: OLIA moves traffic to the less congested bottleneck *)
  let t =
    S.Two_bottleneck.run
      { S.Two_bottleneck.asymmetric with duration = 60.; seed = 12 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "path1 dominates (%.2f vs %.2f)" t.goodput1_mbps
       t.goodput2_mbps)
    true
    (t.goodput1_mbps > 1.5 *. t.goodput2_mbps)

let test_two_bottleneck_traces_recorded () =
  let t =
    S.Two_bottleneck.run
      { S.Two_bottleneck.symmetric with duration = 20.; seed = 13 }
  in
  Alcotest.(check bool) "w1 sampled" true
    (Mptcp_repro.Stats.Timeseries.length t.w1 > 100);
  Alcotest.(check bool) "alpha sampled" true
    (Mptcp_repro.Stats.Timeseries.length t.alpha1 > 100);
  (* alpha values live in [-1, 1] *)
  let ok = ref true in
  Array.iter
    (fun (_, a) -> if a < -1. || a > 1. then ok := false)
    (Mptcp_repro.Stats.Timeseries.to_array t.alpha1);
  Alcotest.(check bool) "alpha bounded" true !ok

let test_two_bottleneck_lia_has_no_alpha () =
  let t =
    S.Two_bottleneck.run
      { S.Two_bottleneck.symmetric with duration = 10.; algo = "lia"; seed = 14 }
  in
  Array.iter
    (fun (_, a) -> Test_common.close "alpha zero" 0. a)
    (Mptcp_repro.Stats.Timeseries.to_array t.alpha1)

let test_fattree_static_mptcp_beats_tcp () =
  (* Fig. 13(a): multipath strongly outperforms single-path TCP *)
  let cfg =
    { S.Fattree_static.default with k = 4; duration = 20.; warmup = 5.; seed = 15 }
  in
  let tcp = S.Fattree_static.run { cfg with subflows = 1 } in
  let olia8 = S.Fattree_static.run { cfg with subflows = 8; algo = "olia" } in
  Alcotest.(check bool)
    (Printf.sprintf "OLIA %.0f%% > TCP %.0f%%" olia8.aggregate_pct_optimal
       tcp.aggregate_pct_optimal)
    true
    (olia8.aggregate_pct_optimal > tcp.aggregate_pct_optimal +. 10.)

let test_fattree_static_more_subflows_help () =
  let cfg =
    { S.Fattree_static.default with
      k = 4; duration = 20.; warmup = 5.; algo = "lia"; seed = 16 }
  in
  let two = S.Fattree_static.run { cfg with subflows = 2 } in
  let eight = S.Fattree_static.run { cfg with subflows = 8 } in
  Alcotest.(check bool)
    (Printf.sprintf "8 subflows %.0f%% >= 2 subflows %.0f%%"
       eight.aggregate_pct_optimal two.aggregate_pct_optimal)
    true
    (eight.aggregate_pct_optimal > two.aggregate_pct_optimal -. 3.)

let test_fattree_static_rank_output () =
  let cfg =
    { S.Fattree_static.default with
      k = 4; duration = 15.; warmup = 5.; subflows = 4; seed = 17 }
  in
  let r = S.Fattree_static.run cfg in
  Alcotest.(check int) "one rank per host" 16 (Array.length r.ranked_pct);
  let sorted = ref true in
  for i = 1 to Array.length r.ranked_pct - 1 do
    if r.ranked_pct.(i) < r.ranked_pct.(i - 1) then sorted := false
  done;
  Alcotest.(check bool) "ascending" true !sorted

let test_fattree_dynamic_shapes () =
  let cfg =
    { S.Fattree_dynamic.default with
      k = 4; duration = 12.; warmup = 3.; seed = 18 }
  in
  let r = S.Fattree_dynamic.run cfg in
  Alcotest.(check bool) "short flows completed" true
    (Array.length r.completion_times_ms > 100);
  Alcotest.(check bool)
    (Printf.sprintf "mean completion %.1f ms plausible" r.mean_completion_ms)
    true
    (r.mean_completion_ms > 5. && r.mean_completion_ms < 2000.);
  Alcotest.(check bool) "core used" true (r.core_utilization_pct > 5.)

let test_fattree_dynamic_tcp_lower_core_usage () =
  (* Table III: plain TCP long flows leave the core underutilized *)
  let cfg =
    { S.Fattree_dynamic.default with
      k = 4; duration = 12.; warmup = 3.; seed = 19 }
  in
  let tcp = S.Fattree_dynamic.run { cfg with algo = "reno"; subflows = 1 } in
  let olia = S.Fattree_dynamic.run { cfg with algo = "olia"; subflows = 8 } in
  Alcotest.(check bool)
    (Printf.sprintf "OLIA core %.0f%% > TCP core %.0f%%"
       olia.core_utilization_pct tcp.core_utilization_pct)
    true
    (olia.core_utilization_pct > tcp.core_utilization_pct)

let test_replicate_produces_independent_runs () =
  let cfg =
    { S.Scen_c.default with duration = 30.; warmup = 10.; algo = "lia" }
  in
  match S.Scen_c.replicate cfg ~seeds:[ 1; 2; 3 ] with
  | [ a; b; c ] ->
    Alcotest.(check bool) "seeds change results" true
      (a.norm_single <> b.norm_single || b.norm_single <> c.norm_single);
    (* but not wildly: all within a plausible band *)
    List.iter
      (fun r ->
        Alcotest.(check bool) "band" true
          (r.S.Scen_c.norm_single > 0.3 && r.S.Scen_c.norm_single < 1.1))
      [ a; b; c ]
  | _ -> Alcotest.fail "expected three results"

let test_determinism_same_seed_same_result () =
  let cfg =
    { S.Scen_c.default with duration = 20.; warmup = 5.; algo = "olia"; seed = 42 }
  in
  let a = S.Scen_c.run cfg and b = S.Scen_c.run cfg in
  Test_common.close "bit-identical" a.norm_single b.norm_single;
  Test_common.close "loss identical" a.p2 b.p2

let suite =
  [
    Alcotest.test_case "A: OLIA beats LIA for TCP users" `Slow
      test_scenario_a_olia_beats_lia_for_tcp_users;
    Alcotest.test_case "A: type1 unhurt by OLIA" `Slow
      test_scenario_a_type1_unhurt_by_olia;
    Alcotest.test_case "A: loss probabilities plausible" `Slow
      test_scenario_a_loss_probabilities_plausible;
    Alcotest.test_case "B: upgrade penalty smaller with OLIA" `Slow
      test_scenario_b_upgrade_penalty_smaller_with_olia;
    Alcotest.test_case "B: LIA aggregate drop ~13%" `Slow
      test_scenario_b_lia_aggregate_drop_matches_paper;
    Alcotest.test_case "B: near cut-set bound" `Slow
      test_scenario_b_aggregate_near_cutset;
    Alcotest.test_case "C: OLIA less aggressive (P2)" `Slow
      test_scenario_c_olia_less_aggressive;
    Alcotest.test_case "C: LIA overshoots at C1=C2" `Slow
      test_scenario_c_lia_aggressive_at_equal_capacity;
    Alcotest.test_case "C: OLIA near probing floor" `Slow
      test_scenario_c_olia_near_probing_floor;
    Alcotest.test_case "Fig7: symmetric uses both paths" `Slow
      test_two_bottleneck_symmetric_uses_both;
    Alcotest.test_case "Fig8: asymmetric prefers good path" `Slow
      test_two_bottleneck_asymmetric_prefers_good_path;
    Alcotest.test_case "Fig7: traces recorded, alpha bounded" `Slow
      test_two_bottleneck_traces_recorded;
    Alcotest.test_case "Fig7: LIA has no alpha" `Slow
      test_two_bottleneck_lia_has_no_alpha;
    Alcotest.test_case "Fig13: MPTCP beats TCP" `Slow
      test_fattree_static_mptcp_beats_tcp;
    Alcotest.test_case "Fig13: subflows help" `Slow
      test_fattree_static_more_subflows_help;
    Alcotest.test_case "Fig13: rank output" `Slow test_fattree_static_rank_output;
    Alcotest.test_case "Fig14: dynamic shapes" `Slow test_fattree_dynamic_shapes;
    Alcotest.test_case "Table3: TCP leaves core idle" `Slow
      test_fattree_dynamic_tcp_lower_core_usage;
    Alcotest.test_case "replicate: independent runs" `Slow
      test_replicate_produces_independent_runs;
    Alcotest.test_case "determinism: same seed, same result" `Slow
      test_determinism_same_seed_same_result;
  ]

let test_two_bottleneck_rtt_heterogeneity () =
  (* with a much slower path 2, OLIA still achieves a sensible total and
     does not starve on aggregate *)
  let t =
    S.Two_bottleneck.run
      {
        S.Two_bottleneck.symmetric with
        delay1_ms = 20.;
        delay2_ms = 80.;
        duration = 60.;
        seed = 21;
      }
  in
  let total = t.goodput1_mbps +. t.goodput2_mbps in
  Alcotest.(check bool)
    (Printf.sprintf "total %.2f within [0.5, 4]" total)
    true
    (total > 0.5 && total < 4.)

let test_scenario_c_background_traffic () =
  (* CBR noise on AP2 squeezes the single-path users further *)
  let base =
    { S.Scen_c.default with algo = "olia"; duration = 40.; warmup = 10.;
      seed = 22 }
  in
  let clean = S.Scen_c.run base in
  let noisy = S.Scen_c.run { base with background_mbps = 3. } in
  Alcotest.(check bool)
    (Printf.sprintf "singles squeezed: %.2f < %.2f" noisy.norm_single
       clean.norm_single)
    true
    (noisy.norm_single < clean.norm_single)

let test_scenario_c_with_path_manager_runs () =
  let r =
    S.Scen_c.run
      { S.Scen_c.default with algo = "olia"; duration = 40.; warmup = 10.;
        with_path_manager = true; seed = 23 }
  in
  Alcotest.(check bool) "sane result" true
    (r.norm_multipath > 0.5 && r.norm_single > 0.3)

let suite =
  suite
  @ [
      Alcotest.test_case "two-bottleneck: RTT heterogeneity" `Slow
        test_two_bottleneck_rtt_heterogeneity;
      Alcotest.test_case "C: background traffic squeezes singles" `Slow
        test_scenario_c_background_traffic;
      Alcotest.test_case "C: path manager variant runs" `Slow
        test_scenario_c_with_path_manager_runs;
    ]

let test_responsiveness_olia_flees_fast () =
  let r =
    S.Responsiveness.run { S.Responsiveness.default with algo = "olia" }
  in
  Alcotest.(check bool)
    (Printf.sprintf "flees within 10 s (%.1f)" r.shock_response_s)
    true
    (Float.is_finite r.shock_response_s && r.shock_response_s < 10.);
  Alcotest.(check bool) "used path 2 beforehand" true (r.pre_shock_share > 0.2)

let test_responsiveness_lia_comparable () =
  let olia =
    S.Responsiveness.run { S.Responsiveness.default with algo = "olia" }
  in
  let lia =
    S.Responsiveness.run { S.Responsiveness.default with algo = "lia" }
  in
  (* the paper's claim: OLIA is as responsive as LIA at fleeing *)
  Alcotest.(check bool)
    (Printf.sprintf "OLIA %.1fs vs LIA %.1fs" olia.shock_response_s
       lia.shock_response_s)
    true
    (olia.shock_response_s < lia.shock_response_s +. 10.)

let suite =
  suite
  @ [
      Alcotest.test_case "responsiveness: OLIA flees fast" `Slow
        test_responsiveness_olia_flees_fast;
      Alcotest.test_case "responsiveness: OLIA ~ LIA" `Slow
        test_responsiveness_lia_comparable;
    ]
