(* Binary min-heap on (time, seq); seq breaks ties in insertion order so
   the schedule is deterministic. *)
type t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable fns : (unit -> unit) array;
  mutable len : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable max_depth : int;
}

let nop () = ()

let create () =
  {
    times = Array.make 1024 0.;
    seqs = Array.make 1024 0;
    fns = Array.make 1024 nop;
    len = 0;
    clock = 0.;
    next_seq = 0;
    processed = 0;
    max_depth = 0;
  }

let now t = t.clock
let pending t = t.len
let events_processed t = t.processed
let max_heap_depth t = t.max_depth

let less t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tt = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tt;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let f = t.fns.(i) in
  t.fns.(i) <- t.fns.(j);
  t.fns.(j) <- f

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t l !smallest then smallest := l;
  if r < t.len && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0. in
  let seqs = Array.make (2 * cap) 0 in
  let fns = Array.make (2 * cap) nop in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.fns 0 fns 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.fns <- fns

let schedule_at ?(src = "other") t time fn =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  (* Profiling wraps at scheduling time, not in the dispatch loop, so
     the heap stays three parallel arrays and the profiling-off cost is
     this one ref read. *)
  let fn =
    if Repro_obs.Profile.enabled () then fun () ->
      Repro_obs.Profile.dispatch ~src fn
    else fn
  in
  if t.len = Array.length t.times then grow t;
  let i = t.len in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.fns.(i) <- fn;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  if t.len > t.max_depth then t.max_depth <- t.len;
  sift_up t i

let schedule_after ?src t delay fn = schedule_at ?src t (t.clock +. delay) fn

let pop t =
  let fn = t.fns.(0) and time = t.times.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.times.(0) <- t.times.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.fns.(0) <- t.fns.(t.len)
  end;
  t.fns.(t.len) <- nop;
  sift_down t 0;
  (time, fn)

let run_until t horizon =
  let continue = ref true in
  while !continue do
    if t.len = 0 || t.times.(0) > horizon then continue := false
    else begin
      let time, fn = pop t in
      t.clock <- time;
      t.processed <- t.processed + 1;
      fn ()
    end
  done;
  if t.clock < horizon then t.clock <- horizon

let run t =
  while t.len > 0 do
    let time, fn = pop t in
    t.clock <- time;
    t.processed <- t.processed + 1;
    fn ()
  done
