type kind = Data | Ack of { ackno : int; echo : float; sack : (int * int) option }

type t = {
  kind : kind;
  seq : int;
  size_bytes : int;
  flow : int;
  subflow : int;
  mutable hop : int;
  route : hop array;
  mutable sent_at : float;
  mutable enqueued_at : float;
}

and hop = t -> unit

let data_size = 1500
let ack_size = 40
let kind_name p = match p.kind with Data -> "data" | Ack _ -> "ack"

let data ~flow ~subflow ~seq ~sent_at ~route =
  { kind = Data; seq; size_bytes = data_size; flow; subflow; hop = 0;
    route; sent_at; enqueued_at = sent_at }

let ack ~flow ~subflow ~ackno ~echo ~sack ~route ~sent_at =
  { kind = Ack { ackno; echo; sack }; seq = 0; size_bytes = ack_size; flow;
    subflow; hop = 0; route; sent_at; enqueued_at = sent_at }

let forward p =
  if Invariant.enabled () then
    Invariant.require
      (p.hop >= 0 && p.hop < Array.length p.route)
      (Printf.sprintf
         "packet flow %d subflow %d seq %d: hop %d outside route of length \
          %d"
         p.flow p.subflow p.seq p.hop (Array.length p.route));
  assert (p.hop < Array.length p.route);
  let h = p.route.(p.hop) in
  p.hop <- p.hop + 1;
  h p
