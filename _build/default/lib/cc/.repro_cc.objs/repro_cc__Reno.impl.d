lib/cc/reno.ml: Array Cc_types Stdlib
