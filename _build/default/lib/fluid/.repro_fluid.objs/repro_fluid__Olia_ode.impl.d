lib/fluid/olia_ode.ml: Array List Network_model Stdlib
