(** Structured event tracing for the simulator.

    Instrumentation sites in [lib/netsim] call the scalar emission
    functions ({!pkt_enqueue}, {!cwnd_update}, ...) only when {!enabled}
    returns true, so the tracing-off path costs one ref read and
    allocates nothing. Armed, there are two delivery modes:

    - {b ring mode} (the sharded and default CLI path): each
      participating domain binds a pre-allocated binary {!Ring} with
      {!bind_ring}; emission is a fixed-width record write — zero minor
      allocation, covered by the R9 [\[@olia.alloc_free\]] proof — and
      {!decode_rings} merges the rings offline back into the exact
      sequential event order;
    - {b sink mode} (the original design, kept for tests and streaming):
      a process-global [event -> unit] callback fed variant events,
      armed via {!set_sink} / {!open_jsonl} or the [OLIA_TRACE]
      environment variable ([1]/[true]/[yes]/[on] for stderr, any other
      non-empty value for an output path). Sink mode allocates per
      event and serializes writers with a mutex; arm it around
      single-domain runs only.

    A domain with a bound ring always writes its ring; the sink serves
    armed-but-unbound domains. Either way the JSONL wire format — one
    compact [Repro_stats.Json] object per line, led by an ["ev"]
    discriminator — is unchanged: ring records decode back to the same
    {!event} values. *)

type tcp_state = Slow_start | Congestion_avoidance | Fast_recovery

type drop_cause =
  | Overflow  (** buffer full on arrival *)
  | Red_early  (** RED early (probabilistic) drop *)
  | Random_loss  (** lossy-link Bernoulli drop *)
  | Link_down  (** fault-injected outage swallowed the packet *)

type event =
  | Pkt_enqueue of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      backlog : int;  (** occupancy after the packet was admitted *)
    }
  | Pkt_drop of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      cause : drop_cause;
    }
  | Pkt_forward of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      bytes : int;
      qdelay : float;
          (** queue residence: seconds between the packet's admission
              ({!Pkt_enqueue}) and this forward, service included *)
    }
  | Tcp_state of {
      time : float;
      flow : int;
      subflow : int;
      from_state : tcp_state;
      to_state : tcp_state;
    }
  | Cwnd_update of {
      time : float;
      flow : int;
      subflow : int;
      cwnd : float;
      ssthresh : float;
    }
  | Rto_fired of {
      time : float;
      flow : int;
      subflow : int;
      rto : float;  (** the RTO that just expired, pre-backoff *)
    }
  | Rtt_sample of {
      time : float;
      flow : int;
      subflow : int;
      rtt : float;  (** the raw sample from the ACK's echoed timestamp *)
      srtt : float;  (** smoothed estimate after folding the sample in *)
    }
  | Subflow_add of { time : float; flow : int; subflow : int }
  | Subflow_remove of { time : float; flow : int; subflow : int }

val to_json : event -> Repro_stats.Json.t

val of_json : Repro_stats.Json.t -> (event, string) result
(** Inverse of {!to_json}. Finite floats round-trip exactly (the Json
    printer guarantees it); a [null] numeric field reads back as nan. *)

val state_name : tcp_state -> string
val cause_name : drop_cause -> string

(** {1 Integer encodings}

    Fixed codes used inside the binary ring records. Packet kinds
    follow [Packet.kind_code] (data 0, ack 1). *)

val state_code : tcp_state -> int
val state_of_code : int -> tcp_state
val cause_code : drop_cause -> int
val cause_of_code : int -> drop_cause

val kind_name_of_code : int -> string
(** [0 -> "data"], [1 -> "ack"]. *)

(** {1 Interning}

    Queue names intern to small ints at component creation time so the
    armed emission path stores an int instead of touching a string.
    Interning is mutex-protected and happens off the hot path (topology
    construction and offline decoding). *)

val intern : string -> int
(** Id of [s], allocating a fresh one on first sight. Stable for the
    process lifetime. *)

val intern_name : int -> string
(** Inverse of {!intern}; raises [Invalid_argument] on unknown ids. *)

(** {1 Arming} *)

val enabled : unit -> bool
(** One ref read — true when either a sink is set or rings are armed.
    Instrumentation sites must guard emission with it. *)

val sink_armed : unit -> bool
(** True when a variant sink is installed. The R9 lint treats this as a
    guard: the sink branch of the scalar emission functions (which
    allocates the event record) is pruned from the allocation-freedom
    proof, exactly like [Invariant.enabled]. *)

val set_sink : (event -> unit) option -> unit
(** Install a custom sink (tests) or disarm with [None]. *)

val open_jsonl : path:string -> unit
(** Arm tracing into a fresh JSONL file, closing any previous sink. *)

val close : unit -> unit
(** Flush and close the JSONL sink, disarming sink mode. *)

val with_jsonl : path:string -> (unit -> 'a) -> 'a
(** [open_jsonl], run the thunk, [close] — also on exceptions. *)

(** {1 Ring mode} *)

val rings_armed : unit -> bool
(** True between {!arm_rings} and {!disarm_rings}. Worker loops use it
    to decide whether to {!bind_ring}. *)

val arm_rings : ?capacity:int -> ?policy:Ring.policy -> unit -> unit
(** Arm ring mode and reset the ring registry. Subsequent
    {!bind_ring} calls create rings of [capacity] records (default
    [65536]) with overflow [policy] (default [Drop_oldest]). Call
    before the traced run starts, from the orchestrating domain. *)

val bind_ring : shard:int -> unit
(** Create a fresh ring for the calling domain, register it under
    [shard], and install it in domain-local storage: every subsequent
    armed emission on this domain writes the ring. Workers call this
    once at window-loop start. Raises [Invalid_argument] if rings are
    not armed. *)

val unbind_ring : unit -> unit
(** Detach the calling domain from its ring (the ring stays
    registered for decoding). *)

val disarm_rings : unit -> unit
(** Disarm ring mode and drop the registry. Decode first. *)

val rings_dropped : unit -> int
(** Total records lost to [Drop_oldest] overflow across all registered
    rings — nonzero means {!decode_rings} is incomplete and the rings
    need a bigger capacity. *)

val decode_rings : unit -> event list
(** Merge every registered ring into the canonical event order:
    records sort by their dispatch key [(time, sched, class,
    dispatching-packet identity)] — the scheduler's own dispatch order
    — then by record content (closure dispatches carry no packet
    identity, so same-instant serve completions need it), with ring
    rank and in-ring position as the final tie-break. Every component
    before rank/pos is shard-invariant, so an N-shard decode is
    byte-identical to the 1-shard decode of the same seed. *)

(** {1 Scalar emission}

    The armed hot path: one function per event, taking the interned
    queue id and integer kind code instead of strings. With a bound
    ring these allocate nothing on the minor heap (R9-proven); on the
    sink fallback they build the {!event} record. Callers guard with
    {!enabled} and pass [Packet.kind_code] / the queue's interned id. *)

val pkt_enqueue :
  time:float ->
  queue:int ->
  flow:int ->
  subflow:int ->
  seq:int ->
  kind:int ->
  backlog:int ->
  unit

val pkt_drop :
  time:float ->
  queue:int ->
  flow:int ->
  subflow:int ->
  seq:int ->
  kind:int ->
  cause:drop_cause ->
  unit

val pkt_forward :
  time:float ->
  queue:int ->
  flow:int ->
  subflow:int ->
  seq:int ->
  kind:int ->
  bytes:int ->
  qdelay:float ->
  unit

val tcp_state :
  time:float ->
  flow:int ->
  subflow:int ->
  from_state:tcp_state ->
  to_state:tcp_state ->
  unit

val cwnd_update :
  time:float -> flow:int -> subflow:int -> cwnd:float -> ssthresh:float -> unit

val rto_fired : time:float -> flow:int -> subflow:int -> rto:float -> unit

val rtt_sample :
  time:float -> flow:int -> subflow:int -> rtt:float -> srtt:float -> unit

val subflow_add : time:float -> flow:int -> subflow:int -> unit
val subflow_remove : time:float -> flow:int -> subflow:int -> unit

val emit : event -> unit
(** Variant-level entry point: routes to the bound ring (decomposing to
    the scalar functions, re-interning the queue name) or the sink.
    Kept for tests and external callers holding an {!event}. *)

val set_dispatch_ctx :
  sched:float -> cls:int -> flow:int -> subflow:int -> pseq:int -> kind:int ->
  unit
(** Called by the scheduler once per dispatch while tracing is armed:
    records the dispatching event's ordering key — arming time [sched],
    dispatch class [cls] (closures 0, packets 1), and the dispatched
    packet's identity (zeros for closures) — in domain-local storage.
    Every ring record written during the dispatch carries it; the
    decoder sorts on it. Allocation-free. *)
