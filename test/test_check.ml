(* Tests of the differential conformance harness (lib/check): tolerance
   bands, the fault-injection gate, the sim-vs-fluid case registry, the
   fluid residual invariants and the golden-trace comparator. *)

open Mptcp_repro.Netsim
module Ck = Mptcp_repro.Check
module F = Mptcp_repro.Fluid
module Json = Mptcp_repro.Stats.Json

(* --- bands -------------------------------------------------------------- *)

let test_band_around () =
  let b =
    Ck.Band.around ~id:"t" ~metric:"m" ~rtol:0.1 ~atol:0.05 ~source:"s" 10.
  in
  Test_common.close "lo" 8.95 b.Ck.Band.lo;
  Test_common.close "hi" 11.05 b.Ck.Band.hi;
  Alcotest.(check bool) "inside" true (Ck.Band.check b 9.).Ck.Band.pass;
  Alcotest.(check bool) "edge lo" true (Ck.Band.check b 8.95).Ck.Band.pass;
  Alcotest.(check bool) "below" false (Ck.Band.check b 8.9).Ck.Band.pass;
  Alcotest.(check bool) "above" false (Ck.Band.check b 11.1).Ck.Band.pass;
  Alcotest.(check bool) "nan fails" false
    (Ck.Band.check b Float.nan).Ck.Band.pass;
  Alcotest.(check bool) "inf fails" false
    (Ck.Band.check b infinity).Ck.Band.pass

let test_band_validation () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Band t: zero-width band") (fun () ->
      ignore (Ck.Band.around ~id:"t" ~metric:"m" ~source:"s" 10.));
  Alcotest.check_raises "empty interval"
    (Invalid_argument "Band t: empty interval [2, 1]") (fun () ->
      ignore
        (Ck.Band.within ~id:"t" ~metric:"m" ~source:"s" ~expected:1.5 ~lo:2.
           ~hi:1.));
  Alcotest.check_raises "loss needs positive expectation"
    (Invalid_argument "Band t: loss expectation must be > 0") (fun () ->
      ignore (Ck.Band.loss ~id:"t" ~metric:"m" ~source:"s" 0.))

let test_band_loss_multiplicative () =
  let b = Ck.Band.loss ~id:"t" ~metric:"p" ~source:"s" 0.01 in
  Alcotest.(check bool) "third passes" true
    (Ck.Band.check b (0.01 /. 3.)).Ck.Band.pass;
  Alcotest.(check bool) "triple passes" true
    (Ck.Band.check b 0.03).Ck.Band.pass;
  Alcotest.(check bool) "quadruple fails" false
    (Ck.Band.check b 0.04).Ck.Band.pass

(* --- the fault gate ----------------------------------------------------- *)

let drain_route hops =
  let delivered = ref 0 in
  let sink (_ : Packet.t) = incr delivered in
  (Array.append hops [| sink |], delivered)

let test_fault_down_drops_everything () =
  let sim = Sim.create () in
  let gate = Fault.create ~sim ~rng:(Rng.create ~seed:1) () in
  let route, delivered = drain_route [| Fault.hop gate |] in
  Fault.set_mode gate Fault.Down;
  Packet.forward (Packet.data ~flow:0 ~subflow:0 ~seq:0 ~sent_at:0. ~route);
  Packet.forward (Packet.ack ~flow:0 ~subflow:0 ~ackno:0 ~echo:0. ~sack:None ~route ~sent_at:0.);
  Sim.run sim;
  Alcotest.(check int) "nothing through" 0 !delivered;
  Alcotest.(check int) "both dropped" 2 (Fault.dropped gate);
  Alcotest.(check bool) "is_down" true (Fault.is_down gate)

let test_fault_burst_spares_acks () =
  let sim = Sim.create () in
  let gate = Fault.create ~sim ~rng:(Rng.create ~seed:1) () in
  let route, delivered = drain_route [| Fault.hop gate |] in
  Fault.set_mode gate (Fault.Burst { loss_prob = 0.5 });
  for i = 0 to 199 do
    Packet.forward (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:0. ~route)
  done;
  let data_through = !delivered in
  for i = 0 to 49 do
    Packet.forward (Packet.ack ~flow:0 ~subflow:0 ~ackno:i ~echo:0. ~sack:None ~route ~sent_at:0.)
  done;
  Sim.run sim;
  Alcotest.(check bool) "some data dropped" true (Fault.dropped gate > 0);
  Alcotest.(check bool) "some data passed" true (data_through > 0);
  Alcotest.(check int) "all acks pass" (data_through + 50) !delivered

let test_fault_schedule_validation () =
  let sim = Sim.create () in
  let gate = Fault.create ~sim ~rng:(Rng.create ~seed:1) () in
  Alcotest.(check bool) "starts up" false (Fault.is_down gate);
  Alcotest.check_raises "flap order"
    (Invalid_argument "Fault.schedule_flap: up_at <= down_at") (fun () ->
      Fault.schedule_flap gate ~down_at:5. ~up_at:5.);
  Alcotest.check_raises "burst prob"
    (Invalid_argument "Fault.set_mode: burst loss_prob must be in [0, 1)")
    (fun () -> Fault.set_mode gate (Fault.Burst { loss_prob = 1. }))

let test_fault_reorder_delivers_late () =
  let sim = Sim.create () in
  let gate = Fault.create ~sim ~rng:(Rng.create ~seed:3) () in
  let route, delivered = drain_route [| Fault.hop gate |] in
  Fault.set_mode gate (Fault.Reorder { prob = 1.; extra_delay = 0.5 });
  Packet.forward (Packet.data ~flow:0 ~subflow:0 ~seq:0 ~sent_at:0. ~route);
  Alcotest.(check int) "held back" 0 !delivered;
  Sim.run sim;
  Alcotest.(check int) "delivered late" 1 !delivered;
  Alcotest.(check int) "counted" 1 (Fault.reordered gate);
  Test_common.close "clock advanced" 0.5 (Sim.now sim)

(* --- conformance cases -------------------------------------------------- *)

(* The full registry (9 packet simulations of 120 s each) runs under the
   CI conformance job via [olia_sim check]; here we exercise the fast
   cases end to end and the machinery around them. *)

let test_fluid_cross_cases_pass () =
  let report = Ck.Conformance.run_all ~only:"fluid/" () in
  Alcotest.(check int) "two cases" 2
    (List.length report.Ck.Conformance.cases);
  Alcotest.(check bool) "closed forms agree with the solver" true
    report.Ck.Conformance.pass

let test_fault_cases_pass () =
  let report = Ck.Conformance.run_all ~only:"fault/" () in
  Alcotest.(check int) "three cases" 3
    (List.length report.Ck.Conformance.cases);
  Alcotest.(check bool) "recovery within bands" true
    report.Ck.Conformance.pass

let test_report_deterministic () =
  let render () =
    Json.to_string
      (Ck.Conformance.report_to_json (Ck.Conformance.run_all ~only:"fault/" ()))
  in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical reports" a b

let test_missing_metric_fails () =
  let case =
    {
      Ck.Conformance.name = "synthetic";
      doc = "a band over a metric the run does not produce";
      bands =
        [ Ck.Band.around ~id:"x" ~metric:"absent" ~rtol:0.1 ~source:"s" 1. ];
      run = (fun () -> [ ("present", 1.) ]);
    }
  in
  let r = Ck.Conformance.run_case case in
  Alcotest.(check bool) "case fails" false r.Ck.Conformance.pass

let test_report_json_shape () =
  let report = Ck.Conformance.run_all ~only:"fluid/a-lia" () in
  match Ck.Conformance.report_to_json report with
  | Json.Obj fields ->
      Alcotest.(check bool) "pass field" true
        (List.mem_assoc "pass" fields && List.mem_assoc "cases" fields);
      Alcotest.(check bool) "band counts" true
        (List.assoc "bands_total" fields = Json.Int 2
        && List.assoc "bands_failed" fields = Json.Int 0)
  | _ -> Alcotest.fail "report must be a JSON object"

(* --- differential conformance (float vs fixed-point) -------------------- *)

(* The full diff registry (12 packet simulations of 60 s each) runs
   under the CI diff-conformance step via [olia_sim check --diff]; the
   suite exercises the quick profile (shorter runs, wider bands) and
   the simulator-free lockstep driver. *)

let test_diff_scenario_cases_pass () =
  let report = Ck.Diff.run_all ~only:"diff/a" ~quick:true () in
  Alcotest.(check int) "olia and balia twins" 2
    (List.length report.Ck.Diff.cases);
  List.iter
    (fun (cr : Ck.Diff.case_report) ->
      List.iter
        (fun (r : Ck.Diff.check_result) ->
          if not r.pass then
            Alcotest.failf "%s/%s: deviation %g over limit %g" cr.case
              r.metric r.deviation r.limit)
        cr.results)
    report.Ck.Diff.cases;
  Alcotest.(check bool) "within bands" true report.Ck.Diff.pass

let test_diff_scenario_bc_cases_pass () =
  List.iter
    (fun only ->
      let report = Ck.Diff.run_all ~only ~quick:true () in
      Alcotest.(check int) (only ^ ": olia and balia twins") 2
        (List.length report.Ck.Diff.cases);
      Alcotest.(check bool) (only ^ ": within bands") true
        report.Ck.Diff.pass)
    [ "diff/b"; "diff/c" ]

let test_diff_lockstep_bounded () =
  List.iter
    (fun (float_algo, fixed_algo) ->
      let r = Ck.Diff.lockstep ~float_algo ~fixed_algo () in
      Alcotest.(check bool)
        (fixed_algo ^ ": cwnd trajectories stay close") true
        (r.Ck.Diff.max_rel_divergence < 0.25);
      Array.iteri
        (fun i wf ->
          let wi = r.Ck.Diff.final_fixed.(i) in
          let dev = abs_float (wf -. wi) /. Stdlib.max wf 1. in
          if dev > 0.25 then
            Alcotest.failf "%s sf%d: final cwnd %g vs %g" fixed_algo i wf wi)
        r.Ck.Diff.final_float)
    [ ("olia", "olia-fp"); ("balia", "balia-fp") ]

let test_diff_lockstep_cases_pass () =
  let report = Ck.Diff.run_all ~only:"lockstep" () in
  Alcotest.(check int) "two lockstep cases" 2
    (List.length report.Ck.Diff.cases);
  Alcotest.(check bool) "bounded divergence" true report.Ck.Diff.pass

let test_diff_report_deterministic () =
  let render () =
    Json.to_string (Ck.Diff.report_to_json (Ck.Diff.run_all ~only:"lockstep" ()))
  in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical diff reports" a b

let test_diff_provenance_present () =
  List.iter
    (fun (c : Ck.Diff.case) ->
      Alcotest.(check bool)
        (c.name ^ ": cites the kernel source")
        true
        (String.length c.source > 0
        && String.length c.float_algo > 0
        && String.length c.fixed_algo > 0))
    (Ck.Diff.cases ~quick:true ())

(* --- fluid residual invariants ------------------------------------------ *)

let with_fluid_invariants f =
  let was = F.Invariant.enabled () in
  F.Invariant.set_enabled true;
  Fun.protect ~finally:(fun () -> F.Invariant.set_enabled was) f

let small_net () =
  {
    F.Network_model.links = [| F.Network_model.link 100. |];
    users =
      [|
        { F.Network_model.routes = [| { F.Network_model.links = [| 0 |]; rtt = 0.1 } |] };
      |];
  }

let test_armed_solve_passes () =
  with_fluid_invariants (fun () ->
      let x = F.Equilibrium.solve (small_net ()) F.Equilibrium.Uncoupled in
      Alcotest.(check bool) "positive rate" true (x.(0).(0) > 0.))

let test_misconverged_point_trips () =
  with_fluid_invariants (fun () ->
      let net = small_net () in
      let x = F.Equilibrium.solve net F.Equilibrium.Uncoupled in
      (* a deliberately mis-converged allocation: double the rate *)
      let bad = [| [| 2. *. x.(0).(0) |] |] in
      let trips =
        try
          F.Equilibrium.check_fixed_point net F.Equilibrium.Uncoupled bad;
          false
        with F.Invariant.Violation _ -> true
      in
      Alcotest.(check bool) "perturbed point trips the invariant" true trips;
      Alcotest.(check bool) "residual is large" true
        (F.Equilibrium.residual net F.Equilibrium.Uncoupled bad > 0.1))

let test_dormant_invariants_stay_quiet () =
  let was = F.Invariant.enabled () in
  F.Invariant.set_enabled false;
  Fun.protect
    ~finally:(fun () -> F.Invariant.set_enabled was)
    (fun () ->
      let net = small_net () in
      let bad = [| [| 1e6 |] |] in
      F.Equilibrium.check_fixed_point net F.Equilibrium.Uncoupled bad)

(* --- golden traces ------------------------------------------------------ *)

(* dune copies test/golden/*.jsonl next to the test binary. *)
let golden_dir = "golden"

let test_golden_all_match () =
  List.iter
    (fun name ->
      match Ck.Golden.check ~dir:golden_dir name with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    Ck.Golden.names

let test_golden_detects_divergence () =
  (* re-record one golden trace into a temp dir, flip a semantic field,
     and make sure the comparator reports the divergence *)
  let dir = Filename.temp_file "golden" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Ck.Golden.update ~dir "reno-droptail";
  let file = Filename.concat dir "reno-droptail.jsonl" in
  let ic = open_in file in
  let lines =
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | l -> go (l :: acc)
    in
    go []
  in
  close_in ic;
  (* dropping a semantic event must be reported as a divergence *)
  let mutated = List.filteri (fun i _ -> i <> 1) lines in
  let oc = open_out file in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    mutated;
  close_out oc;
  (match Ck.Golden.check ~dir "reno-droptail" with
  | Ok () -> Alcotest.fail "mutation must be detected"
  | Error e ->
      Alcotest.(check bool) "diagnostic names the divergence" true
        (String.length e > 0));
  Sys.remove file;
  Unix.rmdir dir

let test_golden_unknown_name () =
  Alcotest.(check bool) "unknown name rejected" true
    (try
       ignore (Ck.Golden.record "no-such-scenario");
       false
     with Invalid_argument _ -> true)

(* --- golden reports ----------------------------------------------------- *)

let test_golden_report_matches () =
  List.iter
    (fun name ->
      match Ck.Golden.check_report ~dir:golden_dir name with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    Ck.Golden.report_names

let test_golden_report_semantic_compare () =
  (* re-record the golden report into a temp dir; reformatting the file
     must stay invisible to the comparator (it is semantic), while a
     value change must be reported *)
  let dir = Filename.temp_file "golden_report" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let name = List.hd Ck.Golden.report_names in
  Ck.Golden.update_report ~dir name;
  let file = Filename.concat dir (name ^ ".json") in
  let original = In_channel.with_open_text file In_channel.input_all in
  let write s = Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc s)
  in
  write ("\n  " ^ String.trim original ^ "\n\n");
  (match Ck.Golden.check_report ~dir name with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("reformatting must not register: " ^ e));
  let needle = {|"enqueued":|} in
  let i =
    match String.index_opt original '{' with
    | None -> Alcotest.fail "report is not an object"
    | Some _ ->
      let rec find i =
        if i + String.length needle > String.length original then
          Alcotest.fail "report has no enqueued field"
        else if String.sub original i (String.length needle) = needle then i
        else find (i + 1)
      in
      find 0
  in
  let j = i + String.length needle in
  write (String.sub original 0 j ^ "9" ^
         String.sub original j (String.length original - j));
  (match Ck.Golden.check_report ~dir name with
  | Ok () -> Alcotest.fail "value change must be detected"
  | Error e ->
    Alcotest.(check bool) "diagnostic pinpoints the divergence" true
      (String.length e > 0));
  Sys.remove file;
  Unix.rmdir dir

let test_golden_report_unknown_name () =
  Alcotest.(check bool) "unknown report rejected" true
    (try
       ignore (Ck.Golden.record_report "no-such-report");
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "band: around and edges" `Quick test_band_around;
    Alcotest.test_case "band: validation" `Quick test_band_validation;
    Alcotest.test_case "band: loss is multiplicative" `Quick
      test_band_loss_multiplicative;
    Alcotest.test_case "fault: down drops data and acks" `Quick
      test_fault_down_drops_everything;
    Alcotest.test_case "fault: burst spares acks" `Quick
      test_fault_burst_spares_acks;
    Alcotest.test_case "fault: schedule validation" `Quick
      test_fault_schedule_validation;
    Alcotest.test_case "fault: reorder delivers late" `Quick
      test_fault_reorder_delivers_late;
    Alcotest.test_case "conformance: fluid cross-validation" `Quick
      test_fluid_cross_cases_pass;
    Alcotest.test_case "conformance: fault recovery" `Slow
      test_fault_cases_pass;
    Alcotest.test_case "conformance: deterministic report" `Slow
      test_report_deterministic;
    Alcotest.test_case "conformance: missing metric fails" `Quick
      test_missing_metric_fails;
    Alcotest.test_case "conformance: report JSON shape" `Quick
      test_report_json_shape;
    Alcotest.test_case "diff: scenario A float vs fixed" `Slow
      test_diff_scenario_cases_pass;
    Alcotest.test_case "diff: scenarios B and C float vs fixed" `Slow
      test_diff_scenario_bc_cases_pass;
    Alcotest.test_case "diff: lockstep cwnd divergence bounded" `Quick
      test_diff_lockstep_bounded;
    Alcotest.test_case "diff: lockstep cases pass" `Quick
      test_diff_lockstep_cases_pass;
    Alcotest.test_case "diff: deterministic report" `Quick
      test_diff_report_deterministic;
    Alcotest.test_case "diff: kernel provenance present" `Quick
      test_diff_provenance_present;
    Alcotest.test_case "equilibrium: armed solve passes" `Quick
      test_armed_solve_passes;
    Alcotest.test_case "equilibrium: mis-converged point trips" `Quick
      test_misconverged_point_trips;
    Alcotest.test_case "equilibrium: dormant invariants quiet" `Quick
      test_dormant_invariants_stay_quiet;
    Alcotest.test_case "golden: canonical traces match" `Slow
      test_golden_all_match;
    Alcotest.test_case "golden: divergence detected" `Quick
      test_golden_detects_divergence;
    Alcotest.test_case "golden: unknown name" `Quick test_golden_unknown_name;
    Alcotest.test_case "golden: report matches" `Slow
      test_golden_report_matches;
    Alcotest.test_case "golden: report compare is semantic" `Slow
      test_golden_report_semantic_compare;
    Alcotest.test_case "golden: unknown report name" `Quick
      test_golden_report_unknown_name;
  ]
