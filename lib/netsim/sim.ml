(* Hierarchical timing wheel with pooled timer cells.

   Time is quantised to integer nanosecond ticks for *placement* only:
   the wheel orders events between slots, and each slot is drained into
   a "due" buffer sorted by the exact [float] dispatch key, so the tick
   quantisation is never observable. The key is [(time, sched,
   content, seq)]: [sched] is the clock value at the moment the timer
   was armed (cross-shard deliveries pass their source-shard egress
   time instead — see [schedule_pkt_at_sched]), and [content] orders
   same-instant packet deliveries by the packet's own header so that
   dispatch order does not depend on the shard count (see the dispatch
   order comment below). Four levels of 256 slots with a level-0
   granularity of 2^16 ns span ~3.26 simulated days; events beyond that
   live in a sorted spill list, and every spill tick is strictly
   greater than every wheel tick so the two never interleave.

   Cells are a pool indexed by small ints. The seven int fields of a
   cell are packed at stride 8 in one [int array] (one cache line per
   cell) and its three float fields at stride 4 in one [floatarray]
   (unboxed stores); the free list threads through the [next] field. A
   [Timer.t] handle packs the cell index with a generation stamp into
   one immediate int, so arming, firing, cancelling and re-arming a
   timer allocates nothing. *)

module Profile = Repro_obs.Profile
module Trace = Repro_obs.Trace

let bits = 8
let slots_per_level = 1 lsl bits (* 256 *)
let slot_mask = slots_per_level - 1
let levels = 4
let g0 = 16 (* level-0 slot width: 2^16 ns = 65.536 us *)
let shift k = g0 + (k * bits)
let sh0 = g0
let sh1 = g0 + bits
let sh2 = g0 + (2 * bits)
let sh3 = g0 + (3 * bits)
let sh4 = g0 + (4 * bits) (* 48: beyond this horizon, events spill *)
let idx_bits = 24 (* up to 16M live cells; generations in the rest *)
let idx_mask = (1 lsl idx_bits) - 1

(* [int_of_float] is unspecified out of range, so clamp absurd times to
   one huge shared tick; such events all land in the spill list, where
   ordering uses the exact floats anyway. *)
let huge_tick = max_int lsr 1

let[@inline] tick_of_time time =
  if time >= 4.0e9 then huge_tick else int_of_float (time *. 1e9)

(* Cell states. *)
let st_free = 0
let st_wheel = 1
let st_due = 2
let st_spill = 3
let st_running = 4 (* periodic timer inside its own callback *)
let st_cancelled = 5 (* periodic cancelled from inside its callback *)

let nil = -1
let nop () = ()
let pnop (_ : Packet.t) = ()

(* Offsets of a cell's int fields within its stride-8 block. *)
let o_tick = 0 (* placement tick *)
let o_seq = 1 (* tie-break: scheduling order *)
let o_gen = 2 (* bumped on free; stale-handle guard *)
let o_state = 3
let o_slot = 4 (* wheel cells: level*256 + slot index *)
let o_next = 5 (* slot/spill chain, free-list link *)
let o_prev = 6
let o_kind = 7 (* 1 when the callback is the packet fn, else 0 *)

type t = {
  (* --- cell pool (all grown together) --- *)
  mutable cap : int;
  mutable fl_ : floatarray;
      (* stride 4: exact fire time; period; scheduling time; (unused) *)
  mutable ints_ : int array; (* stride 8: the o_* fields above *)
  mutable fn_ : (unit -> unit) array;
  mutable pfn_ : (Packet.t -> unit) array;
  mutable pkt_ : Packet.t array;
  mutable free_head : int;
  (* --- wheel --- *)
  slots : int array; (* head cell per slot, levels*256, nil if empty *)
  occ : int array; (* occupancy bitmaps: 8 words of 32 bits per level *)
  summ : int array; (* per level: bit w set iff occ word w is nonzero *)
  mutable spill_head : int;
  mutable cur : int; (* wheel position: tick at the current slot base *)
  (* --- due buffer: the current slot, kept in dispatch order --- *)
  mutable due : int array;
  mutable due_head : int;
  mutable due_len : int;
  sentinel : Packet.t; (* parks the pkt_ slot of non-packet cells *)
  (* --- clock and counters --- *)
  clk : floatarray;
      (* one slot; a [mutable clock : float] field in this mixed record
         would box on every store — one minor alloc per dispatch *)
  stage : floatarray;
      (* two slots: staging area for passing the deadline (slot 0) and
         the scheduling time (slot 1) into the out-of-line scheduler
         without float arguments (float args box at call boundaries the
         inliner declines to erase) *)
  mutable next_seq : int;
  mutable len : int; (* pending timers *)
  mutable processed : int;
  mutable max_depth : int; (* high-water of [len] *)
}

(* Thread the free list through [o_next] and stamp fresh generations
   over [pool.(from * 8) ..] (field defaults elsewhere are all 0). *)
let init_cells pool ~from ~until =
  for i = from to until - 1 do
    let b = i lsl 3 in
    Array.unsafe_set pool (b + o_gen) 1;
    Array.unsafe_set pool (b + o_slot) nil;
    Array.unsafe_set pool (b + o_next) (if i + 1 < until then i + 1 else nil);
    Array.unsafe_set pool (b + o_prev) nil
  done

let create () =
  let cap = 256 in
  let sentinel = Packet.sentinel () in
  let ints_ = Array.make (cap * 8) 0 in
  init_cells ints_ ~from:0 ~until:cap;
  {
    cap;
    fl_ = Float.Array.make (cap * 4) 0.;
    ints_;
    fn_ = Array.make cap nop;
    pfn_ = Array.make cap pnop;
    pkt_ = Array.make cap sentinel;
    free_head = 0;
    slots = Array.make (levels * slots_per_level) nil;
    occ = Array.make (levels * 8) 0;
    summ = Array.make levels 0;
    spill_head = nil;
    cur = 0;
    due = Array.make 64 nil;
    due_head = 0;
    due_len = 0;
    sentinel;
    clk = Float.Array.make 1 0.;
    stage = Float.Array.make 2 0.;
    next_seq = 0;
    len = 0;
    processed = 0;
    max_depth = 0;
  }

type sim = t

(* Inlined so the float result stays in a register at call sites (the
   classical compiler boxes float returns across calls). *)
let[@inline] now t = Float.Array.unsafe_get t.clk 0
let pending t = t.len
let events_processed t = t.processed
let max_heap_depth t = t.max_depth

(* --- cell field accessors --- *)

let[@inline] get_time t c = Float.Array.unsafe_get t.fl_ (c lsl 2)
let[@inline] set_time t c v = Float.Array.unsafe_set t.fl_ (c lsl 2) v
let[@inline] get_period t c = Float.Array.unsafe_get t.fl_ ((c lsl 2) + 1)
let[@inline] set_period t c v = Float.Array.unsafe_set t.fl_ ((c lsl 2) + 1) v
let[@inline] get_sched t c = Float.Array.unsafe_get t.fl_ ((c lsl 2) + 2)
let[@inline] set_sched t c v = Float.Array.unsafe_set t.fl_ ((c lsl 2) + 2) v
let[@inline] get_tick t c = Array.unsafe_get t.ints_ ((c lsl 3) + o_tick)
let[@inline] set_tick t c v = Array.unsafe_set t.ints_ ((c lsl 3) + o_tick) v
let[@inline] get_seq t c = Array.unsafe_get t.ints_ ((c lsl 3) + o_seq)
let[@inline] set_seq t c v = Array.unsafe_set t.ints_ ((c lsl 3) + o_seq) v
let[@inline] get_gen t c = Array.unsafe_get t.ints_ ((c lsl 3) + o_gen)
let[@inline] set_gen t c v = Array.unsafe_set t.ints_ ((c lsl 3) + o_gen) v
let[@inline] get_state t c = Array.unsafe_get t.ints_ ((c lsl 3) + o_state)
let[@inline] set_state t c v = Array.unsafe_set t.ints_ ((c lsl 3) + o_state) v
let[@inline] get_slot t c = Array.unsafe_get t.ints_ ((c lsl 3) + o_slot)
let[@inline] set_slot t c v = Array.unsafe_set t.ints_ ((c lsl 3) + o_slot) v
let[@inline] get_next t c = Array.unsafe_get t.ints_ ((c lsl 3) + o_next)
let[@inline] set_next t c v = Array.unsafe_set t.ints_ ((c lsl 3) + o_next) v
let[@inline] get_prev t c = Array.unsafe_get t.ints_ ((c lsl 3) + o_prev)
let[@inline] set_prev t c v = Array.unsafe_set t.ints_ ((c lsl 3) + o_prev) v
let[@inline] get_kind t c = Array.unsafe_get t.ints_ ((c lsl 3) + o_kind)
let[@inline] set_kind t c v = Array.unsafe_set t.ints_ ((c lsl 3) + o_kind) v

(* --- cell pool --- *)

let grow t =
  let cap = t.cap in
  let cap' = 4 * cap in
  if cap' > idx_mask + 1 then invalid_arg "Sim: too many pending timers";
  let gi old init len len' =
    (* lint: allow R9 -- amortized cell-pool growth (4x doubling): absent once the wheel reaches its working set *)
    let a = Array.make len' init in
    Array.blit old 0 a 0 len;
    a
  in
  (* lint: allow R9 -- same amortized growth as [gi] above *)
  let fl = Float.Array.make (cap' * 4) 0. in
  Float.Array.blit t.fl_ 0 fl 0 (cap * 4);
  t.fl_ <- fl;
  t.ints_ <- gi t.ints_ 0 (cap * 8) (cap' * 8);
  init_cells t.ints_ ~from:cap ~until:cap';
  t.fn_ <- gi t.fn_ nop cap cap';
  t.pfn_ <- gi t.pfn_ pnop cap cap';
  t.pkt_ <- gi t.pkt_ t.sentinel cap cap';
  t.free_head <- cap;
  t.cap <- cap'

let alloc_cell t =
  if t.free_head = nil then grow t;
  let c = t.free_head in
  t.free_head <- get_next t c;
  c

(* Bump the generation so outstanding handles go stale. The callback
   and packet slots are deliberately NOT cleared: each clear is a
   [caml_modify] write barrier on the hottest path in the simulator,
   and a free cell's stale references die at the next reuse anyway.
   The retention this trades away is bounded by the pool size, and
   packets are owned by the packet pool regardless. The [o_kind] flag
   (set by every schedule) keeps a reused cell from dispatching a
   stale packet callback. *)
let free_cell t c =
  set_gen t c (get_gen t c + 1);
  set_state t c st_free;
  set_next t c t.free_head;
  t.free_head <- c

(* --- handles --- *)

let[@inline] handle_of t c = (get_gen t c lsl idx_bits) lor c

let cell_of t h =
  if h < 0 then nil
  else
    let c = h land idx_mask in
    if c < t.cap && get_state t c <> st_free && get_gen t c = h lsr idx_bits
    then c
    else nil

(* --- dispatch order ---

   Cells sort by [(time, sched)] first; at a full tie, closure timers
   dispatch before packet deliveries, packet deliveries order by their
   packet's own header fields, and arming order ([seq]) is the last
   resort. The content key is what makes sharded runs deterministic: a
   cross-shard arrival is re-materialized with exactly the header the
   sequential run's packet would carry at that hop, so breaking
   same-instant ties on content — rather than on arming order, which
   depends on when the window drain ran — keeps sharded dispatch
   identical to sequential dispatch. Same-instant collisions are common,
   not exotic: a backlogged queue emits packets on a lattice of
   transmission-time multiples, so disjoint equal-latency paths
   re-synchronize packets to exactly equal floats. Header comparisons
   use native int/float compares only, so scheduling stays
   allocation-free. *)

let pkt_cmp (a : Packet.t) (b : Packet.t) =
  if a == b then 0
  else
    let c = Int.compare a.Packet.flow b.Packet.flow in
    if c <> 0 then c
    else
      let c = Int.compare a.Packet.subflow b.Packet.subflow in
      if c <> 0 then c
      else
        let c = Int.compare a.Packet.seq b.Packet.seq in
        if c <> 0 then c
        else
          let c =
            Int.compare
              (Packet.kind_code a.Packet.kind)
              (Packet.kind_code b.Packet.kind)
          in
          if c <> 0 then c
          else
            let c = Int.compare a.Packet.hop b.Packet.hop in
            if c <> 0 then c
            else
              let c = Int.compare a.Packet.ackno b.Packet.ackno in
              if c <> 0 then c
              else
                let at = a.Packet.times and bt = b.Packet.times in
                if at.Packet.sent_at < bt.Packet.sent_at then -1
                else if at.Packet.sent_at > bt.Packet.sent_at then 1
                else if at.Packet.echo < bt.Packet.echo then -1
                else if at.Packet.echo > bt.Packet.echo then 1
                else if at.Packet.enqueued_at < bt.Packet.enqueued_at then -1
                else if at.Packet.enqueued_at > bt.Packet.enqueued_at then 1
                else 0

(* [true] iff cell [o] dispatches strictly after cell [c]. *)
let cell_after t o c =
  let ot = get_time t o and ct = get_time t c in
  if ot <> ct then ot > ct
  else
    let os = get_sched t o and cs = get_sched t c in
    if os <> cs then os > cs
    else
      let ok = get_kind t o and ck = get_kind t c in
      if ok <> ck then ok > ck
      else if ok = 1 then
        let pc =
          pkt_cmp (Array.unsafe_get t.pkt_ o) (Array.unsafe_get t.pkt_ c)
        in
        if pc <> 0 then pc > 0 else get_seq t o > get_seq t c
      else get_seq t o > get_seq t c

(* --- due buffer: cells of the current slot, kept in dispatch order --- *)

let due_grow t =
  (* lint: allow R9 -- amortized due-buffer growth: doubling, absent at steady state *)
  let a = Array.make (2 * Array.length t.due) nil in
  Array.blit t.due 0 a 0 t.due_len;
  t.due <- a

(* Shift larger entries one slot right, returning the insertion
   position; tail-recursive rather than a local [ref] so inserts stay
   allocation-free (R9). *)
let rec due_shift t c pos =
  if pos > t.due_head && cell_after t (Array.unsafe_get t.due (pos - 1)) c
  then begin
    Array.unsafe_set t.due pos (Array.unsafe_get t.due (pos - 1));
    due_shift t c (pos - 1)
  end
  else pos

(* Insert keeping dispatch order. Fresh arrivals carry the largest seq,
   so they nearly always sort last: scan from the tail. Only positions
   >= [due_head] move; the already-dispatched prefix stays put, so a
   dispatch in progress is unaffected. *)
let due_insert t c =
  if t.due_head = t.due_len then begin
    t.due_head <- 0;
    t.due_len <- 0
  end;
  if t.due_len = Array.length t.due then due_grow t;
  let pos = due_shift t c t.due_len in
  Array.unsafe_set t.due pos c;
  t.due_len <- t.due_len + 1;
  set_state t c st_due

let rec due_scan t c pos =
  if t.due.(pos) <> c then due_scan t c (pos + 1) else pos

let due_remove t c =
  let pos = due_scan t c t.due_head in
  Array.blit t.due (pos + 1) t.due pos (t.due_len - pos - 1);
  t.due_len <- t.due_len - 1

(* --- wheel slots --- *)

let[@inline] occ_set t level slot =
  let w = (level * 8) + (slot lsr 5) in
  Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (slot land 31)));
  Array.unsafe_set t.summ level
    (Array.unsafe_get t.summ level lor (1 lsl (slot lsr 5)))

let[@inline] occ_clear t level slot =
  let w = (level * 8) + (slot lsr 5) in
  Array.unsafe_set t.occ w
    (Array.unsafe_get t.occ w land lnot (1 lsl (slot land 31)));
  if Array.unsafe_get t.occ w = 0 then
    Array.unsafe_set t.summ level
      (Array.unsafe_get t.summ level land lnot (1 lsl (slot lsr 5)))

let wheel_push t c level slot =
  let s = (level * slots_per_level) + slot in
  let head = Array.unsafe_get t.slots s in
  set_next t c head;
  set_prev t c nil;
  if head <> nil then set_prev t head c;
  Array.unsafe_set t.slots s c;
  set_slot t c s;
  set_state t c st_wheel;
  if head = nil then occ_set t level slot

let wheel_unlink t c =
  let s = get_slot t c in
  let nx = get_next t c and pv = get_prev t c in
  if nx <> nil then set_prev t nx pv;
  if pv <> nil then set_next t pv nx
  else begin
    Array.unsafe_set t.slots s nx;
    if nx = nil then occ_clear t (s lsr bits) (s land slot_mask)
  end

(* --- spill list: sorted, for events beyond the wheel span --- *)

(* Walk to the first spill cell not dispatching strictly before [c];
   returns the predecessor (or [nil]) — tail-recursive rather than
   local [ref]s so inserts stay allocation-free (R9). *)
let rec spill_pos t c prev cur =
  if cur <> nil && cell_after t c cur then
    spill_pos t c cur (get_next t cur)
  else prev

let spill_insert t c =
  let prev = spill_pos t c nil t.spill_head in
  let cur = if prev = nil then t.spill_head else get_next t prev in
  set_next t c cur;
  set_prev t c prev;
  if cur <> nil then set_prev t cur c;
  if prev <> nil then set_next t prev c else t.spill_head <- c;
  set_slot t c nil;
  set_state t c st_spill

let spill_unlink t c =
  let nx = get_next t c and pv = get_prev t c in
  if nx <> nil then set_prev t nx pv;
  if pv <> nil then set_next t pv nx else t.spill_head <- nx

(* Place a cell relative to the wheel position [t.cur]: into the due
   buffer if its slot is at or behind the current one (run_until can
   park the wheel ahead of the clock, so "behind" is reachable), else
   into the innermost level whose parent slot it shares with [t.cur],
   else into the spill list. *)
let place t c =
  let tick = get_tick t c in
  let cur = t.cur in
  if tick lsr sh0 <= cur lsr sh0 then due_insert t c
  else if tick lsr sh1 = cur lsr sh1 then
    wheel_push t c 0 ((tick lsr sh0) land slot_mask)
  else if tick lsr sh2 = cur lsr sh2 then
    wheel_push t c 1 ((tick lsr sh1) land slot_mask)
  else if tick lsr sh3 = cur lsr sh3 then
    wheel_push t c 2 ((tick lsr sh2) land slot_mask)
  else if tick lsr sh4 = cur lsr sh4 then
    wheel_push t c 3 ((tick lsr sh3) land slot_mask)
  else spill_insert t c

let unlink t c =
  let st = get_state t c in
  if st = st_wheel then wheel_unlink t c
  else if st = st_due then due_remove t c
  else if st = st_spill then spill_unlink t c

(* --- advancing the wheel --- *)

let[@inline] ctz word =
  let x = ref (word land -word) and n = ref 0 in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* First occupied slot with index > [after] at [level], or -1. The
   summary word finds the first nonzero occupancy word in O(1), so a
   miss costs two masked loads instead of a walk over all 8 words. *)
let scan_occ t level after =
  let from = after + 1 in
  if from >= slots_per_level then -1
  else begin
    let base = level * 8 in
    let w0 = from lsr 5 in
    let word = Array.unsafe_get t.occ (base + w0) land (-1 lsl (from land 31)) in
    if word <> 0 then (w0 lsl 5) + ctz word
    else begin
      let rest = Array.unsafe_get t.summ level land (-2 lsl w0) in
      if rest = 0 then -1
      else begin
        let w = ctz rest in
        (w lsl 5) + ctz (Array.unsafe_get t.occ (base + w))
      end
    end
  end

let take_slot t level slot =
  let s = (level * slots_per_level) + slot in
  let head = Array.unsafe_get t.slots s in
  Array.unsafe_set t.slots s nil;
  occ_clear t level slot;
  head

(* Refill the due buffer: advance [t.cur] to the next occupied level-0
   slot and drain it, cascading an outer slot inward (or pulling the
   next rotation's worth of spill cells in) when level 0 is exhausted.
   Precondition: [t.len > 0]. *)
let rec advance t =
  if t.due_head >= t.due_len then begin
    let s0 = scan_occ t 0 ((t.cur lsr sh0) land slot_mask) in
    if s0 >= 0 then begin
      t.cur <- ((t.cur lsr sh1) lsl sh1) lor (s0 lsl sh0);
      let c = ref (take_slot t 0 s0) in
      while !c <> nil do
        let nx = get_next t !c in
        due_insert t !c;
        c := nx
      done
    end
    else begin
      let cascaded = ref false in
      let level = ref 1 in
      while (not !cascaded) && !level < levels do
        let k = !level in
        let s = scan_occ t k ((t.cur lsr shift k) land slot_mask) in
        if s >= 0 then begin
          let up = shift (k + 1) in
          t.cur <- ((t.cur lsr up) lsl up) lor (s lsl shift k);
          let head = take_slot t k s in
          if head <> nil && get_next t head = nil then begin
            (* Single cell: it is the earliest pending event overall
               (this was the first occupied slot of the innermost
               occupied level), so skip the level-by-level re-descent
               and park the wheel right at its level-0 slot. *)
            t.cur <- (get_tick t head lsr sh0) lsl sh0;
            due_insert t head
          end
          else begin
            let c = ref head in
            while !c <> nil do
              let nx = get_next t !c in
              place t !c;
              c := nx
            done
          end;
          cascaded := true
        end
        else incr level
      done;
      if not !cascaded then begin
        (* Wheel empty: jump to the spill head's rotation and pull in
           every spill cell that now fits the wheel span. *)
        t.cur <- get_tick t t.spill_head;
        let c = ref t.spill_head in
        while !c <> nil && get_tick t !c lsr sh4 = t.cur lsr sh4 do
          let nx = get_next t !c in
          spill_unlink t !c;
          place t !c;
          c := nx
        done
      end;
      advance t
    end
  end

(* --- scheduling --- *)

(* The scheduling time rides in stage slot 1: the inlined wrappers
   store the current clock there, and [Shard.deliver]'s sched-override
   entry point stores the message's original egress time instead.
   Placement is a separate step ([commit_cell]) because the dispatch
   comparator reads the cell's kind and packet, which the caller
   attaches between the two. *)
let[@inline] schedule_cell t time =
  let c = alloc_cell t in
  set_time t c time;
  set_period t c 0.;
  set_sched t c (Float.Array.unsafe_get t.stage 1);
  set_kind t c 0;
  set_tick t c (tick_of_time time);
  set_seq t c t.next_seq;
  t.next_seq <- t.next_seq + 1;
  c

let[@inline] commit_cell t c =
  place t c;
  t.len <- t.len + 1;
  if t.len > t.max_depth then t.max_depth <- t.len

(* [time -. time] is 0 exactly for finite floats, nan otherwise. *)
let[@inline] check_time t time =
  if time -. time <> 0. then invalid_arg "Sim.schedule_at: non-finite time";
  if time < Float.Array.unsafe_get t.clk 0 then
    invalid_arg "Sim.schedule_at: time in the past"

(* The out-of-line scheduler bodies take the deadline through [t.stage]
   rather than a float parameter: the inlined wrappers below store the
   caller's (unboxed) float there, so no box is ever materialised on
   the schedule path. *)
let schedule_staged ?(src = "other") t fn =
  let time = Float.Array.unsafe_get t.stage 0 in
  check_time t time;
  (* Profiling wraps at scheduling time, not in the dispatch loop, so
     the profiling-off cost is this one ref read. *)
  let fn =
    if Profile.enabled () then fun () -> Profile.dispatch ~src fn else fn
  in
  let c = schedule_cell t time in
  Array.unsafe_set t.fn_ c fn;
  commit_cell t c;
  handle_of t c

let[@inline] schedule_at ?src t time fn =
  Float.Array.unsafe_set t.stage 0 time;
  Float.Array.unsafe_set t.stage 1 (Float.Array.unsafe_get t.clk 0);
  schedule_staged ?src t fn

let[@inline] schedule_after ?src t delay fn =
  Float.Array.unsafe_set t.stage 0 (Float.Array.unsafe_get t.clk 0 +. delay);
  Float.Array.unsafe_set t.stage 1 (Float.Array.unsafe_get t.clk 0);
  schedule_staged ?src t fn

let schedule_pkt_staged ?(src = "other") t fn p =
  let time = Float.Array.unsafe_get t.stage 0 in
  check_time t time;
  let c = schedule_cell t time in
  set_kind t c 1;
  (* Even when profiling wraps the callback, the cell stays a packet
     cell: the dispatch comparator must see the same content key whether
     or not profiling is armed, or arming the profiler would change
     same-instant tie resolution (and with it the simulation). *)
  let fn =
    if Profile.enabled () then fun q -> Profile.dispatch ~src (fun () -> fn q)
    else fn
  in
  Array.unsafe_set t.pfn_ c fn;
  Array.unsafe_set t.pkt_ c p;
  commit_cell t c;
  handle_of t c

let[@inline] schedule_pkt_at ?src t time fn p =
  Float.Array.unsafe_set t.stage 0 time;
  Float.Array.unsafe_set t.stage 1 (Float.Array.unsafe_get t.clk 0);
  schedule_pkt_staged ?src t fn p

let[@inline] schedule_pkt_after ?src t delay fn p =
  Float.Array.unsafe_set t.stage 0 (Float.Array.unsafe_get t.clk 0 +. delay);
  Float.Array.unsafe_set t.stage 1 (Float.Array.unsafe_get t.clk 0);
  schedule_pkt_staged ?src t fn p

(* Cross-shard delivery: schedule at [time] but break same-instant ties
   as if the timer had been armed at [sched] — the egress time on the
   source shard, i.e. exactly when the sequential run's propagation
   pipe would have scheduled this arrival. [sched] may lie in the past;
   it is an ordering key, not a deadline. *)
let[@inline] schedule_pkt_at_sched ?src t ~sched time fn p =
  Float.Array.unsafe_set t.stage 0 time;
  Float.Array.unsafe_set t.stage 1 sched;
  schedule_pkt_staged ?src t fn p

let every ?(src = "other") ?start t period fn =
  if not (period -. period = 0. && period > 0.) then
    invalid_arg "Sim.every: period must be finite and positive";
  let start =
    match start with
    | Some s -> s
    | None -> Float.Array.unsafe_get t.clk 0 +. period
  in
  check_time t start;
  let fn =
    if Profile.enabled () then fun () -> Profile.dispatch ~src fn else fn
  in
  Float.Array.unsafe_set t.stage 1 (Float.Array.unsafe_get t.clk 0);
  let c = schedule_cell t start in
  set_period t c period;
  t.fn_.(c) <- fn;
  commit_cell t c;
  handle_of t c

(* --- timer operations --- *)

let timer_active t h =
  let c = cell_of t h in
  c <> nil && get_state t c <> st_cancelled

let timer_cancel t h =
  let c = cell_of t h in
  if c <> nil then
    if get_state t c = st_running then
      (* A periodic timer cancelling itself mid-callback: the dispatcher
         already took it off the books; just stop the re-arm. *)
      set_state t c st_cancelled
    else if get_state t c <> st_cancelled then begin
      unlink t c;
      t.len <- t.len - 1;
      free_cell t c
    end

let reschedule_staged t h =
  let time = Float.Array.unsafe_get t.stage 0 in
  let c = cell_of t h in
  if c = nil then invalid_arg "Sim.Timer.reschedule: timer not active";
  if get_period t c > 0. then
    invalid_arg "Sim.Timer.reschedule: timer is periodic";
  if time -. time <> 0. then
    invalid_arg "Sim.Timer.reschedule: non-finite time";
  if time < Float.Array.unsafe_get t.clk 0 then
    invalid_arg "Sim.Timer.reschedule: time in the past";
  unlink t c;
  set_time t c time;
  set_sched t c (Float.Array.unsafe_get t.clk 0);
  set_tick t c (tick_of_time time);
  set_seq t c t.next_seq;
  t.next_seq <- t.next_seq + 1;
  place t c

module Timer = struct
  type nonrec t = int

  let none = -1
  let active = timer_active
  let cancel = timer_cancel

  let[@inline] reschedule t h time =
    Float.Array.unsafe_set t.stage 0 time;
    reschedule_staged t h
end

(* --- dispatch --- *)

let[@olia.alloc_free] dispatch t =
  let c = Array.unsafe_get t.due t.due_head in
  t.due_head <- t.due_head + 1;
  let time = get_time t c in
  if Invariant.enabled () then
    Invariant.require
      (time >= Float.Array.unsafe_get t.clk 0)
      "Sim: dispatch clock went backward";
  Float.Array.unsafe_set t.clk 0 time;
  t.processed <- t.processed + 1;
  t.len <- t.len - 1;
  let period = get_period t c in
  if period > 0. then begin
    if Trace.enabled () then
      Trace.set_dispatch_ctx ~sched:(get_sched t c) ~cls:0 ~flow:0 ~subflow:0
        ~pseq:0 ~kind:0;
    set_state t c st_running;
    (Array.unsafe_get t.fn_ c) ();
    if get_state t c = st_running then begin
      (* Re-arm in place: same cell, same handle, fresh seq — taken
         exactly where the old tail-recursive [schedule_after] idiom
         took its seq, after the callback body. The clock equals [time]
         here, so [sched = time] is the arming-time clock. *)
      let time' = time +. period in
      set_time t c time';
      set_sched t c time;
      set_tick t c (tick_of_time time');
      set_seq t c t.next_seq;
      t.next_seq <- t.next_seq + 1;
      place t c;
      t.len <- t.len + 1;
      if t.len > t.max_depth then t.max_depth <- t.len
    end
    else free_cell t c
  end
  else if get_kind t c = 1 then begin
    let pfn = Array.unsafe_get t.pfn_ c in
    let pkt = Array.unsafe_get t.pkt_ c in
    if Trace.enabled () then
      Trace.set_dispatch_ctx ~sched:(get_sched t c) ~cls:1
        ~flow:pkt.Packet.flow ~subflow:pkt.Packet.subflow ~pseq:pkt.Packet.seq
        ~kind:(Packet.kind_code pkt.Packet.kind);
    (* Free before running so the callback can reuse the cell at once;
       its handle is already stale (generation bumped). *)
    free_cell t c;
    pfn pkt
  end
  else begin
    let fn = Array.unsafe_get t.fn_ c in
    if Trace.enabled () then
      Trace.set_dispatch_ctx ~sched:(get_sched t c) ~cls:0 ~flow:0 ~subflow:0
        ~pseq:0 ~kind:0;
    free_cell t c;
    fn ()
  end

let run_until t horizon =
  let continue = ref true in
  while !continue && t.len > 0 do
    if t.due_head >= t.due_len then advance t;
    (* peek inline: calling a float-returning helper would box the
       peeked time once per dispatched event *)
    if get_time t (Array.unsafe_get t.due t.due_head) > horizon then
      continue := false
    else dispatch t
  done;
  if Float.Array.unsafe_get t.clk 0 < horizon then
    Float.Array.unsafe_set t.clk 0 horizon

let run t =
  while t.len > 0 do
    if t.due_head >= t.due_len then advance t;
    dispatch t
  done
