lib/netsim/lossy.ml: Packet Rng
