lib/netsim/cbr.mli: Packet Sim
