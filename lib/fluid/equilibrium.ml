type algorithm = Uncoupled | Lia | Olia | Olia_probing

type options = {
  damping : float;
  max_iter : int;
  tol : float;
  min_loss : float;
}

let default_options =
  { damping = 0.05; max_iter = 50_000; tol = 1e-9; min_loss = 1e-10 }

let target_rates algo (user : Network_model.user) losses =
  let paths =
    Array.to_list
      (Array.mapi
         (fun r (route : Network_model.route) ->
           { Tcp_model.loss = losses.(r); rtt = route.rtt })
         user.routes)
  in
  let rates =
    match algo with
    | Uncoupled -> List.map Tcp_model.tcp_rate paths
    | Lia -> Tcp_model.lia_rates paths
    | Olia -> Tcp_model.olia_rates paths
    | Olia_probing -> Tcp_model.olia_rates_with_probing paths
  in
  Array.of_list rates

(* Worst relative gap between [x] and the rates the algorithm would
   pick at the losses [x] itself induces — zero exactly at a fixed
   point. Reported in the same units as the iteration's convergence
   test so the bound below follows from [max_change < tol]. *)
let residual ?(min_loss = default_options.min_loss) net algo x =
  let loads = Network_model.link_loads net x in
  let link_p =
    Array.mapi
      (fun i l -> Network_model.link_loss l loads.(i))
      net.Network_model.links
  in
  let route_p = Network_model.route_losses net link_p in
  let worst = ref 0. in
  Array.iteri
    (fun u (user : Network_model.user) ->
      let losses = Array.map (fun p -> Stdlib.max p min_loss) route_p.(u) in
      let target = target_rates algo user losses in
      Array.iteri
        (fun r xt ->
          let scale = Stdlib.max (abs_float x.(u).(r)) 1e-9 in
          let gap = abs_float (xt -. x.(u).(r)) /. scale in
          if gap > !worst then worst := gap)
        target)
    net.Network_model.users;
  !worst

(* A damped step that moved less than [tol·scale] means the gap to the
   target was below [tol/damping·scale]; allow 50× slack for the
   target map's own sensitivity between the last two iterates. *)
let residual_bound options = 50. *. options.tol /. options.damping

let check_fixed_point ?(options = default_options) net algo x =
  if Invariant.enabled () then begin
    let r = residual ~min_loss:options.min_loss net algo x in
    Invariant.require (Float.is_finite r)
      "Equilibrium: non-finite residual at claimed fixed point";
    Invariant.require
      (r <= residual_bound options)
      (Printf.sprintf
         "Equilibrium: residual %.3g exceeds solver bound %.3g" r
         (residual_bound options))
  end

let solve ?(options = default_options) net algo =
  Network_model.validate net;
  let { damping; max_iter; tol; min_loss } = options in
  let x =
    Array.map
      (fun (u : Network_model.user) ->
        (* Start from a modest rate on every route. *)
        Array.map
          (fun (r : Network_model.route) ->
            net.Network_model.links.(r.links.(0)).capacity
            /. float_of_int (Network_model.route_count net))
          u.routes)
      net.Network_model.users
  in
  let rec iterate k =
    if k >= max_iter then failwith "Equilibrium.solve: no convergence";
    let loads = Network_model.link_loads net x in
    let link_p =
      Array.mapi (fun i l -> Network_model.link_loss l loads.(i)) net.links
    in
    let route_p = Network_model.route_losses net link_p in
    let max_change = ref 0. in
    Array.iteri
      (fun u (user : Network_model.user) ->
        let losses = Array.map (fun p -> Stdlib.max p min_loss) route_p.(u) in
        let target = target_rates algo user losses in
        Array.iteri
          (fun r xt ->
            let old = x.(u).(r) in
            let next = ((1. -. damping) *. old) +. (damping *. xt) in
            x.(u).(r) <- next;
            let scale = Stdlib.max (abs_float old) 1e-9 in
            let change = abs_float (next -. old) /. scale in
            if change > !max_change then max_change := change)
          target)
      net.users;
    if !max_change < tol then begin
      check_fixed_point ~options net algo x;
      x
    end
    else iterate (k + 1)
  in
  iterate 0

let user_utilities net x =
  Array.mapi
    (fun u (user : Network_model.user) ->
      let acc = ref 0. in
      Array.iteri
        (fun r (route : Network_model.route) ->
          acc := !acc +. (x.(u).(r) /. (route.rtt *. route.rtt)))
        user.routes;
      !acc)
    net.Network_model.users

(* SplitMix64-style scalar generator for reproducible perturbations. *)
let next_float state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

let pareto_witness ?(trials = 2000) ?(step = 0.05) ~seed net x =
  let state = ref (Int64.of_int seed) in
  let base_util = user_utilities net x in
  let base_cost = Network_model.congestion_cost net x in
  let nu = Array.length net.Network_model.users in
  let tol = 1e-9 in
  let perturb () =
    Array.mapi
      (fun u xu ->
        Array.mapi
          (fun r xr ->
            let scale =
              Stdlib.max xr
                (0.1
                *. net.Network_model.links.((net.users.(u).routes.(r)).links.(0))
                     .capacity)
            in
            let delta = (next_float state -. 0.5) *. 2. *. step *. scale in
            Stdlib.max 0. (xr +. delta))
          xu)
      x
  in
  let dominates x' =
    let util' = user_utilities net x' in
    let cost' = Network_model.congestion_cost net x' in
    if cost' > base_cost +. tol then false
    else
      let strictly_better = ref false in
      let never_worse = ref true in
      for u = 0 to nu - 1 do
        if util'.(u) < base_util.(u) -. tol then never_worse := false;
        if util'.(u) > base_util.(u) +. tol then strictly_better := true
      done;
      !never_worse && !strictly_better
  in
  let rec search k =
    if k = 0 then None
    else
      let x' = perturb () in
      if dominates x' then Some x' else search (k - 1)
  in
  search trials
