type options = {
  dt : float;
  t_end : float;
  min_rate : float;
  set_tolerance : float;
}

let default_options =
  { dt = 1e-3; t_end = 400.; min_rate = 1e-3; set_tolerance = 0.02 }

type result = {
  rates : float array array;
  utility_trace : (float * float) array;
  alpha_trace : (float * float array array) array;
}

(* Membership of route r in the "max" set of a score array, within a
   relative tolerance. *)
let member_mask ~tolerance scores =
  let best = Array.fold_left Stdlib.max neg_infinity scores in
  Array.map (fun s -> s >= best *. (1. -. tolerance) && best > 0.) scores

let alphas ~tolerance (user : Network_model.user) ~x ~losses =
  let nr = Array.length user.routes in
  let windows =
    Array.mapi (fun r (route : Network_model.route) -> x.(r) *. route.rtt)
      user.routes
  in
  (* l_r ≈ 1/p_r, so l_r/rtt² ranks paths by (presumed) TCP rate². *)
  let quality =
    Array.mapi
      (fun r (route : Network_model.route) ->
        1. /. (Stdlib.max losses.(r) 1e-12 *. route.rtt *. route.rtt))
      user.routes
  in
  let in_m = member_mask ~tolerance windows in
  let in_b = member_mask ~tolerance quality in
  let b_minus_m = Array.init nr (fun r -> in_b.(r) && not in_m.(r)) in
  let count mask = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mask in
  let n_bm = count b_minus_m and n_m = count in_m in
  let inv_ru = 1. /. float_of_int nr in
  Array.init nr (fun r ->
      if n_bm = 0 then 0.
      else if b_minus_m.(r) then inv_ru /. float_of_int n_bm
      else if in_m.(r) then -.inv_ru /. float_of_int n_m
      else 0.)

let derivative ?(set_tolerance = default_options.set_tolerance) net x =
  let loads = Network_model.link_loads net x in
  let link_p =
    Array.mapi (fun i l -> Network_model.link_loss l loads.(i))
      net.Network_model.links
  in
  let route_p = Network_model.route_losses net link_p in
  Array.mapi
    (fun u (user : Network_model.user) ->
      let total = Array.fold_left ( +. ) 0. x.(u) in
      let total2 = Stdlib.max (total *. total) 1e-12 in
      let alpha = alphas ~tolerance:set_tolerance user ~x:x.(u)
          ~losses:route_p.(u) in
      Array.mapi
        (fun r (route : Network_model.route) ->
          let xr = x.(u).(r) in
          let rtt2 = route.rtt *. route.rtt in
          (xr *. xr *. ((1. /. rtt2 /. total2) -. (route_p.(u).(r) /. 2.)))
          +. (alpha.(r) /. rtt2))
        user.routes)
    net.Network_model.users

let uniform_start net ~rate =
  Array.map
    (fun (u : Network_model.user) -> Array.map (fun _ -> rate) u.routes)
    net.Network_model.users

let integrate ?(options = default_options) net ~x0 =
  Network_model.validate net;
  let { dt; t_end; min_rate; set_tolerance } = options in
  let x = Array.map Array.copy x0 in
  let steps = int_of_float (ceil (t_end /. dt)) in
  let sample_every = Stdlib.max 1 (steps / 400) in
  let utility = ref [] and alpha_samples = ref [] in
  for step = 0 to steps - 1 do
    let t = float_of_int step *. dt in
    let dx = derivative ~set_tolerance net x in
    Array.iteri
      (fun u xu ->
        Array.iteri
          (fun r xr ->
            xu.(r) <- Stdlib.max min_rate (xr +. (dt *. dx.(u).(r))))
          (Array.copy xu))
      x;
    if step mod sample_every = 0 then begin
      utility := (t, Network_model.utility_v net x) :: !utility;
      let loads = Network_model.link_loads net x in
      let link_p =
        Array.mapi (fun i l -> Network_model.link_loss l loads.(i))
          net.Network_model.links
      in
      let route_p = Network_model.route_losses net link_p in
      let a =
        Array.mapi
          (fun u user ->
            alphas ~tolerance:set_tolerance user ~x:x.(u) ~losses:route_p.(u))
          net.Network_model.users
      in
      alpha_samples := (t, a) :: !alpha_samples
    end
  done;
  {
    rates = x;
    utility_trace = Array.of_list (List.rev !utility);
    alpha_trace = Array.of_list (List.rev !alpha_samples);
  }
