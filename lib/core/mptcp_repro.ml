(** Umbrella module of the OLIA reproduction: one alias per subsystem.

    - {!Cc} — the congestion-control algorithms (OLIA, LIA, the ε-coupled
      family, Reno, BALIA), the paper's primary contribution;
    - {!Fluid} — fixed-point and differential-inclusion models
      (Scenarios A/B/C, the probing-cost optima, Theorems 1/3/4);
    - {!Netsim} — the packet-level discrete-event simulator (TCP/MPTCP
      endpoints, RED and DropTail queues, pipes);
    - {!Topology} — duplex links and the k-ary FatTree;
    - {!Workload} — traffic generators;
    - {!Scenarios} — ready-made builds of every experiment in the paper,
      plus the name-based {!Scenarios.Registry};
    - {!Exp} — the uniform experiment API and the multicore
      parameter-sweep engine;
    - {!Obs} — the observability layer: structured event tracing,
      per-run counters/timers, and perf snapshots for the CI gate;
    - {!Check} — the differential conformance harness: sim-vs-fluid
      tolerance bands, fault-recovery scenarios and golden-trace
      regression;
    - {!Stats} — summaries, histograms, time series, table printing and
      the CSV/JSON emitters. *)

module Cc = struct
  module Types = Repro_cc.Cc_types
  module Reno = Repro_cc.Reno
  module Lia = Repro_cc.Lia
  module Olia = Repro_cc.Olia
  module Coupled = Repro_cc.Coupled
  module Balia = Repro_cc.Balia
  module Fixedpoint = Repro_cc.Fixedpoint
  module Olia_fp = Repro_cc.Olia_fp
  module Balia_fp = Repro_cc.Balia_fp
  module Cubic = Repro_cc.Cubic
  module Scalable = Repro_cc.Scalable
  module Wvegas = Repro_cc.Wvegas
  module Registry = Repro_cc.Registry
end

module Fluid = struct
  module Units = Repro_fluid.Units
  module Invariant = Repro_fluid.Invariant
  module Roots = Repro_fluid.Roots
  module Tcp_model = Repro_fluid.Tcp_model
  module Scenario_a = Repro_fluid.Scenario_a
  module Scenario_b = Repro_fluid.Scenario_b
  module Scenario_c = Repro_fluid.Scenario_c
  module Network_model = Repro_fluid.Network_model
  module Equilibrium = Repro_fluid.Equilibrium
  module Olia_ode = Repro_fluid.Olia_ode
  module Lia_ode = Repro_fluid.Lia_ode
end

module Netsim = struct
  module Sim = Repro_netsim.Sim
  module Rng = Repro_netsim.Rng
  module Invariant = Repro_netsim.Invariant
  module Packet = Repro_netsim.Packet
  module Queue = Repro_netsim.Queue
  module Pipe = Repro_netsim.Pipe
  module Tcp = Repro_netsim.Tcp
  module Cbr = Repro_netsim.Cbr
  module Path_manager = Repro_netsim.Path_manager
  module Monitor = Repro_netsim.Monitor
  module Lossy = Repro_netsim.Lossy
  module Fault = Repro_netsim.Fault
  module Shard = Repro_netsim.Shard
end

module Topology = struct
  module Duplex = Repro_topology.Duplex
  module Fattree = Repro_topology.Fattree
  module Fattree_pods = Repro_topology.Fattree_pods
  module Graph = Repro_topology.Graph
  module Builder = Repro_topology.Builder
end

module Workload = Repro_workload.Workload

module Exp = struct
  module Spec = Repro_exp.Spec
  module Outcome = Repro_exp.Outcome
  module Scenario_intf = Repro_exp.Scenario_intf
  module Sweep = Repro_exp.Sweep
end

module Obs = struct
  module Trace = Repro_obs.Trace
  module Meter = Repro_obs.Meter
  module Snapshot = Repro_obs.Snapshot
  module Report = Repro_obs.Report
  module Profile = Repro_obs.Profile
end

module Check = struct
  module Band = Repro_check.Band
  module Faults = Repro_check.Faults
  module Conformance = Repro_check.Conformance
  module Diff = Repro_check.Diff
  module Golden = Repro_check.Golden
end

module Scenarios = struct
  module Common = Repro_scenarios.Common
  module Registry = Repro_scenarios.Registry
  module Scen_a = Repro_scenarios.Scen_a
  module Scen_b = Repro_scenarios.Scen_b
  module Scen_c = Repro_scenarios.Scen_c
  module Two_bottleneck = Repro_scenarios.Two_bottleneck
  module Responsiveness = Repro_scenarios.Responsiveness
  module Wireless = Repro_scenarios.Wireless
  module Fattree_static = Repro_scenarios.Fattree_static
  module Fattree_dynamic = Repro_scenarios.Fattree_dynamic
  module Fattree_sharded = Repro_scenarios.Fattree_sharded
end

module Stats = struct
  module Summary = Repro_stats.Summary
  module Histogram = Repro_stats.Histogram
  module Timeseries = Repro_stats.Timeseries
  module Table = Repro_stats.Table
  module Csv = Repro_stats.Csv
  module Json = Repro_stats.Json
end
