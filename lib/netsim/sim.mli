(** Discrete-event simulation core: a clock and a time-ordered set of
    timers. Events at equal times fire in scheduling order, so runs are
    deterministic.

    Internally the scheduler is a hierarchical timing wheel over
    ns-resolution integer ticks (four levels of 256 slots; events beyond
    the wheel horizon fall back to a sorted spill list). Dispatch order
    is [(time, sched, seq)] using the exact [float] times, where [sched]
    is the clock value at the moment the timer was armed: within one
    simulator [sched] is non-decreasing in [seq], so this orders exactly
    like the old binary heap's [(time, seq)] — the middle key exists for
    cross-shard deliveries ({!schedule_pkt_at_sched}), which carry the
    arming time a sequential run would have used so that a sharded run
    breaks same-instant ties identically. The tick quantisation is never
    observable.

    Timer cells are pooled in free lists and handles are unboxed
    integers, so the steady-state schedule/cancel/reschedule cycle of a
    well-behaved component (one persistent timer, re-armed in place)
    allocates nothing. *)

type t

type sim = t
(** Alias so {!Timer}'s signature can refer to the simulator type. *)

(** Cancellable timer handles.

    A handle names one scheduled occurrence. It is an unboxed integer
    carrying a generation stamp: once the timer has fired or been
    cancelled, the handle goes stale and every operation on it is
    either a no-op ([cancel]) or an error ([reschedule]), never a
    corruption of an unrelated timer that happens to reuse the cell. *)
module Timer : sig
  type t

  val none : t
  (** A handle that is never active: the right initial value for a
      mutable timer field. *)

  val active : sim -> t -> bool
  (** [active sim h] is [true] while the timer is scheduled and has not
      yet fired or been cancelled. A periodic timer is also active
      while its callback is running (it will re-arm unless cancelled). *)

  val cancel : sim -> t -> unit
  (** Cancel the timer. A no-op on a stale handle (already fired or
      cancelled), so callers need not track firing themselves. A
      periodic timer cancelled from inside its own callback does not
      re-arm. *)

  val reschedule : sim -> t -> float -> unit
  (** [reschedule sim h time] moves a pending one-shot timer to [time],
      keeping its callback and handle but taking a fresh tie-break
      sequence number (exactly as if it had been cancelled and
      scheduled anew at this instant). Raises [Invalid_argument] if the
      handle is stale, the timer is periodic, [time] is not finite, or
      [time] is in the past (rescheduling backward across [now] is
      rejected). *)
end

val create : unit -> t
(** A simulator at time 0 with no events. *)

val now : t -> float
(** Current simulated time, seconds. *)

val schedule_at : ?src:string -> t -> float -> (unit -> unit) -> Timer.t
(** [schedule_at t time fn] runs [fn] when the clock reaches [time] and
    returns a handle for cancellation. Raises [Invalid_argument] if
    [time] is in the past or not finite (NaN and infinities are
    rejected rather than silently misordering the schedule). [src]
    labels the event source for [Repro_obs.Profile] attribution
    (default ["other"]); when profiling is armed at scheduling time the
    callback is wrapped to account its dispatch count and wall time,
    otherwise the label costs nothing. *)

val schedule_after : ?src:string -> t -> float -> (unit -> unit) -> Timer.t
(** [schedule_after t delay fn] = [schedule_at t (now t +. delay) fn]. *)

val schedule_pkt_at :
  ?src:string -> t -> float -> (Packet.t -> unit) -> Packet.t -> Timer.t
(** [schedule_pkt_at t time fn p] runs [fn p] when the clock reaches
    [time]. The packet rides in the pooled timer cell itself, so
    scheduling a delivery costs no closure allocation: pass a static
    function (for example [Packet.forward]) and the whole operation is
    allocation-free. Semantics otherwise as {!schedule_at}. *)

val schedule_pkt_after :
  ?src:string -> t -> float -> (Packet.t -> unit) -> Packet.t -> Timer.t
(** Delay form of {!schedule_pkt_at}. *)

val schedule_pkt_at_sched :
  ?src:string ->
  t ->
  sched:float ->
  float ->
  (Packet.t -> unit) ->
  Packet.t ->
  Timer.t
(** [schedule_pkt_at_sched t ~sched time fn p] is {!schedule_pkt_at}
    with an explicit tie-break key: same-instant events dispatch as if
    this timer had been armed when the clock read [sched] rather than
    now. [Shard.deliver] passes the message's egress time on the source
    shard — the instant the sequential run's propagation pipe would
    have scheduled the arrival — so sharded and sequential runs order
    same-instant ties identically. [sched] may lie in the past; it is
    an ordering key, not a deadline. *)

val every : ?src:string -> ?start:float -> t -> float -> (unit -> unit) -> Timer.t
(** [every t period fn] runs [fn] at [start] (default [now t +. period])
    and then every [period] seconds until the returned timer is
    cancelled — the one sanctioned way to stop it is
    [Timer.cancel t h] (typically from inside [fn] itself). The re-arm
    happens after [fn] returns and reuses the same cell and handle, so
    a periodic tick allocates nothing and its tie-break sequence number
    is taken exactly where the old hand-rolled [let rec tick () = ...;
    schedule_after t period tick] idiom took it. Raises
    [Invalid_argument] if [period] is not finite and positive, or
    [start] is in the past. *)

val run_until : t -> float -> unit
(** Process events in order until no event remains at or before the
    horizon; the clock ends at the horizon. *)

val run : t -> unit
(** Process events until none remain. Periodic timers re-arm forever,
    so a simulation using {!every} must cancel its periodic timers (or
    use {!run_until}) to terminate. *)

val pending : t -> int
(** Number of scheduled timers (periodic timers count once). *)

val events_processed : t -> int
(** Total events executed so far (for the micro-benchmarks). *)

val max_heap_depth : t -> int
(** High-water mark of the scheduler: the most timers that were ever
    pending at once (for the observability counters). *)
