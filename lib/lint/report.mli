(** Rendering findings.

    Both reporters return data (a string, a JSON tree) rather than
    printing: [lib/] code is subject to its own R4, so the terminal
    belongs to [bin/olia_lint]. *)

val to_text : files:int -> Finding.t list -> string
(** Compiler-style [file:line:col: RULE message] lines followed by a
    one-line tally, or a single "clean" line. *)

val to_json : files:int -> Finding.t list -> Repro_stats.Json.t
(** [{"files": n, "findings": [...], "count": n, "clean": bool}]. *)
