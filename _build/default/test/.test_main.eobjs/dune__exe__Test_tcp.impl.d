test/test_tcp.ml: Alcotest Array Float Lia List Mptcp_repro Olia Packet Pipe Printf Queue Reno Rng Sim Tcp
