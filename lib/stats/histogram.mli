(** Binned histograms: equal-width bins for the paper's completion-time
    PDFs (Fig. 14), log-spaced bins for latency distributions (queue
    delays and RTTs span decades, so equal widths would crush the short
    end into one bucket). *)

type t
(** Mutable histogram over [\[lo, hi)]. Observations outside the range
    are counted in saturating edge bins. *)

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] makes a histogram of [bins] equal-width bins
    covering [\[lo, hi)]. Raises [Invalid_argument] if [bins <= 0] or
    [hi <= lo]. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** [create_log ~lo ~hi ~bins] makes a histogram of [bins] log-spaced
    bins covering [\[lo, hi)]: bin edges form a geometric progression,
    so every decade gets equal resolution. Raises [Invalid_argument] if
    [bins <= 0], [lo <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Record one observation. Values below [lo] land in the first bin,
    values at or above [hi] in the last (for a log histogram this
    includes any value [<= 0]). *)

val count : t -> int
(** Total number of recorded observations. *)

val bins : t -> int
(** Number of bins. *)

val bin_width : t -> float
(** Width of each bin under linear spacing; for a log histogram this is
    the mean width, prefer {!bin_edge}. *)

val bin_edge : t -> int -> float
(** Lower edge of bin [i]; [bin_edge t (bins t)] is [hi]. *)

val bin_center : t -> int -> float
(** Center abscissa of bin [i]: arithmetic midpoint under linear
    spacing, geometric midpoint under log spacing. *)

val bin_count : t -> int -> int
(** Raw count in bin [i]. *)

val pdf : t -> (float * float) array
(** [(center, density)] rows: counts normalized by total and per-bin
    width, so the histogram integrates to 1. Empty histogram yields
    all-zero densities. *)

val cdf : t -> (float * float) array
(** [(upper-edge, cumulative fraction)] rows. *)

val cdf_at : t -> float -> float
(** [cdf_at t x] is the fraction of observations at or below [x],
    linearly interpolated inside the containing bin. [nan] when
    empty. *)

val quantile : t -> float -> float
(** [quantile t q] approximates the [q]-quantile (0..1) by linear
    interpolation within the containing bin. [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] = [quantile t (p /. 100.)]: [percentile t 99.] is
    the p99. [nan] when empty. *)

val percentiles : t -> float array -> float array
(** Map {!percentile} over an array of percentile ranks. *)
