(* Machine-readable perf snapshots (BENCH_*.json) and the regression
   comparison CI gates on. A snapshot is a flat list of named scalar
   entries where lower is better: Bechamel hot-path estimates in
   ns/run, scenario wall-clock per simulated second. A committed
   baseline and a fresh snapshot from the same machine diff directly;
   across machines the "calibrate/int_work" entry (a fixed busy loop
   timed by the same harness) normalizes raw speed away. *)

module Json = Repro_stats.Json

let schema = "olia-bench/1"
let calibration_entry = "calibrate/int_work"

type entry = { name : string; value : float; units : string }
type t = { quick : bool; entries : entry list }

let v ~quick entries = { quick; entries }
let entry ~name ~value ~units = { name; value; units }

let find t name =
  List.find_opt (fun e -> e.name = name) t.entries
  |> Option.map (fun e -> e.value)

let entry_to_json e =
  Json.Obj
    [
      ("name", Json.String e.name);
      ("value", Json.Float e.value);
      ("units", Json.String e.units);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("quick", Json.Bool t.quick);
      ("entries", Json.List (List.map entry_to_json t.entries));
    ]

let ( let* ) = Result.bind

let entry_of_json = function
  | Json.Obj fields ->
    let* name =
      match List.assoc_opt "name" fields with
      | Some (Json.String s) -> Ok s
      | _ -> Error "entry missing string \"name\""
    in
    let* value =
      match List.assoc_opt "value" fields with
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | Some Json.Null -> Ok nan
      | _ -> Error (Printf.sprintf "entry %S missing numeric \"value\"" name)
    in
    let* units =
      match List.assoc_opt "units" fields with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "entry %S missing string \"units\"" name)
    in
    Ok { name; value; units }
  | _ -> Error "snapshot entry is not a JSON object"

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    let* y = f x in
    let* ys = map_result f tl in
    Ok (y :: ys)

let of_json = function
  | Json.Obj fields ->
    let* () =
      match List.assoc_opt "schema" fields with
      | Some (Json.String s) when s = schema -> Ok ()
      | Some (Json.String s) ->
        Error (Printf.sprintf "unsupported snapshot schema %S" s)
      | _ -> Error "snapshot missing \"schema\""
    in
    let* quick =
      match List.assoc_opt "quick" fields with
      | Some (Json.Bool b) -> Ok b
      | _ -> Error "snapshot missing bool \"quick\""
    in
    let* entries =
      match List.assoc_opt "entries" fields with
      | Some (Json.List l) -> map_result entry_of_json l
      | _ -> Error "snapshot missing \"entries\" list"
    in
    Ok { quick; entries }
  | _ -> Error "snapshot is not a JSON object"

let write ~path t = Json.write ~path (to_json t)

let read ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let* json = Json.of_string s in
    of_json json

type regression = {
  name : string;
  baseline : float;
  current : float;
  ratio : float;  (** normalized current / baseline; > 1 means slower *)
}

let usable v = Float.is_finite v && v > 0.

(* All entries are lower-is-better; an entry regressed when its
   (optionally machine-normalized) ratio exceeds 1 + tolerance. Entries
   absent from the baseline are new work, not regressions; degenerate
   values are skipped rather than divided by. *)
let regressions ?(normalize_by = calibration_entry) ~baseline ~current
    ~tolerance () =
  let scale =
    match (find baseline normalize_by, find current normalize_by) with
    | Some b, Some c when usable b && usable c -> b /. c
    | _ -> 1.
  in
  List.filter_map
    (fun (e : entry) ->
      if e.name = normalize_by then None
      else
        match find baseline e.name with
        | None -> None
        | Some base when not (usable base && usable e.value) -> None
        | Some base ->
          let ratio = e.value *. scale /. base in
          if ratio > 1. +. tolerance then
            Some { name = e.name; baseline = base; current = e.value; ratio }
          else None)
    current.entries
