lib/stats/timeseries.mli:
