lib/cc/scalable.mli: Cc_types
