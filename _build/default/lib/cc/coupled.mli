(** The ε-parameterized coupled family of §II: at equilibrium the rate on
    path [r] is proportional to [p_r^(-1/ε)].

    Per ACK on subflow [r] the window grows by
    [w_r^(1-ε) / (Σ_i w_i)^(2-ε)]:
    - [ε = 0] is the fully-coupled algorithm of Kelly–Voice (Pareto
      optimal but flappy),
    - [ε = 1] is the "semicoupled" compromise LIA approximates,
    - [ε = 2] is uncoupled TCP per subflow.

    Used by the ablation bench that sweeps the resource-pooling /
    responsiveness tradeoff the paper describes. *)

val create : epsilon:float -> Cc_types.t
(** Raises [Invalid_argument] unless [0 ≤ epsilon ≤ 2]. *)
