open Repro_netsim

type t = {
  fwd_q : Queue.t;
  rev_q : Queue.t;
  fwd_p : Pipe.t;
  rev_p : Pipe.t;
}

let create ~sim ~rng ~rate_bps ~delay ~buffer_pkts ~discipline
    ?(name = "link") () =
  let mk dir =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps ~buffer_pkts ~discipline
      ~name:(name ^ dir) ()
  in
  {
    fwd_q = mk ">";
    rev_q = mk "<";
    fwd_p = Pipe.create ~sim ~delay;
    rev_p = Pipe.create ~sim ~delay;
  }

let fwd_hops t = [| Queue.hop t.fwd_q; Pipe.hop t.fwd_p |]
let rev_hops t = [| Queue.hop t.rev_q; Pipe.hop t.rev_p |]
let fwd_queue t = t.fwd_q
let rev_queue t = t.rev_q
let one_way_delay t = Pipe.delay t.fwd_p
