examples/datacenter_example.ml: Mptcp_repro Printf
