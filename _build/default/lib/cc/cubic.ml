type epoch = {
  mutable w_max : float;  (* window at the last loss *)
  mutable t : float;  (* virtual time since the loss, seconds *)
  mutable k : float;  (* inflection point *)
  mutable valid : bool;
}

type state = { mutable epochs : epoch array }

let fresh_epoch () = { w_max = 0.; t = 0.; k = 0.; valid = false }

let ensure st idx =
  if idx >= Array.length st.epochs then begin
    let cap = Stdlib.max (2 * (idx + 1)) 4 in
    st.epochs <-
      Array.init cap (fun i ->
          if i < Array.length st.epochs then st.epochs.(i) else fresh_epoch ())
  end

let create ?(c = 0.4) ?(beta = 0.3) () =
  if c <= 0. then invalid_arg "Cubic.create: c must be > 0";
  if beta <= 0. || beta >= 1. then
    invalid_arg "Cubic.create: beta must be in (0,1)";
  let st = { epochs = Array.init 4 (fun _ -> fresh_epoch ()) } in
  let increase ~views ~idx =
    ensure st idx;
    let e = st.epochs.(idx) in
    let v = views.(idx) in
    let w = Stdlib.max v.Cc_types.cwnd 1. in
    let rtt = Stdlib.max v.Cc_types.rtt 1e-3 in
    (* one ACK ≈ 1/w of an RTT of elapsed time *)
    e.t <- e.t +. (rtt /. w);
    if not e.valid then
      (* before the first loss, grow like Reno *)
      1. /. w
    else begin
      let target = (c *. ((e.t -. e.k) ** 3.)) +. e.w_max in
      if target <= w then
        (* TCP-friendly floor: at least Reno's growth *)
        1. /. w
      else Stdlib.min ((target -. w) /. w) 1.
    end
  in
  let on_loss ~idx =
    ensure st idx;
    let e = st.epochs.(idx) in
    e.t <- 0.
  in
  let loss_decrease ~views ~idx =
    ensure st idx;
    let e = st.epochs.(idx) in
    let w = views.(idx).Cc_types.cwnd in
    e.w_max <- w;
    e.k <- ((w *. beta /. c) ** (1. /. 3.));
    e.valid <- true;
    beta *. w
  in
  {
    Cc_types.name = "cubic";
    multipath_initial_ssthresh = None;
    on_ack = (fun ~idx:_ ~acked:_ -> ());
    on_loss;
    increase;
    loss_decrease;
  }
