(** Common interface of coupled congestion-control algorithms.

    A multipath connection owns a number of subflows; the transport layer
    reports per-ACK and per-loss events and asks the algorithm for the
    congestion-avoidance window increase. Windows are measured in packets
    (MSS units) and may be fractional. *)

type subflow_view = {
  mutable cwnd : float;  (** congestion window, packets *)
  mutable rtt : float;  (** smoothed round-trip time, seconds *)
}
(* Both fields are mutable (and float-only, so stores stay unboxed): the
   transport layer refreshes one long-lived view array per connection
   instead of rebuilding it on every ACK. Algorithms must treat views as
   read-only snapshots valid only for the current call. *)
(** What an algorithm may observe about each subflow (exactly the
    information available to a regular TCP sender, as the paper
    requires). *)

type t = {
  name : string;
  multipath_initial_ssthresh : float option;
      (** [Some s]: when the connection has several subflows, slow-start
          threshold is forced to [s] packets (OLIA's Linux implementation
          uses 1 MSS, §IV-B); [None] keeps regular TCP slow start. *)
  on_ack : idx:int -> acked:float -> unit;
      (** bookkeeping for [acked] newly-acknowledged packets on subflow
          [idx] (OLIA's inter-loss counters ℓ₁/ℓ₂). *)
  on_loss : idx:int -> unit;
      (** bookkeeping for a loss event on subflow [idx]. *)
  increase : views:subflow_view array -> idx:int -> float;
      (** congestion-avoidance window increase per ACK on subflow [idx],
          in packets; may be negative (OLIA shifts traffic away from
          maximal-window paths). *)
  loss_decrease : views:subflow_view array -> idx:int -> float;
      (** window decrement to apply on a loss event (TCP halves:
          [cwnd/2]). *)
}
(** A packed algorithm instance. Instances are stateful and must not be
    shared between connections. *)

val halve : views:subflow_view array -> idx:int -> float
(** The unmodified TCP decrease [cwnd/2] (paper §IV: OLIA and LIA use
    unmodified TCP behavior on loss). *)
