(** The htsim data-center experiment of paper §VI-B1 (Fig. 13): a FatTree
    where every host sends one long-lived flow to a random distinct host,
    using TCP or MPTCP (LIA/OLIA) with a given number of subflows spread
    over the equal-cost paths. *)

type config = {
  k : int;  (** FatTree arity; k = 8 gives the paper's 128 hosts *)
  rate_mbps : float;  (** host link capacity *)
  delay_ms : float;  (** per-hop one-way latency *)
  subflows : int;  (** 1 = regular TCP *)
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
}

val default : config
(** k = 8, 10 Mb/s links (a scaled-down stand-in for the paper's
    100 Mb/s; see DESIGN.md), 1 ms hops, 8 subflows, OLIA. *)

type result = {
  flow_mbps : float array;  (** per-flow goodput *)
  aggregate_pct_optimal : float;
      (** total goodput as % of [hosts·rate] (the permutation optimum) *)
  ranked_pct : float array;
      (** per-flow goodput as % of optimal, ascending — Fig. 13(b) *)
  mean_core_loss : float;  (** mean loss probability over core queues *)
}

val run : config -> result
