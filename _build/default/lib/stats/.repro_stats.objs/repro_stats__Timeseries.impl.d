lib/stats/timeseries.ml: Array Stdlib
