(* Negative twin of r9_trace_broken.ml: the same emission shape, but
   the allocating sink fallback sits behind [Trace.sink_armed] — the
   guard the real scalar emitters use. Sink mode is explicitly armed,
   single-domain, and off the sharded hot path by construction, so R9
   must prune the branch and stay silent. *)

let emit_sink ev = ignore ev

let[@olia.alloc_free] rtt_sample time flow rtt =
  if flow land 1 = 0 then ignore (int_of_float (time +. rtt))
  else if Trace.sink_armed () then emit_sink (time, flow, rtt)
