(** Aligned plain-text tables, used by the bench harness to print
    paper-shaped rows. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a title line and the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_float_row : t -> ?prec:int -> string -> float list -> t
(** [add_float_row t label xs] appends a row whose first cell is [label]
    and remaining cells render [xs] with [prec] significant digits
    (default 4). Returns [t] for chaining. *)

val print : ?oc:out_channel -> t -> unit
(** Render with column alignment, a title and a separator rule. *)

val to_string : t -> string
(** Rendered table as a string. *)

val rows : t -> string list list
(** The rows added so far, in insertion order. *)

val to_csv : t -> path:string -> unit
(** Write the header and rows as CSV (for plotting tools). *)
