(** Unit conventions shared by the analytical models.

    Rates and capacities are expressed in packets (MSS) per second, round
    trip times in seconds and loss probabilities are dimensionless. Helpers
    convert to and from the Mbps figures quoted in the paper. *)

val mss_bytes : int
(** Maximum segment size used throughout (1500 bytes, as in the paper's
    Fig. 17 discussion). *)

val mss_bits : float
(** MSS in bits. *)

val pps_of_mbps : float -> float
(** Convert a rate in Mbit/s to MSS-sized packets per second. *)

val mbps_of_pps : float -> float
(** Convert packets per second to Mbit/s. *)

val probe_rate : rtt:float -> float
(** The minimum probing traffic of a window-based algorithm: one MSS per
    RTT, in packets per second. *)
