(* Linear histograms cover the paper's completion-time PDFs; the log
   variant serves latency distributions, where queue delays and RTTs
   span four decades and equal-width bins would crush the short end
   into one bucket. Both share the counts array; only the bin-edge
   geometry differs. *)

type spacing = Linear | Log

type t = {
  lo : float;
  hi : float;
  spacing : spacing;
  log_lo : float;  (* log lo, cached; 0. for Linear *)
  log_ratio : float;  (* log (hi/lo), cached; 0. for Linear *)
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  {
    lo;
    hi;
    spacing = Linear;
    log_lo = 0.;
    log_ratio = 0.;
    counts = Array.make bins 0;
    total = 0;
  }

let create_log ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create_log: bins <= 0";
  if lo <= 0. then invalid_arg "Histogram.create_log: lo <= 0";
  if hi <= lo then invalid_arg "Histogram.create_log: hi <= lo";
  {
    lo;
    hi;
    spacing = Log;
    log_lo = log lo;
    log_ratio = log (hi /. lo);
    counts = Array.make bins 0;
    total = 0;
  }

let bins t = Array.length t.counts
let bin_width t = (t.hi -. t.lo) /. float_of_int (bins t)

(* Edge i of n bins: linear lerp for Linear, geometric for Log. *)
let bin_edge t i =
  match t.spacing with
  | Linear -> t.lo +. (float_of_int i *. bin_width t)
  | Log ->
    exp (t.log_lo +. (t.log_ratio *. float_of_int i /. float_of_int (bins t)))

let bin_index t x =
  let i =
    match t.spacing with
    | Linear -> int_of_float ((x -. t.lo) /. bin_width t)
    | Log ->
      if x <= t.lo then 0
      else
        int_of_float
          (float_of_int (bins t) *. (log x -. t.log_lo) /. t.log_ratio)
  in
  if i < 0 then 0 else if i >= bins t then bins t - 1 else i

let add t x =
  t.counts.(bin_index t x) <- t.counts.(bin_index t x) + 1;
  t.total <- t.total + 1

let count t = t.total

let bin_center t i =
  match t.spacing with
  | Linear -> t.lo +. ((float_of_int i +. 0.5) *. bin_width t)
  | Log -> sqrt (bin_edge t i *. bin_edge t (i + 1))

let bin_count t i = t.counts.(i)

let pdf t =
  let norm = if t.total = 0 then 0. else 1. /. float_of_int t.total in
  Array.mapi
    (fun i c ->
      let w = bin_edge t (i + 1) -. bin_edge t i in
      (bin_center t i, float_of_int c *. norm /. w))
    t.counts

let cdf t =
  let acc = ref 0 in
  let norm = if t.total = 0 then 0. else 1. /. float_of_int t.total in
  Array.mapi
    (fun i c ->
      acc := !acc + c;
      (bin_edge t (i + 1), float_of_int !acc *. norm))
    t.counts

(* Fraction of observations at or below [x], with linear interpolation
   inside the containing bin — the inverse view of [quantile]. *)
let cdf_at t x =
  if t.total = 0 then nan
  else begin
    let i = bin_index t x in
    let below = ref 0 in
    for j = 0 to i - 1 do
      below := !below + t.counts.(j)
    done;
    let lo = bin_edge t i and hi = bin_edge t (i + 1) in
    let frac =
      if x >= hi then 1. else if x <= lo then 0. else (x -. lo) /. (hi -. lo)
    in
    (float_of_int !below +. (frac *. float_of_int t.counts.(i)))
    /. float_of_int t.total
  end

let quantile t q =
  if t.total = 0 then nan
  else
    let target = q *. float_of_int t.total in
    let rec loop i acc =
      if i >= bins t then t.hi
      else
        let acc' = acc +. float_of_int t.counts.(i) in
        if acc' >= target then
          let inside =
            if t.counts.(i) = 0 then 0.
            else (target -. acc) /. float_of_int t.counts.(i)
          in
          let lo = bin_edge t i and hi = bin_edge t (i + 1) in
          lo +. (inside *. (hi -. lo))
        else loop (i + 1) acc'
    in
    loop 0 0.

let percentile t p = quantile t (p /. 100.)
let percentiles t ps = Array.map (percentile t) ps
