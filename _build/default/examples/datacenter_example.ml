(* Data-center example: a k=4 FatTree with a random-permutation workload,
   comparing regular TCP against MPTCP with LIA and OLIA — a scaled-down
   version of the paper's Fig. 13 experiment.

   Run with:  dune exec examples/datacenter_example.exe *)

module Fs = Mptcp_repro.Scenarios.Fattree_static
module Table = Mptcp_repro.Stats.Table

let () =
  let cfg = { Fs.default with k = 4; duration = 20.; warmup = 5. } in
  Printf.printf
    "FatTree k=%d (%d hosts), random permutation of long flows, %g Mb/s links\n\n"
    cfg.k
    (cfg.k * cfg.k * cfg.k / 4)
    cfg.rate_mbps;
  let t =
    Table.create ~title:"Aggregate throughput (% of the permutation optimum)"
      ~columns:[ "transport"; "subflows"; "% of optimal"; "core loss" ]
  in
  let run label subflows algo =
    let r = Fs.run { cfg with subflows; algo } in
    Table.add_row t
      [
        label;
        string_of_int subflows;
        Printf.sprintf "%.1f" r.aggregate_pct_optimal;
        Printf.sprintf "%.4f" r.mean_core_loss;
      ]
  in
  run "TCP" 1 "reno";
  run "MPTCP LIA" 2 "lia";
  run "MPTCP LIA" 8 "lia";
  run "MPTCP OLIA" 2 "olia";
  run "MPTCP OLIA" 8 "olia";
  Table.print t;
  print_newline ();
  print_endline
    "Single-path TCP collides on ECMP paths and wastes the core; MPTCP";
  print_endline "spreads subflows over the equal-cost paths and pools them."
