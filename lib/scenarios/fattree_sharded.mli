(** The production-scale FatTree experiment: a k ≥ 8 tree with several
    long-lived permutation flows per host (k = 8 and 8 flows/host give
    1024 concurrent MPTCP connections over 128 hosts), runnable on one
    event loop or sharded pod-per-domain across OCaml domains with
    conservative lookahead ({!Repro_netsim.Shard}).

    Results are bitwise shard-count-invariant: the same seed produces
    identical goodputs for any shard count (the scheduler's
    [(time, sched, content)] dispatch order is reconstructible from
    cross-shard messages), and [shards = 1] is bitwise identical to a
    sequential run of the same topology — the properties the
    `shard-invariance` CI job enforces via [olia_sim shard-invariance],
    including a traced leg that byte-compares the decoded sharded
    trace against the 1-shard trace. *)

type config = {
  k : int;  (** FatTree arity; k = 8 gives 128 hosts *)
  shards : int;  (** domains; must divide k (1 = sequential) *)
  rate_mbps : float;  (** host link capacity *)
  delay_ms : float;  (** per-hop one-way latency = shard lookahead *)
  subflows : int;  (** MPTCP subflows per connection (1 = plain TCP) *)
  flows_per_host : int;  (** long-lived flows originating at each host *)
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
}

val default : config
(** k = 8, shards = 1, 10 Mb/s links, 1 ms hops, 2 subflows, 8 flows
    per host (1024 flows), OLIA, 5 s with 1 s warm-up. *)

type result = {
  flow_mbps : float array;  (** per-flow goodput, flow order *)
  aggregate_mbps : float;
  aggregate_pct_optimal : float;
      (** total goodput as % of [hosts·rate] (host links are the
          permutation bottleneck regardless of flows per host) *)
  mean_flow_mbps : float;
  p10_flow_mbps : float;
  p50_flow_mbps : float;
  p90_flow_mbps : float;
  mean_core_loss : float;  (** mean loss probability over core queues *)
  cut_messages : int;
      (** packets that crossed a shard boundary (0 when [shards = 1]) *)
  obs : Repro_obs.Meter.report;
      (** counters summed over the shards' simulators *)
  shard_obs : Repro_obs.Meter.shard_counters list;
      (** per-shard loop counters, ascending shards; their
          deterministic merge ([Meter.merge_shards]) is exactly what
          [obs] carries as events and max heap depth *)
}

val run : config -> result
(** Build the sharded tree, start every flow, run the barrier/window
    loop on [shards] domains ({!Repro_exp.Sweep.pool} plumbing) and
    measure goodputs over [\[warmup, duration\]]. Deterministic for a
    given (seed, shards) — and bitwise shard-count-invariant: the
    scheduler's [(time, sched, content)] dispatch order makes the same
    seed produce identical goodputs for any shard count. Tracing a
    sharded run works through per-worker rings ([Trace.arm_rings]).
    Raises [Invalid_argument] on a shard count that does not divide
    [k]. *)
