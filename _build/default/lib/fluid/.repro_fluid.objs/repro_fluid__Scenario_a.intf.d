lib/fluid/scenario_a.mli:
