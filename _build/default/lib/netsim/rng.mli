(** Deterministic splittable PRNG (SplitMix64). Every experiment takes a
    seed so runs are exactly reproducible. *)

type t

val create : seed:int -> t
(** A generator with the given seed. *)

val split : t -> t
(** An independent generator derived from [t]'s stream, for giving each
    component (queue, workload, …) its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val uniform : t -> float -> float
(** Uniform float in [\[0, bound)]. *)

val int : t -> int -> int
(** Uniform int in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean, for Poisson
    arrival processes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** A uniformly random permutation of [0..n-1]. *)

val derangement_permutation : t -> int -> int array
(** A random permutation with no fixed point ([p.(i) <> i]), used for the
    FatTree random-permutation traffic matrix where no host sends to
    itself. Raises [Invalid_argument] if [n < 2]. *)
