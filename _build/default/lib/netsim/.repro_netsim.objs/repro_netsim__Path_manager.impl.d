lib/netsim/path_manager.ml: Array Sim Stdlib Tcp
