test/test_cc.ml: Alcotest Array Balia Coupled Gen Lia List Mptcp_repro Olia QCheck QCheck_alcotest Registry Reno Stdlib Types
