lib/scenarios/scen_b.mli:
