lib/workload/workload.mli: Repro_netsim
