lib/fluid/scenario_b.ml: Roots Scenario_c Stdlib Units
