lib/topology/builder.ml: Array Duplex Graph Hashtbl List Queue Repro_netsim Rng Sim Stdlib Tcp
