type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts
let bin_width t = (t.hi -. t.lo) /. float_of_int (bins t)

let bin_index t x =
  let i = int_of_float ((x -. t.lo) /. bin_width t) in
  if i < 0 then 0 else if i >= bins t then bins t - 1 else i

let add t x =
  t.counts.(bin_index t x) <- t.counts.(bin_index t x) + 1;
  t.total <- t.total + 1

let count t = t.total
let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. bin_width t)
let bin_count t i = t.counts.(i)

let pdf t =
  let w = bin_width t in
  let norm = if t.total = 0 then 0. else 1. /. (float_of_int t.total *. w) in
  Array.mapi
    (fun i c -> (bin_center t i, float_of_int c *. norm))
    t.counts

let cdf t =
  let acc = ref 0 in
  let norm = if t.total = 0 then 0. else 1. /. float_of_int t.total in
  Array.mapi
    (fun i c ->
      acc := !acc + c;
      (t.lo +. (float_of_int (i + 1) *. bin_width t), float_of_int !acc *. norm))
    t.counts

let quantile t q =
  if t.total = 0 then nan
  else
    let target = q *. float_of_int t.total in
    let rec loop i acc =
      if i >= bins t then t.hi
      else
        let acc' = acc +. float_of_int t.counts.(i) in
        if acc' >= target then
          let inside =
            if t.counts.(i) = 0 then 0.
            else (target -. acc) /. float_of_int t.counts.(i)
          in
          t.lo +. ((float_of_int i +. inside) *. bin_width t)
        else loop (i + 1) acc'
    in
    loop 0 0.
