(** The per-file rule catalogue R1-R8 (the whole-program rules R9-R11
    live in {!Summary}/{!Callgraph}/{!Dataflow}).

    Rules are purely syntactic (no typing pass), so each one errs on
    the side of precision over recall; docs/LINT.md records the
    approximations. Path scoping — which rules run where — is decided
    here from the repo-relative path of the file. *)

(** {1 Shared syntactic helpers}

    Also used by the whole-program pass, so the two passes agree on
    name canonicalization and path anchoring. *)

val lid_name : Longident.t -> string
(** Dotted rendering, ["Repro_obs.Trace.emit"]. *)

val lid_root : Longident.t -> string
(** First segment, ["Repro_obs"]. *)

val canonical : string -> string
(** Strip an explicit [Stdlib.] prefix. *)

val normalize : string -> string list
(** Repo-relative path segments, anchored at lib/bin/bench/test. *)

val under : string list -> string -> bool
(** Is the (normalized) path below the given segment prefix? *)

val basename : string -> string

val module_name_of : string -> string
(** Module name a path compiles to: [lib/netsim/sim.ml] -> ["Sim"]. *)

val is_floatish : Parsetree.expression -> bool
(** Syntactic evidence that an expression is a float (literals, float
    arithmetic, well-known float-returning stdlib names). *)

val scope_r1 : string -> bool
(** Everywhere except [lib/netsim/rng.ml], the one blessed RNG. *)

val scope_r2 : string -> bool
(** [lib/] only: libraries run inside [Exp.Sweep] domains. *)

val scope_r3 : string -> bool
(** [lib/fluid/] and [lib/cc/], the numerics. *)

val scope_r4 : string -> bool
(** [lib/] only. *)

val scope_r6 : string -> bool
(** Everywhere: discarding an [Error] is equally wrong in binaries,
    benches and tests. *)

val scope_r7 : string -> bool
(** [lib/scenarios/] only: tests, benches and the golden-trace
    fixtures legitimately pin literal seeds. *)

val check_structure : path:string -> Parsetree.structure -> Finding.t list
(** Run R1-R4 and R6-R8 (as scoped for [path]) over one parsed
    implementation. *)

val check_registry :
  sources:(string * Parsetree.structure) list -> Finding.t list
(** R5: given every parsed [.ml] of the run, report scenario modules
    under [lib/scenarios/] (files defining a top-level [run], other
    than [registry.ml]/[common.ml]) that [lib/scenarios/registry.ml]
    never references. *)
