open Repro_netsim
module Trace = Repro_obs.Trace
module Json = Repro_stats.Json

(* Golden-trace regression: three small canonical runs whose full event
   streams are recorded under [test/golden/]. The comparator zeroes
   every timestamp before comparing, so a golden check pins the
   *semantic* event sequence — which packets were enqueued, forwarded,
   dropped (and why), every cwnd move and state transition — while
   timing-only refactors of the simulator stay invisible to it. *)

let collect f =
  let events = ref [] in
  Trace.set_sink (Some (fun e -> events := e :: !events));
  Fun.protect ~finally:(fun () -> Trace.set_sink None) f;
  List.rev !events

let one_way = 0.02

let mk_queue ~sim ~rng ~rate_bps ~buffer_pkts name =
  Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps ~buffer_pkts
    ~discipline:Queue.Droptail ~name ()

(* A short Reno transfer through one tight droptail bottleneck: slow
   start, overflow drops, fast recovery — the core single-path machinery
   in one trace. *)
let reno_droptail () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let q = mk_queue ~sim ~rng ~rate_bps:2e6 ~buffer_pkts:8 "gold-bneck" in
  let fwd = Pipe.create ~sim ~delay:one_way in
  let rev = Pipe.create ~sim ~delay:one_way in
  let paths =
    [| { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |]; rev = [| Pipe.hop rev |] } |]
  in
  let _conn =
    Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths ~size_pkts:80
      ~flow_id:0 ()
  in
  Sim.run_until sim 60.

(* A short OLIA transfer over two asymmetric paths: exercises coupled
   window increases and the per-subflow event attribution. *)
let olia_two_path () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:11 in
  let q0 = mk_queue ~sim ~rng ~rate_bps:2e6 ~buffer_pkts:10 "gold-p0" in
  let q1 = mk_queue ~sim ~rng ~rate_bps:1e6 ~buffer_pkts:6 "gold-p1" in
  let pipe delay = Pipe.create ~sim ~delay in
  let fwd0 = pipe one_way and rev0 = pipe one_way in
  let fwd1 = pipe 0.035 and rev1 = pipe 0.035 in
  let paths =
    [|
      { Tcp.fwd = [| Queue.hop q0; Pipe.hop fwd0 |]; rev = [| Pipe.hop rev0 |] };
      { Tcp.fwd = [| Queue.hop q1; Pipe.hop fwd1 |]; rev = [| Pipe.hop rev1 |] };
    |]
  in
  let _conn =
    Tcp.create ~sim ~cc:(Repro_cc.Olia.create ()) ~paths ~size_pkts:120
      ~flow_id:0 ()
  in
  Sim.run_until sim 60.

(* A finite transfer through a flapping link: pins the fault-injection
   event stream — [link_down] drops during the outage, the RTO ladder,
   and recovery once the gate reopens. *)
let fault_flap () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:13 in
  let q = mk_queue ~sim ~rng ~rate_bps:2e6 ~buffer_pkts:10 "gold-flap" in
  let fwd = Pipe.create ~sim ~delay:one_way in
  let rev = Pipe.create ~sim ~delay:one_way in
  let gate = Fault.create ~sim ~rng:(Rng.split rng) ~name:"gold-gate" () in
  let paths =
    [|
      {
        Tcp.fwd = [| Fault.hop gate; Queue.hop q; Pipe.hop fwd |];
        rev = [| Pipe.hop rev |];
      };
    |]
  in
  let _conn =
    (* 600 pkts at 2 Mb/s ≈ 3.6 s of traffic: the transfer straddles the
       [2 s, 4 s) outage, so the trace contains link_down drops, the RTO
       ladder and the post-outage recovery. *)
    Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths ~size_pkts:600
      ~flow_id:0 ()
  in
  Fault.schedule_flap gate ~down_at:2. ~up_at:4.;
  Sim.run_until sim 120.

(* The same two-path transfer on the fixed-point kernel twin: pins the
   integer CC's event stream byte-for-byte, so every cwnd move the
   scaled arithmetic produces is deterministic across runs (and trivially
   across shard counts — the trace is a single-wheel run). *)
let olia_fp_two_path () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:11 in
  let q0 = mk_queue ~sim ~rng ~rate_bps:2e6 ~buffer_pkts:10 "gold-p0" in
  let q1 = mk_queue ~sim ~rng ~rate_bps:1e6 ~buffer_pkts:6 "gold-p1" in
  let pipe delay = Pipe.create ~sim ~delay in
  let fwd0 = pipe one_way and rev0 = pipe one_way in
  let fwd1 = pipe 0.035 and rev1 = pipe 0.035 in
  let paths =
    [|
      { Tcp.fwd = [| Queue.hop q0; Pipe.hop fwd0 |]; rev = [| Pipe.hop rev0 |] };
      { Tcp.fwd = [| Queue.hop q1; Pipe.hop fwd1 |]; rev = [| Pipe.hop rev1 |] };
    |]
  in
  let _conn =
    Tcp.create ~sim ~cc:(Repro_cc.Olia_fp.create ()) ~paths ~size_pkts:120
      ~flow_id:0 ()
  in
  Sim.run_until sim 60.

let scenarios =
  [
    ("reno-droptail", reno_droptail);
    ("olia-two-path", olia_two_path);
    ("olia-fp-two-path", olia_fp_two_path);
    ("fault-flap", fault_flap);
  ]

let names = List.map fst scenarios

let record name =
  match List.assoc_opt name scenarios with
  | Some f -> collect f
  | None ->
      invalid_arg
        (Printf.sprintf "Golden.record: unknown scenario %S (have: %s)" name
           (String.concat ", " names))

(* Timestamps carry no semantic weight here: they are kept in the golden
   files for human debugging but zeroed on both sides before comparing. *)
let canon : Trace.event -> Trace.event = function
  | Trace.Pkt_enqueue r -> Trace.Pkt_enqueue { r with time = 0. }
  | Trace.Pkt_drop r -> Trace.Pkt_drop { r with time = 0. }
  | Trace.Pkt_forward r -> Trace.Pkt_forward { r with time = 0. }
  | Trace.Tcp_state r -> Trace.Tcp_state { r with time = 0. }
  | Trace.Cwnd_update r -> Trace.Cwnd_update { r with time = 0. }
  | Trace.Rto_fired r -> Trace.Rto_fired { r with time = 0. }
  | Trace.Rtt_sample r -> Trace.Rtt_sample { r with time = 0. }
  | Trace.Subflow_add r -> Trace.Subflow_add { r with time = 0. }
  | Trace.Subflow_remove r -> Trace.Subflow_remove { r with time = 0. }

let path ~dir name = Filename.concat dir (name ^ ".jsonl")

let update ~dir name =
  let events = record name in
  let oc = open_out (path ~dir name) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Json.to_string (Trace.to_json e));
          output_char oc '\n')
        events)


let load ~dir name =
  let file = path ~dir name in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "golden file %s missing (run with --update-golden)" file)
  else
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc lineno =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line -> (
              match Json.of_string line with
              | Error e ->
                  Error (Printf.sprintf "%s:%d: bad JSON: %s" file lineno e)
              | Ok j -> (
                  match Trace.of_json j with
                  | Error e ->
                      Error
                        (Printf.sprintf "%s:%d: bad event: %s" file lineno e)
                  | Ok ev -> go (ev :: acc) (lineno + 1)))
        in
        go [] 1)

let show e = Json.to_string (Trace.to_json (canon e))

(* First-divergence diff over the canonicalized streams. Events are
   compared in their serialized form: non-finite floats print as [null]
   on both sides (a recorded [infinity] ssthresh reads back as nan), so
   comparing the JSON lines is what makes recording round-trip. *)
let compare_events ~name ~want ~got =
  let rec go i want got =
    match (want, got) with
    | [], [] -> Ok ()
    | w :: _, [] ->
        Error
          (Printf.sprintf "%s: trace truncated at event %d; golden has %s" name
             i (show w))
    | [], g :: _ ->
        Error
          (Printf.sprintf "%s: %d extra event(s) past the golden trace; first: %s"
             name (List.length got) (show g))
    | w :: ws, g :: gs ->
        if show w = show g then go (i + 1) ws gs
        else
          Error
            (Printf.sprintf "%s: first divergence at event %d:\n  golden: %s\n  got:    %s"
               name i (show w) (show g))
  in
  go 0 want got

let check ~dir name =
  match load ~dir name with
  | Error _ as e -> e
  | Ok want -> compare_events ~name ~want ~got:(record name)

(* --- golden reports --------------------------------------------------- *)

(* One canonical flight-recorder report: a small fixed-seed Scenario B
   run analyzed with Obs.Report. Unlike the traces above, the report
   keeps its timestamps — the document is a pure function of the seed,
   so it is byte-reproducible and CI can regenerate it from the CLI:

     olia_sim run scenario-b -p n=4 -p cx=8 -p ct=10 \
       -p duration=8 -p warmup=2 --report report_ci.json *)

let report_scen_b_config =
  {
    Repro_scenarios.Scen_b.default with
    n = 4;
    cx_mbps = 8.;
    ct_mbps = 10.;
    duration = 8.;
    warmup = 2.;
  }

let report_scen_b () =
  let acc = Repro_obs.Report.create () in
  Trace.set_sink (Some (Repro_obs.Report.feed acc));
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () -> ignore (Repro_scenarios.Scen_b.run report_scen_b_config));
  Repro_obs.Report.to_json acc

(* The Scenario B fixture again with the olia-fp backend: the golden
   report is a pure function of the seed and the integer update rules,
   so it pins the fixed-point path end to end through the flight
   recorder. *)
let report_scen_b_olia_fp () =
  let acc = Repro_obs.Report.create () in
  Trace.set_sink (Some (Repro_obs.Report.feed acc));
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      ignore
        (Repro_scenarios.Scen_b.run
           { report_scen_b_config with algo = "olia-fp" }));
  Repro_obs.Report.to_json acc

let report_scenarios =
  [
    ("report-scen-b", report_scen_b);
    ("report-scen-b-olia-fp", report_scen_b_olia_fp);
  ]
let report_names = List.map fst report_scenarios

let record_report name =
  match List.assoc_opt name report_scenarios with
  | Some f -> f ()
  | None ->
      invalid_arg
        (Printf.sprintf "Golden.record_report: unknown report %S (have: %s)"
           name
           (String.concat ", " report_names))

let report_path ~dir name = Filename.concat dir (name ^ ".json")

let update_report ~dir name =
  (* lint: allow R11 -- the scenario meters its run (wall time shown to the operator), but the JSON tree written here holds only seeded simulation outputs, byte-compared in CI *)
  Json.write ~path:(report_path ~dir name) (record_report name)

(* Semantic comparison: both sides are parsed and re-serialized through
   the Json printer, so formatting differences (whitespace, a hand-
   edited golden file) don't register — only value changes do. The
   error pinpoints the first diverging byte of the canonical forms. *)
let compare_json ~name ~want ~got =
  let w = Json.to_string want and g = Json.to_string got in
  if w = g then Ok ()
  else begin
    let n = Stdlib.min (String.length w) (String.length g) in
    let i = ref 0 in
    while !i < n && w.[!i] = g.[!i] do incr i done;
    let ctx s =
      let from = Stdlib.max 0 (!i - 30) in
      let len = Stdlib.min 60 (String.length s - from) in
      String.sub s from len
    in
    Error
      (Printf.sprintf
         "%s: report diverges from golden at byte %d:\n  golden: …%s…\n  \
          got:    …%s…"
         name !i (ctx w) (ctx g))
  end

let check_report ~dir name =
  let file = report_path ~dir name in
  if not (Sys.file_exists file) then
    Error
      (Printf.sprintf "golden report %s missing (run with --update-golden)"
         file)
  else
    match Json.of_string (In_channel.with_open_text file In_channel.input_all) with
    | Error e -> Error (Printf.sprintf "%s: bad JSON: %s" file e)
    | Ok want -> compare_json ~name ~want ~got:(record_report name)

let update_all ~dir =
  List.iter (fun (n, _) -> update ~dir n) scenarios;
  List.iter (fun (n, _) -> update_report ~dir n) report_scenarios
