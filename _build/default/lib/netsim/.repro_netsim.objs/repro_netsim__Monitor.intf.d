lib/netsim/monitor.mli: Queue Repro_stats Sim Tcp
