exception Violation of string

let armed_from_env =
  match Sys.getenv_opt "OLIA_DEBUG_INVARIANTS" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

(* lint: allow R2 R10 -- written once at startup or single-domain test setup, read-only while sweep domains run *)
let armed = ref armed_from_env

let enabled () = !armed
let set_enabled v = armed := v
let require cond msg = if not cond then raise (Violation msg)
