type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  let ncols = List.length t.columns in
  let n = List.length row in
  if n > ncols then invalid_arg "Table.add_row: too many cells";
  let padded =
    if n = ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let add_float_row t ?(prec = 4) label xs =
  add_row t (label :: List.map (fun x -> Printf.sprintf "%.*g" prec x) xs);
  t

let widths t =
  let rows = t.columns :: List.rev t.rows in
  let ncols = List.length t.columns in
  let w = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> if String.length cell > w.(i) then w.(i) <- String.length cell)
      row
  in
  List.iter measure rows;
  w

let render_row w row =
  let cells =
    List.mapi
      (fun i cell -> Printf.sprintf "%-*s" w.(i) cell)
      row
  in
  String.concat "  " cells

let to_string t =
  let w = widths t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let header = render_row w t.columns in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length header) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row w row);
      Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.contents buf

let rows t = List.rev t.rows

let to_csv t ~path =
  Csv.write_rows ~path ~header:t.columns (rows t)

let print ?(oc = stdout) t =
  output_string oc (to_string t);
  flush oc
