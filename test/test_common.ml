(* Unit tests for the scenario plumbing helpers, plus the one float
   comparison the whole suite shares. *)

module C = Mptcp_repro.Scenarios.Common
open Mptcp_repro.Netsim

(* Shared float assertion: passes when the values are identical under
   [Float.equal] (so exact-determinism checks and non-finite expectations
   both work — [Float.equal] holds for [nan]/[nan]) or within
   [rtol·|expected| + atol]. With both tolerances 0 this is an exact
   check. *)
let close ?(rtol = 0.) ?(atol = 0.) msg expected actual =
  let ok =
    Float.equal expected actual
    || abs_float (actual -. expected) <= (rtol *. abs_float expected) +. atol
  in
  if not ok then
    Alcotest.failf "%s: expected %.17g, got %.17g (rtol %g, atol %g)" msg
      expected actual rtol atol

let check_close eps = close ~atol:eps

let test_mean () =
  check_close 1e-12 "mean" 2. (C.mean [ 1.; 2.; 3. ]);
  Alcotest.(check bool) "empty" true (Float.is_nan (C.mean []))

let test_split_at () =
  Alcotest.(check (pair (list int) (list int)))
    "middle" ([ 1; 2 ], [ 3; 4 ]) (C.split_at 2 [ 1; 2; 3; 4 ]);
  Alcotest.(check (pair (list int) (list int)))
    "zero" ([], [ 1 ]) (C.split_at 0 [ 1 ]);
  Alcotest.(check (pair (list int) (list int)))
    "overflow" ([ 1 ], []) (C.split_at 5 [ 1 ])

let test_buffer_scaling () =
  Alcotest.(check int) "10 Mb/s" 300 (C.bottleneck_buffer ~rate_bps:10e6);
  Alcotest.(check int) "20 Mb/s" 600 (C.bottleneck_buffer ~rate_bps:20e6);
  Alcotest.(check int) "floor" 50 (C.bottleneck_buffer ~rate_bps:0.1e6)

let test_red_for () =
  match C.red_for ~rate_bps:20e6 with
  | Queue.Red p -> check_close 1e-9 "scaled min_th" 50. p.Queue.min_th
  | Queue.Droptail -> Alcotest.fail "expected RED"

let test_paper_constants () =
  check_close 1e-12 "rtt" 0.150 C.paper_rtt;
  check_close 1e-12 "propagation" 0.080 C.paper_propagation_delay

let test_factory () =
  let f = C.factory_of_name "olia" in
  let a = f () and b = f () in
  Alcotest.(check string) "name" "olia" a.Mptcp_repro.Cc.Types.name;
  Alcotest.(check bool) "fresh instances" true (a != b)

let test_measure_conns_rejects_bad_window () =
  let sim = Sim.create () in
  Alcotest.check_raises "warmup >= duration"
    (Invalid_argument "measure_conns: warmup >= duration") (fun () ->
      ignore (C.measure_conns ~sim ~warmup:10. ~duration:10. []))

let test_measure_conns_goodput () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let q = Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:100
      ~discipline:Queue.Droptail () in
  let fwd = Pipe.create ~sim ~delay:0.01 and rv = Pipe.create ~sim ~delay:0.01 in
  let conn =
    Tcp.create ~sim ~cc:(Mptcp_repro.Cc.Reno.create ())
      ~paths:[| { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |];
                  rev = [| Pipe.hop rv |] } |]
      ~flow_id:0 ()
  in
  match C.measure_conns ~sim ~warmup:5. ~duration:20. [ conn ] with
  | [ m ] ->
    Alcotest.(check bool)
      (Printf.sprintf "goodput %.1f near 10" m.C.goodput_mbps)
      true
      (m.C.goodput_mbps > 8. && m.C.goodput_mbps < 10.5);
    check_close 1e-6 "pps consistent" (m.C.goodput_mbps *. 1e6 /. 12000.)
      m.C.goodput_pps
  | _ -> Alcotest.fail "expected one measurement"

let suite =
  [
    Alcotest.test_case "common: mean" `Quick test_mean;
    Alcotest.test_case "common: split_at" `Quick test_split_at;
    Alcotest.test_case "common: buffer scaling" `Quick test_buffer_scaling;
    Alcotest.test_case "common: red profile" `Quick test_red_for;
    Alcotest.test_case "common: paper constants" `Quick test_paper_constants;
    Alcotest.test_case "common: cc factory" `Quick test_factory;
    Alcotest.test_case "common: bad measurement window" `Quick
      test_measure_conns_rejects_bad_window;
    Alcotest.test_case "common: goodput measurement" `Quick
      test_measure_conns_goodput;
  ]
