(** Name-based access to every testbed scenario behind the uniform
    experiment API, mirroring {!Repro_cc.Registry} for congestion
    controllers.

    Each scenario module keeps its typed entry point
    ([Scen_a.run : config -> result] etc.); the registry wraps it in
    {!Repro_exp.Scenario_intf.S} — a parameter {!Repro_exp.Spec.t} built
    from the module's [default] record and a
    [run : bindings -> outcome] that flattens the typed result into
    named metrics — so the CLI, the sweep engine and the bench harness
    can drive any experiment by name. *)

module type SCENARIO = Repro_exp.Scenario_intf.S

val names : string list
(** All registered scenarios: ["scenario-a"; "scenario-b"; "scenario-c";
    "two-bottleneck"; "responsiveness"; "wireless"; "fattree";
    "fattree-dynamic"]. *)

val find : string -> (module SCENARIO)
(** Raises [Invalid_argument] (listing {!names}) on unknown names. *)

val mem : string -> bool
