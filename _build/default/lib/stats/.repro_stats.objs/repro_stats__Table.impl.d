lib/stats/table.ml: Array Buffer Csv List Printf String
