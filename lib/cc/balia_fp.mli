(** Integer twin of the kernel's BALIA ([net/mptcp/mptcp_balia.c],
    linux-4.1 MPTCP tree): the mptcp_balia_recalc_ai fixed-point
    arithmetic on {!Fixedpoint} primitives, surfaced through the float
    CC interface. Selectable from the registry as ["balia-fp"]. *)

val create : unit -> Cc_types.t
