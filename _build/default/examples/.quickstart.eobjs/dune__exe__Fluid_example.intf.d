examples/fluid_example.mli:
