lib/scenarios/responsiveness.mli:
