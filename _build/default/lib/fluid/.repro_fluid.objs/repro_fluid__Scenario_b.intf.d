lib/fluid/scenario_b.mli:
