(* The engine takes (path, content) pairs, so every fixture is inline:
   the path picks which rules apply, the content triggers (or avoids)
   them. *)

open Repro_lint

let lint ?(path = "lib/foo/fixture.ml") content =
  Engine.lint_sources [ { Engine.path; content } ]

let count rule findings =
  List.length (List.filter (fun (f : Finding.t) -> f.rule = rule) findings)

let check_count name rule expected findings =
  Alcotest.(check int) name expected (count rule findings)

(* --- R1: determinism ------------------------------------------------ *)

let r1_fixture =
  {|
let roll () = Random.int 6
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let fine () = 42
|}

let test_r1_fires () =
  check_count "three ambient sources" Finding.R1 3 (lint r1_fixture);
  check_count "self-init too" Finding.R1 1
    (lint "let () = Random.self_init ()")

let test_r1_rng_exempt () =
  check_count "rng.ml is the one place allowed" Finding.R1 0
    (lint ~path:"lib/netsim/rng.ml" r1_fixture)

(* --- R2: domain-safety ---------------------------------------------- *)

let test_r2_fires () =
  let f =
    lint
      {|
let table = Hashtbl.create 16
let counter = ref 0
let buf = Buffer.create 64
let pure x = x + 1
|}
  in
  check_count "three module-level mutables" Finding.R2 3 f

let test_r2_ignores_local_state () =
  check_count "refs inside functions are fine" Finding.R2 0
    (lint {|
let sum xs =
  let acc = ref 0 in
  List.iter (fun x -> acc := !acc + x) xs;
  !acc
|})

let test_r2_lib_only () =
  check_count "bin/ may hold state" Finding.R2 0
    (lint ~path:"bin/tool.ml" "let cache = Hashtbl.create 8")

let test_r2_mutable_record () =
  let f =
    lint
      {|
type t = { mutable n : int }
let shared = { n = 0 }
let make () = { n = 0 }
|}
  in
  check_count "module-level literal only" Finding.R2 1 f

(* --- R3: float-hygiene ---------------------------------------------- *)

let test_r3_fires () =
  let f =
    lint ~path:"lib/fluid/fix.ml"
      {|
let is_zero x = x = 0.
let differs a b = a +. 1. <> b
let order a b = compare (a *. 2.) b
|}
  in
  check_count "three structural float comparisons" Finding.R3 3 f

let test_r3_scoped_to_numerics () =
  check_count "outside lib/fluid, lib/cc and test" Finding.R3 0
    (lint ~path:"lib/netsim/x.ml" "let is_zero x = x = 0.");
  check_count "tests are in scope" Finding.R3 1
    (lint ~path:"test/test_x.ml" "let is_zero x = x = 0.")

let test_r3_int_compare_fine () =
  check_count "integer equality untouched" Finding.R3 0
    (lint ~path:"lib/cc/y.ml" "let f a b = a = b + 1")

(* --- R4: output hygiene --------------------------------------------- *)

let r4_fixture =
  {|
let hello () = Printf.printf "hi %d" 3
let bye () = print_endline "bye"
|}

let test_r4_fires () =
  check_count "stdout printers in lib/" Finding.R4 2 (lint r4_fixture)

let test_r4_bin_exempt () =
  check_count "bin/ owns stdout" Finding.R4 0
    (lint ~path:"bin/cli.ml" r4_fixture)

(* --- R5: registry completeness -------------------------------------- *)

let scenario = "let run () = ()"

let lint_pair registry =
  Engine.lint_sources
    [
      { Engine.path = "lib/scenarios/orphan.ml"; content = scenario };
      { Engine.path = "lib/scenarios/registry.ml"; content = registry };
    ]

let test_r5_orphan () =
  check_count "unregistered scenario" Finding.R5 1
    (lint_pair "let all = []")

let test_r5_registered () =
  check_count "referenced scenario" Finding.R5 0
    (lint_pair {|let all = [ ("orphan", Orphan.run) ]|})

(* --- R6: error hygiene ---------------------------------------------- *)

let test_r6_fires () =
  let f =
    lint
      {|
let a r = ignore (Result.map succ r)
let b () = ignore (Ok 3)
let c x = ignore (if x then Ok x else Error "no")
|}
  in
  check_count "three ignored results" Finding.R6 3 f

let test_r6_constraint () =
  check_count "annotated result" Finding.R6 1
    (lint "let f r = ignore (r : (int, string) result)")

let test_r6_plain_ignore_fine () =
  check_count "ignore of a non-result stays legal" Finding.R6 0
    (lint {|
let f g x = ignore (g x)
let h q = ignore (Queue.pop q)
|})

let test_r6_everywhere () =
  check_count "fires outside lib/ too" Finding.R6 1
    (lint ~path:"test/test_x.ml" "let f r = ignore (Result.bind r g)")

let test_r6_suppressible () =
  check_count "waivable like any rule" Finding.R6 0
    (lint
       {|
(* lint: allow R6 -- fixture exercising the waiver *)
let b () = ignore (Ok 3)
|})

(* --- R7: seed plumbing ---------------------------------------------- *)

let scen_path = "lib/scenarios/fixture.ml"

let test_r7_fires () =
  let f =
    lint ~path:scen_path
      {|
let run () =
  let rng = Rng.create ~seed:42 in
  let rng2 = Repro_netsim.Rng.create ~seed:(1 + 2) in
  ignore rng; ignore rng2
|}
  in
  check_count "two hard-coded seeds" Finding.R7 2 f

let test_r7_optional_default () =
  check_count "defaulted ?seed argument" Finding.R7 1
    (lint ~path:scen_path "let make ?(seed = 1) () = Rng.create ~seed")

let test_r7_threaded_seed_fine () =
  check_count "seed from the config threads through" Finding.R7 0
    (lint ~path:scen_path
       {|
let run cfg =
  let rng = Rng.create ~seed:cfg.seed in
  ignore rng

let make ~seed () = Rng.create ~seed
|})

let test_r7_scoped_to_scenarios () =
  let fixture = "let rng = Rng.create ~seed:7" in
  check_count "tests may pin literal seeds" Finding.R7 0
    (lint ~path:"test/test_x.ml" fixture);
  check_count "golden fixtures too" Finding.R7 0
    (lint ~path:"lib/check/golden.ml" fixture)

let test_r7_suppressible () =
  check_count "waivable like any rule" Finding.R7 0
    (lint ~path:scen_path
       {|
(* lint: allow R7 -- fixture exercising the waiver *)
let rng = Rng.create ~seed:7
|})

(* --- R8: timer attribution ------------------------------------------ *)

let test_r8_fires () =
  let f =
    lint ~path:"lib/netsim/fixture.ml"
      {|
let f sim = Sim.schedule_at sim 1. (fun () -> ())
let g sim = ignore (Netsim.Sim.schedule_after sim 0.1 (fun () -> ()))
let h sim p = Repro_netsim.Sim.schedule_pkt_after sim 0.1 Packet.forward p
let k sim = Sim.every sim 5. (fun () -> ())
|}
  in
  check_count "four unlabelled scheduler calls" Finding.R8 4 f

let test_r8_src_fine () =
  check_count "labelled calls pass" Finding.R8 0
    (lint ~path:"lib/netsim/fixture.ml"
       {|
let f sim = Sim.schedule_at ~src:"fixture.tick" sim 1. (fun () -> ())
let g ?src sim = Sim.every ?src sim 5. (fun () -> ())
|})

let test_r8_scope () =
  let fixture = "let f sim = Sim.schedule_at sim 1. (fun () -> ())" in
  check_count "bench is in scope" Finding.R8 1
    (lint ~path:"bench/fixture.ml" fixture);
  check_count "tests are exempt" Finding.R8 0
    (lint ~path:"test/test_x.ml" fixture);
  check_count "the scheduler itself is exempt" Finding.R8 0
    (lint ~path:"lib/netsim/sim.ml" fixture)

let test_r8_other_modules_fine () =
  check_count "non-Sim schedulers are not the target" Finding.R8 0
    (lint ~path:"lib/netsim/fixture.ml"
       "let f cron = Cron.schedule_at cron 1. (fun () -> ())")

let test_r8_suppressible () =
  check_count "waivable like any rule" Finding.R8 0
    (lint ~path:"lib/netsim/fixture.ml"
       {|
(* lint: allow R8 -- fixture exercising the waiver *)
let f sim = Sim.schedule_at sim 1. (fun () -> ())
|})

(* --- clean code, parse errors --------------------------------------- *)

let test_clean_passes () =
  Alcotest.(check int)
    "no findings" 0
    (List.length
       (lint
          {|
let add a b = a + b

let fold xs =
  let rec go acc = function [] -> acc | x :: tl -> go (acc + x) tl in
  go 0 xs
|}))

let test_parse_error () =
  let f = lint "let = = =" in
  check_count "one parse finding" Finding.Parse 1 f;
  Alcotest.(check int) "and nothing else" 1 (List.length f)

(* --- suppressions --------------------------------------------------- *)

let test_suppress_line () =
  check_count "directive above the line waives it" Finding.R4 0
    (lint
       {|
(* lint: allow R4 -- fixture exercising the waiver *)
let hello () = print_endline "hi"
|})

let test_suppress_file () =
  let f =
    lint
      {|
(* lint: allow-file R4 -- harness fixture prints on purpose *)
let a () = print_endline "a"
let b () = print_string "b"
|}
  in
  check_count "whole file waived" Finding.R4 0 f

let test_suppress_wrong_rule () =
  check_count "waiving R1 does not silence R4" Finding.R4 1
    (lint
       {|
(* lint: allow R1 -- wrong rule on purpose *)
let hello () = print_endline "hi"
|})

let test_suppress_needs_reason () =
  let f = lint {|
(* lint: allow R4 *)
let hello () = print_endline "hi"
|} in
  check_count "reason-less directive is itself a finding" Finding.Suppress 1 f;
  check_count "and does not waive anything" Finding.R4 1 f

let test_suppress_unknown_rule () =
  check_count "unknown rule id rejected" Finding.Suppress 1
    (lint "(* lint: allow R99 -- no such rule *)\nlet x = 1")

let test_suppress_in_string_ignored () =
  check_count "directive text inside a string literal is inert"
    Finding.Suppress 0
    (lint {|let doc = "(* lint: allow R4 *)"|});
  check_count "same inside a quoted string" Finding.Suppress 0
    (lint "let doc = {q|(* lint: allow R4 *)|q}");
  check_count "and the quoted string hides nothing after it" Finding.R4 1
    (lint "let doc = {q|(* lint: allow-file R4 -- x *)|q}\n\
           let p () = print_endline doc")

(* --- reporters ------------------------------------------------------ *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_report_text () =
  let f = lint r4_fixture in
  let text = Report.to_text ~files:1 f in
  Alcotest.(check bool) "names the rule" true (contains ~needle:"R4" text);
  Alcotest.(check bool) "names the file" true
    (contains ~needle:"lib/foo/fixture.ml" text);
  Alcotest.(check bool) "clean tree says so" true
    (contains ~needle:"clean" (Report.to_text ~files:3 []))

let test_report_json () =
  (* serialize and re-parse: exercises the reporter and the Json
     round-trip together *)
  match
    Repro_stats.Json.of_string
      (Repro_stats.Json.to_string (Report.to_json ~files:1 (lint r4_fixture)))
  with
  | Error e -> Alcotest.fail ("report is not valid JSON: " ^ e)
  | Ok (Repro_stats.Json.Obj fields) ->
    (match List.assoc_opt "count" fields with
    | Some (Repro_stats.Json.Int n) -> Alcotest.(check int) "count" 2 n
    | _ -> Alcotest.fail "missing count");
    (match List.assoc_opt "clean" fields with
    | Some (Repro_stats.Json.Bool b) -> Alcotest.(check bool) "clean" false b
    | _ -> Alcotest.fail "missing clean")
  | Ok _ -> Alcotest.fail "report is not a JSON object"

(* --- whole-program pass: call graph, R9, R10, R11 ------------------- *)

let test_r9_direct () =
  check_count "allocation in the entry point itself" Finding.R9 1
    (lint "let[@olia.alloc_free] f x = Some x");
  check_count "pure entry point is silent" Finding.R9 0
    (lint "let[@olia.alloc_free] f x = x + 1")

let test_r9_cross_module () =
  let fs =
    Engine.lint_sources
      [
        {
          Engine.path = "lib/a/entry.ml";
          content = "let[@olia.alloc_free] dispatch x = Helper.consume x";
        };
        { Engine.path = "lib/a/helper.ml"; content = "let consume x = ref x" };
      ]
  in
  check_count "allocation one module away" Finding.R9 1 fs;
  match List.find_opt (fun (f : Finding.t) -> f.rule = Finding.R9) fs with
  | None -> Alcotest.fail "no R9 finding"
  | Some f ->
    Alcotest.(check string) "reported at the allocation site" "lib/a/helper.ml"
      f.file;
    Alcotest.(check (option (pair string int)))
      "rooted at the entry point"
      (Some ("lib/a/entry.ml", 1))
      f.root;
    Alcotest.(check bool) "chain names both hops" true
      (contains ~needle:"Entry.dispatch" f.message
      && contains ~needle:"Helper.consume" f.message)

let test_r9_guard_pruned () =
  check_count "allocation behind debug guards does not count" Finding.R9 0
    (lint
       {|
let check x = if Invariant.enabled () then failwith (string_of_int x)
let[@olia.alloc_free] f x = check x; x + 1
|})

let test_r9_module_init_exempt () =
  check_count "mentioning a module-level constant is not an allocation"
    Finding.R9 0
    (lint {|
let pair = (1, 2)
let[@olia.alloc_free] f () = fst pair
|})

let test_r9_suppressible_at_root () =
  let entry_waived =
    {|
(* lint: allow R9 -- measured: amortized, off the steady-state path *)
let[@olia.alloc_free] dispatch x = Helper.consume x
|}
  in
  check_count "directive at the chain's root waives the callee's finding"
    Finding.R9 0
    (Engine.lint_sources
       [
         { Engine.path = "lib/a/entry.ml"; content = entry_waived };
         { Engine.path = "lib/a/helper.ml"; content = "let consume x = ref x" };
       ]);
  check_count "directive at the allocation site waives it too" Finding.R9 0
    (Engine.lint_sources
       [
         {
           Engine.path = "lib/a/entry.ml";
           content = "let[@olia.alloc_free] dispatch x = Helper.consume x";
         };
         {
           Engine.path = "lib/a/helper.ml";
           content =
             "(* lint: allow R9 -- cold path *)\nlet consume x = ref x";
         };
       ])

let test_r9_extra_roots () =
  let src = "let f x = ref x" in
  check_count "no annotation, no finding" Finding.R9 0 (lint src);
  check_count "--alloc-free-root seeds the same walk" Finding.R9 1
    (Engine.lint_sources
       ~extra_alloc_free_roots:[ "Fixture.f" ]
       [ { Engine.path = "lib/foo/fixture.ml"; content = src } ])

let test_r9_mutual_recursion () =
  check_count "cycle in the call graph terminates, silently" Finding.R9 0
    (lint
       {|
let[@olia.alloc_free] rec even n = if n = 0 then true else odd (n - 1)
and odd n = if n = 0 then false else even (n - 1)
|})

let test_callgraph_shadowing () =
  check_count "call resolves to the nearest earlier binding" Finding.R9 0
    (lint
       {|
let g x = ref x
let g x = x + 1
let[@olia.alloc_free] f x = g x
|});
  check_count "and flags when the shadowing binding allocates" Finding.R9 1
    (lint
       {|
let g x = x + 1
let g x = ref x
let[@olia.alloc_free] f x = g x
|})

let test_graph_dump () =
  let dump =
    Callgraph.dump
      (Engine.graph_of_sources
         [
           {
             Engine.path = "lib/a/entry.ml";
             content = "let dispatch x = Helper.consume x";
           };
           {
             Engine.path = "lib/a/helper.ml";
             content = "let consume x = x + 1";
           };
         ])
  in
  Alcotest.(check bool) "lists the caller" true
    (contains ~needle:"Entry.dispatch" dump);
  Alcotest.(check bool) "and the resolved cross-module edge" true
    (contains ~needle:"Helper.consume" dump)

let test_r10_fires () =
  let fs =
    Engine.lint_sources
      [
        { Engine.path = "lib/exp/sweep.ml"; content = "let run f = Tally.bump f" };
        {
          Engine.path = "lib/exp/tally.ml";
          content = "let total = ref 0\nlet bump f = total := !total + f";
        };
      ]
  in
  check_count "mutable toplevel reachable from a sweep worker" Finding.R10 1 fs

let test_r10_unreachable_silent () =
  check_count "state the sweep never touches is R2's business, not R10's"
    Finding.R10 0
    (Engine.lint_sources
       [
         { Engine.path = "lib/exp/sweep.ml"; content = "let run f = f + 1" };
         {
           Engine.path = "lib/exp/tally.ml";
           content = "let total = ref 0\nlet bump f = total := !total + f";
         };
       ]);
  check_count "worker-local state is fine" Finding.R10 0
    (Engine.lint_sources
       [
         {
           Engine.path = "lib/exp/sweep.ml";
           content = "let run f =\n  let acc = ref 0 in\n  acc := f;\n  !acc";
         };
       ])

let test_r11_fires () =
  let fs =
    lint
      {|
let stamp () = Unix.gettimeofday ()
let report x = Trace.emit (x +. stamp ())
|}
  in
  check_count "wall clock flows into a trace sink" Finding.R11 1 fs;
  match List.find_opt (fun (f : Finding.t) -> f.rule = Finding.R11) fs with
  | None -> Alcotest.fail "no R11 finding"
  | Some f ->
    Alcotest.(check bool) "explains the taint chain" true
      (contains ~needle:"stamp" f.message)

let test_r11_guarded_silent () =
  check_count "source only reached behind a debug guard" Finding.R11 0
    (lint
       {|
let stamp () = Unix.gettimeofday ()
let report x =
  if Invariant.enabled () then ignore (stamp ());
  Trace.emit x
|})

let test_r11_sort_sanitizes () =
  let tainted =
    {|
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
let dump t = Trace.emit (keys t)
|}
  in
  check_count "hashtable iteration order reaches the sink" Finding.R11 1
    (lint tainted);
  check_count "a sort on the way scrubs the order dependence" Finding.R11 0
    (lint
       {|
let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
let dump t = Trace.emit (keys t)
|})

(* The binary ring writer persists records just like Trace.emit, so the
   scalar emission entry points are determinism sinks too. *)
let test_r11_ring_writer_sink () =
  check_count "wall clock flows into the ring writer" Finding.R11 1
    (lint
       {|
let stamp () = Unix.gettimeofday ()
let note flow = Trace.rtt_sample (stamp ()) flow
|})

(* --- on-disk fixtures: parse resilience, broken hot path ------------ *)

(* Under `dune runtest` the cwd is test/'s sandbox; under a bare
   `dune exec test/test_main.exe` it is the repo root. *)
let fixture name =
  let local = Filename.concat "lint-fixtures" name in
  if Sys.file_exists local then local else Filename.concat "test" local

let slurp name =
  let ic = open_in_bin (fixture name) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The R3-fp sub-check arms on the _fp.ml basename under lib/cc, so the
   fixtures are read off disk and re-pathed (same trick as R10). *)
let test_r3_fp_fires () =
  let content = slurp "r3_fp_broken.ml" in
  check_count "each float touch in the update path is a finding"
    Finding.R3 4
    (Engine.lint_sources [ { Engine.path = "lib/cc/fixture_fp.ml"; content } ]);
  check_count "the same code without the twin basename is quiet"
    Finding.R3 0
    (Engine.lint_sources [ { Engine.path = "lib/cc/fixture.ml"; content } ]);
  check_count "and outside lib/cc too" Finding.R3 0
    (Engine.lint_sources
       [ { Engine.path = "lib/netsim/fixture_fp.ml"; content } ])

let test_r3_fp_boundary_exempt () =
  let content = slurp "r3_fp_clean.ml" in
  check_count "float-boundary adapters are exempt" Finding.R3 0
    (Engine.lint_sources [ { Engine.path = "lib/cc/fixture_fp.ml"; content } ])

let test_fixture_parse_resilience () =
  let n, fs = Engine.lint_paths [ fixture "malformed.ml"; fixture "r9_broken.ml" ] in
  Alcotest.(check int) "both files scanned" 2 n;
  check_count "malformed file degrades to one Parse finding" Finding.Parse 1 fs;
  check_count "whole-program pass still ran over the healthy file" Finding.R9
    2 fs

let test_fixture_broken_hot_path () =
  let _, fs = Engine.lint_paths [ fixture "r9_broken.ml" ] in
  check_count "deliberately-broken hot path caught" Finding.R9 2 fs;
  Alcotest.(check bool) "chain pins the leaking helper" true
    (List.exists
       (fun (f : Finding.t) -> contains ~needle:"leak_event" f.message)
       fs);
  let _, clean = Engine.lint_paths [ fixture "r9_clean.ml" ] in
  check_count "its clean twin is silent" Finding.R9 0 clean

(* The trace-emission twins: an armed-emission function whose variant
   sink fallback allocates. Unguarded, R9 must flag the allocation;
   behind [Trace.sink_armed] — the guard the real scalar emitters in
   lib/obs/trace.ml use — it must prune the branch. *)
let test_fixture_trace_sink_guard () =
  let _, fs = Engine.lint_paths [ fixture "r9_trace_broken.ml" ] in
  check_count "unguarded sink fallback caught" Finding.R9 1 fs;
  Alcotest.(check bool) "finding pins the payload allocation" true
    (List.exists
       (fun (f : Finding.t) ->
         f.rule = Finding.R9 && contains ~needle:"tuple" f.message)
       fs);
  let _, clean = Engine.lint_paths [ fixture "r9_trace_clean.ml" ] in
  check_count "Trace.sink_armed prunes the sink branch" Finding.R9 0 clean

(* The fixture's content must sit at the sharded runtime's real path for
   the R10 roots to arm, so read it off disk and re-path it. *)
let test_r10_shard_roots () =
  let content =
    let ic = open_in_bin (fixture "r10_shard.ml") in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_count "shard window loop is a domain-spawning root" Finding.R10 1
    (Engine.lint_sources [ { Engine.path = "lib/netsim/shard.ml"; content } ]);
  check_count "the same code elsewhere in netsim is not" Finding.R10 0
    (Engine.lint_sources [ { Engine.path = "lib/netsim/other.ml"; content } ])

let suite =
  [
    Alcotest.test_case "R1 fires on ambient randomness/clocks" `Quick
      test_r1_fires;
    Alcotest.test_case "R1 exempts lib/netsim/rng.ml" `Quick test_r1_rng_exempt;
    Alcotest.test_case "R2 fires on module-level mutables" `Quick test_r2_fires;
    Alcotest.test_case "R2 ignores function-local state" `Quick
      test_r2_ignores_local_state;
    Alcotest.test_case "R2 scoped to lib/" `Quick test_r2_lib_only;
    Alcotest.test_case "R2 catches mutable-record literals" `Quick
      test_r2_mutable_record;
    Alcotest.test_case "R3 fires on structural float comparison" `Quick
      test_r3_fires;
    Alcotest.test_case "R3 scoped to numeric libraries" `Quick
      test_r3_scoped_to_numerics;
    Alcotest.test_case "R3 leaves integer comparison alone" `Quick
      test_r3_int_compare_fine;
    Alcotest.test_case "R4 fires on lib/ stdout printing" `Quick test_r4_fires;
    Alcotest.test_case "R4 exempts bin/" `Quick test_r4_bin_exempt;
    Alcotest.test_case "R5 flags unregistered scenarios" `Quick test_r5_orphan;
    Alcotest.test_case "R5 accepts referenced scenarios" `Quick
      test_r5_registered;
    Alcotest.test_case "R6 fires on ignored results" `Quick test_r6_fires;
    Alcotest.test_case "R6 sees type annotations" `Quick test_r6_constraint;
    Alcotest.test_case "R6 leaves other ignores alone" `Quick
      test_r6_plain_ignore_fine;
    Alcotest.test_case "R6 applies everywhere" `Quick test_r6_everywhere;
    Alcotest.test_case "R6 suppressible" `Quick test_r6_suppressible;
    Alcotest.test_case "R7 fires on hard-coded seeds" `Quick test_r7_fires;
    Alcotest.test_case "R7 fires on defaulted ?seed" `Quick
      test_r7_optional_default;
    Alcotest.test_case "R7 accepts threaded seeds" `Quick
      test_r7_threaded_seed_fine;
    Alcotest.test_case "R7 scoped to lib/scenarios" `Quick
      test_r7_scoped_to_scenarios;
    Alcotest.test_case "R7 suppressible" `Quick test_r7_suppressible;
    Alcotest.test_case "R8 fires on unlabelled timers" `Quick test_r8_fires;
    Alcotest.test_case "R8 accepts ~src labels" `Quick test_r8_src_fine;
    Alcotest.test_case "R8 scoped to lib/ and bench/" `Quick test_r8_scope;
    Alcotest.test_case "R8 ignores non-Sim schedulers" `Quick
      test_r8_other_modules_fine;
    Alcotest.test_case "R8 suppressible" `Quick test_r8_suppressible;
    Alcotest.test_case "clean code produces no findings" `Quick
      test_clean_passes;
    Alcotest.test_case "unparseable file yields one finding" `Quick
      test_parse_error;
    Alcotest.test_case "line suppression honored" `Quick test_suppress_line;
    Alcotest.test_case "file suppression honored" `Quick test_suppress_file;
    Alcotest.test_case "suppression is rule-specific" `Quick
      test_suppress_wrong_rule;
    Alcotest.test_case "suppression without reason rejected" `Quick
      test_suppress_needs_reason;
    Alcotest.test_case "suppression with unknown rule rejected" `Quick
      test_suppress_unknown_rule;
    Alcotest.test_case "directive inside string literal inert" `Quick
      test_suppress_in_string_ignored;
    Alcotest.test_case "text report" `Quick test_report_text;
    Alcotest.test_case "json report" `Quick test_report_json;
    Alcotest.test_case "R9 fires on a direct allocation" `Quick test_r9_direct;
    Alcotest.test_case "R9 follows cross-module calls" `Quick
      test_r9_cross_module;
    Alcotest.test_case "R9 prunes guarded branches" `Quick
      test_r9_guard_pruned;
    Alcotest.test_case "R9 exempts module-init allocation" `Quick
      test_r9_module_init_exempt;
    Alcotest.test_case "R9 suppressible at root or site" `Quick
      test_r9_suppressible_at_root;
    Alcotest.test_case "R9 extra roots seed the walk" `Quick
      test_r9_extra_roots;
    Alcotest.test_case "R9 survives mutual recursion" `Quick
      test_r9_mutual_recursion;
    Alcotest.test_case "call graph honors shadowing" `Quick
      test_callgraph_shadowing;
    Alcotest.test_case "call graph dump names edges" `Quick test_graph_dump;
    Alcotest.test_case "R10 fires on sweep-reachable state" `Quick
      test_r10_fires;
    Alcotest.test_case "R10 ignores unreachable or local state" `Quick
      test_r10_unreachable_silent;
    Alcotest.test_case "R10 covers shard-reachable state" `Quick
      test_r10_shard_roots;
    Alcotest.test_case "R11 taints wall clock into sinks" `Quick
      test_r11_fires;
    Alcotest.test_case "R11 respects guards" `Quick test_r11_guarded_silent;
    Alcotest.test_case "R11 sort sanitizes table order" `Quick
      test_r11_sort_sanitizes;
    Alcotest.test_case "R11 treats the ring writer as a sink" `Quick
      test_r11_ring_writer_sink;
    Alcotest.test_case "R3-fp fires on floats in twin update paths" `Quick
      test_r3_fp_fires;
    Alcotest.test_case "R3-fp exempts float-boundary adapters" `Quick
      test_r3_fp_boundary_exempt;
    Alcotest.test_case "fixtures: parse failure is contained" `Quick
      test_fixture_parse_resilience;
    Alcotest.test_case "fixtures: broken hot path is caught" `Quick
      test_fixture_broken_hot_path;
    Alcotest.test_case "fixtures: sink_armed guards the emission path" `Quick
      test_fixture_trace_sink_guard;
  ]
