type 'a edge = { u : int; v : int; weight : float; payload : 'a }

type 'a t = {
  vertices : int;
  mutable edges : 'a edge array;
  mutable n_edges : int;
  mutable adj : (int * int) list array;  (* vertex -> (neighbor, edge id) *)
}

let create ~vertices =
  if vertices <= 0 then invalid_arg "Graph.create: vertices <= 0";
  {
    vertices;
    edges = [||];
    n_edges = 0;
    adj = Array.make vertices [];
  }

let vertex_count t = t.vertices
let edge_count t = t.n_edges

let check_vertex t x =
  if x < 0 || x >= t.vertices then invalid_arg "Graph: vertex out of range"

let find_edge t ~u ~v =
  check_vertex t u;
  check_vertex t v;
  List.assoc_opt v t.adj.(u)

let add_edge t ~u ~v ?(weight = 1.) payload =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if find_edge t ~u ~v <> None then invalid_arg "Graph.add_edge: parallel edge";
  let id = t.n_edges in
  if id = Array.length t.edges then begin
    let cap = Stdlib.max 16 (2 * Array.length t.edges) in
    let edges =
      Array.init cap (fun i ->
          if i < t.n_edges then t.edges.(i)
          else { u; v; weight; payload })
    in
    t.edges <- edges
  end;
  t.edges.(id) <- { u; v; weight; payload };
  t.n_edges <- t.n_edges + 1;
  t.adj.(u) <- (v, id) :: t.adj.(u);
  t.adj.(v) <- (u, id) :: t.adj.(v);
  id

let check_edge t e =
  if e < 0 || e >= t.n_edges then invalid_arg "Graph: edge out of range"

let edge_payload t e =
  check_edge t e;
  t.edges.(e).payload

let edge_endpoints t e =
  check_edge t e;
  (t.edges.(e).u, t.edges.(e).v)

let neighbors t v =
  check_vertex t v;
  t.adj.(v)

type hop = { edge : int; from_u_to_v : bool }

let hop_of t ~from edge_id =
  let e = t.edges.(edge_id) in
  { edge = edge_id; from_u_to_v = e.u = from }

(* Dijkstra with an exclusion set of edges and vertices (for Yen's and
   disjoint-path computations). *)
let dijkstra t ~src ~dst ~banned_edges ~banned_vertices =
  check_vertex t src;
  check_vertex t dst;
  let dist = Array.make t.vertices infinity in
  let prev = Array.make t.vertices (-1) in
  (* prev edge id *)
  let visited = Array.make t.vertices false in
  dist.(src) <- 0.;
  let module Pq = Set.Make (struct
    type nonrec t = float * int

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0., src)) in
  let result = ref None in
  while !result = None && not (Pq.is_empty !pq) do
    let ((d, x) as min_elt) = Pq.min_elt !pq in
    pq := Pq.remove min_elt !pq;
    if x = dst then result := Some d
    else if not visited.(x) then begin
      visited.(x) <- true;
      List.iter
        (fun (y, e) ->
          if
            (not visited.(y))
            && (not (Hashtbl.mem banned_edges e))
            && not (Hashtbl.mem banned_vertices y)
          then begin
            let nd = d +. t.edges.(e).weight in
            if nd < dist.(y) then begin
              dist.(y) <- nd;
              prev.(y) <- e;
              pq := Pq.add (nd, y) !pq
            end
          end)
        t.adj.(x)
    end
  done;
  match !result with
  | None -> None
  | Some _ ->
    (* walk the prev chain back from dst *)
    let rec walk v acc =
      if v = src then acc
      else
        let e = prev.(v) in
        let edge = t.edges.(e) in
        let from = if edge.u = v then edge.v else edge.u in
        walk from (hop_of t ~from e :: acc)
    in
    Some (walk dst [])

let no_bans () = (Hashtbl.create 4, Hashtbl.create 4)

let shortest_path t ~src ~dst =
  if src = dst then Some []
  else
    let be, bv = no_bans () in
    dijkstra t ~src ~dst ~banned_edges:be ~banned_vertices:bv

let path_weight t hops =
  List.fold_left (fun acc h -> acc +. t.edges.(h.edge).weight) 0. hops

let path_vertices t ~src hops =
  let rec walk v = function
    | [] -> [ v ]
    | h :: rest ->
      let e = t.edges.(h.edge) in
      let next = if h.from_u_to_v then e.v else e.u in
      v :: walk next rest
  in
  walk src hops

(* Yen's k-shortest loop-free paths. *)
let k_shortest_paths t ~src ~dst ~k =
  if k <= 0 then []
  else if src = dst then [ [] ]
  else
    match shortest_path t ~src ~dst with
    | None -> []
    | Some first ->
      let accepted = ref [ first ] in
      let candidates = ref [] in
      (* candidate list of (weight, path); kept sorted by insertion scan *)
      let add_candidate p =
        let w = path_weight t p in
        if
          not
            (List.exists (fun (_, q) -> q = p) !candidates
            || List.mem p !accepted)
        then candidates := (w, p) :: !candidates
      in
      let rec grow () =
        if List.length !accepted >= k then ()
        else begin
          let prev_path = List.hd !accepted in
          let prev_vertices = path_vertices t ~src prev_path in
          (* spur at every position of the previous path *)
          List.iteri
            (fun i _spur_hop ->
              let root = List.filteri (fun j _ -> j < i) prev_path in
              let spur_node = List.nth prev_vertices i in
              let banned_edges = Hashtbl.create 8 in
              let banned_vertices = Hashtbl.create 8 in
              (* ban edges used by accepted paths sharing the same root *)
              List.iter
                (fun path ->
                  let proot = List.filteri (fun j _ -> j < i) path in
                  if proot = root then
                    match List.nth_opt path i with
                    | Some h -> Hashtbl.replace banned_edges h.edge ()
                    | None -> ())
                !accepted;
              (* ban root vertices except the spur node *)
              List.iteri
                (fun j v ->
                  if j < i && v <> spur_node then
                    Hashtbl.replace banned_vertices v ())
                prev_vertices;
              match
                dijkstra t ~src:spur_node ~dst ~banned_edges ~banned_vertices
              with
              | None -> ()
              | Some spur -> add_candidate (root @ spur))
            prev_path;
          match List.sort compare !candidates with
          | [] -> ()
          | (_, best) :: rest ->
            candidates := rest;
            accepted := best :: !accepted;
            grow ()
        end
      in
      grow ();
      List.sort
        (fun a b -> compare (path_weight t a) (path_weight t b))
        !accepted

let edge_disjoint_paths t ~src ~dst =
  let banned_edges = Hashtbl.create 16 in
  let banned_vertices = Hashtbl.create 4 in
  let rec take acc =
    match dijkstra t ~src ~dst ~banned_edges ~banned_vertices with
    | None -> List.rev acc
    | Some path ->
      List.iter (fun h -> Hashtbl.replace banned_edges h.edge ()) path;
      take (path :: acc)
  in
  if src = dst then [] else take []
