(* Deliberately broken fixed-point twin: float arithmetic leaks into the
   integer update path. test_lint re-paths this under lib/cc/ with an
   _fp.ml basename so the R3-fp sub-check arms; each float touch in the
   unannotated core is one finding, the annotated adapter is exempt. *)

let scale = 10
let rate w rtt_us = if rtt_us <= 0 then 0 else (w lsl scale) / rtt_us

(* four findings: conversion, float literal, float operator, float fn *)
let increase w rtt_us = int_of_float (0.5 +. float_of_int (rate w rtt_us))

(* the sanctioned adapter between the float surface and the integer
   core: exempt despite its floats *)
let[@olia.float_boundary] to_surface w = float_of_int w /. 1024.
