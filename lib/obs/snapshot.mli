(** Machine-readable perf snapshots ([BENCH_*.json]) and the regression
    comparison CI gates on.

    A snapshot is a flat list of named scalar entries where lower is
    better — Bechamel hot-path estimates (["micro/..."], ns/run) and
    scenario wall-clock per simulated second (["scenario/..."],
    s_wall/s_sim) — plus a {!calibration_entry} measuring a fixed
    integer busy loop so snapshots from different machines can be
    compared after normalization. *)

val schema : string
(** Current schema tag, ["olia-bench/1"]. *)

val calibration_entry : string
(** Name of the machine-speed proxy entry, ["calibrate/int_work"]. *)

type entry = { name : string; value : float; units : string }
type t = { quick : bool; entries : entry list }

val v : quick:bool -> entry list -> t
val entry : name:string -> value:float -> units:string -> entry
val find : t -> string -> float option
val to_json : t -> Repro_stats.Json.t
val of_json : Repro_stats.Json.t -> (t, string) result
val write : path:string -> t -> unit

val read : path:string -> (t, string) result
(** Parse a snapshot file; errors cover I/O, JSON syntax, and schema
    mismatches. *)

type regression = {
  name : string;
  baseline : float;
  current : float;
  ratio : float;  (** normalized current / baseline; > 1 means slower *)
}

val regressions :
  ?normalize_by:string ->
  baseline:t ->
  current:t ->
  tolerance:float ->
  unit ->
  regression list
(** Entries of [current] that are more than [tolerance] (fractional,
    e.g. 0.2) slower than the same-named entry of [baseline]. When both
    snapshots carry [normalize_by] (default {!calibration_entry}),
    current values are rescaled by the calibration ratio first, making
    the comparison machine-independent; otherwise values compare raw.
    Entries missing from the baseline, and non-finite or non-positive
    values, are skipped. *)
