test/test_extensions.ml: Alcotest Array Cbr Cubic List Lossy Mptcp_repro Olia Option Packet Path_manager Pipe Printf Queue Registry Reno Rng Scalable Sim Tcp Types
