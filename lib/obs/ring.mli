(** Pre-allocated binary trace rings: the storage layer under
    {!Trace}'s armed-emission path.

    A ring holds fixed-width records in two flat pre-allocated lanes:
    an [int array] at stride 16 (tag, dispatch-context words, payload
    ints) and a [floatarray] at stride 4 (time, scheduling key, payload
    floats). {!claim} hands out the next slot and the caller fills its
    words with plain unboxed stores, so writing a record allocates
    nothing on the minor heap. {!Trace} owns the record layout; this
    module owns only the circular-buffer mechanics.

    Rings are single-writer: exactly one domain writes (via
    [Trace.bind_ring]), and the offline decoder reads only after the
    writing domains have been joined. *)

type policy =
  | Drop_oldest  (** overwrite the oldest retained record when full *)
  | Fail_fast  (** raise {!Full} when full *)

exception Full
(** Raised by {!claim} on a full [Fail_fast] ring — and on the {!null}
    ring, i.e. on any armed emission from a domain that never bound a
    ring. A constant exception: raising it allocates nothing. *)

type t

val create : shard:int -> capacity:int -> policy:policy -> t
(** A ring of [capacity] records (two eager allocations: the int and
    float lanes). Raises [Invalid_argument] if [capacity < 1]. *)

val null : t
(** The capacity-0 [Fail_fast] ring that parks unbound domains: any
    {!claim} raises {!Full}. Shared and read-only by construction. *)

val shard : t -> int
(** The shard id the ring was bound with ([-1] for {!null}). *)

val capacity : t -> int

val length : t -> int
(** Retained records. *)

val dropped : t -> int
(** Records overwritten so far ([Drop_oldest] only). *)

val written : t -> int
(** Total records ever written; the logical sequence number of the
    oldest retained record is [written r - length r]. *)

val claim : t -> int
(** Claim the next slot and return its index for the [set_i]/[set_f]
    stores. Overwrites the oldest record or raises {!Full} when full,
    per the ring's {!policy}. *)

val set_i : t -> int -> int -> int -> unit
(** [set_i r slot k v] stores int word [k] (0..15) of [slot]. *)

val get_i : t -> int -> int -> int

val set_f : t -> int -> int -> float -> unit
(** [set_f r slot k v] stores float word [k] (0..3) of [slot]. *)

val get_f : t -> int -> int -> float

val slot_of_index : t -> int -> int
(** Slot of the [i]-th oldest retained record ([0 <= i < length r]):
    the decoder's iteration order. *)

val reset : t -> unit
(** Forget all records (the storage stays allocated). *)
