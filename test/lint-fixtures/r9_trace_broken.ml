(* A deliberately-broken armed-emission path, shaped like the scalar
   functions in lib/obs/trace.ml: the ring branch is unboxed stores
   (arithmetic stands in for them here), but the variant-sink fallback
   builds its event payload with no [Trace.sink_armed] guard, so the
   allocation sits square on the [@olia.alloc_free] hot path. The
   regression test asserts R9 pins exactly that branch — proving the
   gate would fail CI if the real emission path ever lost its guard. *)

let emit_sink ev = ignore ev

let[@olia.alloc_free] rtt_sample time flow rtt =
  if flow land 1 = 0 then ignore (int_of_float (time +. rtt))
  else emit_sink (time, flow, rtt)
