(** Diagnostics produced by the linter.

    A finding pins a violated rule to a file position. Findings are
    plain data: rendering lives in {!Report} and policy (what is
    scanned, what is suppressed) in {!Engine}. *)

type rule =
  | R1  (** determinism: ambient randomness/clocks outside [Netsim.Rng] *)
  | R2  (** domain-safety: module-level mutable state in [lib/] *)
  | R3  (** float-hygiene: structural [=]/[<>]/[compare] on floats *)
  | R4  (** output hygiene: stdout printing from [lib/] *)
  | R5  (** registry completeness: scenario unreachable from the registry *)
  | R6  (** error hygiene: [ignore] of a [result] value *)
  | R7  (** seed plumbing: hard-coded or defaulted RNG seed in scenarios *)
  | R8  (** timer attribution: [Sim.schedule_*]/[Sim.every] without [~src] *)
  | R9  (** alloc-free: allocation reachable from a hot-path entry point *)
  | R10
      (** domain-safety (whole-program): shared toplevel mutable state
          reachable from sweep workers *)
  | R11
      (** determinism taint: nondeterminism source flowing into an
          output sink across module boundaries *)
  | Parse  (** the file does not parse; nothing else was checked *)
  | Suppress  (** malformed suppression directive *)

val rule_name : rule -> string
(** ["R1"] ... ["R11"], ["parse"], ["suppress"]. *)

val rule_of_name : string -> rule option
(** Inverse of {!rule_name} for the suppressible rules R1-R11 only:
    [Parse] and [Suppress] findings cannot be waived. *)

val rule_doc : rule -> string
(** One-line summary of what the rule protects. *)

type t = {
  rule : rule;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  message : string;
  root : (string * int) option;
      (** whole-program findings: (file, line) of the call chain's root
          entry point, so a suppression at the root also waives them *)
}

val v :
  ?root:string * int ->
  rule:rule ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

val compare : t -> t -> int
(** Order by file, line, column, rule — the report order. *)

val to_string : t -> string
(** [file:line:col: RULE message], compiler-style. *)

val to_json : t -> Repro_stats.Json.t
