open Repro_netsim

type t = {
  k : int;
  n_shards : int;
  group : Shard.t;
  host_links : Duplex.t array;  (* host -> its edge switch; fwd = up *)
  edge_agg : Duplex.t array array array;  (* [pod].[edge].[agg]; fwd = up *)
  agg_core : Duplex.t array array array;  (* [pod].[agg].[core-in-group]; fwd = up *)
  chans : Shard.channel option array array;  (* [src_shard].[dst_shard] *)
}

let half t = t.k / 2
let hosts_per_pod k = k * k / 4
let shard_of_pod_ ~k ~shards pod = pod * shards / k

let create ~shards ~rng ~k ~rate_bps ~delay ~buffer_pkts ~discipline
    ?(oversubscription = 1.) () =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Fattree_pods.create: k must be even";
  if shards < 1 || shards > k || k mod shards <> 0 then
    invalid_arg
      (Printf.sprintf
         "Fattree_pods.create: shards must divide k (k = %d, shards = %d)" k
         shards);
  if oversubscription < 1. then
    invalid_arg "Fattree_pods.create: oversubscription < 1";
  let sims = Array.init shards (fun _ -> Sim.create ()) in
  let group = Shard.create ~sims ~lookahead:delay in
  let chans =
    Array.init shards (fun s ->
        Array.init shards (fun d ->
            if s = d then None
            else Some (Shard.open_channel group ~src:s ~dst:d ())))
  in
  let sim_of_pod pod = sims.(shard_of_pod_ ~k ~shards pod) in
  let h = k / 2 in
  let n_hosts = k * k * k / 4 in
  (* identical creation order and names to Fattree.create, so the RNG
     stream (one split per queue) matches it link for link *)
  let mk sim rate name =
    Duplex.create ~sim ~rng ~rate_bps:rate ~delay ~buffer_pkts ~discipline
      ~name ()
  in
  let up_rate = rate_bps /. oversubscription in
  let host_links =
    Array.init n_hosts (fun i ->
        mk
          (sim_of_pod (i / hosts_per_pod k))
          rate_bps
          (Printf.sprintf "host%d" i))
  in
  let edge_agg =
    Array.init k (fun pod ->
        Array.init h (fun e ->
            Array.init h (fun a ->
                mk (sim_of_pod pod) up_rate
                  (Printf.sprintf "ea-p%d-e%d-a%d" pod e a))))
  in
  let agg_core =
    Array.init k (fun pod ->
        Array.init h (fun a ->
            Array.init h (fun j ->
                mk (sim_of_pod pod) up_rate
                  (Printf.sprintf "ac-p%d-a%d-c%d" pod a j))))
  in
  { k; n_shards = shards; group; host_links; edge_agg; agg_core; chans }

let k t = t.k
let host_count t = t.k * t.k * t.k / 4
let shards t = t.n_shards
let group t = t.group

let pod_of t host = host / hosts_per_pod t.k
let edge_of t host = host mod hosts_per_pod t.k / half t
let shard_of_pod t pod = shard_of_pod_ ~k:t.k ~shards:t.n_shards pod
let shard_of_host t host = shard_of_pod t (pod_of t host)
let sim_of_host t host = Shard.sim t.group (shard_of_host t host)

let check_pair t ~src ~dst =
  let n = host_count t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Fattree_pods: host out of range";
  if src = dst then invalid_arg "Fattree_pods: src = dst"

let cross_shard t ~src ~dst =
  check_pair t ~src ~dst;
  shard_of_host t src <> shard_of_host t dst

let channel t ~src ~dst =
  if src < 0 || src >= t.n_shards || dst < 0 || dst >= t.n_shards then None
  else t.chans.(src).(dst)

let path_count t ~src ~dst =
  check_pair t ~src ~dst;
  if pod_of t src <> pod_of t dst then half t * half t
  else if edge_of t src <> edge_of t dst then half t
  else 1

(* One direction of a cross-pod path through aggregation [a] / core
   [j]: up the source host and edge links, up the source pod's
   agg→core link, down the destination pod's core→agg link, down to
   the destination host. When the two pods live on different shards,
   the up-link keeps its (source-owned) queue but its pipe is replaced
   by the cross-shard channel of the same latency: everything before
   the cut runs on the source simulator, everything after it on the
   destination's. *)
let oneway t ~src ~dst ~a ~j =
  let p_s = pod_of t src and p_d = pod_of t dst in
  let s_s = shard_of_pod t p_s and s_d = shard_of_pod t p_d in
  let core_up =
    let l = t.agg_core.(p_s).(a).(j) in
    if s_s = s_d then Duplex.fwd_hops l
    else
      match t.chans.(s_s).(s_d) with
      | Some ch -> [| Queue.hop (Duplex.fwd_queue l); Shard.egress ch |]
      | None -> assert false
  in
  Array.concat
    [
      Duplex.fwd_hops t.host_links.(src);
      Duplex.fwd_hops t.edge_agg.(p_s).(edge_of t src).(a);
      core_up;
      Duplex.rev_hops t.agg_core.(p_d).(a).(j);
      Duplex.rev_hops t.edge_agg.(p_d).(edge_of t dst).(a);
      Duplex.rev_hops t.host_links.(dst);
    ]

let oneway_same_pod t ~src ~dst ~a =
  let p = pod_of t src in
  let e_s = edge_of t src and e_d = edge_of t dst in
  if e_s = e_d then
    Array.append
      (Duplex.fwd_hops t.host_links.(src))
      (Duplex.rev_hops t.host_links.(dst))
  else
    Array.concat
      [
        Duplex.fwd_hops t.host_links.(src);
        Duplex.fwd_hops t.edge_agg.(p).(e_s).(a);
        Duplex.rev_hops t.edge_agg.(p).(e_d).(a);
        Duplex.rev_hops t.host_links.(dst);
      ]

let all_paths t ~src ~dst =
  check_pair t ~src ~dst;
  let h = half t in
  if pod_of t src <> pod_of t dst then
    Array.init (h * h) (fun i ->
        let a = i / h and j = i mod h in
        {
          Tcp.fwd = oneway t ~src ~dst ~a ~j;
          rev = oneway t ~src:dst ~dst:src ~a ~j;
        })
  else if edge_of t src <> edge_of t dst then
    Array.init h (fun a ->
        {
          Tcp.fwd = oneway_same_pod t ~src ~dst ~a;
          rev = oneway_same_pod t ~src:dst ~dst:src ~a;
        })
  else
    [|
      {
        Tcp.fwd = oneway_same_pod t ~src ~dst ~a:0;
        rev = oneway_same_pod t ~src:dst ~dst:src ~a:0;
      };
    |]

let sample_paths t ~rng ~src ~dst ~n =
  let paths = all_paths t ~src ~dst in
  if n >= Array.length paths then paths
  else begin
    let idx = Rng.permutation rng (Array.length paths) in
    Array.init n (fun i -> paths.(idx.(i)))
  end

(* Queues owned by one shard: those of its pods' links. Used to reset
   warm-up statistics from a callback on that shard's own simulator —
   resetting another shard's queues mid-run would be a cross-domain
   write. *)
let shard_queues t s =
  let acc = ref [] in
  let hpp = hosts_per_pod t.k in
  for pod = 0 to t.k - 1 do
    if shard_of_pod t pod = s then begin
      for i = pod * hpp to ((pod + 1) * hpp) - 1 do
        let l = t.host_links.(i) in
        acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc
      done;
      Array.iter
        (fun row ->
          Array.iter
            (fun l -> acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc)
            row)
        t.edge_agg.(pod);
      Array.iter
        (fun row ->
          Array.iter
            (fun l -> acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc)
            row)
        t.agg_core.(pod)
    end
  done;
  !acc

let core_queues t =
  let acc = ref [] in
  Array.iter
    (fun pod ->
      Array.iter
        (fun agg ->
          Array.iter
            (fun l -> acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc)
            agg)
        pod)
    t.agg_core;
  !acc

let all_queues t =
  let acc = ref (core_queues t) in
  Array.iter
    (fun l -> acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc)
    t.host_links;
  Array.iter
    (fun pod ->
      Array.iter
        (fun edge ->
          Array.iter
            (fun l -> acc := Duplex.fwd_queue l :: Duplex.rev_queue l :: !acc)
            edge)
        pod)
    t.edge_agg;
  !acc
