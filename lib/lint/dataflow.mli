(** Pass 2: the interprocedural analyses (R9, R10, R11).

    Each check walks the {!Callgraph} with BFS parent links, so every
    finding explains its full call chain and carries the chain's root
    (file, line) in {!Finding.t.root} — a suppression directive at the
    entry point waives the findings it implies. Walks are in node-id
    order, so output is deterministic. *)

val check_alloc_free : ?extra_roots:string list -> Callgraph.t -> Finding.t list
(** R9: from every [[@olia.alloc_free]] entry point (plus
    [extra_roots], module-qualified names from [--alloc-free-root]),
    follow unguarded call edges and flag every unguarded allocation
    site, every float-returning function lacking [@inline], and every
    partial application, each with its chain. *)

val check_domain_safety : Callgraph.t -> Finding.t list
(** R10: inventory toplevel mutable state in [lib/] reachable from
    [Exp.Sweep.run]/[run_seq] or any scenario [run] — state domains
    would race on unless instantiated per-domain ([Domain.DLS]). *)

val check_determinism_taint : Callgraph.t -> Finding.t list
(** R11: propagate nondeterminism taint (wall clock, ambient
    randomness, Hashtbl iteration order, polymorphic float compare)
    callee-to-caller to a fixpoint along unguarded edges (calls under
    the zero-cost-off idiom — profiling self-timing, armed invariants
    — are off the replay path); flag every [lib/] output sink
    ([Trace.emit], JSON/CSV writers, [Meter.finish]) in a tainted
    function, with the chain to a concrete source. A sort in a
    function sanitizes [Table_order] taint there. *)
