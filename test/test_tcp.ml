open Mptcp_repro.Netsim
open Mptcp_repro.Cc

(* Timer handles are discarded in tests: scheduling here is fire-and-forget. *)
module Sim = struct
  include Sim

  let schedule_at ?src sim t f = ignore (Sim.schedule_at ?src sim t f : Sim.Timer.t)
  let schedule_after ?src sim d f = ignore (Sim.schedule_after ?src sim d f : Sim.Timer.t)
end

let check_close eps = Alcotest.(check (float eps))

(* One bottleneck link with configurable rate/discipline and symmetric
   40 ms pipes, as in the testbed scenarios. *)
type rig = {
  sim : Sim.t;
  queue : Queue.t;
  path : Tcp.path;
}

let make_rig ?(rate_bps = 10e6) ?(buffer = 300) ?(discipline = Queue.Droptail)
    ?(delay = 0.04) ~seed () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let queue =
    Queue.create ~sim ~rng ~rate_bps ~buffer_pkts:buffer ~discipline ()
  in
  let fwd_pipe = Pipe.create ~sim ~delay in
  let rev_pipe = Pipe.create ~sim ~delay in
  let path =
    {
      Tcp.fwd = [| Queue.hop queue; Pipe.hop fwd_pipe |];
      rev = [| Pipe.hop rev_pipe |];
    }
  in
  { sim; queue; path }

let second_path ?(rate_bps = 10e6) rig =
  (* an extra path through its own bottleneck queue *)
  let rng = Rng.create ~seed:99 in
  let q =
    Queue.create ~sim:rig.sim ~rng ~rate_bps ~buffer_pkts:300
      ~discipline:Queue.Droptail ()
  in
  let fwd_pipe = Pipe.create ~sim:rig.sim ~delay:0.04 in
  let rev_pipe = Pipe.create ~sim:rig.sim ~delay:0.04 in
  {
    Tcp.fwd = [| Queue.hop q; Pipe.hop fwd_pipe |];
    rev = [| Pipe.hop rev_pipe |];
  }

(* --- basic delivery ------------------------------------------------- *)

let test_finite_flow_completes () =
  let rig = make_rig ~seed:1 () in
  let done_at = ref nan in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~size_pkts:50 ~on_complete:(fun t -> done_at := t) ~flow_id:0 ()
  in
  Sim.run_until rig.sim 30.;
  Alcotest.(check bool) "completed" true (Tcp.completed conn);
  Alcotest.(check int) "all delivered" 50 (Tcp.total_acked conn);
  Alcotest.(check bool) "time recorded" true (Float.is_finite !done_at);
  Alcotest.(check (option (float 1e-9))) "completion_time agrees"
    (Some !done_at) (Tcp.completion_time conn)

let test_infinite_flow_saturates_link () =
  let rig = make_rig ~seed:2 () in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~flow_id:0 ()
  in
  Sim.run_until rig.sim 60.;
  let mbps = float_of_int (Tcp.total_acked conn * 12000) /. 60. /. 1e6 in
  Alcotest.(check bool) "above 7 of 10 Mb/s" true (mbps > 7.)

let test_delivery_is_exactly_once () =
  (* with heavy random loss, a finite transfer still delivers exactly its
     size, no more (completion counts unique packets) *)
  let rig =
    make_rig ~rate_bps:2e6 ~buffer:10 ~seed:3 ()
  in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~size_pkts:500 ~flow_id:0 ()
  in
  Sim.run_until rig.sim 200.;
  Alcotest.(check bool) "completed" true (Tcp.completed conn);
  Alcotest.(check int) "exact count" 500 (Tcp.total_acked conn)

let test_two_flows_share_fairly () =
  let rig = make_rig ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:10.))
      ~seed:4 () in
  let mk start flow_id =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~start ~flow_id ()
  in
  let a = mk 0. 0 and b = mk 0.3 1 in
  (* skip startup transients *)
  let snap_a = ref 0 and snap_b = ref 0 in
  Sim.schedule_at rig.sim 30. (fun () ->
      snap_a := Tcp.total_acked a;
      snap_b := Tcp.total_acked b);
  Sim.run_until rig.sim 120.;
  let ra = Tcp.total_acked a - !snap_a and rb = Tcp.total_acked b - !snap_b in
  let ratio = float_of_int ra /. float_of_int rb in
  Alcotest.(check bool)
    (Printf.sprintf "fair within 35%% (ratio %.2f)" ratio)
    true
    (ratio > 0.65 && ratio < 1.55)

let test_loss_recovery_without_timeout () =
  (* a single isolated drop at a healthy window is repaired by fast
     retransmit, not by RTO *)
  let rig = make_rig ~buffer:1000 ~seed:5 () in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~size_pkts:2000 ~flow_id:0 ()
  in
  Sim.run_until rig.sim 60.;
  Alcotest.(check bool) "completed" true (Tcp.completed conn);
  Alcotest.(check int) "no timeouts on a clean link" 0
    (Tcp.subflow_timeouts conn 0)

let test_rtt_estimate_tracks_path () =
  let rig = make_rig ~seed:6 () in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~size_pkts:100 ~flow_id:0 ()
  in
  Sim.run_until rig.sim 20.;
  (* propagation 80 ms + serialization + queueing: in [0.08, 0.5] *)
  let rtt = Tcp.subflow_rtt conn 0 in
  Alcotest.(check bool) "plausible" true (rtt >= 0.08 && rtt < 0.5)

let test_create_requires_paths () =
  let rig = make_rig ~seed:7 () in
  Alcotest.check_raises "no paths" (Invalid_argument "Tcp.create: no paths")
    (fun () ->
      ignore
        (Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[||] ~flow_id:0 ()))

let test_start_time_respected () =
  let rig = make_rig ~seed:8 () in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~start:5. ~flow_id:0 ()
  in
  Sim.run_until rig.sim 4.9;
  Alcotest.(check int) "nothing before start" 0 (Tcp.total_acked conn);
  Sim.run_until rig.sim 10.;
  Alcotest.(check bool) "data after start" true (Tcp.total_acked conn > 0)

(* --- multipath ------------------------------------------------------- *)

let test_mptcp_uses_both_paths () =
  let rig = make_rig ~seed:9 () in
  (* a second independent bottleneck on the same simulator *)
  let rng = Rng.create ~seed:11 in
  let q2 =
    Queue.create ~sim:rig.sim ~rng ~rate_bps:10e6 ~buffer_pkts:300
      ~discipline:Queue.Droptail ()
  in
  let fwd2 = Pipe.create ~sim:rig.sim ~delay:0.04 in
  let rev2 = Pipe.create ~sim:rig.sim ~delay:0.04 in
  let path2 =
    { Tcp.fwd = [| Queue.hop q2; Pipe.hop fwd2 |]; rev = [| Pipe.hop rev2 |] }
  in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Olia.create ()) ~paths:[| rig.path; path2 |]
      ~flow_id:0 ()
  in
  Sim.run_until rig.sim 60.;
  Alcotest.(check bool) "path 0 used" true (Tcp.subflow_acked conn 0 > 1000);
  Alcotest.(check bool) "path 1 used" true (Tcp.subflow_acked conn 1 > 1000);
  let mbps = float_of_int (Tcp.total_acked conn * 12000) /. 60. /. 1e6 in
  Alcotest.(check bool) "pools both links" true (mbps > 12.)

let test_mptcp_finite_flow_splits_and_completes () =
  let rig = make_rig ~seed:12 () in
  let path2 = second_path rig in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Olia.create ()) ~paths:[| rig.path; path2 |]
      ~size_pkts:300 ~flow_id:0 ()
  in
  Sim.run_until rig.sim 60.;
  Alcotest.(check bool) "completed" true (Tcp.completed conn);
  Alcotest.(check int) "no duplicate accounting" 300 (Tcp.total_acked conn);
  Alcotest.(check int) "sum of subflows" 300
    (Tcp.subflow_acked conn 0 + Tcp.subflow_acked conn 1)

let test_olia_multipath_starts_in_congestion_avoidance () =
  let rig = make_rig ~seed:13 () in
  let path2 = second_path rig in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Olia.create ()) ~paths:[| rig.path; path2 |]
      ~flow_id:0 ()
  in
  Alcotest.(check (float 1e-9)) "ssthresh forced to 1" 1.
    (Tcp.subflow_ssthresh conn 0);
  Sim.run_until rig.sim 1.;
  (* no slow-start doubling: window stays small initially *)
  Alcotest.(check bool) "no exponential burst" true
    (Tcp.subflow_cwnd conn 0 < 16.)

let test_lia_multipath_keeps_slow_start () =
  let rig = make_rig ~seed:14 () in
  let path2 = second_path rig in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Lia.create ()) ~paths:[| rig.path; path2 |]
      ~flow_id:0 ()
  in
  Alcotest.(check bool) "ssthresh unbounded" true
    (Float.equal (Tcp.subflow_ssthresh conn 0) infinity)

let test_subflow_counters () =
  let rig = make_rig ~seed:15 () in
  let path2 = second_path rig in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Lia.create ()) ~paths:[| rig.path; path2 |]
      ~flow_id:0 ()
  in
  Alcotest.(check int) "subflows" 2 (Tcp.subflow_count conn);
  Sim.run_until rig.sim 5.;
  Alcotest.(check bool) "cwnd positive" true (Tcp.subflow_cwnd conn 1 >= 1.)

(* --- stress / integration with loss -------------------------------- *)

let test_heavy_congestion_progress () =
  (* 20 flows on a tight droptail buffer: everyone still progresses *)
  let rig = make_rig ~rate_bps:5e6 ~buffer:30 ~seed:16 () in
  let conns =
    List.init 20 (fun i ->
        Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
          ~start:(float_of_int i *. 0.1) ~flow_id:i ())
  in
  Sim.run_until rig.sim 60.;
  List.iter
    (fun c ->
      Alcotest.(check bool) "every flow progresses" true
        (Tcp.total_acked c > 200))
    conns

let test_utilization_under_full_load () =
  let rig = make_rig ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:10.))
      ~seed:17 () in
  let _ =
    List.init 5 (fun i ->
        Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
          ~start:(float_of_int i *. 0.2) ~flow_id:i ())
  in
  Sim.schedule_at rig.sim 20. (fun () -> Queue.reset_stats rig.queue);
  Sim.run_until rig.sim 80.;
  let util = Queue.utilization rig.queue ~since:20. ~now:80. in
  Alcotest.(check bool)
    (Printf.sprintf "high utilization (%.3f)" util)
    true (util > 0.90)

let test_goodput_matches_loss_throughput_formula () =
  (* cross-validation with the fluid model: measured goodput within a
     factor ~[0.5, 2.2] of (1/rtt)·sqrt(2/p) under RED. The upper slack
     covers clustered drops that TCP treats as one loss event. *)
  let rig = make_rig ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:10.))
      ~seed:18 () in
  let conns =
    List.init 10 (fun i ->
        Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
          ~start:(float_of_int i *. 0.2) ~flow_id:i ())
  in
  let snaps = Array.make 10 0 in
  Sim.schedule_at rig.sim 30. (fun () ->
      Queue.reset_stats rig.queue;
      List.iteri (fun i c -> snaps.(i) <- Tcp.total_acked c) conns);
  Sim.run_until rig.sim 120.;
  let p = Queue.loss_probability rig.queue in
  Alcotest.(check bool) "loss observed" true (p > 0.001);
  let rtt = 0.08 +. 0.15 in
  (* propagation + typical RED queueing *)
  let predicted = sqrt (2. /. p) /. rtt in
  let total_pps =
    List.fold_left ( +. ) 0.
      (List.mapi
         (fun i c -> float_of_int (Tcp.total_acked c - snaps.(i)) /. 90.)
         conns)
    /. 10.
  in
  let ratio = total_pps /. predicted in
  Alcotest.(check bool)
    (Printf.sprintf "formula holds (ratio %.2f, p %.4f)" ratio p)
    true
    (ratio > 0.5 && ratio < 2.2)

let suite =
  [
    Alcotest.test_case "tcp: finite flow completes" `Quick
      test_finite_flow_completes;
    Alcotest.test_case "tcp: saturates a clean link" `Slow
      test_infinite_flow_saturates_link;
    Alcotest.test_case "tcp: exactly-once delivery under loss" `Slow
      test_delivery_is_exactly_once;
    Alcotest.test_case "tcp: two flows share fairly" `Slow
      test_two_flows_share_fairly;
    Alcotest.test_case "tcp: clean link needs no timeouts" `Quick
      test_loss_recovery_without_timeout;
    Alcotest.test_case "tcp: rtt estimate plausible" `Quick
      test_rtt_estimate_tracks_path;
    Alcotest.test_case "tcp: rejects empty paths" `Quick test_create_requires_paths;
    Alcotest.test_case "tcp: start time respected" `Quick test_start_time_respected;
    Alcotest.test_case "mptcp: pools two links" `Slow test_mptcp_uses_both_paths;
    Alcotest.test_case "mptcp: finite flow splits and completes" `Quick
      test_mptcp_finite_flow_splits_and_completes;
    Alcotest.test_case "mptcp: OLIA skips slow start" `Quick
      test_olia_multipath_starts_in_congestion_avoidance;
    Alcotest.test_case "mptcp: LIA keeps slow start" `Quick
      test_lia_multipath_keeps_slow_start;
    Alcotest.test_case "mptcp: subflow counters" `Quick test_subflow_counters;
    Alcotest.test_case "tcp: heavy congestion progress" `Slow
      test_heavy_congestion_progress;
    Alcotest.test_case "tcp: high utilization under load" `Slow
      test_utilization_under_full_load;
    Alcotest.test_case "tcp: loss-throughput formula" `Slow
      test_goodput_matches_loss_throughput_formula;
  ]

let test_subflow_join_delay () =
  let rig = make_rig ~seed:20 () in
  let path2 = second_path rig in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Olia.create ()) ~paths:[| rig.path; path2 |]
      ~subflow_join_delay:5. ~flow_id:0 ()
  in
  Sim.run_until rig.sim 4.;
  Alcotest.(check bool) "first subflow active" true
    (Tcp.subflow_acked conn 0 > 0);
  Alcotest.(check int) "second subflow waiting" 0 (Tcp.subflow_acked conn 1);
  Sim.run_until rig.sim 15.;
  Alcotest.(check bool) "second subflow joined" true
    (Tcp.subflow_acked conn 1 > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "mptcp: subflow join delay" `Quick
        test_subflow_join_delay;
    ]

let test_rto_backoff_and_reset () =
  (* a blackhole path: every RTO doubles the timer; after the path heals
     the next RTT sample restores a normal RTO *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:30 in
  let broken = ref true in
  let gate (p : Packet.t) = if not !broken then Packet.forward p in
  let q = Queue.create ~sim ~rng ~rate_bps:10e6 ~buffer_pkts:50
      ~discipline:Queue.Droptail () in
  let fwd = Pipe.create ~sim ~delay:0.02 and rv = Pipe.create ~sim ~delay:0.02 in
  let conn =
    Tcp.create ~sim ~cc:(Reno.create ())
      ~paths:[| { Tcp.fwd = [| gate; Queue.hop q; Pipe.hop fwd |];
                  rev = [| Pipe.hop rv |] } |]
      ~size_pkts:50 ~flow_id:0 ()
  in
  Sim.run_until sim 10.;
  let timeouts_during_blackhole = Tcp.subflow_timeouts conn 0 in
  (* exponential backoff: in 10 s we see only a handful of attempts *)
  Alcotest.(check bool)
    (Printf.sprintf "backoff limits retries (%d)" timeouts_during_blackhole)
    true
    (timeouts_during_blackhole >= 3 && timeouts_during_blackhole <= 8);
  broken := false;
  Sim.run_until sim 120.;
  Alcotest.(check bool) "completes after healing" true (Tcp.completed conn)

let test_rcv_wnd_caps_flight () =
  let rig = make_rig ~buffer:2000 ~seed:31 () in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~rcv_wnd:5. ~flow_id:0 ()
  in
  Sim.run_until rig.sim 20.;
  (* 5 packets per ~0.1 s RTT: goodput is pinned near 50 pkt/s *)
  let pps = float_of_int (Tcp.total_acked conn) /. 20. in
  Alcotest.(check bool) (Printf.sprintf "capped (%.0f pkt/s)" pps) true
    (pps < 70.)

let test_completion_callback_time_matches () =
  let rig = make_rig ~seed:32 () in
  let cb_time = ref nan in
  let conn =
    Tcp.create ~sim:rig.sim ~cc:(Reno.create ()) ~paths:[| rig.path |]
      ~size_pkts:20 ~on_complete:(fun t -> cb_time := t) ~flow_id:0 ()
  in
  Sim.run_until rig.sim 30.;
  match Tcp.completion_time conn with
  | Some t ->
    Alcotest.(check (float 1e-12)) "callback time" t !cb_time;
    Alcotest.(check bool) "sane time" true (t > 0.08 && t < 10.)
  | None -> Alcotest.fail "did not complete"

let suite =
  suite
  @ [
      Alcotest.test_case "tcp: rto backoff and healing" `Quick
        test_rto_backoff_and_reset;
      Alcotest.test_case "tcp: rcv_wnd caps flight" `Quick
        test_rcv_wnd_caps_flight;
      Alcotest.test_case "tcp: completion callback" `Quick
        test_completion_callback_time_matches;
    ]
