(* Tests of the sharded simulation runtime: pod-cut extraction on the
   FatTree, deterministic cross-shard merge order, the shards=1 ≡
   sequential golden, shard-count invariance bands, determinism of
   sharded runs, and byte-identical trace decode across shard counts. *)

open Mptcp_repro.Netsim
module Ftp = Mptcp_repro.Topology.Fattree_pods
module Fattree = Mptcp_repro.Topology.Fattree
module Fs = Mptcp_repro.Scenarios.Fattree_sharded
module Workload = Mptcp_repro.Workload

let seq_pool thunks = Array.iter (fun f -> f ()) thunks

let make_pods ?(k = 4) ?(shards = 2) ?(seed = 1) () =
  Ftp.create ~shards ~rng:(Rng.create ~seed) ~k ~rate_bps:10e6 ~delay:0.001
    ~buffer_pkts:100 ~discipline:Queue.Droptail ()

(* --- pod-cut extraction ------------------------------------------------ *)

let test_cut_k4 () =
  let t = make_pods ~k:4 ~shards:2 () in
  Alcotest.(check int) "hosts" 16 (Ftp.host_count t);
  Alcotest.(check int) "shards" 2 (Ftp.shards t);
  Alcotest.(check (list int)) "pod blocks" [ 0; 0; 1; 1 ]
    (List.map (Ftp.shard_of_pod t) [ 0; 1; 2; 3 ]);
  (* hosts 0-7 live in pods 0-1 (shard 0), hosts 8-15 in pods 2-3 *)
  Alcotest.(check int) "host 0" 0 (Ftp.shard_of_host t 0);
  Alcotest.(check int) "host 7" 0 (Ftp.shard_of_host t 7);
  Alcotest.(check int) "host 8" 1 (Ftp.shard_of_host t 8);
  Alcotest.(check bool) "same shard" false (Ftp.cross_shard t ~src:0 ~dst:7);
  Alcotest.(check bool) "cross shard" true (Ftp.cross_shard t ~src:0 ~dst:8);
  (* path multiplicity matches the uncut tree *)
  Alcotest.(check int) "same edge" 1 (Ftp.path_count t ~src:0 ~dst:1);
  Alcotest.(check int) "same pod" 2 (Ftp.path_count t ~src:0 ~dst:2);
  Alcotest.(check int) "cross pod" 4 (Ftp.path_count t ~src:0 ~dst:15);
  (* the cut replaces the agg->core pipe with a channel hop: same length *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let plain =
    Fattree.create ~sim ~rng ~k:4 ~rate_bps:10e6 ~delay:0.001
      ~buffer_pkts:100 ~discipline:Queue.Droptail ()
  in
  let len p = Array.length p.Tcp.fwd + Array.length p.Tcp.rev in
  Array.iteri
    (fun i p ->
      Alcotest.(check int) "hop count" (len (Fattree.all_paths plain ~src:0 ~dst:15).(i))
        (len p))
    (Ftp.all_paths t ~src:0 ~dst:15)

let test_cut_k8 () =
  let t = make_pods ~k:8 ~shards:4 () in
  Alcotest.(check int) "hosts" 128 (Ftp.host_count t);
  Alcotest.(check (list int)) "pod blocks" [ 0; 0; 1; 1; 2; 2; 3; 3 ]
    (List.map (Ftp.shard_of_pod t) [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  (* one channel per ordered shard pair, none on the diagonal *)
  let chans = ref 0 in
  for s = 0 to 3 do
    for d = 0 to 3 do
      match Ftp.channel t ~src:s ~dst:d with
      | Some _ ->
        incr chans;
        Alcotest.(check bool) "off-diagonal" true (s <> d)
      | None -> Alcotest.(check bool) "diagonal" true (s = d)
    done
  done;
  Alcotest.(check int) "channel count" 12 !chans;
  Alcotest.(check int) "cross pod paths" 16 (Ftp.path_count t ~src:0 ~dst:127)

let test_cut_rejects_bad_shards () =
  Alcotest.check_raises "3 does not divide 4"
    (Invalid_argument
       "Fattree_pods.create: shards must divide k (k = 4, shards = 3)")
    (fun () -> ignore (make_pods ~k:4 ~shards:3 ()));
  Alcotest.check_raises "more shards than pods"
    (Invalid_argument
       "Fattree_pods.create: shards must divide k (k = 4, shards = 8)")
    (fun () -> ignore (make_pods ~k:4 ~shards:8 ()))

(* --- merge order -------------------------------------------------------- *)

let msg ~arrival ~src_shard ~src_seq ~chan_id ~chan_seq =
  {
    Shard.arrival; egress = arrival; src_shard; src_seq; chan_id; chan_seq;
    kind = Packet.Data;
    pkt_seq = 0; flow = 0; subflow = 0; hop = 0; route = [||]; ackno = 0;
    sack = None; sent_at = 0.; enqueued_at = 0.; echo = 0.;
  }

(* Per-channel batches (arrival non-decreasing, chan_seq increasing,
   src_seq increasing per source shard, as the runtime produces them):
   the merged dispatch order is the unique global (arrival, egress,
   src_shard, src_seq) order, however the batches are arranged. *)
let prop_merge_is_sequential_order =
  QCheck.Test.make ~name:"shard: merge = sequential dispatch order" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 6)
        (pair (pair (int_range 0 3) (int_range 0 7))
           (small_list (int_range 0 20))))
    (fun chans ->
      let counters = Array.make 4 0 in
      let batches =
        List.mapi
          (fun chan_id ((src_shard, _), deltas) ->
            let t = ref 0. in
            List.mapi
              (fun chan_seq d ->
                t := !t +. float_of_int d;
                let src_seq = counters.(src_shard) in
                counters.(src_shard) <- src_seq + 1;
                msg ~arrival:!t ~src_shard ~src_seq ~chan_id ~chan_seq)
              deltas)
          chans
      in
      let merged = Shard.merge batches in
      let sequential = List.sort Shard.compare_msg (List.concat batches) in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          Shard.compare_msg a b <= 0 && sorted rest
        | _ -> true
      in
      merged = sequential && sorted merged
      (* within a channel the runtime order (chan_seq) survives the merge *)
      && List.for_all
           (fun batch ->
             let kept =
               List.filter
                 (fun m ->
                   match batch with
                   | [] -> false
                   | b :: _ -> m.Shard.chan_id = b.Shard.chan_id)
                 merged
             in
             List.map (fun m -> m.Shard.chan_seq) kept
             = List.map (fun m -> m.Shard.chan_seq) batch)
           batches)

let test_windows () =
  Alcotest.(check int) "exact" 10 (Shard.windows ~lookahead:0.001 ~horizon:0.01);
  Alcotest.(check int) "ragged" 11 (Shard.windows ~lookahead:0.001 ~horizon:0.0101);
  Alcotest.(check int) "sub-window" 1 (Shard.windows ~lookahead:1. ~horizon:0.5);
  Alcotest.(check int) "empty" 0 (Shard.windows ~lookahead:1. ~horizon:0.)

(* --- shards=1 ≡ sequential golden --------------------------------------- *)

(* The same seed drives an uncut Fattree under Sim.run_until and a
   shards=1 Fattree_pods under the window loop: identical construction,
   identical RNG stream, so per-flow delivered counts match exactly. *)
let run_workload ~mk_paths ~sim_of_host ~run ~seed =
  let rng = Rng.create ~seed in
  let hosts = 16 in
  let flows =
    Workload.permutation_long_flows ~rng:(Rng.split rng) ~hosts ~max_jitter:1.
  in
  let conns =
    List.mapi
      (fun i { Workload.start; src; dst; _ } ->
        Tcp.create ~sim:(sim_of_host src)
          ~cc:(Mptcp_repro.Cc.Olia.create ())
          ~paths:(mk_paths ~rng ~src ~dst)
          ~start ~flow_id:i ())
      flows
  in
  run ();
  List.map Tcp.total_acked conns

let test_shards1_matches_sequential () =
  let horizon = 3. in
  let seq =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:7 in
    let tree =
      Fattree.create ~sim ~rng ~k:4 ~rate_bps:10e6 ~delay:0.001
        ~buffer_pkts:100 ~discipline:Queue.Droptail ()
    in
    run_workload ~seed:7
      ~mk_paths:(fun ~rng ~src ~dst -> Fattree.sample_paths tree ~rng ~src ~dst ~n:2)
      ~sim_of_host:(fun _ -> sim)
      ~run:(fun () -> Sim.run_until sim horizon)
  in
  let sharded =
    let t = make_pods ~k:4 ~shards:1 ~seed:7 () in
    run_workload ~seed:7
      ~mk_paths:(fun ~rng ~src ~dst -> Ftp.sample_paths t ~rng ~src ~dst ~n:2)
      ~sim_of_host:(Ftp.sim_of_host t)
      ~run:(fun () ->
        Shard.run_windows ~pool:seq_pool (Ftp.group t) ~horizon)
  in
  Alcotest.(check (list int)) "per-flow delivered packets" seq sharded;
  Alcotest.(check bool) "progress" true (List.exists (fun n -> n > 0) seq)

(* --- shard-count invariance and determinism ----------------------------- *)

let small_cfg shards =
  { Fs.default with Fs.k = 4; shards; flows_per_host = 1; duration = 2.;
    warmup = 0.5; seed = 3 }

let test_invariance_bands () =
  let r1 = Fs.run (small_cfg 1) in
  let r2 = Fs.run (small_cfg 2) in
  let rel a b = abs_float (a -. b) /. Stdlib.max (abs_float a) 1e-9 in
  Alcotest.(check bool) "aggregate within 10%" true
    (rel r1.Fs.aggregate_mbps r2.Fs.aggregate_mbps < 0.10);
  Alcotest.(check bool) "median within 10%" true
    (rel r1.Fs.p50_flow_mbps r2.Fs.p50_flow_mbps < 0.10);
  Alcotest.(check int) "no cut traffic sequentially" 0 r1.Fs.cut_messages;
  Alcotest.(check bool) "cut traffic sharded" true (r2.Fs.cut_messages > 0)

let test_sharded_run_deterministic () =
  let r1 = Fs.run (small_cfg 2) in
  let r2 = Fs.run (small_cfg 2) in
  Alcotest.(check (array (float 0.)) "per-flow goodput bitwise")
    r1.Fs.flow_mbps r2.Fs.flow_mbps;
  Alcotest.(check int) "cut messages" r1.Fs.cut_messages r2.Fs.cut_messages

(* --- sharded tracing ----------------------------------------------------- *)

(* Per-worker trace rings replaced the old run_windows tracing refusal:
   each worker domain binds its own pre-allocated ring, and the offline
   decoder merges them back into the scheduler's dispatch order. The
   check that matters is byte-level — a 2-shard traced run must decode
   to exactly the event stream of the 1-shard run. *)
let traced_lines shards =
  Mptcp_repro.Obs.Trace.arm_rings ~capacity:(1 lsl 19) ();
  Fun.protect
    ~finally:(fun () -> Mptcp_repro.Obs.Trace.disarm_rings ())
    (fun () ->
      ignore (Fs.run (small_cfg shards));
      Alcotest.(check int) "no ring overflow" 0
        (Mptcp_repro.Obs.Trace.rings_dropped ());
      List.map
        (fun ev -> Repro_stats.Json.to_string (Mptcp_repro.Obs.Trace.to_json ev))
        (Mptcp_repro.Obs.Trace.decode_rings ()))

let test_traced_decode_shard_invariant () =
  let base = traced_lines 1 in
  let shd = traced_lines 2 in
  Alcotest.(check int) "event counts" (List.length base) (List.length shd);
  Alcotest.(check bool) "decoded traces byte-identical" true (base = shd);
  Alcotest.(check bool) "non-trivial trace" true (List.length base > 1000)

let suite =
  [
    Alcotest.test_case "pod cut k=4" `Quick test_cut_k4;
    Alcotest.test_case "pod cut k=8" `Quick test_cut_k8;
    Alcotest.test_case "rejects bad shard counts" `Quick
      test_cut_rejects_bad_shards;
    QCheck_alcotest.to_alcotest prop_merge_is_sequential_order;
    Alcotest.test_case "window count" `Quick test_windows;
    Alcotest.test_case "shards=1 = sequential (golden)" `Slow
      test_shards1_matches_sequential;
    Alcotest.test_case "shard-count invariance bands" `Slow
      test_invariance_bands;
    Alcotest.test_case "sharded run deterministic" `Slow
      test_sharded_run_deterministic;
    Alcotest.test_case "traced decode is shard-count invariant" `Slow
      test_traced_decode_shard_invariant;
  ]
