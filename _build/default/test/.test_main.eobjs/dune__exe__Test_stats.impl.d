test/test_stats.ml: Alcotest Array Filename Float Gen Histogram List Mptcp_repro QCheck QCheck_alcotest Seq String Summary Sys Table Timeseries
