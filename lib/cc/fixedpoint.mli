(** u64-style fixed-point primitives on OCaml's native int, twinned
    with the arithmetic of the kernel's [mptcp_olia.c]/[mptcp_balia.c]
    (linux-4.1 MPTCP tree, SNIPPETS.md). Operands are nonnegative by
    convention; products and shifts saturate at [max_int] where the
    kernel's u64 would wrap. *)

val scale : int
(** OLIA's cwnd/rate scale shift (10 bits). *)

val alpha_scale : int
(** BALIA's alpha fixed-point scale (10 bits). *)

val rate_scale_limit : int
(** BALIA rescales rates once the largest exceeds [2^rate_scale_limit]. *)

val scale_num : int
(** Bits removed per BALIA rescale step. *)

val one : int
(** [1 lsl scale]: 1.0 in [scale] units. *)

val cnt_wrap : int
(** [(1 lsl scale) - 1]: snd_cwnd_cnt units per full cwnd step. *)

val div_u64 : int -> int -> int
(** [div_u64 num den] is [num / den], or 0 when [den <= 0] (the
    kernel's div_u64 contract under its zero-divisor floors). *)

val add_sat : int -> int -> int
(** Saturating addition of nonnegative ints. *)

val mul_sat : int -> int -> int
(** Saturating multiplication of nonnegative ints. *)

val shift_sat : int -> int -> int
(** [shift_sat v n] is [v lsl n], saturating at [max_int]. *)

val scale_sat : int -> int
(** [shift_sat v scale]: the mptcp_olia_scale twin. *)

val num_scale_down : int -> int
(** Rescale steps needed to bring a max rate at or below
    [2^rate_scale_limit]. *)

val rescale : int -> int -> int
(** [rescale v down] shifts [v] right by [scale_num * down] bits. *)

val of_float_scaled : float -> int
(** Nearest fixed-point value (in [scale] units) of a nonnegative
    float. Float-boundary helper. *)

val to_float_scaled : int -> float
(** Inverse of {!of_float_scaled} up to rounding. *)

val usec_of_sec : float -> int
(** Seconds to srtt microseconds, floored at 1. Float-boundary
    helper. *)
