lib/cc/balia.ml: Array Cc_types Stdlib
