(* Pooled packet records.

   Layout choices are driven by the zero-alloc forwarding path:

   - [kind] is a constant constructor; the ACK payload lives in plain
     fields ([ackno], [sack]) so building an ACK allocates nothing.
   - the float timestamps live in [stamps], a float-only record, so
     re-stamping them is an unboxed store. In the main (mixed) record a
     [mutable float] field would box on every write.
   - records are recycled through a per-domain free list: [data]/[ack]
     pop a cell, [free] pushes it back. Sinks and drop sites own the
     packet and must [free] it; [live] catches double frees and
     use-after-free when OLIA_DEBUG_INVARIANTS is armed. *)

type kind = Data | Ack

type stamps = {
  mutable sent_at : float;
  mutable enqueued_at : float;
  mutable echo : float;
}

type t = {
  mutable kind : kind;
  mutable seq : int;
  mutable size_bytes : int;
  mutable flow : int;
  mutable subflow : int;
  mutable hop : int;
  mutable route : hop array;
  mutable ackno : int;
  mutable sack : (int * int) option;
  times : stamps;
  mutable live : bool;
}

and hop = t -> unit

let data_size = 1500
let ack_size = 40
let kind_name p = match p.kind with Data -> "data" | Ack -> "ack"
let[@inline] kind_code = function Data -> 0 | Ack -> 1
let no_route : hop array = [||]

let fresh () =
  (* lint: allow R9 -- pool-miss cold path: once the per-domain pool warms up, data/ack recycle cells and never reach [fresh] *)
  {
    kind = Data;
    seq = 0;
    size_bytes = 0;
    flow = 0;
    subflow = 0;
    hop = 0;
    route = no_route;
    ackno = 0;
    sack = None;
    (* lint: allow R9 -- same pool-miss cold path as the outer record *)
    times = { sent_at = 0.; enqueued_at = 0.; echo = 0. };
    live = true;
  }

let sentinel () =
  let p = fresh () in
  p.live <- false;
  p

type pool = { mutable stack : t array; mutable len : int }

(* Per-domain free list: Exp.Sweep runs simulations on multiple domains,
   and a domain-local pool needs no locking. *)
let pool_key = Domain.DLS.new_key (fun () -> { stack = [||]; len = 0 })

let alloc () =
  let pool = Domain.DLS.get pool_key in
  if pool.len = 0 then fresh ()
  else begin
    pool.len <- pool.len - 1;
    let p = pool.stack.(pool.len) in
    p.live <- true;
    p
  end

let[@olia.alloc_free] free p =
  if Invariant.enabled () then
    Invariant.require p.live "Packet.free: packet already freed";
  p.live <- false;
  p.route <- no_route;
  p.sack <- None;
  let pool = Domain.DLS.get pool_key in
  if pool.len = Array.length pool.stack then begin
    let cap = max 64 (2 * pool.len) in
    (* lint: allow R9 -- amortized pool growth: doubling makes this O(1) amortized and absent at steady state *)
    let stack = Array.make cap p in
    Array.blit pool.stack 0 stack 0 pool.len;
    pool.stack <- stack
  end;
  pool.stack.(pool.len) <- p;
  pool.len <- pool.len + 1

let[@inline] [@olia.alloc_free] data ~flow ~subflow ~seq ~sent_at ~route =
  let p = alloc () in
  p.kind <- Data;
  p.seq <- seq;
  p.size_bytes <- data_size;
  p.flow <- flow;
  p.subflow <- subflow;
  p.hop <- 0;
  p.route <- route;
  p.ackno <- 0;
  p.sack <- None;
  p.times.sent_at <- sent_at;
  p.times.enqueued_at <- sent_at;
  p.times.echo <- 0.;
  p

let[@inline] [@olia.alloc_free] ack ~flow ~subflow ~ackno ~echo ~sack ~route ~sent_at =
  let p = alloc () in
  p.kind <- Ack;
  p.seq <- 0;
  p.size_bytes <- ack_size;
  p.flow <- flow;
  p.subflow <- subflow;
  p.hop <- 0;
  p.route <- route;
  p.ackno <- ackno;
  p.sack <- sack;
  p.times.sent_at <- sent_at;
  p.times.enqueued_at <- sent_at;
  p.times.echo <- echo;
  p

let[@olia.alloc_free] forward p =
  if Invariant.enabled () then begin
    Invariant.require p.live "packet forwarded after free";
    Invariant.require
      (p.hop >= 0 && p.hop < Array.length p.route)
      (Printf.sprintf
         "packet flow %d subflow %d seq %d: hop %d outside route of length \
          %d"
         p.flow p.subflow p.seq p.hop (Array.length p.route))
  end;
  assert (p.hop < Array.length p.route);
  let h = p.route.(p.hop) in
  p.hop <- p.hop + 1;
  h p
