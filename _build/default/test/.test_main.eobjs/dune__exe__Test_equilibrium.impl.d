test/test_equilibrium.ml: Alcotest Array Equilibrium Mptcp_repro Network_model Olia_ode
