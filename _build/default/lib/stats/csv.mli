(** Minimal CSV writing for exporting experiment series to plotting
    tools. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val write_rows :
  path:string -> header:string list -> string list list -> unit
(** Write a header and rows to [path], creating or truncating it. *)

val write_series :
  path:string -> columns:string list -> float list list -> unit
(** Numeric convenience: every row printed with [%.6g]. Raises
    [Invalid_argument] if a row's width differs from the header's. *)

val of_timeseries :
  path:string -> name:string -> Timeseries.t -> unit
(** Dump a time series as [time,<name>] rows. *)
