lib/scenarios/common.mli: Repro_cc Repro_netsim
