(** Fixed-point analysis of Scenario B (paper §III-B, Appendix B, Fig. 4,
    Tables I–II, Fig. 17).

    [n] Blue users (multihomed via ISPs X and Y) and [n] Red users
    (initially connected only through Y, optionally upgrading to MPTCP via
    X). Only links X and T are bottlenecks, with total capacities [cx] and
    [ct] in packets per second. All paths share round-trip time [rtt]. *)

type params = { n : int; cx : float; ct : float; rtt : float }

type regime =
  | X_more_congested  (** [pX ≥ pT]; holds when [cx/ct ≤ 5/9] *)
  | T_more_congested  (** [pT ≥ pX] *)

type lia_point = {
  regime : regime;
  px : float;  (** loss probability at ISP X *)
  pt : float;  (** loss probability at ISP T *)
  x1 : float;  (** per-user Blue rate via X *)
  x2 : float;  (** per-user Blue rate via T *)
  y1 : float;  (** per-user Red rate via X (the upgraded subflow) *)
  y2 : float;  (** per-user Red rate via Y *)
  blue_total : float;
  red_total : float;
  aggregate : float;  (** n·(blue_total + red_total) *)
}

val lia_red_multipath : params -> lia_point
(** Fixed point of LIA when Red users have upgraded to MPTCP: solves the
    capacity system [cx = n(x1+y1)], [ct = n(x2+y1+y2)] with the LIA
    loss-throughput formulas of §III-B (quadratic regime for
    [cx/ct < 5/9], otherwise the quintic regime, both reduced to a
    monotone scalar equation in the loss-probability ratio). *)

type allocation = { blue_total : float; red_total : float; aggregate : float }

val lia_red_singlepath : params -> allocation
(** Baseline where Red users use regular TCP through Y only: as the paper
    notes, this reduces to Scenario C with [c1 = cx/n], [c2 = ct/n] and
    [n1 = n2 = n]. *)

val optimum_red_singlepath : params -> allocation
(** Optimum with probing cost, Red single-path (Appendix B Eqs. 11–12). *)

val optimum_red_multipath : params -> allocation
(** Optimum with probing cost after Red upgrade (Appendix B Eqs. 13–14):
    strictly smaller than [optimum_red_singlepath] by the probing
    overhead [n/rtt]. *)

val normalized : params -> allocation -> float * float
(** [(blue, red)] rates normalized by [ct/n], the y-axis of Fig. 4. *)

val x_congested_quadratic : rho:float -> float array
(** Coefficients (constant first) of the Appendix-B quadratic
    [2s² + (5 − 2ρ)s + (2 − 3ρ)] whose root > 1 is the loss ratio
    [s = pX/pT] in the X-more-congested regime, with [ρ = ct/cx ≥ 9/5].
    Exposed so tests can cross-check the numeric solver against the
    paper's closed form. *)
