(* The observability layer: trace events round-trip through JSONL, the
   per-run counters agree with what a Monitor sees on the same queues,
   and — crucially — arming tracing never changes simulation results. *)

open Repro_netsim

(* Timer handles are discarded in tests: scheduling here is fire-and-forget. *)
module Sim = struct
  include Sim

  let schedule_at ?src sim t f = ignore (Sim.schedule_at ?src sim t f : Sim.Timer.t)
  let schedule_after ?src sim d f = ignore (Sim.schedule_after ?src sim d f : Sim.Timer.t)
end
module Trace = Repro_obs.Trace
module Meter = Repro_obs.Meter
module Snapshot = Repro_obs.Snapshot
module Json = Repro_stats.Json
module S = Repro_scenarios

(* --- trace events ---------------------------------------------------- *)

let every_variant =
  [
    Trace.Pkt_enqueue
      {
        time = 0.125;
        queue = "r1";
        flow = 3;
        subflow = 1;
        seq = 42;
        kind = "data";
        backlog = 7;
      };
    Trace.Pkt_drop
      {
        time = 0.25;
        queue = "ap";
        flow = 0;
        subflow = 0;
        seq = 9;
        kind = "data";
        cause = Trace.Overflow;
      };
    Trace.Pkt_drop
      {
        time = 0.5;
        queue = "ap";
        flow = 1;
        subflow = 2;
        seq = 10;
        kind = "data";
        cause = Trace.Red_early;
      };
    Trace.Pkt_drop
      {
        time = 0.75;
        queue = "wifi";
        flow = 1;
        subflow = 0;
        seq = 11;
        kind = "ack";
        cause = Trace.Random_loss;
      };
    Trace.Pkt_drop
      {
        time = 0.875;
        queue = "fault-gate";
        flow = 2;
        subflow = 1;
        seq = 13;
        kind = "data";
        cause = Trace.Link_down;
      };
    Trace.Pkt_forward
      {
        time = 1.5;
        queue = "r2";
        flow = 2;
        subflow = 1;
        seq = 12;
        kind = "data";
        bytes = 1500;
        qdelay = 0.0375;
      };
    Trace.Tcp_state
      {
        time = 2.0;
        flow = 4;
        subflow = 0;
        from_state = Trace.Slow_start;
        to_state = Trace.Fast_recovery;
      };
    Trace.Tcp_state
      {
        time = 2.25;
        flow = 4;
        subflow = 0;
        from_state = Trace.Fast_recovery;
        to_state = Trace.Congestion_avoidance;
      };
    Trace.Cwnd_update
      { time = 3.0; flow = 0; subflow = 1; cwnd = 14.5; ssthresh = 7.25 };
    Trace.Rto_fired { time = 4.0; flow = 1; subflow = 1; rto = 1.5 };
    Trace.Rtt_sample
      { time = 4.5; flow = 1; subflow = 0; rtt = 0.082; srtt = 0.0795 };
    Trace.Subflow_add { time = 0.0; flow = 5; subflow = 1 };
    Trace.Subflow_remove { time = 9.5; flow = 5; subflow = 1 };
  ]

let test_event_round_trip () =
  List.iter
    (fun ev ->
      let serialized = Json.to_string (Trace.to_json ev) in
      match Json.of_string serialized with
      | Error e -> Alcotest.fail ("event does not re-parse: " ^ e)
      | Ok j -> (
        match Trace.of_json j with
        | Error e -> Alcotest.fail ("event does not decode: " ^ e)
        | Ok ev' ->
          Alcotest.(check bool)
            ("round-trip: " ^ serialized)
            true (ev = ev')))
    every_variant

let test_event_bad_json () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | Error _ -> ()
      | Ok j -> (
        match Trace.of_json j with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail ("decoded a non-event: " ^ src)))
    [ {|{"ev":"no_such_event","t":1}|}; {|{"t":1}|}; {|[1,2]|} ]

let test_jsonl_sink () =
  let path = Filename.temp_file "olia_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.with_jsonl ~path (fun () ->
          Alcotest.(check bool) "armed" true (Trace.enabled ());
          List.iter Trace.emit every_variant);
      Alcotest.(check bool) "disarmed after" false (Trace.enabled ());
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int)
        "one line per event"
        (List.length every_variant)
        (List.length lines);
      List.iter2
        (fun ev line ->
          match Json.of_string line with
          | Error e -> Alcotest.fail ("line is not JSON: " ^ e)
          | Ok j -> (
            match Trace.of_json j with
            | Error e -> Alcotest.fail ("line is not an event: " ^ e)
            | Ok ev' ->
              Alcotest.(check bool) "line decodes to the event" true (ev = ev')))
        every_variant lines)

(* --- counters vs Monitor --------------------------------------------- *)

(* Flood a small DropTail queue and cross-check the meter counters
   against the queue's own statistics and a Monitor drop series. *)
let test_counters_match_monitor () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let q =
    Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:5
      ~discipline:Queue.Droptail ()
  in
  let mon = Monitor.create ~sim ~period:0.01 ~stop:0.2 () in
  Monitor.watch_drops mon "drops" q;
  let sink (_ : Packet.t) = () in
  let route = [| Queue.hop q; sink |] in
  Sim.schedule_at sim 0. (fun () ->
      for i = 0 to 19 do
        Packet.forward (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:0. ~route)
      done);
  let meter = Meter.start () in
  Sim.run sim;
  let r =
    Meter.finish meter ~sim_s:(Sim.now sim)
      ~events_processed:(Sim.events_processed sim)
      ~max_heap_depth:(Sim.max_heap_depth sim)
      ~drops_overflow:(Queue.drops_overflow q) ~drops_red:(Queue.drops_red q)
      ~drops_random:0 ~subflow_goodput_bps:[]
  in
  Alcotest.(check int) "overflow drops" 15 r.Meter.drops_overflow;
  Alcotest.(check int) "no red drops on droptail" 0 r.Meter.drops_red;
  Alcotest.(check int)
    "split sums to the queue total"
    (Queue.drops q)
    (r.Meter.drops_overflow + r.Meter.drops_red);
  (match Repro_stats.Timeseries.last (Monitor.series mon "drops") with
  | None -> Alcotest.fail "monitor recorded nothing"
  | Some (_, v) ->
    Alcotest.(check int)
      "monitor's last sample agrees" (Queue.drops q) (int_of_float v));
  Alcotest.(check bool) "events processed" true (r.Meter.events_processed > 0);
  Alcotest.(check bool) "heap high-water mark" true (r.Meter.max_heap_depth > 0);
  Alcotest.(check bool)
    "heap mark bounds pending peak" true
    (r.Meter.max_heap_depth <= r.Meter.events_processed)

let small = { S.Scen_a.default with duration = 8.; warmup = 2. }

let test_scenario_metrics_exported () =
  let r = S.Scen_a.run small in
  let metrics = Meter.metrics r.S.Scen_a.obs in
  List.iter
    (fun key ->
      match List.assoc_opt key metrics with
      | None -> Alcotest.fail ("missing metric " ^ key)
      | Some v ->
        Alcotest.(check bool) (key ^ " finite and >= 0") true
          (Float.is_finite v && v >= 0.))
    [
      "obs_events";
      "obs_max_heap_depth";
      "obs_drops_overflow";
      "obs_drops_red";
      "obs_drops_random";
      "obs_subflow_goodput_bps_type1_sf0";
      "obs_subflow_goodput_bps_type1_sf1";
      "obs_subflow_goodput_bps_type2_sf0";
    ];
  Alcotest.(check bool)
    "a real run dispatches events" true
    (List.assoc "obs_events" metrics > 0.);
  (* the per-subflow goodputs feed the conformance harness: on scenario A
     every subflow carries traffic, so each must report a positive rate *)
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " positive") true
        (List.assoc key metrics > 0.))
    [
      "obs_subflow_goodput_bps_type1_sf0";
      "obs_subflow_goodput_bps_type1_sf1";
      "obs_subflow_goodput_bps_type2_sf0";
    ];
  (* and through the registry: the outcome carries the same keys *)
  let (module Sc : S.Registry.SCENARIO) = S.Registry.find "scenario-a" in
  let outcome =
    Sc.run
      [
        ("duration", Repro_exp.Spec.Float 8.);
        ("warmup", Repro_exp.Spec.Float 2.);
      ]
  in
  Alcotest.(check bool)
    "registry outcome exports obs_events" true
    (Repro_exp.Outcome.metric outcome "obs_events" > 0.)

(* --- tracing off is a no-op ------------------------------------------ *)

let deterministic_view (r : S.Scen_a.result) =
  ( r.S.Scen_a.norm_type1,
    r.S.Scen_a.norm_type2,
    r.S.Scen_a.p1,
    r.S.Scen_a.p2,
    Meter.metrics r.S.Scen_a.obs )

let test_tracing_off_noop () =
  Alcotest.(check bool) "tests run untraced" false (Trace.enabled ());
  let before = deterministic_view (S.Scen_a.run small) in
  let seen = ref 0 in
  Trace.set_sink (Some (fun (_ : Trace.event) -> incr seen));
  let traced =
    Fun.protect
      ~finally:(fun () -> Trace.set_sink None)
      (fun () -> deterministic_view (S.Scen_a.run small))
  in
  Alcotest.(check bool) "disarmed again" false (Trace.enabled ());
  let after = deterministic_view (S.Scen_a.run small) in
  Alcotest.(check bool) "tracing emitted events" true (!seen > 0);
  Alcotest.(check bool) "tracing does not change results" true
    (before = traced);
  Alcotest.(check bool) "and leaves no residue" true (before = after)

(* --- perf snapshots --------------------------------------------------- *)

let snap entries = Snapshot.v ~quick:true entries

let test_snapshot_round_trip () =
  let path = Filename.temp_file "olia_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t =
        snap
          [
            Snapshot.entry ~name:Snapshot.calibration_entry ~value:1000.
              ~units:"ns/run";
            Snapshot.entry ~name:"micro/olia-increase" ~value:250.5
              ~units:"ns/run";
            Snapshot.entry ~name:"scenario/scenario-a" ~value:0.02
              ~units:"s_wall/s_sim";
          ]
      in
      Snapshot.write ~path t;
      match Snapshot.read ~path with
      | Error e -> Alcotest.fail e
      | Ok t' ->
        Alcotest.(check bool) "round-trips" true (t = t');
        Alcotest.(check (option (float 1e-9)))
          "find" (Some 250.5)
          (Snapshot.find t' "micro/olia-increase"))

let test_snapshot_read_rejects () =
  let path = Filename.temp_file "olia_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc {|{"schema":"other/9","quick":false,"entries":[]}|};
      close_out oc;
      match Snapshot.read ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted a foreign schema")

let test_regressions_flag_slowdowns () =
  let baseline =
    snap
      [
        Snapshot.entry ~name:Snapshot.calibration_entry ~value:1000.
          ~units:"ns/run";
        Snapshot.entry ~name:"micro/a" ~value:100. ~units:"ns/run";
        Snapshot.entry ~name:"micro/b" ~value:100. ~units:"ns/run";
      ]
  in
  let current =
    snap
      [
        Snapshot.entry ~name:Snapshot.calibration_entry ~value:1000.
          ~units:"ns/run";
        Snapshot.entry ~name:"micro/a" ~value:150. ~units:"ns/run";
        Snapshot.entry ~name:"micro/b" ~value:110. ~units:"ns/run";
        Snapshot.entry ~name:"micro/new" ~value:999. ~units:"ns/run";
      ]
  in
  match Snapshot.regressions ~baseline ~current ~tolerance:0.2 () with
  | [ r ] ->
    Alcotest.(check string) "only the 1.5x entry" "micro/a" r.Snapshot.name;
    Alcotest.(check (float 1e-9)) "ratio" 1.5 r.Snapshot.ratio
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 regression, got %d" (List.length rs))

let test_regressions_normalize_by_calibration () =
  let baseline =
    snap
      [
        Snapshot.entry ~name:Snapshot.calibration_entry ~value:1000.
          ~units:"ns/run";
        Snapshot.entry ~name:"micro/a" ~value:100. ~units:"ns/run";
      ]
  in
  (* a machine uniformly 2x slower: calibration doubles with the
     workload, so nothing is a regression *)
  let current =
    snap
      [
        Snapshot.entry ~name:Snapshot.calibration_entry ~value:2000.
          ~units:"ns/run";
        Snapshot.entry ~name:"micro/a" ~value:200. ~units:"ns/run";
      ]
  in
  Alcotest.(check int)
    "uniform slowdown normalizes away" 0
    (List.length (Snapshot.regressions ~baseline ~current ~tolerance:0.2 ()));
  (* but a genuine 1.5x on top of it is still caught *)
  let current =
    snap
      [
        Snapshot.entry ~name:Snapshot.calibration_entry ~value:2000.
          ~units:"ns/run";
        Snapshot.entry ~name:"micro/a" ~value:300. ~units:"ns/run";
      ]
  in
  Alcotest.(check int)
    "real slowdown survives normalization" 1
    (List.length (Snapshot.regressions ~baseline ~current ~tolerance:0.2 ()))

(* --- flight-recorder reports ------------------------------------------ *)

module Report = Repro_obs.Report
module Profile = Repro_obs.Profile

let member name = function
  | Json.Obj fields -> (
    match List.assoc_opt name fields with
    | Some j -> j
    | None -> Alcotest.fail ("report is missing field " ^ name))
  | _ -> Alcotest.fail ("not an object while looking up " ^ name)

let as_int name j =
  match j with
  | Json.Int i -> i
  | _ -> Alcotest.fail (name ^ " is not an int")

let test_report_accumulates () =
  let acc = Report.create () in
  let enq seq =
    Trace.Pkt_enqueue
      {
        time = 0.1 *. float_of_int seq;
        queue = "q";
        flow = 0;
        subflow = 0;
        seq;
        kind = "data";
        backlog = 1;
      }
  and drop seq cause =
    Trace.Pkt_drop
      {
        time = 0.1 *. float_of_int seq;
        queue = "q";
        flow = 0;
        subflow = 0;
        seq;
        kind = "data";
        cause;
      }
  and fwd seq =
    Trace.Pkt_forward
      {
        time = 0.1 *. float_of_int seq;
        queue = "q";
        flow = 0;
        subflow = 0;
        seq;
        kind = "data";
        bytes = 1500;
        qdelay = 0.01;
      }
  in
  (* a closed run of 3 drops (burst), then a trailing open run of 1 *)
  List.iter (Report.feed acc)
    [
      enq 0;
      drop 1 Trace.Overflow;
      drop 2 Trace.Overflow;
      drop 3 Trace.Red_early;
      fwd 4;
      drop 5 Trace.Random_loss;
      Trace.Rtt_sample { time = 1.0; flow = 1; subflow = 0; rtt = 0.1; srtt = 0.1 };
      Trace.Rtt_sample { time = 1.1; flow = 1; subflow = 0; rtt = 0.2; srtt = 0.15 };
      Trace.Rtt_sample { time = 1.2; flow = 1; subflow = 0; rtt = 0.3; srtt = 0.2 };
    ];
  let j = Report.to_json acc in
  Alcotest.(check int)
    "total events" 9
    (as_int "total" (member "total" (member "events" j)));
  let q = member "q" (member "queues" j) in
  Alcotest.(check int) "enqueued" 1 (as_int "enqueued" (member "enqueued" q));
  Alcotest.(check int) "forwarded" 1 (as_int "forwarded" (member "forwarded" q));
  let drops = member "drops" q in
  Alcotest.(check int) "drops total" 4 (as_int "total" (member "total" drops));
  Alcotest.(check int)
    "overflow split" 2
    (as_int "overflow" (member "overflow" drops));
  Alcotest.(check int)
    "red split" 1
    (as_int "red_early" (member "red_early" drops));
  let bursts = member "drop_bursts" q in
  Alcotest.(check int)
    "one closed burst; the trailing single drop is not one" 1
    (as_int "bursts" (member "bursts" bursts));
  Alcotest.(check int)
    "max run" 3
    (as_int "max_run" (member "max_run" bursts));
  Alcotest.(check int)
    "qdelay sample count" 1
    (as_int "n" (member "n" (member "qdelay_s" q)));
  let sub = member "1/0" (member "subflows" j) in
  Alcotest.(check int)
    "rtt sample count" 3
    (as_int "n" (member "n" (member "rtt_s" sub)));
  (* to_json never mutates: rendering twice is byte-identical, and the
     open drop run is still extendable afterwards *)
  Alcotest.(check string)
    "to_json is pure"
    (Json.to_string j)
    (Json.to_string (Report.to_json acc));
  Report.feed acc (drop 6 Trace.Random_loss);
  let bursts' = member "drop_bursts" (member "q" (member "queues" (Report.to_json acc))) in
  Alcotest.(check int)
    "trailing run grew into a burst" 2
    (as_int "bursts" (member "bursts" bursts'))

let test_report_jsonl_round_trip () =
  let path = Filename.temp_file "olia_report" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iteri
        (fun i ev ->
          (* a blank line mid-file must be skipped, not rejected *)
          if i = 2 then output_string oc "\n";
          output_string oc (Json.to_string (Trace.to_json ev));
          output_string oc "\n")
        every_variant;
      close_out oc;
      let direct = Report.create () in
      List.iter (Report.feed direct) every_variant;
      match Report.load_jsonl ~path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
        Alcotest.(check string)
          "offline replay equals the live accumulator"
          (Json.to_string (Report.to_json direct))
          (Json.to_string (Report.to_json loaded)))

let test_report_jsonl_rejects_bad_line () =
  let path = Filename.temp_file "olia_report" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        (Json.to_string (Trace.to_json (List.hd every_variant)));
      output_string oc "\nnot json at all\n";
      close_out oc;
      match Report.load_jsonl ~path with
      | Ok _ -> Alcotest.fail "accepted a malformed trace line"
      | Error e ->
        let has_sub sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          ("error names the file and line: " ^ e)
          true
          (has_sub (path ^ ":2:") e))

(* Two identical runs must render byte-identical report JSON: reports
   are a pure function of the trace stream, which is a pure function of
   the seed. *)
let test_report_deterministic_across_runs () =
  let render () =
    let acc = Report.create () in
    Trace.set_sink (Some (Report.feed acc));
    Fun.protect
      ~finally:(fun () -> Trace.set_sink None)
      (fun () -> ignore (S.Scen_a.run small));
    Json.to_string (Report.to_json acc)
  in
  let first = render () in
  let second = render () in
  Alcotest.(check bool) "report JSON is byte-identical" true (first = second);
  Alcotest.(check bool)
    "and non-trivial" true
    (String.length first > 100)

(* --- the sweep guard --------------------------------------------------- *)

(* The variant trace sink is process-global, so a multi-worker sweep
   with a sink armed would interleave events from unrelated points into
   one stream: Sweep.run must refuse. Ring-mode tracing is per-worker
   (each domain binds its own ring), so the same sweep runs armed. *)
let test_sweep_sink_refused_rings_allowed () =
  let (module Sc : S.Registry.SCENARIO) = S.Registry.find "scenario-a" in
  let point seed =
    [
      ("duration", Repro_exp.Spec.Float 2.);
      ("warmup", Repro_exp.Spec.Float 0.5);
      ("seed", Repro_exp.Spec.Int seed);
    ]
  in
  (* Two points so the ~domains:2 request actually spawns two workers;
     a single point degrades to the sequential path, which never needs
     the guard. *)
  let pts = [ point 1; point 2 ] in
  Trace.set_sink (Some (fun (_ : Trace.event) -> ()));
  (Fun.protect
     ~finally:(fun () -> Trace.set_sink None)
     (fun () ->
       match Repro_exp.Sweep.run ~domains:2 (module Sc) pts with
       | _ -> Alcotest.fail "sweep ran with a sink armed"
       | exception Invalid_argument msg ->
         Alcotest.(check bool)
           ("refusal explains itself: " ^ msg)
           true
           (String.length msg > 0)));
  Alcotest.(check bool) "sink released" false (Trace.enabled ());
  (* Rings armed: each worker binds its own ring and the sweep runs. *)
  Trace.arm_rings ~capacity:(1 lsl 16) ();
  (Fun.protect
     ~finally:(fun () -> Trace.disarm_rings ())
     (fun () ->
       match Repro_exp.Sweep.run ~domains:2 (module Sc) pts with
       | ps ->
         Alcotest.(check int) "ring-traced sweep covers every point" 2
           (List.length ps);
         Alcotest.(check bool)
           "worker rings captured events" true
           (List.length (Trace.decode_rings ()) > 0)));
  match Repro_exp.Sweep.run ~domains:2 (module Sc) pts with
  | ps ->
    Alcotest.(check int) "untraced sweep covers every point" 2
      (List.length ps);
    List.iter
      (fun p ->
        Alcotest.(check bool)
          "untraced sweep runs fine" true
          (Repro_exp.Outcome.metric p.Repro_exp.Sweep.outcome "obs_events"
          > 0.))
      ps

(* --- trace rings -------------------------------------------------------- *)

module Ring = Repro_obs.Ring

(* Circular-buffer mechanics: a Drop_oldest ring past capacity keeps
   exactly the newest [capacity] records, counts the overwritten ones,
   and [slot_of_index] walks the survivors oldest-to-newest. *)
let test_ring_wraparound () =
  let r = Ring.create ~shard:0 ~capacity:8 ~policy:Ring.Drop_oldest in
  for i = 0 to 19 do
    let s = Ring.claim r in
    Ring.set_i r s 0 i;
    Ring.set_f r s 0 (float_of_int i)
  done;
  Alcotest.(check int) "length capped at capacity" 8 (Ring.length r);
  Alcotest.(check int) "overwritten records counted" 12 (Ring.dropped r);
  Alcotest.(check int) "written counts every claim" 20 (Ring.written r);
  Alcotest.(check (list int))
    "retains the newest, oldest-to-newest"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.init (Ring.length r) (fun i ->
         Ring.get_i r (Ring.slot_of_index r i) 0));
  Alcotest.(check (list (float 0.)))
    "float lane wraps in step"
    [ 12.; 13.; 14.; 15.; 16.; 17.; 18.; 19. ]
    (List.init (Ring.length r) (fun i ->
         Ring.get_f r (Ring.slot_of_index r i) 0));
  Ring.reset r;
  Alcotest.(check int) "reset forgets the records" 0 (Ring.length r);
  Alcotest.(check int) "and the drop count" 0 (Ring.dropped r)

(* Fail_fast refuses the record that would overwrite history; the null
   ring (an unbound domain) refuses every record. *)
let test_ring_fail_fast () =
  let r = Ring.create ~shard:1 ~capacity:4 ~policy:Ring.Fail_fast in
  for i = 0 to 3 do
    let s = Ring.claim r in
    Ring.set_i r s 0 i
  done;
  (match Ring.claim r with
  | _ -> Alcotest.fail "expected Ring.Full"
  | exception Ring.Full -> ());
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r);
  Alcotest.(check int) "the four survivors intact" 4 (Ring.length r);
  match Ring.claim Ring.null with
  | _ -> Alcotest.fail "null ring accepted a record"
  | exception Ring.Full -> ()

(* One event of each shape, with fields derived from the index and a
   strictly increasing timestamp so the decoder's sort is total. *)
let mk_event tag i =
  let time = float_of_int (i + 1) *. 1e-3 in
  let q = "rq" ^ string_of_int (i mod 3) in
  let kind = if i mod 2 = 0 then "data" else "ack" in
  match tag mod 9 with
  | 0 ->
    Trace.Pkt_enqueue
      { time; queue = q; flow = i; subflow = i mod 2; seq = i; kind;
        backlog = i mod 7 }
  | 1 ->
    Trace.Pkt_drop
      { time; queue = q; flow = i; subflow = 0; seq = i; kind;
        cause =
          (match i mod 4 with
          | 0 -> Trace.Overflow
          | 1 -> Trace.Red_early
          | 2 -> Trace.Random_loss
          | _ -> Trace.Link_down) }
  | 2 ->
    Trace.Pkt_forward
      { time; queue = q; flow = i; subflow = 0; seq = i; kind; bytes = 1500;
        qdelay = float_of_int i *. 1e-4 }
  | 3 ->
    Trace.Tcp_state
      { time; flow = i; subflow = 0; from_state = Trace.Slow_start;
        to_state = Trace.Congestion_avoidance }
  | 4 ->
    Trace.Cwnd_update
      { time; flow = i; subflow = 0; cwnd = float_of_int i;
        ssthresh = float_of_int i /. 2. }
  | 5 -> Trace.Rto_fired { time; flow = i; subflow = 0; rto = 0.25 }
  | 6 -> Trace.Rtt_sample { time; flow = i; subflow = 0; rtt = 0.01; srtt = 0.02 }
  | 7 -> Trace.Subflow_add { time; flow = i; subflow = 1 }
  | _ -> Trace.Subflow_remove { time; flow = i; subflow = 1 }

(* The merge property under the sharded CI gate, minus the simulator:
   however events are partitioned across per-shard rings, the decode is
   the one a single ring would produce. Timestamps are distinct, so the
   canonical order is unique and the test is exact. *)
let prop_decode_partition_invariant =
  QCheck.Test.make ~name:"ring decode is partition-invariant" ~count:75
    QCheck.(pair (small_list (pair (int_bound 8) (int_bound 3))) (int_range 1 4))
    (fun (cells, shards) ->
      let tagged =
        List.mapi (fun i (tag, s) -> (mk_event tag i, s mod shards)) cells
      in
      let decode groups =
        Trace.arm_rings ~capacity:4096 ();
        Fun.protect
          ~finally:(fun () -> Trace.disarm_rings ())
          (fun () ->
            Trace.set_dispatch_ctx ~sched:0. ~cls:0 ~flow:0 ~subflow:0 ~pseq:0
              ~kind:0;
            List.iter
              (fun (shard, evs) ->
                Trace.bind_ring ~shard;
                List.iter Trace.emit evs)
              groups;
            Trace.unbind_ring ();
            Trace.decode_rings ())
      in
      let single = decode [ (0, List.map fst tagged) ] in
      let sharded =
        decode
          (List.init shards (fun s ->
               ( s,
                 List.filter_map
                   (fun (ev, s') -> if s' = s then Some ev else None)
                   tagged )))
      in
      single = sharded)

(* Same build probe as test_timer.ml: dev builds pass [-opaque], which
   discards the cross-module inlining info the unboxed call paths rely
   on. Probe with Sim's own inlined schedule path to classify. *)
let build_inlines_hot_paths () =
  let sim = Repro_netsim.Sim.create () in
  let fn () = () in
  let sched i =
    Repro_netsim.Sim.Timer.cancel sim
      (Repro_netsim.Sim.schedule_after ~src:"canary" sim
         (float_of_int i *. 1e-9) fn)
  in
  for i = 1 to 100 do
    sched i
  done;
  let w0 = Gc.minor_words () in
  for i = 1 to 1000 do
    sched i
  done;
  let w1 = Gc.minor_words () in
  w1 -. w0 < 100.

(* The tentpole's allocation contract, Gc-asserted: armed ring-mode
   emission writes fixed-width records without touching the minor heap.
   Exact in inlining (release) builds; dev builds box each float
   argument at the non-inlined call boundary, so a loose per-event
   bound still catches a record or closure picked up per event. *)
let test_armed_emission_zero_alloc () =
  Trace.arm_rings ~capacity:(1 lsl 14) ();
  Fun.protect
    ~finally:(fun () -> Trace.disarm_rings ())
    (fun () ->
      Trace.bind_ring ~shard:0;
      let q = Trace.intern "zeroalloc-q" in
      Trace.set_dispatch_ctx ~sched:0. ~cls:1 ~flow:1 ~subflow:0 ~pseq:0
        ~kind:0;
      let burst n =
        for i = 1 to n do
          let t = float_of_int i *. 1e-6 in
          Trace.pkt_forward ~time:t ~queue:q ~flow:1 ~subflow:0 ~seq:i ~kind:0
            ~bytes:1500 ~qdelay:t;
          Trace.cwnd_update ~time:t ~flow:1 ~subflow:0 ~cwnd:t ~ssthresh:t;
          Trace.rtt_sample ~time:t ~flow:1 ~subflow:0 ~rtt:t ~srtt:t
        done
      in
      burst 200 (* warm-up: fault the lanes, populate DLS *);
      let w0 = Gc.minor_words () in
      burst 2000;
      let w1 = Gc.minor_words () in
      let events = 3 * 2000 in
      Alcotest.(check int) "no overflow during the burst" 0
        (Trace.rings_dropped ());
      Alcotest.(check bool) "records landed in the ring" true
        (List.length (Trace.decode_rings ()) = 3 * 2200);
      if Sys.backend_type = Sys.Native then
        if build_inlines_hot_paths () then
          Alcotest.(check (float 0.))
            (Printf.sprintf "minor words for %d armed emissions" events)
            0. (w1 -. w0)
        else begin
          let per_ev = (w1 -. w0) /. float_of_int events in
          Alcotest.(check bool)
            (Printf.sprintf "minor words per event (%.1f) < 16" per_ev)
            true (per_ev < 16.)
        end)

(* --- event-loop profiler ----------------------------------------------- *)

let test_profile_accounting () =
  Alcotest.(check bool) "tests run unprofiled" false (Profile.enabled ());
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.reset ())
    (fun () ->
      Profile.dispatch ~src:"a" (fun () -> ());
      Profile.dispatch ~src:"a" (fun () -> ());
      Profile.dispatch ~src:"b" (fun () -> ());
      let entries = Profile.report () in
      let find src =
        match List.find_opt (fun e -> e.Profile.src = src) entries with
        | Some e -> e
        | None -> Alcotest.fail ("no profile entry for " ^ src)
      in
      Alcotest.(check int) "a dispatched twice" 2 (find "a").Profile.count;
      Alcotest.(check int) "b dispatched once" 1 (find "b").Profile.count;
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (e.Profile.src ^ " wall time non-negative")
            true (e.Profile.wall_s >= 0.))
        entries;
      Profile.reset ();
      Alcotest.(check int) "reset drops totals" 0
        (List.length (Profile.report ())))

let test_profile_attributes_sim_sources () =
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.reset ())
    (fun () ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed:1 in
      let q =
        Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:5
          ~discipline:Queue.Droptail ()
      in
      let sink (_ : Packet.t) = () in
      let route = [| Queue.hop q; sink |] in
      Sim.schedule_at sim 0. (fun () ->
          for i = 0 to 19 do
            Packet.forward
              (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:0. ~route)
          done);
      Sim.run sim;
      let entries = Profile.report () in
      (match List.find_opt (fun e -> e.Profile.src = "queue.serve") entries with
      | None -> Alcotest.fail "no attribution for queue.serve"
      | Some e ->
        Alcotest.(check bool) "queue.serve dispatched" true (e.Profile.count > 0));
      (* the unlabelled schedule above pools under "other" *)
      (match List.find_opt (fun e -> e.Profile.src = "other") entries with
      | None -> Alcotest.fail "no attribution for unlabelled sources"
      | Some e -> Alcotest.(check int) "one unlabelled dispatch" 1 e.Profile.count);
      let table = Repro_stats.Table.to_string (Profile.to_table entries) in
      Alcotest.(check bool)
        "table renders the hot source" true
        (let sub = "queue.serve" in
         let n = String.length sub and m = String.length table in
         let rec go i = i + n <= m && (String.sub table i n = sub || go (i + 1)) in
         go 0))

let suite =
  [
    Alcotest.test_case "every event variant round-trips JSONL" `Quick
      test_event_round_trip;
    Alcotest.test_case "malformed events rejected" `Quick test_event_bad_json;
    Alcotest.test_case "JSONL file sink" `Quick test_jsonl_sink;
    Alcotest.test_case "meter counters agree with Monitor and Queue" `Quick
      test_counters_match_monitor;
    Alcotest.test_case "scenario runs export obs_* metrics" `Quick
      test_scenario_metrics_exported;
    Alcotest.test_case "tracing changes nothing but emits events" `Quick
      test_tracing_off_noop;
    Alcotest.test_case "snapshot round-trips" `Quick test_snapshot_round_trip;
    Alcotest.test_case "snapshot read rejects foreign schemas" `Quick
      test_snapshot_read_rejects;
    Alcotest.test_case "regression gate flags slowdowns" `Quick
      test_regressions_flag_slowdowns;
    Alcotest.test_case "regression gate normalizes by calibration" `Quick
      test_regressions_normalize_by_calibration;
    Alcotest.test_case "report accumulates queue and subflow stats" `Quick
      test_report_accumulates;
    Alcotest.test_case "report replays JSONL traces offline" `Quick
      test_report_jsonl_round_trip;
    Alcotest.test_case "report rejects malformed trace lines" `Quick
      test_report_jsonl_rejects_bad_line;
    Alcotest.test_case "report JSON byte-identical across runs" `Quick
      test_report_deterministic_across_runs;
    Alcotest.test_case "sweeps refuse sinks but run with rings" `Slow
      test_sweep_sink_refused_rings_allowed;
    Alcotest.test_case "ring wraparound keeps the newest records" `Quick
      test_ring_wraparound;
    Alcotest.test_case "fail-fast and null rings refuse records" `Quick
      test_ring_fail_fast;
    QCheck_alcotest.to_alcotest prop_decode_partition_invariant;
    Alcotest.test_case "armed ring emission stays off the minor heap" `Quick
      test_armed_emission_zero_alloc;
    Alcotest.test_case "profiler accounts dispatches per source" `Quick
      test_profile_accounting;
    Alcotest.test_case "profiler attributes event-loop sources" `Quick
      test_profile_attributes_sim_sources;
  ]
