let create ~epsilon =
  if epsilon < 0. || epsilon > 2. then
    invalid_arg "Coupled.create: epsilon must be in [0, 2]";
  let increase ~views ~idx =
    let total =
      Array.fold_left
        (fun acc (v : Cc_types.subflow_view) -> acc +. v.cwnd)
        0. views
    in
    let w = Stdlib.max views.(idx).Cc_types.cwnd 1e-9 in
    (w ** (1. -. epsilon)) /. (Stdlib.max total 1e-9 ** (2. -. epsilon))
  in
  {
    Cc_types.name = Printf.sprintf "coupled(eps=%g)" epsilon;
    multipath_initial_ssthresh = None;
    on_ack = (fun ~idx:_ ~acked:_ -> ());
    on_loss = (fun ~idx:_ -> ());
    increase;
    loss_decrease = Cc_types.halve;
  }
