examples/custom_topology_example.ml: Array Filename List Monitor Mptcp_repro Printf Rng Sim Tcp
