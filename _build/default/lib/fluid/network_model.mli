(** Static fluid network model (paper §V-A): a set of links with
    load-dependent loss probabilities and a set of users, each owning a set
    of routes (link subsets) with fixed RTTs. *)

type link = {
  capacity : float;  (** packets per second *)
  sharpness : float;  (** exponent of the loss curve *)
  scale : float;  (** loss probability when the load equals the capacity *)
}
(** Loss model [p_l(y) = scale · (y/capacity)^sharpness]: smooth,
    increasing, and "sharp around C" for large [sharpness] (paper
    Remark 1). *)

type route = {
  links : int array;  (** indices into the network's link table *)
  rtt : float;  (** seconds *)
}

type user = { routes : route array }

type t = { links : link array; users : user array }

val link : ?sharpness:float -> ?scale:float -> float -> link
(** [link capacity] with defaults [sharpness = 12.] and [scale = 0.05]. *)

val route_count : t -> int
(** Total number of routes across all users. *)

val validate : t -> unit
(** Raises [Invalid_argument] if any route references an unknown link, any
    user has no route, or any parameter is non-positive. *)

val link_loads : t -> float array array -> float array
(** [link_loads t x] sums per-route rates [x.(u).(r)] over the routes
    crossing each link. *)

val link_loss : link -> float -> float
(** [p_l(y)], clamped to [\[0, 1\]]. *)

val route_losses : t -> float array -> float array array
(** Per-user, per-route end-to-end loss probabilities from per-link losses
    (sum approximation for small losses, as in §V-A). *)

val congestion_cost : t -> float array array -> float
(** The paper's congestion cost [C(x) = Σ_l ∫₀^load p_l(y) dy], computed
    in closed form for the power-law loss curves. *)

val utility_vstar : t -> tau:float array -> float array array -> float
(** The utility [V*] of Eq. 17 for given per-user constants [tau]. *)

val utility_v : t -> float array array -> float
(** The equal-RTT utility [V] of §V-C, using each user's first-route RTT as
    its common [rtt_u]. *)
