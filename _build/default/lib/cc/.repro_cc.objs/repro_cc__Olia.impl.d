lib/cc/olia.ml: Array Cc_types Stdlib
