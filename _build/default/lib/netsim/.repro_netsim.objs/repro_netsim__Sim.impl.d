lib/netsim/sim.ml: Array
