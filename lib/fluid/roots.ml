let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  let flo = f lo and fhi = f hi in
  (* Armed invariant: a bisection answer is a finite point of the
     original bracket whose function value is finite — catches NaN
     escapes from the fixed-point polynomials before they propagate
     into rate allocations. *)
  let check root =
    if Invariant.enabled () then begin
      Invariant.require (Float.is_finite root) "Roots.bisect: non-finite root";
      Invariant.require
        (root >= lo && root <= hi)
        "Roots.bisect: root escaped the bracket";
      Invariant.require
        (Float.is_finite (f root))
        "Roots.bisect: non-finite f at root"
    end;
    root
  in
  if Float.equal flo 0. then check lo
  else if Float.equal fhi 0. then check hi
  else if flo *. fhi > 0. then
    invalid_arg "Roots.bisect: no sign change on the interval"
  else
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo < tol || iter = 0 then check mid
      else
        let fmid = f mid in
        if Float.equal fmid 0. then check mid
        else if flo *. fmid < 0. then loop lo mid flo (iter - 1)
        else loop mid hi fmid (iter - 1)
    in
    loop lo hi flo max_iter

let find_increasing_root ?(tol = 1e-12) ~f () =
  (* Shrink towards 0 until f < 0, grow until f > 0. *)
  let rec find_lo x n =
    if n = 0 then failwith "Roots.find_increasing_root: no negative value"
    else if f x < 0. then x
    else find_lo (x /. 4.) (n - 1)
  in
  let rec find_hi x n =
    if n = 0 then failwith "Roots.find_increasing_root: no positive value"
    else if f x > 0. then x
    else find_hi (x *. 4.) (n - 1)
  in
  let lo = find_lo 1. 200 in
  let hi = find_hi 1. 200 in
  bisect ~tol ~f lo hi

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let rec loop x iter =
    if iter = 0 then failwith "Roots.newton: no convergence"
    else
      let fx = f x in
      if abs_float fx < tol then begin
        if Invariant.enabled () then
          Invariant.require (Float.is_finite x) "Roots.newton: non-finite root";
        x
      end
      else
        let d = df x in
        if Float.equal d 0. then failwith "Roots.newton: zero derivative"
        else loop (x -. (fx /. d)) (iter - 1)
  in
  loop x0 max_iter

let poly_eval coeffs x =
  let acc = ref 0. in
  for i = Array.length coeffs - 1 downto 0 do
    acc := (!acc *. x) +. coeffs.(i)
  done;
  !acc

let poly_derivative coeffs =
  let n = Array.length coeffs in
  if n <= 1 then [| 0. |]
  else Array.init (n - 1) (fun i -> float_of_int (i + 1) *. coeffs.(i + 1))

let positive_poly_root ?(tol = 1e-12) coeffs =
  let f = poly_eval coeffs in
  if f 0. > 0. then failwith "Roots.positive_poly_root: positive at 0";
  let rec find_hi x n =
    if n = 0 then failwith "Roots.positive_poly_root: never positive"
    else if f x > 0. then x
    else find_hi (x *. 2.) (n - 1)
  in
  let hi = find_hi 1. 200 in
  bisect ~tol ~f 0. hi
