type value = Int of int | Float of float | Bool of bool | String of string

type param = { key : string; default : value; doc : string }

type t = { name : string; doc : string; params : param list }

let int key default doc = { key; default = Int default; doc }
let float key default doc = { key; default = Float default; doc }
let bool key default doc = { key; default = Bool default; doc }
let string key default doc = { key; default = String default; doc }

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.12g" f
  | Bool b -> string_of_bool b
  | String s -> s

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Bool _ -> "bool"
  | String _ -> "string"

let parse_value ~like s =
  let fail () =
    invalid_arg
      (Printf.sprintf "Spec.parse_value: %S is not a valid %s" s
         (type_name like))
  in
  match like with
  | Int _ -> (
    match int_of_string_opt s with Some i -> Int i | None -> fail ())
  | Float _ -> (
    match float_of_string_opt s with Some f -> Float f | None -> fail ())
  | Bool _ -> (
    match bool_of_string_opt s with Some b -> Bool b | None -> fail ())
  | String _ -> String s

type bindings = (string * value) list

let param t key =
  match List.find_opt (fun p -> p.key = key) t.params with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "%s has no parameter %S (valid: %s)" t.name key
         (String.concat ", " (List.map (fun p -> p.key) t.params)))

let get t bindings key =
  let p = param t key in
  match List.assoc_opt key bindings with
  | Some v -> v
  | None -> p.default

let type_error t key ~expected v =
  invalid_arg
    (Printf.sprintf "%s: parameter %S expects %s, got %s %S" t.name key
       expected (type_name v) (value_to_string v))

let get_int t bindings key =
  match get t bindings key with
  | Int i -> i
  | v -> type_error t key ~expected:"an int" v

let get_float t bindings key =
  match get t bindings key with
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error t key ~expected:"a float" v

let get_bool t bindings key =
  match get t bindings key with
  | Bool b -> b
  | v -> type_error t key ~expected:"a bool" v

let get_string t bindings key =
  match get t bindings key with
  | String s -> s
  | v -> type_error t key ~expected:"a string" v

let validate t bindings =
  List.iter
    (fun (key, v) ->
      let p = param t key in
      let ok =
        match (p.default, v) with
        | Int _, Int _
        | Float _, (Float _ | Int _)
        | Bool _, Bool _
        | String _, String _ ->
          true
        | _ -> false
      in
      if not ok then type_error t key ~expected:(type_name p.default) v)
    bindings

let parse_assign t s =
  match String.index_opt s '=' with
  | None ->
    invalid_arg
      (Printf.sprintf "%s: expected key=value, got %S" t.name s)
  | Some i ->
    let key = String.sub s 0 i in
    let raw = String.sub s (i + 1) (String.length s - i - 1) in
    let p = param t key in
    (key, parse_value ~like:p.default raw)

let json_of_value : value -> Repro_stats.Json.t = function
  | Int i -> Repro_stats.Json.Int i
  | Float f -> Repro_stats.Json.Float f
  | Bool b -> Repro_stats.Json.Bool b
  | String s -> Repro_stats.Json.String s

let to_json t bindings =
  Repro_stats.Json.Obj
    (List.map
       (fun p -> (p.key, json_of_value (get t bindings p.key)))
       t.params)
