test/test_infra.ml: Alcotest Array Builder Filename Graph Hashtbl List Monitor Mptcp_repro Packet Pipe Printf QCheck QCheck_alcotest Queue Rng Sim Sys Tcp Unix
