(* Dynamic per-subflow counters; grown on first use so connections can add
   subflows after creation. *)
type state = {
  mutable ell1 : float array;
  mutable ell2 : float array;
  mutable n : int;
}

let ensure st idx =
  if idx >= Array.length st.ell1 then begin
    let cap = Stdlib.max (2 * (idx + 1)) 4 in
    let grow a = Array.init cap (fun i -> if i < Array.length a then a.(i) else 0.) in
    st.ell1 <- grow st.ell1;
    st.ell2 <- grow st.ell2
  end;
  if idx >= st.n then st.n <- idx + 1

let ell st idx = Stdlib.max st.ell1.(idx) st.ell2.(idx)

let max_set scores =
  let best = Array.fold_left Stdlib.max neg_infinity scores in
  Array.map (fun s -> best > 0. && s >= best *. (1. -. 1e-9)) scores

let alpha_values ~ell (views : Cc_types.subflow_view array) =
  let nr = Array.length views in
  let windows = Array.map (fun (v : Cc_types.subflow_view) -> v.cwnd) views in
  let quality =
    Array.mapi (fun r (v : Cc_types.subflow_view) ->
        ell.(r) /. (Stdlib.max v.rtt 1e-9 ** 2.)) views
  in
  let in_m = max_set windows and in_b = max_set quality in
  let b_minus_m = Array.init nr (fun r -> in_b.(r) && not in_m.(r)) in
  let count m = Array.fold_left (fun a b -> if b then a + 1 else a) 0 m in
  let n_bm = count b_minus_m and n_m = count in_m in
  let inv_ru = 1. /. float_of_int nr in
  Array.init nr (fun r ->
      if n_bm = 0 then 0.
      else if b_minus_m.(r) then inv_ru /. float_of_int n_bm
      else if in_m.(r) then -.inv_ru /. float_of_int n_m
      else 0.)

let kelly_voice_term (views : Cc_types.subflow_view array) idx =
  let denom = ref 0. in
  Array.iter
    (fun (v : Cc_types.subflow_view) ->
      denom := !denom +. (v.cwnd /. Stdlib.max v.rtt 1e-9))
    views;
  let v = views.(idx) in
  let rtt = Stdlib.max v.rtt 1e-9 in
  v.cwnd /. (rtt *. rtt) /. Stdlib.max (!denom *. !denom) 1e-18

let make () =
  let st = { ell1 = Array.make 4 0.; ell2 = Array.make 4 0.; n = 0 } in
  let last_views = ref [||] in
  let increase ~views ~idx =
    ensure st idx;
    last_views := views;
    if Array.length views = 1 then
      (* Single path: OLIA degrades to regular TCP (Eq. 5 with one term
         equals 1/w and alpha = 0). *)
      1. /. Stdlib.max views.(0).Cc_types.cwnd 1e-9
    else begin
      let ell = Array.init (Array.length views) (fun r -> ensure st r; ell st r) in
      let alpha = alpha_values ~ell views in
      kelly_voice_term views idx
      +. (alpha.(idx) /. Stdlib.max views.(idx).Cc_types.cwnd 1e-9)
    end
  in
  let on_ack ~idx ~acked =
    ensure st idx;
    st.ell2.(idx) <- st.ell2.(idx) +. acked
  in
  let on_loss ~idx =
    ensure st idx;
    st.ell1.(idx) <- st.ell2.(idx);
    st.ell2.(idx) <- 0.
  in
  let probe n =
    let ell = Array.init n (fun r -> ensure st r; ell st r) in
    let alpha =
      if Array.length !last_views = n then alpha_values ~ell !last_views
      else Array.make n 0.
    in
    (ell, alpha)
  in
  let cc =
    {
      Cc_types.name = "olia";
      multipath_initial_ssthresh = Some 1.;
      on_ack;
      on_loss;
      increase;
      loss_decrease = Cc_types.halve;
    }
  in
  (cc, probe)

let create () = fst (make ())

type probe = { ell : float array; alpha : float array }

let create_instrumented () =
  let cc, probe = make () in
  (cc, fun n -> let ell, alpha = probe n in { ell; alpha })
