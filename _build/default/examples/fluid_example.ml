(* Fluid-model tour: fixed points, the probing-cost optimum and a
   numerical Pareto-optimality check of OLIA on a small network
   (Theorems 1 and 3).

   Run with:  dune exec examples/fluid_example.exe *)

open Mptcp_repro.Fluid
module Table = Mptcp_repro.Stats.Table

let () =
  (* 1. Scenario C sweep: where LIA turns unfair (Fig. 5b). *)
  let t =
    Table.create
      ~title:"Scenario C fixed points (N1 = N2 = 10, rtt = 150 ms)"
      ~columns:
        [ "C1/C2"; "LIA multipath"; "LIA single"; "opt multipath"; "opt single" ]
  in
  List.iter
    (fun ratio ->
      let params =
        {
          Scenario_c.n1 = 10;
          n2 = 10;
          c1 = Units.pps_of_mbps ratio;
          c2 = Units.pps_of_mbps 1.;
          rtt = 0.15;
        }
      in
      let lia = Scenario_c.lia params in
      let opt = Scenario_c.optimum_with_probing params in
      Table.add_row t
        [
          Printf.sprintf "%.2f" ratio;
          Printf.sprintf "%.3f" lia.norm_multipath;
          Printf.sprintf "%.3f" lia.norm_single;
          Printf.sprintf "%.3f" opt.norm_multipath;
          Printf.sprintf "%.3f" opt.norm_single;
        ])
    [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 ];
  Table.print t;
  print_newline ();

  (* 2. A general network: one multipath user over two links shared with
     two TCP users; compare the LIA and OLIA equilibria. *)
  let net =
    {
      Network_model.links =
        [| Network_model.link 500.; Network_model.link 200. |];
      users =
        [|
          {
            Network_model.routes =
              [|
                { Network_model.links = [| 0 |]; rtt = 0.1 };
                { Network_model.links = [| 1 |]; rtt = 0.1 };
              |];
          };
          { Network_model.routes = [| { Network_model.links = [| 0 |]; rtt = 0.1 } |] };
          { Network_model.routes = [| { Network_model.links = [| 1 |]; rtt = 0.1 } |] };
        |];
    }
  in
  let show name x =
    Printf.printf "%-5s multipath: %6.1f + %6.1f pkt/s;  TCP users: %6.1f, %6.1f\n"
      name
      x.(0).(0) x.(0).(1) x.(1).(0) x.(2).(0)
  in
  print_endline "General-network equilibria (500 and 200 pkt/s links):";
  show "LIA" (Equilibrium.solve net Lia);
  let olia = Equilibrium.solve net Olia in
  show "OLIA" olia;

  (* 3. Theorem 3: no random feasible perturbation Pareto-dominates the
     OLIA fixed point. *)
  (match Equilibrium.pareto_witness ~trials:5000 ~seed:1 net olia with
   | None ->
     print_endline
       "\nPareto check: 5000 random perturbations, none dominates the OLIA\n\
        fixed point (Theorem 3)."
   | Some _ -> print_endline "\nPareto check FAILED: found a dominating point!");

  (* 4. Theorem 4 dynamics: utility V(x(t)) climbs under the OLIA ODE. *)
  let r =
    Olia_ode.integrate
      ~options:{ Olia_ode.default_options with t_end = 120. }
      net
      ~x0:(Olia_ode.uniform_start net ~rate:5.)
  in
  let trace = r.utility_trace in
  let v0 = snd trace.(0) and v1 = snd trace.(Array.length trace - 1) in
  Printf.printf "OLIA fluid ODE: V(x) went from %.4f to %.4f (non-decreasing).\n"
    v0 v1
