(* Cross-module call graph over the pass-1 summaries.

   Node identity is the array index; nodes are ordered by (path,
   source order) so every analysis that walks the graph in id order is
   deterministic. Resolution is name-based:

   - [Lident f] resolves within the caller's own file, preferring the
     latest binding at or above the mention line (same-file shadowing),
     then any same-file binding, searching the caller's submodule
     prefix outward;
   - [Ldot (path, f)] drops qualifiers from the left: [M.Sub.f] is
     tried as module [M] qual ["Sub.f"], then module [Sub] qual ["f"]
     — which also resolves local module aliases by their conventional
     names;
   - two files may compile to the same module name (the two
     [invariant.ml]); a caller in the same directory wins.

   Unresolved names (stdlib, externals, locals) simply produce no
   edge. *)

type edge = { target : int; eloc : Location.t; hot : bool; min_args : int }

type t = {
  nodes : Summary.node array;
  edges : edge list array;  (* deduped per (caller, target) *)
}

let node t i = t.nodes.(i)
let size t = Array.length t.nodes
let edges t i = t.edges.(i)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* All (module-name, qual) keys a node answers to: "Timer.cancel" in
   Sim answers Sim."Timer.cancel" and Timer."cancel". *)
let keys (n : Summary.node) =
  let segs = String.split_on_char '.' n.qual in
  let rec tails m acc = function
    | [] -> acc
    | s :: rest ->
      let acc = (m, String.concat "." (s :: rest)) :: acc in
      tails s acc rest
  in
  List.rev (tails n.modname [] segs)

let build (files : (string * Summary.node list) list) =
  let files = List.sort (fun (a, _) (b, _) -> compare a b) files in
  let nodes =
    Array.of_list (List.concat_map (fun (_, ns) -> ns) files)
  in
  let by_key : (string * string, int list) Hashtbl.t = Hashtbl.create 256 in
  let by_file : (string * string, int list) Hashtbl.t = Hashtbl.create 256 in
  let push tbl k i =
    Hashtbl.replace tbl k (i :: (try Hashtbl.find tbl k with Not_found -> []))
  in
  Array.iteri
    (fun i n ->
      List.iter (fun k -> push by_key k i) (keys n);
      push by_file (n.Summary.path, n.Summary.qual) i)
    nodes;
  let same_file_candidates (caller : Summary.node) name =
    (* search the caller's submodule prefix outward: a mention of [f]
       inside module [Timer] means [Timer.f] before toplevel [f] *)
    let rec prefixes acc = function
      | [] -> List.rev ("" :: acc)
      | segs ->
        let acc = (String.concat "." segs ^ ".") :: acc in
        prefixes acc (List.rev (List.tl (List.rev segs)))
    in
    let within =
      match String.rindex_opt caller.qual '.' with
      | None -> [ "" ]
      | Some i ->
        prefixes [] (String.split_on_char '.' (String.sub caller.qual 0 i))
    in
    List.find_map
      (fun p ->
        match Hashtbl.find_opt by_file (caller.path, p ^ name) with
        | Some (_ :: _ as ids) -> Some ids
        | _ -> None)
      within
  in
  let resolve caller_id (c : Summary.call) =
    let caller = nodes.(caller_id) in
    let pick ids =
      match ids with
      | [] -> None
      | [ i ] -> Some i
      | ids ->
        let dir p = Filename.dirname p in
        let same =
          List.filter (fun i -> dir nodes.(i).Summary.path = dir caller.path) ids
        in
        let ids = if same <> [] then same else ids in
        Some (List.fold_left Stdlib.min (List.hd ids) ids)
    in
    match c.callee with
    | Longident.Lident name -> (
      match same_file_candidates caller name with
      | Some ids ->
        (* latest binding at or above the mention line shadows *)
        let mention = line_of c.cloc in
        let before =
          List.filter (fun i -> line_of nodes.(i).Summary.nloc <= mention) ids
        in
        let best l =
          List.fold_left
            (fun acc i ->
              match acc with
              | None -> Some i
              | Some j ->
                if line_of nodes.(i).Summary.nloc
                   >= line_of nodes.(j).Summary.nloc
                then Some i
                else acc)
            None l
        in
        (match best before with Some i -> Some i | None -> best ids)
      | None -> None)
    | Longident.Ldot _ ->
      let rec flatten = function
        | Longident.Lident s -> [ s ]
        | Longident.Ldot (p, s) -> flatten p @ [ s ]
        | Longident.Lapply (p, _) -> flatten p
      in
      let segs = flatten c.callee in
      let rec try_splits qual = function
        | [] -> None
        | m :: above_rev -> (
          match pick (Option.value ~default:[] (Hashtbl.find_opt by_key (m, qual))) with
          | Some i -> Some i
          | None -> try_splits (m ^ "." ^ qual) above_rev)
      in
      (match List.rev segs with
       | name :: mods_rev -> (
         match mods_rev with
         | [] -> None
         | m :: above -> try_splits (m ^ "." ^ name) above
           |> (function
               | Some i -> Some i
               | None -> try_splits name (m :: above)))
       | [] -> None)
    | Longident.Lapply _ -> None
  in
  let edges = Array.make (Array.length nodes) [] in
  Array.iteri
    (fun i n ->
      let seen : (int, edge) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (c : Summary.call) ->
          match resolve i c with
          | None -> ()
          | Some j ->
            let hot = not c.Summary.cguarded in
            (* [min_args]: fewest non-optional args over the unguarded
               real applications of this target — what the partial-
               application check in R9 looks at; -1 if only mentioned *)
            let margs = if hot then c.Summary.args else -1 in
            (match Hashtbl.find_opt seen j with
             | None ->
               Hashtbl.replace seen j
                 { target = j; eloc = c.Summary.cloc; hot; min_args = margs }
             | Some e ->
               let min_args =
                 if margs >= 0 && (e.min_args < 0 || margs < e.min_args) then
                   margs
                 else e.min_args
               in
               let eloc, hot =
                 if hot && not e.hot then (c.Summary.cloc, true)
                 else (e.eloc, e.hot)
               in
               Hashtbl.replace seen j { target = j; eloc; hot; min_args }))
        n.Summary.calls;
      edges.(i) <-
        List.sort
          (fun a b -> compare a.target b.target)
          (Hashtbl.fold (fun _ e acc -> e :: acc) seen []))
    nodes;
  { nodes; edges }

let dump t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i (n : Summary.node) ->
      Buffer.add_string buf
        (Printf.sprintf "%s (%s:%d)%s%s\n" (Summary.display n) n.path
           (line_of n.nloc)
           (if n.alloc_free_root then " [alloc-free root]" else "")
           (match n.creates_mutable with
            | Some what -> Printf.sprintf " [mutable: %s]" what
            | None -> ""));
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "  -> %s%s\n"
               (Summary.display t.nodes.(e.target))
               (if e.hot then "" else " (guarded)")))
        t.edges.(i))
    t.nodes;
  Buffer.contents buf
