lib/netsim/monitor.ml: Array Hashtbl List Packet Queue Repro_stats Sim Tcp
