module Trace = Repro_obs.Trace

(* A fault gate sits on a route like any other hop and applies the
   currently scheduled failure mode. Modes are switched by events on
   the simulator clock, so a fault schedule is part of the seeded,
   deterministic run — two runs with the same seed see the same drops
   at the same times. *)

type mode =
  | Up
  | Down
  | Burst of { loss_prob : float }
  | Reorder of { prob : float; extra_delay : float }

type t = {
  sim : Sim.t;
  rng : Rng.t;
  name_id : int;
  mutable mode : mode;
  mutable dropped : int;
  mutable reordered : int;
  mutable passed : int;
}

let create ~sim ~rng ?(name = "fault") () =
  {
    sim;
    rng;
    name_id = Trace.intern name;
    mode = Up;
    dropped = 0;
    reordered = 0;
    passed = 0;
  }

let mode t = t.mode
let is_down t = match t.mode with Down -> true | _ -> false
let dropped t = t.dropped
let reordered t = t.reordered
let passed t = t.passed

let set_mode t mode =
  (match mode with
  | Burst { loss_prob } ->
    if loss_prob < 0. || loss_prob >= 1. then
      invalid_arg "Fault.set_mode: burst loss_prob must be in [0, 1)"
  | Reorder { prob; extra_delay } ->
    if prob < 0. || prob > 1. then
      invalid_arg "Fault.set_mode: reorder prob must be in [0, 1]";
    if extra_delay <= 0. then
      invalid_arg "Fault.set_mode: reorder extra_delay must be positive"
  | Up | Down -> ());
  t.mode <- mode

let drop t (p : Packet.t) =
  t.dropped <- t.dropped + 1;
  if Trace.enabled () then
    Trace.pkt_drop ~time:(Sim.now t.sim) ~queue:t.name_id ~flow:p.flow
      ~subflow:p.subflow ~seq:p.seq
      ~kind:(Packet.kind_code p.kind)
      ~cause:Trace.Link_down;
  Packet.free p

let hop t (p : Packet.t) =
  match t.mode with
  | Up ->
    t.passed <- t.passed + 1;
    Packet.forward p
  | Down ->
    (* A dead link swallows traffic in both directions: data and ACKs. *)
    drop t p
  | Burst { loss_prob } -> (
    match p.kind with
    | Packet.Ack ->
      t.passed <- t.passed + 1;
      Packet.forward p
    | Packet.Data ->
      if Rng.float t.rng < loss_prob then drop t p
      else begin
        t.passed <- t.passed + 1;
        Packet.forward p
      end)
  | Reorder { prob; extra_delay } ->
    if Rng.float t.rng < prob then begin
      t.reordered <- t.reordered + 1;
      ignore
        (Sim.schedule_pkt_after ~src:"fault.reorder" t.sim extra_delay
           Packet.forward p
          : Sim.Timer.t)
    end
    else begin
      t.passed <- t.passed + 1;
      Packet.forward p
    end

let schedule_mode t ~at mode =
  ignore
    (Sim.schedule_at ~src:"fault.mode" t.sim at (fun () -> set_mode t mode)
      : Sim.Timer.t)

let schedule_flap t ~down_at ~up_at =
  if up_at <= down_at then invalid_arg "Fault.schedule_flap: up_at <= down_at";
  schedule_mode t ~at:down_at Down;
  schedule_mode t ~at:up_at Up

let schedule_burst t ~at ~until ~loss_prob =
  if until <= at then invalid_arg "Fault.schedule_burst: until <= at";
  if loss_prob < 0. || loss_prob >= 1. then
    invalid_arg "Fault.schedule_burst: loss_prob must be in [0, 1)";
  schedule_mode t ~at (Burst { loss_prob });
  schedule_mode t ~at:until Up

let schedule_reorder t ~at ~until ~prob ~extra_delay =
  if until <= at then invalid_arg "Fault.schedule_reorder: until <= at";
  schedule_mode t ~at (Reorder { prob; extra_delay });
  schedule_mode t ~at:until Up
