(** Driving the rules over sources.

    The engine is pure with respect to its inputs: {!lint_sources}
    takes (path, content) pairs — the test suite feeds it inline
    fixtures — and {!lint_paths} merely walks the filesystem to build
    that list. Findings come back suppression-filtered, deduplicated
    and sorted. *)

type source = { path : string; content : string }

val lint_sources : source list -> Finding.t list
(** Parse every source ([.ml] as implementation, [.mli] as interface),
    run R1-R4 and R6 per file and R5 across files, then drop findings waived
    by valid {!Suppress} directives. Unparseable files yield a single
    [Parse] finding; malformed directives yield [Suppress] findings.
    Neither of those two can be waived. *)

val collect_files : string list -> string list
(** All [.ml]/[.mli] files below the given roots (a root may also be a
    plain file), sorted, skipping [_build] and dot-directories. *)

val lint_paths : string list -> int * Finding.t list
(** [collect_files], read each, [lint_sources]; returns the number of
    files scanned alongside the findings. *)
