lib/netsim/rng.mli:
