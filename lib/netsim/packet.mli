(** Packets and forwarding.

    A packet carries its remaining route as an array of hops; each hop is
    a function consuming the packet (a queue's enqueue, a pipe's delay, or
    an endpoint's protocol handler). *)

type kind =
  | Data  (** one MSS of payload *)
  | Ack of { ackno : int; echo : float; sack : (int * int) option }
      (** cumulative ACK: [ackno] is the next expected sequence number;
          [echo] is the departure timestamp of the packet that triggered
          it, used for RTT sampling; [sack] is the most recent SACK block
          [\[lo, hi)] of out-of-order data held by the receiver *)

type t = {
  kind : kind;
  seq : int;  (** sequence number, in packets (Data only; 0 for ACKs) *)
  size_bytes : int;
  flow : int;  (** connection id, for tracing *)
  subflow : int;
  mutable hop : int;  (** index of the next hop to visit *)
  route : hop array;
  mutable sent_at : float;  (** departure time from the sender *)
  mutable enqueued_at : float;
      (** admission time at the queue currently holding the packet,
          re-stamped at every queue hop; [sent_at] until first queued.
          Queue-residence spans ([Pkt_forward.qdelay]) derive from it. *)
}

and hop = t -> unit

val data_size : int
(** 1500 bytes: MSS-sized segments. *)

val ack_size : int
(** 40 bytes. *)

val kind_name : t -> string
(** ["data"] or ["ack"], for trace events. *)

val data : flow:int -> subflow:int -> seq:int -> sent_at:float ->
  route:hop array -> t
(** A data packet positioned at the first hop of [route]. *)

val ack : flow:int -> subflow:int -> ackno:int -> echo:float ->
  sack:(int * int) option -> route:hop array -> sent_at:float -> t
(** An acknowledgment positioned at the first hop of [route]. *)

val forward : t -> unit
(** Deliver the packet to its next hop, advancing the hop index. Must not
    be called past the last hop (asserted). *)
