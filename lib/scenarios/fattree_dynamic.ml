open Repro_netsim

type config = {
  k : int;
  rate_mbps : float;
  delay_ms : float;
  oversubscription : float;
  algo : string;
  subflows : int;
  mean_interval : float;
  duration : float;
  warmup : float;
  seed : int;
}

let default =
  {
    k = 8;
    rate_mbps = 100.;
    delay_ms = 1.;
    oversubscription = 4.;
    algo = "olia";
    subflows = 8;
    mean_interval = 0.2;
    duration = 30.;
    warmup = 5.;
    seed = 1;
  }

type result = {
  completion_times_ms : float array;
  mean_completion_ms : float;
  stdev_completion_ms : float;
  core_utilization_pct : float;
  long_flow_mbps : float;
  unfinished_shorts : int;
}

let run cfg =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let rate = cfg.rate_mbps *. 1e6 in
  let tree =
    Repro_topology.Fattree.create ~sim ~rng:(Rng.split rng) ~k:cfg.k ~rate_bps:rate
      ~delay:(cfg.delay_ms /. 1000.)
      ~buffer_pkts:100 ~discipline:Queue.Droptail
      ~oversubscription:cfg.oversubscription ()
  in
  let hosts = Repro_topology.Fattree.host_count tree in
  let wl_rng = Rng.split rng in
  let dest = Rng.derangement_permutation wl_rng hosts in
  (* every third host runs a continuous flow; the rest send shorts *)
  let is_long src = src mod 3 = 0 in
  let factory =
    if cfg.subflows <= 1 || cfg.algo = "reno" then fun () ->
      Repro_cc.Reno.create ()
    else Common.factory_of_name cfg.algo
  in
  let long_conns = ref [] in
  let completions = ref [] in
  let started_shorts = ref 0 and finished_shorts = ref 0 in
  for src = 0 to hosts - 1 do
    if is_long src then begin
      let n = if cfg.algo = "reno" then 1 else cfg.subflows in
      let paths = Repro_topology.Fattree.sample_paths tree ~rng ~src ~dst:dest.(src) ~n in
      let conn =
        Tcp.create ~sim ~cc:(factory ()) ~paths
          ~start:(Rng.uniform wl_rng 1.) ~flow_id:src ()
      in
      long_conns := conn :: !long_conns
    end
    else begin
      let shorts =
        Repro_workload.Workload.poisson_short_flows ~rng:wl_rng ~src ~dst:dest.(src)
          ~mean_interval:cfg.mean_interval
          ~size_pkts:Repro_workload.Workload.short_flow_pkts ~duration:cfg.duration
      in
      List.iter
        (fun { Repro_workload.Workload.start; size_pkts; src; dst } ->
          incr started_shorts;
          let paths = Repro_topology.Fattree.sample_paths tree ~rng ~src ~dst ~n:1 in
          let conn = ref None in
          let on_complete t_end =
            incr finished_shorts;
            if start >= cfg.warmup then
              completions := ((t_end -. start) *. 1000.) :: !completions;
            ignore !conn
          in
          conn :=
            Some
              (Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths
                 ?size_pkts ~start ~on_complete ~flow_id:src ()))
        shorts
    end
  done;
  let core = Repro_topology.Fattree.core_queues tree in
  ignore
    (Sim.schedule_at ~src:"scenario.warmup" sim cfg.warmup (fun () ->
         List.iter Queue.reset_stats core)
      : Sim.Timer.t);
  let measured =
    Common.measure_conns ~sim ~warmup:cfg.warmup ~duration:cfg.duration
      !long_conns
  in
  let completion_times_ms = Array.of_list !completions in
  let summary = Repro_stats.Summary.of_array completion_times_ms in
  let utils =
    List.map
      (fun q -> Queue.utilization q ~since:cfg.warmup ~now:cfg.duration)
      core
  in
  {
    completion_times_ms;
    mean_completion_ms = Repro_stats.Summary.mean summary;
    stdev_completion_ms = Repro_stats.Summary.stdev summary;
    core_utilization_pct = 100. *. Common.mean utils;
    long_flow_mbps =
      Common.mean (List.map (fun m -> m.Common.goodput_mbps) measured);
    unfinished_shorts = !started_shorts - !finished_shorts;
  }
