(** Fixed-point analysis of Scenario C (paper §III-C, Figs. 5, 11, 12).

    [n1] multipath users connect to a private AP1 (capacity [n1·c1]) and a
    shared AP2 (capacity [n2·c2]) on which [n2] single-path TCP users
    depend. Capacities are per-user, in packets per second; [rtt] common. *)

type params = { n1 : int; n2 : int; c1 : float; c2 : float; rtt : float }

type regime =
  | Balanced  (** [p1 ≥ p2]: every user gets the same total rate *)
  | Ap1_better  (** [p1 < p2]: the cubic fixed point of §III-C applies *)

type lia_point = {
  regime : regime;
  z : float;  (** [sqrt(p1/p2)] in the [Ap1_better] regime, 1 otherwise *)
  p1 : float;
  p2 : float;
  x1 : float;  (** multipath rate over AP1 *)
  x2 : float;  (** multipath rate over AP2 *)
  y : float;  (** single-path rate *)
  norm_multipath : float;  (** (x1+x2)/c1 *)
  norm_single : float;  (** y/c2 *)
}

val threshold : params -> float
(** The aggressiveness threshold [1/(2 + n1/n2)]: LIA takes more than a
    fair share of AP2 as soon as [c1/c2] exceeds it. *)

val lia : params -> lia_point
(** The LIA fixed point. In the [Ap1_better] regime [z] is the unique
    positive root of [z³ + (n1/n2)·z² + z − c2/c1]; in the [Balanced]
    regime all users receive [(n1·c1 + n2·c2)/(n1+n2)]. *)

type allocation = {
  multipath_total : float;
  single_total : float;
  norm_multipath : float;
  norm_single : float;
}

val fair_share : params -> float
(** The proportionally-fair per-user rate when both APs pool:
    [(n1·c1 + n2·c2)/(n1 + n2)]. *)

val optimum_with_probing : params -> allocation
(** The theoretical optimum with probing cost: multipath users receive
    [max(c1 + 1/rtt, fair_share)], single-path users
    [min(c2 − (n1/n2)/rtt, fair_share)]. *)

val lia_allocation : params -> allocation
(** The LIA fixed point folded into an [allocation]. *)
