(** Fixed-point analysis of Scenario A (paper §III-A, Appendix A, Figs. 1,
    9, 10).

    [n1] type-1 users stream from a server of capacity [n1·c1] through a
    private AP and may open a second MPTCP subflow through a shared AP of
    capacity [n2·c2], which [n2] type-2 regular-TCP users depend on.
    All capacities are per-user, in packets per second; [rtt] in seconds
    and is common to all paths. *)

type params = { n1 : int; n2 : int; c1 : float; c2 : float; rtt : float }

type lia_point = {
  z : float;  (** [sqrt(p1/p2)], root of Eq. (10) *)
  p1 : float;  (** loss probability at the streaming-server link *)
  p2 : float;  (** loss probability at the shared AP *)
  x1 : float;  (** type-1 rate over the private path *)
  x2 : float;  (** type-1 rate over the shared AP *)
  y : float;  (** type-2 rate *)
  norm_type1 : float;  (** (x1+x2)/c1, always 1 in this scenario *)
  norm_type2 : float;  (** y/c2 *)
}

val lia : params -> lia_point
(** The unique fixed point of MPTCP-LIA: [z] solves
    [z + z²/(1+2z²)·N1/N2 = C2/C1] (Eq. 10); [p1 = 2/(rtt·c1)²];
    rates follow the loss-throughput formulas of §III-A. *)

type allocation = {
  type1_total : float;  (** per-user type-1 rate *)
  type2_total : float;  (** per-user type-2 rate *)
  norm1 : float;
  norm2 : float;
}

val optimum_with_probing : params -> allocation
(** The theoretical optimum with probing cost: type-1 users send exactly
    one MSS per RTT over the shared AP ([x2 = 1/rtt]), so
    [y = c2 − (n1/n2)/rtt] (Appendix A.2). *)

val lia_allocation : params -> allocation
(** The LIA fixed point folded into an [allocation] for side-by-side
    tables. *)
