(** Discrete-event simulation core: a clock and a time-ordered queue of
    callbacks. Events at equal times fire in scheduling order, so runs are
    deterministic. *)

type t

val create : unit -> t
(** A simulator at time 0 with no events. *)

val now : t -> float
(** Current simulated time, seconds. *)

val schedule_at : ?src:string -> t -> float -> (unit -> unit) -> unit
(** [schedule_at t time fn] runs [fn] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past. [src] labels
    the event source for [Repro_obs.Profile] attribution (default
    ["other"]); when profiling is armed at scheduling time the
    callback is wrapped to account its dispatch count and wall time,
    otherwise the label costs nothing. *)

val schedule_after : ?src:string -> t -> float -> (unit -> unit) -> unit
(** [schedule_after t delay fn] = [schedule_at t (now t +. delay) fn]. *)

val run_until : t -> float -> unit
(** Process events in order until the queue is empty or the next event is
    later than the horizon; the clock ends at the horizon. *)

val run : t -> unit
(** Process events until the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events executed so far (for the micro-benchmarks). *)

val max_heap_depth : t -> int
(** High-water mark of the event heap: the most events that were ever
    pending at once (for the observability counters). *)
