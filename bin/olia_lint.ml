(* olia_lint — the repo's own static-analysis pass.

   Walks every .ml/.mli under the given roots (default: lib bin bench
   test), parses them with compiler-libs and enforces the invariant
   catalogue described in docs/LINT.md: the per-file rules R1-R8 plus
   the whole-program rules R9-R11, which run over a cross-module call
   graph built from per-binding summaries. Exit status: 0 clean,
   1 findings, 2 usage error. *)

let usage =
  "usage: olia_lint [--json] [--format text|json|sarif] [--rule ID[,ID...]] \
   [--alloc-free-root NAME] [--graph-dump] [--rules] [DIR|FILE ...]"

let print_rules () =
  List.iter
    (fun r ->
      Printf.printf "%-8s %s\n" (Repro_lint.Finding.rule_name r)
        (Repro_lint.Finding.rule_doc r))
    Repro_lint.Finding.
      [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; Parse; Suppress ]

let () =
  let format = ref "text" in
  let rules = ref false in
  let graph_dump = ref false in
  let only_rules = ref [] in
  let extra_roots = ref [] in
  let roots = ref [] in
  let set_format f =
    match f with
    | "text" | "json" | "sarif" -> format := f
    | other ->
      raise
        (Arg.Bad
           (Printf.sprintf
              "olia_lint: unknown format %S (expected text, json or sarif)"
              other))
  in
  let add_only spec =
    List.iter
      (fun id ->
        match Repro_lint.Finding.rule_of_name id with
        | Some r -> only_rules := r :: !only_rules
        | None ->
          raise
            (Arg.Bad
               (Printf.sprintf
                  "olia_lint: unknown rule id %S (see --rules)" id)))
      (List.filter (fun s -> s <> "") (String.split_on_char ',' spec))
  in
  let spec =
    [
      ("--json", Arg.Unit (fun () -> format := "json"),
       " report findings as JSON on stdout (same as --format json)");
      ("--format", Arg.String set_format,
       "FMT report format: text (default), json, or sarif");
      ("--rule", Arg.String add_only,
       "IDS only report these rule ids (comma-separated, repeatable)");
      ("--alloc-free-root", Arg.String (fun n -> extra_roots := n :: !extra_roots),
       "NAME add a module-qualified function (e.g. Sim.dispatch) to the \
        R9 root set");
      ("--graph-dump", Arg.Set graph_dump,
       " print the whole-program call graph and exit");
      ("--rules", Arg.Set rules, " print the rule catalogue and exit");
    ]
  in
  (try Arg.parse spec (fun d -> roots := d :: !roots) usage
   with Arg.Bad msg ->
     prerr_endline msg;
     exit 2);
  if !rules then (
    print_rules ();
    exit 0);
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | r -> r
  in
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
   | [] -> ()
   | missing ->
     Printf.eprintf "olia_lint: no such file or directory: %s\n"
       (String.concat ", " missing);
     exit 2);
  let sources = Repro_lint.Engine.read_sources roots in
  if !graph_dump then (
    print_string
      (Repro_lint.Callgraph.dump (Repro_lint.Engine.graph_of_sources sources));
    exit 0);
  let files = List.length sources in
  let findings =
    Repro_lint.Engine.lint_sources
      ~extra_alloc_free_roots:(List.rev !extra_roots)
      sources
  in
  let findings =
    match !only_rules with
    | [] -> findings
    | only ->
      List.filter (fun f -> List.mem f.Repro_lint.Finding.rule only) findings
  in
  (match !format with
   | "json" ->
     print_endline
       (Repro_stats.Json.to_string
          (Repro_lint.Report.to_json ~files findings))
   | "sarif" ->
     print_endline
       (Repro_stats.Json.to_string (Repro_lint.Report.to_sarif findings))
   | _ -> print_string (Repro_lint.Report.to_text ~files findings));
  exit (if findings = [] then 0 else 1)
