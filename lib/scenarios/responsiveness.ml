open Repro_netsim

type config = {
  c_mbps : float;
  n_shock : int;
  shock_at : float;
  relief_at : float;
  duration : float;
  algo : string;
  seed : int;
}

let default =
  {
    c_mbps = 10.;
    n_shock = 8;
    shock_at = 60.;
    relief_at = 120.;
    duration = 180.;
    algo = "olia";
    seed = 1;
  }

type result = {
  pre_shock_share : float;
  shock_response_s : float;
  relief_response_s : float;
  post_relief_share : float;
}

let run cfg =
  if not (0. < cfg.shock_at && cfg.shock_at < cfg.relief_at
          && cfg.relief_at < cfg.duration) then
    invalid_arg "Responsiveness.run: need 0 < shock < relief < duration";
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let rate = cfg.c_mbps *. 1e6 in
  let mk name =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:rate
      ~buffer_pkts:(Common.bottleneck_buffer ~rate_bps:rate)
      ~discipline:(Common.red_for ~rate_bps:rate) ~name ()
  in
  let q1 = mk "path1" and q2 = mk "path2" in
  let one_way = Common.paper_propagation_delay /. 2. in
  let fwd_pipe = Pipe.create ~sim ~delay:one_way in
  let rev_pipe = Pipe.create ~sim ~delay:one_way in
  let rev = [| Pipe.hop rev_pipe |] in
  let path q = { Tcp.fwd = [| Queue.hop q; Pipe.hop fwd_pipe |]; rev } in
  let mp =
    Tcp.create ~sim
      ~cc:(Common.factory_of_name cfg.algo ())
      ~paths:[| path q1; path q2 |]
      ~flow_id:0 ()
  in
  (* a permanent TCP companion on each path keeps both links busy *)
  let mk_tcp q start flow_id size =
    Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths:[| path q |] ~start
      ?size_pkts:size ~flow_id ()
  in
  let _ = mk_tcp q1 0.2 1 None and _ = mk_tcp q2 0.4 2 None in
  (* the shock: n TCP flows hammer path 2 between shock_at and relief_at;
     they are finite but large enough to outlast the window, and are
     silenced at relief by disabling their subflow *)
  let shock_flows =
    List.init cfg.n_shock (fun i ->
        mk_tcp q2
          (cfg.shock_at +. (0.1 *. float_of_int i))
          (100 + i) None)
  in
  ignore
    (Sim.schedule_at ~src:"responsiveness.relief" sim cfg.relief_at (fun () ->
         List.iter (fun c -> Tcp.set_subflow_enabled c 0 false) shock_flows)
      : Sim.Timer.t);
  (* sample the multipath user's path-2 window share *)
  let share_ts = Repro_stats.Timeseries.create () in
  let sample_timer = ref Sim.Timer.none in
  let sample () =
    let w1 = Tcp.subflow_cwnd mp 0 and w2 = Tcp.subflow_cwnd mp 1 in
    Repro_stats.Timeseries.add share_ts ~time:(Sim.now sim)
      (w2 /. Stdlib.max (w1 +. w2) 1e-9);
    if not (Sim.now sim +. 0.2 < cfg.duration) then
      Sim.Timer.cancel sim !sample_timer
  in
  sample_timer := Sim.every ~src:"responsiveness.sample" ~start:1. sim 0.2 sample;
  (* goodput share probes *)
  let acked2_at = ref [] in
  List.iter
    (fun t ->
      ignore
        (Sim.schedule_at ~src:"responsiveness.probe" sim t (fun () ->
             acked2_at :=
               (t, Tcp.subflow_acked mp 1, Tcp.total_acked mp) :: !acked2_at)
          : Sim.Timer.t))
    [ cfg.shock_at /. 2.; cfg.shock_at; cfg.relief_at; cfg.duration -. 0.1 ];
  Sim.run_until sim cfg.duration;
  let share_between t0 t1 =
    Repro_stats.Timeseries.mean_over share_ts ~from:t0 ~until:t1
  in
  let pre = share_between (cfg.shock_at /. 2.) cfg.shock_at in
  (* first crossing of a threshold after a reference time *)
  let first_crossing ~after ~below threshold =
    let hit = ref nan in
    Repro_stats.Timeseries.fold share_ts ~init:() ~f:(fun () t v ->
        if Float.is_nan !hit && t >= after then
          if (below && v < threshold) || ((not below) && v > threshold) then
            hit := t -. after);
    !hit
  in
  let goodput_share t0 t1 =
    let find t =
      List.find_opt (fun (x, _, _) -> abs_float (x -. t) < 1e-6) !acked2_at
    in
    match (find t0, find t1) with
    | Some (_, a2, tot), Some (_, b2, tot') when tot' > tot ->
      float_of_int (b2 - a2) /. float_of_int (tot' - tot)
    | _ -> nan
  in
  {
    pre_shock_share = pre;
    shock_response_s = first_crossing ~after:cfg.shock_at ~below:true (pre /. 2.);
    relief_response_s =
      first_crossing ~after:cfg.relief_at ~below:false (pre /. 2.);
    post_relief_share = goodput_share cfg.relief_at (cfg.duration -. 0.1);
  }
