lib/scenarios/wireless.mli:
