examples/quickstart.ml: Mptcp_repro Pipe Printf Queue Rng Sim Tcp
