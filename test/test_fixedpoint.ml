(* Property-based tests of the fixed-point primitives backing the
   kernel-twin congestion controllers ([olia-fp]/[balia-fp]): scale
   round-trips, the div_u64 zero-divisor guard, saturation behaviour,
   overflow-freedom below the BALIA rescale limit, and monotonicity of
   the OLIA scaled increase term. *)

module Fp = Mptcp_repro.Cc.Fixedpoint

let ulp = 1. /. float_of_int Fp.one

(* --- scale round-trips -------------------------------------------------- *)

let prop_round_trip =
  QCheck.Test.make ~name:"fixedpoint: of/to_float_scaled round-trip <= ulp"
    ~count:500
    QCheck.(float_bound_inclusive 1e6)
    (fun x ->
      let y = Fp.to_float_scaled (Fp.of_float_scaled x) in
      abs_float (y -. x) <= ulp)

let prop_int_round_trip =
  QCheck.Test.make ~name:"fixedpoint: integers survive the scale exactly"
    ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun n ->
      Fp.of_float_scaled (float_of_int n) = n * Fp.one
      && Float.equal (Fp.to_float_scaled (n * Fp.one)) (float_of_int n))

(* --- div_u64 guard ------------------------------------------------------ *)

let prop_div_guard =
  QCheck.Test.make ~name:"fixedpoint: div_u64 guards zero divisors"
    ~count:200
    QCheck.(pair (int_range 0 max_int) (int_range (-5) 5))
    (fun (n, d) ->
      let q = Fp.div_u64 n d in
      if d <= 0 then q = 0 else q = n / d)

(* The kernel floors OLIA's rate accumulator at 1 before squaring, so
   a guarded-to-zero division can never zero the whole rate. *)
let prop_rate_floor =
  QCheck.Test.make ~name:"fixedpoint: rate floor survives guarded division"
    ~count:100
    QCheck.(int_range 0 max_int)
    (fun n ->
      let rate = Fp.add_sat 1 (Fp.div_u64 n 0) in
      rate = 1 && Fp.mul_sat rate rate >= 1)

(* --- saturation --------------------------------------------------------- *)

let prop_saturation =
  QCheck.Test.make ~name:"fixedpoint: products saturate instead of wrapping"
    ~count:300
    QCheck.(pair (int_range 0 max_int) (int_range 0 max_int))
    (fun (a, b) ->
      let p = Fp.mul_sat a b in
      let s = Fp.add_sat a b in
      p >= 0 && s >= 0
      && (b = 0 || p >= a || p = max_int)
      && (s >= a || s = max_int)
      && Fp.mul_sat a b = Fp.mul_sat b a)

let prop_shift_saturation =
  QCheck.Test.make ~name:"fixedpoint: scale_sat saturates at max_int"
    ~count:200
    QCheck.(int_range 0 max_int)
    (fun v ->
      let s = Fp.scale_sat v in
      if v > max_int asr Fp.scale then s = max_int else s = v lsl Fp.scale)

(* --- BALIA rescale limit ------------------------------------------------ *)

(* After the kernel's rescale loop (num_scale_down steps of scale_num
   bits), the largest rate sits at or below 2^rate_scale_limit, so the
   squared sum of any two rescaled rates stays far from saturation:
   (2 * 2^25)^2 = 2^52 < 2^62. *)
let prop_no_overflow_below_rescale_limit =
  QCheck.Test.make
    ~name:"fixedpoint: rescaled rates square without saturating" ~count:300
    QCheck.(pair (int_range 1 (1 lsl 60)) (int_range 1 (1 lsl 60)))
    (fun (r1, r2) ->
      let max_rate = Stdlib.max r1 r2 in
      let down = Fp.num_scale_down max_rate in
      let s1 = Fp.rescale r1 down and s2 = Fp.rescale r2 down in
      Fp.rescale max_rate down <= 1 lsl Fp.rate_scale_limit
      && Fp.mul_sat (Fp.add_sat s1 s2) (Fp.add_sat s1 s2) < max_int)

let prop_num_scale_down_minimal =
  QCheck.Test.make ~name:"fixedpoint: num_scale_down takes minimal steps"
    ~count:300
    QCheck.(int_range 1 (1 lsl 60))
    (fun v ->
      let down = Fp.num_scale_down v in
      Fp.rescale v down <= 1 lsl Fp.rate_scale_limit
      && (down = 0
         || Fp.rescale v (down - 1) > 1 lsl Fp.rate_scale_limit))

(* --- OLIA scaled increase term ------------------------------------------ *)

(* The eps = 0 branch of the kernel's cnt update contributes
   cwnd_scaled^2 << scale / (cwnd * rate) = w * 2^(3*scale) / rate per
   ACK: for a fixed rate the scaled increase must be monotone in the
   window, or the controller would slow its own growth. *)
let scaled_increase w rate =
  let w_scaled = Fp.scale_sat w in
  Fp.div_u64
    (Fp.shift_sat (Fp.mul_sat w_scaled w_scaled) Fp.scale)
    (Fp.mul_sat w rate)

let prop_increase_monotone =
  QCheck.Test.make
    ~name:"fixedpoint: OLIA scaled increase is monotone in cwnd" ~count:300
    QCheck.(pair (int_range 1 60_000) (int_range 1 (1 lsl 30)))
    (fun (w, rate) -> scaled_increase w rate <= scaled_increase (w + 1) rate)

(* --- float agreement ---------------------------------------------------- *)

(* A scaled product agrees with the float product to within the
   accumulated rounding of the two operands (one ulp each, amplified by
   the other operand, plus the final truncation). *)
let prop_product_agrees_with_float =
  QCheck.Test.make ~name:"fixedpoint: scaled product tracks float product"
    ~count:500
    QCheck.(pair (float_bound_inclusive 32.) (float_bound_inclusive 32.))
    (fun (a, b) ->
      let fp =
        Fp.to_float_scaled
          (Fp.div_u64
             (Fp.mul_sat (Fp.of_float_scaled a) (Fp.of_float_scaled b))
             Fp.one)
      in
      abs_float (fp -. (a *. b)) <= (a +. b +. 1.) *. ulp)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_round_trip;
      prop_int_round_trip;
      prop_div_guard;
      prop_rate_floor;
      prop_saturation;
      prop_shift_saturation;
      prop_no_overflow_below_rescale_limit;
      prop_num_scale_down_minimal;
      prop_increase_monotone;
      prop_product_agrees_with_float;
    ]
