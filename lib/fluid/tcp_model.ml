type path = { loss : float; rtt : float }

let tcp_rate { loss; rtt } =
  if loss <= 0. then infinity else sqrt (2. /. loss) /. rtt

let tcp_loss_for_rate ~rtt rate =
  if rate <= 0. then 1. else 2. /. ((rtt *. rate) ** 2.)

let best_path_rate = function
  | [] -> invalid_arg "Tcp_model.best_path_rate: no paths"
  | paths -> List.fold_left (fun acc p -> Stdlib.max acc (tcp_rate p)) 0. paths

(* Eq. 2: w_r = (1/p_r) · best / Σ_p 1/(rtt_p·p_p); x_r = w_r / rtt_r. *)
let lia_rates paths =
  match paths with
  | [] -> invalid_arg "Tcp_model.lia_rates: no paths"
  | _ ->
    let best = best_path_rate paths in
    let denom =
      List.fold_left (fun acc p -> acc +. (1. /. (p.rtt *. p.loss))) 0. paths
    in
    List.map (fun p -> best /. (p.rtt *. p.loss) /. denom) paths

let olia_rates paths =
  match paths with
  | [] -> invalid_arg "Tcp_model.olia_rates: no paths"
  | _ ->
    let best = best_path_rate paths in
    let eps = 1e-9 *. best in
    let is_best p = tcp_rate p >= best -. eps in
    let nbest = List.length (List.filter is_best paths) in
    List.map
      (fun p -> if is_best p then best /. float_of_int nbest else 0.)
      paths

let olia_rates_with_probing paths =
  match paths with
  | [] -> invalid_arg "Tcp_model.olia_rates_with_probing: no paths"
  | _ ->
    let rates = olia_rates paths in
    let probing =
      List.map2
        (fun p r ->
          if Float.equal r 0. then Units.probe_rate ~rtt:p.rtt else 0.)
        paths rates
    in
    let overhead = List.fold_left ( +. ) 0. probing in
    let active = List.length (List.filter (fun r -> r > 0.) rates) in
    let cut = overhead /. float_of_int (Stdlib.max active 1) in
    List.map2
      (fun r probe -> if r > 0. then Stdlib.max 0. (r -. cut) else probe)
      rates probing
