open Mptcp_repro.Fluid

let check_close eps = Test_common.close ~atol:eps

(* A two-link network shared by one two-path user and two single-path
   users (the Fig. 6 shape). *)
let two_bottleneck ?(c1 = 100.) ?(c2 = 100.) ?(rtt = 0.1) () =
  let link c = Network_model.link ~sharpness:12. ~scale:0.05 c in
  {
    Network_model.links = [| link c1; link c2 |];
    users =
      [|
        {
          Network_model.routes =
            [|
              { Network_model.links = [| 0 |]; rtt };
              { Network_model.links = [| 1 |]; rtt };
            |];
        };
        { Network_model.routes = [| { Network_model.links = [| 0 |]; rtt } |] };
        { Network_model.routes = [| { Network_model.links = [| 1 |]; rtt } |] };
      |];
  }

(* --- Network_model -------------------------------------------------- *)

let test_validate_rejects_bad_link_ref () =
  let net =
    {
      Network_model.links = [| Network_model.link 10. |];
      users =
        [| { Network_model.routes = [| { Network_model.links = [| 3 |]; rtt = 0.1 } |] } |];
    }
  in
  Alcotest.check_raises "bad ref"
    (Invalid_argument "Network_model: route references unknown link")
    (fun () -> Network_model.validate net)

let test_validate_rejects_empty_user () =
  let net =
    {
      Network_model.links = [| Network_model.link 10. |];
      users = [| { Network_model.routes = [||] } |];
    }
  in
  Alcotest.check_raises "no route"
    (Invalid_argument "Network_model: user with no route") (fun () ->
      Network_model.validate net)

let test_link_loads () =
  let net = two_bottleneck () in
  let x = [| [| 1.; 2. |]; [| 4. |]; [| 8. |] |] in
  let loads = Network_model.link_loads net x in
  check_close 1e-9 "link0" 5. loads.(0);
  check_close 1e-9 "link1" 10. loads.(1)

let test_link_loss_monotone () =
  let l = Network_model.link 100. in
  Alcotest.(check bool) "zero at zero" true
    (Float.equal (Network_model.link_loss l 0.) 0.);
  Alcotest.(check bool) "increasing" true
    (Network_model.link_loss l 90. < Network_model.link_loss l 110.);
  check_close 1e-9 "scale at capacity" 0.05 (Network_model.link_loss l 100.);
  check_close 1e-9 "clamped at 1" 1. (Network_model.link_loss l 1e9)

let test_route_losses_sum () =
  let net =
    {
      Network_model.links =
        [| Network_model.link 100.; Network_model.link 100. |];
      users =
        [|
          { Network_model.routes = [| { Network_model.links = [| 0; 1 |]; rtt = 0.1 } |] };
        |];
    }
  in
  let p = [| 0.01; 0.02 |] in
  let route_p = Network_model.route_losses net p in
  check_close 1e-12 "sum approximation" 0.03 route_p.(0).(0)

let test_congestion_cost_increasing () =
  let net = two_bottleneck () in
  let x1 = [| [| 10.; 10. |]; [| 10. |]; [| 10. |] |] in
  let x2 = [| [| 50.; 50. |]; [| 50. |]; [| 50. |] |] in
  Alcotest.(check bool) "cost grows with load" true
    (Network_model.congestion_cost net x1 < Network_model.congestion_cost net x2)

let test_utility_v_increasing_in_rate () =
  let net = two_bottleneck () in
  let x1 = [| [| 10.; 10. |]; [| 10. |]; [| 10. |] |] in
  let x2 = [| [| 20.; 20. |]; [| 10. |]; [| 10. |] |] in
  (* at low load the −1/Σx term dominates: more rate is better *)
  Alcotest.(check bool) "V increasing" true
    (Network_model.utility_v net x1 < Network_model.utility_v net x2)

(* --- Equilibrium ----------------------------------------------------- *)

let test_uncoupled_symmetric () =
  let net = two_bottleneck () in
  let x = Equilibrium.solve net Uncoupled in
  (* by symmetry, the multipath user's two routes carry the same rate *)
  check_close 1e-3 "symmetric" x.(0).(0) x.(0).(1);
  (* each link carries roughly its capacity at the equilibrium point *)
  let loads = Network_model.link_loads net x in
  Alcotest.(check bool) "links loaded near capacity" true
    (loads.(0) > 60. && loads.(0) < 140.)

let test_olia_balanced_ties () =
  let net = two_bottleneck () in
  let x = Equilibrium.solve net Olia in
  check_close 1e-3 "even split on equal paths" x.(0).(0) x.(0).(1)

let test_olia_asymmetric_uses_best () =
  (* second bottleneck much smaller: OLIA should abandon it *)
  let net = two_bottleneck ~c2:20. () in
  let x = Equilibrium.solve net Olia in
  Alcotest.(check bool) "congested path unused" true
    (x.(0).(1) < 0.01 *. x.(0).(0))

let test_lia_asymmetric_keeps_both () =
  (* LIA keeps a non-negligible share on the congested path (Eq. 2) *)
  let net = two_bottleneck ~c2:20. () in
  let x = Equilibrium.solve net Lia in
  Alcotest.(check bool) "congested path still used" true
    (x.(0).(1) > 0.05 *. x.(0).(0))

let test_olia_total_equals_best_path_tcp () =
  (* Theorem 1 (ii): the multipath total equals the best-path TCP rate *)
  let net = two_bottleneck ~c2:20. () in
  let x = Equilibrium.solve net Olia in
  let loads = Network_model.link_loads net x in
  let p0 = Network_model.link_loss net.Network_model.links.(0) loads.(0) in
  let tcp_rate = sqrt (2. /. p0) /. 0.1 in
  let total = x.(0).(0) +. x.(0).(1) in
  check_close (0.05 *. tcp_rate) "goal 1" tcp_rate total

let test_olia_probing_floor () =
  let net = two_bottleneck ~c2:20. () in
  let x = Equilibrium.solve net Olia_probing in
  check_close 1e-6 "one packet per rtt" (1. /. 0.1) x.(0).(1)

let test_equilibrium_single_tcp_user () =
  (* one TCP user alone on a link: rate solves x = (1/rtt)·sqrt(2/p(x)) *)
  let net =
    {
      Network_model.links = [| Network_model.link 100. |];
      users =
        [| { Network_model.routes = [| { Network_model.links = [| 0 |]; rtt = 0.1 } |] } |];
    }
  in
  let x = Equilibrium.solve net Uncoupled in
  let p = Network_model.link_loss net.Network_model.links.(0) x.(0).(0) in
  check_close (0.01 *. x.(0).(0)) "fixed point" x.(0).(0) (sqrt (2. /. p) /. 0.1)

let test_user_utilities () =
  let net = two_bottleneck ~rtt:0.2 () in
  let x = [| [| 2.; 2. |]; [| 4. |]; [| 4. |] |] in
  let u = Equilibrium.user_utilities net x in
  check_close 1e-9 "multipath" (4. /. 0.04) u.(0);
  check_close 1e-9 "single" (4. /. 0.04) u.(1)

(* --- Pareto witness (Theorem 3) -------------------------------------- *)

let test_olia_fixed_point_is_pareto () =
  let net = two_bottleneck () in
  let x = Equilibrium.solve net Olia in
  Alcotest.(check bool) "no dominating perturbation" true
    (Equilibrium.pareto_witness ~trials:3000 ~seed:42 net x = None)

let test_olia_asymmetric_is_pareto () =
  let net = two_bottleneck ~c2:30. () in
  let x = Equilibrium.solve net Olia in
  Alcotest.(check bool) "no dominating perturbation" true
    (Equilibrium.pareto_witness ~trials:3000 ~seed:7 net x = None)

let test_pareto_witness_finds_dominated_point () =
  (* a clearly wasteful allocation must be dominated *)
  let net = two_bottleneck () in
  let x = [| [| 1.; 1. |]; [| 1. |]; [| 1. |] |] in
  Alcotest.(check bool) "witness exists" true
    (Equilibrium.pareto_witness ~trials:2000 ~seed:3 net x <> None)

(* --- OLIA fluid ODE (Theorems 3 and 4) -------------------------------- *)

let test_ode_alpha_sums_to_zero () =
  let user =
    {
      Network_model.routes =
        [|
          { Network_model.links = [| 0 |]; rtt = 0.1 };
          { Network_model.links = [| 1 |]; rtt = 0.1 };
          { Network_model.links = [| 1 |]; rtt = 0.1 };
        |];
    }
  in
  let alpha =
    Olia_ode.alphas ~tolerance:0.02 user ~x:[| 10.; 5.; 1. |]
      ~losses:[| 0.1; 0.001; 0.05 |]
  in
  check_close 1e-9 "sum zero" 0. (Array.fold_left ( +. ) 0. alpha);
  (* route 1 is best but has not the max window: positive alpha *)
  Alcotest.(check bool) "best gets positive" true (alpha.(1) > 0.);
  (* route 0 has the max window: negative alpha *)
  Alcotest.(check bool) "max window gets negative" true (alpha.(0) < 0.)

let test_ode_alpha_zero_when_best_has_max_window () =
  let user =
    {
      Network_model.routes =
        [|
          { Network_model.links = [| 0 |]; rtt = 0.1 };
          { Network_model.links = [| 1 |]; rtt = 0.1 };
        |];
    }
  in
  let alpha =
    Olia_ode.alphas ~tolerance:0.02 user ~x:[| 10.; 1. |]
      ~losses:[| 0.001; 0.1 |]
  in
  check_close 1e-9 "alpha1" 0. alpha.(0);
  check_close 1e-9 "alpha2" 0. alpha.(1)

let test_ode_utility_nondecreasing () =
  (* Theorem 4: V(x(t)) is non-decreasing under equal RTTs *)
  let net = two_bottleneck () in
  let x0 = Olia_ode.uniform_start net ~rate:5. in
  let r =
    Olia_ode.integrate
      ~options:{ Olia_ode.default_options with t_end = 100.; dt = 1e-3 }
      net ~x0
  in
  let trace = r.utility_trace in
  let violations = ref 0 in
  for i = 1 to Array.length trace - 1 do
    (* allow tiny numerical wiggle *)
    if snd trace.(i) < snd trace.(i - 1) -. 1e-3 then incr violations
  done;
  Alcotest.(check bool) "monotone (within tolerance)" true
    (!violations < Array.length trace / 20)

let test_ode_converges_to_equal_split () =
  let net = two_bottleneck () in
  (* start from a very unbalanced allocation *)
  let x0 = [| [| 50.; 1. |]; [| 20. |]; [| 20. |] |] in
  let r =
    Olia_ode.integrate
      ~options:{ Olia_ode.default_options with t_end = 300. }
      net ~x0
  in
  let a = r.rates.(0).(0) and b = r.rates.(0).(1) in
  Alcotest.(check bool) "splits roughly evenly" true
    (abs_float (a -. b) < 0.3 *. (a +. b))

let test_ode_abandons_congested_path () =
  let net = two_bottleneck ~c2:10. () in
  let x0 = Olia_ode.uniform_start net ~rate:5. in
  let r =
    Olia_ode.integrate
      ~options:{ Olia_ode.default_options with t_end = 300.; min_rate = 1e-3 }
      net ~x0
  in
  Alcotest.(check bool) "congested path near floor" true
    (r.rates.(0).(1) < 0.05 *. r.rates.(0).(0))

let test_ode_matches_equilibrium_solver () =
  let net = two_bottleneck () in
  let x_eq = Equilibrium.solve net Olia in
  let r =
    Olia_ode.integrate
      ~options:{ Olia_ode.default_options with t_end = 300. }
      net
      ~x0:(Olia_ode.uniform_start net ~rate:5.)
  in
  let total_eq = x_eq.(0).(0) +. x_eq.(0).(1) in
  let total_ode = r.rates.(0).(0) +. r.rates.(0).(1) in
  check_close (0.15 *. total_eq) "cross-validation" total_eq total_ode

let suite =
  [
    Alcotest.test_case "model: rejects unknown link" `Quick
      test_validate_rejects_bad_link_ref;
    Alcotest.test_case "model: rejects user with no route" `Quick
      test_validate_rejects_empty_user;
    Alcotest.test_case "model: link loads" `Quick test_link_loads;
    Alcotest.test_case "model: loss curve monotone" `Quick
      test_link_loss_monotone;
    Alcotest.test_case "model: route losses sum" `Quick test_route_losses_sum;
    Alcotest.test_case "model: congestion cost increasing" `Quick
      test_congestion_cost_increasing;
    Alcotest.test_case "model: utility V increasing at low load" `Quick
      test_utility_v_increasing_in_rate;
    Alcotest.test_case "equilibrium: uncoupled symmetric" `Quick
      test_uncoupled_symmetric;
    Alcotest.test_case "equilibrium: OLIA even tie split" `Quick
      test_olia_balanced_ties;
    Alcotest.test_case "equilibrium: OLIA abandons congested path" `Quick
      test_olia_asymmetric_uses_best;
    Alcotest.test_case "equilibrium: LIA keeps congested path" `Quick
      test_lia_asymmetric_keeps_both;
    Alcotest.test_case "equilibrium: Theorem 1(ii) total rate" `Quick
      test_olia_total_equals_best_path_tcp;
    Alcotest.test_case "equilibrium: probing floor" `Quick
      test_olia_probing_floor;
    Alcotest.test_case "equilibrium: single TCP fixed point" `Quick
      test_equilibrium_single_tcp_user;
    Alcotest.test_case "equilibrium: user utilities" `Quick test_user_utilities;
    Alcotest.test_case "Theorem 3: OLIA point is Pareto (symmetric)" `Slow
      test_olia_fixed_point_is_pareto;
    Alcotest.test_case "Theorem 3: OLIA point is Pareto (asymmetric)" `Slow
      test_olia_asymmetric_is_pareto;
    Alcotest.test_case "Theorem 3: witness finds dominated point" `Quick
      test_pareto_witness_finds_dominated_point;
    Alcotest.test_case "Eq. 6: alpha sums to zero" `Quick
      test_ode_alpha_sums_to_zero;
    Alcotest.test_case "Eq. 6: alpha zero when B inside M" `Quick
      test_ode_alpha_zero_when_best_has_max_window;
    Alcotest.test_case "Theorem 4: utility non-decreasing" `Slow
      test_ode_utility_nondecreasing;
    Alcotest.test_case "ODE: converges to even split" `Slow
      test_ode_converges_to_equal_split;
    Alcotest.test_case "ODE: abandons congested path" `Slow
      test_ode_abandons_congested_path;
    Alcotest.test_case "ODE: matches equilibrium solver" `Slow
      test_ode_matches_equilibrium_solver;
  ]
