(** Multicore parameter-sweep engine.

    A sweep is the cross-product of parameter {!axis} values (e.g.
    [n2 = 10..100 step 10] × [algo ∈ {lia; olia}] × [seed ∈ 1..5]),
    scheduled across OCaml 5 domains. Scheduling never affects results:
    every point carries its own bindings (including its seed), each
    scenario run builds a fresh simulator, and results are stored by
    point index — a parallel sweep is byte-identical to running the same
    points sequentially. *)

type axis = { key : string; values : Spec.value list }

val axis : Spec.t -> key:string -> string -> axis
(** Parse an axis value specification, typed by the spec's default for
    [key]:
    - ["lo:hi:step"] — an inclusive range (int or float);
    - ["lo:hi"] — the same with step 1;
    - ["a,b,c"] — an explicit list.
    Raises [Invalid_argument] on unknown keys, malformed or empty
    specifications. *)

val axis_of_assign : Spec.t -> string -> axis
(** [axis_of_assign spec "n2=10:100:10"] — the CLI [-x] form. *)

val seed_axis : int -> axis
(** [seed_axis n] is [seed ∈ 1..n] — deterministic per-point seeds for
    replicated measurements. *)

val points : Spec.t -> ?fixed:Spec.bindings -> axis list -> Spec.bindings list
(** The cross-product in row-major order (the last axis varies fastest),
    each point extended with the [fixed] overrides. Axis keys and fixed
    bindings are validated against the spec. *)

type point = { bindings : Spec.bindings; outcome : Outcome.t }

val run_seq : (module Scenario_intf.S) -> Spec.bindings list -> point list
(** Run every point in order in the calling domain. *)

val pool : (unit -> unit) array -> unit
(** The domain-pool plumbing under {!run}, exposed for other parallel
    runners (the sharded simulation loop takes it as its pool): run one
    thunk per worker, thunk 0 on the calling domain and the rest on
    spawned domains, join them all, and re-raise the first worker
    exception once every domain has been joined. The join publishes all
    worker writes to the caller. *)

val run :
  ?domains:int -> (module Scenario_intf.S) -> Spec.bindings list -> point list
(** Run the points on a pool of [domains] workers (default
    [Domain.recommended_domain_count ()], capped by the number of
    points). Results are returned in point order and are identical to
    [run_seq] on the same list. Exceptions raised by a worker are
    re-raised. *)

(** {1 Aggregation} *)

type agg = {
  group : Spec.bindings;  (** the point's bindings minus the [over] key *)
  n : int;  (** replications aggregated *)
  stats : (string * (float * float)) list;
      (** metric name → (mean, sample stddev; 0 when n = 1) *)
}

type agg_table = { over : string; rows : agg list }

val aggregate : ?over:string -> point list -> agg_table
(** Group points whose bindings differ only in [over] (default
    ["seed"]) and compute per-metric mean and standard deviation.
    Groups appear in first-encounter order. *)

(** {1 Emitters} *)

val to_json :
  spec:Spec.t -> ?aggregated:agg_table -> point list -> Repro_stats.Json.t
(** The machine-readable sweep record: scenario name, per-point
    parameters and outcomes, and (when given) the aggregated table. *)

val write_json :
  path:string -> spec:Spec.t -> ?aggregated:agg_table -> point list -> unit

val write_csv : path:string -> spec:Spec.t -> point list -> unit
(** One row per point: every spec parameter (resolved), then every
    metric of that point's outcome. *)

val write_agg_csv : path:string -> spec:Spec.t -> agg_table -> unit
(** One row per aggregated group: the group's resolved parameters
    (the [over] key omitted), [n], then mean and stddev per metric. *)
