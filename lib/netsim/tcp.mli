(** TCP and MPTCP endpoints.

    One [conn] is a sender/receiver pair joined by one or more paths. With
    a single path and the Reno algorithm this is regular TCP; with several
    paths and a coupled algorithm ([Repro_cc]) it is an MPTCP connection
    whose subflows share the congestion controller, as in the paper's
    Linux implementation (§IV-B):

    - slow start, congestion avoidance, fast retransmit / NewReno-style
      fast recovery and retransmission timeouts per subflow;
    - the congestion-avoidance increase per ACK is delegated to the
      algorithm, which sees every subflow's window and RTT;
    - losses apply the algorithm's decrease (TCP halving for LIA/OLIA)
      and are reported to it (OLIA's ℓ counters);
    - when several paths are established and the algorithm requests it
      (OLIA), the initial slow-start threshold is forced to 1 MSS. *)

type path = {
  fwd : Packet.hop array;  (** sender → receiver hops (queues, pipes) *)
  rev : Packet.hop array;  (** receiver → sender hops for ACKs *)
}

type conn

val create :
  sim:Sim.t ->
  ?rcv_sim:Sim.t ->
  cc:Repro_cc.Cc_types.t ->
  paths:path array ->
  ?size_pkts:int ->
  ?start:float ->
  ?initial_cwnd:float ->
  ?min_rto:float ->
  ?rcv_wnd:float ->
  ?delayed_ack:bool ->
  ?subflow_join_delay:float ->
  ?on_complete:(float -> unit) ->
  flow_id:int ->
  unit ->
  conn
(** Create a connection and schedule its first transmission at [start]
    (default 0). [size_pkts = None] means an infinite (long-lived) flow;
    finite flows call [on_complete] with the completion time once every
    packet is delivered. [initial_cwnd] defaults to 2 packets, [min_rto]
    to 0.2 s and [rcv_wnd] — the receiver-window cap on each subflow's
    usable window — to 10000 packets. [delayed_ack] enables RFC 1122
    receiver behavior (ACK every second in-order segment, 100 ms flush
    timer; default off, as in the htsim comparisons).
    [subflow_join_delay] postpones the start of every subflow but the
    first, emulating the MP_JOIN handshake (default 0). The [cc]
    instance must be private to this connection.

    [rcv_sim] (default [sim]) is the event loop of the receiver
    endpoint, for sharded topologies where sender and receiver run in
    different domains ({!Shard}): receiver-side handlers (the data sink
    and the delayed-ACK timer) then schedule on [rcv_sim], and the
    sender's completion path leaves the receiver's timers alone.
    Sender-side and receiver-side mutable state are disjoint field
    sets, so no locking is needed as long as the forward route is
    dispatched by [rcv_sim] past the shard cut and the reverse route by
    [sim]. *)

val subflow_count : conn -> int
val total_acked : conn -> int
(** Unique data packets delivered so far (across subflows). *)

val completed : conn -> bool
val completion_time : conn -> float option

val subflow_cwnd : conn -> int -> float
(** Current congestion window of a subflow, packets. *)

val subflow_ssthresh : conn -> int -> float

val subflow_rtt : conn -> int -> float
(** Smoothed RTT estimate (0 before the first sample). *)

val subflow_acked : conn -> int -> int
(** Cumulatively acknowledged packets on one subflow. *)

val subflow_retransmits : conn -> int -> int
val subflow_timeouts : conn -> int -> int

val set_subflow_enabled : conn -> int -> bool -> unit
(** Allow or forbid new data on a subflow. Disabling lets the flight
    drain but sends nothing new (used by [Path_manager] to discard bad
    paths, the paper's §VII suggestion); re-enabling resumes sending. *)

val subflow_enabled : conn -> int -> bool
